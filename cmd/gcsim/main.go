// Command gcsim runs one benchmark program under one collector on the
// simulated machine and prints its measurements — the building block the
// experiment harness sweeps.
//
// Usage:
//
//	gcsim [-collector BC] [-program pseudojbb] [-heap 77] [-phys 256]
//	      [-avail 0] [-steal 0] [-scale 0.25] [-seed 1] [-jvms 1] [-bmu]
//
// -steal f   pins f*heap immediately (steady pressure, Figure 3)
// -avail mb  dynamic pressure down to mb megabytes available (Figure 4/5)
// -jvms n    runs n instances round-robin on one machine (Figure 7)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/sim"
)

func main() {
	// Impossible configurations (live data over the heap budget) panic
	// with ErrOutOfMemory deep in the run; report them politely.
	defer func() {
		if r := recover(); r != nil {
			if oom, ok := r.(gc.ErrOutOfMemory); ok {
				fmt.Fprintf(os.Stderr, "gcsim: %v\ngcsim: the workload's live data does not fit this heap — raise -heap or -scale\n", oom)
				os.Exit(1)
			}
			panic(r)
		}
	}()
	var (
		collector = flag.String("collector", "BC", "collector kind (BC, BCResizeOnly, GenMS, GenCopy, CopyMS, MarkSweep, SemiSpace, GenMSFixed, GenCopyFixed)")
		program   = flag.String("program", "pseudojbb", "benchmark program (see Table 1)")
		heapMB    = flag.Float64("heap", 77, "heap size in MB (paper scale)")
		physMB    = flag.Float64("phys", 256, "physical memory in MB (paper scale)")
		stealFrac = flag.Float64("steal", 0, "steady pressure: immediately pin this fraction of the heap")
		availMB   = flag.Float64("avail", 0, "dynamic pressure: signalmem target available MB (0 = off)")
		scale     = flag.Float64("scale", 0.25, "scale factor applied to all byte quantities")
		seed      = flag.Int64("seed", 1, "workload seed")
		jvms      = flag.Int("jvms", 1, "number of simultaneous JVM instances")
		bmu       = flag.Bool("bmu", false, "print the BMU curve")
	)
	flag.Parse()

	prog, ok := mutator.ByName(*program)
	if !ok {
		fmt.Fprintf(os.Stderr, "gcsim: unknown program %q\n", *program)
		os.Exit(2)
	}
	prog = prog.Scale(*scale)
	heap := mem.RoundUpPage(uint64(*heapMB * *scale * (1 << 20)))
	phys := mem.RoundUpPage(uint64(*physMB * *scale * (1 << 20)))

	var pressure *sim.Pressure
	switch {
	case *stealFrac > 0:
		pressure = sim.SteadyPressure(heap, *stealFrac)
	case *availMB > 0:
		pressure = sim.DynamicPressure(mem.RoundUpPage(uint64(*availMB * *scale * (1 << 20))))
	}

	if *jvms > 1 {
		results := sim.RunMulti(sim.MultiConfig{
			Collector: sim.CollectorKind(*collector),
			Program:   prog, HeapBytes: heap, PhysBytes: phys,
			JVMs: *jvms, Seed: *seed,
		})
		for i, r := range results {
			fmt.Printf("jvm%d: %s\n", i, summary(r))
		}
		return
	}

	r := sim.Run(sim.RunConfig{
		Collector: sim.CollectorKind(*collector),
		Program:   prog, HeapBytes: heap, PhysBytes: phys,
		Pressure: pressure, Seed: *seed,
	})
	fmt.Println(summary(r))
	if *bmu {
		total := r.Timeline.Elapsed()
		fmt.Println("BMU curve (window -> utilization):")
		for _, pt := range r.Timeline.BMUCurve(total/1000, total, 12) {
			fmt.Printf("  %8.4fs  %.3f\n", pt[0], pt[1])
		}
	}
}

func summary(r sim.Result) string {
	st := r.GCStats
	return fmt.Sprintf(
		"%s/%s: exec=%.3fs alloc=%dB gcs=%d (nursery=%d full=%d compact=%d failsafe=%d) avgPause=%v maxPause=%v majflt=%d bookmarked=%d evictedPages=%d",
		r.Config.Collector, r.Config.Program.Name,
		r.ElapsedSecs, r.Mutator.AllocatedBytes,
		r.Timeline.Count(), st.Nursery, st.Full, st.Compactions, st.FailSafe,
		round(r.Timeline.AvgPause()), round(r.Timeline.MaxPause()),
		r.ProcStats.MajorFaults, st.Bookmarked, st.PagesEvicted)
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
