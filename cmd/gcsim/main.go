// Command gcsim runs one benchmark program under one collector on the
// simulated machine and prints its measurements — the building block the
// experiment harness sweeps.
//
// Usage:
//
//	gcsim [-collector BC] [-program pseudojbb] [-heap 77] [-phys 256]
//	      [-avail 0] [-steal 0] [-scale 0.25] [-seed 1] [-jvms 1] [-bmu]
//	      [-runs 1] [-jobs n] [-mark-workers n] [-chaos regime] [-chaos-seed 1]
//	      [-trace out.json] [-trace-format chrome|jsonl] [-counters]
//	      [-http :8080] [-telemetry-out series.csv] [-sample-every 1ms]
//	      [-flight-dump-dir dir]
//
// -steal f   pins f*heap immediately (steady pressure, Figure 3)
// -avail mb  dynamic pressure down to mb megabytes available (Figure 4/5)
// -jvms n    runs n instances round-robin on one machine (Figure 7)
// -runs n    sweeps n consecutive seeds (-seed, -seed+1, ...) on the
//
//	parallel runner and prints per-seed summaries + aggregates
//
// -jobs n    concurrent simulations for -runs (default GOMAXPROCS)
// -mark-workers n  host threads for the parallel mark engine (default
//
//	GOMAXPROCS); results are bit-identical for any value
//
// -chaos r   injects kernel faults into the cooperation protocol
//
//	(drop, delay, duplicate, reorder, no-notify, reload-storm,
//	thrash); -chaos-seed drives the injector's PRNG
//
// -heap-policy p  heap-limit policy for the collector's budget (fixed,
//
//	bc-shrink, membalancer, composed); "" keeps each collector's
//	native behaviour. With -fleet it overrides the spec's policy
//	for every tenant.
//
// -fleet s   runs a multi-tenant fleet sharing one machine: s is a
//
//	tenant-spec JSON file, or mixedN for the stock N-tenant mixed
//	fleet (BC alternating with non-cooperating collectors, two
//	noisy neighbors). Reuses -phys/-scale/-seed/-chaos-seed/
//	-flight-dump-dir/-mark-workers; -fleet-policy picks the
//	eviction-arbitration policy (global-lru, proportional,
//	cooperative). The report is byte-identical for any
//	-mark-workers value.
//
// -trace f   writes GC phase spans and VM-cooperation events to f
// -counters  prints the event-counter registry after the run
//
// Telemetry (DESIGN.md §12) — any of these flags arms the deterministic
// sampler, per-pause phase attribution, and the flight recorder:
//
// -http addr          serves /metrics, the dashboard, /api/* and
//
//	/debug/pprof/ during the run and blocks after it so the
//	final state stays scrapeable
//
// -telemetry-out f    writes the sampled time series after the run
//
//	(.jsonl gets samples+pauses+digests; anything else CSV)
//
// -sample-every d     sampling interval in simulated time (default 1ms)
// -flight-dump-dir d  writes flight-recorder bundles (anomaly dumps) here
// -list      prints the simulator's inventory (programs, collectors, mark
//
//	counters, chaos regimes, synthesizer models, *.gctrace files)
//	and exits
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"bookmarkgc/internal/fault"
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/runner"
	"bookmarkgc/internal/sim"
	"bookmarkgc/internal/telemetry"
	"bookmarkgc/internal/trace"
	"bookmarkgc/internal/vmm"
	"bookmarkgc/internal/workload"
)

func main() {
	var (
		collector = flag.String("collector", "BC", "collector kind (BC, BCResizeOnly, GenMS, GenCopy, CopyMS, MarkSweep, SemiSpace, GenMSFixed, GenCopyFixed)")
		program   = flag.String("program", "pseudojbb", "benchmark program (see Table 1)")
		heapMB    = flag.Float64("heap", 77, "heap size in MB (paper scale)")
		physMB    = flag.Float64("phys", 256, "physical memory in MB (paper scale)")
		stealFrac = flag.Float64("steal", 0, "steady pressure: immediately pin this fraction of the heap")
		availMB   = flag.Float64("avail", 0, "dynamic pressure: signalmem target available MB (0 = off)")
		scale     = flag.Float64("scale", 0.25, "scale factor applied to all byte quantities")
		seed      = flag.Int64("seed", 1, "workload seed")
		jvms      = flag.Int("jvms", 1, "number of simultaneous JVM instances")
		runs      = flag.Int("runs", 1, "sweep this many consecutive seeds and print aggregates")
		jobs      = flag.Int("jobs", runtime.GOMAXPROCS(0), "maximum concurrent simulations for -runs")
		markWkrs  = flag.Int("mark-workers", runtime.GOMAXPROCS(0), "host threads for the parallel mark engine (results are bit-identical for any value)")
		bmu       = flag.Bool("bmu", false, "print the BMU curve")
		chaos     = flag.String("chaos", "", "inject kernel faults: drop, delay, duplicate, reorder, no-notify, reload-storm, thrash")
		chaosSeed = flag.Int64("chaos-seed", 1, "seed for the fault injector's PRNG")
		heapPol   = flag.String("heap-policy", "", "heap-limit policy: fixed, bc-shrink, membalancer, composed ('' = collector default; with -fleet, overrides the spec)")
		fleetArg  = flag.String("fleet", "", "run a multi-tenant fleet: a tenant-spec JSON file, or mixedN for the stock N-tenant mixed fleet")
		fleetPol  = flag.String("fleet-policy", "", "fleet eviction-arbitration policy: global-lru, proportional, cooperative (overrides the spec)")
		traceOut  = flag.String("trace", "", "write a GC event trace to this file")
		traceFmt  = flag.String("trace-format", "chrome", "trace file format: chrome (Perfetto-loadable) or jsonl")
		counters  = flag.Bool("counters", false, "print the event-counter registry after the run")
		list      = flag.Bool("list", false, "list programs, collectors, chaos regimes, trace models and files, then exit")

		httpAddr    = flag.String("http", "", "serve /metrics, the dashboard and /debug/pprof on this address (e.g. :8080)")
		telemOut    = flag.String("telemetry-out", "", "write the telemetry time series to this file (.jsonl or CSV)")
		sampleEvery = flag.Duration("sample-every", time.Millisecond, "telemetry sampling interval in simulated time")
		flightDir   = flag.String("flight-dump-dir", "", "write flight-recorder bundles (anomaly dumps) to this directory")
	)
	flag.Parse()

	// -sample-every alone also arms telemetry, but only when explicitly
	// given: the default value must not silently turn the sampler on.
	sampleEverySet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sample-every" {
			sampleEverySet = true
		}
	})
	telemetryOn := *httpAddr != "" || *telemOut != "" || *flightDir != "" || sampleEverySet

	if *list {
		listInventory()
		return
	}

	// Reject contradictory or out-of-range configurations up front, before
	// any simulation state exists; exit 2 like other flag errors.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gcsim: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *stealFrac > 0 && *availMB > 0 {
		fail("-steal and -avail are mutually exclusive pressure schedules; pick one")
	}
	if *stealFrac < 0 || *stealFrac >= 1 {
		fail("-steal %v out of range [0, 1)", *stealFrac)
	}
	if *availMB < 0 {
		fail("-avail %v must be non-negative", *availMB)
	}
	if *jvms < 1 {
		fail("-jvms %d must be at least 1", *jvms)
	}
	if *runs < 1 {
		fail("-runs %d must be at least 1", *runs)
	}
	if *markWkrs < 1 {
		fail("-mark-workers %d must be at least 1", *markWkrs)
	}
	if *sampleEvery <= 0 {
		fail("-sample-every %v must be positive", *sampleEvery)
	}
	if telemetryOn && (*runs > 1 || *jvms > 1) {
		fail("telemetry instruments exactly one simulation; drop -runs/-jvms or the telemetry flags")
	}
	if *runs > 1 {
		if *bmu || *traceOut != "" || *counters {
			fail("-runs is a summary sweep; -bmu, -trace and -counters need a single run")
		}
		if *jvms > 1 && (*stealFrac > 0 || *availMB > 0) {
			fail("pressure schedules are single-JVM; drop -jvms or the pressure flag")
		}
	}
	if *scale <= 0 {
		fail("-scale %v must be positive", *scale)
	}
	if *heapMB <= 0 || *physMB <= 0 {
		fail("-heap and -phys must be positive (got %v, %v)", *heapMB, *physMB)
	}
	if *traceFmt != "chrome" && *traceFmt != "jsonl" {
		fail("-trace-format %q must be chrome or jsonl", *traceFmt)
	}
	if *heapPol != "" && !heappolicy.Known(*heapPol) {
		fail("unknown -heap-policy %q (policies: %s)", *heapPol, strings.Join(heappolicy.Names(), ", "))
	}
	var chaosCfg *fault.Config
	if *chaos != "" {
		cfg, ok := fault.ByName(*chaos, *chaosSeed)
		if !ok {
			fail("unknown -chaos regime %q (regimes: %s)", *chaos, strings.Join(fault.Regimes(), ", "))
		}
		if *jvms > 1 {
			fail("-chaos is single-JVM only; drop -jvms")
		}
		chaosCfg = &cfg
	}

	// The seed-sweep runner's jobs build their own environments, so the
	// worker count travels as the process default; the direct sim.Run /
	// RunMulti calls below also pass it explicitly. Simulation output is
	// bit-identical for any value (DESIGN.md §11).
	gc.SetDefaultMarkWorkers(*markWkrs)

	if *fleetPol != "" && *fleetArg == "" {
		fail("-fleet-policy needs -fleet")
	}
	if *fleetArg != "" {
		// A fleet run carries its whole configuration in the spec;
		// single-run flags conflict. -phys/-seed/-chaos-seed override the
		// spec when explicitly given; -flight-dump-dir arms the per-tenant
		// flight recorders and the cascade bundles.
		if *jvms > 1 || *runs > 1 || *chaos != "" || *bmu || *traceOut != "" ||
			*stealFrac > 0 || *availMB > 0 || *counters ||
			*httpAddr != "" || *telemOut != "" || sampleEverySet {
			fail("-fleet runs carry their configuration in the spec; drop the single-run flags")
		}
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		runFleetCLI(*fleetArg, fleetOpts{
			policy:     *fleetPol,
			heapPolicy: *heapPol,
			scale:      *scale,
			seed:       *seed,
			chaosSeed:  *chaosSeed,
			physMB:     *physMB,
			physSet:    set["phys"],
			seedSet:    set["seed"],
			chaosSet:   set["chaos-seed"],
			flightDir:  *flightDir,
			markWkrs:   *markWkrs,
		})
		return
	}

	prog, ok := mutator.ByName(*program)
	if !ok {
		fail("unknown program %q", *program)
	}
	prog = prog.Scale(*scale)
	heap := mem.RoundUpPage(uint64(*heapMB * *scale * (1 << 20)))
	phys := mem.RoundUpPage(uint64(*physMB * *scale * (1 << 20)))
	if phys < vmm.MinPhysBytes {
		fail("-phys %v at -scale %v is a %d-byte machine; the smallest simulable machine is %d bytes",
			*physMB, *scale, phys, vmm.MinPhysBytes)
	}

	if *runs > 1 {
		seedSweep(sweepConfig{
			collector: sim.CollectorKind(*collector),
			prog:      prog, heap: heap, phys: phys,
			stealFrac: *stealFrac, availMB: *availMB, scale: *scale,
			seed: *seed, runs: *runs, jobs: *jobs, jvms: *jvms,
			chaos: chaosCfg, heapPolicy: *heapPol,
		})
		return
	}

	var pressure *sim.Pressure
	switch {
	case *stealFrac > 0:
		pressure = sim.SteadyPressure(heap, *stealFrac)
	case *availMB > 0:
		// Calibrate the signalmem ramp to this workload: an unpressured
		// run sets the baseline the ramp completes a third of the way
		// into, as in the paper's measured iterations.
		base := sim.Run(sim.RunConfig{
			Collector: sim.CollectorKind(*collector),
			Program:   prog, HeapBytes: heap, PhysBytes: phys,
			Seed: *seed, MarkWorkers: *markWkrs,
		})
		checkErr(base.Err)
		avail := mem.RoundUpPage(uint64(*availMB * *scale * (1 << 20)))
		initial := mem.RoundUpPage(uint64(30 * *scale * (1 << 20)))
		grow := mem.RoundUpPage(uint64(*scale * (1 << 20)))
		pressure = sim.CalibratedDynamicPressure(phys, avail, initial, grow,
			time.Duration(base.ElapsedSecs*float64(time.Second)))
	}

	// The recorder's clock is bound by sim.Run/RunMulti once the simulated
	// machine exists.
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder(nil, *collector)
	}
	var reg *trace.Counters
	if *counters || *traceOut != "" || telemetryOn {
		// Telemetry needs the registry too: the flight recorder's
		// chaos-escalation trigger watches fail-safe/backoff counters, and
		// /metrics exports the telemetry self-counters.
		reg = trace.NewCounters()
	}

	// The telemetry collector samples on the simulated clock and observes
	// only bookkeeping, so the instrumented run is bit-identical to an
	// uninstrumented one (DESIGN.md §12). The HTTP server starts before
	// the run so the dashboard is live while it executes.
	var tel *telemetry.Collector
	if telemetryOn {
		tel = telemetry.New(telemetry.Config{
			SampleEvery: *sampleEvery,
			FlightDir:   *flightDir,
		})
		if *httpAddr != "" {
			ln, err := net.Listen("tcp", *httpAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gcsim: -http: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "gcsim: serving telemetry on http://%s/\n", ln.Addr())
			go func() {
				srv := &http.Server{Handler: telemetry.NewMux(telemetry.ServerOptions{
					Telemetry: tel,
					Title:     fmt.Sprintf("gcsim %s/%s", *collector, *program),
				})}
				if err := srv.Serve(ln); err != nil {
					fmt.Fprintf(os.Stderr, "gcsim: http server: %v\n", err)
					os.Exit(1)
				}
			}()
		}
	}

	if *jvms > 1 {
		results := sim.RunMulti(sim.MultiConfig{
			Collector: sim.CollectorKind(*collector),
			Program:   prog, HeapBytes: heap, PhysBytes: phys,
			JVMs: *jvms, Seed: *seed, MarkWorkers: *markWkrs,
			Trace: rec, Counters: reg,
			HeapPolicy: *heapPol,
		})
		for i, r := range results {
			if r.Err != nil {
				fmt.Printf("jvm%d: FAILED: %v\n", i, r.Err)
				continue
			}
			fmt.Printf("jvm%d: %s\n", i, summary(r))
		}
		finish(rec, reg, *traceOut, *traceFmt, *counters)
		return
	}

	r := sim.Run(sim.RunConfig{
		Collector: sim.CollectorKind(*collector),
		Program:   prog, HeapBytes: heap, PhysBytes: phys,
		Pressure: pressure, Seed: *seed, Chaos: chaosCfg,
		MarkWorkers: *markWkrs,
		Trace:       rec, Counters: reg,
		Telemetry:  tel,
		HeapPolicy: *heapPol,
	})
	if tel != nil && r.Err != nil {
		// Report the telemetry captured up to the failure (the flight
		// recorder has already dumped an "oom" bundle if armed), then exit
		// through the usual path.
		telemetryReport(tel, &r.Timeline)
		writeTelemetry(tel, *telemOut)
	}
	checkErr(r.Err)
	fmt.Println(summary(r))
	if r.Faults != nil {
		fmt.Printf("chaos(%s, seed %d): %s\n", *chaos, *chaosSeed, r.Faults)
	}
	if *bmu {
		total := r.Timeline.Elapsed()
		fmt.Println("BMU curve (window -> utilization):")
		for _, pt := range r.Timeline.BMUCurve(total/1000, total, 12) {
			fmt.Printf("  %8.4fs  %.3f\n", pt[0], pt[1])
		}
	}
	if tel != nil {
		telemetryReport(tel, &r.Timeline)
		writeTelemetry(tel, *telemOut)
	}
	finish(rec, reg, *traceOut, *traceFmt, *counters)
	if *httpAddr != "" {
		fmt.Fprintln(os.Stderr, "gcsim: run complete; still serving (interrupt to exit)")
		select {}
	}
}

// telemetryReport prints the sampler's summary and the per-kind pause
// attribution: percentiles from the log-bucketed digests, and each
// kind's pause time split into phase self-time plus the simulated cost
// of the major faults taken inside the pause (the paper's disk stalls).
func telemetryReport(tel *telemetry.Collector, tl *metrics.Timeline) {
	fmt.Printf("telemetry: %d samples, %d pauses, %d flight dumps\n",
		tel.SampleCount(), len(tel.Pauses()), tel.FlightDumps())
	all := tel.DigestAll()
	if all.Count() > 0 {
		fmt.Printf("pause latency: p50=%v p95=%v p99=%v p99.9=%v max=%v\n",
			round(all.QuantileDuration(0.50)), round(all.QuantileDuration(0.95)),
			round(all.QuantileDuration(0.99)), round(all.QuantileDuration(0.999)),
			round(time.Duration(all.Max())))
	}
	pauses := tel.Pauses()
	for _, kind := range []metrics.PauseKind{metrics.PauseNursery, metrics.PauseFull, metrics.PauseCompact} {
		var (
			n      int
			total  time.Duration
			stall  time.Duration
			other  time.Duration
			phases [trace.NumPhases]time.Duration
			faults uint64
		)
		for i := range pauses {
			p := &pauses[i]
			if p.Kind != kind {
				continue
			}
			n++
			total += p.Dur
			stall += p.FaultStall
			other += p.Other()
			faults += p.MajorFaults
			for ph := 0; ph < trace.NumPhases; ph++ {
				phases[ph] += p.PhaseNS[ph]
			}
		}
		if n == 0 {
			continue
		}
		fmt.Printf("  %-8s n=%d total=%v p50=%v p99=%v:", kind, n,
			round(total), round(tl.PercentileKind(kind, 50)), round(tl.PercentileKind(kind, 99)))
		for ph := trace.Phase(0); int(ph) < trace.NumPhases; ph++ {
			switch ph {
			case trace.PhasePauseNursery, trace.PhasePauseFull, trace.PhasePauseCompact:
				continue // the pause span's self-time is "other" below
			}
			if phases[ph] > 0 {
				fmt.Printf(" %s=%v", ph, round(phases[ph]))
			}
		}
		fmt.Printf(" other=%v", round(other))
		if faults > 0 {
			fmt.Printf(" fault-stall=%v (majflt=%d)", round(stall), faults)
		}
		fmt.Println()
	}
}

// writeTelemetry exports the sampled series: .jsonl gets the full
// samples+pauses+digests stream, anything else the columnar CSV.
func writeTelemetry(tel *telemetry.Collector, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcsim: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(f)
	if strings.HasSuffix(path, ".jsonl") {
		err = tel.WriteJSONL(w)
	} else {
		err = tel.WriteCSV(w)
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcsim: writing telemetry: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("telemetry: %d samples -> %s\n", tel.SampleCount(), path)
}

// listInventory prints everything the simulator can run: the benchmark
// programs (Table 1), the collector kinds, the parallel mark counter
// group, the chaos regimes, the trace synthesizer models, and any
// recorded traces in the current directory.
func listInventory() {
	fmt.Println("programs (-program; sizes at paper scale 1.0):")
	for _, p := range mutator.Programs {
		fmt.Printf("  %-10s  alloc=%4dMB minHeap=%3dMB\n",
			p.Name, p.TotalAlloc>>20, p.MinHeap>>20)
	}
	fmt.Println("collectors (-collector):")
	for _, k := range sim.KnownKinds {
		fmt.Printf("  %s\n", k)
	}
	fmt.Println("parallel mark counters (-counters; engine in DESIGN.md §11):")
	for _, c := range trace.MarkCounters() {
		fmt.Printf("  %s\n", c)
	}
	fmt.Println("telemetry counters (-counters; layer in DESIGN.md §12):")
	for _, c := range trace.TelemetryCounters() {
		fmt.Printf("  %s\n", c)
	}
	fmt.Println("heap-policy counters (-counters; subsystem in DESIGN.md §14):")
	for _, c := range trace.HeapPolicyCounters() {
		fmt.Printf("  %s\n", c)
	}
	fmt.Printf("heap-limit policies (-heap-policy): %s\n", strings.Join(heappolicy.Names(), ", "))
	fmt.Printf("chaos regimes (-chaos): %s\n", strings.Join(fault.Regimes(), ", "))
	fmt.Printf("trace synthesizer models (gctrace gen -model): %s\n",
		strings.Join(workload.Models, ", "))

	paths, _ := filepath.Glob("*.gctrace")
	if len(paths) == 0 {
		fmt.Println("trace files (*.gctrace in .): none")
		return
	}
	fmt.Println("trace files (*.gctrace in .):")
	for _, p := range paths {
		meta, err := workload.ReadMeta(p)
		if err != nil {
			fmt.Printf("  %-24s  unreadable: %v\n", p, err)
			continue
		}
		fmt.Printf("  %-24s  name=%s source=%s seed=%d collector=%s\n",
			p, meta.Name, meta.Source, meta.Seed, meta.Collector)
	}
}

// checkErr reports a failed run: impossible configurations (live data
// over the heap budget) exit 1 with a hint; anything else exits 2.
func checkErr(err error) {
	if err == nil {
		return
	}
	var oom gc.ErrOutOfMemory
	if errors.As(err, &oom) {
		fmt.Fprintf(os.Stderr, "gcsim: %v\ngcsim: the workload's live data does not fit this heap — raise -heap or -scale\n", oom)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gcsim: %v\n", err)
	os.Exit(2)
}

// finish exports the trace file and prints the counter registry.
func finish(rec *trace.Recorder, reg *trace.Counters, path, format string, show bool) {
	if rec != nil && path != "" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcsim: %v\n", err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		var werr error
		switch format {
		case "chrome":
			werr = rec.WriteChrome(w, "gcsim")
		case "jsonl":
			werr = rec.WriteJSONL(w)
			if werr == nil {
				werr = reg.WriteJSONL(w)
			}
		}
		if werr == nil {
			werr = w.Flush()
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "gcsim: writing trace: %v\n", werr)
			os.Exit(1)
		}
		fmt.Printf("trace: %d events -> %s (%s)\n", rec.Len(), path, format)
	}
	if show && reg != nil {
		fmt.Println("counters:")
		reg.WriteText(os.Stdout)
	}
}

// sweepConfig parameterizes a -runs multi-seed sweep.
type sweepConfig struct {
	collector  sim.CollectorKind
	prog       mutator.Spec
	heap, phys uint64
	stealFrac  float64
	availMB    float64
	scale      float64
	seed       int64
	runs       int
	jobs       int
	jvms       int
	chaos      *fault.Config
	heapPolicy string
}

// seedSweep runs the configured simulation at runs consecutive seeds on
// the parallel runner, printing one summary line per seed (per JVM for
// multi-JVM machines) and aggregate statistics over the successful runs.
// Dynamic pressure is recalibrated per seed: each seed's unpressured
// baseline run is itself a job in the first batch.
func seedSweep(c sweepConfig) {
	rn := runner.New(runner.Options{Workers: c.jobs})
	seeds := make([]int64, c.runs)
	for i := range seeds {
		seeds[i] = c.seed + int64(i)
	}

	baseJob := func(seed int64) runner.Job {
		return runner.Job{
			Collector: c.collector, Program: c.prog,
			HeapBytes: c.heap, PhysBytes: c.phys, Seed: seed,
		}
	}
	mainJob := func(seed int64) runner.Job {
		j := runner.Job{
			Collector: c.collector, Program: c.prog,
			HeapBytes: c.heap, PhysBytes: c.phys, Seed: seed,
			Chaos: c.chaos, HeapPolicy: c.heapPolicy,
		}
		if c.jvms > 1 {
			j.JVMs = c.jvms
			return j
		}
		switch {
		case c.stealFrac > 0:
			j.Pressure = sim.SteadyPressure(c.heap, c.stealFrac)
		case c.availMB > 0:
			base := rn.Result(baseJob(seed))
			if !base.OK() {
				return j // the main run will fail the same way; report there
			}
			avail := mem.RoundUpPage(uint64(c.availMB * c.scale * (1 << 20)))
			initial := mem.RoundUpPage(uint64(30 * c.scale * (1 << 20)))
			grow := mem.RoundUpPage(uint64(c.scale * (1 << 20)))
			j.Pressure = sim.CalibratedDynamicPressure(c.phys, avail, initial, grow,
				time.Duration(base.One().ElapsedSecs*float64(time.Second)))
		}
		return j
	}

	if c.availMB > 0 && c.jvms == 1 {
		base := make([]runner.Job, len(seeds))
		for i, s := range seeds {
			base[i] = baseJob(s)
		}
		rn.RunAll(base)
	}
	jobs := make([]runner.Job, len(seeds))
	for i, s := range seeds {
		jobs[i] = mainJob(s)
	}
	rn.RunAll(jobs)

	var execs, pauses []float64
	failed := 0
	for i, s := range seeds {
		res := rn.Result(jobs[i])
		if res.Err != "" {
			fmt.Printf("seed %d: FAILED: %s\n", s, res.Err)
			failed++
			continue
		}
		okRun := true
		for jvm, rd := range res.Runs {
			prefix := fmt.Sprintf("seed %d", s)
			if c.jvms > 1 {
				prefix = fmt.Sprintf("seed %d jvm%d", s, jvm)
			}
			if !rd.OK() {
				fmt.Printf("%s: FAILED: %s\n", prefix, rd.Err)
				okRun = false
				continue
			}
			fmt.Printf("%s: %s\n", prefix, runDataSummary(c.collector, c.prog, rd))
		}
		if !okRun {
			failed++
			continue
		}
		var end float64
		var pauseSum time.Duration
		var pauseN int
		for _, rd := range res.Runs {
			if rd.ElapsedSecs > end {
				end = rd.ElapsedSecs
			}
			tl := rd.Timeline()
			for _, p := range tl.Pauses {
				pauseSum += p.Dur
			}
			pauseN += len(tl.Pauses)
		}
		execs = append(execs, end)
		if pauseN > 0 {
			pauses = append(pauses, float64(pauseSum)/float64(pauseN))
		}
	}

	if len(execs) > 0 {
		mean, min, max := stats(execs)
		fmt.Printf("aggregate over %d/%d seeds: exec mean=%.3fs min=%.3fs max=%.3fs",
			len(execs), len(seeds), mean, min, max)
		if len(pauses) > 0 {
			pm, _, _ := stats(pauses)
			fmt.Printf(" avgPause mean=%v", round(time.Duration(pm)))
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "gcsim: %d of %d seeds failed\n", failed, len(seeds))
		os.Exit(1)
	}
}

// stats returns the mean, minimum and maximum of xs (len > 0).
func stats(xs []float64) (mean, min, max float64) {
	min, max = xs[0], xs[0]
	for _, x := range xs {
		mean += x
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return mean / float64(len(xs)), min, max
}

// runDataSummary mirrors summary for a runner.RunData, whose timeline is
// reconstructed from the serialized pause list.
func runDataSummary(col sim.CollectorKind, prog mutator.Spec, rd runner.RunData) string {
	tl := rd.Timeline()
	return fmt.Sprintf(
		"%s/%s: exec=%.3fs alloc=%dB gcs=%d (nursery=%d full=%d compact=%d failsafe=%d) avgPause=%v maxPause=%v majflt=%d bookmarked=%d evictedPages=%d",
		col, prog.Name,
		rd.ElapsedSecs, rd.AllocatedBytes,
		tl.Count(), rd.Nursery, rd.Full, rd.Compactions, rd.FailSafe,
		round(tl.AvgPause()), round(tl.MaxPause()),
		rd.Proc.MajorFaults, rd.Bookmarked, rd.PagesEvicted)
}

func summary(r sim.Result) string {
	st := r.GCStats
	return fmt.Sprintf(
		"%s/%s: exec=%.3fs alloc=%dB gcs=%d (nursery=%d full=%d compact=%d failsafe=%d) avgPause=%v maxPause=%v majflt=%d bookmarked=%d evictedPages=%d",
		r.Config.Collector, r.Config.Program.Name,
		r.ElapsedSecs, r.Mutator.AllocatedBytes,
		r.Timeline.Count(), st.Nursery, st.Full, st.Compactions, st.FailSafe,
		round(r.Timeline.AvgPause()), round(r.Timeline.MaxPause()),
		r.ProcStats.MajorFaults, st.Bookmarked, st.PagesEvicted)
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
