package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/sim"
)

// physBytes converts a -phys megabyte figure at the given scale.
func physBytes(mb, scale float64) uint64 {
	return mem.RoundUpPage(uint64(mb * scale * (1 << 20)))
}

// fleetOpts carries the flags the fleet path reuses from the main set.
type fleetOpts struct {
	policy     string // -fleet-policy: arbitration override ("" = spec's)
	heapPolicy string // -heap-policy: heap-limit override ("" = spec's)
	scale      float64
	seed       int64
	chaosSeed  int64
	physMB     float64
	physSet    bool // -phys explicitly given (overrides the spec)
	seedSet    bool
	chaosSet   bool
	flightDir  string
	markWkrs   int
}

// loadFleet resolves the -fleet argument: "mixedN" builds the stock
// N-tenant mixed fleet (scale/seed/chaos-seed flags apply); anything
// else is a tenant-spec file (JSON, strict), whose phys/seed/chaos-seed
// the explicitly-set flags override.
func loadFleet(arg string, o fleetOpts) (sim.FleetSpec, error) {
	if rest, ok := strings.CutPrefix(arg, "mixed"); ok && !strings.ContainsAny(arg, "./") {
		n := 16
		if rest != "" {
			var err error
			if n, err = strconv.Atoi(rest); err != nil || n < 1 {
				return sim.FleetSpec{}, fmt.Errorf("bad -fleet %q: mixedN needs a positive tenant count", arg)
			}
		}
		spec := sim.DefaultFleetSpec(n, o.scale, o.seed, o.chaosSeed)
		if o.physSet {
			spec.PhysBytes = physBytes(o.physMB, o.scale)
		}
		return spec, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return sim.FleetSpec{}, err
	}
	spec, err := sim.LoadFleetSpec(data)
	if err != nil {
		return sim.FleetSpec{}, err
	}
	if o.physSet {
		spec.PhysBytes = physBytes(o.physMB, o.scale)
	}
	if o.seedSet {
		spec.Seed = o.seed
	}
	if o.chaosSet {
		spec.ChaosSeed = o.chaosSeed
	}
	return spec, nil
}

// runFleetCLI executes one fleet and prints the deterministic fleet
// report: per-tenant summaries in spec order, then the fleet-level
// aggregates. Every figure is simulated-clock data, so the bytes are
// identical for any -mark-workers or host parallelism.
func runFleetCLI(arg string, o fleetOpts) {
	spec, err := loadFleet(arg, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcsim: -fleet: %v\n", err)
		os.Exit(2)
	}
	if o.policy != "" {
		spec.Policy = sim.ArbitrationPolicy(o.policy)
	}
	if o.heapPolicy != "" {
		spec.HeapPolicy = o.heapPolicy
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "gcsim: -fleet: %v\n", err)
		os.Exit(2)
	}

	fr := sim.RunFleet(sim.FleetConfig{
		Spec:        spec,
		FlightDir:   o.flightDir,
		MarkWorkers: o.markWkrs,
	})
	checkErr(fr.Err)

	pol := string(fr.InitialPolicy)
	if fr.Policy != fr.InitialPolicy {
		pol += "->" + string(fr.Policy)
	}
	fmt.Printf("fleet: %d tenants, phys=%dB, policy=%s, cascades=%d\n",
		len(fr.Tenants), spec.PhysBytes, pol, fr.Cascades)
	failed := 0
	for i, r := range fr.Tenants {
		label := fmt.Sprintf("  %-14s", fr.Names[i])
		if r.Err != nil {
			fmt.Printf("%s FAILED: %v\n", label, r.Err)
			failed++
			continue
		}
		line := fmt.Sprintf(
			"%s exec=%.3fs gcs=%d majflt=%d evict=%d p99=%v",
			label, r.ElapsedSecs, r.Timeline.Count(),
			r.ProcStats.MajorFaults, r.ProcStats.Evictions,
			round(time.Duration(fr.PauseP99NS[i])))
		if ts := spec.Tenants[i]; ts.Chaos != "" {
			line += fmt.Sprintf(" chaos=%s", ts.Chaos)
		}
		fmt.Println(line)
	}
	fmt.Printf("fleet aggregates: major=%d minor=%d evict=%d vetoes=%d fairness=%.3f elapsed=%.3fs\n",
		fr.AggMajorFaults, fr.AggMinorFaults, fr.AggEvictions,
		fr.ArbiterVetoes, fr.Fairness, fr.ElapsedSecs)
	if fr.Escalated {
		fmt.Printf("fleet escalation: %s -> %s after a sustained cascade\n",
			fr.InitialPolicy, fr.Policy)
	}
	if len(fr.FleetDumps) > 0 {
		fmt.Printf("fleet dumps: %d cascade bundles -> %s\n", len(fr.FleetDumps), o.flightDir)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "gcsim: %d of %d tenants failed\n", failed, len(fr.Tenants))
		os.Exit(1)
	}
}
