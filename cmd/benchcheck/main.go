// Command benchcheck gates the performance trajectory recorded in
// BENCH_experiments.json files (written by experiments -bench-out).
// It runs in one of three modes:
//
//	-mode jobs     pair the most recent sequential (-jobs 1) record with
//	               the most recent parallel one for the same (run, scale,
//	               seed) and fail when the wall-time speedup falls short
//	               of -min-speedup
//	-mode mark     same pairing over -mark-workers instead of -jobs: the
//	               most recent -mark-workers 1 record vs the most recent
//	               -mark-workers >1 record at the same (run, scale, seed,
//	               jobs), gated by -min-speedup
//	-mode regress  compare the most recent record in -file against the
//	               most recent comparable record in -baseline and fail
//	               when wall time regressed by more than -max-regress
//
//	-mode speedup  compare the most recent record in -file against the
//	               most recent comparable record in -baseline (a frozen
//	               reference trajectory, e.g. the pre-arena snapshot in
//	               internal/bench/testdata) and fail unless wall time
//	               improved by at least -min-speedup x
//
// Speedup gates only fire when the recording machine actually had the
// cores to deliver the parallelism, so trajectories recorded on small
// machines stay honest without failing the gate. Records contaminated by
// a warm persistent cache (disk hits make wall time meaningless) are
// never used for speedup pairing; within-sweep memo hits are
// deterministic and fine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type record struct {
	Schema      string  `json:"schema"`
	Scale       float64 `json:"scale"`
	Seed        int64   `json:"seed"`
	Jobs        int     `json:"jobs"`
	MarkWorkers int     `json:"mark_workers"`
	Cores       int     `json:"cores"`
	Run         string  `json:"run"`
	TotalSecs   float64 `json:"total_wall_secs"`
	DiskHits    int     `json:"disk_hits"`
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(2)
}

func load(path string) []record {
	b, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	var recs []record
	if err := json.Unmarshal(b, &recs); err != nil {
		fatal("%s: %v", path, err)
	}
	if len(recs) == 0 {
		fatal("%s holds no records", path)
	}
	return recs
}

func main() {
	var (
		file     = flag.String("file", "BENCH_experiments.json", "trajectory file to check")
		mode     = flag.String("mode", "jobs", "gate to apply: jobs, mark, or regress")
		min      = flag.Float64("min-speedup", 2.0, "required wall-time ratio for the jobs/mark speedup gates")
		baseline = flag.String("baseline", "", "baseline trajectory file for -mode regress")
		maxReg   = flag.Float64("max-regress", 0.15, "tolerated fractional wall-time regression for -mode regress")
	)
	flag.Parse()

	switch *mode {
	case "jobs":
		checkSpeedup(load(*file), *min, func(r *record) int { return r.Jobs }, "-jobs")
	case "mark":
		checkSpeedup(load(*file), *min, func(r *record) int { return r.MarkWorkers }, "-mark-workers")
	case "regress":
		if *baseline == "" {
			fatal("-mode regress needs -baseline")
		}
		checkRegression(load(*file), load(*baseline), *maxReg)
	case "speedup":
		if *baseline == "" {
			fatal("-mode speedup needs -baseline")
		}
		checkImprovement(load(*file), load(*baseline), *min)
	default:
		fatal("unknown -mode %q (modes: jobs, mark, regress, speedup)", *mode)
	}
}

// checkSpeedup pairs the most recent degree-1 record with the most recent
// degree->1 record along the axis extracted by degree (the -jobs or
// -mark-workers value) and enforces the wall-time ratio. Records whose
// wall time was distorted by a warm persistent cache are ignored: a
// disk-served job costs no simulation time, so its record says nothing
// about parallel speedup.
func checkSpeedup(recs []record, min float64, degree func(*record) int, axis string) {
	var seq, par *record
	for i := range recs {
		r := &recs[i]
		if r.DiskHits > 0 {
			continue
		}
		switch {
		case degree(r) == 1:
			seq = r
		case degree(r) > 1:
			par = r
		}
	}
	if seq == nil || par == nil {
		fatal("need one cache-clean %s 1 record and one %s >1 record (records with disk_hits > 0 are skipped)", axis, axis)
	}
	// Comparable means same workload and same degree along the axis NOT
	// being swept — otherwise the ratio mixes two effects.
	if seq.Run != par.Run || seq.Scale != par.Scale || seq.Seed != par.Seed ||
		(axis == "-jobs" && seq.MarkWorkers != par.MarkWorkers) ||
		(axis == "-mark-workers" && seq.Jobs != par.Jobs) {
		fatal("records are not comparable: %+v vs %+v", *seq, *par)
	}
	if par.TotalSecs <= 0 {
		fatal("parallel record has no wall time")
	}
	speedup := seq.TotalSecs / par.TotalSecs
	fmt.Printf("benchcheck: %s scale=%g: %.1fs at %s 1 -> %.1fs at %s %d (%d cores): %.2fx\n",
		seq.Run, seq.Scale, seq.TotalSecs, axis, par.TotalSecs, axis, degree(par), par.Cores, speedup)
	if par.Cores < 2 || par.Cores < degree(par) {
		fmt.Printf("benchcheck: machine had %d cores for %s %d; speedup gate skipped\n",
			par.Cores, axis, degree(par))
		return
	}
	if speedup < min {
		fmt.Fprintf(os.Stderr, "benchcheck: speedup %.2fx below required %.2fx\n", speedup, min)
		os.Exit(1)
	}
}

// checkImprovement compares the most recent candidate record against the
// most recent baseline record with the same (run, scale, seed, jobs,
// mark_workers) and fails unless the candidate is at least min times
// faster. The baseline is a frozen snapshot recorded before an
// optimization landed, so this gate asserts the optimization's win is
// still being delivered. Cache-contaminated candidates are rejected (a
// warm cache would fake any speedup); both records must come from
// machines with the same core count, else the ratio measures hardware.
func checkImprovement(cand, base []record, min float64) {
	c := &cand[len(cand)-1]
	if c.DiskHits > 0 {
		fatal("candidate record was served %d jobs from a warm cache; rerun with the cache disabled", c.DiskHits)
	}
	var b *record
	for i := range base {
		r := &base[i]
		if r.Run == c.Run && r.Scale == c.Scale && r.Seed == c.Seed &&
			r.Jobs == c.Jobs && r.MarkWorkers == c.MarkWorkers {
			b = r
		}
	}
	if b == nil {
		fatal("baseline has no record matching run=%s scale=%g seed=%d jobs=%d mark-workers=%d",
			c.Run, c.Scale, c.Seed, c.Jobs, c.MarkWorkers)
	}
	if c.TotalSecs <= 0 {
		fatal("candidate record has no wall time")
	}
	speedup := b.TotalSecs / c.TotalSecs
	fmt.Printf("benchcheck: %s scale=%g jobs=%d mark-workers=%d: baseline %.1fs -> %.1fs: %.2fx\n",
		c.Run, c.Scale, c.Jobs, c.MarkWorkers, b.TotalSecs, c.TotalSecs, speedup)
	if b.Cores != c.Cores {
		fmt.Printf("benchcheck: baseline ran on %d cores, candidate on %d; speedup gate skipped\n",
			b.Cores, c.Cores)
		return
	}
	if speedup < min {
		fmt.Fprintf(os.Stderr, "benchcheck: speedup %.2fx below required %.2fx\n", speedup, min)
		os.Exit(1)
	}
}

// checkRegression compares the most recent candidate record against the
// most recent baseline record with the same (run, scale, seed, jobs) and
// fails when wall time grew by more than maxReg. Cache-contaminated
// candidates are rejected outright — a warm cache would hide any
// regression — while a contaminated baseline only loosens the gate, so
// the freshest comparable baseline wins regardless.
func checkRegression(cand, base []record, maxReg float64) {
	c := &cand[len(cand)-1]
	if c.DiskHits > 0 {
		fatal("candidate record was served %d jobs from a warm cache; rerun with the cache disabled", c.DiskHits)
	}
	var b *record
	for i := range base {
		r := &base[i]
		if r.Run == c.Run && r.Scale == c.Scale && r.Seed == c.Seed && r.Jobs == c.Jobs {
			b = r
		}
	}
	if b == nil {
		fatal("baseline has no record matching run=%s scale=%g seed=%d jobs=%d",
			c.Run, c.Scale, c.Seed, c.Jobs)
	}
	if b.TotalSecs <= 0 {
		fatal("baseline record has no wall time")
	}
	ratio := c.TotalSecs/b.TotalSecs - 1
	fmt.Printf("benchcheck: %s scale=%g jobs=%d: baseline %.1fs -> %.1fs (%+.1f%%)\n",
		c.Run, c.Scale, c.Jobs, b.TotalSecs, c.TotalSecs, 100*ratio)
	if ratio > maxReg {
		fmt.Fprintf(os.Stderr, "benchcheck: wall time regressed %.1f%%, over the %.0f%% budget\n",
			100*ratio, 100*maxReg)
		os.Exit(1)
	}
}
