// Command benchcheck gates the parallel-sweep speedup recorded in a
// BENCH_experiments.json trajectory (written by experiments -bench-out).
// It pairs the most recent sequential (-jobs 1) record with the most
// recent parallel one for the same (run, scale, seed) and fails when the
// wall-time speedup falls short of -min-speedup — but only when the
// recording machine actually had the cores to deliver it, so trajectories
// recorded on small machines stay honest without failing the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type record struct {
	Schema    string  `json:"schema"`
	Scale     float64 `json:"scale"`
	Seed      int64   `json:"seed"`
	Jobs      int     `json:"jobs"`
	Cores     int     `json:"cores"`
	Run       string  `json:"run"`
	TotalSecs float64 `json:"total_wall_secs"`
}

func main() {
	file := flag.String("file", "BENCH_experiments.json", "trajectory file to check")
	min := flag.Float64("min-speedup", 2.0, "required sequential/parallel wall-time ratio")
	flag.Parse()

	b, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	var recs []record
	if err := json.Unmarshal(b, &recs); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", *file, err)
		os.Exit(2)
	}

	var seq, par *record
	for i := range recs {
		r := &recs[i]
		if r.Jobs == 1 {
			seq = r
		} else if r.Jobs > 1 {
			par = r
		}
	}
	if seq == nil || par == nil {
		fmt.Fprintln(os.Stderr, "benchcheck: need one -jobs 1 and one -jobs >1 record")
		os.Exit(2)
	}
	if seq.Run != par.Run || seq.Scale != par.Scale || seq.Seed != par.Seed {
		fmt.Fprintf(os.Stderr, "benchcheck: records are not comparable: %+v vs %+v\n", *seq, *par)
		os.Exit(2)
	}
	if par.TotalSecs <= 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: parallel record has no wall time")
		os.Exit(2)
	}
	speedup := seq.TotalSecs / par.TotalSecs
	fmt.Printf("benchcheck: %s scale=%g: %.1fs sequential -> %.1fs at -jobs %d (%d cores): %.2fx\n",
		seq.Run, seq.Scale, seq.TotalSecs, par.TotalSecs, par.Jobs, par.Cores, speedup)
	if par.Cores < 2 || par.Cores < par.Jobs {
		fmt.Printf("benchcheck: machine had %d cores for %d jobs; speedup gate skipped\n", par.Cores, par.Jobs)
		return
	}
	if speedup < *min {
		fmt.Fprintf(os.Stderr, "benchcheck: speedup %.2fx below required %.2fx\n", speedup, *min)
		os.Exit(1)
	}
}
