// Command experiments regenerates the tables and figures of "Garbage
// Collection Without Paging" (PLDI 2005) on the simulated substrate.
//
// Usage:
//
//	experiments [-run id[,id...]] [-scale f] [-seed n] [-list] [-counters]
//
// Experiment ids: table1, fig2, fig3, fig3x, fig4, fig5, fig6, fig7,
// ablate; "all" runs everything. Scale 1.0 is paper scale (1 GB machine);
// the default 0.25 preserves the shapes at a fraction of the runtime.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bookmarkgc/internal/bench"
)

func main() {
	var (
		run      = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale    = flag.Float64("scale", 0.25, "workload/memory scale (1.0 = paper scale)")
		seed     = flag.Int64("seed", 1, "workload random seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		counters = flag.Bool("counters", false, "collect event counters and add them to report notes")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	opts := bench.Options{Scale: *scale, Seed: *seed, Counters: *counters}
	var selected []bench.Experiment
	if *run == "all" {
		selected = bench.Experiments()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("bookmarking collection experiments (scale %.2f, seed %d)\n\n", *scale, *seed)
	for _, e := range selected {
		start := time.Now()
		reports := e.Run(opts)
		for i := range reports {
			reports[i].Print(os.Stdout)
		}
		fmt.Printf("  [%s completed in %.1fs wall time]\n\n", e.ID, time.Since(start).Seconds())
	}
}
