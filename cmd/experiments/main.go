// Command experiments regenerates the tables and figures of "Garbage
// Collection Without Paging" (PLDI 2005) on the simulated substrate,
// sweeping each experiment's configuration matrix on a parallel,
// cache-aware, resumable job runner.
//
// Usage:
//
//	experiments [-run id[,id...]] [-scale f] [-seed n] [-list] [-counters]
//	            [-jobs n] [-mark-workers n] [-cache-dir dir] [-resume]
//	            [-timeout d] [-format text|json] [-bench-out file]
//	            [-expect-cached]
//
// Experiment ids: table1, fig2, fig2x, fig3, fig3x, fig4, fig5, fig6,
// fig7, ablate; "all" runs everything. Scale 1.0 is paper scale (1 GB
// machine); the default 0.25 preserves the shapes at a fraction of the
// runtime.
//
// -jobs n       run up to n simulations concurrently (default GOMAXPROCS)
// -mark-workers n  host threads for each simulation's parallel mark engine
//
//	(default GOMAXPROCS); report bytes are bit-identical for any value
//
// -cache-dir d  persist per-job results as JSONL under d (” disables)
// -resume       serve results cached by a previous (or interrupted) run
// -timeout d    abandon any single job after d wall time (0 = none)
// -format json  emit reports as one JSON document instead of text tables
// -bench-out f  append this invocation's wall-time record to f (JSON)
// -expect-cached exit 3 unless every job was served from cache
//
// Reports go to stdout; progress, timing, and runner telemetry go to
// stderr. Report bytes are a pure function of (-run, -scale, -seed,
// -counters, -format): identical for any -jobs value, fresh or resumed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"bookmarkgc/internal/bench"
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/runner"
	"bookmarkgc/internal/telemetry"
)

func main() {
	var (
		run      = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale    = flag.Float64("scale", 0.25, "workload/memory scale (1.0 = paper scale)")
		seed     = flag.Int64("seed", 1, "workload random seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		counters = flag.Bool("counters", false, "collect event counters and add them to report notes")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "maximum concurrent simulation jobs")
		markWkrs = flag.Int("mark-workers", runtime.GOMAXPROCS(0), "host threads per simulation for the parallel mark engine (reports are bit-identical for any value)")
		cacheDir = flag.String("cache-dir", ".expcache", "directory for the persistent result store ('' disables)")
		resume   = flag.Bool("resume", false, "reuse results persisted by a previous run in -cache-dir")
		timeout  = flag.Duration("timeout", 0, "per-job wall-clock limit (0 = none)")
		format   = flag.String("format", "text", "report output format: text or json")
		benchOut = flag.String("bench-out", "", "append a wall-time record for this invocation to this JSON file")
		expect   = flag.Bool("expect-cached", false, "exit 3 unless every job was served from cache (resume smoke test)")
		httpAddr = flag.String("http", "", "serve live sweep progress (/api/progress) and /debug/pprof on this address")
	)
	flag.Parse()

	fail := func(fmtStr string, args ...any) {
		fmt.Fprintf(os.Stderr, "experiments: "+fmtStr+"\n", args...)
		os.Exit(2)
	}
	if *format != "text" && *format != "json" {
		fail("-format %q must be text or json", *format)
	}
	if *resume && *cacheDir == "" {
		fail("-resume needs a persistent store; set -cache-dir")
	}
	if *markWkrs < 1 {
		fail("-mark-workers %d must be at least 1", *markWkrs)
	}
	// Runner jobs build their own simulation environments, so the mark
	// worker count travels as the process default. It changes only
	// host-side parallelism: report bytes and cache keys are unaffected
	// (DESIGN.md §11), so cached results are shared across worker counts.
	gc.SetDefaultMarkWorkers(*markWkrs)

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	var selected []bench.Experiment
	if *run == "all" {
		selected = bench.Experiments()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fail("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, e)
		}
	}

	var cache *runner.Cache
	if *cacheDir != "" {
		var err error
		cache, err = runner.OpenCache(*cacheDir, *resume)
		if err != nil {
			fail("%v", err)
		}
		defer cache.Close()
	}
	// The progress tracker feeds both the stderr printer and, when -http
	// is set, the /api/progress endpoint that remote dashboards poll.
	tracker := &progressTracker{print: progressPrinter()}
	rn := runner.New(runner.Options{
		Workers:    *jobs,
		Timeout:    *timeout,
		Cache:      cache,
		OnProgress: tracker.observe,
	})
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fail("-http: %v", err)
		}
		fmt.Fprintf(os.Stderr, "experiments: serving progress on http://%s/api/progress\n", ln.Addr())
		go func() {
			srv := &http.Server{Handler: telemetry.NewMux(telemetry.ServerOptions{
				Progress: tracker.snapshot,
				Title:    "experiments",
			})}
			if err := srv.Serve(ln); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: http server: %v\n", err)
			}
		}()
	}

	opts := bench.Options{Scale: *scale, Seed: *seed, Counters: *counters}
	if *format == "text" {
		fmt.Printf("bookmarking collection experiments (scale %.2f, seed %d)\n\n", *scale, *seed)
	}

	var (
		records    []expRecord
		allReports []bench.Report
		totalStart = time.Now()
	)
	for _, e := range selected {
		tracker.setExperiment(e.ID)
		start := time.Now()
		reports := e.Run(opts, rn)
		wall := time.Since(start)
		records = append(records, expRecord{ID: e.ID, WallSecs: wall.Seconds()})
		if *format == "text" {
			for i := range reports {
				reports[i].Print(os.Stdout)
			}
		} else {
			allReports = append(allReports, reports...)
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %.1fs wall time]\n", e.ID, wall.Seconds())
	}
	totalWall := time.Since(totalStart)

	if *format == "json" {
		doc := struct {
			Scale   float64        `json:"scale"`
			Seed    int64          `json:"seed"`
			Reports []bench.Report `json:"reports"`
		}{*scale, *seed, allReports}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fail("encoding reports: %v", err)
		}
	}

	st := rn.Stats()
	fmt.Fprintf(os.Stderr,
		"runner: %d jobs submitted, %d executed, %d cache hits (%d memo, %d store), %d errors, %d timeouts\n",
		st.Submitted, st.Executed, st.Hits(), st.MemHits, st.DiskHits, st.Errors, st.Timeouts)

	if *benchOut != "" {
		if err := appendBenchRecord(*benchOut, benchRecord{
			Schema:      "bench-experiments/v1",
			UTC:         time.Now().UTC().Format(time.RFC3339),
			Scale:       *scale,
			Seed:        *seed,
			Jobs:        *jobs,
			MarkWorkers: *markWkrs,
			Cores:       runtime.NumCPU(),
			Run:         *run,
			TotalSecs:   totalWall.Seconds(),
			Executed:    st.Executed,
			CacheHits:   st.Hits(),
			DiskHits:    st.DiskHits,
			Experiments: records,
		}); err != nil {
			fail("writing -bench-out: %v", err)
		}
	}

	if *expect && st.Executed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: -expect-cached: %d jobs were executed rather than served from cache\n", st.Executed)
		os.Exit(3)
	}
}

// benchRecord is one invocation's wall-time entry in the -bench-out
// file, which holds a JSON array of them — the repo's machine-readable
// perf trajectory (sequential vs parallel, over time).
type benchRecord struct {
	Schema string  `json:"schema"`
	UTC    string  `json:"utc"`
	Scale  float64 `json:"scale"`
	Seed   int64   `json:"seed"`
	Jobs   int     `json:"jobs"`
	// MarkWorkers is the -mark-workers value (0 in records written before
	// the parallel mark engine existed).
	MarkWorkers int     `json:"mark_workers,omitempty"`
	Cores       int     `json:"cores"`
	Run         string  `json:"run"`
	TotalSecs   float64 `json:"total_wall_secs"`
	Executed    int     `json:"jobs_executed"`
	// CacheHits counts all result reuse; DiskHits only the hits served
	// from a warm persistent store. Memo hits (duplicate jobs within one
	// sweep) are deterministic and leave wall time comparable; disk hits
	// make it meaningless, so benchcheck's gates key on DiskHits.
	CacheHits   int         `json:"cache_hits"`
	DiskHits    int         `json:"disk_hits"`
	Experiments []expRecord `json:"experiments"`
}

// expRecord is one experiment's wall time within a benchRecord.
type expRecord struct {
	ID       string  `json:"id"`
	WallSecs float64 `json:"wall_secs"`
}

// appendBenchRecord reads path (a JSON array, possibly absent), appends
// rec, and writes it back.
func appendBenchRecord(path string, rec benchRecord) error {
	var arr []json.RawMessage
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &arr); err != nil {
			return fmt.Errorf("%s exists but is not a JSON array: %w", path, err)
		}
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	arr = append(arr, b)
	out, err := json.MarshalIndent(arr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// progressTracker fans runner progress out to the stderr printer and
// keeps the latest batch state for the /api/progress endpoint.
type progressTracker struct {
	mu         sync.Mutex
	print      func(runner.Progress)
	experiment string
	last       runner.Progress
}

func (t *progressTracker) setExperiment(id string) {
	t.mu.Lock()
	t.experiment = id
	t.last = runner.Progress{}
	t.mu.Unlock()
}

func (t *progressTracker) observe(p runner.Progress) {
	t.mu.Lock()
	t.last = p
	t.mu.Unlock()
	t.print(p)
}

// snapshot is the telemetry.ServerOptions.Progress hook: a JSON-ready
// view of the current experiment's batch.
func (t *progressTracker) snapshot() interface{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	return struct {
		Experiment string  `json:"experiment"`
		Done       int     `json:"done"`
		Total      int     `json:"total"`
		CacheHits  int     `json:"cache_hits"`
		ElapsedSec float64 `json:"elapsed_secs"`
		ETASec     float64 `json:"eta_secs"`
	}{t.experiment, t.last.Done, t.last.Total, t.last.Hits,
		t.last.Elapsed.Seconds(), t.last.ETA.Seconds()}
}

// progressPrinter returns a throttled stderr progress callback:
// done/total with cache hits and an ETA, at most ~5 lines a second,
// always printing the final state of a batch.
func progressPrinter() func(runner.Progress) {
	var mu sync.Mutex
	var last time.Time
	return func(p runner.Progress) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if p.Done < p.Total && now.Sub(last) < 200*time.Millisecond {
			return
		}
		last = now
		line := fmt.Sprintf("\rsweep: %d/%d jobs", p.Done, p.Total)
		if p.Hits > 0 {
			line += fmt.Sprintf(" (%d cached)", p.Hits)
		}
		if p.ETA > 0 {
			line += fmt.Sprintf(", eta %s", p.ETA.Round(time.Second))
		}
		fmt.Fprint(os.Stderr, line)
		if p.Done == p.Total {
			fmt.Fprintln(os.Stderr)
		}
	}
}
