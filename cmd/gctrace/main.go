// Command gctrace records, replays, synthesizes, and inspects allocation
// traces (internal/workload). A trace captures a workload's full event
// stream — allocations, root updates, data accesses, pointer stores — so
// the identical mutator can be driven through any collector, any number
// of times, without the generator: record once, replay everywhere.
//
// Usage:
//
//	gctrace record -o FILE [-program pseudojbb] [-collector BC]
//	               [-scale 0.25] [-seed 1] [-heap 77] [-phys 256]
//	gctrace replay [-collector BC] [-heap 0] [-phys 0] FILE
//	gctrace gen    -o FILE [-model markov] [-allocs 100000] [-live 1000]
//	               [-seed 1] [-name NAME]
//	gctrace stat   FILE
//	gctrace verify FILE
//
// record runs a benchmark program once, writing the trace alongside the
// normal run. replay drives a recorded or synthesized trace through a
// collector; for recorded traces the footer checksum cross-checks every
// data word against the original run. gen synthesizes a trace from a
// statistical model (markov, ramp, frag) that the spec table cannot
// express. stat prints a trace's structural statistics and content hash;
// verify exits non-zero unless the trace is well-formed down to the last
// byte. -heap/-phys of 0 on replay reuse the recording run's geometry.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"time"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/sim"
	"bookmarkgc/internal/vmm"
	"bookmarkgc/internal/workload"

	"flag"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		cmdRecord(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "gen":
		cmdGen(os.Args[2:])
	case "stat":
		cmdStat(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: gctrace {record|replay|gen|stat|verify} [flags] [FILE]\n")
	os.Exit(2)
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gctrace: "+format+"\n", args...)
	os.Exit(1)
}

// oneFile returns the single positional FILE argument of fs.
func oneFile(fs *flag.FlagSet) string {
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "gctrace: expected exactly one trace file argument\n")
		os.Exit(2)
	}
	return fs.Arg(0)
}

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		out       = fs.String("o", "", "output trace file (required)")
		program   = fs.String("program", "pseudojbb", "benchmark program (see Table 1)")
		collector = fs.String("collector", "BC", "collector to run under while recording")
		scale     = fs.Float64("scale", 0.25, "scale factor applied to all byte quantities")
		seed      = fs.Int64("seed", 1, "workload seed")
		heapMB    = fs.Float64("heap", 77, "heap size in MB (paper scale)")
		physMB    = fs.Float64("phys", 256, "physical memory in MB (paper scale)")
	)
	fs.Parse(args)
	if *out == "" {
		die("record: -o is required")
	}
	prog, ok := mutator.ByName(*program)
	if !ok {
		die("record: unknown program %q", *program)
	}
	prog = prog.Scale(*scale)
	heap := mem.RoundUpPage(uint64(*heapMB * *scale * (1 << 20)))
	phys := mem.RoundUpPage(uint64(*physMB * *scale * (1 << 20)))
	if phys < vmm.MinPhysBytes {
		die("record: -phys %v at -scale %v is below the smallest simulable machine", *physMB, *scale)
	}

	f, err := os.Create(*out)
	if err != nil {
		die("record: %v", err)
	}
	bw := bufio.NewWriter(f)
	wr, err := workload.NewWriter(bw, workload.Meta{
		Name:      prog.Name,
		Source:    "record",
		Program:   &prog,
		Seed:      *seed,
		Collector: *collector,
		HeapBytes: heap,
		PhysBytes: phys,
	})
	if err != nil {
		die("record: %v", err)
	}
	rec := workload.NewRecorder(wr)
	r := sim.Run(sim.RunConfig{
		Collector: sim.CollectorKind(*collector),
		Program:   prog, HeapBytes: heap, PhysBytes: phys,
		Seed: *seed, Sink: rec,
	})
	if r.Err != nil {
		os.Remove(*out)
		die("record: run failed: %v", r.Err)
	}
	if err := rec.Close(r.Mutator); err == nil {
		err = bw.Flush()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		die("record: writing trace: %v", err)
	}
	hash, err := workload.HashFile(*out)
	if err != nil {
		die("record: %v", err)
	}
	fmt.Printf("recorded %s: %d events, %d allocs, %d bytes, checksum %#x\n",
		*out, wr.Events(), r.Mutator.Allocations, r.Mutator.AllocatedBytes, r.Mutator.Checksum)
	fmt.Printf("content hash %s\n", hash)
	fmt.Println(runSummary(*collector, prog.Name, r))
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		collector = fs.String("collector", "BC", "collector to replay under")
		heapMB    = fs.Float64("heap", 0, "heap size in MB (0 = the recording run's)")
		physMB    = fs.Float64("phys", 0, "physical memory in MB (0 = the recording run's)")
	)
	fs.Parse(args)
	path := oneFile(fs)
	src, err := workload.Open(path)
	if err != nil {
		die("replay: %v", err)
	}
	meta := src.Meta()
	heap, phys := meta.HeapBytes, meta.PhysBytes
	if *heapMB > 0 {
		heap = mem.RoundUpPage(uint64(*heapMB * (1 << 20)))
	}
	if *physMB > 0 {
		phys = mem.RoundUpPage(uint64(*physMB * (1 << 20)))
	}
	if heap == 0 || phys == 0 {
		die("replay: %s records no run geometry (a synthesized trace?); pass -heap and -phys", path)
	}
	var prog mutator.Spec
	if meta.Program != nil {
		prog = *meta.Program
	}
	r := sim.Run(sim.RunConfig{
		Collector: sim.CollectorKind(*collector),
		Program:   prog, HeapBytes: heap, PhysBytes: phys,
		Seed: meta.Seed, Workload: src,
	})
	if r.Err != nil {
		die("replay: %v", r.Err)
	}
	fmt.Println(runSummary(*collector, meta.Name, r))
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		out    = fs.String("o", "", "output trace file (required)")
		model  = fs.String("model", "markov", "synthesis model: "+strings.Join(workload.Models, ", "))
		allocs = fs.Int("allocs", 100_000, "allocation iterations to emit")
		live   = fs.Int("live", 1_000, "live-set target in objects")
		seed   = fs.Int64("seed", 1, "model PRNG seed")
		name   = fs.String("name", "", "trace name (default: the model name)")
	)
	fs.Parse(args)
	if *out == "" {
		die("gen: -o is required")
	}
	f, err := os.Create(*out)
	if err != nil {
		die("gen: %v", err)
	}
	bw := bufio.NewWriter(f)
	err = workload.Synthesize(bw, workload.SynthParams{
		Model: *model, Allocs: *allocs, Live: *live, Seed: *seed, Name: *name,
	})
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(*out)
		die("gen: %v", err)
	}
	hash, err := workload.HashFile(*out)
	if err != nil {
		die("gen: %v", err)
	}
	fmt.Printf("generated %s (%s): %d allocation iterations, live target %d\n",
		*out, *model, *allocs, *live)
	fmt.Printf("content hash %s\n", hash)
}

func cmdStat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	fs.Parse(args)
	path := oneFile(fs)
	st := verifyFile(path)
	hash, err := workload.HashFile(path)
	if err != nil {
		die("stat: %v", err)
	}
	m := st.Meta
	fmt.Printf("%s: %q (%s), format v%d\n", path, m.Name, m.Source, m.FormatVersion)
	if m.Program != nil {
		fmt.Printf("  recorded: program %s, seed %d, collector %s, heap %dB, phys %dB\n",
			m.Program.Name, m.Seed, m.Collector, m.HeapBytes, m.PhysBytes)
	}
	if len(m.Model) > 0 {
		fmt.Printf("  model: %v, seed %d\n", m.Model, m.Seed)
	}
	fmt.Printf("  content hash %s\n", hash)
	fmt.Printf("  %d events in %d blocks, %d quantum steps\n", st.Events, st.Blocks, st.Steps)
	fmt.Printf("  allocs %d (%d nodes, %d data arrays, %d ref arrays) totalling %dB\n",
		st.Allocs, st.Nodes, st.DataArrs, st.RefArrs, st.Bytes)
	fmt.Printf("  %d temps, %d survivors; peak live %d objects\n", st.Temps, st.Survivors, st.PeakLive)
	fmt.Printf("  lifetime p50 %d, p90 %d (allocations survived)\n", st.LifetimeP50, st.LifetimeP90)
	fmt.Printf("  %d free hints, %d releases, %d nil roots\n", st.FreeHints, st.Releases, st.RootNils)
	fmt.Printf("  %d links (+%d no-op), %d work reads, %d work writes\n",
		st.Links, st.LinkNops, st.WorkReads, st.WorkWrites)
	if st.Footer.HasChecksum {
		fmt.Printf("  footer checksum %#x\n", st.Footer.Checksum)
	} else {
		fmt.Printf("  no footer checksum (synthesized)\n")
	}
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	fs.Parse(args)
	path := oneFile(fs)
	st := verifyFile(path)
	fmt.Printf("%s: OK (%d events, %d allocs, %d blocks)\n", path, st.Events, st.Allocs, st.Blocks)
}

// verifyFile scans path end to end, dying on any structural violation.
func verifyFile(path string) *workload.Stats {
	f, err := os.Open(path)
	if err != nil {
		die("%v", err)
	}
	defer f.Close()
	rd, err := workload.NewReader(bufio.NewReader(f))
	if err != nil {
		die("%s: %v", path, err)
	}
	st, err := workload.Verify(rd)
	if err != nil {
		die("%s: %v", path, err)
	}
	return st
}

func runSummary(col, name string, r sim.Result) string {
	st := r.GCStats
	round := func(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
	return fmt.Sprintf(
		"%s/%s: exec=%.3fs alloc=%dB gcs=%d (nursery=%d full=%d compact=%d failsafe=%d) avgPause=%v maxPause=%v majflt=%d",
		col, name,
		r.ElapsedSecs, r.Mutator.AllocatedBytes,
		r.Timeline.Count(), st.Nursery, st.Full, st.Compactions, st.FailSafe,
		round(r.Timeline.AvgPause()), round(r.Timeline.MaxPause()),
		r.ProcStats.MajorFaults)
}
