// Benchmarks regenerating each table and figure of the paper at reduced
// scale. Run them with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes one full experiment per iteration and reports
// the experiment's wall time; the actual rows (the paper's data) are
// printed by cmd/experiments. BenchmarkHeadline additionally reports the
// paper's headline ratios as custom metrics.
package bookmarkgc_test

import (
	"testing"

	"bookmarkgc"
	"bookmarkgc/internal/bench"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/sim"
)

// benchScale keeps each experiment iteration in the seconds range.
const benchScale = 0.02

func benchOpts() bench.Options { return bench.Options{Scale: benchScale, Seed: 1} }

func runExperiment(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		// A fresh runner each iteration: memoization would otherwise make
		// every iteration after the first a pure cache hit.
		reports := bench.RunSequential(e, benchOpts())
		if len(reports) == 0 {
			b.Fatal("no reports")
		}
	}
}

func BenchmarkTable1(b *testing.B)    { runExperiment(b, "table1") }
func BenchmarkFig2(b *testing.B)      { runExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)      { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)      { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)      { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)      { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)      { runExperiment(b, "fig7") }
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablate") }

// BenchmarkHeadline measures the paper's abstract in one configuration:
// pseudoJBB under steady pressure (Figure 3's regime), reporting BC's
// speedup and pause-time reduction over GenMS as custom metrics.
func BenchmarkHeadline(b *testing.B) {
	prog := bookmarkgc.PseudoJBB().Scale(0.05)
	heap := mem.RoundUpPage(77 * (1 << 20) * 5 / 100)
	phys := mem.RoundUpPage(100 * (1 << 20) * 5 / 100)
	for i := 0; i < b.N; i++ {
		bc := sim.Run(sim.RunConfig{
			Collector: sim.BC, Program: prog, HeapBytes: heap, PhysBytes: phys,
			Seed: 1, Pressure: sim.SteadyPressure(heap, 0.6),
		})
		gen := sim.Run(sim.RunConfig{
			Collector: sim.GenMS, Program: prog, HeapBytes: heap, PhysBytes: phys,
			Seed: 1, Pressure: sim.SteadyPressure(heap, 0.6),
		})
		b.ReportMetric(gen.ElapsedSecs/bc.ElapsedSecs, "throughput-x")
		b.ReportMetric(float64(gen.Timeline.AvgPause())/float64(bc.Timeline.AvgPause()), "pause-x")
	}
}

// BenchmarkAllocNoPressure measures raw allocation throughput of each
// collector without memory pressure (the regime of §5.2).
func BenchmarkAllocNoPressure(b *testing.B) {
	for _, kind := range []bookmarkgc.CollectorKind{bookmarkgc.BC, bookmarkgc.GenMS, bookmarkgc.MarkSweep} {
		b.Run(string(kind), func(b *testing.B) {
			m := bookmarkgc.NewMachine(256 << 20)
			rt := m.NewRuntime("bench", kind, 16<<20)
			node := rt.DefineScalar("node", 4, 0, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.Alloc(node)
			}
			b.ReportMetric(float64(rt.Stats().BytesAlloc)/float64(b.N), "B/obj")
		})
	}
}
