package telemetry

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestDumpQuotaPerTenantCap(t *testing.T) {
	q := NewDumpQuota(2, 10, 2)
	// A noisy tenant stops at its own cap...
	if !q.TryTenant("noisy") || !q.TryTenant("noisy") {
		t.Fatal("first two dumps refused")
	}
	if q.TryTenant("noisy") {
		t.Fatal("per-tenant cap not enforced")
	}
	// ...and other tenants still have their full allowance.
	if !q.TryTenant("quiet") {
		t.Fatal("quiet tenant starved by noisy one")
	}
}

func TestDumpQuotaFleetReserveSurvives(t *testing.T) {
	q := NewDumpQuota(100, 4, 2)
	// Tenants can take only total-reserve = 2 slots no matter how many ask.
	granted := 0
	for i := 0; i < 10; i++ {
		if q.TryTenant("t") {
			granted++
		}
	}
	if granted != 2 {
		t.Fatalf("tenants took %d slots, want 2 (reserve breached)", granted)
	}
	// The reserved fleet slots are both still available.
	if !q.TryFleet() || !q.TryFleet() {
		t.Fatal("fleet reserve consumed by tenant dumps")
	}
	if q.TryFleet() {
		t.Fatal("total cap not enforced on fleet dumps")
	}
	tn, fl := q.Used()
	if tn != 2 || fl != 2 {
		t.Fatalf("Used() = (%d,%d), want (2,2)", tn, fl)
	}
}

func TestDumpQuotaCombinedCap(t *testing.T) {
	// Fleet dumps count against the shared total too: once cascades have
	// drawn the pool down, tenants cannot push the combined count past it.
	q := NewDumpQuota(100, 6, 2)
	for i := 0; i < 5; i++ {
		if !q.TryFleet() {
			t.Fatalf("fleet dump %d refused below total", i)
		}
	}
	if !q.TryTenant("t") {
		t.Fatal("tenant refused with one combined slot left")
	}
	if q.TryTenant("t") || q.TryFleet() {
		t.Fatal("combined total cap breached")
	}
	tn, fl := q.Used()
	if tn+fl != 6 {
		t.Fatalf("combined used = %d, want 6", tn+fl)
	}
}

func TestFairnessIndex(t *testing.T) {
	if f := FairnessIndex(nil); f != 1 {
		t.Fatalf("empty fairness = %v", f)
	}
	if f := FairnessIndex([]float64{5, 5, 5, 5}); math.Abs(f-1) > 1e-12 {
		t.Fatalf("uniform fairness = %v, want 1", f)
	}
	// One tenant absorbing everything: Jain's index = 1/n.
	if f := FairnessIndex([]float64{12, 0, 0, 0}); math.Abs(f-0.25) > 1e-12 {
		t.Fatalf("single-hog fairness = %v, want 0.25", f)
	}
	skew := FairnessIndex([]float64{10, 1, 1, 1})
	if skew <= 0.25 || skew >= 1 {
		t.Fatalf("skewed fairness = %v, want strictly between 1/n and 1", skew)
	}
}

func TestWriteFleetBundle(t *testing.T) {
	dir := t.TempDir()
	q := NewDumpQuota(1, 4, 2)
	b := &FleetBundle{
		Reason:       "cascade-thrash",
		SimTimeNS:    123,
		WindowFaults: 99,
		Threshold:    50,
		Policy:       "global-lru",
		EscalatedTo:  "cooperative",
		Tenants: []TenantFlightSnap{
			{Tenant: "bc-0", Collector: "BC", Cooperative: true},
			{Tenant: "ms-1", Collector: "CopyMS"},
		},
	}
	path := WriteFleetBundle(dir, 1, b, q)
	if path == "" {
		t.Fatal("bundle refused")
	}
	if filepath.Base(path) != "fleet-001-cascade-thrash.json" {
		t.Fatalf("unexpected bundle name %s", filepath.Base(path))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back FleetBundle
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != FleetBundleSchema || len(back.Tenants) != 2 || back.EscalatedTo != "cooperative" {
		t.Fatalf("bundle round-trip mismatch: %+v", back)
	}
	// Second fleet dump fits in the reserve; a third exceeds the total.
	if WriteFleetBundle(dir, 2, b, q) == "" {
		t.Fatal("second fleet dump refused within reserve")
	}
	q.TryTenant("a")
	q.TryTenant("b")
	if WriteFleetBundle(dir, 3, b, q) != "" {
		t.Fatal("fleet dump allowed past total cap")
	}
}
