// Sim-driven tests live in an external package: internal/sim imports
// telemetry, so in-package tests could not import sim back.
package telemetry_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bookmarkgc/internal/fault"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/sim"
	"bookmarkgc/internal/telemetry"
	"bookmarkgc/internal/trace"
)

// pressuredRun is a small BC run under enough steady pressure to fault:
// the shape every telemetry test wants, finished in well under a second.
func pressuredRun(tel *telemetry.Collector, ctrs *trace.Counters, markWorkers int, chaos *fault.Config) sim.Result {
	scale := 0.02
	heap := mem.RoundUpPage(uint64(77 * scale * (1 << 20)))
	phys := mem.RoundUpPage(uint64(110 * scale * (1 << 20)))
	return sim.Run(sim.RunConfig{
		Collector: sim.BC,
		Program:   mutator.PseudoJBB().Scale(scale),
		HeapBytes: heap,
		PhysBytes: phys,
		Pressure:  sim.SteadyPressure(heap, 0.6),
		Seed:      1,
		Chaos:     chaos,
		Telemetry: tel,
		Counters:  ctrs,

		MarkWorkers: markWorkers,
	})
}

func TestSamplerDeterministicAcrossMarkWorkers(t *testing.T) {
	// The acceptance bar for the telemetry layer: series bytes are a pure
	// function of the simulated run, so any host-side parallelism level
	// must produce identical CSV and JSONL output.
	export := func(workers int) (csv, jsonl []byte) {
		tel := telemetry.New(telemetry.Config{})
		r := pressuredRun(tel, trace.NewCounters(), workers, nil)
		if r.Err != nil {
			t.Fatalf("run (workers=%d): %v", workers, r.Err)
		}
		var cb, jb bytes.Buffer
		if err := tel.WriteCSV(&cb); err != nil {
			t.Fatal(err)
		}
		if err := tel.WriteJSONL(&jb); err != nil {
			t.Fatal(err)
		}
		return cb.Bytes(), jb.Bytes()
	}
	csv1, jsonl1 := export(1)
	csv8, jsonl8 := export(8)
	if !bytes.Equal(csv1, csv8) {
		t.Error("CSV series diverge between mark-workers 1 and 8")
	}
	if !bytes.Equal(jsonl1, jsonl8) {
		t.Error("JSONL series diverge between mark-workers 1 and 8")
	}
	if len(bytes.Split(csv1, []byte("\n"))) < 10 {
		t.Fatalf("suspiciously short CSV:\n%s", csv1)
	}
}

func TestTelemetryObservesOnly(t *testing.T) {
	// An instrumented run must be bit-identical to an uninstrumented one:
	// the sampler reads bookkeeping and never advances the clock.
	bare := pressuredRun(nil, nil, 0, nil)
	tel := telemetry.New(telemetry.Config{})
	instr := pressuredRun(tel, trace.NewCounters(), 0, nil)
	if bare.Err != nil || instr.Err != nil {
		t.Fatalf("runs failed: %v / %v", bare.Err, instr.Err)
	}
	if bare.ElapsedSecs != instr.ElapsedSecs {
		t.Errorf("simulated time perturbed: %v vs %v", bare.ElapsedSecs, instr.ElapsedSecs)
	}
	if bare.Mutator.Checksum != instr.Mutator.Checksum {
		t.Errorf("mutator checksum perturbed: %#x vs %#x", bare.Mutator.Checksum, instr.Mutator.Checksum)
	}
	if bare.ProcStats != instr.ProcStats {
		t.Errorf("fault counts perturbed:\n%+v\n%+v", bare.ProcStats, instr.ProcStats)
	}
	if tel.SampleCount() == 0 {
		t.Fatal("sampler took no samples")
	}
}

func TestSampleGridIsArithmetic(t *testing.T) {
	// Samples land on the fixed grid start + k*interval even when the
	// clock jumps whole pauses at a time — the property that makes the
	// series schedule-independent.
	tel := telemetry.New(telemetry.Config{SampleEvery: time.Millisecond})
	if r := pressuredRun(tel, nil, 0, nil); r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	times := tel.ColumnTail(telemetry.ColTimeNS, tel.SampleCount())
	if len(times) < 100 {
		t.Fatalf("only %d samples", len(times))
	}
	for i, ts := range times {
		if ts != times[0]+int64(i)*int64(time.Millisecond) {
			t.Fatalf("sample %d at %dns, want %dns (grid broken)",
				i, ts, times[0]+int64(i)*int64(time.Millisecond))
		}
	}
}

func TestPauseAttributionAccounts(t *testing.T) {
	// Phase self-times are disjoint by construction, so each pause's
	// breakdown must sum exactly to its duration.
	tel := telemetry.New(telemetry.Config{})
	if r := pressuredRun(tel, nil, 0, nil); r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	pauses := tel.Pauses()
	if len(pauses) == 0 {
		t.Fatal("no pauses attributed")
	}
	var sawFaults bool
	for i, p := range pauses {
		var sum time.Duration
		for _, ns := range p.PhaseNS {
			sum += ns
		}
		if sum != p.Dur {
			t.Errorf("pause %d (%s): phase self-times sum to %v, duration is %v",
				i, p.Kind, sum, p.Dur)
		}
		if p.MajorFaults > 0 {
			sawFaults = true
			if p.FaultStall == 0 {
				t.Errorf("pause %d took %d major faults but reports no fault stall",
					i, p.MajorFaults)
			}
		}
	}
	if !sawFaults {
		t.Error("pressured run attributed no in-pause major faults; pressure too weak for the test")
	}
}

func TestFlightDumpOnChaos(t *testing.T) {
	// Under the thrash regime BC is forced into fail-safes; each one must
	// produce a flight bundle explaining what led up to it.
	dir := t.TempDir()
	cfg, ok := fault.ByName("thrash", 1)
	if !ok {
		t.Fatal("unknown regime")
	}
	tel := telemetry.New(telemetry.Config{FlightDir: dir})
	ctrs := trace.NewCounters()
	if r := pressuredRun(tel, ctrs, 0, &cfg); r.Err != nil {
		t.Fatalf("chaos run: %v", r.Err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no flight bundles written (err=%v)", err)
	}
	if int(ctrs.Get(trace.CTelemetryFlightDumps)) != len(paths) {
		t.Errorf("counter says %d dumps, found %d files",
			ctrs.Get(trace.CTelemetryFlightDumps), len(paths))
	}
	var reasons []string
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var b struct {
			Schema    string                   `json:"schema"`
			Reason    string                   `json:"reason"`
			Collector string                   `json:"collector"`
			Samples   map[string][]int64       `json:"samples"`
			Events    []map[string]interface{} `json:"events"`
			Counters  map[string]uint64        `json:"counters"`
		}
		if err := json.Unmarshal(data, &b); err != nil {
			t.Fatalf("%s is not valid JSON: %v", p, err)
		}
		if b.Schema != "gcsim-flight/v1" {
			t.Errorf("%s schema = %q", p, b.Schema)
		}
		if b.Collector != "BC" {
			t.Errorf("%s collector = %q", p, b.Collector)
		}
		if len(b.Samples["time_ns"]) == 0 {
			t.Errorf("%s has no recent samples", p)
		}
		if len(b.Events) == 0 {
			t.Errorf("%s has no flight-ring events", p)
		}
		reasons = append(reasons, b.Reason)
	}
	joined := strings.Join(reasons, ",")
	if !strings.Contains(joined, "failsafe") && !strings.Contains(joined, "chaos-escalation") {
		t.Errorf("no failsafe/chaos-escalation bundle among reasons %q", joined)
	}
}

func TestFlightDumpOnLongPause(t *testing.T) {
	dir := t.TempDir()
	// A 1ns threshold makes every pause an anomaly; the cap must hold.
	tel := telemetry.New(telemetry.Config{FlightDir: dir, PauseThreshold: time.Nanosecond, MaxDumps: 3})
	if r := pressuredRun(tel, nil, 0, nil); r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "flight-*-long-pause.json"))
	if len(paths) == 0 {
		t.Fatal("no long-pause bundles written")
	}
	all, _ := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if len(all) > 3 {
		t.Errorf("%d bundles written, MaxDumps was 3", len(all))
	}
}

func TestHTTPEndpoints(t *testing.T) {
	tel := telemetry.New(telemetry.Config{})
	if r := pressuredRun(tel, trace.NewCounters(), 0, nil); r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	srv := httptest.NewServer(telemetry.NewMux(telemetry.ServerOptions{Telemetry: tel}))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "gcsim_pause_seconds") ||
		!strings.Contains(body, "gcsim_major_faults_total") {
		t.Errorf("/metrics: code %d, body %.200s", code, body)
	}
	if code, body := get("/api/series?tail=5"); code != 200 || !strings.Contains(body, `"heap_used_pages"`) {
		t.Errorf("/api/series: code %d, body %.200s", code, body)
	}
	if code, body := get("/api/summary"); code != 200 || !strings.Contains(body, `"collector":"BC"`) {
		t.Errorf("/api/summary: code %d, body %.200s", code, body)
	}
	if code, body := get("/api/pauses?tail=3"); code != 200 || !strings.Contains(body, `"kind"`) {
		t.Errorf("/api/pauses: code %d, body %.200s", code, body)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "<html") {
		t.Errorf("dashboard: code %d, body %.80s", code, body)
	}
	if code, _ := get("/api/progress"); code != 404 {
		t.Errorf("/api/progress without a Progress hook: code %d, want 404", code)
	}
}
