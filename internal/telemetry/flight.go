package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"bookmarkgc/internal/trace"
)

// flightEvent is one entry in the flight ring: a trace span boundary or
// point event, kept so a dump can show what led up to an anomaly.
type flightEvent struct {
	TimeNS int64  `json:"t_ns"`
	Kind   string `json:"kind"` // "begin", "end", "point"
	Name   string `json:"name"`
	Arg1   int64  `json:"arg1,omitempty"`
	Arg2   int64  `json:"arg2,omitempty"`
}

// flightRing is a bounded ring of recent events. Overwrites count as
// drops: history lost before any dump captured it.
type flightRing struct {
	buf   []flightEvent
	next  int
	total uint64
}

func (r *flightRing) init(capacity int) {
	r.buf = make([]flightEvent, 0, capacity)
}

func (r *flightRing) push(e flightEvent, ctrs *trace.Counters) {
	if cap(r.buf) == 0 {
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		ctrs.Inc(trace.CTelemetryRingDrops)
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// tail returns the ring's contents oldest-first.
func (r *flightRing) tail() []flightEvent {
	if len(r.buf) < cap(r.buf) {
		out := make([]flightEvent, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]flightEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// pauseJSON is a PauseAttr rendered for a bundle: phases as a name map
// (self time only, zero phases omitted).
type pauseJSON struct {
	StartNS      int64            `json:"start_ns"`
	DurNS        int64            `json:"dur_ns"`
	Kind         string           `json:"kind"`
	MajorFaults  uint64           `json:"major_faults"`
	FaultStallNS int64            `json:"fault_stall_ns"`
	OtherNS      int64            `json:"other_ns"`
	Phases       map[string]int64 `json:"phases,omitempty"`
}

func renderPause(a *PauseAttr) pauseJSON {
	pj := pauseJSON{
		StartNS:      int64(a.Start),
		DurNS:        int64(a.Dur),
		Kind:         a.Kind.String(),
		MajorFaults:  a.MajorFaults,
		FaultStallNS: int64(a.FaultStall),
		OtherNS:      int64(a.Other()),
	}
	for p, ns := range a.PhaseNS {
		if ns == 0 || trace.Phase(p) == a.pausePhase {
			continue
		}
		if pj.Phases == nil {
			pj.Phases = make(map[string]int64)
		}
		pj.Phases[trace.Phase(p).String()] = int64(ns)
	}
	return pj
}

// bundle is the diagnostic JSON a dump writes.
type bundle struct {
	Schema    string             `json:"schema"`
	Reason    string             `json:"reason"`
	Tenant    string             `json:"tenant,omitempty"`
	SimTimeNS int64              `json:"sim_time_ns"`
	Collector string             `json:"collector"`
	RunError  string             `json:"run_error,omitempty"`
	Samples   map[string][]int64 `json:"samples"`
	Events    []flightEvent      `json:"events"`
	Pauses    []pauseJSON        `json:"pauses"`
	Counters  map[string]uint64  `json:"counters,omitempty"`
	PauseP50  int64              `json:"pause_p50_ns"`
	PauseP99  int64              `json:"pause_p99_ns"`
	PauseMax  int64              `json:"pause_max_ns"`
}

// dumpLocked writes a flight bundle named for reason. Called with c.mu
// held, on the simulation goroutine; file IO is host-side and does not
// advance the simulated clock. No-op without a FlightDir or past the
// dump cap.
func (c *Collector) dumpLocked(reason string) {
	if c.cfg.FlightDir == "" {
		return
	}
	// Gate: a shared fleet quota when one is installed (charged up front;
	// a failed host write forfeits the slot), else the local per-run cap.
	if c.cfg.Quota != nil {
		if !c.cfg.Quota.TryTenant(c.cfg.Tenant) {
			return
		}
	} else if int(c.flightDumps) >= c.cfg.MaxDumps {
		return
	}
	var now int64
	if c.clock != nil {
		now = int64(c.clock.Now())
	}
	b := bundle{
		Schema:    "gcsim-flight/v1",
		Reason:    reason,
		Tenant:    c.cfg.Tenant,
		SimTimeNS: now,
		Collector: c.collectorName,
		Samples:   make(map[string][]int64, numColumns),
		Events:    c.ring.tail(),
		PauseP50:  int64(c.allDigest.Quantile(0.50)),
		PauseP99:  int64(c.allDigest.Quantile(0.99)),
		PauseMax:  int64(c.allDigest.Max()),
	}
	if c.runErr != nil {
		b.RunError = c.runErr.Error()
	}
	n := c.series.Len()
	lo := n - c.cfg.SampleTail
	if lo < 0 {
		lo = 0
	}
	for col := Column(0); col < numColumns; col++ {
		vals := make([]int64, n-lo)
		copy(vals, c.series.cols[col][lo:])
		b.Samples[col.String()] = vals
	}
	pl := len(c.pauses) - 8
	if pl < 0 {
		pl = 0
	}
	for i := pl; i < len(c.pauses); i++ {
		b.Pauses = append(b.Pauses, renderPause(&c.pauses[i]))
	}
	if c.ctrs != nil {
		b.Counters = make(map[string]uint64, trace.NumCounters)
		for id := 0; id < trace.NumCounters; id++ {
			b.Counters[trace.Counter(id).String()] = c.ctrs.Get(trace.Counter(id))
		}
	}
	if err := os.MkdirAll(c.cfg.FlightDir, 0o755); err != nil {
		return
	}
	data, err := json.MarshalIndent(&b, "", " ")
	if err != nil {
		return
	}
	c.dumpSeq++
	name := fmt.Sprintf("flight-%03d-%s.json", c.dumpSeq, reason)
	if c.cfg.Tenant != "" {
		name = fmt.Sprintf("flight-%s-%03d-%s.json", c.cfg.Tenant, c.dumpSeq, reason)
	}
	if os.WriteFile(filepath.Join(c.cfg.FlightDir, name), data, 0o644) == nil {
		c.flightDumps++
		c.ctrs.Inc(trace.CTelemetryFlightDumps)
	}
}
