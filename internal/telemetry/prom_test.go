package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bookmarkgc/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestWritePromGolden locks the Prometheus exposition byte for byte
// against a golden file, using synthetic collector state so the test is
// independent of simulator behaviour. Any change to metric names, HELP
// text, ordering, or number formatting shows up as a diff here.
func TestWritePromGolden(t *testing.T) {
	c := New(Config{})
	c.collectorName = "BC"

	var row [numColumns]int64
	row[ColTimeNS] = 2_500_000_000
	row[ColHeapUsedPages] = 1200
	row[ColResidentPages] = 800
	row[ColPinnedFrames] = 64
	row[ColFreeFrames] = 4096
	row[ColMinorFaults] = 150
	row[ColMajorFaults] = 12
	row[ColEvictions] = 30
	row[ColAllocBytes] = 7_340_032
	row[ColBookmarks] = 42
	row[ColPagesEvicted] = 17
	row[ColGCs] = 9
	row[ColInPause] = 1
	c.series.push(&row)
	c.samplesTaken = 1

	for _, p := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		c.digests[int(metrics.PauseNursery)].ObserveDuration(p)
		c.allDigest.ObserveDuration(p)
	}
	c.digests[int(metrics.PauseFull)].ObserveDuration(4 * time.Second)
	c.allDigest.ObserveDuration(4 * time.Second)

	var buf bytes.Buffer
	if err := c.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "prom.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("prometheus exposition drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
