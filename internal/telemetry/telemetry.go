// Package telemetry is the simulator's live observability layer: a
// deterministic time-series sampler driven by the simulated clock, a
// per-pause phase-attribution tracer, pause-latency digests, and a
// flight recorder that dumps a diagnostic bundle when a run goes wrong.
//
// Determinism contract: the sampler is scheduled on the simulated clock
// at a fixed interval and only *reads* bookkeeping (page counts, fault
// counters, allocation totals) — it never touches pages or advances the
// clock, so an instrumented run is bit-identical to an uninstrumented
// one, and the exported series bytes are identical for any -mark-workers
// or -jobs value. Everything host-visible (HTTP handlers) reads under a
// mutex; everything sim-side runs on the simulation goroutine.
package telemetry

import (
	"sync"
	"time"

	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/trace"
	"bookmarkgc/internal/vmm"
)

// Column identifies one time-series column. Values are int64: either a
// level read at the sample instant (pages, frames) or a cumulative
// counter (faults, bytes), whose rate is the per-interval delta.
type Column int

const (
	// ColTimeNS is the sample's simulated timestamp in nanoseconds.
	ColTimeNS Column = iota
	// ColHeapUsedPages is the collector-accounted heap footprint.
	ColHeapUsedPages
	// ColResidentPages is the process's resident page count.
	ColResidentPages
	// ColPinnedFrames is memory pinned away by signalmem.
	ColPinnedFrames
	// ColFreeFrames is the machine's unallocated frames.
	ColFreeFrames
	// ColMinorFaults is the cumulative minor (zero-fill) fault count.
	ColMinorFaults
	// ColMajorFaults is the cumulative major (disk) fault count.
	ColMajorFaults
	// ColEvictions is the cumulative count of this process's pages evicted.
	ColEvictions
	// ColAllocBytes is cumulative bytes allocated by the mutator.
	ColAllocBytes
	// ColBookmarks is cumulative objects bookmarked (BC only).
	ColBookmarks
	// ColPagesEvicted is cumulative heap pages processed for eviction (BC).
	ColPagesEvicted
	// ColGCs is the cumulative collection count (nursery + full).
	ColGCs
	// ColInPause is 1 when the sample landed inside a stop-the-world pause.
	ColInPause
	// ColHeapLimitPages is the policy-effective heap limit in pages:
	// the configured heap clamped by the heap-limit policy's current
	// target (internal/heappolicy). With no policy it equals the
	// configured heap exactly.
	ColHeapLimitPages

	numColumns
)

var columnNames = [numColumns]string{
	ColTimeNS:         "time_ns",
	ColHeapUsedPages:  "heap_used_pages",
	ColResidentPages:  "resident_pages",
	ColPinnedFrames:   "pinned_frames",
	ColFreeFrames:     "free_frames",
	ColMinorFaults:    "minor_faults",
	ColMajorFaults:    "major_faults",
	ColEvictions:      "evictions",
	ColAllocBytes:     "alloc_bytes",
	ColBookmarks:      "objects_bookmarked",
	ColPagesEvicted:   "pages_evicted",
	ColGCs:            "gcs",
	ColInPause:        "in_pause",
	ColHeapLimitPages: "heap_limit_pages",
}

func (c Column) String() string {
	if int(c) < len(columnNames) {
		return columnNames[c]
	}
	return "invalid"
}

// NumColumns is the number of series columns (for table-driven tests).
const NumColumns = int(numColumns)

// Series is the columnar sample store: one slice per column, rows
// aligned by index.
type Series struct {
	cols [numColumns][]int64
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.cols[0]) }

func (s *Series) push(row *[numColumns]int64) {
	for i := range s.cols {
		s.cols[i] = append(s.cols[i], row[i])
	}
}

// PauseAttr is one pause with its phase breakdown: for every trace span
// kind, the self time spent in it (time in the span but not in any
// nested span) and the major faults taken there. The sum of PhaseNS over
// all phases equals Dur exactly; the pause span's own self time is the
// uninstrumented remainder ("other"). FaultStall is the portion of the
// pause spent waiting on the disk: MajorFaults times the machine's
// major-fault cost, the dominant term in the paper's thrashing pauses.
type PauseAttr struct {
	Start       time.Duration
	Dur         time.Duration
	Kind        metrics.PauseKind
	pausePhase  trace.Phase
	MajorFaults uint64
	FaultStall  time.Duration
	PhaseNS     [trace.NumPhases]time.Duration
	PhaseFaults [trace.NumPhases]uint64
}

// Other returns the pause's uninstrumented self time: the part of the
// pause outside every collector phase span.
func (a *PauseAttr) Other() time.Duration { return a.PhaseNS[a.pausePhase] }

// numPauseKinds covers metrics.PauseNursery/Full/Compact.
const numPauseKinds = 3

// Config tunes the telemetry layer. The zero value is usable: defaults
// are filled in by New.
type Config struct {
	// SampleEvery is the sampling interval in simulated time (default 1ms).
	SampleEvery time.Duration
	// PauseThreshold triggers a flight-recorder dump when a pause meets
	// it (default 500ms — the order of one disk-bound mark pass).
	PauseThreshold time.Duration
	// FlightDir, when non-empty, is where flight-recorder bundles are
	// written; empty disables dumping (the ring still records).
	FlightDir string
	// RingEvents bounds the flight ring (default 4096 events).
	RingEvents int
	// SampleTail is how many recent samples a bundle includes (default 256).
	SampleTail int
	// MaxDumps bounds bundles written per run (default 16).
	MaxDumps int
	// Tenant, when non-empty, tags flight-dump filenames and bundle
	// metadata with a tenant identity so concurrent per-tenant dumps in
	// one fleet run cannot collide in one FlightDir.
	Tenant string
	// Quota, when set, replaces the local MaxDumps gate with a fleet-wide
	// dump budget shared across tenants (see DumpQuota). A noisy tenant
	// then exhausts only its own per-tenant allowance, not the fleet's.
	Quota *DumpQuota
}

// span is one open trace span on the attribution stack. segStart and
// segFaults mark where its *current* self-time segment began; nested
// spans close the segment and reopen it when they end.
type span struct {
	phase     trace.Phase
	segStart  time.Duration
	segFaults uint64
}

// Collector accumulates a run's telemetry. Create with New, wrap the
// run's tracer with Tracer, and hand it to sim.RunConfig.Telemetry —
// sim.Run calls Attach and RunEnded. All exported readers lock, so an
// HTTP server can serve snapshots while the simulation runs.
type Collector struct {
	mu  sync.Mutex
	cfg Config

	clock *vmm.Clock
	v     *vmm.VMM
	env   *gc.Env
	col   gc.Collector
	ctrs  *trace.Counters

	collectorName  string
	majorFaultCost time.Duration

	next   time.Duration // next sample's grid timestamp
	series Series

	stack       []span
	cur         *PauseAttr
	pauseFaults uint64 // Proc major faults at pause start

	pauses    []PauseAttr
	digests   [numPauseKinds]Digest
	allDigest Digest

	ring          flightRing
	dumpSeq       int
	lastFailSafes uint64
	lastBackoffs  uint64

	samplesTaken uint64
	flightDumps  uint64

	ended  bool
	runErr error
}

// New returns a collector with cfg's zero fields defaulted.
func New(cfg Config) *Collector {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = time.Millisecond
	}
	if cfg.PauseThreshold <= 0 {
		cfg.PauseThreshold = 500 * time.Millisecond
	}
	if cfg.RingEvents <= 0 {
		cfg.RingEvents = 4096
	}
	if cfg.SampleTail <= 0 {
		cfg.SampleTail = 256
	}
	if cfg.MaxDumps <= 0 {
		cfg.MaxDumps = 16
	}
	c := &Collector{cfg: cfg}
	c.ring.init(cfg.RingEvents)
	return c
}

// Attach wires the collector to a run and schedules the first sample.
// Call once, after the environment exists and before the mutator steps.
func (c *Collector) Attach(v *vmm.VMM, env *gc.Env, col gc.Collector, ctrs *trace.Counters) {
	c.mu.Lock()
	c.v = v
	c.env = env
	c.col = col
	c.ctrs = ctrs
	c.clock = v.Clock
	c.collectorName = col.Name()
	c.majorFaultCost = v.Costs().MajorFault
	c.next = v.Clock.Now()
	if ctrs != nil {
		c.lastFailSafes = ctrs.Get(trace.CFailSafesForced)
		c.lastBackoffs = ctrs.Get(trace.CGCRequestBackoffs)
	}
	at := c.next
	c.mu.Unlock()
	v.Clock.Schedule(at, c.tick)
}

// tick is the sampler event: record one sample stamped at its grid time
// and reschedule one interval later. When the clock jumped several
// intervals (a long pause), the rescheduled event is already due and
// fires again within the same Advance, so the grid never skips — sample
// timestamps are a fixed arithmetic sequence regardless of how the run
// advanced time, which is what makes series bytes schedule-independent.
func (c *Collector) tick() {
	c.mu.Lock()
	c.sampleLocked(c.next)
	c.next += c.cfg.SampleEvery
	at := c.next
	clock := c.clock
	c.mu.Unlock()
	clock.Schedule(at, c.tick)
}

// sampleLocked appends one row stamped at. Reads bookkeeping only.
func (c *Collector) sampleLocked(at time.Duration) {
	if c.ended {
		return
	}
	ps := c.env.Proc.Stats()
	gs := c.col.Stats()
	var row [numColumns]int64
	row[ColTimeNS] = int64(at)
	row[ColHeapUsedPages] = int64(c.col.UsedPages())
	row[ColResidentPages] = int64(c.env.Proc.ResidentPages())
	row[ColPinnedFrames] = int64(c.v.PinnedFrames())
	row[ColFreeFrames] = int64(c.v.FreeFrames())
	row[ColMinorFaults] = int64(ps.MinorFaults)
	row[ColMajorFaults] = int64(ps.MajorFaults)
	row[ColEvictions] = int64(ps.Evictions)
	row[ColAllocBytes] = int64(gs.BytesAlloc)
	row[ColBookmarks] = int64(gs.Bookmarked)
	row[ColPagesEvicted] = int64(gs.PagesEvicted)
	row[ColGCs] = int64(gs.Nursery + gs.Full)
	row[ColHeapLimitPages] = int64(c.env.HeapLimitPages())
	if c.cur != nil {
		row[ColInPause] = 1
	}
	c.series.push(&row)
	c.samplesTaken++
	c.ctrs.Inc(trace.CTelemetrySamples)
}

// RunEnded finalizes the run: sim.Run calls it from its finish path,
// with the run's failure (nil on success). An out-of-memory death dumps
// a flight bundle.
func (c *Collector) RunEnded(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ended {
		return
	}
	c.ended = true
	c.runErr = err
	if err != nil {
		c.dumpLocked("oom")
	}
}

// pausePhaseKind maps a pause span to its metrics kind, or false when p
// is not a pause span.
func pausePhaseKind(p trace.Phase) (metrics.PauseKind, bool) {
	switch p {
	case trace.PhasePauseNursery:
		return metrics.PauseNursery, true
	case trace.PhasePauseFull:
		return metrics.PauseFull, true
	case trace.PhasePauseCompact:
		return metrics.PauseCompact, true
	}
	return 0, false
}

// charge adds a closed self-time segment to the active pause's buckets.
func (c *Collector) charge(p trace.Phase, dur time.Duration, faults uint64) {
	if c.cur == nil {
		return
	}
	c.cur.PhaseNS[p] += dur
	c.cur.PhaseFaults[p] += faults
}

// spanBegin handles a Begin from the wrapped tracer.
func (c *Collector) spanBegin(p trace.Phase) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.clock == nil {
		return
	}
	now := c.clock.Now()
	faults := c.env.Proc.Stats().MajorFaults
	c.ring.push(flightEvent{TimeNS: int64(now), Kind: "begin", Name: p.String()}, c.ctrs)
	if n := len(c.stack); n > 0 {
		top := &c.stack[n-1]
		c.charge(top.phase, now-top.segStart, faults-top.segFaults)
	} else if kind, ok := pausePhaseKind(p); ok {
		c.cur = &PauseAttr{Start: now, Kind: kind, pausePhase: p}
		c.pauseFaults = faults
	}
	c.stack = append(c.stack, span{phase: p, segStart: now, segFaults: faults})
	if p == trace.PhaseFailSafe {
		c.dumpLocked("failsafe")
	}
}

// spanEnd handles an End from the wrapped tracer: close the top span's
// segment, pop it, and restart the parent's segment. When the popped
// span was the pause itself, finalize and record the attribution.
func (c *Collector) spanEnd(p trace.Phase) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.clock == nil || len(c.stack) == 0 {
		return
	}
	now := c.clock.Now()
	faults := c.env.Proc.Stats().MajorFaults
	c.ring.push(flightEvent{TimeNS: int64(now), Kind: "end", Name: p.String()}, c.ctrs)
	top := c.stack[len(c.stack)-1]
	c.charge(top.phase, now-top.segStart, faults-top.segFaults)
	c.stack = c.stack[:len(c.stack)-1]
	if n := len(c.stack); n > 0 {
		parent := &c.stack[n-1]
		parent.segStart = now
		parent.segFaults = faults
		return
	}
	if c.cur == nil {
		return
	}
	attr := c.cur
	c.cur = nil
	attr.Dur = now - attr.Start
	attr.MajorFaults = faults - c.pauseFaults
	attr.FaultStall = time.Duration(attr.MajorFaults) * c.majorFaultCost
	c.pauses = append(c.pauses, *attr)
	c.digests[attr.Kind].ObserveDuration(attr.Dur)
	c.allDigest.ObserveDuration(attr.Dur)
	if attr.Dur >= c.cfg.PauseThreshold {
		c.dumpLocked("long-pause")
	}
	if c.ctrs != nil {
		fs, bo := c.ctrs.Get(trace.CFailSafesForced), c.ctrs.Get(trace.CGCRequestBackoffs)
		if fs > c.lastFailSafes || bo > c.lastBackoffs {
			c.lastFailSafes, c.lastBackoffs = fs, bo
			c.dumpLocked("chaos-escalation")
		}
	}
}

// point handles a Point from the wrapped tracer: flight-ring only.
func (c *Collector) point(e trace.Event, a1, a2 int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.clock == nil {
		return
	}
	c.ring.push(flightEvent{
		TimeNS: int64(c.clock.Now()), Kind: "point", Name: e.String(), Arg1: a1, Arg2: a2,
	}, c.ctrs)
}

// attributor is the tracer wrapper Tracer returns: every event goes to
// the inner tracer unchanged, then feeds the attribution and the flight
// ring. It reads the clock but never advances it.
type attributor struct {
	inner trace.Tracer
	c     *Collector
}

func (a attributor) Enabled() bool { return true }

func (a attributor) Begin(p trace.Phase) {
	a.inner.Begin(p)
	a.c.spanBegin(p)
}

func (a attributor) End(p trace.Phase) {
	a.c.spanEnd(p)
	a.inner.End(p)
}

func (a attributor) Point(e trace.Event, a1, a2 int64) {
	a.inner.Point(e, a1, a2)
	a.c.point(e, a1, a2)
}

// Tracer wraps inner (which may be trace.Nop{}) so the collector sees
// every span and point the run emits.
func (c *Collector) Tracer(inner trace.Tracer) trace.Tracer {
	if inner == nil {
		inner = trace.Nop{}
	}
	return attributor{inner: inner, c: c}
}

// --- snapshot accessors (all lock; safe while the run is in flight) ---

// SampleCount returns the number of samples taken.
func (c *Collector) SampleCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.series.Len()
}

// ColumnTail returns up to tail recent values of column col (all when
// tail <= 0).
func (c *Collector) ColumnTail(col Column, tail int) []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	src := c.series.cols[col]
	if tail > 0 && tail < len(src) {
		src = src[len(src)-tail:]
	}
	out := make([]int64, len(src))
	copy(out, src)
	return out
}

// Pauses returns a copy of every attributed pause so far.
func (c *Collector) Pauses() []PauseAttr {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PauseAttr, len(c.pauses))
	copy(out, c.pauses)
	return out
}

// DigestAll returns a copy of the combined pause digest.
func (c *Collector) DigestAll() Digest {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.allDigest
}

// DigestKind returns a copy of the pause digest for one kind.
func (c *Collector) DigestKind(k metrics.PauseKind) Digest {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(k) >= numPauseKinds {
		return Digest{}
	}
	return c.digests[k]
}

// FlightDumps returns the number of flight bundles written.
func (c *Collector) FlightDumps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int(c.flightDumps)
}

// CollectorName returns the attached collector's name ("" before Attach).
func (c *Collector) CollectorName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.collectorName
}

// SimTime returns the last sampled simulated timestamp.
func (c *Collector) SimTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.series.Len(); n > 0 {
		return time.Duration(c.series.cols[ColTimeNS][n-1])
	}
	return 0
}
