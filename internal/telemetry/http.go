package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// ServerOptions configures NewMux. Telemetry may be nil (a progress-only
// server, as cmd/experiments runs); Progress may be nil (no sweep
// running, as cmd/gcsim serves).
type ServerOptions struct {
	// Telemetry feeds /metrics, /api/series, /api/pauses, /api/summary,
	// and the dashboard.
	Telemetry *Collector
	// Progress, when set, is snapshotted by /api/progress — the runner's
	// sweep progress for a live experiments invocation.
	Progress func() interface{}
	// Title heads the dashboard page (defaults to "gcsim").
	Title string
}

// NewMux builds the HTTP surface: the embedded dashboard at /, the
// Prometheus exposition at /metrics, JSON series endpoints under /api/,
// and net/http/pprof under /debug/pprof/ for profiling the simulator's
// own hot path. Handlers only snapshot under the collector's mutex, so
// serving never perturbs the simulated run.
func NewMux(opts ServerOptions) *http.ServeMux {
	if opts.Title == "" {
		opts.Title = "gcsim"
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(dashboardHTML))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if opts.Telemetry == nil {
			http.Error(w, "no telemetry attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		opts.Telemetry.WriteProm(w)
	})
	mux.HandleFunc("/api/series", func(w http.ResponseWriter, r *http.Request) {
		if opts.Telemetry == nil {
			http.Error(w, "no telemetry attached", http.StatusNotFound)
			return
		}
		tail, _ := strconv.Atoi(r.URL.Query().Get("tail"))
		cols := make(map[string][]int64, NumColumns)
		for col := Column(0); int(col) < NumColumns; col++ {
			cols[col.String()] = opts.Telemetry.ColumnTail(col, tail)
		}
		writeJSON(w, struct {
			Collector string             `json:"collector"`
			Len       int                `json:"len"`
			Columns   map[string][]int64 `json:"columns"`
		}{opts.Telemetry.CollectorName(), len(cols["time_ns"]), cols})
	})
	mux.HandleFunc("/api/pauses", func(w http.ResponseWriter, r *http.Request) {
		if opts.Telemetry == nil {
			http.Error(w, "no telemetry attached", http.StatusNotFound)
			return
		}
		tail, _ := strconv.Atoi(r.URL.Query().Get("tail"))
		pauses := opts.Telemetry.Pauses()
		if tail > 0 && tail < len(pauses) {
			pauses = pauses[len(pauses)-tail:]
		}
		out := make([]pauseJSON, len(pauses))
		for i := range pauses {
			out[i] = renderPause(&pauses[i])
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/api/summary", func(w http.ResponseWriter, r *http.Request) {
		if opts.Telemetry == nil {
			http.Error(w, "no telemetry attached", http.StatusNotFound)
			return
		}
		t := opts.Telemetry
		d := t.DigestAll()
		writeJSON(w, struct {
			Collector   string  `json:"collector"`
			SimTimeNS   int64   `json:"sim_time_ns"`
			Samples     int     `json:"samples"`
			Pauses      uint64  `json:"pauses"`
			PauseP50NS  uint64  `json:"pause_p50_ns"`
			PauseP99NS  uint64  `json:"pause_p99_ns"`
			PauseMaxNS  uint64  `json:"pause_max_ns"`
			FlightDumps int     `json:"flight_dumps"`
			MeanPauseNS float64 `json:"pause_mean_ns"`
		}{t.CollectorName(), int64(t.SimTime()), t.SampleCount(), d.Count(),
			d.Quantile(0.50), d.Quantile(0.99), d.Max(), t.FlightDumps(), d.Mean()})
	})
	mux.HandleFunc("/api/progress", func(w http.ResponseWriter, r *http.Request) {
		if opts.Progress == nil {
			http.Error(w, "no sweep in progress", http.StatusNotFound)
			return
		}
		writeJSON(w, opts.Progress())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// dashboardHTML is the embedded single-page dashboard: it polls
// /api/series and /api/summary and draws canvas sparklines. No external
// assets, so it works offline and inside CI.
const dashboardHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>gcsim telemetry</title>
<style>
body { font: 13px/1.4 system-ui, sans-serif; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 18px; margin: 0 0 4px; }
#meta { color: #666; margin-bottom: 1em; }
.card { background: #fff; border: 1px solid #ddd; border-radius: 6px; padding: 10px 14px; margin-bottom: 12px; }
.card h2 { font-size: 13px; margin: 0 0 6px; color: #444; }
canvas { width: 100%; height: 80px; display: block; }
.val { float: right; font-variant-numeric: tabular-nums; color: #06c; }
#grid { display: grid; grid-template-columns: 1fr 1fr; gap: 12px; }
@media (max-width: 800px) { #grid { grid-template-columns: 1fr; } }
</style>
</head>
<body>
<h1>gcsim live telemetry</h1>
<div id="meta">connecting&hellip;</div>
<div id="grid"></div>
<script>
const CHARTS = [
  {title: "heap used (pages)", col: "heap_used_pages", color: "#0366d6"},
  {title: "heap limit (pages)", col: "heap_limit_pages", color: "#005cc5"},
  {title: "resident (pages)", col: "resident_pages", color: "#28a745"},
  {title: "free frames", col: "free_frames", color: "#6f42c1"},
  {title: "major faults /sample", col: "major_faults", color: "#d73a49", delta: true},
  {title: "minor faults /sample", col: "minor_faults", color: "#f66a0a", delta: true},
  {title: "alloc bytes /sample", col: "alloc_bytes", color: "#005cc5", delta: true},
  {title: "objects bookmarked", col: "objects_bookmarked", color: "#22863a"},
  {title: "in pause", col: "in_pause", color: "#b31d28"},
];
const grid = document.getElementById("grid");
for (const ch of CHARTS) {
  const card = document.createElement("div");
  card.className = "card";
  card.innerHTML = "<h2>" + ch.title + "<span class=val></span></h2><canvas></canvas>";
  grid.appendChild(card);
  ch.canvas = card.querySelector("canvas");
  ch.valEl = card.querySelector(".val");
}
function draw(ch, data) {
  const c = ch.canvas, ctx = c.getContext("2d");
  c.width = c.clientWidth * devicePixelRatio;
  c.height = c.clientHeight * devicePixelRatio;
  ctx.clearRect(0, 0, c.width, c.height);
  if (data.length < 2) return;
  let v = data;
  if (ch.delta) {
    v = [];
    for (let i = 1; i < data.length; i++) v.push(Math.max(0, data[i] - data[i-1]));
  }
  const max = Math.max(...v, 1), min = Math.min(...v, 0);
  ctx.beginPath();
  ctx.strokeStyle = ch.color;
  ctx.lineWidth = 1.5 * devicePixelRatio;
  for (let i = 0; i < v.length; i++) {
    const x = i / (v.length - 1) * c.width;
    const y = c.height - (v[i] - min) / (max - min || 1) * (c.height - 4) - 2;
    i ? ctx.lineTo(x, y) : ctx.moveTo(x, y);
  }
  ctx.stroke();
  ch.valEl.textContent = v[v.length - 1].toLocaleString();
}
async function tick() {
  try {
    const [series, summary] = await Promise.all([
      fetch("/api/series?tail=600").then(r => r.json()),
      fetch("/api/summary").then(r => r.json()),
    ]);
    document.getElementById("meta").textContent =
      summary.collector + " · sim t=" + (summary.sim_time_ns / 1e9).toFixed(3) + "s · " +
      summary.samples + " samples · " + summary.pauses + " pauses · p99 " +
      (summary.pause_p99_ns / 1e6).toFixed(2) + "ms · max " +
      (summary.pause_max_ns / 1e6).toFixed(2) + "ms";
    for (const ch of CHARTS) draw(ch, series.columns[ch.col] || []);
  } catch (e) {
    document.getElementById("meta").textContent = "disconnected: " + e;
  }
}
tick();
setInterval(tick, 1000);
</script>
</body>
</html>
`
