package telemetry

import (
	"testing"
	"time"

	"bookmarkgc/internal/metrics"
)

func TestBucketIndexMonotonicAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 15, 16, 17, 31, 32, 63, 100, 1 << 10,
		1<<20 + 3, 1 << 40, 1<<63 + 1, ^uint64(0)} {
		idx := bucketIndex(v)
		if idx < 0 || idx >= digestBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d decreased (prev %d)", v, idx, prev)
		}
		prev = idx
	}
}

func TestBucketBoundsContainValue(t *testing.T) {
	for v := uint64(0); v < 1<<16; v += 7 {
		idx := bucketIndex(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d outside its bucket %d bounds [%d, %d]", v, idx, lo, hi)
		}
	}
}

func TestDigestExactStats(t *testing.T) {
	var d Digest
	vals := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	var sum uint64
	for _, v := range vals {
		d.Observe(v)
		sum += v
	}
	if d.Count() != uint64(len(vals)) {
		t.Errorf("Count = %d, want %d", d.Count(), len(vals))
	}
	if d.Sum() != sum {
		t.Errorf("Sum = %d, want %d", d.Sum(), sum)
	}
	if d.Min() != 1 || d.Max() != 9 {
		t.Errorf("Min/Max = %d/%d, want 1/9", d.Min(), d.Max())
	}
	if got := d.Mean(); got != float64(sum)/float64(len(vals)) {
		t.Errorf("Mean = %v", got)
	}
}

func TestDigestQuantileSmallValuesExact(t *testing.T) {
	// Values below 16 each occupy their own bucket, so quantiles over
	// them are exact (modulo the clamp to observed min/max).
	var d Digest
	for v := uint64(1); v <= 9; v++ {
		d.Observe(v)
	}
	if got := d.Quantile(0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
	if got := d.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := d.Quantile(1); got != 9 {
		t.Errorf("p100 = %d, want 9", got)
	}
}

func TestDigestQuantileApproximation(t *testing.T) {
	// Four sub-buckets per octave bound the relative error at roughly a
	// quarter of the value; check a uniform distribution stays well
	// within that and inside the observed range.
	var d Digest
	for v := uint64(1); v <= 10000; v++ {
		d.Observe(v)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := float64(d.Quantile(q))
		want := q * 10000
		if got < want*0.70 || got > want*1.30 {
			t.Errorf("Quantile(%v) = %v, want within 30%% of %v", q, got, want)
		}
	}
	if d.Quantile(2) != d.Max() || d.Quantile(-1) < d.Min() {
		t.Error("out-of-range q must clamp to observed extremes")
	}
}

func TestDigestEmpty(t *testing.T) {
	var d Digest
	if d.Count() != 0 || d.Quantile(0.5) != 0 || d.Mean() != 0 || d.Max() != 0 {
		t.Error("empty digest must answer zero everywhere")
	}
}

func TestObserveDurationClampsNegative(t *testing.T) {
	var d Digest
	d.ObserveDuration(-time.Second)
	if d.Max() != 0 || d.Count() != 1 {
		t.Errorf("negative duration: max=%d count=%d, want 0/1", d.Max(), d.Count())
	}
}

func TestFromTimeline(t *testing.T) {
	tl := &metrics.Timeline{Pauses: []metrics.Pause{
		{Dur: 2 * time.Millisecond, Kind: metrics.PauseNursery},
		{Dur: 8 * time.Millisecond, Kind: metrics.PauseFull},
		{Dur: 4 * time.Millisecond, Kind: metrics.PauseFull},
	}}
	d := FromTimeline(tl)
	if d.Count() != 3 {
		t.Fatalf("Count = %d, want 3", d.Count())
	}
	if d.Max() != uint64(8*time.Millisecond) || d.Min() != uint64(2*time.Millisecond) {
		t.Errorf("Min/Max = %d/%d", d.Min(), d.Max())
	}
	if d.Sum() != uint64(14*time.Millisecond) {
		t.Errorf("Sum = %d", d.Sum())
	}
}
