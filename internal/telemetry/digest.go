package telemetry

import (
	"math/bits"
	"time"

	"bookmarkgc/internal/metrics"
)

// Digest is a log-bucketed duration distribution sized for pause times:
// four sub-buckets per power-of-two octave over the full uint64 range,
// in a fixed 256-entry array. Quantiles are answered by walking the
// buckets and interpolating inside the winning one, giving roughly
// ±12% relative error; count, sum, min, and max are exact. Observing is
// O(1) and allocation-free, so collectors can feed every pause without
// perturbing the run.
type Digest struct {
	buckets [digestBuckets]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

const digestBuckets = 256

// bucketIndex maps v to its bucket: values below 16 map directly, every
// later octave splits into 4 sub-buckets keyed by the two bits after the
// leading one.
func bucketIndex(v uint64) int {
	if v < 16 {
		return int(v)
	}
	l := bits.Len64(v) // >= 5
	idx := (l-1)*4 + int((v>>(l-3))&3)
	if idx >= digestBuckets {
		idx = digestBuckets - 1
	}
	return idx
}

// bucketBounds returns the inclusive value range covered by bucket idx.
func bucketBounds(idx int) (lo, hi uint64) {
	if idx < 16 {
		return uint64(idx), uint64(idx)
	}
	l := idx/4 + 1
	sub := uint64(idx % 4)
	width := uint64(1) << (l - 3)
	lo = uint64(1)<<(l-1) + sub*width
	return lo, lo + width - 1
}

// Observe records one value.
func (d *Digest) Observe(v uint64) {
	d.buckets[bucketIndex(v)]++
	d.count++
	d.sum += v
	if d.count == 1 || v < d.min {
		d.min = v
	}
	if v > d.max {
		d.max = v
	}
}

// ObserveDuration records a duration in nanoseconds (negative clamps to 0).
func (d *Digest) ObserveDuration(v time.Duration) {
	if v < 0 {
		v = 0
	}
	d.Observe(uint64(v))
}

// Count returns the number of observations.
func (d *Digest) Count() uint64 { return d.count }

// Sum returns the sum of all observations.
func (d *Digest) Sum() uint64 { return d.sum }

// Max returns the exact largest observation (0 when empty).
func (d *Digest) Max() uint64 { return d.max }

// Min returns the exact smallest observation (0 when empty).
func (d *Digest) Min() uint64 { return d.min }

// Mean returns the exact mean (0 when empty).
func (d *Digest) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.count)
}

// Quantile returns the approximate q-th quantile (q in [0,1], clamped).
// The answer interpolates linearly inside the winning bucket and is
// clamped to the exact observed [min, max].
func (d *Digest) Quantile(q float64) uint64 {
	if d.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(d.count-1)
	var seen uint64
	for idx, n := range d.buckets {
		if n == 0 {
			continue
		}
		// rank falls in this bucket when seen <= rank < seen+n.
		if float64(seen+n) > rank {
			lo, hi := bucketBounds(idx)
			frac := (rank - float64(seen)) / float64(n)
			v := float64(lo) + frac*float64(hi-lo)
			u := uint64(v)
			if u < d.min {
				u = d.min
			}
			if u > d.max {
				u = d.max
			}
			return u
		}
		seen += n
	}
	return d.max
}

// QuantileDuration is Quantile as a time.Duration.
func (d *Digest) QuantileDuration(q float64) time.Duration {
	return time.Duration(d.Quantile(q))
}

// FromTimeline builds a digest of every pause duration in tl. Reduction
// code (experiment reports) uses this to get p50/p95/p99/p99.9 columns
// from a serialized timeline.
func FromTimeline(tl *metrics.Timeline) *Digest {
	d := &Digest{}
	for _, p := range tl.Pauses {
		d.ObserveDuration(p.Dur)
	}
	return d
}
