package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// DumpQuota is a fleet-wide flight-dump budget shared by every tenant's
// telemetry collector in one run. Two failure modes it prevents: tenants
// writing into one FlightDir must not exhaust each other's allowance (a
// noisy neighbor dumping sixteen OOM bundles would otherwise silence
// everyone else), and fleet-level cascade bundles must never be crowded
// out — FleetReserve slots of the total are reserved for them and are
// unreachable from TryTenant.
type DumpQuota struct {
	mu sync.Mutex

	perTenant    int // max dumps any single tenant may write
	total        int // max dumps across the whole run, incl. the reserve
	fleetReserve int // slots of total only TryFleet can use

	tenant     map[string]int
	tenantUsed int
	fleetUsed  int
}

// NewDumpQuota builds a quota. Non-positive arguments default to
// perTenant 4, total 32, reserve 4; the reserve is clamped below total.
func NewDumpQuota(perTenant, total, fleetReserve int) *DumpQuota {
	if perTenant <= 0 {
		perTenant = 4
	}
	if total <= 0 {
		total = 32
	}
	if fleetReserve <= 0 {
		fleetReserve = 4
	}
	if fleetReserve >= total {
		fleetReserve = total - 1
	}
	return &DumpQuota{
		perTenant:    perTenant,
		total:        total,
		fleetReserve: fleetReserve,
		tenant:       make(map[string]int),
	}
}

// TryTenant charges one dump slot to tag, reporting whether the dump may
// proceed. Tenants draw only from total-fleetReserve, so the fleet's
// cascade slots survive any amount of per-tenant noise.
func (q *DumpQuota) TryTenant(tag string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.tenant[tag] >= q.perTenant || q.tenantUsed >= q.total-q.fleetReserve ||
		q.tenantUsed+q.fleetUsed >= q.total {
		return false
	}
	q.tenant[tag]++
	q.tenantUsed++
	return true
}

// TryFleet charges one fleet-level dump slot (cascade bundles).
func (q *DumpQuota) TryFleet() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.tenantUsed+q.fleetUsed >= q.total {
		return false
	}
	q.fleetUsed++
	return true
}

// Used returns (tenant dumps, fleet dumps) written so far.
func (q *DumpQuota) Used() (tenant, fleet int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.tenantUsed, q.fleetUsed
}

// FairnessIndex is Jain's fairness index over xs: (Σx)² / (n·Σx²).
// 1.0 means perfectly even, 1/n means one tenant absorbs everything.
// Empty or all-zero input counts as perfectly fair.
func FairnessIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// TenantFlightSnap is one tenant's state at the moment a fleet-level
// event (a cascade) fired, embedded in the FleetBundle.
type TenantFlightSnap struct {
	Tenant        string `json:"tenant"`
	Collector     string `json:"collector"`
	Cooperative   bool   `json:"cooperative"`
	ResidentPages int    `json:"resident_pages"`
	MajorFaults   uint64 `json:"major_faults"`
	Evictions     uint64 `json:"evictions"`
	PauseP99NS    int64  `json:"pause_p99_ns,omitempty"`
	Penalized     bool   `json:"penalized,omitempty"`
	Failed        string `json:"failed,omitempty"`
}

// FleetBundle is the fleet-wide flight dump written when the cascade
// detector trips: which window tripped it, what the arbiter did about
// it, and a per-tenant snapshot for postmortem attribution.
type FleetBundle struct {
	Schema        string             `json:"schema"`
	Reason        string             `json:"reason"`
	SimTimeNS     int64              `json:"sim_time_ns"`
	WindowNS      int64              `json:"window_ns"`
	WindowFaults  uint64             `json:"window_major_faults"`
	Threshold     uint64             `json:"threshold_major_faults"`
	SustainedFor  int                `json:"sustained_windows"`
	Policy        string             `json:"policy"`
	EscalatedTo   string             `json:"escalated_to,omitempty"`
	Fairness      float64            `json:"eviction_fairness"`
	AggMajor      uint64             `json:"agg_major_faults"`
	AggEvictions  uint64             `json:"agg_evictions"`
	ArbiterVetoes uint64             `json:"arbiter_vetoes"`
	Tenants       []TenantFlightSnap `json:"tenants"`
}

// FleetBundleSchema is the schema tag every fleet bundle carries.
const FleetBundleSchema = "gcsim-fleet-flight/v1"

// WriteFleetBundle writes b into dir through the quota's reserved fleet
// slots, returning the file path ("" when the quota or IO refused).
// seq distinguishes multiple cascades in one run.
func WriteFleetBundle(dir string, seq int, b *FleetBundle, q *DumpQuota) string {
	if dir == "" {
		return ""
	}
	if q != nil && !q.TryFleet() {
		return ""
	}
	b.Schema = FleetBundleSchema
	if b.Reason == "" {
		b.Reason = "cascade-thrash"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	data, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		return ""
	}
	path := filepath.Join(dir, fmt.Sprintf("fleet-%03d-%s.json", seq, b.Reason))
	if os.WriteFile(path, data, 0o644) != nil {
		return ""
	}
	return path
}
