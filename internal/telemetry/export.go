package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
)

// This file serializes a run's telemetry. Two formats:
//
//   - CSV: the sample series only — one header row of column names,
//     one row per sample, plain integers.
//   - JSONL: the full story — one "sample" object per sample, then one
//     "pause" object per attributed pause (phase self-times and fault
//     stalls), then one "digest" object per pause kind plus the
//     combined one.
//
// Both formats are assembled with fixed field orderings from this
// package (maps go through encoding/json, which sorts keys), so output
// bytes are identical for any host schedule — the determinism tests cmp
// these bytes across -mark-workers and -jobs values.

// WriteCSV writes the sample series as CSV.
func (c *Collector) WriteCSV(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	bw := bufio.NewWriter(w)
	for i := Column(0); i < numColumns; i++ {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(i.String())
	}
	bw.WriteByte('\n')
	n := c.series.Len()
	var buf [20]byte
	for row := 0; row < n; row++ {
		for i := Column(0); i < numColumns; i++ {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.Write(appendInt(buf[:0], c.series.cols[i][row]))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// appendInt formats v in base 10 (strconv.AppendInt without the import
// weight at the call sites that loop per sample).
func appendInt(dst []byte, v int64) []byte {
	if v < 0 {
		dst = append(dst, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(dst, tmp[i:]...)
}

// WriteJSONL writes samples, pause attributions, and digests as one
// JSON object per line.
func (c *Collector) WriteJSONL(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	bw := bufio.NewWriter(w)
	n := c.series.Len()
	var buf [20]byte
	for row := 0; row < n; row++ {
		bw.WriteString(`{"type":"sample"`)
		for i := Column(0); i < numColumns; i++ {
			bw.WriteString(`,"`)
			bw.WriteString(i.String())
			bw.WriteString(`":`)
			bw.Write(appendInt(buf[:0], c.series.cols[i][row]))
		}
		bw.WriteString("}\n")
	}
	for i := range c.pauses {
		pj := renderPause(&c.pauses[i])
		line, err := json.Marshal(struct {
			Type string `json:"type"`
			pauseJSON
		}{"pause", pj})
		if err != nil {
			return err
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	writeDigest := func(kind string, d *Digest) error {
		line, err := json.Marshal(struct {
			Type   string `json:"type"`
			Kind   string `json:"kind"`
			Count  uint64 `json:"count"`
			SumNS  uint64 `json:"sum_ns"`
			P50NS  uint64 `json:"p50_ns"`
			P95NS  uint64 `json:"p95_ns"`
			P99NS  uint64 `json:"p99_ns"`
			P999NS uint64 `json:"p999_ns"`
			MaxNS  uint64 `json:"max_ns"`
		}{"digest", kind, d.Count(), d.Sum(), d.Quantile(0.50), d.Quantile(0.95),
			d.Quantile(0.99), d.Quantile(0.999), d.Max()})
		if err != nil {
			return err
		}
		bw.Write(line)
		bw.WriteByte('\n')
		return nil
	}
	for k := 0; k < numPauseKinds; k++ {
		if c.digests[k].Count() == 0 {
			continue
		}
		if err := writeDigest(kindName(k), &c.digests[k]); err != nil {
			return err
		}
	}
	if err := writeDigest("all", &c.allDigest); err != nil {
		return err
	}
	return bw.Flush()
}

// kindName names pause kind k for export ("nursery", "full", "compact").
func kindName(k int) string {
	switch k {
	case 0:
		return "nursery"
	case 1:
		return "full"
	case 2:
		return "compact"
	}
	return "invalid"
}
