package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WriteProm writes the Prometheus text exposition format (v0.0.4): the
// latest sample as gauges/counters, per-kind pause summaries from the
// digests, and the telemetry layer's own counters. Metric order, HELP
// and TYPE lines, and number formatting are all fixed, so the output is
// golden-testable byte for byte.
func (c *Collector) WriteProm(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	bw := bufio.NewWriter(w)

	var last [numColumns]int64
	if n := c.series.Len(); n > 0 {
		for i := range last {
			last[i] = c.series.cols[i][n-1]
		}
	}
	g := func(name, help, typ string, v int64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
	}
	fmt.Fprintf(bw, "# HELP gcsim_sim_time_seconds Simulated time at the last sample.\n")
	fmt.Fprintf(bw, "# TYPE gcsim_sim_time_seconds gauge\n")
	fmt.Fprintf(bw, "gcsim_sim_time_seconds %s\n", promFloat(float64(last[ColTimeNS])/1e9))
	g("gcsim_heap_used_pages", "Collector-accounted heap footprint in pages.", "gauge", last[ColHeapUsedPages])
	g("gcsim_heap_limit_pages", "Policy-effective heap limit in pages.", "gauge", last[ColHeapLimitPages])
	g("gcsim_resident_pages", "Process pages resident in physical memory.", "gauge", last[ColResidentPages])
	g("gcsim_pinned_frames", "Frames pinned away by signalmem.", "gauge", last[ColPinnedFrames])
	g("gcsim_free_frames", "Unallocated physical frames.", "gauge", last[ColFreeFrames])
	g("gcsim_in_pause", "1 when the last sample landed inside a pause.", "gauge", last[ColInPause])
	g("gcsim_minor_faults_total", "Minor (zero-fill) page faults.", "counter", last[ColMinorFaults])
	g("gcsim_major_faults_total", "Major (disk) page faults.", "counter", last[ColMajorFaults])
	g("gcsim_evictions_total", "Process pages evicted to the swap device.", "counter", last[ColEvictions])
	g("gcsim_alloc_bytes_total", "Bytes allocated by the mutator.", "counter", last[ColAllocBytes])
	g("gcsim_objects_bookmarked_total", "Objects bookmarked (BC).", "counter", last[ColBookmarks])
	g("gcsim_pages_evicted_total", "Heap pages processed for eviction (BC).", "counter", last[ColPagesEvicted])
	g("gcsim_gcs_total", "Collections completed (nursery + full).", "counter", last[ColGCs])

	fmt.Fprintf(bw, "# HELP gcsim_pause_seconds Stop-the-world pause durations by kind.\n")
	fmt.Fprintf(bw, "# TYPE gcsim_pause_seconds summary\n")
	for k := 0; k < numPauseKinds; k++ {
		d := &c.digests[k]
		kind := kindName(k)
		for _, q := range [...]struct {
			label string
			q     float64
		}{{"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}, {"0.999", 0.999}} {
			fmt.Fprintf(bw, "gcsim_pause_seconds{kind=%q,quantile=%q} %s\n",
				kind, q.label, promFloat(float64(d.Quantile(q.q))/1e9))
		}
		fmt.Fprintf(bw, "gcsim_pause_seconds_sum{kind=%q} %s\n", kind, promFloat(float64(d.Sum())/1e9))
		fmt.Fprintf(bw, "gcsim_pause_seconds_count{kind=%q} %d\n", kind, d.Count())
	}
	fmt.Fprintf(bw, "# HELP gcsim_pause_max_seconds Longest pause observed, by kind.\n")
	fmt.Fprintf(bw, "# TYPE gcsim_pause_max_seconds gauge\n")
	for k := 0; k < numPauseKinds; k++ {
		fmt.Fprintf(bw, "gcsim_pause_max_seconds{kind=%q} %s\n",
			kindName(k), promFloat(float64(c.digests[k].Max())/1e9))
	}

	g("gcsim_telemetry_samples_total", "Time-series samples taken.", "counter", int64(c.samplesTaken))
	g("gcsim_telemetry_flight_dumps_total", "Flight-recorder bundles written.", "counter", int64(c.flightDumps))
	ringDrops := c.ring.total - uint64(len(c.ring.buf))
	if c.ring.total < uint64(len(c.ring.buf)) {
		ringDrops = 0
	}
	g("gcsim_telemetry_ring_drops_total", "Flight-ring entries overwritten.", "counter", int64(ringDrops))
	return bw.Flush()
}

// promFloat renders a float the shortest way that round-trips, matching
// Prometheus client conventions closely enough for scrapes and exactly
// enough for golden tests.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
