package mutator

// The benchmark suite (Table 1 of the paper). TotalAlloc and MinHeap are
// taken directly from the table; the remaining parameters are calibrated
// to each program's published character: allocation-intensive or not,
// pointer-rich or array-heavy, large live set or small, plus pseudoJBB's
// immortal-warehouses-then-short-lived-transactions shape (§5.3.2).
//
// The size mixes use the engine's two shapes — 4-word scalar nodes with
// two reference fields, and pointer-free data arrays — in proportions
// that land the mean object size and pointer density in the right
// neighbourhood for each program.

// smallMix: predominantly small scalars with some modest arrays.
var smallMix = []SizeBand{
	{Weight: 70, Array: false},
	{Weight: 20, Array: true, MinWords: 4, MaxWords: 16},
	{Weight: 10, Array: true, MinWords: 16, MaxWords: 64},
}

// arrayMix: array-heavy allocation (string/buffer processing).
var arrayMix = []SizeBand{
	{Weight: 30, Array: false},
	{Weight: 40, Array: true, MinWords: 8, MaxWords: 48},
	{Weight: 30, Array: true, MinWords: 32, MaxWords: 256},
}

// pointerMix: pointer-rich structures (trees, rule networks).
var pointerMix = []SizeBand{
	{Weight: 85, Array: false},
	{Weight: 15, Array: true, MinWords: 4, MaxWords: 24},
}

// compressMix: LZW compression works over fixed-size structures — code
// table entries and block-sized I/O chunks — not a smear of array sizes.
// The two fixed array sizes keep the live pool in a handful of segregated
// size classes, so the mature space's per-class partial-superpage tail
// stays small relative to the live data (a smeared mix at this live-set
// size strands a mostly-empty superpage in every class it touches).
var compressMix = []SizeBand{
	{Weight: 25, Array: false},                            // table nodes
	{Weight: 50, Array: true, MinWords: 16, MaxWords: 16}, // code strings
	{Weight: 25, Array: true, MinWords: 64, MaxWords: 64}, // I/O chunks
}

// Programs is the full benchmark suite, in Table 1 order.
var Programs = []Spec{
	{
		Name: "compress", TotalAlloc: 109_190_172, MinHeap: 16_777_216,
		LiveFrac: 0.45, TempFrac: 0.80, Sizes: compressMix,
		// The compression buffers: one input and one output buffer live
		// at a time, reused block-by-block (LargeLive ring), so surviving
		// buffers retire their predecessors instead of piling up in the
		// pool with open-ended lifetimes. Blocks are sized and spaced so
		// the LOS allocation rate (words per allocation) matches the old
		// spec while the transient footprint a single in-flight block
		// adds stays a few pages.
		LargeEvery: 50, LargeWords: 2048, LargeLive: 2,
		WorkPerAlloc: 24, LinkEvery: 64,
	},
	{
		Name: "jess", TotalAlloc: 267_602_628, MinHeap: 12_582_912,
		LiveFrac: 0.40, TempFrac: 0.93, Sizes: pointerMix,
		WorkPerAlloc: 6, LinkEvery: 16,
	},
	{
		Name: "raytrace", TotalAlloc: 92_381_448, MinHeap: 14_680_064,
		LiveFrac: 0.42, TempFrac: 0.90, Sizes: smallMix,
		WorkPerAlloc: 10, LinkEvery: 48,
	},
	{
		Name: "db", TotalAlloc: 61_216_580, MinHeap: 19_922_944,
		LiveFrac: 0.50, TempFrac: 0.70, Sizes: smallMix,
		WorkPerAlloc: 40, LinkEvery: 8, // index churn over a large live set
	},
	{
		Name: "javac", TotalAlloc: 181_468_984, MinHeap: 19_922_944,
		LiveFrac: 0.48, TempFrac: 0.85, Sizes: pointerMix,
		WorkPerAlloc: 12, LinkEvery: 12, // AST building and rewriting
	},
	{
		Name: "jack", TotalAlloc: 250_486_124, MinHeap: 11_534_336,
		LiveFrac: 0.40, TempFrac: 0.94, Sizes: arrayMix,
		WorkPerAlloc: 6, LinkEvery: 32,
	},
	{
		Name: "ipsixql", TotalAlloc: 350_889_840, MinHeap: 11_534_336,
		LiveFrac: 0.40, TempFrac: 0.93, Sizes: pointerMix,
		WorkPerAlloc: 5, LinkEvery: 20, // XML tree queries
	},
	{
		Name: "jython", TotalAlloc: 770_632_824, MinHeap: 11_534_336,
		LiveFrac: 0.40, TempFrac: 0.95, Sizes: smallMix,
		WorkPerAlloc: 4, LinkEvery: 24, // interpreter frames, die young
	},
	{
		Name: "pseudojbb", TotalAlloc: 233_172_290, MinHeap: 35_651_584,
		LiveFrac: 0.55, ImmortalFrac: 0.85, TempFrac: 0.92, Sizes: smallMix,
		LargeEvery: 2000, LargeWords: 4096,
		WorkPerAlloc: 14, LinkEvery: 16, // warehouses + short transactions
	},
}

// ByName returns the named program spec.
func ByName(name string) (Spec, bool) {
	for _, p := range Programs {
		if p.Name == name {
			return p, true
		}
	}
	return Spec{}, false
}

// PseudoJBB is the program used throughout the memory-pressure
// experiments (§5.3).
func PseudoJBB() Spec {
	p, _ := ByName("pseudojbb")
	return p
}
