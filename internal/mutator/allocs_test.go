package mutator_test

import (
	"testing"

	"bookmarkgc/internal/collectors"
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/vmm"
)

// TestMutatorSteadyStateAllocs pins down the arena rewrite's host-side
// contract: once a run is warmed up (type tables built, root registry and
// worklists at steady-state capacity, at least one full collection
// behind it), the mutator path — allocation, data reads and writes, root
// updates — performs zero Go heap allocations per step. Collections are
// excluded from the window (their small per-cycle residue — the parallel
// round's worker goroutines, sync.Pool refills after a host GC — is
// bounded separately below); if one lands in it anyway the run retries
// rather than failing on GC residue.
func TestMutatorSteadyStateAllocs(t *testing.T) {
	clock := vmm.NewClock()
	v := vmm.New(clock, 128<<20, vmm.DefaultCosts())
	env := gc.NewEnv(v, "allocs", 24<<20)
	col := collectors.NewMarkSweep(env)
	types := mutator.DeclareTypes(env)
	run := mutator.NewRun(mutator.PseudoJBB().Scale(0.5), col, types, 1)

	// Warm up past at least one full collection so every growable
	// structure reaches steady-state capacity.
	for i := 0; col.Stats().Full < 1; i++ {
		if !run.Step(256) {
			t.Fatalf("program ended during warmup at step %d", i)
		}
		if i > 5000 {
			t.Fatal("no collection in 5000 warmup steps; shrink the heap")
		}
	}
	for attempt := 0; attempt < 5; attempt++ {
		before := col.Stats().Full
		avg := testing.AllocsPerRun(100, func() {
			if !run.Step(64) {
				t.Fatal("program ended during measurement")
			}
		})
		if col.Stats().Full != before {
			continue // a collection landed in the window; measure again
		}
		if avg != 0 {
			t.Fatalf("steady-state mutator allocates: %v allocs per 64-alloc step", avg)
		}
		return
	}
	t.Fatal("could not find a collection-free measurement window")
}

// TestCollectionAllocResidue bounds the per-collection allocation
// residue: a full collection may spawn its parallel-mark round
// goroutines and refill pools, but must not allocate per marked object.
// The bound is generous (400 objects per collection) so host-GC-timing
// noise cannot flake it; the regression it guards against is a
// per-object or per-page allocation sneaking into the mark/sweep path,
// which shows up thousands of objects over this budget.
func TestCollectionAllocResidue(t *testing.T) {
	clock := vmm.NewClock()
	v := vmm.New(clock, 64<<20, vmm.DefaultCosts())
	env := gc.NewEnv(v, "residue", 16<<20)
	col := collectors.NewMarkSweep(env)
	types := mutator.DeclareTypes(env)
	run := mutator.NewRun(mutator.PseudoJBB().Scale(0.5), col, types, 1)
	for i := 0; col.Stats().Full < 2; i++ {
		if !run.Step(256) {
			t.Fatalf("program ended during warmup at step %d", i)
		}
		if i > 5000 {
			t.Fatal("no collections in 5000 warmup steps")
		}
	}
	avg := testing.AllocsPerRun(1, func() {
		col.Collect(true)
	})
	if avg > 400 {
		t.Fatalf("full collection allocates %v objects; the mark/sweep path has a per-object allocation", avg)
	}
}
