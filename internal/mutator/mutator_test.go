package mutator

import (
	"testing"

	"bookmarkgc/internal/collectors"
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/vmm"
)

func testEnv(t testing.TB, heapMB int) *gc.Env {
	t.Helper()
	clock := vmm.NewClock()
	v := vmm.New(clock, 512<<20, vmm.DefaultCosts())
	return gc.NewEnv(v, "mut-test", uint64(heapMB)<<20)
}

func TestProgramsTableMatchesPaper(t *testing.T) {
	// Table 1 of the paper, exactly.
	want := map[string][2]uint64{
		"compress":  {109_190_172, 16_777_216},
		"jess":      {267_602_628, 12_582_912},
		"raytrace":  {92_381_448, 14_680_064},
		"db":        {61_216_580, 19_922_944},
		"javac":     {181_468_984, 19_922_944},
		"jack":      {250_486_124, 11_534_336},
		"ipsixql":   {350_889_840, 11_534_336},
		"jython":    {770_632_824, 11_534_336},
		"pseudojbb": {233_172_290, 35_651_584},
	}
	if len(Programs) != len(want) {
		t.Fatalf("suite has %d programs, want %d", len(Programs), len(want))
	}
	for _, p := range Programs {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected program %q", p.Name)
			continue
		}
		if p.TotalAlloc != w[0] || p.MinHeap != w[1] {
			t.Errorf("%s: (%d, %d) != Table 1 (%d, %d)", p.Name, p.TotalAlloc, p.MinHeap, w[0], w[1])
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName invented a program")
	}
	if PseudoJBB().ImmortalFrac == 0 {
		t.Error("pseudoJBB must have immortal data (§5.3.2)")
	}
}

func TestScale(t *testing.T) {
	p := PseudoJBB()
	s := p.Scale(0.1)
	if s.TotalAlloc != p.TotalAlloc/10 {
		t.Fatalf("scaled alloc = %d", s.TotalAlloc)
	}
	tiny := p.Scale(0.000001)
	if tiny.MinHeap < 1<<20 {
		t.Fatal("MinHeap not floored")
	}
}

func TestRunAllocatesRequestedVolume(t *testing.T) {
	env := testEnv(t, 8)
	types := DeclareTypes(env)
	c := collectors.NewGenMS(env)
	spec := PseudoJBB().Scale(0.02) // ~4.7 MB of allocation
	r := NewRun(spec, c, types, 1)
	res := r.RunToCompletion()
	if res.AllocatedBytes < spec.TotalAlloc {
		t.Fatalf("allocated %d < requested %d", res.AllocatedBytes, spec.TotalAlloc)
	}
	if res.AllocatedBytes > spec.TotalAlloc+spec.TotalAlloc/4 {
		t.Fatalf("allocated %d overshoots %d", res.AllocatedBytes, spec.TotalAlloc)
	}
	if res.Allocations == 0 {
		t.Fatal("no allocations counted")
	}
	if got := c.Stats().BytesAlloc; got < res.AllocatedBytes {
		t.Fatalf("collector saw %d bytes, run claims %d", got, res.AllocatedBytes)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	spec := PseudoJBB().Scale(0.01)
	run := func() (uint64, int) {
		env := testEnv(t, 8)
		types := DeclareTypes(env)
		c := collectors.NewGenMS(env)
		res := NewRun(spec, c, types, 42).RunToCompletion()
		return res.Allocations, c.Stats().Timeline.Count()
	}
	a1, g1 := run()
	a2, g2 := run()
	if a1 != a2 || g1 != g2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", a1, g1, a2, g2)
	}
}

func TestRunStepQuantum(t *testing.T) {
	env := testEnv(t, 8)
	types := DeclareTypes(env)
	c := collectors.NewGenMS(env)
	spec := PseudoJBB().Scale(0.005)
	r := NewRun(spec, c, types, 1)
	steps := 0
	for r.Step(100) {
		steps++
		if steps > 1e6 {
			t.Fatal("run never terminates")
		}
	}
	if !r.Done() {
		t.Fatal("Done() false after Step returned false")
	}
	if r.Finish().AllocatedBytes < spec.TotalAlloc {
		t.Fatal("stepped run under-allocated")
	}
}

func TestLiveSetRoughlyCalibrated(t *testing.T) {
	// After a full collection mid-run, the mature footprint should be in
	// the neighbourhood of LiveFrac*MinHeap — the calibration Table 1
	// rests on. Allow generous slack (fragmentation, pool granularity).
	env := testEnv(t, 16)
	types := DeclareTypes(env)
	c := collectors.NewGenMS(env)
	spec := PseudoJBB().Scale(0.1)
	r := NewRun(spec, c, types, 3)
	for i := 0; i < 40 && r.Step(2000); i++ {
	}
	c.Collect(true)
	livePages := c.UsedPages()
	liveBytes := uint64(livePages) * 4096
	target := uint64(float64(spec.MinHeap) * spec.LiveFrac)
	if liveBytes < target/4 || liveBytes > target*3 {
		t.Fatalf("live footprint %d bytes, calibration target %d", liveBytes, target)
	}
}

func TestWorkTouchesLiveObjects(t *testing.T) {
	env := testEnv(t, 8)
	types := DeclareTypes(env)
	c := collectors.NewGenMS(env)
	spec := Spec{
		Name: "touchy", TotalAlloc: 1 << 20, MinHeap: 2 << 20,
		LiveFrac: 0.3, TempFrac: 0.5, Sizes: smallMix,
		WorkPerAlloc: 8, LinkEvery: 4,
	}
	before := env.Proc.Stats().MinorFaults
	NewRun(spec, c, types, 9).RunToCompletion()
	if env.Proc.Stats().MinorFaults == before {
		t.Fatal("no memory was touched at all")
	}
}
