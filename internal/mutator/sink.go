package mutator

import "bookmarkgc/internal/gc"

// Allocation kinds reported to a Sink (and encoded in trace files).
// They index the three workload types DeclareTypes registers.
const (
	// AllocNode is a scalar node: 4 payload words, refs in words 0,1.
	AllocNode byte = iota
	// AllocDataArr is a pointer-free data array.
	AllocDataArr
	// AllocRefArr is a reference array (synthesized workloads only; the
	// spec-driven generator never allocates one).
	AllocRefArr
)

// Sink observes the generator's event stream at the exact granularity a
// replayer needs to reproduce the run bit-for-bit: every collector call
// and every root-registry operation, in execution order, including the
// header reads (dataIndexOf/refSlots) that touch pages on the simulated
// machine. Observation itself never advances the simulated clock, so a
// recorded run is bit-identical to an unrecorded one.
//
// Call protocol: Alloc is immediately followed by the fate of the new
// object — RootAdd or RootSet if it survives into a root slot, or the
// next event if it is dropped (a temporary).
type Sink interface {
	// Alloc reports one allocation: kind selects the workload type,
	// words its payload words (node: always 4), and, when hasInit, the
	// single initializing data write (initIdx, initVal) that follows.
	Alloc(kind byte, words int, hasInit bool, initIdx int, initVal uint64)
	// RootAdd reports Roots().Add of the just-allocated object into slot.
	RootAdd(slot int)
	// RootAddNil reports Roots().Add(mem.Nil) — an empty slot reserved at
	// startup (the large-buffer ring).
	RootAddNil(slot int)
	// RootSet reports Roots().Set(slot, <just-allocated object>).
	RootSet(slot int)
	// Work reports one mutator work item on the object in root slot:
	// a header read (dataIndexOf), ReadData at readIdx, and — when write
	// is set — a second header read and WriteData of v+1 at writeIdx.
	Work(slot, readIdx int, write bool, writeIdx int)
	// Link reports a pointer-store attempt: a header read of the object
	// in srcSlot (refSlots), then — when hasWrite — WriteRef of the
	// object in dstSlot into reference slot refIdx of the source.
	Link(srcSlot, dstSlot int, hasWrite bool, refIdx int)
	// StepEnd marks the end of one allocation iteration — the unit
	// Step's quantum counts, so replay interleaves identically under
	// RunMulti.
	StepEnd()
}

// Workload is the stepping interface sim drives: implemented by Run
// (the spec-driven generator) and by trace replayers
// (internal/workload). Quantum semantics match Run.Step: one quantum
// unit is one allocation iteration.
type Workload interface {
	Step(quantum int) bool
	Done() bool
	// Err reports a workload-internal failure (a corrupt or truncated
	// trace, typically); generated runs never fail.
	Err() error
	Finish() Result
}

// Source produces a fresh Workload bound to one collector instance —
// the seam through which sim.Run/RunMulti accept recorded or
// synthesized traces in place of a Spec's generator.
type Source interface {
	WorkloadName() string
	NewWorkload(c gc.Collector, types Types, seed int64) (Workload, error)
}

// WorkloadName implements Source: a Spec is its own workload factory.
func (s Spec) WorkloadName() string { return s.Name }

// NewWorkload implements Source for the spec-driven generator.
func (s Spec) NewWorkload(c gc.Collector, types Types, seed int64) (Workload, error) {
	return NewRun(s, c, types, seed), nil
}
