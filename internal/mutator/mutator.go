// Package mutator provides the workload engine and the synthetic
// benchmark programs standing in for the paper's suite (Table 1):
// SPECjvm98, two DaCapo benchmarks, and pseudoJBB. Each program is a
// Spec — total allocation volume, live-set target, object size mix,
// pointer density, and per-allocation mutator work — calibrated so the
// first-order statistics (bytes allocated, minimum heap) match Table 1.
//
// The engine drives a gc.Collector through its public interface only, so
// every allocation, field store (write barrier), and data access flows
// through the collector and the simulated VM.
package mutator

import (
	"math/rand"

	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
)

// SizeBand is one entry of a Spec's object size mix.
type SizeBand struct {
	Weight   int  // relative frequency
	Array    bool // array of data words (else scalar node with 2 refs)
	MinWords int  // payload words
	MaxWords int
}

// Spec describes one synthetic benchmark program.
type Spec struct {
	Name       string
	TotalAlloc uint64 // bytes to allocate over the run (Table 1)
	MinHeap    uint64 // minimum heap the paper reports (Table 1)

	// LiveFrac sets the steady live set as a fraction of MinHeap.
	LiveFrac float64
	// ImmortalFrac is the fraction of the live set allocated up front and
	// never released (pseudoJBB's warehouses).
	ImmortalFrac float64
	// TempFrac is the fraction of allocations that die immediately — the
	// weakly-generational behaviour the suite exhibits.
	TempFrac float64
	// Sizes is the object size mix for pool and temporary objects.
	Sizes []SizeBand
	// LargeEvery > 0 allocates a large (LOS-bound) data array every N
	// allocations, of LargeWords payload words.
	LargeEvery int
	LargeWords int
	// LargeLive > 0 bounds how many large buffers are simultaneously
	// live: surviving large allocations rotate through a ring of this
	// many dedicated root slots (modeling a program that reuses a few
	// I/O buffers) instead of displacing random pool entries, whose
	// open-ended lifetimes would let large garbage pile up in the live
	// set. 0 keeps the legacy pool-displacement behaviour.
	LargeLive int
	// WorkPerAlloc is how many reads/writes of random live objects the
	// mutator performs per allocation — application work that keeps the
	// live set hot in the VMM's eyes and advances simulated time.
	WorkPerAlloc int
	// LinkEvery > 0 stores a reference between two random pool objects
	// every N allocations (exercising the write barrier with old-to-young
	// and old-to-old stores).
	LinkEvery int
}

// Scale returns a copy with allocation volume and live set scaled by f —
// used to shrink runs for tests while preserving their shape.
func (s Spec) Scale(f float64) Spec {
	out := s
	out.TotalAlloc = uint64(float64(s.TotalAlloc) * f)
	out.MinHeap = uint64(float64(s.MinHeap) * f)
	if out.MinHeap < 1<<20 {
		out.MinHeap = 1 << 20
	}
	return out
}

// Types registers the standard object types a run uses.
type Types struct {
	Node    *objmodel.Type // 2 ref slots + 2 data words
	RefArr  *objmodel.Type
	DataArr *objmodel.Type
}

// DeclareTypes registers the workload types on a fresh environment.
func DeclareTypes(env *gc.Env) Types {
	return Types{
		Node:    env.Types.Scalar("node", 4, 0, 1),
		RefArr:  env.Types.Array("refs", true),
		DataArr: env.Types.Array("data", false),
	}
}

// Result summarizes one finished run.
type Result struct {
	Spec           Spec
	AllocatedBytes uint64
	Allocations    uint64
	// Checksum folds every data word the mutator read during its work
	// phases. It depends only on the program and seed — never on the
	// collector — so differing checksums across collectors expose heap
	// corruption (a differential oracle over the whole run).
	Checksum uint64
}

// Run is a step-able execution of a Spec against one collector. Stepping
// in small quanta lets a driver interleave several JVMs and deliver
// simulated-time events between steps.
type Run struct {
	spec  Spec
	c     gc.Collector
	types Types
	rng   *rand.Rand
	sink  Sink // nil = unobserved

	// Hot-path caches resolved once in NewRun: the root registry, type
	// table, and space never change identity over a run, and data-word
	// access has no barrier in any collector (gc.Base.Direct), so the
	// work loop skips the per-access interface dispatches.
	base  *gc.Base
	roots *gc.Roots
	tt    *objmodel.Table
	space *mem.Space

	bandTW    int   // cached total of Spec.Sizes weights
	immortal  []int // root slots
	pool      []int // root slots, randomly replaced
	largeRing []int // root slots rotating large survivors (Spec.LargeLive)
	largeIdx  int
	allocd    uint64
	nAllocs   uint64
	checksum  uint64
	done      bool
	started   bool
}

// NewRun prepares a run of spec on collector c. Types must have been
// declared on c's environment.
func NewRun(spec Spec, c gc.Collector, types Types, seed int64) *Run {
	r := &Run{spec: spec, c: c, types: types, rng: rand.New(rand.NewSource(seed))}
	if d, ok := c.(interface{ Direct() *gc.Base }); ok {
		r.base = d.Direct()
	}
	r.roots = c.Roots()
	env := c.Env()
	r.tt, r.space = env.Types, env.Space
	return r
}

// readData and writeData route payload-word access through the cached
// Base when the collector exposes one, else through the interface.
func (r *Run) readData(o objmodel.Ref, d int) uint64 {
	if r.base != nil {
		return r.base.ReadData(o, d)
	}
	return r.c.ReadData(o, d)
}

func (r *Run) writeData(o objmodel.Ref, d int, v uint64) {
	if r.base != nil {
		r.base.WriteData(o, d, v)
		return
	}
	r.c.WriteData(o, d, v)
}

// SetSink attaches an event observer (an allocation-trace recorder).
// Must be called before the first Step.
func (r *Run) SetSink(s Sink) { r.sink = s }

// avgObjBytes estimates the size mix's mean object size.
func (r *Run) avgObjBytes() int {
	tw, ts := 0, 0
	for _, b := range r.spec.Sizes {
		tw += b.Weight
		ts += b.Weight * (objmodel.HeaderBytes + (b.MinWords+b.MaxWords)/2*mem.WordSize)
	}
	if tw == 0 {
		return 48
	}
	return ts / tw
}

// start allocates the immortal data and sizes the pool.
func (r *Run) start() {
	r.started = true
	live := uint64(float64(r.spec.MinHeap) * r.spec.LiveFrac)
	immortalBytes := uint64(float64(live) * r.spec.ImmortalFrac)
	poolBytes := live - immortalBytes
	avg := uint64(r.avgObjBytes())

	for b := uint64(0); b < immortalBytes; {
		slot, sz := r.allocOne()
		r.immortal = append(r.immortal, slot)
		b += uint64(sz)
	}
	n := int(poolBytes / avg)
	if n < 8 {
		n = 8
	}
	r.pool = make([]int, n)
	for i := range r.pool {
		slot, _ := r.allocOne()
		r.pool[i] = slot
	}
	if k := r.spec.LargeLive; k > 0 {
		r.largeRing = make([]int, k)
		for i := range r.largeRing {
			r.largeRing[i] = r.roots.Add(mem.Nil)
			if r.sink != nil {
				r.sink.RootAddNil(r.largeRing[i])
			}
		}
	}
}

// allocOne allocates one object from the size mix, fills its data words,
// and returns its new root slot and size.
func (r *Run) allocOne() (slot int, size int) {
	o, sz := r.allocRaw()
	slot = r.roots.Add(o)
	if r.sink != nil {
		r.sink.RootAdd(slot)
	}
	return slot, sz
}

func (r *Run) pickBand() SizeBand {
	tw := r.bandTW
	if tw == 0 {
		for _, b := range r.spec.Sizes {
			tw += b.Weight
		}
		r.bandTW = tw
	}
	x := r.rng.Intn(tw)
	for _, b := range r.spec.Sizes {
		if x < b.Weight {
			return b
		}
		x -= b.Weight
	}
	return r.spec.Sizes[0]
}

func (r *Run) allocRaw() (objmodel.Ref, int) {
	b := r.pickBand()
	words := b.MinWords
	if b.MaxWords > b.MinWords {
		words += r.rng.Intn(b.MaxWords - b.MinWords + 1)
	}
	var o objmodel.Ref
	kind := AllocNode
	if b.Array {
		o = r.c.Alloc(r.types.DataArr, words)
		kind = AllocDataArr
	} else {
		o = r.c.Alloc(r.types.Node, 0)
		words = 4
	}
	// Initialize a couple of data words (application writes).
	initIdx, initVal, hasInit := 0, uint64(0), false
	if words > 0 {
		initIdx, initVal, hasInit = dataIndexFor(b, 0), r.rng.Uint64(), true
		r.c.WriteData(o, initIdx, initVal)
	}
	if r.sink != nil {
		r.sink.Alloc(kind, words, hasInit, initIdx, initVal)
	}
	r.allocd += uint64(objmodel.HeaderBytes + words*mem.WordSize)
	r.nAllocs++
	return o, objmodel.HeaderBytes + words*mem.WordSize
}

// dataIndexFor returns a payload word index that is not a reference slot.
func dataIndexFor(b SizeBand, i int) int {
	if b.Array {
		return i
	}
	return 2 + i%2 // node refs live at 0,1
}

// randomLive returns a random live root slot (immortal or pool).
func (r *Run) randomLive() int {
	n := len(r.immortal) + len(r.pool)
	i := r.rng.Intn(n)
	if i < len(r.immortal) {
		return r.immortal[i]
	}
	return r.pool[i-len(r.immortal)]
}

// Step performs up to quantum allocations (plus their mutator work) and
// reports whether the run still has work left.
func (r *Run) Step(quantum int) bool {
	if r.done {
		return false
	}
	if !r.started {
		r.start()
	}
	for q := 0; q < quantum; q++ {
		if r.allocd >= r.spec.TotalAlloc {
			r.done = true
			return false
		}
		if r.spec.LargeEvery > 0 && r.nAllocs%uint64(r.spec.LargeEvery) == uint64(r.spec.LargeEvery)-1 {
			o := r.c.Alloc(r.types.DataArr, r.spec.LargeWords)
			v := r.rng.Uint64()
			r.c.WriteData(o, 0, v)
			if r.sink != nil {
				r.sink.Alloc(AllocDataArr, r.spec.LargeWords, true, 0, v)
			}
			r.allocd += uint64(objmodel.HeaderBytes + r.spec.LargeWords*mem.WordSize)
			r.nAllocs++
			if r.rng.Float64() >= r.spec.TempFrac {
				if len(r.largeRing) > 0 {
					// Long-lived large object: rotate it through the
					// ring, retiring the oldest surviving buffer.
					slot := r.largeRing[r.largeIdx%len(r.largeRing)]
					r.largeIdx++
					r.roots.Set(slot, o)
					if r.sink != nil {
						r.sink.RootSet(slot)
					}
				} else {
					// Long-lived large object: replace a pool entry.
					i := r.rng.Intn(len(r.pool))
					r.roots.Set(r.pool[i], o)
					if r.sink != nil {
						r.sink.RootSet(r.pool[i])
					}
				}
			}
		}
		o, _ := r.allocRaw()
		if r.rng.Float64() >= r.spec.TempFrac {
			// Survives: enters the pool, displacing a random entry.
			i := r.rng.Intn(len(r.pool))
			r.roots.Set(r.pool[i], o)
			if r.sink != nil {
				r.sink.RootSet(r.pool[i])
			}
		}
		// Application work: touch random live objects.
		for w := 0; w < r.spec.WorkPerAlloc; w++ {
			s := r.randomLive()
			obj := r.roots.Get(s)
			ri := r.dataIndexOf(obj)
			v := r.readData(obj, ri)
			r.checksum = r.checksum*31 + v
			if w&3 == 0 {
				wi := r.dataIndexOf(obj)
				r.writeData(obj, wi, v+1)
				if r.sink != nil {
					r.sink.Work(s, ri, true, wi)
				}
			} else if r.sink != nil {
				r.sink.Work(s, ri, false, 0)
			}
		}
		// Pointer stores between live objects.
		if r.spec.LinkEvery > 0 && r.nAllocs%uint64(r.spec.LinkEvery) == 0 {
			ss, ds := r.randomLive(), r.randomLive()
			src := r.roots.Get(ss)
			dst := r.roots.Get(ds)
			if n := r.refSlots(src); n > 0 {
				i := r.rng.Intn(n)
				r.c.WriteRef(src, i, dst)
				if r.sink != nil {
					r.sink.Link(ss, ds, true, i)
				}
			} else if r.sink != nil {
				// Still an event: refSlots read the source's header,
				// which touched its page on the simulated machine.
				r.sink.Link(ss, ds, false, 0)
			}
		}
		if r.sink != nil {
			r.sink.StepEnd()
		}
	}
	return true
}

// dataIndexOf picks a safe data word index for obj.
func (r *Run) dataIndexOf(obj objmodel.Ref) int {
	t, n := r.tt.TypeOf(r.space, obj)
	if t.Kind == objmodel.KindArray {
		if t.ElemPtr || n == 0 {
			return 0
		}
		return r.rng.Intn(n)
	}
	return 2 + r.rng.Intn(2)
}

// refSlots returns the number of reference slots obj has.
func (r *Run) refSlots(obj objmodel.Ref) int {
	t, n := r.tt.TypeOf(r.space, obj)
	return t.NumRefSlots(n)
}

// Done reports whether the allocation budget is exhausted.
func (r *Run) Done() bool { return r.done }

// Err implements Workload; the generator cannot fail.
func (r *Run) Err() error { return nil }

// Finish returns the run summary.
func (r *Run) Finish() Result {
	return Result{Spec: r.spec, AllocatedBytes: r.allocd, Allocations: r.nAllocs, Checksum: r.checksum}
}

// RunToCompletion drives the whole program in one call.
func (r *Run) RunToCompletion() Result {
	for r.Step(4096) {
	}
	return r.Finish()
}
