package collectors

import (
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/heap"
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
)

// SemiSpace is the classic two-space copying collector: bump allocation
// into to-space, whole-heap Cheney copy on exhaustion. Half the heap is
// a copy reserve, and dead from-space pages linger in memory until the
// VM evicts them — both liabilities the paper discusses (§5.3.2).
// Large objects go to a non-moving LOS collected at each GC.
//
// SemiSpace has no mark phase to parallelize: its Cheney copy IS the
// trace, and every "visit" both allocates in to-space and rewrites the
// edge, an ordering-dependent mutation the parallel mark engine
// (DESIGN.md §11) deliberately keeps sequential. The engine only
// parallelizes in-place marking; copying passes everywhere stay on the
// sequential path so address assignment remains a pure function of
// scan order.
type SemiSpace struct {
	gc.Base
	from, to *heap.BumpSpace
	los      *heap.LOS
}

var _ gc.Collector = (*SemiSpace)(nil)

// NewSemiSpace creates a SemiSpace collector on env.
func NewSemiSpace(env *gc.Env) *SemiSpace {
	half := uint64(env.HeapPages) / 2 * mem.PageSize
	s := &SemiSpace{
		Base: gc.Base{E: env},
		from: heap.NewBumpSpace(env.Space, env.Layout.Bump0Base, env.Layout.Bump0End),
		to:   heap.NewBumpSpace(env.Space, env.Layout.Bump1Base, env.Layout.Bump1End),
		los:  heap.NewLOS(env.Space, env.Layout.LOSBase, env.Layout.LOSEnd),
	}
	s.from.SetBudget(half)
	s.to.SetBudget(half)
	return s
}

// Name implements gc.Collector.
func (c *SemiSpace) Name() string { return "SemiSpace" }

// UsedPages implements gc.Collector.
func (c *SemiSpace) UsedPages() int { return c.to.UsedPages() + c.los.UsedPages() }

// heapBudget is the policy-effective page budget; with no policy it is
// exactly the configured heap. The floor charges live data twice (the
// copy reserve) plus a minimal allocation headroom.
func (c *SemiSpace) heapBudget() int {
	return c.E.HeapBudget(2*(c.to.UsedPages()+c.los.UsedPages()) + 2*gc.MinNurseryPages)
}

// Alloc implements gc.Collector. Allocation goes to to-space; objects too
// large for a size class would also be too large here only if they exceed
// the semispace, so anything above the LOS threshold goes to the LOS.
func (c *SemiSpace) Alloc(t *objmodel.Type, arrayLen int) objmodel.Ref {
	total := t.TotalBytes(arrayLen)
	for attempt := 0; ; attempt++ {
		var o objmodel.Ref
		budget := c.heapBudget()
		if _, small := c.E.Classes.ForSize(total); !small {
			pages := int(mem.RoundUpPage(uint64(total)) / mem.PageSize)
			if c.los.UsedPages()+pages <= budget/4 { // LOS shares the non-reserve half
				o = c.los.Alloc(t, arrayLen)
			}
		} else {
			// Keep the semispace within budget net of LOS usage.
			c.to.SetBudget(uint64(budget/2-c.los.UsedPages()) * mem.PageSize)
			o = c.to.Alloc(t, arrayLen)
		}
		if o != mem.Nil {
			c.CountAlloc(t, arrayLen)
			gc.ObserveHeapPolicy(c, heappolicy.EvMutator, -1)
			return o
		}
		if attempt == 2 {
			panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.E.HeapPages})
		}
		c.Collect(true)
	}
}

// ReadRef implements gc.Collector.
func (c *SemiSpace) ReadRef(o objmodel.Ref, i int) objmodel.Ref { return c.ReadRefRaw(o, i) }

// WriteRef implements gc.Collector (no barrier).
func (c *SemiSpace) WriteRef(o objmodel.Ref, i int, v objmodel.Ref) { c.WriteRefRaw(o, i, v) }

// Collect implements gc.Collector: flip and copy.
func (c *SemiSpace) Collect(bool) {
	c.collect()
	// Outside the pause so the policy sees the collection's own cost.
	gc.ObserveHeapPolicy(c, heappolicy.EvGCEnd, -1)
}

func (c *SemiSpace) collect() {
	done := c.Stats().BeginPause(c.E, metrics.PauseFull)
	defer done()
	gc.PauseClock(c.E, gc.PauseOverhead)
	c.Stats().Full++

	c.from, c.to = c.to, c.from
	c.to.Reset()
	c.to.SetBudget(uint64(c.heapBudget()/2-c.los.UsedPages()) * mem.PageSize)
	epoch := c.NextEpoch()

	work := c.E.GetWorkList()
	defer c.E.PutWorkList(work)
	c.E.Trace.Begin(trace.PhaseRootScan)
	c.Roots().ForEach(func(slot *mem.Addr) {
		*slot = c.forward(*slot, work, epoch)
	})
	c.E.Trace.End(trace.PhaseRootScan)
	c.E.Trace.Begin(trace.PhaseCheneyForward)
	for {
		o, ok := work.Pop()
		if !ok {
			break
		}
		gc.ScanObject(c.E.Space, c.E.Types, o, func(slot mem.Addr, tgt objmodel.Ref) {
			c.E.Space.WriteAddr(slot, c.forward(tgt, work, epoch))
		})
	}
	c.E.Trace.End(trace.PhaseCheneyForward)
	c.E.Trace.Begin(trace.PhaseSweep)
	c.los.Sweep(epoch, nil)
	c.E.Trace.End(trace.PhaseSweep)
}

// forward copies o into to-space if it lives in from-space, returning its
// new address; LOS objects are marked in place.
func (c *SemiSpace) forward(o objmodel.Ref, work *gc.WorkList, epoch uint32) objmodel.Ref {
	if c.los.Contains(o) {
		if !objmodel.Marked(c.E.Space, o, epoch) {
			objmodel.SetMark(c.E.Space, o, epoch)
			work.Push(o)
		}
		return o
	}
	if !c.from.Contains(o) {
		return o
	}
	if objmodel.Forwarded(c.E.Space, o) {
		return objmodel.ForwardAddr(c.E.Space, o)
	}
	size := gc.ObjectBytes(c.E.Space, c.E.Types, o)
	dst := c.to.AllocRaw(size)
	if dst == mem.Nil {
		panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.E.HeapPages})
	}
	gc.CopyObject(c.E.Space, o, dst, size)
	objmodel.Forward(c.E.Space, o, dst)
	work.Push(dst)
	return dst
}
