package collectors

import (
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/objmodel"
)

// AdvisedGenMS is GenMS with an Alonso–Appel-style heap-sizing advisor
// (related work, §6 of the paper): after every collection it consults the
// VM for available memory and resizes its heap budget accordingly. The
// paper's point — reproduced by the ablation experiment — is that
// resizing alone cannot eliminate collector-induced paging: the advisor
// only reacts after a full collection has already touched whatever was
// evicted, and it never returns specific pages to the kernel.
type AdvisedGenMS struct {
	*GenMS
	maxPages int
}

var _ gc.Collector = (*AdvisedGenMS)(nil)

// NewAdvisedGenMS creates the advised variant; the configured heap is its
// upper bound.
func NewAdvisedGenMS(env *gc.Env) *AdvisedGenMS {
	return &AdvisedGenMS{GenMS: NewGenMS(env), maxPages: env.HeapPages}
}

// Name implements gc.Collector.
func (c *AdvisedGenMS) Name() string { return "GenMSAdvisor" }

// Alloc implements gc.Collector. Embedding does not virtualize method
// calls, so the advisor hooks the allocation path: whenever the embedded
// collector performed a collection, consult the advisor afterwards (the
// original polls "after each garbage collection").
func (c *AdvisedGenMS) Alloc(t *objmodel.Type, arrayLen int) objmodel.Ref {
	before := c.Stats().Timeline.Count()
	o := c.GenMS.Alloc(t, arrayLen)
	if c.Stats().Timeline.Count() != before {
		c.advise()
	}
	return o
}

// Collect implements gc.Collector: collect, then consult the advisor.
func (c *AdvisedGenMS) Collect(full bool) {
	c.GenMS.Collect(full)
	c.advise()
}

// advise resizes the heap budget to current usage plus a share of the
// machine's free memory.
func (c *AdvisedGenMS) advise() {
	free := c.E.Proc.FreeFramesHint()
	target := c.MatureUsedPages() + free*3/4
	if floor := c.MatureUsedPages() + 2*gc.MinNurseryPages; target < floor {
		target = floor
	}
	if target > c.maxPages {
		target = c.maxPages
	}
	c.E.HeapPages = target
	c.resizeNursery()
}
