package collectors

import (
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
)

// MarkSweep is the whole-heap, non-moving collector: segregated-fit
// superpage allocation plus a large object space. Marking writes mark
// state into object headers and sweeping reads every allocated block, so
// under memory pressure it touches evicted pages freely — the paper drops
// it from the pressure graphs because runs "can take hours" (§5.3.1).
type MarkSweep struct {
	gc.Base
	gc.Mature
}

var _ gc.Collector = (*MarkSweep)(nil)

// NewMarkSweep creates a MarkSweep collector on env.
func NewMarkSweep(env *gc.Env) *MarkSweep {
	c := &MarkSweep{Base: gc.Base{E: env}}
	c.Mature = gc.NewMature(env)
	return c
}

// Name implements gc.Collector.
func (c *MarkSweep) Name() string { return "MarkSweep" }

// UsedPages implements gc.Collector.
func (c *MarkSweep) UsedPages() int { return c.MatureUsedPages() }

// heapBudget is the policy-effective page budget; with no policy it is
// exactly the configured heap. The floor leaves a minimal allocation
// headroom above live data so a squeezed budget cannot wedge Alloc.
func (c *MarkSweep) heapBudget() int {
	return c.E.HeapBudget(c.MatureUsedPages() + gc.MinNurseryPages)
}

// Alloc implements gc.Collector.
func (c *MarkSweep) Alloc(t *objmodel.Type, arrayLen int) objmodel.Ref {
	for attempt := 0; ; attempt++ {
		if o := c.AllocMature(c.E, t, arrayLen, c.heapBudget(), 0); o != mem.Nil {
			c.CountAlloc(t, arrayLen)
			gc.ObserveHeapPolicy(c, heappolicy.EvMutator, -1)
			return o
		}
		if attempt == 2 {
			panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.E.HeapPages})
		}
		c.Collect(true)
	}
}

// ReadRef implements gc.Collector.
func (c *MarkSweep) ReadRef(o objmodel.Ref, i int) objmodel.Ref { return c.ReadRefRaw(o, i) }

// WriteRef implements gc.Collector (no barrier needed).
func (c *MarkSweep) WriteRef(o objmodel.Ref, i int, v objmodel.Ref) { c.WriteRefRaw(o, i, v) }

// Collect implements gc.Collector: a full mark-sweep collection.
func (c *MarkSweep) Collect(bool) {
	c.collect()
	// Outside the pause so the policy sees the collection's own cost.
	gc.ObserveHeapPolicy(c, heappolicy.EvGCEnd, -1)
}

func (c *MarkSweep) collect() {
	done := c.Stats().BeginPause(c.E, metrics.PauseFull)
	defer done()
	gc.PauseClock(c.E, gc.PauseOverhead)
	c.Stats().Full++

	epoch := c.NextEpoch()
	work := c.E.GetWorkList()
	defer c.E.PutWorkList(work)
	c.E.Trace.Begin(trace.PhaseRootScan)
	c.Roots().ForEach(func(slot *mem.Addr) {
		gc.MarkStep(c.E, work, *slot, epoch)
	})
	c.E.Trace.End(trace.PhaseRootScan)
	// Parallel work-stealing trace; in-place marking only, no deferred
	// edges (DESIGN.md §11).
	c.E.Trace.Begin(trace.PhaseMark)
	c.E.Marker().Mark(&gc.ParMarkConfig{Epoch: epoch}, work, nil)
	c.E.Trace.End(trace.PhaseMark)
	c.E.Trace.Begin(trace.PhaseSweep)
	c.SS.Sweep(epoch)
	c.LOS.Sweep(epoch, nil)
	c.E.Trace.End(trace.PhaseSweep)
}
