package collectors

import (
	"math"

	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/heap"
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
)

// GenMS is the Appel-style generational collector with a bump-pointer
// nursery and a mark-sweep mature space — the paper's consistently
// highest-throughput baseline (§5.2) and the collector BC is closest to.
// Nursery collections copy survivors into the segregated-fit superpage
// space; full collections mark-sweep everything. With FixedNurseryPages
// set it becomes the fixed-size-nursery variant of Figure 5(b).
type GenMS struct {
	gc.Base
	gc.Mature
	nursery *heap.BumpSpace
	remset  *gc.RemSet

	// FixedNurseryPages, when non-zero, pins the nursery size instead of
	// Appel-style variable sizing.
	FixedNurseryPages int
}

var _ gc.Collector = (*GenMS)(nil)

// NewGenMS creates a GenMS collector on env.
func NewGenMS(env *gc.Env) *GenMS {
	c := &GenMS{
		Base:    gc.Base{E: env},
		nursery: heap.NewBumpSpace(env.Space, env.Layout.Bump0Base, env.Layout.Bump0End),
	}
	c.Mature = gc.NewMature(env)
	// MMTk-style unbounded write buffer (bufCap 0).
	c.remset = gc.NewRemSet(env.Layout.MatureBase, env.Layout.LOSEnd, 0)
	c.resizeNursery()
	return c
}

// Name implements gc.Collector.
func (c *GenMS) Name() string {
	if c.FixedNurseryPages > 0 {
		return "GenMSFixed"
	}
	return "GenMS"
}

// UsedPages implements gc.Collector.
func (c *GenMS) UsedPages() int { return c.MatureUsedPages() + c.nursery.UsedPages() }

// heapBudget is the policy-effective page budget; with no policy it is
// exactly the configured heap. The floor keeps a squeezed budget
// workable: live mature data plus a minimal nursery.
func (c *GenMS) heapBudget() int {
	return c.E.HeapBudget(c.MatureUsedPages() + gc.MinNurseryPages)
}

// policyTick gives the heap policy its mutator observation; a raised
// target takes effect immediately via a nursery resize.
func (c *GenMS) policyTick() {
	if from, to := gc.ObserveHeapPolicy(c, heappolicy.EvMutator, -1); to > from {
		c.resizeNursery()
	}
}

// resizeNursery applies the Appel policy: the nursery gets all the space
// the mature heap is not using.
func (c *GenMS) resizeNursery() {
	free := c.heapBudget() - c.MatureUsedPages()
	if c.FixedNurseryPages > 0 && free > c.FixedNurseryPages {
		free = c.FixedNurseryPages
	}
	if free < gc.MinNurseryPages {
		free = gc.MinNurseryPages
	}
	c.nursery.SetBudget(uint64(free) * mem.PageSize)
}

// Alloc implements gc.Collector.
func (c *GenMS) Alloc(t *objmodel.Type, arrayLen int) objmodel.Ref {
	total := t.TotalBytes(arrayLen)
	_, small := c.E.Classes.ForSize(total)
	for attempt := 0; ; attempt++ {
		var o objmodel.Ref
		if small {
			o = c.nursery.Alloc(t, arrayLen)
		} else {
			o = c.AllocMature(c.E, t, arrayLen, c.heapBudget(), c.nursery.UsedPages())
		}
		if o != mem.Nil {
			c.CountAlloc(t, arrayLen)
			c.policyTick()
			return o
		}
		switch attempt {
		case 0:
			c.Collect(false)
		case 1:
			c.Collect(true)
		default:
			panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.E.HeapPages})
		}
	}
}

// ReadRef implements gc.Collector.
func (c *GenMS) ReadRef(o objmodel.Ref, i int) objmodel.Ref { return c.ReadRefRaw(o, i) }

// WriteRef implements gc.Collector with the generational write barrier:
// stores of nursery pointers into non-nursery objects are remembered.
func (c *GenMS) WriteRef(o objmodel.Ref, i int, v objmodel.Ref) {
	slot := c.WriteRefRaw(o, i, v)
	if v != mem.Nil && c.nursery.Contains(v) && !c.nursery.Contains(o) {
		c.remset.Record(slot)
	}
}

// Collect implements gc.Collector.
func (c *GenMS) Collect(full bool) {
	if full {
		c.fullGC()
	} else {
		c.nurseryGC()
		// Appel trigger: a nursery too small to be useful means the
		// mature space owns the heap — do the full collection now.
		if c.heapBudget()-c.MatureUsedPages() <= gc.MinNurseryPages {
			c.fullGC()
		}
	}
	if c.MatureUsedPages() > c.E.HeapPages {
		panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.E.HeapPages})
	}
	gc.ObserveHeapPolicy(c, heappolicy.EvGCEnd, -1)
	c.resizeNursery()
}

// copyToMature evacuates a nursery object, leaving a forwarding pointer.
func (c *GenMS) copyToMature(o objmodel.Ref, work *gc.WorkList) objmodel.Ref {
	if objmodel.Forwarded(c.E.Space, o) {
		return objmodel.ForwardAddr(c.E.Space, o)
	}
	t, n := c.E.Types.TypeOf(c.E.Space, o)
	// Collection-time copies may not fail mid-GC; the budget is enforced
	// after the collection completes.
	dst := c.AllocMature(c.E, t, n, math.MaxInt, 0)
	if dst == mem.Nil {
		panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.E.HeapPages})
	}
	size := int(mem.RoundUpWord(uint64(t.TotalBytes(n))))
	gc.CopyObject(c.E.Space, o, dst, size)
	objmodel.Forward(c.E.Space, o, dst)
	work.Push(dst)
	return dst
}

// nurseryGC copies nursery survivors to the mature space.
func (c *GenMS) nurseryGC() {
	done := c.Stats().BeginPause(c.E, metrics.PauseNursery)
	defer done()
	gc.PauseClock(c.E, gc.PauseOverhead)
	c.Stats().Nursery++

	work := c.E.GetWorkList()
	defer c.E.PutWorkList(work)
	fwd := func(slot mem.Addr, tgt objmodel.Ref) {
		if c.nursery.Contains(tgt) {
			c.E.Space.WriteAddr(slot, c.copyToMature(tgt, work))
		}
	}
	// Remembered slots first (old-to-young pointers), then roots.
	c.E.Trace.Begin(trace.PhaseRootScan)
	c.remset.ForEachSlot(func(slot mem.Addr) {
		if tgt := c.E.Space.ReadAddr(slot); tgt != mem.Nil {
			fwd(slot, tgt)
		}
	})
	c.Roots().ForEach(func(slot *mem.Addr) {
		if c.nursery.Contains(*slot) {
			*slot = c.copyToMature(*slot, work)
		}
	})
	c.E.Trace.End(trace.PhaseRootScan)
	c.E.Trace.Begin(trace.PhaseCheneyForward)
	for {
		o, ok := work.Pop()
		if !ok {
			break
		}
		gc.ScanObject(c.E.Space, c.E.Types, o, fwd)
	}
	c.E.Trace.End(trace.PhaseCheneyForward)
	c.nursery.Reset()
	c.remset.Clear()
}

// fullForward handles one edge during a full collection: nursery objects
// are evacuated, everything else is marked in place.
func (c *GenMS) fullForward(o objmodel.Ref, work *gc.WorkList, epoch uint32) objmodel.Ref {
	if c.nursery.Contains(o) {
		dst := c.copyToMature(o, work)
		objmodel.SetMark(c.E.Space, dst, epoch)
		return dst
	}
	gc.MarkStep(c.E, work, o, epoch)
	return o
}

// fullGC marks and sweeps the whole heap, evacuating the nursery.
func (c *GenMS) fullGC() {
	done := c.Stats().BeginPause(c.E, metrics.PauseFull)
	defer done()
	gc.PauseClock(c.E, gc.PauseOverhead)
	c.Stats().Full++

	epoch := c.NextEpoch()
	work := c.E.GetWorkList()
	defer c.E.PutWorkList(work)
	c.E.Trace.Begin(trace.PhaseRootScan)
	c.Roots().ForEach(func(slot *mem.Addr) {
		*slot = c.fullForward(*slot, work, epoch)
	})
	c.E.Trace.End(trace.PhaseRootScan)
	// Parallel work-stealing trace (DESIGN.md §11): mature objects are
	// marked in place by the workers; edges into the nursery are deferred
	// and evacuated sequentially between rounds, exactly as fullForward
	// would have handled them.
	cfg := &gc.ParMarkConfig{
		Epoch: epoch,
		Classify: func(tgt objmodel.Ref) gc.EdgeAction {
			if c.nursery.Contains(tgt) {
				return gc.EdgeDefer
			}
			return gc.EdgeMark
		},
	}
	c.E.Trace.Begin(trace.PhaseMark)
	c.E.Marker().Mark(cfg, work, func(e gc.DeferredEdge, w *gc.WorkList) {
		dst := c.copyToMature(e.Target, w)
		objmodel.SetMark(c.E.Space, dst, epoch)
		if dst != e.Target {
			c.E.Space.WriteAddr(e.Slot, dst)
		}
	})
	c.E.Trace.End(trace.PhaseMark)
	c.E.Trace.Begin(trace.PhaseSweep)
	c.SS.Sweep(epoch)
	c.LOS.Sweep(epoch, nil)
	c.E.Trace.End(trace.PhaseSweep)
	c.nursery.Reset()
	c.remset.Clear()
}
