package collectors

import (
	"testing"

	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/vmm"
)

func TestFixedNurseryBoundsNurserySize(t *testing.T) {
	env := newEnv(t, 32)
	node, _, _ := declareTypes(env)
	c := NewGenMS(env)
	c.FixedNurseryPages = 128 // 512 KB
	c.resizeNursery()
	if got := c.nursery.Budget(); got > 128*mem.PageSize {
		t.Fatalf("nursery budget %d exceeds fixed size", got)
	}
	// More frequent nursery GCs than the variable-nursery collector.
	for i := 0; i < 200000; i++ {
		c.Alloc(node, 0)
	}
	fixedGCs := c.Stats().Nursery

	env2 := newEnv(t, 32)
	node2, _, _ := declareTypes(env2)
	v := NewGenMS(env2)
	for i := 0; i < 200000; i++ {
		v.Alloc(node2, 0)
	}
	if fixedGCs <= v.Stats().Nursery {
		t.Fatalf("fixed nursery (%d GCs) not more frequent than variable (%d)",
			fixedGCs, v.Stats().Nursery)
	}
}

func TestSemiSpaceCopyReserveOOM(t *testing.T) {
	// SemiSpace can only use half the heap: live data over that must OOM
	// even though it would fit a mark-sweep heap.
	env := newEnv(t, 4)
	node, _, _ := declareTypes(env)
	c := NewSemiSpace(env)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected OOM")
		} else if _, ok := r.(gc.ErrOutOfMemory); !ok {
			panic(r)
		}
	}()
	head := c.Roots().Add(c.Alloc(node, 0))
	// > 2 MB of live data in a 4 MB heap: fits GenMS, not SemiSpace.
	for i := 0; i < 50000; i++ {
		o := c.Alloc(node, 0)
		c.WriteRef(o, 0, c.Roots().Get(head))
		c.Roots().Set(head, o)
	}
}

func TestGenMSSurvivesLiveDataSemiSpaceCannot(t *testing.T) {
	env := newEnv(t, 4)
	node, _, _ := declareTypes(env)
	c := NewGenMS(env)
	head := c.Roots().Add(c.Alloc(node, 0))
	for i := 0; i < 50000; i++ { // ~2.4 MB live in a 4 MB heap
		o := c.Alloc(node, 0)
		c.WriteRef(o, 0, c.Roots().Get(head))
		c.Roots().Set(head, o)
	}
	n := 0
	for o := c.Roots().Get(head); o != mem.Nil; o = c.ReadRef(o, 0) {
		n++
	}
	if n != 50001 {
		t.Fatalf("list length %d", n)
	}
}

func TestWriteBarrierOnlyRecordsOldToYoung(t *testing.T) {
	env := newEnv(t, 16)
	node, _, _ := declareTypes(env)
	c := NewGenMS(env)
	old := c.Roots().Add(c.Alloc(node, 0))
	c.Collect(true) // promote
	young := c.Roots().Add(c.Alloc(node, 0))

	// young -> old: no record needed.
	c.WriteRef(c.Roots().Get(young), 0, c.Roots().Get(old))
	if got := c.remset.Size(); got != 0 {
		t.Fatalf("young->old store recorded (%d entries)", got)
	}
	// old -> young: recorded.
	c.WriteRef(c.Roots().Get(old), 0, c.Roots().Get(young))
	if got := c.remset.Size(); got != 1 {
		t.Fatalf("old->young store not recorded (%d entries)", got)
	}
	// old -> nil: not recorded.
	c.WriteRef(c.Roots().Get(old), 1, mem.Nil)
	if got := c.remset.Size(); got != 1 {
		t.Fatalf("nil store recorded (%d entries)", got)
	}
}

func TestCollectionKindsRecorded(t *testing.T) {
	env := newEnv(t, 8)
	node, _, _ := declareTypes(env)
	c := NewGenMS(env)
	for i := 0; i < 400000; i++ {
		c.Alloc(node, 0)
	}
	c.Collect(true)
	tl := &c.Stats().Timeline
	if tl.Count(metrics.PauseNursery) == 0 {
		t.Fatal("no nursery pauses recorded")
	}
	if tl.Count(metrics.PauseFull) == 0 {
		t.Fatal("no full pauses recorded")
	}
	if tl.Count(metrics.PauseNursery)+tl.Count(metrics.PauseFull) != tl.Count() {
		t.Fatal("pause kinds do not partition")
	}
}

func TestCollectorsShareNoState(t *testing.T) {
	// Two collectors on two envs over the same machine must not interfere.
	env1 := newEnv(t, 8)
	node1, _, _ := declareTypes(env1)
	c1 := NewGenMS(env1)
	env2 := newEnv(t, 8)
	node2, _, _ := declareTypes(env2)
	c2 := NewMarkSweep(env2)

	a := c1.Roots().Add(c1.Alloc(node1, 0))
	b := c2.Roots().Add(c2.Alloc(node2, 0))
	c1.WriteData(c1.Roots().Get(a), 2, 1)
	c2.WriteData(c2.Roots().Get(b), 2, 2)
	c1.Collect(true)
	c2.Collect(true)
	if c1.ReadData(c1.Roots().Get(a), 2) != 1 || c2.ReadData(c2.Roots().Get(b), 2) != 2 {
		t.Fatal("cross-collector interference")
	}
}

func TestAdvisedGenMSShrinksHeapUnderPressure(t *testing.T) {
	// The Alonso–Appel advisor variant must adapt its heap budget to
	// available memory and still complete correctly.
	clock := vmm.NewClock()
	v := vmm.New(clock, 24<<20, vmm.DefaultCosts())
	env := gc.NewEnv(v, "advisor", 16<<20)
	node := env.Types.Scalar("node", 4, 0, 1)
	c := NewAdvisedGenMS(env)
	if c.Name() != "GenMSAdvisor" {
		t.Fatal("wrong name")
	}
	head := c.Roots().Add(c.Alloc(node, 0))
	c.WriteData(c.Roots().Get(head), 2, 7)
	before := env.HeapPages
	// Pin most of the machine, then churn: the advisor must shrink.
	v.Pin(v.FreeFrames() - 512)
	for i := 0; i < 800000; i++ {
		c.Alloc(node, 0)
	}
	if env.HeapPages >= before {
		t.Fatalf("advisor never shrank the heap: %d -> %d", before, env.HeapPages)
	}
	if got := c.ReadData(c.Roots().Get(head), 2); got != 7 {
		t.Fatalf("data corrupted: %d", got)
	}
}
