package collectors

import (
	"math/rand"
	"testing"

	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/vmm"
)

// newEnv builds a test environment with ample physical memory (so these
// tests exercise GC logic, not paging) and a heapMB-page budget.
func newEnv(t testing.TB, heapMB int) *gc.Env {
	t.Helper()
	clock := vmm.NewClock()
	v := vmm.New(clock, 512<<20, vmm.DefaultCosts())
	return gc.NewEnv(v, "test", uint64(heapMB)<<20)
}

// makers for every baseline collector, reused by all table-driven tests.
var makers = map[string]func(*gc.Env) gc.Collector{
	"MarkSweep": func(e *gc.Env) gc.Collector { return NewMarkSweep(e) },
	"SemiSpace": func(e *gc.Env) gc.Collector { return NewSemiSpace(e) },
	"GenMS":     func(e *gc.Env) gc.Collector { return NewGenMS(e) },
	"GenCopy":   func(e *gc.Env) gc.Collector { return NewGenCopy(e) },
	"CopyMS":    func(e *gc.Env) gc.Collector { return NewCopyMS(e) },
	"GenMSFixed": func(e *gc.Env) gc.Collector {
		c := NewGenMS(e)
		c.FixedNurseryPages = 128
		return c
	},
	"GenCopyFixed": func(e *gc.Env) gc.Collector {
		c := NewGenCopy(e)
		c.FixedNurseryPages = 128
		return c
	},
}

// declareTypes registers the standard test types on an env.
func declareTypes(env *gc.Env) (node, refArr, dataArr *objmodel.Type) {
	node = env.Types.Scalar("node", 4, 0, 1) // refs at 0,1; data at 2,3
	refArr = env.Types.Array("refArr", true)
	dataArr = env.Types.Array("dataArr", false)
	return
}

func TestAllocInitializesObject(t *testing.T) {
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 8)
			node, _, _ := declareTypes(env)
			c := mk(env)
			o := c.Alloc(node, 0)
			if o == mem.Nil {
				t.Fatal("alloc returned nil")
			}
			if got := c.ReadRef(o, 0); got != mem.Nil {
				t.Fatalf("fresh ref slot = %#x", got)
			}
			if got := c.ReadData(o, 2); got != 0 {
				t.Fatalf("fresh data word = %d", got)
			}
			c.WriteData(o, 2, 77)
			if got := c.ReadData(o, 2); got != 77 {
				t.Fatalf("data round trip = %d", got)
			}
		})
	}
}

// buildTree builds a binary tree of the given depth, storing a checksum
// in each node's data words, and returns its root slot.
func buildTree(c gc.Collector, node *objmodel.Type, depth int, seed uint64) int {
	var build func(d int, path uint64) objmodel.Ref
	build = func(d int, path uint64) objmodel.Ref {
		o := c.Alloc(node, 0)
		// Protect o across child allocations (which may GC and move it).
		slot := c.Roots().Add(o)
		c.WriteData(o, 2, seed^path)
		if d > 0 {
			l := build(d-1, path*2+1)
			c.WriteRef(c.Roots().Get(slot), 0, l)
			r := build(d-1, path*2+2)
			c.WriteRef(c.Roots().Get(slot), 1, r)
		}
		o = c.Roots().Get(slot)
		c.Roots().Release(slot)
		return o
	}
	root := build(depth, 0)
	return c.Roots().Add(root)
}

// checkTree verifies the checksums of the whole tree.
func checkTree(t *testing.T, c gc.Collector, rootSlot int, depth int, seed uint64) {
	t.Helper()
	var walk func(o objmodel.Ref, d int, path uint64)
	walk = func(o objmodel.Ref, d int, path uint64) {
		if got := c.ReadData(o, 2); got != seed^path {
			t.Fatalf("node at path %d: data = %#x, want %#x", path, got, seed^path)
		}
		l, r := c.ReadRef(o, 0), c.ReadRef(o, 1)
		if d > 0 {
			if l == mem.Nil || r == mem.Nil {
				t.Fatalf("interior node at path %d lost children", path)
			}
			walk(l, d-1, path*2+1)
			walk(r, d-1, path*2+2)
		} else if l != mem.Nil || r != mem.Nil {
			t.Fatalf("leaf at path %d grew children", path)
		}
	}
	walk(c.Roots().Get(rootSlot), depth, 0)
}

func TestTreeSurvivesExplicitCollections(t *testing.T) {
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 16)
			node, _, _ := declareTypes(env)
			c := mk(env)
			root := buildTree(c, node, 8, 0xabcd)
			checkTree(t, c, root, 8, 0xabcd)
			c.Collect(false)
			checkTree(t, c, root, 8, 0xabcd)
			c.Collect(true)
			checkTree(t, c, root, 8, 0xabcd)
			c.Collect(true) // twice: semispaces flip back
			checkTree(t, c, root, 8, 0xabcd)
		})
	}
}

func TestGarbageIsReclaimed(t *testing.T) {
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 4)
			node, _, dataArr := declareTypes(env)
			c := mk(env)
			root := buildTree(c, node, 6, 1)
			// Allocate far more garbage than the heap holds: must not OOM.
			for i := 0; i < 200000; i++ {
				o := c.Alloc(node, 0)
				c.WriteData(o, 2, uint64(i))
				if i%100 == 0 {
					c.Alloc(dataArr, 300)
				}
			}
			checkTree(t, c, root, 6, 1)
			if c.Stats().Timeline.Count() == 0 {
				t.Fatal("no collections happened")
			}
		})
	}
}

func TestOldToYoungPointersSurviveNurseryGC(t *testing.T) {
	// Only generational collectors have the barrier; run them all anyway —
	// for the others this is just another liveness test.
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 16)
			node, _, _ := declareTypes(env)
			c := mk(env)

			// Make an old object: allocate and force a full collection so
			// it is promoted/mature.
			old := c.Roots().Add(c.Alloc(node, 0))
			c.WriteData(c.Roots().Get(old), 2, 111)
			c.Collect(true)

			// Store young pointers into the old object, then drop the
			// young object's root so only the old->young edge keeps it.
			young := c.Alloc(node, 0)
			c.WriteData(young, 2, 222)
			c.WriteRef(c.Roots().Get(old), 0, young)

			c.Collect(false) // nursery GC
			got := c.ReadRef(c.Roots().Get(old), 0)
			if got == mem.Nil {
				t.Fatal("old->young edge lost")
			}
			if v := c.ReadData(got, 2); v != 222 {
				t.Fatalf("young object corrupted: %d", v)
			}
			if v := c.ReadData(c.Roots().Get(old), 2); v != 111 {
				t.Fatalf("old object corrupted: %d", v)
			}
		})
	}
}

func TestLargeObjectsSurvive(t *testing.T) {
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 16)
			node, refArr, dataArr := declareTypes(env)
			c := mk(env)

			// A large ref array (LOS) pointing at small objects.
			n := 3000 // 24 KB payload: well beyond the LOS threshold
			arr := c.Roots().Add(c.Alloc(refArr, n))
			for i := 0; i < 10; i++ {
				o := c.Alloc(node, 0)
				c.WriteData(o, 2, uint64(i)*7)
				c.WriteRef(c.Roots().Get(arr), i*100, o)
			}
			big := c.Roots().Add(c.Alloc(dataArr, n))
			c.WriteData(c.Roots().Get(big), 1234, 99)

			c.Collect(true)
			c.Collect(false)
			c.Collect(true)

			for i := 0; i < 10; i++ {
				o := c.ReadRef(c.Roots().Get(arr), i*100)
				if o == mem.Nil {
					t.Fatalf("LOS->small edge %d lost", i)
				}
				if v := c.ReadData(o, 2); v != uint64(i)*7 {
					t.Fatalf("small object %d corrupted: %d", i, v)
				}
			}
			if v := c.ReadData(c.Roots().Get(big), 1234); v != 99 {
				t.Fatalf("large data array corrupted: %d", v)
			}
		})
	}
}

func TestOutOfMemoryPanics(t *testing.T) {
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 2) // 2 MB heap
			node, _, _ := declareTypes(env)
			c := mk(env)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected ErrOutOfMemory panic")
				}
				if _, ok := r.(gc.ErrOutOfMemory); !ok {
					panic(r)
				}
			}()
			// A linked list that can never be collected.
			head := c.Roots().Add(c.Alloc(node, 0))
			for i := 0; ; i++ {
				o := c.Alloc(node, 0)
				c.WriteRef(o, 0, c.Roots().Get(head))
				c.Roots().Set(head, o)
			}
		})
	}
}

func TestRandomGraphChurn(t *testing.T) {
	// Property-style stress: a mutating random graph with a shadow copy
	// in Go. After heavy churn and collections, the shadow and heap agree.
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 16)
			node, _, _ := declareTypes(env)
			c := mk(env)
			rng := rand.New(rand.NewSource(42))

			const N = 64
			slots := make([]int, N)     // root slots
			shadow := make([]uint64, N) // expected data word
			for i := range slots {
				o := c.Alloc(node, 0)
				shadow[i] = rng.Uint64()
				c.WriteData(o, 2, shadow[i])
				slots[i] = c.Roots().Add(o)
			}
			edges := map[[2]int]bool{} // i -> j via slot 0/1
			for step := 0; step < 30000; step++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // allocate garbage
					g := c.Alloc(node, 0)
					c.WriteData(g, 2, 0xdead)
				case 4, 5: // replace a root object
					i := rng.Intn(N)
					o := c.Alloc(node, 0)
					shadow[i] = rng.Uint64()
					c.WriteData(o, 2, shadow[i])
					c.Roots().Set(slots[i], o)
					delete(edges, [2]int{i, 0})
					delete(edges, [2]int{i, 1})
				case 6, 7: // link two root objects
					i, j, k := rng.Intn(N), rng.Intn(N), rng.Intn(2)
					c.WriteRef(c.Roots().Get(slots[i]), k, c.Roots().Get(slots[j]))
					edges[[2]int{i, k}] = true
				case 8: // verify one object
					i := rng.Intn(N)
					if got := c.ReadData(c.Roots().Get(slots[i]), 2); got != shadow[i] {
						t.Fatalf("step %d: object %d = %#x, want %#x", step, i, got, shadow[i])
					}
				case 9:
					if step%1000 == 9 {
						c.Collect(rng.Intn(2) == 0)
					}
				}
			}
			for i := range slots {
				if got := c.ReadData(c.Roots().Get(slots[i]), 2); got != shadow[i] {
					t.Fatalf("final: object %d = %#x, want %#x", i, got, shadow[i])
				}
			}
		})
	}
}

func TestPausesAreRecorded(t *testing.T) {
	env := newEnv(t, 4)
	node, _, _ := declareTypes(env)
	c := NewGenMS(env)
	for i := 0; i < 200000; i++ {
		c.Alloc(node, 0)
	}
	st := c.Stats()
	if st.Nursery == 0 {
		t.Fatal("no nursery collections recorded")
	}
	if got := st.Timeline.Count(); got != int(st.Nursery+st.Full) {
		t.Fatalf("timeline count %d != collections %d", got, st.Nursery+st.Full)
	}
	if st.Timeline.AvgPause() <= 0 {
		t.Fatal("pauses have no duration")
	}
}

func TestHeapBudgetRespectedAfterGC(t *testing.T) {
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 4)
			node, _, _ := declareTypes(env)
			c := mk(env)
			root := buildTree(c, node, 10, 3)
			for i := 0; i < 100000; i++ {
				c.Alloc(node, 0)
			}
			checkTree(t, c, root, 10, 3)
			// The budget may be transiently exceeded mid-GC but never by
			// more than the slack documented (minNursery + one superpage).
			if got := c.UsedPages(); got > env.HeapPages+gc.MinNurseryPages+mem.SuperPages {
				t.Fatalf("footprint %d pages exceeds budget %d", got, env.HeapPages)
			}
		})
	}
}
