package collectors

import (
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/heap"
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
)

// GenCopy is the Appel-style generational collector with a bump-pointer
// nursery and a copying (semispace) mature space. Nursery survivors are
// copied into the active mature semispace; full collections flip the
// mature semispaces. Half the mature space is copy reserve, so GenCopy
// runs out of room sooner than GenMS in small heaps (§5.2). With
// FixedNurseryPages set it becomes the fixed-nursery variant of
// Figure 5(b).
//
// Both of GenCopy's collections are pure copying passes (nursery
// evacuation and the mature semispace flip), so neither uses the
// parallel mark engine: a Cheney scan assigns to-space addresses as a
// side effect of visiting, and that assignment order must stay a pure
// function of scan order to keep runs deterministic (DESIGN.md §11
// parallelizes only in-place marking).
type GenCopy struct {
	gc.Base
	nursery *heap.BumpSpace
	matFrom *heap.BumpSpace
	matTo   *heap.BumpSpace
	los     *heap.LOS
	remset  *gc.RemSet

	// FixedNurseryPages, when non-zero, pins the nursery size.
	FixedNurseryPages int
}

var _ gc.Collector = (*GenCopy)(nil)

// NewGenCopy creates a GenCopy collector on env. The two mature
// semispaces split the second bump region.
func NewGenCopy(env *gc.Env) *GenCopy {
	mid := (env.Layout.Bump1Base + (env.Layout.Bump1End-env.Layout.Bump1Base)/2) &^ (mem.SuperSize - 1)
	c := &GenCopy{
		Base:    gc.Base{E: env},
		nursery: heap.NewBumpSpace(env.Space, env.Layout.Bump0Base, env.Layout.Bump0End),
		matFrom: heap.NewBumpSpace(env.Space, env.Layout.Bump1Base, mid),
		matTo:   heap.NewBumpSpace(env.Space, mid, env.Layout.Bump1End),
		los:     heap.NewLOS(env.Space, env.Layout.LOSBase, env.Layout.LOSEnd),
	}
	c.remset = gc.NewRemSet(env.Layout.Bump1Base, env.Layout.LOSEnd, 0)
	c.resizeNursery()
	return c
}

// Name implements gc.Collector.
func (c *GenCopy) Name() string {
	if c.FixedNurseryPages > 0 {
		return "GenCopyFixed"
	}
	return "GenCopy"
}

// UsedPages implements gc.Collector. The inactive semispace's pages are
// dead weight but not charged: like MMTk, only live spaces count against
// the budget, while the copy reserve is charged by halving availability.
func (c *GenCopy) UsedPages() int {
	return c.matFrom.UsedPages() + c.los.UsedPages() + c.nursery.UsedPages()
}

// heapBudget is the policy-effective page budget; with no policy it is
// exactly the configured heap. The floor covers the mature space twice
// (space plus copy reserve), the LOS, and a minimal nursery with its
// own reserve.
func (c *GenCopy) heapBudget() int {
	return c.E.HeapBudget(2*c.matFrom.UsedPages() + c.los.UsedPages() + 2*gc.MinNurseryPages)
}

// policyTick gives the heap policy its mutator observation; a raised
// target takes effect immediately via a nursery resize.
func (c *GenCopy) policyTick() {
	if from, to := gc.ObserveHeapPolicy(c, heappolicy.EvMutator, -1); to > from {
		c.resizeNursery()
	}
}

// resizeNursery applies the Appel policy with a copy reserve: mature
// usage is charged twice (space plus reserve), and the nursery gets half
// of what remains (its own copy reserve).
func (c *GenCopy) resizeNursery() {
	free := (c.heapBudget() - 2*c.matFrom.UsedPages() - c.los.UsedPages()) / 2
	if c.FixedNurseryPages > 0 && free > c.FixedNurseryPages {
		free = c.FixedNurseryPages
	}
	if free < gc.MinNurseryPages {
		free = gc.MinNurseryPages
	}
	c.nursery.SetBudget(uint64(free) * mem.PageSize)
}

// Alloc implements gc.Collector.
func (c *GenCopy) Alloc(t *objmodel.Type, arrayLen int) objmodel.Ref {
	total := t.TotalBytes(arrayLen)
	_, small := c.E.Classes.ForSize(total)
	for attempt := 0; ; attempt++ {
		var o objmodel.Ref
		if small {
			o = c.nursery.Alloc(t, arrayLen)
		} else {
			pages := int(mem.RoundUpPage(uint64(total)) / mem.PageSize)
			if c.UsedPages()+pages <= c.heapBudget() {
				o = c.los.Alloc(t, arrayLen)
			}
		}
		if o != mem.Nil {
			c.CountAlloc(t, arrayLen)
			c.policyTick()
			return o
		}
		switch attempt {
		case 0:
			c.Collect(false)
		case 1:
			c.Collect(true)
		default:
			panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.E.HeapPages})
		}
	}
}

// ReadRef implements gc.Collector.
func (c *GenCopy) ReadRef(o objmodel.Ref, i int) objmodel.Ref { return c.ReadRefRaw(o, i) }

// WriteRef implements gc.Collector with the generational write barrier.
func (c *GenCopy) WriteRef(o objmodel.Ref, i int, v objmodel.Ref) {
	slot := c.WriteRefRaw(o, i, v)
	if v != mem.Nil && c.nursery.Contains(v) && !c.nursery.Contains(o) {
		c.remset.Record(slot)
	}
}

// Collect implements gc.Collector.
func (c *GenCopy) Collect(full bool) {
	if full {
		c.fullGC()
	} else {
		c.nurseryGC()
		if (c.heapBudget()-2*c.matFrom.UsedPages()-c.los.UsedPages())/2 <= gc.MinNurseryPages {
			c.fullGC()
		}
	}
	if c.matFrom.UsedPages()+c.los.UsedPages() > c.E.HeapPages {
		panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.E.HeapPages})
	}
	gc.ObserveHeapPolicy(c, heappolicy.EvGCEnd, -1)
	c.resizeNursery()
}

// copyTo evacuates o into dst space, leaving a forwarding pointer.
func (c *GenCopy) copyTo(o objmodel.Ref, dst *heap.BumpSpace, work *gc.WorkList) objmodel.Ref {
	if objmodel.Forwarded(c.E.Space, o) {
		return objmodel.ForwardAddr(c.E.Space, o)
	}
	size := gc.ObjectBytes(c.E.Space, c.E.Types, o)
	nw := dst.AllocRaw(size)
	if nw == mem.Nil {
		panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.E.HeapPages})
	}
	gc.CopyObject(c.E.Space, o, nw, size)
	objmodel.Forward(c.E.Space, o, nw)
	work.Push(nw)
	return nw
}

// nurseryGC copies nursery survivors into the active mature semispace.
func (c *GenCopy) nurseryGC() {
	done := c.Stats().BeginPause(c.E, metrics.PauseNursery)
	defer done()
	gc.PauseClock(c.E, gc.PauseOverhead)
	c.Stats().Nursery++

	work := c.E.GetWorkList()
	defer c.E.PutWorkList(work)
	fwd := func(slot mem.Addr, tgt objmodel.Ref) {
		if c.nursery.Contains(tgt) {
			c.E.Space.WriteAddr(slot, c.copyTo(tgt, c.matFrom, work))
		}
	}
	c.E.Trace.Begin(trace.PhaseRootScan)
	c.remset.ForEachSlot(func(slot mem.Addr) {
		if tgt := c.E.Space.ReadAddr(slot); tgt != mem.Nil {
			fwd(slot, tgt)
		}
	})
	c.Roots().ForEach(func(slot *mem.Addr) {
		if c.nursery.Contains(*slot) {
			*slot = c.copyTo(*slot, c.matFrom, work)
		}
	})
	c.E.Trace.End(trace.PhaseRootScan)
	c.E.Trace.Begin(trace.PhaseCheneyForward)
	for {
		o, ok := work.Pop()
		if !ok {
			break
		}
		gc.ScanObject(c.E.Space, c.E.Types, o, fwd)
	}
	c.E.Trace.End(trace.PhaseCheneyForward)
	c.nursery.Reset()
	c.remset.Clear()
}

// fullGC flips the mature semispaces, copying all live data (nursery and
// mature) into the new active space; LOS objects are marked and swept.
func (c *GenCopy) fullGC() {
	done := c.Stats().BeginPause(c.E, metrics.PauseFull)
	defer done()
	gc.PauseClock(c.E, gc.PauseOverhead)
	c.Stats().Full++

	c.matFrom, c.matTo = c.matTo, c.matFrom
	c.matFrom.Reset()
	epoch := c.NextEpoch()

	work := c.E.GetWorkList()
	defer c.E.PutWorkList(work)
	forward := func(o objmodel.Ref) objmodel.Ref {
		switch {
		case c.nursery.Contains(o), c.matTo.Contains(o):
			return c.copyTo(o, c.matFrom, work)
		case c.los.Contains(o):
			if !objmodel.Marked(c.E.Space, o, epoch) {
				objmodel.SetMark(c.E.Space, o, epoch)
				work.Push(o)
			}
			return o
		}
		return o
	}
	c.E.Trace.Begin(trace.PhaseRootScan)
	c.Roots().ForEach(func(slot *mem.Addr) {
		*slot = forward(*slot)
	})
	c.E.Trace.End(trace.PhaseRootScan)
	c.E.Trace.Begin(trace.PhaseCheneyForward)
	for {
		o, ok := work.Pop()
		if !ok {
			break
		}
		gc.ScanObject(c.E.Space, c.E.Types, o, func(slot mem.Addr, tgt objmodel.Ref) {
			if nw := forward(tgt); nw != tgt {
				c.E.Space.WriteAddr(slot, nw)
			}
		})
	}
	c.E.Trace.End(trace.PhaseCheneyForward)
	c.E.Trace.Begin(trace.PhaseSweep)
	c.los.Sweep(epoch, nil)
	c.E.Trace.End(trace.PhaseSweep)
	c.nursery.Reset()
	c.remset.Clear()
}
