package collectors

import (
	"math"

	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/heap"
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
)

// CopyMS allocates with a bump pointer and performs only whole-heap
// collections that copy the bump space's survivors into a mark-sweep
// mature space (the paper describes it as "a variant of GenMS which
// performs only whole heap garbage collections"). It needs no write
// barrier. Its mark-sweep mature space gives better heap utilization
// than SemiSpace, which delays — but does not prevent — paging (§5.3.2).
type CopyMS struct {
	gc.Base
	gc.Mature
	eden *heap.BumpSpace
}

var _ gc.Collector = (*CopyMS)(nil)

// NewCopyMS creates a CopyMS collector on env.
func NewCopyMS(env *gc.Env) *CopyMS {
	c := &CopyMS{
		Base: gc.Base{E: env},
		eden: heap.NewBumpSpace(env.Space, env.Layout.Bump0Base, env.Layout.Bump0End),
	}
	c.Mature = gc.NewMature(env)
	c.resizeEden()
	return c
}

// Name implements gc.Collector.
func (c *CopyMS) Name() string { return "CopyMS" }

// UsedPages implements gc.Collector.
func (c *CopyMS) UsedPages() int { return c.MatureUsedPages() + c.eden.UsedPages() }

// heapBudget is the policy-effective page budget; with no policy it is
// exactly the configured heap.
func (c *CopyMS) heapBudget() int {
	return c.E.HeapBudget(c.MatureUsedPages() + gc.MinNurseryPages)
}

// policyTick gives the heap policy its mutator observation; a raised
// target takes effect immediately via an eden resize.
func (c *CopyMS) policyTick() {
	if from, to := gc.ObserveHeapPolicy(c, heappolicy.EvMutator, -1); to > from {
		c.resizeEden()
	}
}

func (c *CopyMS) resizeEden() {
	free := c.heapBudget() - c.MatureUsedPages()
	if free < gc.MinNurseryPages {
		free = gc.MinNurseryPages
	}
	c.eden.SetBudget(uint64(free) * mem.PageSize)
}

// Alloc implements gc.Collector.
func (c *CopyMS) Alloc(t *objmodel.Type, arrayLen int) objmodel.Ref {
	total := t.TotalBytes(arrayLen)
	_, small := c.E.Classes.ForSize(total)
	for attempt := 0; ; attempt++ {
		var o objmodel.Ref
		if small {
			o = c.eden.Alloc(t, arrayLen)
		} else {
			o = c.AllocMature(c.E, t, arrayLen, c.heapBudget(), c.eden.UsedPages())
		}
		if o != mem.Nil {
			c.CountAlloc(t, arrayLen)
			c.policyTick()
			return o
		}
		if attempt == 2 {
			panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.E.HeapPages})
		}
		c.Collect(true)
	}
}

// ReadRef implements gc.Collector.
func (c *CopyMS) ReadRef(o objmodel.Ref, i int) objmodel.Ref { return c.ReadRefRaw(o, i) }

// WriteRef implements gc.Collector (no barrier: every GC is full-heap).
func (c *CopyMS) WriteRef(o objmodel.Ref, i int, v objmodel.Ref) { c.WriteRefRaw(o, i, v) }

// Collect implements gc.Collector: a whole-heap collection that copies
// eden survivors into the mature space and mark-sweeps the rest.
func (c *CopyMS) Collect(bool) {
	c.collect()
	// Outside the pause so the policy sees the collection's own cost.
	gc.ObserveHeapPolicy(c, heappolicy.EvGCEnd, -1)
	c.resizeEden()
}

func (c *CopyMS) collect() {
	done := c.Stats().BeginPause(c.E, metrics.PauseFull)
	defer done()
	gc.PauseClock(c.E, gc.PauseOverhead)
	c.Stats().Full++

	epoch := c.NextEpoch()
	work := c.E.GetWorkList()
	defer c.E.PutWorkList(work)
	forward := func(o objmodel.Ref) objmodel.Ref {
		if !c.eden.Contains(o) {
			gc.MarkStep(c.E, work, o, epoch)
			return o
		}
		if objmodel.Forwarded(c.E.Space, o) {
			return objmodel.ForwardAddr(c.E.Space, o)
		}
		t, n := c.E.Types.TypeOf(c.E.Space, o)
		dst := c.AllocMature(c.E, t, n, math.MaxInt, 0)
		if dst == mem.Nil {
			panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.E.HeapPages})
		}
		size := int(mem.RoundUpWord(uint64(t.TotalBytes(n))))
		gc.CopyObject(c.E.Space, o, dst, size)
		objmodel.Forward(c.E.Space, o, dst)
		objmodel.SetMark(c.E.Space, dst, epoch)
		work.Push(dst)
		return dst
	}
	c.E.Trace.Begin(trace.PhaseRootScan)
	c.Roots().ForEach(func(slot *mem.Addr) {
		*slot = forward(*slot)
	})
	c.E.Trace.End(trace.PhaseRootScan)
	// Parallel work-stealing trace (DESIGN.md §11): workers mark mature
	// objects in place and defer eden edges, which forward evacuates
	// sequentially between rounds.
	cfg := &gc.ParMarkConfig{
		Epoch: epoch,
		Classify: func(tgt objmodel.Ref) gc.EdgeAction {
			if c.eden.Contains(tgt) {
				return gc.EdgeDefer
			}
			return gc.EdgeMark
		},
	}
	c.E.Trace.Begin(trace.PhaseMark)
	c.E.Marker().Mark(cfg, work, func(e gc.DeferredEdge, _ *gc.WorkList) {
		if nw := forward(e.Target); nw != e.Target {
			c.E.Space.WriteAddr(e.Slot, nw)
		}
	})
	c.E.Trace.End(trace.PhaseMark)
	c.E.Trace.Begin(trace.PhaseSweep)
	c.SS.Sweep(epoch)
	c.LOS.Sweep(epoch, nil)
	c.E.Trace.End(trace.PhaseSweep)
	c.eden.Reset()
	if c.MatureUsedPages() > c.E.HeapPages {
		panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.E.HeapPages})
	}
}
