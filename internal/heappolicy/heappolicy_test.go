package heappolicy

import (
	"math"
	"strings"
	"testing"

	"bookmarkgc/internal/mem"
)

func TestNewKnownNames(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, Options{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, p.Name())
		}
		if !Known(name) {
			t.Fatalf("Known(%q) = false", name)
		}
	}
	if Known("nope") {
		t.Fatal("Known(nope) = true")
	}
	if _, err := New("nope", Options{}); err == nil ||
		!strings.Contains(err.Error(), "membalancer") {
		t.Fatalf("New(nope) error should list valid names, got %v", err)
	}
}

func TestFixedNeverMoves(t *testing.T) {
	p := Fixed{}
	if p.Wants(EvGCEnd) || p.Wants(EvPressure) || p.Wants(EvMutator) {
		t.Fatal("fixed should want no events")
	}
	if got := p.Observe(EvGCEnd, Signals{UsedPages: 10}); got != math.MaxInt {
		t.Fatalf("fixed target = %d", got)
	}
}

func TestBCShrinkShrinkAndRegrow(t *testing.T) {
	p := NewBCShrink(BCShrinkOptions{Regrow: true})
	if p.Target() != math.MaxInt {
		t.Fatalf("initial target = %d, want MaxInt", p.Target())
	}
	// Shrink to footprint on pressure.
	p.Observe(EvPressure, Signals{NowNS: 1_000_000, FootprintPages: 100, MaxHeapPages: 400})
	if p.Target() != 100 {
		t.Fatalf("after pressure target = %d, want 100", p.Target())
	}
	// A larger footprint on a later notice must not regrow the target.
	p.Observe(EvPressure, Signals{NowNS: 2_000_000, FootprintPages: 150, MaxHeapPages: 400})
	if p.Target() != 100 {
		t.Fatalf("pressure regrew target to %d", p.Target())
	}
	// Mutator tick inside the quiet window: no regrow.
	p.Observe(EvMutator, Signals{NowNS: 5_000_000, MaxHeapPages: 400, FreeFrames: 400})
	if p.Target() != 100 {
		t.Fatalf("regrew inside quiet window: %d", p.Target())
	}
	// Past the quiet window but memory still tight: no regrow.
	p.Observe(EvMutator, Signals{NowNS: 20_000_000, MaxHeapPages: 400, FreeFrames: 10})
	if p.Target() != 100 {
		t.Fatalf("regrew under tight memory: %d", p.Target())
	}
	// Quiet and free: +1/8.
	p.Observe(EvMutator, Signals{NowNS: 20_000_000, MaxHeapPages: 400, FreeFrames: 400})
	if p.Target() != 112 {
		t.Fatalf("regrow target = %d, want 112", p.Target())
	}
	// Regrowth saturates at the configured maximum.
	for i := 0; i < 100; i++ {
		p.Observe(EvMutator, Signals{NowNS: 20_000_000, MaxHeapPages: 400, FreeFrames: 400})
	}
	if p.Target() != 400 {
		t.Fatalf("saturated target = %d, want 400", p.Target())
	}
}

func TestBCShrinkNoRegrowWhenDisabled(t *testing.T) {
	p := NewBCShrink(BCShrinkOptions{})
	if p.Wants(EvMutator) {
		t.Fatal("bc-shrink without regrow should not want mutator ticks")
	}
	p.Observe(EvPressure, Signals{NowNS: 1, FootprintPages: 50, MaxHeapPages: 400})
	p.Observe(EvMutator, Signals{NowNS: 1e9, MaxHeapPages: 400, FreeFrames: 400})
	if p.Target() != 50 {
		t.Fatalf("target = %d, want 50", p.Target())
	}
}

func TestMemBalancerSquareRoot(t *testing.T) {
	p := NewMemBalancer(0).(*memBalancer)
	if p.Wants(EvPressure) || p.Wants(EvMutator) || !p.Wants(EvGCEnd) {
		t.Fatal("membalancer should want exactly EvGCEnd")
	}
	// First GC: establishes a baseline, no rates yet.
	p.Observe(EvGCEnd, Signals{NowNS: 1e9, UsedPages: 1000, AllocBytes: 1 << 24, GCTimeNS: 1e7})
	if p.Target() != math.MaxInt {
		t.Fatalf("target after one GC = %d, want MaxInt", p.Target())
	}
	// Second GC: rates become available; target = live + sqrt term.
	p.Observe(EvGCEnd, Signals{NowNS: 2e9, UsedPages: 1000, AllocBytes: 2 << 24, GCTimeNS: 2e7})
	live := 1000.0 * float64(mem.PageSize)
	g := float64(1<<24) / 1.0 // bytes over 1s
	s := live / 0.01          // live over 10ms of pause
	want := int(math.Ceil((live + math.Sqrt(live*g/(defaultAggressiveness*s))) / float64(mem.PageSize)))
	if p.Target() != want {
		t.Fatalf("target = %d, want %d", p.Target(), want)
	}
	if p.Target() <= 1000 {
		t.Fatalf("target %d should exceed live pages", p.Target())
	}
	// Fleet cap clamps, and clears.
	p.SetFleetCap(1)
	if p.Target() != 1 {
		t.Fatalf("capped target = %d", p.Target())
	}
	p.SetFleetCap(0)
	if p.Target() != want {
		t.Fatalf("uncapped target = %d, want %d", p.Target(), want)
	}
	if l, w := p.BalanceStats(); l != live || w <= 0 {
		t.Fatalf("BalanceStats = (%v, %v)", l, w)
	}
}

func TestMemBalancerHigherAggressivenessShrinks(t *testing.T) {
	run := func(c float64) int {
		p := NewMemBalancer(c)
		p.Observe(EvGCEnd, Signals{NowNS: 1e9, UsedPages: 500, AllocBytes: 1 << 23, GCTimeNS: 1e7})
		p.Observe(EvGCEnd, Signals{NowNS: 2e9, UsedPages: 500, AllocBytes: 2 << 23, GCTimeNS: 2e7})
		return p.Target()
	}
	if lo, hi := run(1e-2), run(1e-4); lo >= hi {
		t.Fatalf("aggressive c should shrink the heap: c=1e-2 -> %d, c=1e-4 -> %d", lo, hi)
	}
}

func TestComposedTakesTighterTarget(t *testing.T) {
	p := NewComposed(Options{}).(*composed)
	if !p.Wants(EvGCEnd) || !p.Wants(EvPressure) || !p.Wants(EvMutator) {
		t.Fatal("composed should want all events")
	}
	if !p.PressureSensitive() {
		t.Fatal("composed should be pressure sensitive")
	}
	// Feed rates so membalancer has an opinion.
	p.Observe(EvGCEnd, Signals{NowNS: 1e9, UsedPages: 1000, AllocBytes: 1 << 24, GCTimeNS: 1e7})
	p.Observe(EvGCEnd, Signals{NowNS: 2e9, UsedPages: 1000, AllocBytes: 2 << 24, GCTimeNS: 2e7})
	mb := p.mb.Target()
	// An eviction notice with a tiny footprint clamps below membalancer.
	p.Observe(EvPressure, Signals{NowNS: 2e9 + 1, FootprintPages: 10, MaxHeapPages: 1 << 20})
	if p.Target() != 10 {
		t.Fatalf("composed target = %d, want bc clamp 10 (mb %d)", p.Target(), mb)
	}
	// SetFleetCap steers the membalancer half.
	p.SetFleetCap(5)
	if p.mb.Target() != 5 {
		t.Fatalf("fleet cap not applied: %d", p.mb.Target())
	}
}
