// Package heappolicy makes the heap limit a first-class control loop.
//
// Historically each collector had a hard-coded answer to "how big may
// the heap get": a fixed page budget (Env.HeapPages), plus — for BC
// only — the paper's §3.3.3 reflex of shrinking the target to the
// current footprint on an eviction notice and regrowing it later (§7).
// This package extracts that decision into a pluggable Policy: the
// collector feeds the policy observations (allocation progress, GC
// cost, footprint, pressure signals) on the simulated clock, and the
// policy answers with a heap target in pages. Four policies ship:
//
//   - fixed: the status quo. The target is the configured maximum;
//     the policy never moves it. Compatibility default.
//   - bc-shrink: the paper's rule, extracted from BC. Shrink to the
//     footprint on an eviction notice; with Regrow, raise the target
//     by 1/8 once the VMM has had free memory for 10ms of quiet.
//   - membalancer: the square-root rule of "Optimal Heap Limits for
//     Reducing Browser Memory Use": M = L + sqrt(L·g/(c·s)) where L is
//     live bytes, g the EWMA allocation rate, s the EWMA GC speed, and
//     c a tunable aggressiveness. Provably composes across processes.
//   - composed: membalancer clamped by bc-shrink — the square-root
//     target, never above what eviction notices allow.
//
// Every policy is deterministic: decisions depend only on the Signals
// fed in, which are derived from the simulated clock and the
// collector's own books, never from host time. The fleet Balancer in
// internal/sim redistributes a machine budget across tenants by
// capping each tenant's Balancable policy (SetFleetCap).
package heappolicy

import (
	"fmt"
	"math"
	"sort"

	"bookmarkgc/internal/mem"
)

// Event says why the collector is consulting the policy.
type Event int

const (
	// EvGCEnd fires after every collection, with GC cost populated.
	EvGCEnd Event = iota
	// EvPressure fires when the VMM schedules an eviction against the
	// process (or, for relayed policies, against the tenant's Proc).
	// Signals.FootprintPages is the page count the collector is
	// actually holding resident (plus any discard credit).
	EvPressure
	// EvMutator fires periodically from the allocation path — the
	// hook bc-shrink uses to regrow. Policies that return false from
	// Wants(EvMutator) pay only an interface call per check.
	EvMutator
)

// Signals is one observation. All fields are on the simulated clock /
// the collector's own deterministic books.
type Signals struct {
	NowNS          int64  // simulated time
	MaxHeapPages   int    // configured ceiling (Env.HeapPages)
	UsedPages      int    // pages holding live/allocated data
	FootprintPages int    // resident pages (+ discard credit)
	FreeFrames     int    // VMM free-frame hint
	AllocBytes     uint64 // cumulative bytes allocated
	GCs            uint64 // cumulative collections
	GCTimeNS       int64  // cumulative GC pause time; valid on EvGCEnd
}

// Policy is a heap-limit control loop. Observe feeds one observation
// and returns the (possibly unchanged) target in pages; Target returns
// the current target without observing. Targets above MaxHeapPages
// mean "no opinion — use the configured ceiling". Implementations are
// single-tenant state machines; they are not safe for concurrent use
// (collectors are single-threaded on the simulated clock).
type Policy interface {
	Name() string
	// Wants reports whether Observe(ev, ...) can change the target —
	// the hot-path gate that keeps per-allocation checks free for
	// policies that ignore mutator ticks.
	Wants(ev Event) bool
	Observe(ev Event, s Signals) int
	Target() int
	// PressureSensitive reports whether the policy consumes
	// EvPressure, so the simulator knows to relay VMM eviction
	// notices to collectors that have no handler of their own.
	PressureSensitive() bool
}

// Balancable is implemented by policies a fleet Balancer can steer:
// they expose their live size and square-root weight and accept a
// fleet-wide cap on top of their own target.
type Balancable interface {
	Policy
	// BalanceStats returns the current live bytes estimate and the
	// square-root weight w = sqrt(L·g/(c·s)); weight 0 means the
	// policy has no rate estimates yet and should not receive a
	// share beyond its live size.
	BalanceStats() (liveBytes, weight float64)
	// SetFleetCap clamps the policy's target to cap pages (0 clears).
	SetFleetCap(pages int)
}

// Names lists the registered policy names, in presentation order.
func Names() []string { return []string{"fixed", "bc-shrink", "membalancer", "composed"} }

// Known reports whether name is a registered policy.
func Known(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// Options tunes policy construction.
type Options struct {
	// Regrow enables bc-shrink's §7 regrow extension.
	Regrow bool
	// Aggressiveness is membalancer's c; larger c trades memory for
	// GC time harder (smaller heaps). 0 means the default.
	Aggressiveness float64
}

// New constructs a policy by name.
func New(name string, o Options) (Policy, error) {
	switch name {
	case "fixed":
		return Fixed{}, nil
	case "bc-shrink":
		return NewBCShrink(BCShrinkOptions{Regrow: o.Regrow}), nil
	case "membalancer":
		return NewMemBalancer(o.Aggressiveness), nil
	case "composed":
		return NewComposed(o), nil
	default:
		known := Names()
		sort.Strings(known)
		return nil, fmt.Errorf("unknown heap policy %q (valid: %v)", name, known)
	}
}

// Fixed is the status-quo policy: the target is the configured
// maximum, forever. Collectors treat a nil policy identically; Fixed
// exists so "fixed" is a nameable point in sweeps.
type Fixed struct{}

func (Fixed) Name() string               { return "fixed" }
func (Fixed) Wants(Event) bool           { return false }
func (Fixed) Observe(Event, Signals) int { return math.MaxInt }
func (Fixed) Target() int                { return math.MaxInt }
func (Fixed) PressureSensitive() bool    { return false }

// BCShrinkOptions configures the extracted paper rule.
type BCShrinkOptions struct {
	Regrow bool
}

// bcShrink is the paper's §3.3.3 shrink-to-footprint rule with the §7
// regrow extension, extracted verbatim from BC so any collector can
// run it. The zero target is MaxInt: no opinion until pressure.
type bcShrink struct {
	regrow       bool
	target       int
	lastNoticeNS int64
}

// regrowQuietNS is the §7 quiet period: no regrowth within 10ms of
// the last eviction notice (simulated time).
const regrowQuietNS = 10e6

// NewBCShrink returns the extracted BC shrink/regrow policy.
func NewBCShrink(o BCShrinkOptions) Policy {
	return &bcShrink{regrow: o.Regrow, target: math.MaxInt}
}

func (p *bcShrink) Name() string            { return "bc-shrink" }
func (p *bcShrink) Target() int             { return p.target }
func (p *bcShrink) PressureSensitive() bool { return true }

func (p *bcShrink) Wants(ev Event) bool {
	switch ev {
	case EvPressure:
		return true
	case EvMutator:
		return p.regrow
	}
	return false
}

func (p *bcShrink) Observe(ev Event, s Signals) int {
	switch ev {
	case EvPressure:
		// §3.3.3: the footprint now exceeds available memory; limit
		// the heap to what is actually resident. Every valid notice —
		// even one that does not shrink — restarts the quiet period.
		p.lastNoticeNS = s.NowNS
		if s.FootprintPages < p.target {
			p.target = s.FootprintPages
		}
	case EvMutator:
		// §7 regrow: once the VMM has had free memory for a while,
		// raise the target by 1/8, capped at the configured maximum.
		if !p.regrow || p.target >= s.MaxHeapPages {
			break
		}
		if s.NowNS-p.lastNoticeNS < regrowQuietNS {
			break
		}
		if s.FreeFrames > s.MaxHeapPages/8 {
			p.target += p.target / 8
			if p.target > s.MaxHeapPages {
				p.target = s.MaxHeapPages
			}
		}
	}
	return p.target
}

// defaultAggressiveness is membalancer's c when unset. Tuned so that
// at this simulator's typical rates the square-root term lands between
// "live" and "configured max" — visibly smaller heaps than fixed
// without collapsing to the floor.
const defaultAggressiveness = 5e-8

// ewmaAlpha smooths the allocation-rate and GC-speed estimates.
const ewmaAlpha = 0.3

// memBalancer implements the square-root rule
//
//	M = L + sqrt(L·g / (c·s))
//
// with L live bytes after the last GC, g an EWMA of the allocation
// rate (bytes/sec of simulated time), s an EWMA of GC speed (live
// bytes traced per second of GC pause), and c the aggressiveness.
// Before two collections it has no rate estimates and stays at "no
// opinion" (MaxInt).
type memBalancer struct {
	c        float64
	target   int
	fleetCap int

	lastNS    int64
	lastAlloc uint64
	lastGCNS  int64
	haveRates bool
	liveBytes float64
	allocRate float64 // EWMA g, bytes/sec
	gcSpeed   float64 // EWMA s, bytes/sec of pause
}

// NewMemBalancer returns the square-root policy with aggressiveness c
// (0 = default).
func NewMemBalancer(c float64) Policy {
	if c <= 0 {
		c = defaultAggressiveness
	}
	return &memBalancer{c: c, target: math.MaxInt}
}

func (p *memBalancer) Name() string            { return "membalancer" }
func (p *memBalancer) PressureSensitive() bool { return false }

func (p *memBalancer) Wants(ev Event) bool { return ev == EvGCEnd }

func (p *memBalancer) Target() int {
	t := p.target
	if p.fleetCap > 0 && p.fleetCap < t {
		t = p.fleetCap
	}
	return t
}

func (p *memBalancer) Observe(ev Event, s Signals) int {
	if ev != EvGCEnd {
		return p.Target()
	}
	live := float64(s.UsedPages) * float64(mem.PageSize)
	dt := s.NowNS - p.lastNS
	dAlloc := s.AllocBytes - p.lastAlloc
	dGC := s.GCTimeNS - p.lastGCNS
	if p.lastNS != 0 && dt > 0 {
		instAlloc := float64(dAlloc) / (float64(dt) / 1e9)
		if p.haveRates {
			p.allocRate += ewmaAlpha * (instAlloc - p.allocRate)
		} else {
			p.allocRate = instAlloc
		}
		if dGC > 0 {
			instSpeed := live / (float64(dGC) / 1e9)
			if p.haveRates && p.gcSpeed > 0 {
				p.gcSpeed += ewmaAlpha * (instSpeed - p.gcSpeed)
			} else {
				p.gcSpeed = instSpeed
			}
		}
		p.haveRates = true
	}
	p.lastNS = s.NowNS
	p.lastAlloc = s.AllocBytes
	p.lastGCNS = s.GCTimeNS
	p.liveBytes = live

	if p.haveRates && p.allocRate > 0 && p.gcSpeed > 0 {
		extra := math.Sqrt(live * p.allocRate / (p.c * p.gcSpeed))
		pages := int(math.Ceil((live + extra) / float64(mem.PageSize)))
		if pages < 1 {
			pages = 1
		}
		p.target = pages
	}
	return p.Target()
}

func (p *memBalancer) BalanceStats() (float64, float64) {
	if !p.haveRates || p.allocRate <= 0 || p.gcSpeed <= 0 {
		return p.liveBytes, 0
	}
	return p.liveBytes, math.Sqrt(p.liveBytes * p.allocRate / (p.c * p.gcSpeed))
}

func (p *memBalancer) SetFleetCap(pages int) { p.fleetCap = pages }

// composed runs membalancer and bc-shrink side by side and takes the
// tighter of the two targets: the square-root rule sizes the heap for
// throughput, eviction notices clamp it to what the machine will
// actually let the process keep.
type composed struct {
	mb *memBalancer
	bc *bcShrink
}

// NewComposed returns membalancer clamped by bc-shrink.
func NewComposed(o Options) Policy {
	return &composed{
		mb: NewMemBalancer(o.Aggressiveness).(*memBalancer),
		bc: NewBCShrink(BCShrinkOptions{Regrow: true}).(*bcShrink),
	}
}

func (p *composed) Name() string            { return "composed" }
func (p *composed) PressureSensitive() bool { return true }

func (p *composed) Wants(ev Event) bool { return p.mb.Wants(ev) || p.bc.Wants(ev) }

func (p *composed) Target() int {
	t := p.mb.Target()
	if bt := p.bc.Target(); bt < t {
		t = bt
	}
	return t
}

func (p *composed) Observe(ev Event, s Signals) int {
	if p.mb.Wants(ev) {
		p.mb.Observe(ev, s)
	}
	if p.bc.Wants(ev) {
		p.bc.Observe(ev, s)
	}
	return p.Target()
}

func (p *composed) BalanceStats() (float64, float64) { return p.mb.BalanceStats() }
func (p *composed) SetFleetCap(pages int)            { p.mb.SetFleetCap(pages) }
