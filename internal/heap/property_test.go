package heap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
)

// TestBumpObjectsDisjointProperty: randomly sized bump allocations are
// word-aligned, contiguous, in-bounds, and non-overlapping.
func TestBumpObjectsDisjointProperty(t *testing.T) {
	tb := objmodel.NewTable()
	arr := tb.Array("a", false)
	f := func(sizes []uint16) bool {
		s := mem.NewSpace(1<<22, nil)
		l := NewLayout(1 << 20)
		b := NewBumpSpace(s, l.Bump0Base, l.Bump0End)
		var prevEnd mem.Addr = l.Bump0Base
		for _, raw := range sizes {
			n := int(raw % 500)
			o := b.Alloc(arr, n)
			if o == mem.Nil {
				return b.UsedBytes() > 0 // only acceptable when truly full
			}
			if o != prevEnd {
				return false // not contiguous
			}
			if o%mem.WordSize != 0 {
				return false
			}
			prevEnd = o + mem.Addr(mem.RoundUpWord(uint64(arr.TotalBytes(n))))
			if prevEnd > b.Frontier() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLOSRunsDisjointProperty: random alloc/free sequences never produce
// overlapping runs and keep page accounting exact.
func TestLOSRunsDisjointProperty(t *testing.T) {
	tb := objmodel.NewTable()
	arr := tb.Array("a", false)
	rng := rand.New(rand.NewSource(11))
	s := mem.NewSpace(1<<24, nil)
	los := NewLOS(s, mem.PageSize*16, mem.PageSize*1040) // 1024 pages
	live := map[objmodel.Ref]int{}                       // obj -> pages

	overlap := func(a objmodel.Ref, ap int, b objmodel.Ref, bp int) bool {
		aEnd := a + mem.Addr(ap)*mem.PageSize
		bEnd := b + mem.Addr(bp)*mem.PageSize
		return a < bEnd && b < aEnd
	}
	for step := 0; step < 3000; step++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			words := (rng.Intn(5*mem.PageSize) + mem.PageSize) / mem.WordSize
			o := los.Alloc(arr, words)
			if o == mem.Nil {
				continue
			}
			pages := int(mem.RoundUpPage(uint64(arr.TotalBytes(words))) / mem.PageSize)
			for prev, pp := range live {
				if overlap(o, pages, prev, pp) {
					t.Fatalf("step %d: run %#x overlaps %#x", step, o, prev)
				}
			}
			live[o] = pages
		} else {
			for o := range live {
				los.Free(o)
				delete(live, o)
				break
			}
		}
		want := 0
		for _, pp := range live {
			want += pp
		}
		if los.UsedPages() != want {
			t.Fatalf("step %d: UsedPages=%d, live=%d", step, los.UsedPages(), want)
		}
		if los.Objects() != len(live) {
			t.Fatalf("step %d: Objects=%d, live=%d", step, los.Objects(), len(live))
		}
	}
}

// TestSuperSpaceAllocFreeProperty: random allocation and freeing across
// several classes preserves block accounting and never double-allocates.
func TestSuperSpaceAllocFreeProperty(t *testing.T) {
	s, l := testSetup(8 << 20)
	tb := objmodel.NewTable()
	node := tb.Scalar("n", 4, 0, 1)
	ss := NewSuperSpace(s, classes, l.MatureBase, l.MatureEnd)
	rng := rand.New(rand.NewSource(5))
	cl, _ := classes.ForSize(node.TotalBytes(0))

	live := map[objmodel.Ref]bool{}
	for step := 0; step < 5000; step++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			o := ss.Alloc(node, 0, cl)
			if o == mem.Nil {
				if ss.AcquireSuper(cl, node.Kind) < 0 {
					continue
				}
				o = ss.Alloc(node, 0, cl)
			}
			if live[o] {
				t.Fatalf("step %d: block %#x allocated twice", step, o)
			}
			live[o] = true
		} else {
			for o := range live {
				ss.FreeBlock(o)
				delete(live, o)
				break
			}
		}
	}
	// Total allocated blocks across superpages equals the live set.
	total := 0
	ss.ForEachSuper(func(idx int, _ objmodel.SizeClass, _ objmodel.Kind) {
		total += ss.Allocated(idx)
	})
	if total != len(live) {
		t.Fatalf("allocated %d blocks, live %d", total, len(live))
	}
}
