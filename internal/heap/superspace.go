package heap

import (
	"fmt"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
)

// Superpage header layout (word offsets from the superpage base). The
// header lives in the first page of the superpage, so reading it touches
// that page — this is the paper's design: metadata is stored in the
// superpage header for constant-time access by bit-masking, and those
// header pages are kept memory-resident (§3.4).
const (
	hdrKindClass = 0 // 0 = free; else (classIndex+1) | kind<<16
	hdrIncoming  = 1 // incoming bookmark counter (§3.4)
	hdrAllocated = 2 // allocated block count
	hdrBitmap    = 4 // allocation bitmap, bitmapWords words
	bitmapWords  = 16
)

func init() {
	if hdrBitmap+bitmapWords > objmodel.SuperHeaderBytes/mem.WordSize {
		panic("heap: superpage header overflows its reservation")
	}
}

// SuperSpace is the segregated-fit mark-sweep mature space: an array of
// superpages, each assigned to one size class and one object kind
// (scalar or array, §4), with block allocation bitmaps in the superpage
// headers. Completely empty superpages can be reassigned to any class.
type SuperSpace struct {
	s       *mem.Space
	classes *objmodel.Classes
	base    mem.Addr
	n       int // superpages in the region

	next    int     // first never-used superpage
	free    []int32 // recycled empty superpages
	avail   [][]int32
	inAvail []bool
	// used mirrors the headers' in-use state so iteration can skip free
	// superpages without touching their (possibly evicted) header pages —
	// the moral equivalent of linking in-use superpages in a list.
	used     []bool
	inUse    int
	resident func(mem.PageID) bool // optional residency filter for alloc/sweep
	counters *trace.Counters       // optional registry (nil-safe)
}

// NewSuperSpace creates a mature space over [base, end), which must be
// superpage-aligned.
func NewSuperSpace(s *mem.Space, classes *objmodel.Classes, base, end mem.Addr) *SuperSpace {
	if base%mem.SuperSize != 0 || end%mem.SuperSize != 0 || end <= base {
		panic("heap: unaligned superpage region")
	}
	n := int((end - base) / mem.SuperSize)
	return &SuperSpace{
		s:       s,
		classes: classes,
		base:    base,
		n:       n,
		avail:   make([][]int32, 2*classes.Len()),
		inAvail: make([]bool, n),
		used:    make([]bool, n),
	}
}

// SetResidencyFilter restricts allocation and sweeping to blocks whose
// pages satisfy ok. BC installs its residency bit array here so it never
// allocates into or sweeps across evicted pages (§3.3.1, §3.4.1).
func (ss *SuperSpace) SetResidencyFilter(ok func(mem.PageID) bool) { ss.resident = ok }

// SetCounters attaches a counter registry recording superpage churn and
// per-size-class acquisition counts. nil detaches.
func (ss *SuperSpace) SetCounters(c *trace.Counters) { ss.counters = c }

// Classes returns the size-class table in use.
func (ss *SuperSpace) Classes() *objmodel.Classes { return ss.classes }

// NumSupers returns the superpage capacity of the region.
func (ss *SuperSpace) NumSupers() int { return ss.n }

// InUseSupers returns the number of superpages assigned to a class.
func (ss *SuperSpace) InUseSupers() int { return ss.inUse }

// UsedPages returns the page footprint of assigned superpages.
func (ss *SuperSpace) UsedPages() int { return ss.inUse * mem.SuperPages }

// SuperBase returns the base address of superpage idx.
func (ss *SuperSpace) SuperBase(idx int) mem.Addr {
	return ss.base + mem.Addr(idx)*mem.SuperSize
}

// SuperIndex returns the index of the superpage containing a.
func (ss *SuperSpace) SuperIndex(a mem.Addr) int {
	return int((a - ss.base) / mem.SuperSize)
}

// Contains reports whether a lies in the mature region.
func (ss *SuperSpace) Contains(a mem.Addr) bool {
	return a >= ss.base && a < ss.base+mem.Addr(ss.n)*mem.SuperSize
}

// HeaderPage returns the page holding superpage idx's header. BC keeps
// these pages resident (§3.4).
func (ss *SuperSpace) HeaderPage(idx int) mem.PageID {
	return ss.SuperBase(idx).Page()
}

// hdr reads header word w of superpage idx.
func (ss *SuperSpace) hdr(idx, w int) uint64 {
	return ss.s.ReadWord(ss.SuperBase(idx) + mem.Addr(w)*mem.WordSize)
}

// setHdr writes header word w of superpage idx.
func (ss *SuperSpace) setHdr(idx, w int, v uint64) {
	ss.s.WriteWord(ss.SuperBase(idx)+mem.Addr(w)*mem.WordSize, v)
}

// ClassOf returns the size class of superpage idx; ok is false for free
// superpages.
func (ss *SuperSpace) ClassOf(idx int) (objmodel.SizeClass, objmodel.Kind, bool) {
	kc := ss.hdr(idx, hdrKindClass)
	if kc == 0 {
		return objmodel.SizeClass{}, 0, false
	}
	return ss.classes.Class(int(kc&0xffff) - 1), objmodel.Kind(kc >> 16 & 1), true
}

// Allocated returns the number of allocated blocks in superpage idx.
func (ss *SuperSpace) Allocated(idx int) int { return int(ss.hdr(idx, hdrAllocated)) }

// Incoming returns the incoming-bookmark counter of superpage idx.
func (ss *SuperSpace) Incoming(idx int) int { return int(ss.hdr(idx, hdrIncoming)) }

// IncIncoming bumps the incoming-bookmark counter. Headers are resident,
// so this never faults (§3.4).
func (ss *SuperSpace) IncIncoming(idx int) {
	ss.setHdr(idx, hdrIncoming, ss.hdr(idx, hdrIncoming)+1)
}

// DecIncoming decrements the counter, saturating at zero, and returns the
// new value.
func (ss *SuperSpace) DecIncoming(idx int) int {
	v := ss.hdr(idx, hdrIncoming)
	if v > 0 {
		v--
		ss.setHdr(idx, hdrIncoming, v)
	}
	return int(v)
}

// SetIncoming overwrites the counter (used by the fail-safe collection
// when all bookmarks are discarded, §3.5).
func (ss *SuperSpace) SetIncoming(idx int, v int) { ss.setHdr(idx, hdrIncoming, uint64(v)) }

// BlockAddr returns the address of block b in superpage idx.
func (ss *SuperSpace) BlockAddr(idx, b int, cl objmodel.SizeClass) mem.Addr {
	return ss.SuperBase(idx) + objmodel.SuperHeaderBytes + mem.Addr(b*cl.BlockSize)
}

// BlockIndex returns the block number containing a within superpage idx.
func (ss *SuperSpace) BlockIndex(idx int, a mem.Addr, cl objmodel.SizeClass) int {
	return int(a-ss.SuperBase(idx)-objmodel.SuperHeaderBytes) / cl.BlockSize
}

// bit helpers over the header bitmap.
func (ss *SuperSpace) testBit(idx, b int) bool {
	return ss.hdr(idx, hdrBitmap+b/64)&(1<<(uint(b)&63)) != 0
}

func (ss *SuperSpace) setBit(idx, b int) {
	w := hdrBitmap + b/64
	ss.setHdr(idx, w, ss.hdr(idx, w)|1<<(uint(b)&63))
}

func (ss *SuperSpace) clearBit(idx, b int) {
	w := hdrBitmap + b/64
	ss.setHdr(idx, w, ss.hdr(idx, w)&^(1<<(uint(b)&63)))
}

// availKey indexes the per-(class, kind) available lists.
func availKey(cl objmodel.SizeClass, kind objmodel.Kind) int {
	return 2*cl.Index + int(kind)
}

// Alloc allocates an uninitialized block for an object of type t. It
// returns mem.Nil when no block is available — the caller must either
// acquire a superpage (AcquireSuper) or collect.
func (ss *SuperSpace) Alloc(t *objmodel.Type, arrayLen int, cl objmodel.SizeClass) objmodel.Ref {
	kind := t.Kind
	key := availKey(cl, kind)
	list := ss.avail[key]
	for len(list) > 0 {
		idx := int(list[len(list)-1])
		gotCl, gotKind, used := ss.ClassOf(idx)
		if !used || gotCl.Index != cl.Index || gotKind != kind || ss.Allocated(idx) == cl.Blocks {
			// Stale entry: superpage freed, reassigned, or filled.
			list = list[:len(list)-1]
			ss.inAvail[idx] = false
			continue
		}
		if o := ss.allocIn(idx, cl, t, arrayLen); o != mem.Nil {
			ss.avail[key] = list
			return o
		}
		// No usable block (e.g. all remaining blocks on evicted pages).
		list = list[:len(list)-1]
		ss.inAvail[idx] = false
	}
	ss.avail[key] = list
	return mem.Nil
}

// allocIn carves one block out of superpage idx, honoring the residency
// filter, and initializes the object header.
func (ss *SuperSpace) allocIn(idx int, cl objmodel.SizeClass, t *objmodel.Type, arrayLen int) objmodel.Ref {
	for b := 0; b < cl.Blocks; b++ {
		if ss.testBit(idx, b) {
			continue
		}
		o := ss.BlockAddr(idx, b, cl)
		if ss.resident != nil && !ss.blockResident(o, cl.BlockSize) {
			continue
		}
		ss.setBit(idx, b)
		ss.setHdr(idx, hdrAllocated, ss.hdr(idx, hdrAllocated)+1)
		objmodel.ClearStatus(ss.s, o)
		objmodel.SetTypeWord(ss.s, o, t.ID, arrayLen)
		ss.s.ZeroRange(objmodel.Payload(o), uint64(t.PayloadWords(arrayLen))*mem.WordSize)
		return o
	}
	return mem.Nil
}

// blockResident reports whether every page the block spans passes the
// residency filter.
func (ss *SuperSpace) blockResident(o mem.Addr, size int) bool {
	first, last := mem.PagesIn(o, uint64(size))
	for p := first; p <= last; p++ {
		if !ss.resident(p) {
			return false
		}
	}
	return true
}

// AcquireSuper assigns a fresh superpage to (cl, kind) and makes it
// available for allocation. Returns the superpage index, or -1 if the
// region is exhausted.
func (ss *SuperSpace) AcquireSuper(cl objmodel.SizeClass, kind objmodel.Kind) int {
	idx := -1
	if n := len(ss.free); n > 0 {
		idx = int(ss.free[n-1])
		ss.free = ss.free[:n-1]
	} else if ss.next < ss.n {
		idx = ss.next
		ss.next++
	} else {
		return -1
	}
	ss.setHdr(idx, hdrKindClass, uint64(cl.Index+1)|uint64(kind)<<16)
	ss.setHdr(idx, hdrIncoming, 0)
	ss.setHdr(idx, hdrAllocated, 0)
	for w := 0; w < bitmapWords; w++ {
		ss.setHdr(idx, hdrBitmap+w, 0)
	}
	ss.used[idx] = true
	ss.inUse++
	ss.counters.Inc(trace.CSuperpagesAcquired)
	ss.counters.AddVec(trace.VSuperAllocsByClass, cl.Index, 1)
	ss.pushAvail(idx, cl, kind)
	return idx
}

func (ss *SuperSpace) pushAvail(idx int, cl objmodel.SizeClass, kind objmodel.Kind) {
	if !ss.inAvail[idx] {
		ss.inAvail[idx] = true
		key := availKey(cl, kind)
		ss.avail[key] = append(ss.avail[key], int32(idx))
	}
}

// FreeBlock releases the block holding object o. When the superpage
// becomes empty it is returned to the free pool (reassignable to any
// class). Reports whether the superpage became free.
func (ss *SuperSpace) FreeBlock(o objmodel.Ref) bool {
	idx := ss.SuperIndex(o)
	cl, kind, ok := ss.ClassOf(idx)
	if !ok {
		panic(fmt.Sprintf("heap: FreeBlock on free superpage %d", idx))
	}
	b := ss.BlockIndex(idx, o, cl)
	if !ss.testBit(idx, b) {
		panic("heap: double free")
	}
	ss.clearBit(idx, b)
	n := ss.hdr(idx, hdrAllocated) - 1
	ss.setHdr(idx, hdrAllocated, n)
	if n == 0 {
		ss.releaseSuper(idx)
		return true
	}
	ss.pushAvail(idx, cl, kind)
	return false
}

// releaseSuper marks superpage idx free.
func (ss *SuperSpace) releaseSuper(idx int) {
	ss.setHdr(idx, hdrKindClass, 0)
	ss.setHdr(idx, hdrIncoming, 0)
	ss.used[idx] = false
	ss.inUse--
	ss.counters.Inc(trace.CSuperpagesReleased)
	ss.free = append(ss.free, int32(idx))
	ss.inAvail[idx] = false
}

// ForEachSuper calls fn for every in-use superpage. Reading the header
// touches the header page, as a real header walk would.
func (ss *SuperSpace) ForEachSuper(fn func(idx int, cl objmodel.SizeClass, kind objmodel.Kind)) {
	for idx := 0; idx < ss.next; idx++ {
		if !ss.used[idx] {
			continue
		}
		if cl, kind, ok := ss.ClassOf(idx); ok {
			fn(idx, cl, kind)
		}
	}
}

// Used reports whether superpage idx is assigned to a class, without
// touching the header page.
func (ss *SuperSpace) Used(idx int) bool { return ss.used[idx] }

// ForEachObjectIn walks the allocated blocks of superpage idx using only
// the header bitmap, so the walk itself does not touch data pages.
func (ss *SuperSpace) ForEachObjectIn(idx int, fn func(o objmodel.Ref)) {
	cl, _, ok := ss.ClassOf(idx)
	if !ok {
		return
	}
	for b := 0; b < cl.Blocks; b++ {
		if ss.testBit(idx, b) {
			fn(ss.BlockAddr(idx, b, cl))
		}
	}
}

// ObjectAt returns the block start containing a (which may point
// anywhere inside the block), for page scans that must locate headers.
func (ss *SuperSpace) ObjectAt(idx int, a mem.Addr) (objmodel.Ref, bool) {
	cl, _, ok := ss.ClassOf(idx)
	if !ok {
		return mem.Nil, false
	}
	off := a - ss.SuperBase(idx)
	if off < objmodel.SuperHeaderBytes {
		return mem.Nil, false
	}
	b := int(off-objmodel.SuperHeaderBytes) / cl.BlockSize
	if b >= cl.Blocks || !ss.testBit(idx, b) {
		return mem.Nil, false
	}
	return ss.BlockAddr(idx, b, cl), true
}

// SweepSuper frees every allocated block in superpage idx whose object is
// unmarked in epoch. If the space has a residency filter, blocks starting
// on non-resident pages are skipped entirely (BC sweeps only the
// memory-resident pages, §3.4.1). Returns the number of blocks freed and
// whether the superpage became empty.
func (ss *SuperSpace) SweepSuper(idx int, epoch uint32) (freed int, empty bool) {
	cl, kind, ok := ss.ClassOf(idx)
	if !ok {
		return 0, false
	}
	allocated := ss.hdr(idx, hdrAllocated)
	for b := 0; b < cl.Blocks; b++ {
		if !ss.testBit(idx, b) {
			continue
		}
		o := ss.BlockAddr(idx, b, cl)
		if ss.resident != nil && !ss.resident(o.Page()) {
			continue
		}
		if objmodel.Marked(ss.s, o, epoch) || objmodel.Bookmarked(ss.s, o) {
			continue
		}
		ss.clearBit(idx, b)
		allocated--
		freed++
	}
	ss.setHdr(idx, hdrAllocated, allocated)
	if allocated == 0 {
		ss.releaseSuper(idx)
		return freed, true
	}
	if freed > 0 {
		ss.pushAvail(idx, cl, kind)
	}
	return freed, false
}

// Sweep sweeps every in-use superpage, returning total freed blocks and
// freed superpages.
func (ss *SuperSpace) Sweep(epoch uint32) (blocks, supers int) {
	for idx := 0; idx < ss.next; idx++ {
		if !ss.used[idx] {
			continue
		}
		f, e := ss.SweepSuper(idx, epoch)
		blocks += f
		if e {
			supers++
		}
	}
	return blocks, supers
}

// HighWater returns one past the largest superpage index ever assigned;
// iteration bounds for callers walking the space themselves.
func (ss *SuperSpace) HighWater() int { return ss.next }

// AllocInSuper carves a block for t out of superpage idx specifically —
// the restricted allocation BC's compaction uses to fill target
// superpages (§3.2). Returns mem.Nil if idx has no usable block.
func (ss *SuperSpace) AllocInSuper(idx int, t *objmodel.Type, arrayLen int) objmodel.Ref {
	cl, kind, ok := ss.ClassOf(idx)
	if !ok || kind != t.Kind {
		return mem.Nil
	}
	return ss.allocIn(idx, cl, t, arrayLen)
}

// FreeResidentBlocks counts the unallocated blocks of superpage idx whose
// pages pass the residency filter — the capacity compaction can copy
// into.
func (ss *SuperSpace) FreeResidentBlocks(idx int) int {
	cl, _, ok := ss.ClassOf(idx)
	if !ok {
		return 0
	}
	n := 0
	for b := 0; b < cl.Blocks; b++ {
		if ss.testBit(idx, b) {
			continue
		}
		o := ss.BlockAddr(idx, b, cl)
		if ss.resident != nil && !ss.blockResident(o, cl.BlockSize) {
			continue
		}
		n++
	}
	return n
}

// ObjectsOverlappingPage visits every allocated block of superpage idx
// whose extent overlaps page p — the objects BC must process when p is
// scheduled for eviction or reloaded (§3.4).
func (ss *SuperSpace) ObjectsOverlappingPage(idx int, p mem.PageID, fn func(o objmodel.Ref)) {
	cl, _, ok := ss.ClassOf(idx)
	if !ok {
		return
	}
	dataStart := ss.SuperBase(idx) + objmodel.SuperHeaderBytes
	pStart, pEnd := mem.PageAddr(p), mem.PageAddr(p)+mem.PageSize
	if pEnd <= dataStart {
		return
	}
	b0 := 0
	if pStart > dataStart {
		b0 = int(pStart-dataStart) / cl.BlockSize
	}
	b1 := int(pEnd-1-dataStart) / cl.BlockSize
	if b1 >= cl.Blocks {
		b1 = cl.Blocks - 1
	}
	for b := b0; b <= b1; b++ {
		if ss.testBit(idx, b) {
			fn(ss.BlockAddr(idx, b, cl))
		}
	}
}

// ObjectsOverlappingRange visits allocated blocks of superpage idx whose
// extent overlaps [start, end) — used for card scanning (§3.1).
func (ss *SuperSpace) ObjectsOverlappingRange(idx int, start, end mem.Addr, fn func(o objmodel.Ref)) {
	cl, _, ok := ss.ClassOf(idx)
	if !ok {
		return
	}
	dataStart := ss.SuperBase(idx) + objmodel.SuperHeaderBytes
	if end <= dataStart {
		return
	}
	b0 := 0
	if start > dataStart {
		b0 = int(start-dataStart) / cl.BlockSize
	}
	b1 := int(end-1-dataStart) / cl.BlockSize
	if b1 >= cl.Blocks {
		b1 = cl.Blocks - 1
	}
	for b := b0; b <= b1; b++ {
		if ss.testBit(idx, b) {
			fn(ss.BlockAddr(idx, b, cl))
		}
	}
}

// PagesOf returns the page range of superpage idx.
func (ss *SuperSpace) PagesOf(idx int) (first, last mem.PageID) {
	b := ss.SuperBase(idx)
	return b.Page(), b.Page() + mem.SuperPages - 1
}
