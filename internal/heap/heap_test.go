package heap

import (
	"testing"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
)

var classes = objmodel.BuildClasses()

func testSetup(heapBytes uint64) (*mem.Space, Layout) {
	l := NewLayout(heapBytes)
	return mem.NewSpace(l.Total, nil), l
}

func testTypes() (*objmodel.Table, *objmodel.Type, *objmodel.Type, *objmodel.Type) {
	tb := objmodel.NewTable()
	node := tb.Scalar("node", 4, 0, 1) // 2 ref fields + 2 data words
	refs := tb.Array("refs", true)
	bytes := tb.Array("bytes", false)
	return tb, node, refs, bytes
}

func TestLayoutRegionsDisjointAndAligned(t *testing.T) {
	l := NewLayout(8 << 20)
	if l.Bump0Base%mem.SuperSize != 0 || l.MatureBase%mem.SuperSize != 0 {
		t.Fatal("regions not superpage aligned")
	}
	if !(l.Bump0Base < l.Bump0End && l.Bump0End <= l.Bump1Base &&
		l.Bump1End <= l.MatureBase && l.MatureEnd <= l.LOSBase) {
		t.Fatalf("regions overlap: %v", l)
	}
	if l.Region(l.Bump0Base) != "bump0" || l.Region(l.MatureBase) != "mature" ||
		l.Region(l.LOSBase) != "los" || l.Region(0) != "outside" {
		t.Fatal("Region misclassifies")
	}
	if uint64(l.MatureEnd-l.MatureBase) < 16<<20 {
		t.Fatal("mature region lacks headroom")
	}
}

func TestBumpAllocAndWalk(t *testing.T) {
	s, l := testSetup(1 << 20)
	tb, node, refs, _ := testTypes()
	b := NewBumpSpace(s, l.Bump0Base, l.Bump0End)

	o1 := b.Alloc(node, 0)
	o2 := b.Alloc(refs, 10)
	if o1 == mem.Nil || o2 == mem.Nil {
		t.Fatal("alloc failed")
	}
	if o2 != o1+mem.Addr(node.TotalBytes(0)) {
		t.Fatalf("not contiguous: %#x then %#x", o1, o2)
	}
	ty, n := tb.TypeOf(s, o2)
	if ty != refs || n != 10 {
		t.Fatal("header misinitialized")
	}
	var seen []objmodel.Ref
	b.ForEachObject(tb, func(o objmodel.Ref) { seen = append(seen, o) })
	if len(seen) != 2 || seen[0] != o1 || seen[1] != o2 {
		t.Fatalf("walk = %v", seen)
	}
	if !b.ContainsAllocated(o1) || b.ContainsAllocated(b.Frontier()) {
		t.Fatal("ContainsAllocated wrong")
	}
}

func TestBumpBudgetAndReset(t *testing.T) {
	s, l := testSetup(1 << 20)
	_, node, _, _ := testTypes()
	b := NewBumpSpace(s, l.Bump0Base, l.Bump0End)
	b.SetBudget(mem.PageSize) // one page
	n := 0
	for b.Alloc(node, 0) != mem.Nil {
		n++
	}
	want := mem.PageSize / node.TotalBytes(0)
	if n != want {
		t.Fatalf("allocated %d objects in one page, want %d", n, want)
	}
	b.Reset()
	if b.UsedBytes() != 0 || b.Objects() != 0 {
		t.Fatal("Reset incomplete")
	}
	if b.Alloc(node, 0) == mem.Nil {
		t.Fatal("alloc after reset failed")
	}
}

func TestBumpZeroesRecycledMemory(t *testing.T) {
	s, l := testSetup(1 << 20)
	_, node, _, _ := testTypes()
	b := NewBumpSpace(s, l.Bump0Base, l.Bump0End)
	o := b.Alloc(node, 0)
	s.WriteAddr(node.RefSlotAddr(o, 0), 0xdead00)
	b.Reset()
	o2 := b.Alloc(node, 0)
	if o2 != o {
		t.Fatal("expected same address after reset")
	}
	if got := s.ReadAddr(node.RefSlotAddr(o2, 0)); got != mem.Nil {
		t.Fatalf("recycled payload not zeroed: %#x", got)
	}
}

func TestSuperSpaceAllocFreeCycle(t *testing.T) {
	s, l := testSetup(4 << 20)
	tb, node, _, _ := testTypes()
	ss := NewSuperSpace(s, classes, l.MatureBase, l.MatureEnd)

	cl, ok := classes.ForSize(node.TotalBytes(0))
	if !ok {
		t.Fatal("no class for node")
	}
	if ss.Alloc(node, 0, cl) != mem.Nil {
		t.Fatal("alloc should fail before AcquireSuper")
	}
	idx := ss.AcquireSuper(cl, node.Kind)
	if idx < 0 {
		t.Fatal("AcquireSuper failed")
	}
	if ss.InUseSupers() != 1 || ss.UsedPages() != mem.SuperPages {
		t.Fatal("usage accounting wrong")
	}

	var objs []objmodel.Ref
	for {
		o := ss.Alloc(node, 0, cl)
		if o == mem.Nil {
			break
		}
		objs = append(objs, o)
	}
	if len(objs) != cl.Blocks {
		t.Fatalf("filled %d blocks, class says %d", len(objs), cl.Blocks)
	}
	// All objects live in the same superpage with proper headers.
	for _, o := range objs {
		if ss.SuperIndex(o) != idx {
			t.Fatal("object escaped its superpage")
		}
		ty, _ := tb.TypeOf(s, o)
		if ty != node {
			t.Fatal("bad header")
		}
	}
	// Free all blocks: superpage must become reassignable.
	for i, o := range objs {
		becameFree := ss.FreeBlock(o)
		if becameFree != (i == len(objs)-1) {
			t.Fatalf("becameFree=%v at block %d", becameFree, i)
		}
	}
	if ss.InUseSupers() != 0 {
		t.Fatal("superpage not released")
	}
	// Reassign to a different class.
	cl2 := classes.Class(classes.Len() - 1)
	idx2 := ss.AcquireSuper(cl2, objmodel.KindScalar)
	if idx2 != idx {
		t.Fatalf("free superpage not recycled: got %d want %d", idx2, idx)
	}
}

func TestSuperSpaceObjectAt(t *testing.T) {
	s, l := testSetup(4 << 20)
	_, node, _, _ := testTypes()
	ss := NewSuperSpace(s, classes, l.MatureBase, l.MatureEnd)
	cl, _ := classes.ForSize(node.TotalBytes(0))
	idx := ss.AcquireSuper(cl, node.Kind)
	o := ss.Alloc(node, 0, cl)
	mid := o + mem.Addr(cl.BlockSize/2/mem.WordSize*mem.WordSize)
	got, ok := ss.ObjectAt(idx, mid)
	if !ok || got != o {
		t.Fatalf("ObjectAt(%#x) = %#x, %v; want %#x", mid, got, ok, o)
	}
	// Unallocated block: not an object.
	if _, ok := ss.ObjectAt(idx, o+mem.Addr(cl.BlockSize)); ok {
		t.Fatal("ObjectAt found object in free block")
	}
	// Header region: not an object.
	if _, ok := ss.ObjectAt(idx, ss.SuperBase(idx)); ok {
		t.Fatal("ObjectAt found object in header")
	}
}

func TestSuperSpaceSweep(t *testing.T) {
	s, l := testSetup(4 << 20)
	_, node, _, _ := testTypes()
	ss := NewSuperSpace(s, classes, l.MatureBase, l.MatureEnd)
	cl, _ := classes.ForSize(node.TotalBytes(0))
	idx := ss.AcquireSuper(cl, node.Kind)
	var objs []objmodel.Ref
	for i := 0; i < 10; i++ {
		objs = append(objs, ss.Alloc(node, 0, cl))
	}
	epoch := uint32(1)
	// Mark even objects; bookmark object 1; leave the rest dead.
	for i, o := range objs {
		if i%2 == 0 {
			objmodel.SetMark(s, o, epoch)
		}
	}
	objmodel.SetBookmark(s, objs[1])

	freed, empty := ss.SweepSuper(idx, epoch)
	if empty {
		t.Fatal("superpage should not be empty")
	}
	if freed != 4 { // objects 3,5,7,9
		t.Fatalf("freed %d, want 4", freed)
	}
	if ss.Allocated(idx) != 6 {
		t.Fatalf("allocated = %d, want 6", ss.Allocated(idx))
	}
	// Bookmarked object survived even though unmarked (§3.4: bookmarked
	// objects are treated as live).
	count := 0
	ss.ForEachObjectIn(idx, func(o objmodel.Ref) {
		if o == objs[1] {
			count++
		}
	})
	if count != 1 {
		t.Fatal("bookmarked object was swept")
	}
}

func TestSuperSpaceIncomingCounter(t *testing.T) {
	s, l := testSetup(4 << 20)
	_, node, _, _ := testTypes()
	ss := NewSuperSpace(s, classes, l.MatureBase, l.MatureEnd)
	cl, _ := classes.ForSize(node.TotalBytes(0))
	idx := ss.AcquireSuper(cl, node.Kind)
	if ss.Incoming(idx) != 0 {
		t.Fatal("fresh superpage has incoming count")
	}
	ss.IncIncoming(idx)
	ss.IncIncoming(idx)
	if ss.Incoming(idx) != 2 {
		t.Fatalf("Incoming = %d", ss.Incoming(idx))
	}
	if got := ss.DecIncoming(idx); got != 1 {
		t.Fatalf("DecIncoming = %d", got)
	}
	ss.DecIncoming(idx)
	if got := ss.DecIncoming(idx); got != 0 {
		t.Fatal("DecIncoming must saturate at zero")
	}
}

func TestSuperSpaceResidencyFilter(t *testing.T) {
	s, l := testSetup(4 << 20)
	_, node, _, _ := testTypes()
	ss := NewSuperSpace(s, classes, l.MatureBase, l.MatureEnd)
	cl, _ := classes.ForSize(node.TotalBytes(0))
	idx := ss.AcquireSuper(cl, node.Kind)
	// Only the header page is "resident": no block may be allocated on
	// the remaining pages... except blocks that fit on the header page.
	hdrPage := ss.HeaderPage(idx)
	ss.SetResidencyFilter(func(p mem.PageID) bool { return p == hdrPage })
	for {
		o := ss.Alloc(node, 0, cl)
		if o == mem.Nil {
			break
		}
		if o.Page() != hdrPage {
			t.Fatalf("allocated block on non-resident page %d", o.Page())
		}
	}
}

func TestSuperSpaceKindSegregation(t *testing.T) {
	s, l := testSetup(4 << 20)
	_, node, refs, _ := testTypes()
	ss := NewSuperSpace(s, classes, l.MatureBase, l.MatureEnd)
	cl, _ := classes.ForSize(node.TotalBytes(0))
	ss.AcquireSuper(cl, objmodel.KindScalar)
	// Same size class, array kind: must not share the scalar superpage.
	if o := ss.Alloc(refs, 4, cl); o != mem.Nil {
		t.Fatal("array allocated into scalar superpage")
	}
	i2 := ss.AcquireSuper(cl, objmodel.KindArray)
	o := ss.Alloc(refs, 4, cl)
	if o == mem.Nil || ss.SuperIndex(o) != i2 {
		t.Fatal("array alloc failed after acquiring array superpage")
	}
}

func TestSuperSpaceExhaustion(t *testing.T) {
	s := mem.NewSpace(6*mem.SuperSize, nil)
	ss := NewSuperSpace(s, classes, mem.SuperSize, 3*mem.SuperSize)
	cl := classes.Class(0)
	if ss.AcquireSuper(cl, objmodel.KindScalar) < 0 {
		t.Fatal("first acquire failed")
	}
	if ss.AcquireSuper(cl, objmodel.KindScalar) < 0 {
		t.Fatal("second acquire failed")
	}
	if ss.AcquireSuper(cl, objmodel.KindScalar) >= 0 {
		t.Fatal("acquire beyond region should fail")
	}
}

func TestLOSAllocFreeAndSweep(t *testing.T) {
	s, l := testSetup(4 << 20)
	tb, _, _, _ := testTypes()
	big := tb.Array("big", false)
	los := NewLOS(s, l.LOSBase, l.LOSEnd)

	// 3 pages worth of payload.
	n := (3*mem.PageSize - objmodel.HeaderBytes) / mem.WordSize
	o1 := los.Alloc(big, n)
	o2 := los.Alloc(big, n)
	if o1 == mem.Nil || o2 == mem.Nil {
		t.Fatal("LOS alloc failed")
	}
	if los.UsedPages() != 6 || los.Objects() != 2 {
		t.Fatalf("usage = %d pages %d objects", los.UsedPages(), los.Objects())
	}
	f1, la1 := los.PagesOf(o1)
	if la1-f1+1 != 3 {
		t.Fatalf("run size = %d pages", la1-f1+1)
	}

	// Sweep with only o2 marked.
	objmodel.SetMark(s, o2, 9)
	freed, runs := los.Sweep(9, nil)
	if freed != 1 || len(runs) != 1 {
		t.Fatalf("Sweep freed %d", freed)
	}
	if los.Objects() != 1 || los.UsedPages() != 3 {
		t.Fatal("sweep accounting wrong")
	}
	// Freed pages are reusable.
	o3 := los.Alloc(big, n)
	if o3 != o1 {
		t.Fatalf("first-fit did not reuse freed run: %#x vs %#x", o3, o1)
	}
}

func TestLOSResidencyFilterSkipsEvicted(t *testing.T) {
	s, l := testSetup(4 << 20)
	tb, _, _, _ := testTypes()
	big := tb.Array("big", false)
	los := NewLOS(s, l.LOSBase, l.LOSEnd)
	n := (2*mem.PageSize - objmodel.HeaderBytes) / mem.WordSize
	o := los.Alloc(big, n)
	// Unmarked, but its page is "not resident": must survive the sweep.
	freed, _ := los.Sweep(5, func(mem.PageID) bool { return false })
	if freed != 0 {
		t.Fatal("swept an object on a non-resident page")
	}
	if _, ok := los.objects[o]; !ok {
		t.Fatal("object vanished")
	}
}

func TestLOSFirstFitFragmentation(t *testing.T) {
	s := mem.NewSpace(mem.PageSize*64, nil)
	los := NewLOS(s, mem.PageSize*8, mem.PageSize*16) // 8 pages
	tb := objmodel.NewTable()
	big := tb.Array("big", false)
	one := (mem.PageSize - objmodel.HeaderBytes) / mem.WordSize
	three := (3*mem.PageSize - objmodel.HeaderBytes) / mem.WordSize

	a := los.Alloc(big, one)
	b := los.Alloc(big, three)
	c := los.Alloc(big, one)
	_ = c
	if a == mem.Nil || b == mem.Nil || c == mem.Nil {
		t.Fatal("allocs failed")
	}
	los.Free(b) // hole of 3 pages
	// A 4-page object cannot fit the hole; 3 remaining tail pages exist.
	four := (4*mem.PageSize - objmodel.HeaderBytes) / mem.WordSize
	if got := los.Alloc(big, four); got != mem.Nil {
		t.Fatalf("4-page alloc should fail, got %#x", got)
	}
	// A 3-page object slots exactly into the hole.
	d := los.Alloc(big, three)
	if d != b {
		t.Fatalf("hole not reused: %#x vs %#x", d, b)
	}
}
