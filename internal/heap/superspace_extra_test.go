package heap

import (
	"testing"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
)

func TestObjectsOverlappingPage(t *testing.T) {
	s, l := testSetup(4 << 20)
	_, node, _, _ := testTypes()
	ss := NewSuperSpace(s, classes, l.MatureBase, l.MatureEnd)
	cl, _ := classes.ForSize(node.TotalBytes(0))
	idx := ss.AcquireSuper(cl, node.Kind)
	var objs []objmodel.Ref
	for {
		o := ss.Alloc(node, 0, cl)
		if o == mem.Nil {
			break
		}
		objs = append(objs, o)
	}
	first, last := ss.PagesOf(idx)
	// Every object must be reported by exactly the pages it overlaps,
	// and the union over all pages must cover every object.
	seen := map[objmodel.Ref]int{}
	for p := first; p <= last; p++ {
		ss.ObjectsOverlappingPage(idx, p, func(o objmodel.Ref) {
			size := mem.Addr(cl.BlockSize)
			pStart, pEnd := mem.PageAddr(p), mem.PageAddr(p)+mem.PageSize
			if o >= pEnd || o+size <= pStart {
				t.Fatalf("page %d reported non-overlapping object %#x", p, o)
			}
			seen[o]++
		})
	}
	for _, o := range objs {
		f, la := mem.PagesIn(o, uint64(cl.BlockSize))
		if seen[o] != int(la-f+1) {
			t.Fatalf("object %#x reported %d times, overlaps %d pages", o, seen[o], la-f+1)
		}
	}
}

func TestObjectsOverlappingRange(t *testing.T) {
	s, l := testSetup(4 << 20)
	_, node, _, _ := testTypes()
	ss := NewSuperSpace(s, classes, l.MatureBase, l.MatureEnd)
	cl, _ := classes.ForSize(node.TotalBytes(0))
	idx := ss.AcquireSuper(cl, node.Kind)
	o1 := ss.Alloc(node, 0, cl)
	o2 := ss.Alloc(node, 0, cl)
	o3 := ss.Alloc(node, 0, cl)
	_ = o3
	var got []objmodel.Ref
	// A range covering exactly o1 and o2.
	ss.ObjectsOverlappingRange(idx, o1, o2+mem.Addr(cl.BlockSize), func(o objmodel.Ref) {
		got = append(got, o)
	})
	if len(got) != 2 || got[0] != o1 || got[1] != o2 {
		t.Fatalf("range scan = %v, want [%#x %#x]", got, o1, o2)
	}
	// A range entirely inside the header reports nothing.
	got = nil
	ss.ObjectsOverlappingRange(idx, ss.SuperBase(idx), ss.SuperBase(idx)+64, func(o objmodel.Ref) {
		got = append(got, o)
	})
	if len(got) != 0 {
		t.Fatalf("header range reported %v", got)
	}
}

func TestAllocInSuperRespectsKindAndClass(t *testing.T) {
	s, l := testSetup(4 << 20)
	_, node, refs, _ := testTypes()
	ss := NewSuperSpace(s, classes, l.MatureBase, l.MatureEnd)
	cl, _ := classes.ForSize(node.TotalBytes(0))
	idx := ss.AcquireSuper(cl, objmodel.KindScalar)
	if o := ss.AllocInSuper(idx, node, 0); o == mem.Nil {
		t.Fatal("scalar alloc into scalar superpage failed")
	}
	// Arrays must be refused (kind mismatch).
	if o := ss.AllocInSuper(idx, refs, 2); o != mem.Nil {
		t.Fatal("array allocated into scalar superpage")
	}
	// Free superpage: refused.
	free := ss.AcquireSuper(cl, objmodel.KindScalar)
	ss.ForEachObjectIn(free, func(o objmodel.Ref) {})
	o := ss.AllocInSuper(free, node, 0)
	ss.FreeBlock(o) // empties it back to free
	if got := ss.AllocInSuper(free, node, 0); got != mem.Nil {
		t.Fatal("allocated into a released superpage")
	}
}

func TestFreeResidentBlocks(t *testing.T) {
	s, l := testSetup(4 << 20)
	_, node, _, _ := testTypes()
	ss := NewSuperSpace(s, classes, l.MatureBase, l.MatureEnd)
	cl, _ := classes.ForSize(node.TotalBytes(0))
	idx := ss.AcquireSuper(cl, node.Kind)
	if got := ss.FreeResidentBlocks(idx); got != cl.Blocks {
		t.Fatalf("fresh superpage free blocks = %d, want %d", got, cl.Blocks)
	}
	ss.Alloc(node, 0, cl)
	ss.Alloc(node, 0, cl)
	if got := ss.FreeResidentBlocks(idx); got != cl.Blocks-2 {
		t.Fatalf("free blocks = %d, want %d", got, cl.Blocks-2)
	}
	// With a residency filter excluding the last page, blocks there stop
	// counting.
	_, last := ss.PagesOf(idx)
	ss.SetResidencyFilter(func(p mem.PageID) bool { return p != last })
	if got := ss.FreeResidentBlocks(idx); got >= cl.Blocks-2 {
		t.Fatalf("filtered free blocks = %d, want fewer", got)
	}
}

func TestHighWater(t *testing.T) {
	s, l := testSetup(4 << 20)
	_, node, _, _ := testTypes()
	ss := NewSuperSpace(s, classes, l.MatureBase, l.MatureEnd)
	if ss.HighWater() != 0 {
		t.Fatal("fresh space has high water")
	}
	cl, _ := classes.ForSize(node.TotalBytes(0))
	ss.AcquireSuper(cl, node.Kind)
	ss.AcquireSuper(cl, node.Kind)
	if ss.HighWater() != 2 {
		t.Fatalf("HighWater = %d", ss.HighWater())
	}
}

func TestLOSObjectContainingAndIsFree(t *testing.T) {
	s, l := testSetup(4 << 20)
	tb, _, _, _ := testTypes()
	big := tb.Array("big", false)
	los := NewLOS(s, l.LOSBase, l.LOSEnd)
	n := (3*mem.PageSize - objmodel.HeaderBytes) / mem.WordSize
	o := los.Alloc(big, n)

	mid := o + 2*mem.PageSize // inside the run
	got, ok := los.ObjectContaining(mid)
	if !ok || got != o {
		t.Fatalf("ObjectContaining(%#x) = %#x, %v", mid, got, ok)
	}
	if _, ok := los.ObjectContaining(l.LOSEnd - mem.PageSize); ok {
		t.Fatal("found object in free space")
	}
	if _, ok := los.ObjectContaining(l.MatureBase); ok {
		t.Fatal("found object outside the region")
	}
	if los.IsFreePage(o.Page()) {
		t.Fatal("allocated page reported free")
	}
	if !los.IsFreePage((l.LOSEnd - mem.PageSize).Page()) {
		t.Fatal("free page not reported free")
	}
	if los.IsFreePage(l.MatureBase.Page()) {
		t.Fatal("out-of-region page reported free")
	}
	nFree := 0
	los.ForEachFreePage(func(mem.PageID) { nFree++ })
	if nFree != los.free.Count() {
		t.Fatal("ForEachFreePage count mismatch")
	}
}
