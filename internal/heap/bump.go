package heap

import (
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
)

// BumpSpace is a contiguous bump-pointer allocation region: the nursery
// of the generational collectors, and both semispaces of the copying
// collectors. Its effective size can be bounded below the region's
// virtual capacity (Appel-style variable nurseries shrink it as the
// mature space grows; fixed-nursery variants clamp it).
type BumpSpace struct {
	s     *mem.Space
	base  mem.Addr
	end   mem.Addr // hard end of the virtual region
	limit mem.Addr // current soft limit (base + size budget)
	cur   mem.Addr

	objects int // live allocation count since last Reset (diagnostic)

	counters *trace.Counters // optional registry (nil-safe)
}

// NewBumpSpace creates a bump space over [base, end).
func NewBumpSpace(s *mem.Space, base, end mem.Addr) *BumpSpace {
	return &BumpSpace{s: s, base: base, end: end, limit: end, cur: base}
}

// SetCounters attaches a counter registry recording allocation counts.
// nil detaches.
func (b *BumpSpace) SetCounters(c *trace.Counters) { b.counters = c }

// SetBudget bounds the space to n bytes (rounded up to a page); the
// region's virtual capacity is the upper bound.
func (b *BumpSpace) SetBudget(n uint64) {
	limit := b.base + mem.Addr(mem.RoundUpPage(n))
	if limit > b.end {
		limit = b.end
	}
	b.limit = limit
}

// Budget returns the current byte budget.
func (b *BumpSpace) Budget() uint64 { return uint64(b.limit - b.base) }

// Alloc carves an uninitialized object of totalBytes (header included).
// It returns mem.Nil when the space is full; the caller must collect.
// The new object's header is initialized and its payload zeroed (fresh
// pages read as zero, but recycled semispace memory does not).
func (b *BumpSpace) Alloc(t *objmodel.Type, arrayLen int) objmodel.Ref {
	total := mem.Addr(mem.RoundUpWord(uint64(t.TotalBytes(arrayLen))))
	if b.cur+total > b.limit {
		return mem.Nil
	}
	o := b.cur
	b.cur += total
	b.objects++
	b.counters.Inc(trace.CBumpAllocs)
	objmodel.ClearStatus(b.s, o)
	objmodel.SetTypeWord(b.s, o, t.ID, arrayLen)
	b.s.ZeroRange(objmodel.Payload(o), uint64(total)-objmodel.HeaderBytes)
	return o
}

// AllocRaw carves totalBytes (word-rounded) without initializing them;
// copying collectors overwrite the block wholesale. Returns mem.Nil when
// the space is full.
func (b *BumpSpace) AllocRaw(totalBytes int) mem.Addr {
	total := mem.Addr(mem.RoundUpWord(uint64(totalBytes)))
	if b.cur+total > b.limit {
		return mem.Nil
	}
	o := b.cur
	b.cur += total
	b.objects++
	b.counters.Inc(trace.CBumpAllocs)
	return o
}

// Reset empties the space for reuse (a nursery collection or a semispace
// flip). Pages are deliberately not returned to the VM: as in MMTk, dead
// nursery pages stay mapped and drift down the LRU queues — the behaviour
// the paper identifies as a paging liability (§5.3.2).
func (b *BumpSpace) Reset() {
	b.cur = b.base
	b.objects = 0
}

// Contains reports whether a lies in the space's region.
func (b *BumpSpace) Contains(a mem.Addr) bool { return a >= b.base && a < b.end }

// ContainsAllocated reports whether a lies below the allocation frontier.
func (b *BumpSpace) ContainsAllocated(a mem.Addr) bool { return a >= b.base && a < b.cur }

// Base returns the first address of the region.
func (b *BumpSpace) Base() mem.Addr { return b.base }

// Frontier returns the current allocation pointer.
func (b *BumpSpace) Frontier() mem.Addr { return b.cur }

// UsedBytes returns bytes allocated since the last Reset.
func (b *BumpSpace) UsedBytes() uint64 { return uint64(b.cur - b.base) }

// UsedPages returns the number of pages at or below the frontier.
func (b *BumpSpace) UsedPages() int {
	return int(mem.RoundUpPage(uint64(b.cur-b.base)) / mem.PageSize)
}

// Objects returns the number of objects allocated since the last Reset.
func (b *BumpSpace) Objects() int { return b.objects }

// Pages returns the page IDs of the region up to the frontier.
func (b *BumpSpace) Pages() (first, last mem.PageID) {
	if b.cur == b.base {
		return b.base.Page(), b.base.Page()
	}
	return b.base.Page(), (b.cur - 1).Page()
}

// ForEachObject walks the allocated objects in address order. The walk
// reads each object's header to find the next, touching pages as a real
// linear scan would. types resolves object sizes.
func (b *BumpSpace) ForEachObject(types *objmodel.Table, fn func(o objmodel.Ref)) {
	for a := b.base; a < b.cur; {
		t, n := types.TypeOf(b.s, a)
		fn(a)
		a += mem.Addr(mem.RoundUpWord(uint64(t.TotalBytes(n))))
	}
}
