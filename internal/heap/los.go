package heap

import (
	"slices"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
)

// LOS is the page-based large object space (§3): objects bigger than the
// largest size class each occupy a dedicated run of whole pages. Run
// bookkeeping is kept off to the side (as MMTk's treadmill does); object
// headers and payloads live in the heap proper.
type LOS struct {
	s    *mem.Space
	base mem.Addr
	n    int // pages in the region

	free    *mem.Bitmap      // free pages
	objects map[mem.Addr]int // object -> pages in its run
	sorted  []mem.Addr       // allocation order cache for iteration, kept sorted
	dead    []mem.Addr       // sweep scratch, reused across collections
	runsBuf [][2]mem.PageID  // Sweep's result buffer, reused across collections
	dirty   bool             // sorted needs rebuild
	inUse   int              // pages allocated

	counters *trace.Counters // optional registry (nil-safe)
}

// NewLOS creates a large object space over [base, end).
func NewLOS(s *mem.Space, base, end mem.Addr) *LOS {
	if base%mem.PageSize != 0 || end%mem.PageSize != 0 || end <= base {
		panic("heap: unaligned LOS region")
	}
	n := int((end - base) / mem.PageSize)
	l := &LOS{
		s:       s,
		base:    base,
		n:       n,
		free:    mem.NewBitmap(n),
		objects: make(map[mem.Addr]int),
	}
	l.free.SetAll()
	return l
}

// SetCounters attaches a counter registry recording large-object
// allocation volume. nil detaches.
func (l *LOS) SetCounters(c *trace.Counters) { l.counters = c }

// Contains reports whether a lies in the LOS region.
func (l *LOS) Contains(a mem.Addr) bool {
	return a >= l.base && a < l.base+mem.Addr(l.n)*mem.PageSize
}

// UsedPages returns the number of allocated LOS pages.
func (l *LOS) UsedPages() int { return l.inUse }

// Objects returns the number of live large objects.
func (l *LOS) Objects() int { return len(l.objects) }

// Alloc places an object of type t on a fresh run of pages, first-fit.
// Returns mem.Nil if no run is free (caller collects).
func (l *LOS) Alloc(t *objmodel.Type, arrayLen int) objmodel.Ref {
	pages := int(mem.RoundUpPage(uint64(t.TotalBytes(arrayLen))) / mem.PageSize)
	start := l.findRun(pages)
	if start < 0 {
		return mem.Nil
	}
	for i := start; i < start+pages; i++ {
		l.free.Clear(i)
	}
	l.inUse += pages
	o := l.base + mem.Addr(start)*mem.PageSize
	l.objects[o] = pages
	l.dirty = true
	l.counters.Inc(trace.CLOSAllocs)
	l.counters.Add(trace.CLOSPagesAllocated, uint64(pages))
	objmodel.ClearStatus(l.s, o)
	objmodel.SetTypeWord(l.s, o, t.ID, arrayLen)
	l.s.ZeroRange(objmodel.Payload(o), uint64(t.PayloadWords(arrayLen))*mem.WordSize)
	return o
}

// findRun locates pages consecutive free pages, first-fit.
func (l *LOS) findRun(pages int) int {
	for i := l.free.NextSet(0); i >= 0; i = l.free.NextSet(i + 1) {
		run := 1
		for run < pages && i+run < l.n && l.free.Test(i+run) {
			run++
		}
		if run == pages {
			return i
		}
		i += run - 1
	}
	return -1
}

// Free releases the run holding o and returns its page range so the
// caller can discard the pages.
func (l *LOS) Free(o objmodel.Ref) (first, last mem.PageID) {
	pages, ok := l.objects[o]
	if !ok {
		panic("heap: LOS free of unknown object")
	}
	delete(l.objects, o)
	l.dirty = true
	start := int((o - l.base) / mem.PageSize)
	for i := start; i < start+pages; i++ {
		l.free.Set(i)
	}
	l.inUse -= pages
	return o.Page(), o.Page() + mem.PageID(pages) - 1
}

// PagesOf returns the page range of a live large object.
func (l *LOS) PagesOf(o objmodel.Ref) (first, last mem.PageID) {
	pages := l.objects[o]
	return o.Page(), o.Page() + mem.PageID(pages) - 1
}

// ForEachObject visits live large objects in address order. The visit
// itself does not touch heap pages; callers touching headers will.
func (l *LOS) ForEachObject(fn func(o objmodel.Ref)) {
	if l.dirty {
		l.sorted = l.sorted[:0]
		for o := range l.objects {
			l.sorted = append(l.sorted, o)
		}
		slices.Sort(l.sorted)
		l.dirty = false
	}
	for _, o := range l.sorted {
		if _, ok := l.objects[o]; ok {
			fn(o)
		}
	}
}

// ObjectContaining returns the large object whose run covers a, if any.
func (l *LOS) ObjectContaining(a mem.Addr) (objmodel.Ref, bool) {
	if !l.Contains(a) {
		return mem.Nil, false
	}
	// Walk back from a's page to the run start; runs are short.
	for o, pages := range l.objects {
		if a >= o && a < o+mem.Addr(pages)*mem.PageSize {
			return o, true
		}
	}
	return mem.Nil, false
}

// ForEachFreePage visits every free page of the region (for discardable-
// page discovery).
func (l *LOS) ForEachFreePage(fn func(p mem.PageID)) {
	for i := l.free.NextSet(0); i >= 0; i = l.free.NextSet(i + 1) {
		fn((l.base + mem.Addr(i)*mem.PageSize).Page())
	}
}

// IsFreePage reports in O(1) whether the page holding p is free.
func (l *LOS) IsFreePage(p mem.PageID) bool {
	a := mem.PageAddr(p)
	if !l.Contains(a) {
		return false
	}
	return l.free.Test(int((a - l.base) / mem.PageSize))
}

// Sweep frees every large object unmarked in epoch. Objects whose header
// page fails the optional residency filter are skipped (BC never touches
// evicted pages). Returns freed objects and their page ranges; the runs
// slice is reused by the next Sweep, so callers must not retain it.
func (l *LOS) Sweep(epoch uint32, resident func(mem.PageID) bool) (freed int, runs [][2]mem.PageID) {
	runs = l.runsBuf[:0]
	dead := l.dead[:0]
	l.ForEachObject(func(o objmodel.Ref) {
		if resident != nil && !resident(o.Page()) {
			return
		}
		if objmodel.Marked(l.s, o, epoch) || objmodel.Bookmarked(l.s, o) {
			return
		}
		dead = append(dead, o)
	})
	l.dead = dead
	for _, o := range dead {
		f, la := l.Free(o)
		runs = append(runs, [2]mem.PageID{f, la})
	}
	l.runsBuf = runs
	return len(dead), runs
}
