// Package heap provides the spaces collectors are composed from: a
// bump-pointer space (nurseries and copying semispaces), the superpage-
// organized segregated-fit mature space of the paper (§3), and a
// page-granularity large object space.
//
// Every space operates on the process's simulated address space, so all
// allocation, tracing, and sweeping activity touches pages through the
// virtual memory manager.
package heap

import (
	"fmt"

	"bookmarkgc/internal/mem"
)

// Layout carves a process's virtual address space into fixed regions.
// Regions are virtual reservations: physical frames are consumed only
// when pages are touched. Two bump regions are reserved so semispace
// collectors can flip without remapping.
type Layout struct {
	Bump0Base, Bump0End   mem.Addr // nursery / from-space
	Bump1Base, Bump1End   mem.Addr // to-space (copying collectors only)
	MatureBase, MatureEnd mem.Addr // superpage area
	LOSBase, LOSEnd       mem.Addr // large object space
	Total                 uint64   // bytes of address space needed
}

// NewLayout sizes a layout for a target maximum heap of heapBytes.
// Each region individually is large enough to hold the whole heap (plus
// headroom for the mature space, which also pays superpage metadata and
// fragmentation), so any collector composition fits.
func NewLayout(heapBytes uint64) Layout {
	h := mem.RoundUpPage(heapBytes)
	if h == 0 {
		panic("heap: zero heap size")
	}
	align := func(a mem.Addr) mem.Addr {
		return mem.Addr(mem.RoundUpPage(uint64(a)+mem.SuperSize-1)) &^ (mem.SuperSize - 1)
	}
	var l Layout
	cursor := mem.Addr(mem.SuperSize) // skip null page (superpage-aligned)
	l.Bump0Base = cursor
	cursor = align(cursor + mem.Addr(h))
	l.Bump0End = cursor
	l.Bump1Base = cursor
	cursor = align(cursor + mem.Addr(2*h)) // room for two mature semispaces
	l.Bump1End = cursor
	l.MatureBase = cursor
	cursor = align(cursor + mem.Addr(2*h))
	l.MatureEnd = cursor
	l.LOSBase = cursor
	cursor = align(cursor + mem.Addr(h))
	l.LOSEnd = cursor
	l.Total = uint64(cursor)
	return l
}

// Region names an address range for diagnostics.
func (l Layout) Region(a mem.Addr) string {
	switch {
	case a >= l.Bump0Base && a < l.Bump0End:
		return "bump0"
	case a >= l.Bump1Base && a < l.Bump1End:
		return "bump1"
	case a >= l.MatureBase && a < l.MatureEnd:
		return "mature"
	case a >= l.LOSBase && a < l.LOSEnd:
		return "los"
	}
	return "outside"
}

// String implements fmt.Stringer.
func (l Layout) String() string {
	return fmt.Sprintf("bump0=[%#x,%#x) bump1=[%#x,%#x) mature=[%#x,%#x) los=[%#x,%#x)",
		l.Bump0Base, l.Bump0End, l.Bump1Base, l.Bump1End,
		l.MatureBase, l.MatureEnd, l.LOSBase, l.LOSEnd)
}
