package workload

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"hash/crc32"
	"io"
	"os"

	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/trace"
)

// Reader streams a trace: it validates the header and meta block up
// front, then yields events one at a time in constant memory (one block
// buffered). Every framing or encoding problem surfaces as an error
// wrapping ErrCorrupt; the decoder never panics on hostile input.
type Reader struct {
	br     *bufio.Reader
	meta   Meta
	block  []byte
	pos    int
	derr   error // sticky error of the event currently being decoded
	sawEnd bool
	events uint64
	blocks uint64

	// Counters, when set, accumulates workload_blocks_read.
	Counters *trace.Counters
}

// NewReader validates r's header and reads the meta block.
func NewReader(r io.Reader) (*Reader, error) {
	rd := &Reader{br: bufio.NewReader(r)}
	var hdr [5]byte
	if _, err := io.ReadFull(rd.br, hdr[:]); err != nil {
		return nil, corrupt("short header: %v", err)
	}
	if string(hdr[:4]) != magic {
		return nil, corrupt("bad magic %q", hdr[:4])
	}
	if hdr[4] != Version {
		return nil, corrupt("unsupported format version %d (have %d)", hdr[4], Version)
	}
	if err := rd.loadBlock(); err != nil {
		if err == io.EOF {
			return nil, corrupt("missing meta block")
		}
		return nil, err
	}
	if err := json.Unmarshal(rd.block, &rd.meta); err != nil {
		return nil, corrupt("meta: %v", err)
	}
	if rd.meta.FormatVersion != Version {
		return nil, corrupt("meta declares format version %d", rd.meta.FormatVersion)
	}
	rd.block, rd.pos = nil, 0
	return rd, nil
}

// Meta returns the trace's self-description.
func (rd *Reader) Meta() Meta { return rd.meta }

// Events returns how many events have been decoded so far.
func (rd *Reader) Events() uint64 { return rd.events }

// Blocks returns how many blocks have been decoded so far.
func (rd *Reader) Blocks() uint64 { return rd.blocks }

// loadBlock reads and CRC-checks the next block. io.EOF (untranslated)
// means a clean end-of-stream at a block boundary.
func (rd *Reader) loadBlock() error {
	n, err := binary.ReadUvarint(rd.br)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return corrupt("block length: %v", err)
	}
	if n == 0 || n > maxBlockSize {
		return corrupt("block length %d out of range", n)
	}
	buf := make([]byte, n+4)
	if _, err := io.ReadFull(rd.br, buf); err != nil {
		return corrupt("truncated block: %v", err)
	}
	payload := buf[:n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[n:]) {
		return corrupt("block CRC mismatch")
	}
	rd.block, rd.pos = payload, 0
	rd.blocks++
	rd.Counters.Inc(trace.CWorkloadBlocksRead)
	return nil
}

// next decodes the next event. After the footer it returns io.EOF; a
// stream that ends without a footer is corrupt.
func (rd *Reader) next() (event, error) {
	if rd.sawEnd {
		return event{}, io.EOF
	}
	if rd.pos >= len(rd.block) {
		if err := rd.loadBlock(); err != nil {
			if err == io.EOF {
				return event{}, corrupt("truncated trace: missing footer")
			}
			return event{}, err
		}
	}
	ev, err := rd.decode()
	if err != nil {
		return event{}, err
	}
	rd.events++
	if ev.op == opEnd {
		rd.sawEnd = true
	}
	return ev, nil
}

// expectEOF verifies nothing follows the footer — Verify's last check.
func (rd *Reader) expectEOF() error {
	if rd.pos != len(rd.block) {
		return corrupt("%d trailing bytes after footer in final block", len(rd.block)-rd.pos)
	}
	if _, err := rd.br.ReadByte(); err != io.EOF {
		return corrupt("trailing data after footer")
	}
	return nil
}

// Sticky-error field readers for decode: the first failure wins and
// zero values flow through the rest of the event harmlessly.

func (rd *Reader) rb() byte {
	if rd.derr != nil {
		return 0
	}
	if rd.pos >= len(rd.block) {
		rd.derr = corrupt("event truncated at block boundary")
		return 0
	}
	b := rd.block[rd.pos]
	rd.pos++
	return b
}

func (rd *Reader) ruv() uint64 {
	if rd.derr != nil {
		return 0
	}
	v, n := binary.Uvarint(rd.block[rd.pos:])
	if n <= 0 {
		rd.derr = corrupt("bad varint field")
		return 0
	}
	rd.pos += n
	return v
}

// ri decodes a varint bounded to sane index/count range.
func (rd *Reader) ri() int {
	v := rd.ruv()
	if rd.derr == nil && v >= maxField {
		rd.derr = corrupt("field value %d out of range", v)
	}
	return int(v)
}

func (rd *Reader) ru64() uint64 {
	if rd.derr != nil {
		return 0
	}
	if rd.pos+8 > len(rd.block) {
		rd.derr = corrupt("event truncated at block boundary")
		return 0
	}
	v := binary.LittleEndian.Uint64(rd.block[rd.pos:])
	rd.pos += 8
	return v
}

// decode reads one event from the current block.
func (rd *Reader) decode() (event, error) {
	rd.derr = nil
	ev := event{op: rd.rb()}
	switch ev.op {
	case opAlloc:
		flags := rd.rb()
		if flags&^byte(allocFlags) != 0 {
			return ev, corrupt("alloc flags %#x have unknown bits", flags)
		}
		ev.kind = flags & kindMask
		if ev.kind > mutator.AllocRefArr {
			return ev, corrupt("alloc kind %d unknown", ev.kind)
		}
		ev.dest = flags >> destShift & 0x03
		if ev.dest > destSet {
			return ev, corrupt("alloc dest %d unknown", ev.dest)
		}
		ev.hasInit = flags&initBit != 0
		ev.words = rd.ri()
		if ev.dest != destNone {
			ev.destSlot = rd.ri()
		}
		if ev.hasInit {
			ev.initIdx = rd.ri()
			ev.initVal = rd.ru64()
		}
	case opWorkR:
		ev.slot = rd.ri()
		ev.readIdx = rd.ri()
	case opWorkRW:
		ev.slot = rd.ri()
		ev.readIdx = rd.ri()
		ev.writeIdx = rd.ri()
	case opLink:
		ev.srcSlot = rd.ri()
		ev.dstSlot = rd.ri()
		ev.refIdx = rd.ri()
	case opLinkNop:
		ev.srcSlot = rd.ri()
		ev.dstSlot = rd.ri()
	case opStepEnd:
	case opFree:
		ev.objID = rd.ruv()
	case opRelease:
		ev.slot = rd.ri()
	case opRootNil:
		ev.slot = rd.ri()
	case opEnd:
		flags := rd.rb()
		if flags&^byte(endHasChecksum) != 0 {
			return ev, corrupt("footer flags %#x have unknown bits", flags)
		}
		ev.footer.HasChecksum = flags&endHasChecksum != 0
		ev.footer.Allocs = rd.ruv()
		ev.footer.Bytes = rd.ruv()
		if ev.footer.HasChecksum {
			ev.footer.Checksum = rd.ru64()
		}
	default:
		return ev, corrupt("unknown opcode %d", ev.op)
	}
	return ev, rd.derr
}

// ReadMeta opens path just far enough to return its Meta.
func ReadMeta(path string) (Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, err
	}
	defer f.Close()
	rd, err := NewReader(f)
	if err != nil {
		return Meta{}, err
	}
	return rd.Meta(), nil
}

// HashFile returns the hex SHA-256 of the file's bytes — the content
// identity runner jobs carry so cached sweeps key on what the trace
// says, not where it lives.
func HashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
