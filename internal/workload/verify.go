package workload

import (
	"math/bits"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/objmodel"
)

// Stats summarizes one full scan of a trace — Verify's output, printed
// by gctrace stat.
type Stats struct {
	Meta   Meta
	Events uint64
	Blocks uint64
	Steps  uint64

	Allocs    uint64
	Bytes     uint64
	Nodes     uint64
	DataArrs  uint64
	RefArrs   uint64
	Temps     uint64 // allocations no root ever held
	Survivors uint64 // allocations stored into a root slot

	FreeHints  uint64
	Releases   uint64
	RootNils   uint64
	Links      uint64
	LinkNops   uint64
	WorkReads  uint64
	WorkWrites uint64

	// PeakLive is the most objects simultaneously live (by free hints;
	// objects never hinted dead count as live to the end).
	PeakLive uint64
	// LifetimeP50/P90 are object lifetimes in allocations survived, from
	// power-of-two buckets (so values are bucket lower bounds).
	LifetimeP50 uint64
	LifetimeP90 uint64

	Footer Footer
}

// vslot is Verify's model of one root slot.
type vslot struct {
	inUse  bool
	hasObj bool
	kind   byte
	words  int
	id     uint64
}

// vmodel mirrors gc.Roots' LIFO free-list discipline exactly, which is
// what lets Verify predict — and check — every slot index a replay
// would observe, without instantiating a collector.
type vmodel struct {
	slots []vslot
	free  []int
}

func (m *vmodel) add() int {
	if n := len(m.free); n > 0 {
		i := m.free[n-1]
		m.free = m.free[:n-1]
		m.slots[i] = vslot{inUse: true}
		return i
	}
	m.slots = append(m.slots, vslot{inUse: true})
	return len(m.slots) - 1
}

func (m *vmodel) release(i int) {
	m.slots[i] = vslot{}
	m.free = append(m.free, i)
}

func (m *vmodel) get(i int) (*vslot, bool) {
	if i < 0 || i >= len(m.slots) || !m.slots[i].inUse {
		return nil, false
	}
	return &m.slots[i], true
}

// refSlotsOf mirrors Type.NumRefSlots for the three workload types.
func refSlotsOf(kind byte, words int) int {
	switch kind {
	case mutator.AllocNode:
		return 2
	case mutator.AllocRefArr:
		return words
	}
	return 0
}

// dataIdxOK reports whether idx is an index the generator could have
// produced for a data access to an object of this shape (node data
// words live at 2..3; pointer-free arrays anywhere; reference arrays
// only at 0, mirroring dataIndexOf).
func dataIdxOK(kind byte, words, idx int) bool {
	switch kind {
	case mutator.AllocNode:
		return idx == 2 || idx == 3
	case mutator.AllocRefArr:
		return idx == 0
	}
	return idx >= 0 && idx < words
}

// Verify scans rd to the end, checking every structural invariant a
// replay depends on — root-slot discipline against the LIFO free-list
// model, index bounds against tracked object shapes, object-ID sanity
// of free hints, footer totals, and nothing after the footer — and
// returns the trace's statistics. It shares the Reader's decode layer,
// so everything the fuzzer throws at the format funnels through here
// without a collector in sight.
func Verify(rd *Reader) (*Stats, error) {
	st := &Stats{Meta: rd.Meta()}
	var model vmodel
	var nextID uint64 = 1
	alive := make(map[uint64]uint64) // object ID -> allocation ordinal
	var lifeHist [65]uint64

	for {
		ev, err := rd.next()
		if err != nil {
			return st, err
		}
		if ev.op == opEnd {
			st.Footer = ev.footer
			if ev.footer.Allocs != st.Allocs || ev.footer.Bytes != st.Bytes {
				return st, corrupt("footer totals (%d allocs, %d bytes) disagree with stream (%d, %d)",
					ev.footer.Allocs, ev.footer.Bytes, st.Allocs, st.Bytes)
			}
			if err := rd.expectEOF(); err != nil {
				return st, err
			}
			st.Events = rd.Events()
			st.Blocks = rd.Blocks()
			st.LifetimeP50 = lifePercentile(lifeHist[:], 50)
			st.LifetimeP90 = lifePercentile(lifeHist[:], 90)
			return st, nil
		}
		switch ev.op {
		case opAlloc:
			switch ev.kind {
			case mutator.AllocNode:
				if ev.words != 4 {
					return st, corrupt("node allocation of %d words", ev.words)
				}
				st.Nodes++
			case mutator.AllocDataArr:
				if ev.words < 1 {
					return st, corrupt("empty data array allocation")
				}
				st.DataArrs++
			case mutator.AllocRefArr:
				if ev.words < 1 {
					return st, corrupt("empty reference array allocation")
				}
				if ev.hasInit {
					return st, corrupt("data init on a reference array")
				}
				st.RefArrs++
			}
			if ev.hasInit && !dataIdxOK(ev.kind, ev.words, ev.initIdx) {
				return st, corrupt("init write at %d invalid for kind %d, %d words",
					ev.initIdx, ev.kind, ev.words)
			}
			id := nextID
			nextID++
			alive[id] = st.Allocs
			st.Allocs++
			st.Bytes += uint64(objmodel.HeaderBytes + ev.words*mem.WordSize)
			if n := uint64(len(alive)); n > st.PeakLive {
				st.PeakLive = n
			}
			switch ev.dest {
			case destNone:
				st.Temps++
			case destAdd:
				if s := model.add(); s != ev.destSlot {
					return st, corrupt("root add landed in slot %d, trace says %d", s, ev.destSlot)
				}
				sl, _ := model.get(ev.destSlot)
				*sl = vslot{inUse: true, hasObj: true, kind: ev.kind, words: ev.words, id: id}
				st.Survivors++
			case destSet:
				sl, ok := model.get(ev.destSlot)
				if !ok {
					return st, corrupt("root set into unknown slot %d", ev.destSlot)
				}
				*sl = vslot{inUse: true, hasObj: true, kind: ev.kind, words: ev.words, id: id}
				st.Survivors++
			}
		case opWorkR, opWorkRW:
			sl, ok := model.get(ev.slot)
			if !ok || !sl.hasObj {
				return st, corrupt("work on empty root slot %d", ev.slot)
			}
			if !dataIdxOK(sl.kind, sl.words, ev.readIdx) {
				return st, corrupt("work read at %d invalid for slot %d", ev.readIdx, ev.slot)
			}
			st.WorkReads++
			if ev.op == opWorkRW {
				if !dataIdxOK(sl.kind, sl.words, ev.writeIdx) {
					return st, corrupt("work write at %d invalid for slot %d", ev.writeIdx, ev.slot)
				}
				st.WorkWrites++
			}
		case opLink:
			src, ok := model.get(ev.srcSlot)
			if !ok || !src.hasObj {
				return st, corrupt("link from empty root slot %d", ev.srcSlot)
			}
			if dst, ok := model.get(ev.dstSlot); !ok || !dst.hasObj {
				return st, corrupt("link to empty root slot %d", ev.dstSlot)
			}
			if n := refSlotsOf(src.kind, src.words); ev.refIdx >= n {
				return st, corrupt("link into ref slot %d of %d", ev.refIdx, n)
			}
			st.Links++
		case opLinkNop:
			src, ok := model.get(ev.srcSlot)
			if !ok || !src.hasObj {
				return st, corrupt("link from empty root slot %d", ev.srcSlot)
			}
			if _, ok := model.get(ev.dstSlot); !ok {
				return st, corrupt("link to unknown root slot %d", ev.dstSlot)
			}
			if refSlotsOf(src.kind, src.words) != 0 {
				return st, corrupt("link-nop from a source with reference slots")
			}
			st.LinkNops++
		case opStepEnd:
			st.Steps++
		case opFree:
			born, ok := alive[ev.objID]
			if !ok {
				return st, corrupt("free hint for unknown or dead object %d", ev.objID)
			}
			delete(alive, ev.objID)
			lifeHist[bits.Len64(st.Allocs-born)]++
			st.FreeHints++
		case opRelease:
			if _, ok := model.get(ev.slot); !ok {
				return st, corrupt("release of unknown slot %d", ev.slot)
			}
			model.release(ev.slot)
			st.Releases++
		case opRootNil:
			if s := model.add(); s != ev.slot {
				return st, corrupt("root add landed in slot %d, trace says %d", s, ev.slot)
			}
			st.RootNils++
		}
	}
}

// lifePercentile returns the lower bound (in allocations survived) of
// the bucket holding the pth percentile.
func lifePercentile(hist []uint64, p int) uint64 {
	var total uint64
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		return 0
	}
	want := (total*uint64(p) + 99) / 100
	var cum uint64
	for b, n := range hist {
		cum += n
		if cum >= want {
			if b == 0 {
				return 0
			}
			return uint64(1) << (b - 1)
		}
	}
	return uint64(1) << (len(hist) - 1)
}
