package workload

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"io"

	"bookmarkgc/internal/trace"
)

// Writer emits a trace: header, Meta block, then events packed into
// CRC-framed blocks. Events never straddle a block boundary (the writer
// flushes only between events), so a reader can decode each block's
// payload independently after its CRC checks out.
//
// Errors are sticky: the first underlying write failure is remembered
// and reported by every later call and by End.
type Writer struct {
	w   io.Writer
	buf []byte
	err error

	ended  bool
	events uint64
	blocks uint64

	// Counters, when set, accumulates block/event counts
	// (workload_blocks_written). Optional; set before writing events.
	Counters *trace.Counters
}

// NewWriter writes the file header and meta block to w. meta's
// FormatVersion is forced to the version this package writes.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	meta.FormatVersion = Version
	mb, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	wr := &Writer{w: w}
	if _, err := w.Write(append([]byte(magic), Version)); err != nil {
		return nil, err
	}
	wr.buf = append(wr.buf, mb...)
	if err := wr.flush(); err != nil {
		return nil, err
	}
	return wr, nil
}

// flush frames the buffered payload as one block.
func (w *Writer) flush() error {
	if w.err != nil || len(w.buf) == 0 {
		return w.err
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(w.buf)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(w.buf))
	for _, chunk := range [][]byte{hdr[:n], w.buf, crc[:]} {
		if _, err := w.w.Write(chunk); err != nil {
			w.err = err
			return err
		}
	}
	w.buf = w.buf[:0]
	w.blocks++
	w.Counters.Inc(trace.CWorkloadBlocksWritten)
	return nil
}

// endEvent closes out one event: counts it and flushes at block-size
// boundaries, keeping events whole within blocks.
func (w *Writer) endEvent() {
	w.events++
	if len(w.buf) >= flushAt {
		w.flush()
	}
}

func (w *Writer) uv(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.buf = append(w.buf, tmp[:n]...)
}

// u64 is fixed-width: used for full-entropy values (random init data,
// checksums) where a varint would average longer than 8 bytes.
func (w *Writer) u64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	w.buf = append(w.buf, tmp[:]...)
}

// Alloc emits one allocation event.
func (w *Writer) Alloc(kind byte, words int, dest byte, destSlot int, hasInit bool, initIdx int, initVal uint64) {
	flags := kind&kindMask | dest<<destShift
	if hasInit {
		flags |= initBit
	}
	w.buf = append(w.buf, opAlloc, flags)
	w.uv(uint64(words))
	if dest != destNone {
		w.uv(uint64(destSlot))
	}
	if hasInit {
		w.uv(uint64(initIdx))
		w.u64(initVal)
	}
	w.endEvent()
}

// Work emits one mutator work item (read, or read+write).
func (w *Writer) Work(slot, readIdx int, write bool, writeIdx int) {
	if write {
		w.buf = append(w.buf, opWorkRW)
		w.uv(uint64(slot))
		w.uv(uint64(readIdx))
		w.uv(uint64(writeIdx))
	} else {
		w.buf = append(w.buf, opWorkR)
		w.uv(uint64(slot))
		w.uv(uint64(readIdx))
	}
	w.endEvent()
}

// Link emits a pointer store (or, with hasWrite false, the header read
// of a pointer-free source that produced no store).
func (w *Writer) Link(srcSlot, dstSlot int, hasWrite bool, refIdx int) {
	if hasWrite {
		w.buf = append(w.buf, opLink)
		w.uv(uint64(srcSlot))
		w.uv(uint64(dstSlot))
		w.uv(uint64(refIdx))
	} else {
		w.buf = append(w.buf, opLinkNop)
		w.uv(uint64(srcSlot))
		w.uv(uint64(dstSlot))
	}
	w.endEvent()
}

// StepEnd marks the end of one allocation iteration.
func (w *Writer) StepEnd() {
	w.buf = append(w.buf, opStepEnd)
	w.endEvent()
}

// Free emits an advisory death hint for an object (IDs are implicit
// allocation ordinals, starting at 1).
func (w *Writer) Free(objID uint64) {
	w.buf = append(w.buf, opFree)
	w.uv(objID)
	w.endEvent()
}

// Release emits a root-slot release (synthesized traces; the generator
// never releases roots).
func (w *Writer) Release(slot int) {
	w.buf = append(w.buf, opRelease)
	w.uv(uint64(slot))
	w.endEvent()
}

// RootNil emits a Roots().Add(Nil) — an empty slot reserved at startup.
func (w *Writer) RootNil(slot int) {
	w.buf = append(w.buf, opRootNil)
	w.uv(uint64(slot))
	w.endEvent()
}

// End writes the footer event and flushes the final block. It must be
// the last call; the Writer is unusable afterwards.
func (w *Writer) End(f Footer) error {
	if w.ended {
		return w.err
	}
	w.ended = true
	flags := byte(0)
	if f.HasChecksum {
		flags |= endHasChecksum
	}
	w.buf = append(w.buf, opEnd, flags)
	w.uv(f.Allocs)
	w.uv(f.Bytes)
	if f.HasChecksum {
		w.u64(f.Checksum)
	}
	w.events++
	return w.flush()
}

// Events returns how many events have been emitted (including the
// footer once End has run).
func (w *Writer) Events() uint64 { return w.events }

// Blocks returns how many blocks have been flushed.
func (w *Writer) Blocks() uint64 { return w.blocks }
