package workload_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"bookmarkgc/internal/workload"
)

// fuzzSeeds builds the seed corpus: one trace per synthesizer model plus
// degenerate inputs around the framing layer.
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	for _, model := range workload.Models {
		var buf bytes.Buffer
		if err := workload.Synthesize(&buf, workload.SynthParams{
			Model: model, Allocs: 400, Live: 40, Seed: 11,
		}); err != nil {
			panic(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	return append(seeds,
		nil,
		[]byte("GCWL"),
		[]byte{'G', 'C', 'W', 'L', 1},
		[]byte{'G', 'C', 'W', 'L', 1, 0xff, 0xff, 0xff, 0xff, 0x0f},
	)
}

// FuzzDecoder feeds arbitrary bytes through the full decode stack
// (header, block framing, event decoding, structural verification). The
// contract under fuzz: never panic, never loop forever, and classify
// every failure as an error — a mutated input must not verify as a
// different valid trace silently (the CRC framing makes surviving a
// mutation astronomically unlikely; Verify's invariants catch the rest).
func FuzzDecoder(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		rd, err := workload.NewReader(bytes.NewReader(raw))
		if err != nil {
			requireClean(t, err)
			return
		}
		if _, err := workload.Verify(rd); err != nil {
			requireClean(t, err)
		}
	})
}

// requireClean asserts an error is one of the package's declared failure
// modes, not an escaped internal error.
func requireClean(t *testing.T, err error) {
	t.Helper()
	if errors.Is(err, workload.ErrCorrupt) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return
	}
	t.Fatalf("decode failed outside the declared error modes: %v", err)
}

// TestEveryByteFlipDetected is the deterministic cousin of FuzzDecoder:
// flip each byte of a valid trace (one bit per position) and require the
// decoder to reject the damage. Every byte of the format is covered by
// the magic, the version check, block length framing, a payload CRC, or
// the CRC field itself, so no single-bit flip may survive verification.
func TestEveryByteFlipDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := workload.Synthesize(&buf, workload.SynthParams{
		Model: "markov", Allocs: 300, Live: 30, Seed: 5,
	}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := verifyBytes(raw); err != nil {
		t.Fatalf("pristine trace rejected: %v", err)
	}
	mut := make([]byte, len(raw))
	for i := range raw {
		copy(mut, raw)
		mut[i] ^= 1 << (i % 8)
		if _, err := verifyBytes(mut); err == nil {
			t.Fatalf("bit flip at byte %d/%d went undetected", i, len(raw))
		}
	}
}
