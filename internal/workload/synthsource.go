package workload

import (
	"bytes"

	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mutator"
)

// SynthSource is a mutator.Source over a synthesized trace held in
// memory: the trace is generated once at construction and every
// NewWorkload call replays it from a fresh reader. Fleet tenants use it
// to run synthesized programs without touching the filesystem, and —
// like FileSource — many tenants can replay one SynthSource
// concurrently, each with an independent cursor.
type SynthSource struct {
	data []byte
	meta Meta
}

// NewSynthSource synthesizes the trace for p into memory.
func NewSynthSource(p SynthParams) (*SynthSource, error) {
	var buf bytes.Buffer
	if err := Synthesize(&buf, p); err != nil {
		return nil, err
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, err
	}
	return &SynthSource{data: buf.Bytes(), meta: rd.Meta()}, nil
}

// Meta returns the synthesized trace's self-description.
func (s *SynthSource) Meta() Meta { return s.meta }

// WorkloadName implements mutator.Source.
func (s *SynthSource) WorkloadName() string { return s.meta.Name }

// NewWorkload implements mutator.Source. The seed is ignored: the trace
// was fixed by SynthParams.Seed at construction.
func (s *SynthSource) NewWorkload(c gc.Collector, types mutator.Types, seed int64) (mutator.Workload, error) {
	rd, err := NewReader(bytes.NewReader(s.data))
	if err != nil {
		return nil, err
	}
	return NewReplayer(rd, c, types), nil
}
