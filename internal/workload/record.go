package workload

import (
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/trace"
)

// Recorder captures a generator's event stream to a Writer. It
// implements mutator.Sink, so attaching it (sim.RunConfig.Sink) records
// any spec program without perturbing the run: observation happens on
// the host, never on the simulated machine.
//
// The recorder folds each allocation and its fate (mutator.Sink's
// protocol: Alloc is immediately followed by RootAdd/RootSet when the
// object survives) into a single opAlloc event, assigns implicit
// sequential object IDs, and emits advisory opFree hints when a
// temporary drops dead or a root-slot store retires its previous
// occupant — the lifetime ground truth stat and the synthesizer models
// are calibrated against.
type Recorder struct {
	w *Writer

	pending  bool // an Alloc awaiting its fate
	pKind    byte
	pWords   int
	pHasInit bool
	pInitIdx int
	pInitVal uint64

	nextID  uint64   // next object ID (1-based)
	slotObj []uint64 // root slot -> live object ID (0 = none)
}

// NewRecorder wraps w. Counter wiring rides on w.Counters.
func NewRecorder(w *Writer) *Recorder {
	return &Recorder{w: w, nextID: 1}
}

func (r *Recorder) setSlot(slot int, id uint64) {
	for len(r.slotObj) <= slot {
		r.slotObj = append(r.slotObj, 0)
	}
	if old := r.slotObj[slot]; old != 0 {
		r.w.Free(old)
		r.count()
	}
	r.slotObj[slot] = id
}

func (r *Recorder) count() { r.w.Counters.Inc(trace.CWorkloadEventsRecorded) }

// flushPending emits a pending allocation as a temporary (no root ever
// held it), plus its immediate death hint.
func (r *Recorder) flushPending() {
	if !r.pending {
		return
	}
	r.pending = false
	r.w.Alloc(r.pKind, r.pWords, destNone, 0, r.pHasInit, r.pInitIdx, r.pInitVal)
	r.count()
	r.w.Free(r.nextID - 1)
	r.count()
}

// Alloc implements mutator.Sink.
func (r *Recorder) Alloc(kind byte, words int, hasInit bool, initIdx int, initVal uint64) {
	r.flushPending()
	r.pending = true
	r.pKind, r.pWords = kind, words
	r.pHasInit, r.pInitIdx, r.pInitVal = hasInit, initIdx, initVal
	r.nextID++
}

// RootAdd implements mutator.Sink.
func (r *Recorder) RootAdd(slot int) {
	if !r.pending {
		return // protocol misuse; nothing to attribute the slot to
	}
	r.pending = false
	r.w.Alloc(r.pKind, r.pWords, destAdd, slot, r.pHasInit, r.pInitIdx, r.pInitVal)
	r.count()
	r.setSlot(slot, r.nextID-1)
}

// RootSet implements mutator.Sink.
func (r *Recorder) RootSet(slot int) {
	if !r.pending {
		return
	}
	r.pending = false
	r.w.Alloc(r.pKind, r.pWords, destSet, slot, r.pHasInit, r.pInitIdx, r.pInitVal)
	r.count()
	r.setSlot(slot, r.nextID-1)
}

// RootAddNil implements mutator.Sink.
func (r *Recorder) RootAddNil(slot int) {
	r.flushPending()
	r.w.RootNil(slot)
	r.count()
	r.setSlot(slot, 0)
}

// Work implements mutator.Sink.
func (r *Recorder) Work(slot, readIdx int, write bool, writeIdx int) {
	r.flushPending()
	r.w.Work(slot, readIdx, write, writeIdx)
	r.count()
}

// Link implements mutator.Sink.
func (r *Recorder) Link(srcSlot, dstSlot int, hasWrite bool, refIdx int) {
	r.flushPending()
	r.w.Link(srcSlot, dstSlot, hasWrite, refIdx)
	r.count()
}

// StepEnd implements mutator.Sink.
func (r *Recorder) StepEnd() {
	r.flushPending()
	r.w.StepEnd()
	r.count()
}

// Close writes the footer from the finished run's summary. Call it
// exactly once, after the simulation completes.
func (r *Recorder) Close(res mutator.Result) error {
	r.flushPending()
	return r.w.End(Footer{
		Allocs:      res.Allocations,
		Bytes:       res.AllocatedBytes,
		HasChecksum: true,
		Checksum:    res.Checksum,
	})
}
