package workload

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/objmodel"
)

// SynthParams parameterizes a synthesized trace. It is a pure value
// with stable JSON field names: fleet tenant specs embed it, and runner
// jobs hash the encoding.
type SynthParams struct {
	// Model is one of Models: "markov", "ramp", or "frag".
	Model string `json:"model"`
	// Allocs is the number of allocation iterations to emit.
	Allocs int `json:"allocs,omitempty"`
	// Live is the live-set target in objects; each model interprets it
	// as its steady-state (markov), peak (ramp), or pin stride base
	// (frag) scale.
	Live int   `json:"live,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	// Name labels the trace; empty defaults to the model name.
	Name string `json:"name,omitempty"`
}

// Synthesize writes a complete trace for params to w. The emitted
// stream honours every invariant Verify checks (slot discipline, index
// bounds, free-hint sanity), so synthesized traces replay under any
// collector exactly like recorded ones — they just describe programs
// the spec table cannot express: Markov lifetime chains, phase-shifted
// live-set ramps, and adversarial fragmentation/pinning patterns that
// stress bookmarking and the compactor's choice of target superpages.
func Synthesize(w io.Writer, p SynthParams) error {
	if p.Allocs <= 0 {
		p.Allocs = 100_000
	}
	if p.Live <= 0 {
		p.Live = 1_000
	}
	if p.Name == "" {
		p.Name = p.Model
	}
	var gen func(*synthState)
	var model map[string]float64
	switch p.Model {
	case "markov":
		gen = synthMarkov
		model = map[string]float64{"allocs": float64(p.Allocs), "live": float64(p.Live)}
	case "ramp":
		gen = synthRamp
		model = map[string]float64{"allocs": float64(p.Allocs), "peak": float64(p.Live), "phases": rampPhases}
	case "frag":
		gen = synthFrag
		model = map[string]float64{"allocs": float64(p.Allocs), "live": float64(p.Live), "pin_stride": fragPinStride}
	default:
		return fmt.Errorf("workload: unknown synth model %q (models: %s)", p.Model, strings.Join(Models, ", "))
	}
	wr, err := NewWriter(w, Meta{
		Name:   p.Name,
		Source: "synth:" + p.Model,
		Seed:   p.Seed,
		Model:  model,
	})
	if err != nil {
		return err
	}
	st := &synthState{w: wr, p: p, rng: rand.New(rand.NewSource(p.Seed)), pos: map[int]int{}, nextID: 1}
	gen(st)
	// Synthesizers cannot know the data checksum a replay will compute
	// without simulating the heap, so the footer omits it; readers still
	// verify the totals.
	return wr.End(Footer{Allocs: st.allocs, Bytes: st.bytes})
}

// synthState tracks the synthetic program's live set, mirroring the
// replayer's root-slot discipline (gc.Roots' LIFO free list) so every
// emitted slot index matches what Roots will hand out on replay.
type synthState struct {
	w   *Writer
	p   SynthParams
	rng *rand.Rand

	slots  vmodel
	live   []int       // in-use slots, for O(1) random picks
	pos    map[int]int // slot -> index in live
	nextID uint64
	allocs uint64
	bytes  uint64
}

func (s *synthState) account(words int) {
	s.allocs++
	s.bytes += uint64(objmodel.HeaderBytes + words*mem.WordSize)
	s.nextID++
}

// allocTemp emits an allocation no root keeps, dead on arrival.
func (s *synthState) allocTemp(kind byte, words int) {
	hasInit, initIdx := initFor(kind, words, s.rng)
	s.w.Alloc(kind, words, destNone, 0, hasInit, initIdx, s.rng.Uint64())
	s.w.Free(s.nextID)
	s.account(words)
}

// allocSurvive emits an allocation rooted in a fresh slot.
func (s *synthState) allocSurvive(kind byte, words int) int {
	slot := s.slots.add()
	sl, _ := s.slots.get(slot)
	*sl = vslot{inUse: true, hasObj: true, kind: kind, words: words, id: s.nextID}
	hasInit, initIdx := initFor(kind, words, s.rng)
	s.w.Alloc(kind, words, destAdd, slot, hasInit, initIdx, s.rng.Uint64())
	s.account(words)
	s.pos[slot] = len(s.live)
	s.live = append(s.live, slot)
	return slot
}

// releaseSlot kills the object in slot and returns the root.
func (s *synthState) releaseSlot(slot int) {
	sl, _ := s.slots.get(slot)
	s.w.Release(slot)
	s.w.Free(sl.id)
	s.slots.release(slot)
	i := s.pos[slot]
	last := s.live[len(s.live)-1]
	s.live[i] = last
	s.pos[last] = i
	s.live = s.live[:len(s.live)-1]
	delete(s.pos, slot)
}

func (s *synthState) randomLive() (int, *vslot) {
	slot := s.live[s.rng.Intn(len(s.live))]
	sl, _ := s.slots.get(slot)
	return slot, sl
}

// work emits n data accesses on random live objects, every fourth a
// read-modify-write — the generator's rhythm.
func (s *synthState) work(n int) {
	for w := 0; w < n && len(s.live) > 0; w++ {
		slot, sl := s.randomLive()
		ri := dataIdxFor(sl, s.rng)
		if w&3 == 0 {
			s.w.Work(slot, ri, true, dataIdxFor(sl, s.rng))
		} else {
			s.w.Work(slot, ri, false, 0)
		}
	}
}

// link emits one pointer store between random live objects (or the
// header-read-only event when the source is pointer-free).
func (s *synthState) link() {
	if len(s.live) < 2 {
		return
	}
	ss, src := s.randomLive()
	ds, _ := s.randomLive()
	if n := refSlotsOf(src.kind, src.words); n > 0 {
		s.w.Link(ss, ds, true, s.rng.Intn(n))
	} else {
		s.w.Link(ss, ds, false, 0)
	}
}

// linkTo stores dst into a specific source's random ref slot.
func (s *synthState) linkTo(srcSlot, dstSlot int) {
	src, _ := s.slots.get(srcSlot)
	if n := refSlotsOf(src.kind, src.words); n > 0 {
		s.w.Link(srcSlot, dstSlot, true, s.rng.Intn(n))
	}
}

func initFor(kind byte, words int, rng *rand.Rand) (bool, int) {
	switch kind {
	case mutator.AllocNode:
		return true, 2 + rng.Intn(2)
	case mutator.AllocDataArr:
		return true, rng.Intn(words)
	}
	return false, 0 // reference arrays carry no data init
}

func dataIdxFor(sl *vslot, rng *rand.Rand) int {
	switch sl.kind {
	case mutator.AllocNode:
		return 2 + rng.Intn(2)
	case mutator.AllocRefArr:
		return 0
	}
	return rng.Intn(sl.words)
}

// pickKind draws the object mix shared by markov and ramp: mostly
// nodes, some mid-size data arrays, a sprinkle of reference arrays.
func pickKind(rng *rand.Rand) (byte, int) {
	switch x := rng.Intn(100); {
	case x < 78:
		return mutator.AllocNode, 4
	case x < 95:
		return mutator.AllocDataArr, 8 + rng.Intn(56)
	default:
		return mutator.AllocRefArr, 4 + rng.Intn(12)
	}
}

// synthMarkov drives lifetimes from a three-state Markov chain (die-now
// / short / long) whose self-bias produces the bursty, phase-correlated
// death clustering independent per-object draws cannot: stretches of
// nursery fodder interleaved with waves of mid-life objects dying
// together — the promotion-then-mass-death pattern that punishes
// generational heaps.
func synthMarkov(s *synthState) {
	// Rows: transition probabilities (percent) from state 0/1/2.
	trans := [3][3]int{
		{70, 95, 100}, // temp: mostly stays temp
		{35, 90, 100}, // short
		{20, 40, 100}, // long
	}
	state := 1
	deaths := map[int][]int{} // iteration -> slots to release
	for i := 0; i < s.p.Allocs; i++ {
		for _, slot := range deaths[i] {
			s.releaseSlot(slot)
		}
		delete(deaths, i)

		x := s.rng.Intn(100)
		row := trans[state]
		switch {
		case x < row[0]:
			state = 0
		case x < row[1]:
			state = 1
		default:
			state = 2
		}
		kind, words := pickKind(s.rng)
		if state == 0 {
			s.allocTemp(kind, words)
		} else {
			slot := s.allocSurvive(kind, words)
			life := 1 + s.rng.Intn(s.p.Live)
			if state == 2 {
				life = s.p.Live*4 + s.rng.Intn(s.p.Live*8)
			}
			if at := i + life; at < s.p.Allocs {
				deaths[at] = append(deaths[at], slot)
			}
		}
		s.work(2)
		if i%16 == 0 {
			s.link()
		}
		s.w.StepEnd()
	}
}

const rampPhases = 4

// synthRamp phase-shifts the live set through sawtooth ramps: grow
// linearly to the peak, then shed three quarters of the survivors in a
// burst and climb again. Collectors that size the heap from a trailing
// live estimate (and the paper's own resize heuristics) see their
// assumptions invalidated at every phase boundary.
func synthRamp(s *synthState) {
	peak := s.p.Live
	trough := peak/4 + 1
	phaseLen := s.p.Allocs / rampPhases
	if phaseLen < 1 {
		phaseLen = 1
	}
	for i := 0; i < s.p.Allocs; i++ {
		pos := i % phaseLen
		if pos == 0 && i > 0 {
			// Phase boundary: burst-release down to the trough.
			for len(s.live) > trough {
				slot := s.live[s.rng.Intn(len(s.live))]
				s.releaseSlot(slot)
			}
		}
		target := trough + (peak-trough)*pos/phaseLen
		kind, words := pickKind(s.rng)
		if len(s.live) < target {
			s.allocSurvive(kind, words)
		} else {
			s.allocTemp(kind, words)
		}
		s.work(2)
		if i%8 == 0 {
			s.link()
		}
		s.w.StepEnd()
	}
}

const (
	fragPinStride = 16
	fragBatch     = 48
	fragArrWords  = 64
)

// synthFrag is the adversary: it fills runs of pages with same-sized
// arrays, then frees all but every sixteenth — pinning nearly-empty
// superpages — and threads pointers between the pinned survivors of
// different batches, so evicting or compacting any page risks breaking
// a cross-page edge. This is the worst case for the compactor's target
// selection and the bookmarking machinery both.
func synthFrag(s *synthState) {
	var oldNodes []int // pinned node slots from earlier batches
	for i := 0; i < s.p.Allocs; {
		var arrs, nodes []int
		for b := 0; b < fragBatch && i < s.p.Allocs; b++ {
			if b%8 == 7 {
				nodes = append(nodes, s.allocSurvive(mutator.AllocNode, 4))
			} else {
				arrs = append(arrs, s.allocSurvive(mutator.AllocDataArr, fragArrWords))
			}
			s.work(1)
			s.w.StepEnd()
			i++
		}
		// Retire the batch, pinning every fragPinStride-th array in
		// place — dense pages become sparse, never empty.
		for j, slot := range arrs {
			if j%fragPinStride != 0 {
				s.releaseSlot(slot)
			}
		}
		// Cross-batch pointers between the pinned survivors.
		for _, ns := range nodes {
			if len(oldNodes) > 0 {
				s.linkTo(ns, oldNodes[s.rng.Intn(len(oldNodes))])
			}
		}
		oldNodes = append(oldNodes, nodes...)
		// Keep the pinned node population bounded by the live target.
		for len(oldNodes) > s.p.Live {
			s.releaseSlot(oldNodes[0])
			oldNodes = oldNodes[1:]
		}
	}
}
