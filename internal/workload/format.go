// Package workload records, replays, and synthesizes allocation traces —
// the trace-driven half of the experiment harness. A trace captures a
// mutator's event stream (allocations, root operations, data accesses,
// pointer stores) at exactly the granularity needed to reproduce a run
// bit-for-bit on the simulated machine: replaying a trace issues the
// identical sequence of collector calls and header reads the original
// run issued, so execution time, fault counts, and pause distributions
// come out identical. Because the stream never depends on the collector
// that happened to be running when it was recorded, one trace drives any
// collector — the apples-to-apples comparison spec-driven generators
// cannot offer.
//
// On disk a trace is:
//
//	"GCWL" <version byte>
//	block*                      (first block: JSON Meta; rest: events)
//
// where each block is
//
//	uvarint(len) payload crc32le(payload)
//
// and the payload is a sequence of varint-encoded events, never split
// across blocks. The CRC framing makes torn or bit-flipped files fail
// loudly: any mutation is caught at the block level before an event is
// believed. The final event is always opEnd, a footer carrying the run's
// allocation totals (and, for recorded traces, the mutator checksum the
// replayer must reproduce).
package workload

import (
	"errors"
	"fmt"

	"bookmarkgc/internal/mutator"
)

const (
	magic = "GCWL"
	// Version is the trace format version this package reads and writes.
	Version = 1

	// maxBlockSize bounds a decoded block; real writers flush at flushAt.
	maxBlockSize = 1 << 20
	flushAt      = 32 << 10

	// maxField bounds any varint-decoded count or index: slots, words,
	// and indices all fit comfortably below it, and rejecting larger
	// values keeps corrupt traces from driving absurd allocations.
	maxField = 1 << 31
)

// Event opcodes. opEnd is zero so a zeroed byte never masquerades as a
// plausible event stream past the CRC (it decodes as a footer and the
// totals check fails).
const (
	opEnd     byte = iota // footer: flags, allocs, bytes, [checksum]
	opAlloc               // flags, words, [destSlot], [initIdx, initVal]
	opWorkR               // slot, readIdx
	opWorkRW              // slot, readIdx, writeIdx
	opLink                // srcSlot, dstSlot, refIdx
	opLinkNop             // srcSlot, dstSlot (header read, no store)
	opStepEnd             // end of one allocation iteration
	opFree                // objID — advisory death hint
	opRelease             // slot — root released (synthesized traces)
	opRootNil             // slot — Roots().Add(Nil) (large-buffer ring)
	opMax
)

// opAlloc flag layout and destination codes.
const (
	kindMask   = 0x03 // mutator.AllocNode / AllocDataArr / AllocRefArr
	destShift  = 2
	destMask   = 0x03 << destShift
	initBit    = 0x10
	allocFlags = kindMask | destMask | initBit

	destNone byte = 0 // temporary: no root keeps it
	destAdd  byte = 1 // Roots().Add — slot recorded for verification
	destSet  byte = 2 // Roots().Set(slot, ...)
)

// opEnd footer flags.
const endHasChecksum = 0x01

// Meta is the trace's self-description, stored as JSON in the first
// block. Program round-trips the (scaled) generator spec for recorded
// traces so a replayed run's mutator.Result matches the original's
// exactly; synthesized traces describe their model instead.
type Meta struct {
	FormatVersion int    `json:"format_version"`
	Name          string `json:"name"`
	// Source is "record" or "synth:<model>".
	Source  string        `json:"source"`
	Program *mutator.Spec `json:"program,omitempty"`
	Seed    int64         `json:"seed"`
	// Collector, HeapBytes, and PhysBytes document the recording run;
	// they do not constrain replay.
	Collector string `json:"collector,omitempty"`
	HeapBytes uint64 `json:"heap_bytes,omitempty"`
	PhysBytes uint64 `json:"phys_bytes,omitempty"`
	// Model holds a synthesizer's parameters.
	Model map[string]float64 `json:"model,omitempty"`
}

// Footer is the opEnd event's payload: the run totals every reader
// verifies, plus — for recorded traces — the mutator data checksum the
// replayer must reproduce word-for-word (synthesizers cannot know it
// without simulating the heap, so it is optional).
type Footer struct {
	Allocs      uint64
	Bytes       uint64
	HasChecksum bool
	Checksum    uint64
}

// event is one decoded trace event; which fields are meaningful depends
// on op.
type event struct {
	op       byte
	kind     byte // alloc: mutator.Alloc{Node,DataArr,RefArr}
	words    int  // alloc: payload words (node: 4)
	dest     byte // alloc: destNone/destAdd/destSet
	destSlot int
	hasInit  bool
	initIdx  int
	initVal  uint64
	slot     int // work / release / rootnil
	readIdx  int
	writeIdx int
	srcSlot  int // link
	dstSlot  int
	refIdx   int
	objID    uint64 // free
	footer   Footer // end
}

// ErrCorrupt is wrapped by every decode-side failure: framing damage,
// unknown opcodes, out-of-range fields, structural violations.
var ErrCorrupt = errors.New("corrupt trace")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("workload: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Models lists the synthesizer models Synthesize accepts.
var Models = []string{"markov", "ramp", "frag"}
