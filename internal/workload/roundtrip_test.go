package workload_test

import (
	"bufio"
	"bytes"
	"os"
	"reflect"
	"testing"

	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/sim"
	"bookmarkgc/internal/workload"
)

// TestRecordReplayRoundTrip is the package's central property: recording
// a program and replaying the trace under the same collector reproduces
// the run bit-for-bit — execution time, GC statistics, fault counts,
// pause timeline, and the mutator's data checksum (the footer fails the
// replay on any divergence, so completion alone already proves the
// checksum; the explicit comparisons localize a break). Every program in
// the suite goes through BC and GenMS at a small scale.
func TestRecordReplayRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("record+replay of the full suite takes a few seconds")
	}
	const scale = 0.02
	for _, prog := range mutator.Programs {
		for _, col := range []sim.CollectorKind{sim.BC, sim.GenMS} {
			t.Run(prog.Name+"/"+string(col), func(t *testing.T) {
				scaled := prog.Scale(scale)
				heap := scaled.MinHeap * 2
				phys := heap*4 + (16 << 20)

				var buf bytes.Buffer
				wr, err := workload.NewWriter(&buf, workload.Meta{
					Name:      scaled.Name,
					Source:    "record",
					Program:   &scaled,
					Seed:      1,
					Collector: string(col),
					HeapBytes: heap,
					PhysBytes: phys,
				})
				if err != nil {
					t.Fatal(err)
				}
				rec := workload.NewRecorder(wr)
				orig := sim.Run(sim.RunConfig{
					Collector: col, Program: scaled,
					HeapBytes: heap, PhysBytes: phys,
					Seed: 1, Sink: rec,
				})
				if orig.Err != nil {
					t.Fatalf("recording run: %v", orig.Err)
				}
				if err := rec.Close(orig.Mutator); err != nil {
					t.Fatalf("closing trace: %v", err)
				}

				// The recorded bytes are structurally valid...
				rd, err := workload.NewReader(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				st, err := workload.Verify(rd)
				if err != nil {
					t.Fatalf("verify: %v", err)
				}
				if st.Allocs != orig.Mutator.Allocations || st.Bytes != orig.Mutator.AllocatedBytes {
					t.Fatalf("trace totals (%d, %d) != run totals (%d, %d)",
						st.Allocs, st.Bytes, orig.Mutator.Allocations, orig.Mutator.AllocatedBytes)
				}

				// ...and replaying them reproduces the run exactly.
				src, err := workload.Open(writeFile(t, buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				rep := sim.Run(sim.RunConfig{
					Collector: col,
					HeapBytes: heap, PhysBytes: phys,
					Workload: src,
				})
				if rep.Err != nil {
					t.Fatalf("replay: %v", rep.Err)
				}
				if rep.ElapsedSecs != orig.ElapsedSecs {
					t.Errorf("exec time diverged: replay %.9fs, original %.9fs",
						rep.ElapsedSecs, orig.ElapsedSecs)
				}
				if !reflect.DeepEqual(rep.Mutator, orig.Mutator) {
					t.Errorf("mutator result diverged:\nreplay   %+v\noriginal %+v",
						rep.Mutator, orig.Mutator)
				}
				if !reflect.DeepEqual(rep.GCStats, orig.GCStats) {
					t.Errorf("GC stats diverged:\nreplay   %+v\noriginal %+v",
						rep.GCStats, orig.GCStats)
				}
				if !reflect.DeepEqual(rep.ProcStats, orig.ProcStats) {
					t.Errorf("process stats diverged:\nreplay   %+v\noriginal %+v",
						rep.ProcStats, orig.ProcStats)
				}
				if !reflect.DeepEqual(rep.Timeline, orig.Timeline) {
					t.Errorf("pause timeline diverged (%d vs %d pauses)",
						rep.Timeline.Count(), orig.Timeline.Count())
				}
			})
		}
	}
}

func writeFile(t *testing.T, raw []byte) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "*.gctrace")
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return f.Name()
}
