package workload

import (
	"io"
	"os"

	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
)

// Replayer drives a collector from a trace, implementing
// mutator.Workload so sim.Run and sim.RunMulti accept it anywhere the
// spec-driven generator goes. It re-issues the recorded sequence of
// collector calls — allocations, root operations, header reads, data
// reads/writes, pointer stores — so the simulated machine sees the
// identical access stream the original run produced: execution time,
// fault counts, and pause distributions reproduce bit-for-bit. Memory
// use is constant: one trace block at a time.
//
// The replayer cross-checks the trace as it goes (root slots must land
// where the recorder saw them; indices must fit the objects they touch;
// the footer totals and data checksum must match), so a divergence —
// corrupt trace or heap corruption — fails loudly instead of skewing
// measurements. Quantum semantics match mutator.Run.Step: one quantum
// unit is one allocation iteration (opStepEnd).
type Replayer struct {
	c     gc.Collector
	types mutator.Types
	rd    *Reader
	spec  mutator.Spec
	ctrs  *trace.Counters

	// closer, when set, is closed once the replay finishes or fails
	// (the file a FileSource opened).
	closer io.Closer

	err      error
	done     bool
	allocd   uint64
	nAllocs  uint64
	checksum uint64
}

// NewReplayer binds a trace stream to one collector instance. Types
// must be the standard set declared on the collector's environment.
// Counters, if enabled on the environment, receive the workload group.
func NewReplayer(rd *Reader, c gc.Collector, types mutator.Types) *Replayer {
	spec := mutator.Spec{Name: rd.Meta().Name}
	if p := rd.Meta().Program; p != nil {
		spec = *p
	}
	rp := &Replayer{c: c, types: types, rd: rd, spec: spec}
	if env := c.Env(); env != nil {
		rp.ctrs = env.Counters
		rd.Counters = env.Counters
	}
	return rp
}

// Meta returns the trace's self-description.
func (rp *Replayer) Meta() Meta { return rp.rd.Meta() }

func (rp *Replayer) fail(err error) {
	rp.err = err
	rp.finish()
}

func (rp *Replayer) finish() {
	rp.done = true
	if rp.closer != nil {
		rp.closer.Close()
		rp.closer = nil
	}
}

// Step implements mutator.Workload: it applies events until quantum
// allocation iterations complete or the trace ends. False means the
// replay is over — successfully, or with Err set.
func (rp *Replayer) Step(quantum int) bool {
	if rp.done {
		return false
	}
	steps := 0
	for steps < quantum {
		ev, err := rp.rd.next()
		if err != nil {
			rp.fail(err)
			return false
		}
		if ev.op == opEnd {
			rp.checkFooter(ev.footer)
			return false
		}
		if err := rp.apply(ev); err != nil {
			rp.fail(err)
			return false
		}
		if ev.op == opStepEnd {
			steps++
		}
	}
	return true
}

// checkFooter verifies the run totals and — for recorded traces — the
// data checksum, then finishes the replay.
func (rp *Replayer) checkFooter(f Footer) {
	switch {
	case f.Allocs != rp.nAllocs || f.Bytes != rp.allocd:
		rp.fail(corrupt("footer totals (%d allocs, %d bytes) disagree with replay (%d, %d)",
			f.Allocs, f.Bytes, rp.nAllocs, rp.allocd))
	case f.HasChecksum && f.Checksum != rp.checksum:
		// Not a framing problem: the heap returned different data than
		// the recording run read — the differential oracle tripping.
		rp.fail(corrupt("replay checksum %#x != recorded %#x (heap divergence)",
			rp.checksum, f.Checksum))
	default:
		rp.finish()
	}
}

// rootObj fetches the object a trace event addresses, rejecting slots
// the trace never populated (corruption, not a crash).
func (rp *Replayer) rootObj(slot int) (objmodel.Ref, error) {
	roots := rp.c.Roots()
	if slot < 0 || slot >= roots.Len() {
		return mem.Nil, corrupt("root slot %d out of range (%d live)", slot, roots.Len())
	}
	o := roots.Get(slot)
	if o == mem.Nil {
		return mem.Nil, corrupt("root slot %d is empty", slot)
	}
	return o, nil
}

// payloadBound returns the index bound for data accesses to o, reading
// its header exactly as the generator's dataIndexOf did (the read is
// part of the recorded access stream — it touches the header page).
func (rp *Replayer) payloadBound(o objmodel.Ref) int {
	env := rp.c.Env()
	t, n := env.Types.TypeOf(env.Space, o)
	return t.PayloadWords(n)
}

func (rp *Replayer) apply(ev event) error {
	rp.ctrs.Inc(trace.CWorkloadEventsReplayed)
	switch ev.op {
	case opAlloc:
		var o objmodel.Ref
		switch ev.kind {
		case mutator.AllocNode:
			if ev.words != 4 {
				return corrupt("node allocation of %d words", ev.words)
			}
			o = rp.c.Alloc(rp.types.Node, 0)
		case mutator.AllocDataArr:
			o = rp.c.Alloc(rp.types.DataArr, ev.words)
		case mutator.AllocRefArr:
			o = rp.c.Alloc(rp.types.RefArr, ev.words)
		}
		if ev.hasInit {
			if ev.kind == mutator.AllocRefArr || ev.initIdx >= ev.words {
				return corrupt("init write at %d outside %d-word object", ev.initIdx, ev.words)
			}
			rp.c.WriteData(o, ev.initIdx, ev.initVal)
		}
		rp.allocd += uint64(objmodel.HeaderBytes + ev.words*mem.WordSize)
		rp.nAllocs++
		rp.ctrs.Inc(trace.CWorkloadAllocsReplayed)
		switch ev.dest {
		case destAdd:
			if s := rp.c.Roots().Add(o); s != ev.destSlot {
				return corrupt("root slot divergence: trace says %d, Roots returned %d", ev.destSlot, s)
			}
		case destSet:
			if ev.destSlot < 0 || ev.destSlot >= rp.c.Roots().Len() {
				return corrupt("root set into unknown slot %d", ev.destSlot)
			}
			rp.c.Roots().Set(ev.destSlot, o)
		}
	case opWorkR, opWorkRW:
		obj, err := rp.rootObj(ev.slot)
		if err != nil {
			return err
		}
		if b := rp.payloadBound(obj); ev.readIdx >= b {
			return corrupt("work read at %d outside %d-word object", ev.readIdx, b)
		}
		v := rp.c.ReadData(obj, ev.readIdx)
		rp.checksum = rp.checksum*31 + v
		if ev.op == opWorkRW {
			if b := rp.payloadBound(obj); ev.writeIdx >= b {
				return corrupt("work write at %d outside %d-word object", ev.writeIdx, b)
			}
			rp.c.WriteData(obj, ev.writeIdx, v+1)
		}
	case opLink:
		src, err := rp.rootObj(ev.srcSlot)
		if err != nil {
			return err
		}
		dst, err := rp.rootObj(ev.dstSlot)
		if err != nil {
			return err
		}
		env := rp.c.Env()
		t, n := env.Types.TypeOf(env.Space, src)
		if ev.refIdx >= t.NumRefSlots(n) {
			return corrupt("link into ref slot %d of %d", ev.refIdx, t.NumRefSlots(n))
		}
		rp.c.WriteRef(src, ev.refIdx, dst)
	case opLinkNop:
		src, err := rp.rootObj(ev.srcSlot)
		if err != nil {
			return err
		}
		if _, err := rp.rootObj(ev.dstSlot); err != nil {
			return err
		}
		// The recorded run read the source's header (refSlots) and
		// found no reference slots; reproduce the read, store nothing.
		env := rp.c.Env()
		env.Types.TypeOf(env.Space, src)
	case opStepEnd:
	case opFree:
		rp.ctrs.Inc(trace.CWorkloadFreeHints)
	case opRelease:
		if ev.slot < 0 || ev.slot >= rp.c.Roots().Len() {
			return corrupt("release of unknown slot %d", ev.slot)
		}
		rp.c.Roots().Release(ev.slot)
	case opRootNil:
		if s := rp.c.Roots().Add(mem.Nil); s != ev.slot {
			return corrupt("root slot divergence: trace says %d, Roots returned %d", ev.slot, s)
		}
	}
	return nil
}

// Done implements mutator.Workload.
func (rp *Replayer) Done() bool { return rp.done }

// Err implements mutator.Workload: the trace failure, if any.
func (rp *Replayer) Err() error { return rp.err }

// Finish implements mutator.Workload. For recorded traces the Spec (and
// so the whole mutator.Result) matches the original run's exactly.
func (rp *Replayer) Finish() mutator.Result {
	rp.finish() // release the file even if the run died mid-replay
	return mutator.Result{
		Spec:           rp.spec,
		AllocatedBytes: rp.allocd,
		Allocations:    rp.nAllocs,
		Checksum:       rp.checksum,
	}
}

// FileSource opens a trace file per workload instantiation — the
// mutator.Source a RunConfig or runner job plugs in where a Spec would
// go. Each NewWorkload call opens its own reader, so multi-JVM runs can
// replay one file concurrently.
type FileSource struct {
	Path string
	meta Meta
}

// Open validates the file's header and captures its Meta.
func Open(path string) (*FileSource, error) {
	meta, err := ReadMeta(path)
	if err != nil {
		return nil, err
	}
	return &FileSource{Path: path, meta: meta}, nil
}

// Meta returns the trace's self-description.
func (f *FileSource) Meta() Meta { return f.meta }

// WorkloadName implements mutator.Source.
func (f *FileSource) WorkloadName() string { return f.meta.Name }

// NewWorkload implements mutator.Source. The seed is ignored: a trace
// fixes every decision the seed would have driven.
func (f *FileSource) NewWorkload(c gc.Collector, types mutator.Types, seed int64) (mutator.Workload, error) {
	fh, err := os.Open(f.Path)
	if err != nil {
		return nil, err
	}
	rd, err := NewReader(fh)
	if err != nil {
		fh.Close()
		return nil, err
	}
	rp := NewReplayer(rd, c, types)
	rp.closer = fh
	return rp, nil
}
