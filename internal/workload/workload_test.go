package workload_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"bookmarkgc/internal/sim"
	"bookmarkgc/internal/workload"
)

// synthTrace synthesizes a small trace into memory.
func synthTrace(t *testing.T, model string, allocs, live int, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := workload.Synthesize(&buf, workload.SynthParams{
		Model: model, Allocs: allocs, Live: live, Seed: seed,
	}); err != nil {
		t.Fatalf("synthesize %s: %v", model, err)
	}
	return buf.Bytes()
}

// writeTrace drops raw trace bytes into a temp file and returns its path.
func writeTrace(t *testing.T, raw []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.gctrace")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func verifyBytes(raw []byte) (*workload.Stats, error) {
	rd, err := workload.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	return workload.Verify(rd)
}

func TestSynthesizeVerify(t *testing.T) {
	for _, model := range workload.Models {
		raw := synthTrace(t, model, 5000, 300, 7)
		st, err := verifyBytes(raw)
		if err != nil {
			t.Fatalf("%s: verify: %v", model, err)
		}
		if st.Allocs != 5000 {
			t.Errorf("%s: %d allocs, want 5000 (one per iteration)", model, st.Allocs)
		}
		if st.Steps == 0 || st.Events == 0 {
			t.Errorf("%s: empty trace: %+v", model, st)
		}
		if st.Footer.HasChecksum {
			t.Errorf("%s: synthesized trace claims a data checksum", model)
		}
		if st.Meta.Source != "synth:"+model {
			t.Errorf("%s: source = %q", model, st.Meta.Source)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := synthTrace(t, "markov", 2000, 100, 42)
	b := synthTrace(t, "markov", 2000, 100, 42)
	if !bytes.Equal(a, b) {
		t.Fatal("same params produced different trace bytes")
	}
	c := synthTrace(t, "markov", 2000, 100, 43)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical trace bytes")
	}
}

func TestSynthesizeUnknownModel(t *testing.T) {
	var buf bytes.Buffer
	if err := workload.Synthesize(&buf, workload.SynthParams{Model: "nope"}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// TestSynthReplay replays each model's trace through two collectors; a
// synthesized stream must satisfy every invariant a replay enforces.
func TestSynthReplay(t *testing.T) {
	for _, model := range workload.Models {
		path := writeTrace(t, synthTrace(t, model, 5000, 300, 7))
		src, err := workload.Open(path)
		if err != nil {
			t.Fatalf("%s: open: %v", model, err)
		}
		for _, col := range []sim.CollectorKind{sim.BC, sim.GenMS} {
			r := sim.Run(sim.RunConfig{
				Collector: col,
				HeapBytes: 8 << 20, PhysBytes: 64 << 20,
				Workload: src,
			})
			if r.Err != nil {
				t.Errorf("%s under %s: %v", model, col, r.Err)
			}
			if r.Mutator.Allocations != 5000 {
				t.Errorf("%s under %s: %d allocations", model, col, r.Mutator.Allocations)
			}
		}
	}
}

func TestReadMetaAndHash(t *testing.T) {
	raw := synthTrace(t, "ramp", 1000, 50, 3)
	path := writeTrace(t, raw)
	meta, err := workload.ReadMeta(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Name != "ramp" || meta.FormatVersion != workload.Version {
		t.Fatalf("meta = %+v", meta)
	}
	h1, err := workload.HashFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", h1)
	}
	raw2 := synthTrace(t, "ramp", 1000, 50, 4)
	h2, err := workload.HashFile(writeTrace(t, raw2))
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("different traces hash equal")
	}
}

func TestTruncatedTraceFails(t *testing.T) {
	raw := synthTrace(t, "markov", 1000, 50, 1)
	for _, cut := range []int{1, 4, 5, len(raw) / 3, len(raw) - 1} {
		if cut >= len(raw) {
			continue
		}
		if _, err := verifyBytes(raw[:cut]); err == nil {
			t.Errorf("truncation at %d/%d accepted", cut, len(raw))
		}
	}
}

func TestTrailingDataFails(t *testing.T) {
	raw := synthTrace(t, "markov", 1000, 50, 1)
	if _, err := verifyBytes(append(append([]byte{}, raw...), 0x00)); err == nil {
		t.Fatal("trailing byte after the footer accepted")
	}
}

func TestEmptyAndGarbageInput(t *testing.T) {
	for _, raw := range [][]byte{nil, {0}, []byte("GCWL"), []byte("not a trace at all")} {
		if _, err := verifyBytes(raw); err == nil {
			t.Errorf("garbage input %q accepted", raw)
		}
	}
}
