package metrics

import "math"

// Geomean returns the geometric mean of xs (used for Figure 2's summary
// across benchmarks). Non-positive inputs are skipped.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
