package metrics

import (
	"math"
	"testing"
	"time"
)

// tl builds a timeline of duration total with the given pauses.
func tl(total time.Duration, pauses ...Pause) *Timeline {
	t := &Timeline{Start: 0, End: total}
	for _, p := range pauses {
		t.Record(p)
	}
	return t
}

func sec(f float64) time.Duration { return time.Duration(f * float64(time.Second)) }

func TestTimelineBasics(t *testing.T) {
	tm := tl(sec(10),
		Pause{Start: sec(1), Dur: sec(1), Kind: PauseNursery},
		Pause{Start: sec(5), Dur: sec(2), Kind: PauseFull, MajorFaults: 3},
	)
	if tm.Elapsed() != sec(10) {
		t.Fatalf("Elapsed = %v", tm.Elapsed())
	}
	if tm.TotalPause() != sec(3) {
		t.Fatalf("TotalPause = %v", tm.TotalPause())
	}
	if tm.AvgPause() != sec(1.5) {
		t.Fatalf("AvgPause = %v", tm.AvgPause())
	}
	if tm.MaxPause() != sec(2) {
		t.Fatalf("MaxPause = %v", tm.MaxPause())
	}
	if tm.MutatorTime() != sec(7) {
		t.Fatalf("MutatorTime = %v", tm.MutatorTime())
	}
	if got := tm.Utilization(); math.Abs(got-0.7) > 1e-9 {
		t.Fatalf("Utilization = %v", got)
	}
	if tm.Count() != 2 || tm.Count(PauseFull) != 1 || tm.Count(PauseNursery) != 1 || tm.Count(PauseCompact) != 0 {
		t.Fatal("Count by kind wrong")
	}
}

func TestEmptyTimeline(t *testing.T) {
	tm := tl(sec(5))
	if tm.AvgPause() != 0 || tm.MaxPause() != 0 {
		t.Fatal("empty timeline has pauses")
	}
	if tm.Utilization() != 1 {
		t.Fatalf("Utilization = %v", tm.Utilization())
	}
	if got := tm.MMU(sec(1)); got != 1 {
		t.Fatalf("MMU = %v", got)
	}
}

func TestMMU(t *testing.T) {
	// One 1s pause at t=4 in a 10s run.
	tm := tl(sec(10), Pause{Start: sec(4), Dur: sec(1)})
	// A window of exactly the pause length can be fully paused.
	if got := tm.MMU(sec(1)); got != 0 {
		t.Fatalf("MMU(1s) = %v, want 0", got)
	}
	// A 2s window can at worst contain the whole 1s pause: 50%.
	if got := tm.MMU(sec(2)); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("MMU(2s) = %v, want 0.5", got)
	}
	// The whole run: 90%.
	if got := tm.MMU(sec(10)); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("MMU(10s) = %v, want 0.9", got)
	}
	// Windows larger than the run degrade to overall utilization.
	if got := tm.MMU(sec(20)); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("MMU(20s) = %v", got)
	}
}

func TestMMUAdjacentPauses(t *testing.T) {
	// Two 1s pauses with a 1s gap: a 3s window catches both.
	tm := tl(sec(20),
		Pause{Start: sec(5), Dur: sec(1)},
		Pause{Start: sec(7), Dur: sec(1)},
	)
	if got := tm.MMU(sec(3)); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("MMU(3s) = %v, want 1/3", got)
	}
}

func TestBMUMonotone(t *testing.T) {
	tm := tl(sec(30),
		Pause{Start: sec(2), Dur: sec(1)},
		Pause{Start: sec(10), Dur: sec(3)},
		Pause{Start: sec(20), Dur: time.Millisecond * 500},
	)
	prev := -1.0
	for _, w := range []time.Duration{sec(0.5), sec(1), sec(2), sec(5), sec(10), sec(30)} {
		got := tm.BMU(w)
		if got < prev-1e-9 {
			t.Fatalf("BMU not monotone at %v: %v < %v", w, got, prev)
		}
		if got < 0 || got > 1 {
			t.Fatalf("BMU out of range: %v", got)
		}
		prev = got
	}
	// BMU is a lower envelope of MMU.
	for _, w := range []time.Duration{sec(1), sec(4), sec(12)} {
		if tm.BMU(w) > tm.MMU(w)+1e-9 {
			t.Fatalf("BMU(%v) exceeds MMU", w)
		}
	}
}

func TestBMUCurveShape(t *testing.T) {
	tm := tl(sec(10), Pause{Start: sec(4), Dur: sec(1)})
	curve := tm.BMUCurve(sec(0.1), sec(10), 8)
	if len(curve) != 8 {
		t.Fatalf("curve has %d points", len(curve))
	}
	if curve[0][1] != 0 {
		t.Fatalf("BMU at small window = %v, want 0", curve[0][1])
	}
	last := curve[len(curve)-1]
	if math.Abs(last[1]-0.9) > 0.01 {
		t.Fatalf("BMU at full window = %v, want ~0.9", last[1])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i][0] <= curve[i-1][0] {
			t.Fatal("windows not increasing")
		}
	}
}

func TestPercentile(t *testing.T) {
	var tm Timeline
	for i := 1; i <= 100; i++ {
		tm.Record(Pause{Dur: time.Duration(i) * time.Millisecond})
	}
	if got := tm.Percentile(0); got != time.Millisecond {
		t.Fatalf("p0 = %v", got)
	}
	if got := tm.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	mid := tm.Percentile(50)
	if mid < 49*time.Millisecond || mid > 52*time.Millisecond {
		t.Fatalf("p50 = %v", mid)
	}
}

func TestPercentileEmpty(t *testing.T) {
	var tm Timeline
	if got := tm.Percentile(99); got != 0 {
		t.Fatalf("Percentile on empty = %v", got)
	}
	if got := tm.AvgPause(); got != 0 {
		t.Fatalf("AvgPause on empty = %v", got)
	}
	if got := tm.PercentileKind(PauseFull, 50); got != 0 {
		t.Fatalf("PercentileKind on empty = %v", got)
	}
	// A timeline with pauses of only one kind still yields 0 for others.
	tm.Record(Pause{Dur: time.Second, Kind: PauseNursery})
	if got := tm.PercentileKind(PauseFull, 50); got != 0 {
		t.Fatalf("PercentileKind with no matching kind = %v", got)
	}
}

func TestPercentileKind(t *testing.T) {
	var tm Timeline
	for i := 1; i <= 10; i++ {
		tm.Record(Pause{Dur: time.Duration(i) * time.Millisecond, Kind: PauseNursery})
	}
	for i := 1; i <= 10; i++ {
		tm.Record(Pause{Dur: time.Duration(i) * time.Second, Kind: PauseFull})
	}
	if got := tm.PercentileKind(PauseNursery, 100); got != 10*time.Millisecond {
		t.Fatalf("nursery p100 = %v", got)
	}
	if got := tm.PercentileKind(PauseFull, 0); got != time.Second {
		t.Fatalf("full p0 = %v", got)
	}
	// The unfiltered percentile sees both populations.
	if got := tm.Percentile(100); got != 10*time.Second {
		t.Fatalf("p100 = %v", got)
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("Geomean(2,8) = %v", got)
	}
	if got := Geomean([]float64{5}); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Geomean(5) = %v", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Fatalf("Geomean(nil) = %v", got)
	}
	// Non-positive values are skipped.
	if got := Geomean([]float64{0, -1, 3}); math.Abs(got-3) > 1e-9 {
		t.Fatalf("Geomean with junk = %v", got)
	}
}

func TestPauseKindString(t *testing.T) {
	if PauseNursery.String() != "nursery" || PauseFull.String() != "full" ||
		PauseCompact.String() != "compact" {
		t.Fatal("PauseKind strings wrong")
	}
}
