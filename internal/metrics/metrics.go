// Package metrics records and summarizes the quantities the paper
// reports: garbage-collection pause times, execution times, page-fault
// counts, and bounded mutator utilization (BMU) curves.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// PauseKind classifies a stop-the-world pause.
type PauseKind uint8

const (
	// PauseNursery is a minor (nursery) collection.
	PauseNursery PauseKind = iota
	// PauseFull is a major (full-heap) collection.
	PauseFull
	// PauseCompact is a full collection that also compacted the heap.
	PauseCompact
)

func (k PauseKind) String() string {
	switch k {
	case PauseNursery:
		return "nursery"
	case PauseFull:
		return "full"
	case PauseCompact:
		return "compact"
	}
	return "invalid"
}

// Pause is one stop-the-world interval in simulated time.
type Pause struct {
	Start       time.Duration
	Dur         time.Duration
	Kind        PauseKind
	MajorFaults uint64 // faults taken during the pause
}

// Timeline accumulates a run's pauses and endpoints.
type Timeline struct {
	Pauses []Pause
	Start  time.Duration
	End    time.Duration
}

// Record appends a pause.
func (t *Timeline) Record(p Pause) { t.Pauses = append(t.Pauses, p) }

// Elapsed returns total run time.
func (t *Timeline) Elapsed() time.Duration { return t.End - t.Start }

// TotalPause returns the summed pause time.
func (t *Timeline) TotalPause() time.Duration {
	var s time.Duration
	for _, p := range t.Pauses {
		s += p.Dur
	}
	return s
}

// AvgPause returns the mean pause, or 0 with no pauses.
func (t *Timeline) AvgPause() time.Duration {
	if len(t.Pauses) == 0 {
		return 0
	}
	return t.TotalPause() / time.Duration(len(t.Pauses))
}

// MaxPause returns the longest pause.
func (t *Timeline) MaxPause() time.Duration {
	var m time.Duration
	for _, p := range t.Pauses {
		if p.Dur > m {
			m = p.Dur
		}
	}
	return m
}

// Count returns the number of pauses of the given kinds (all if none
// given).
func (t *Timeline) Count(kinds ...PauseKind) int {
	if len(kinds) == 0 {
		return len(t.Pauses)
	}
	n := 0
	for _, p := range t.Pauses {
		for _, k := range kinds {
			if p.Kind == k {
				n++
			}
		}
	}
	return n
}

// MutatorTime returns elapsed time minus pause time.
func (t *Timeline) MutatorTime() time.Duration {
	return t.Elapsed() - t.TotalPause()
}

// Utilization returns the fraction of the run spent in the mutator.
func (t *Timeline) Utilization() float64 {
	e := t.Elapsed()
	if e <= 0 {
		return 1
	}
	return float64(t.MutatorTime()) / float64(e)
}

// String summarizes a timeline.
func (t *Timeline) String() string {
	return fmt.Sprintf("elapsed=%v pauses=%d avg=%v max=%v util=%.3f",
		t.Elapsed(), len(t.Pauses), t.AvgPause(), t.MaxPause(), t.Utilization())
}

// MMU returns the minimum mutator utilization for windows of size w:
// the worst-case fraction of any window of length w spent in the mutator
// (Cheng & Blelloch). BMU is its monotone closure.
func (t *Timeline) MMU(w time.Duration) float64 {
	if w <= 0 {
		return 0
	}
	total := t.Elapsed()
	if w >= total {
		if total <= 0 {
			return 1
		}
		return float64(total-t.TotalPause()) / float64(total)
	}
	// Candidate worst windows start/end at pause boundaries. Evaluate
	// windows starting at each pause start and ending at each pause end.
	worst := 1.0
	eval := func(start time.Duration) {
		if start < t.Start {
			start = t.Start
		}
		if start+w > t.End {
			start = t.End - w
		}
		end := start + w
		var paused time.Duration
		for _, p := range t.Pauses {
			ps, pe := p.Start, p.Start+p.Dur
			if pe <= start || ps >= end {
				continue
			}
			if ps < start {
				ps = start
			}
			if pe > end {
				pe = end
			}
			paused += pe - ps
		}
		if u := float64(w-paused) / float64(w); u < worst {
			worst = u
		}
	}
	eval(t.Start)
	for _, p := range t.Pauses {
		eval(p.Start)
		eval(p.Start + p.Dur - w)
	}
	return worst
}

// BMU returns the bounded mutator utilization at window w: the minimum
// MMU over all windows of size w or greater (Sachindran et al., used in
// the paper's Figure 6). BMU is monotonically non-decreasing in w.
func (t *Timeline) BMU(w time.Duration) float64 {
	// MMU is not monotone, but its running minimum from the largest
	// window down is. Evaluate on a geometric grid from total time down
	// to w; the grid resolution is plenty for plotting.
	total := t.Elapsed()
	if w >= total {
		return t.MMU(total)
	}
	best := 1.0
	for win := total; win >= w; win = win * 9 / 10 {
		if u := t.MMU(win); u < best {
			best = u
		}
		if win == w {
			break
		}
		if win*9/10 < w {
			win = w * 10 / 9 // force final iteration at exactly w
		}
	}
	if u := t.MMU(w); u < best {
		best = u
	}
	return best
}

// BMUCurve samples the BMU at logarithmically spaced windows from lo to
// hi (inclusive endpoints), returning (window, utilization) pairs.
func (t *Timeline) BMUCurve(lo, hi time.Duration, points int) [][2]float64 {
	if points < 2 {
		points = 2
	}
	out := make([][2]float64, 0, points)
	ratio := float64(hi) / float64(lo)
	for i := 0; i < points; i++ {
		w := time.Duration(float64(lo) * math.Pow(ratio, float64(i)/float64(points-1)))
		out = append(out, [2]float64{w.Seconds(), t.BMU(w)})
	}
	return out
}

// Percentile returns the p-th percentile pause. p is clamped to
// [0, 100]; between sorted samples the value is linearly interpolated
// rather than truncated to the lower neighbour. Returns 0 with no
// pauses.
func (t *Timeline) Percentile(p float64) time.Duration {
	ds := make([]time.Duration, len(t.Pauses))
	for i, pa := range t.Pauses {
		ds[i] = pa.Dur
	}
	return percentileOf(ds, p)
}

// PercentileKind is Percentile restricted to pauses of one kind; it
// feeds the per-kind rows of the attribution report. Returns 0 when no
// pause of that kind occurred.
func (t *Timeline) PercentileKind(kind PauseKind, p float64) time.Duration {
	var ds []time.Duration
	for _, pa := range t.Pauses {
		if pa.Kind == kind {
			ds = append(ds, pa.Dur)
		}
	}
	return percentileOf(ds, p)
}

// percentileOf computes the linearly interpolated p-th percentile of ds
// (consumed: ds is sorted in place). Empty input yields 0.
func percentileOf(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 100 {
		p = 100
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	pos := p / 100 * float64(len(ds)-1)
	lo := int(pos)
	if lo >= len(ds)-1 {
		return ds[len(ds)-1]
	}
	frac := pos - float64(lo)
	return ds[lo] + time.Duration(frac*float64(ds[lo+1]-ds[lo]))
}
