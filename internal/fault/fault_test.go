package fault_test

import (
	"testing"

	"bookmarkgc/internal/collectors"
	"bookmarkgc/internal/fault"
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/vmm"
)

func TestByNameCoversEveryRegime(t *testing.T) {
	for _, name := range fault.Regimes() {
		cfg, ok := fault.ByName(name, 7)
		if !ok {
			t.Fatalf("ByName(%q) not found despite being listed", name)
		}
		if cfg.Seed != 7 {
			t.Fatalf("ByName(%q) dropped the seed: %+v", name, cfg)
		}
	}
	if _, ok := fault.ByName("zap", 1); ok {
		t.Fatal("ByName accepted an unknown regime")
	}
}

// TestInterposeWithoutHandler runs a non-cooperative collector — which
// registers no vmm.Handler — under an armed injector and eviction
// pressure. There is no notification stream to corrupt, so nothing may
// panic and the injector must see zero traffic.
func TestInterposeWithoutHandler(t *testing.T) {
	clock := vmm.NewClock()
	v := vmm.New(clock, 16<<20, vmm.DefaultCosts())
	env := gc.NewEnv(v, "t", 6<<20)
	col := collectors.NewMarkSweep(env)
	types := mutator.DeclareTypes(env)
	cfg, _ := fault.ByName("drop", 1)
	inj := fault.Interpose(env.Proc, cfg, nil)
	run := mutator.NewRun(mutator.PseudoJBB().Scale(0.01), col, types, 1)
	if extra := v.FreeFrames() - 512; extra > 0 {
		v.Pin(extra)
	}
	for run.Step(256) {
		inj.Safepoint()
	}
	if s := inj.Stats(); s.EvictsSeen != 0 || s.ReloadsSeen != 0 {
		t.Fatalf("injector saw notifications with no handler registered: %v", s)
	}
}

// recHandler records the notification stream it receives.
type recHandler struct {
	evicts  []mem.PageID
	reloads []mem.PageID
}

func (r *recHandler) EvictionScheduled(p mem.PageID)    { r.evicts = append(r.evicts, p) }
func (r *recHandler) PageReloaded(p mem.PageID, _ bool) { r.reloads = append(r.reloads, p) }

// driveStream feeds a fixed synthetic notification sequence through an
// injector with every probabilistic fault armed, returning what came out
// the other side.
func driveStream(seed int64) (evicts, reloads []mem.PageID, stats fault.Stats) {
	clock := vmm.NewClock()
	v := vmm.New(clock, 8<<20, vmm.DefaultCosts())
	env := gc.NewEnv(v, "t", 4<<20)
	rec := &recHandler{}
	env.Proc.Register(rec)
	inj := fault.Interpose(env.Proc, fault.Config{
		Seed:      seed,
		DropEvict: 0.3, DropReload: 0.2, DelayEvict: 0.2, DupEvict: 0.2,
		ReorderProb: 0.3, ReorderDepth: 3,
		StormProb: 0.4, StormReloads: 2,
	}, nil)
	for i := 0; i < 500; i++ {
		inj.EvictionScheduled(mem.PageID(i % 64))
		if i%7 == 0 {
			inj.PageReloaded(mem.PageID(i%64), true)
		}
		if i%50 == 49 {
			inj.Safepoint()
		}
	}
	inj.Safepoint()
	return rec.evicts, rec.reloads, inj.Stats()
}

// TestInjectorDeterministic replays the same seed over the same stream
// and requires the corrupted output — order included — to be identical.
func TestInjectorDeterministic(t *testing.T) {
	e1, r1, s1 := driveStream(42)
	e2, r2, s2 := driveStream(42)
	if s1 != s2 {
		t.Fatalf("stats diverged across replays:\n%v\n%v", s1, s2)
	}
	if len(e1) != len(e2) || len(r1) != len(r2) {
		t.Fatalf("stream lengths diverged: %d/%d vs %d/%d", len(e1), len(r1), len(e2), len(r2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("evict %d diverged: %d vs %d", i, e1[i], e2[i])
		}
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("reload %d diverged: %d vs %d", i, r1[i], r2[i])
		}
	}
	if s1.EvictsDropped == 0 || s1.EvictsDelayed == 0 || s1.EvictsDuplicated == 0 ||
		s1.EvictsReordered == 0 || s1.ReloadsDropped == 0 || s1.SpuriousReloads == 0 {
		t.Fatalf("a configured fault never fired over 500 notifications: %v", s1)
	}
}

// TestMuteSuppressesEverything checks the uncooperative-kernel mode
// delivers nothing at all.
func TestMuteSuppressesEverything(t *testing.T) {
	clock := vmm.NewClock()
	v := vmm.New(clock, 8<<20, vmm.DefaultCosts())
	env := gc.NewEnv(v, "t", 4<<20)
	rec := &recHandler{}
	env.Proc.Register(rec)
	inj := fault.Interpose(env.Proc, fault.Config{Mute: true}, nil)
	for i := 0; i < 100; i++ {
		inj.EvictionScheduled(mem.PageID(i))
		inj.PageReloaded(mem.PageID(i), true)
	}
	inj.Safepoint()
	if len(rec.evicts) != 0 || len(rec.reloads) != 0 {
		t.Fatalf("muted injector delivered %d evicts, %d reloads", len(rec.evicts), len(rec.reloads))
	}
	if s := inj.Stats(); s.Muted != 200 {
		t.Fatalf("Muted = %d, want 200", s.Muted)
	}
}
