package fault

import (
	"testing"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/vmm"
)

// recorder captures which notifications survive the injector.
type recorder struct {
	evicts  []mem.PageID
	reloads []mem.PageID
}

func (r *recorder) EvictionScheduled(p mem.PageID)      { r.evicts = append(r.evicts, p) }
func (r *recorder) PageReloaded(p mem.PageID, was bool) { r.reloads = append(r.reloads, p) }

// schedule plays a fixed notification stream through an injector seeded
// for one tenant and returns the indices of evictions that got through.
func schedule(t *testing.T, chaosSeed int64, tenant int) []mem.PageID {
	t.Helper()
	c := vmm.NewClock()
	v := vmm.New(c, 256*mem.PageSize, vmm.DefaultCosts())
	p := v.NewProc("t", 64*mem.PageSize)
	rec := &recorder{}
	p.Register(rec)
	cfg, ok := ByName("drop", TenantSeed(chaosSeed, tenant))
	if !ok {
		t.Fatal("regime missing")
	}
	inj := Interpose(p, cfg, nil)
	for k := 0; k < 200; k++ {
		inj.EvictionScheduled(mem.PageID(k % 64))
	}
	inj.Safepoint()
	return rec.evicts
}

func equalPages(a, b []mem.PageID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTenantSchedulesIndependent: two tenants under the same fleet
// chaos-seed must see different fault schedules, and each tenant's
// schedule must replay bit-identically.
func TestTenantSchedulesIndependent(t *testing.T) {
	const chaosSeed = 42
	s0 := schedule(t, chaosSeed, 0)
	s1 := schedule(t, chaosSeed, 1)
	if equalPages(s0, s1) {
		t.Fatalf("tenants 0 and 1 share a fault schedule under chaos-seed %d", chaosSeed)
	}
	if !equalPages(s0, schedule(t, chaosSeed, 0)) {
		t.Fatal("tenant 0 schedule not reproducible")
	}
	if !equalPages(s1, schedule(t, chaosSeed, 1)) {
		t.Fatal("tenant 1 schedule not reproducible")
	}
}

// TestTenantSeedAvalanche: adjacent chaos seeds and adjacent tenants must
// not produce clustered seeds (the failure mode of seed+tenant).
func TestTenantSeedAvalanche(t *testing.T) {
	seen := make(map[int64]bool)
	for s := int64(0); s < 8; s++ {
		for tn := 0; tn < 32; tn++ {
			d := TenantSeed(s, tn)
			if seen[d] {
				t.Fatalf("collision: TenantSeed(%d,%d)=%d already produced", s, tn, d)
			}
			seen[d] = true
		}
	}
	// Consecutive tenants must differ in many bits, not just the low ones.
	a, b := TenantSeed(7, 0), TenantSeed(7, 1)
	diff := 0
	for x := uint64(a) ^ uint64(b); x != 0; x &= x - 1 {
		diff++
	}
	if diff < 16 {
		t.Fatalf("TenantSeed(7,0) and TenantSeed(7,1) differ in only %d bits", diff)
	}
}
