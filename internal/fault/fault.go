// Package fault injects kernel misbehaviour into the VM-cooperation
// protocol. The paper's design (§3.3–3.5) assumes an asynchronous,
// adversarial virtual memory manager: eviction notifications can arrive
// mid-operation, late, or — on an unmodified kernel — not at all, and BC
// is required to stay complete and merely degrade. The Injector
// interposes on a process's vmm.Handler and, driven by a seeded PRNG
// consumed only at simulated-event points, can
//
//   - drop eviction or reload notifications (the page still moves; the
//     runtime just never hears about it — a lost signal);
//   - delay eviction notifications until the next safepoint, so they
//     arrive after the kernel has already acted on the page;
//   - duplicate and reorder eviction notifications (queued real-time
//     signals on a loaded kernel);
//   - mute everything (uncooperative-kernel mode, the paper's "no VM
//     support" fallback);
//   - forge reload-notification storms for random pages;
//   - spike memory pressure on a schedule, like a burst-mode signalmem.
//
// Runs are deterministic: the PRNG is seeded from Config.Seed and only
// advanced at points fixed by the simulated execution, so the same
// (program, seed, regime, chaos-seed) tuple replays bit-identically.
package fault

import (
	"fmt"
	"math/rand"
	"time"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/trace"
	"bookmarkgc/internal/vmm"
)

// Config describes one fault regime. Probabilities are per notification;
// zero values mean the corresponding fault is off.
type Config struct {
	// Seed drives the injector's PRNG.
	Seed int64

	// DropEvict is the probability an eviction notification is swallowed
	// (the VMM then evicts the page with the runtime none the wiser).
	DropEvict float64
	// DropReload is the probability a reload notification is swallowed.
	DropReload float64
	// DelayEvict is the probability an eviction notification is held and
	// delivered at the next safepoint — after the eviction has happened.
	DelayEvict float64
	// DupEvict is the probability an eviction notification is delivered
	// twice back to back.
	DupEvict float64
	// ReorderProb buffers eviction notifications (up to ReorderDepth)
	// and delivers them in shuffled order.
	ReorderProb  float64
	ReorderDepth int
	// StormProb triggers, after a genuine reload, a burst of
	// StormReloads forged reload notifications for random pages.
	StormProb    float64
	StormReloads int
	// Mute suppresses every notification: the uncooperative kernel.
	Mute bool
	// SpikePeriod, when positive, pins SpikeFrac of the machine every
	// period and releases it after SpikeHold (default period/2).
	SpikePeriod time.Duration
	SpikeHold   time.Duration
	SpikeFrac   float64
}

// TenantSeed derives tenant t's injector seed from a fleet-wide chaos
// seed with a splitmix64-style finalizer. Seeding each tenant's PRNG
// with `seed+t` would correlate fault schedules across the fleet (linear
// seeds land in nearby PRNG streams); the avalanche mix makes every
// tenant's schedule statistically independent while keeping the whole
// fleet reproducible from the single chaos seed.
func TenantSeed(chaosSeed int64, tenant int) int64 {
	z := uint64(chaosSeed) + 0x9e3779b97f4a7c15*uint64(tenant+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Regimes lists the named fault regimes, in documentation order.
func Regimes() []string {
	return []string{"drop", "delay", "duplicate", "reorder", "no-notify", "reload-storm", "thrash"}
}

// ByName returns the Config for a named regime with the given seed; ok is
// false for an unknown name.
func ByName(name string, seed int64) (Config, bool) {
	c := Config{Seed: seed}
	switch name {
	case "drop":
		c.DropEvict, c.DropReload = 0.5, 0.3
	case "delay":
		c.DelayEvict = 0.6
	case "duplicate":
		c.DupEvict = 0.5
	case "reorder":
		c.ReorderProb, c.ReorderDepth = 0.6, 4
	case "no-notify":
		c.Mute = true
	case "reload-storm":
		c.StormProb, c.StormReloads = 0.5, 3
	case "thrash":
		c.SpikePeriod = 10 * time.Millisecond
		c.SpikeHold = 5 * time.Millisecond
		c.SpikeFrac = 0.2
		c.DropEvict = 0.2
	default:
		return Config{}, false
	}
	return c, true
}

// Stats counts what the injector did to the notification stream. Replays
// with the same seeds must reproduce these exactly.
type Stats struct {
	EvictsSeen       uint64
	EvictsDropped    uint64
	EvictsDelayed    uint64
	EvictsDuplicated uint64
	EvictsReordered  uint64
	ReloadsSeen      uint64
	ReloadsDropped   uint64
	SpuriousReloads  uint64
	Muted            uint64
	Spikes           uint64
}

// String renders the non-zero fields compactly for run summaries.
func (s Stats) String() string {
	return fmt.Sprintf(
		"evicts=%d (dropped=%d delayed=%d dup=%d reordered=%d) reloads=%d (dropped=%d spurious=%d) muted=%d spikes=%d",
		s.EvictsSeen, s.EvictsDropped, s.EvictsDelayed, s.EvictsDuplicated, s.EvictsReordered,
		s.ReloadsSeen, s.ReloadsDropped, s.SpuriousReloads, s.Muted, s.Spikes)
}

// Injector sits between the VMM and a process's registered handler,
// mutating the notification stream per its Config. It implements
// vmm.Handler.
type Injector struct {
	cfg      Config
	rng      *rand.Rand
	inner    vmm.Handler
	proc     *vmm.Proc
	counters *trace.Counters
	stats    Stats

	delayed []mem.PageID // evictions held for the next safepoint
	buffer  []mem.PageID // evictions held for shuffled delivery
}

var _ vmm.Handler = (*Injector)(nil)

// Interpose wraps p's registered handler with a fault injector and
// re-registers. When p has no handler (a non-cooperative collector) no
// interposition happens — there is no notification stream to corrupt —
// but the returned Injector can still drive pressure spikes. counters may
// be nil.
func Interpose(p *vmm.Proc, cfg Config, counters *trace.Counters) *Injector {
	inj := &Injector{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		inner:    p.Handler(),
		proc:     p,
		counters: counters,
	}
	if inj.inner != nil {
		p.Register(inj)
	}
	return inj
}

// Stats returns a copy of the injection counts so far.
func (i *Injector) Stats() Stats { return i.stats }

// roll consumes one PRNG draw iff prob is positive.
func (i *Injector) roll(prob float64) bool {
	return prob > 0 && i.rng.Float64() < prob
}

// EvictionScheduled implements vmm.Handler.
func (i *Injector) EvictionScheduled(p mem.PageID) {
	i.stats.EvictsSeen++
	switch {
	case i.cfg.Mute:
		i.stats.Muted++
		i.counters.Inc(trace.CChaosMuted)
	case i.roll(i.cfg.DropEvict):
		i.stats.EvictsDropped++
		i.counters.Inc(trace.CChaosEvictsDropped)
	case i.roll(i.cfg.DelayEvict):
		i.stats.EvictsDelayed++
		i.counters.Inc(trace.CChaosEvictsDelayed)
		i.delayed = append(i.delayed, p)
	case i.cfg.ReorderDepth > 1 && i.roll(i.cfg.ReorderProb):
		i.stats.EvictsReordered++
		i.counters.Inc(trace.CChaosEvictsReordered)
		i.buffer = append(i.buffer, p)
		if len(i.buffer) >= i.cfg.ReorderDepth {
			i.flushReordered()
		}
	default:
		i.inner.EvictionScheduled(p)
		if i.roll(i.cfg.DupEvict) {
			i.stats.EvictsDuplicated++
			i.counters.Inc(trace.CChaosEvictsDuplicated)
			i.inner.EvictionScheduled(p)
		}
	}
}

// PageReloaded implements vmm.Handler.
func (i *Injector) PageReloaded(p mem.PageID, wasEvicted bool) {
	i.stats.ReloadsSeen++
	switch {
	case i.cfg.Mute:
		i.stats.Muted++
		i.counters.Inc(trace.CChaosMuted)
	case i.roll(i.cfg.DropReload):
		i.stats.ReloadsDropped++
		i.counters.Inc(trace.CChaosReloadsDropped)
	default:
		i.inner.PageReloaded(p, wasEvicted)
		if i.cfg.StormReloads > 0 && i.roll(i.cfg.StormProb) {
			n := i.proc.Space().Pages()
			for k := 0; k < i.cfg.StormReloads; k++ {
				q := mem.PageID(i.rng.Intn(n))
				i.stats.SpuriousReloads++
				i.counters.Inc(trace.CChaosSpuriousReloads)
				i.inner.PageReloaded(q, i.rng.Intn(2) == 0)
			}
		}
	}
}

// Safepoint delivers the notifications the injector has been holding back
// (delay and reorder faults). Drivers call it between mutator quanta: the
// paper's notifications are queueable signals, and a held-up signal lands
// when the process next runs — by which time the kernel has already acted
// on the page, so the runtime sees a stale notification.
func (i *Injector) Safepoint() {
	if len(i.delayed) > 0 {
		// Delivery can re-enter the injector (processing a stale eviction
		// may fault pages and trigger reclaim); detach the batch first so
		// re-entrant holds land in a fresh slice for the next safepoint.
		batch := i.delayed
		i.delayed = nil
		for _, p := range batch {
			i.inner.EvictionScheduled(p)
		}
	}
	if len(i.buffer) > 0 {
		i.flushReordered()
	}
}

// flushReordered delivers the reorder buffer in PRNG-shuffled order.
func (i *Injector) flushReordered() {
	batch := i.buffer
	i.buffer = nil
	for _, k := range i.rng.Perm(len(batch)) {
		i.inner.EvictionScheduled(batch[k])
	}
}

// StartSpikes arms the pressure-spike schedule on the machine's clock:
// every SpikePeriod, SpikeFrac of the machine's frames are pinned and
// released SpikeHold later. The schedule recurs for the whole run.
func (i *Injector) StartSpikes(v *vmm.VMM) {
	if i.cfg.SpikePeriod <= 0 || i.cfg.SpikeFrac <= 0 {
		return
	}
	frames := int(i.cfg.SpikeFrac * float64(v.TotalFrames()))
	if frames < 1 {
		frames = 1
	}
	hold := i.cfg.SpikeHold
	if hold <= 0 || hold >= i.cfg.SpikePeriod {
		hold = i.cfg.SpikePeriod / 2
	}
	var spike func()
	spike = func() {
		i.stats.Spikes++
		i.counters.Inc(trace.CChaosPressureSpikes)
		v.Pin(frames)
		v.Clock.Schedule(v.Clock.Now()+hold, func() { v.Unpin(frames) })
		v.Clock.Schedule(v.Clock.Now()+i.cfg.SpikePeriod, spike)
	}
	v.Clock.Schedule(v.Clock.Now()+i.cfg.SpikePeriod, spike)
}
