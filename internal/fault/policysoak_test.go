package fault_test

// The heap-limit policy soak (DESIGN.md §14): run BC under eviction-storm
// and mute chaos with each pluggable policy installed, auditing the
// collector's books with CheckInvariants after every collection and
// pinning the policy's limit trajectory against the mark-worker count.
// The policies only move the heap target — never object state — so the
// mutator checksum oracle and the invariant audit must hold under every
// (policy, regime) pair, and the limit trajectory must be bit-identical
// for any parallel-mark configuration.

import (
	"testing"

	"bookmarkgc/internal/core"
	"bookmarkgc/internal/fault"
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/vmm"
)

// policyProgram is the policy soak's workload: the acceptance soak's
// pseudoJBB mix at a lighter scale. The policy matrix multiplies every
// run by (policies × regimes × mark-worker counts), so each run is
// trimmed to keep the whole package inside go test's default timeout;
// the chaos schedules and pressure setup are the acceptance soak's own.
func policyProgram() mutator.Spec { return mutator.PseudoJBB().Scale(0.025) }

// policyNominalChecksum runs policyProgram chaos-free: the oracle every
// (policy, regime) soak's checksum must reproduce.
func policyNominalChecksum(t *testing.T, workSeed int64) uint64 {
	t.Helper()
	clock := vmm.NewClock()
	v := vmm.New(clock, soakPhysBytes, vmm.DefaultCosts())
	env := gc.NewEnv(v, "nominal", soakHeapBytes)
	types := mutator.DeclareTypes(env)
	c := core.New(env, core.Config{})
	run := mutator.NewRun(policyProgram(), c, types, workSeed)
	if extra := v.FreeFrames() - soakKeepFrames; extra > 0 {
		v.Pin(extra)
	}
	return run.RunToCompletion().Checksum
}

// policyOutcome is everything one policy soak run measures.
type policyOutcome struct {
	checksum uint64
	gcs      int
	invErr   error
	faults   fault.Stats
	// limits is the heap-limit trajectory: env.HeapLimitPages() after
	// every collection, in collection order.
	limits []int
}

// runPolicySoak executes the soak program on BC under the named fault
// regime with the named heap policy installed ("" keeps BC's built-in
// bc-shrink default), invariants audited after every collection.
// markWorkers overrides the parallel mark engine when positive.
func runPolicySoak(t *testing.T, regime, policy string, chaosSeed, workSeed int64, markWorkers int) policyOutcome {
	t.Helper()
	clock := vmm.NewClock()
	v := vmm.New(clock, soakPhysBytes, vmm.DefaultCosts())
	env := gc.NewEnv(v, "policysoak", soakHeapBytes)
	if markWorkers > 0 {
		env.MarkWorkers = markWorkers
	}
	if policy != "" {
		pol, err := heappolicy.New(policy, heappolicy.Options{})
		if err != nil {
			t.Fatalf("heappolicy.New(%q): %v", policy, err)
		}
		env.HeapPolicy = pol
	}
	types := mutator.DeclareTypes(env)
	c := core.New(env, core.Config{})
	cfg, ok := fault.ByName(regime, chaosSeed)
	if !ok {
		t.Fatalf("unknown regime %q", regime)
	}
	inj := fault.Interpose(env.Proc, cfg, nil)
	inj.StartSpikes(v)

	var out policyOutcome
	c.OnCollectionEnd(func() {
		out.gcs++
		if err := c.CheckInvariants(); err != nil && out.invErr == nil {
			out.invErr = err
		}
		out.limits = append(out.limits, env.HeapLimitPages())
	})

	run := mutator.NewRun(policyProgram(), c, types, workSeed)
	if extra := v.FreeFrames() - soakKeepFrames; extra > 0 {
		v.Pin(extra)
	}
	for run.Step(soakQuantum) {
		inj.Safepoint()
	}
	inj.Safepoint()
	mres := run.Finish()
	c.Collect(true)

	out.checksum = mres.Checksum
	out.faults = inj.Stats()
	return out
}

// policyRegimes are the required chaos schedules: an eviction storm
// (reload-storm), sustained thrash, and the mute regime (no-notify)
// where pressure-sensitive policies hear nothing. -short trims to the
// storm alone, like the acceptance soak's seed matrix.
func policyRegimes() []string {
	all := []string{"reload-storm", "thrash", "no-notify"}
	if testing.Short() {
		return all[:1]
	}
	return all
}

// TestPolicySoakAllRegimes drives every heap-limit policy through the
// eviction-storm and mute regimes: invariants must hold after every
// collection and the checksum oracle must match a chaos-free nominal
// run — a policy may move the heap target, never corrupt the heap.
func TestPolicySoakAllRegimes(t *testing.T) {
	const workSeed = 1
	base := policyNominalChecksum(t, workSeed)
	// Every run builds its own clock/VMM/env (concurrent instances are
	// the runner's normal mode), so the matrix runs as parallel
	// subtests — required to keep the package inside the default
	// go test timeout on top of the acceptance soak.
	for _, policy := range heappolicy.Names() {
		for _, regime := range policyRegimes() {
			t.Run(policy+"/"+regime, func(t *testing.T) {
				t.Parallel()
				out := runPolicySoak(t, regime, policy, 100+workSeed, workSeed, 0)
				if out.invErr != nil {
					t.Fatalf("%s: invariants violated after a collection: %v", regime, out.invErr)
				}
				if out.gcs == 0 {
					t.Fatalf("%s: the soak never collected — not a soak", regime)
				}
				if out.checksum != base {
					t.Fatalf("%s: checksum %#x != nominal %#x — policy+chaos corrupted the heap (faults: %v)",
						regime, out.checksum, base, out.faults)
				}
			})
		}
	}
}

// TestPolicyShrinksUnderStormRegrowsWhenMuted spot-checks that the soak
// actually exercises the control loops: under the eviction storm the
// pressure-sensitive policies must shrink the limit below the
// configured heap at least once, while fixed must never move.
func TestPolicyShrinksUnderStormRegrowsWhenMuted(t *testing.T) {
	heapPages := int(soakHeapBytes / mem.PageSize)
	shrunk := func(limits []int) bool {
		for _, l := range limits {
			if l < heapPages {
				return true
			}
		}
		return false
	}
	for _, policy := range []string{"bc-shrink", "composed"} {
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			out := runPolicySoak(t, "reload-storm", policy, 101, 1, 0)
			if !shrunk(out.limits) {
				t.Errorf("%s never shrank below %d pages under the eviction storm: %v",
					policy, heapPages, out.limits)
			}
		})
	}
	t.Run("fixed", func(t *testing.T) {
		t.Parallel()
		out := runPolicySoak(t, "reload-storm", "fixed", 101, 1, 0)
		if shrunk(out.limits) {
			t.Errorf("fixed moved the limit under chaos: %v", out.limits)
		}
	})
}

// TestPolicyLimitTrajectoryMarkWorkerInvariant is the determinism gate:
// the policy's limit trajectory — the heap target after every single
// collection — must be bit-identical whether the parallel mark engine
// runs on one host thread or eight, under chaos, for every policy.
func TestPolicyLimitTrajectoryMarkWorkerInvariant(t *testing.T) {
	policies := heappolicy.Names()
	if testing.Short() {
		policies = []string{"membalancer"}
	}
	for _, policy := range policies {
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			a := runPolicySoak(t, "thrash", policy, 42, 7, 1)
			b := runPolicySoak(t, "thrash", policy, 42, 7, 8)
			if a.checksum != b.checksum || a.gcs != b.gcs || a.faults != b.faults {
				t.Fatalf("runs diverge: a(sum=%#x gcs=%d %v) b(sum=%#x gcs=%d %v)",
					a.checksum, a.gcs, a.faults, b.checksum, b.gcs, b.faults)
			}
			if len(a.limits) != len(b.limits) {
				t.Fatalf("trajectory lengths diverge: %d vs %d", len(a.limits), len(b.limits))
			}
			for i := range a.limits {
				if a.limits[i] != b.limits[i] {
					t.Fatalf("limit trajectory diverges at collection %d: %d vs %d\n1 worker: %v\n8 workers: %v",
						i, a.limits[i], b.limits[i], a.limits, b.limits)
				}
			}
		})
	}
}
