package fault_test

// The multi-tenant soak: several tenants — cooperative and not — share
// one machine through the fleet engine while every tenant's
// notification stream runs through its own chaos regime (seeds derived
// per tenant via fault.TenantSeed) and the eviction arbiter redirects
// pressure across owners. After every BC collection the collector's
// books AND the machine's cross-owner accounting are audited, and each
// tenant's mutator checksum is checked against an isolated nominal run:
// arbitration and chaos may reshape paging, never computation.

import (
	"fmt"
	"os"
	"testing"

	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/sim"
	"bookmarkgc/internal/vmm"
)

// fleetSoakSpec builds the soak fleet: four tenants, four different
// chaos regimes, machine at half the summed heaps, cascade ladder
// armed. scale trims the programs under -short.
func fleetSoakSpec(scale float64) sim.FleetSpec {
	tenants := []struct {
		prog   string
		kind   sim.CollectorKind
		regime string
	}{
		{"compress", sim.BC, "drop"},
		{"db", sim.CopyMS, "thrash"},
		{"raytrace", sim.BC, "delay"},
		{"jess", sim.GenMS, "reorder"},
	}
	spec := sim.FleetSpec{
		Seed:               7,
		ChaosSeed:          1234,
		Quantum:            256,
		Policy:             sim.PolicyGlobalLRU,
		EscalateTo:         sim.PolicyCooperative,
		CascadeWindowNS:    100 * 1e6,
		CascadeMajorFaults: 12,
		CascadeSustain:     2,
		Backpressure:       true,
		AdmissionThrottle:  true,
	}
	var sum uint64
	for _, tn := range tenants {
		prog, _ := mutator.ByName(tn.prog)
		prog = prog.Scale(scale)
		ts := sim.TenantSpec{
			Collector: tn.kind,
			Program:   prog,
			HeapBytes: mem.RoundUpPage(2 * prog.MinHeap),
			Chaos:     tn.regime,
		}
		sum += ts.HeapBytes
		spec.Tenants = append(spec.Tenants, ts)
	}
	phys := mem.RoundUpPage(sum / 2)
	if phys < vmm.MinPhysBytes {
		phys = vmm.MinPhysBytes
	}
	spec.PhysBytes = phys
	return spec
}

func fleetSoakScale() float64 {
	if testing.Short() {
		return 0.03
	}
	return 0.06
}

// TestFleetSoakInvariants is the multi-owner acceptance soak: chaos on
// every tenant, cross-owner arbitration live, invariants and machine
// books audited after every BC collection, checksums differentially
// checked, and the cascade ladder required to have fired a fleet
// flight bundle.
func TestFleetSoakInvariants(t *testing.T) {
	dir := t.TempDir()
	spec := fleetSoakSpec(fleetSoakScale())

	checks := 0
	var invErr error
	fr := sim.RunFleet(sim.FleetConfig{
		Spec:      spec,
		FlightDir: dir,
		AfterCollection: func(tenant int, col gc.Collector, v *vmm.VMM) {
			checks++
			if invErr != nil {
				return
			}
			if c, ok := col.(interface{ CheckInvariants() error }); ok {
				if err := c.CheckInvariants(); err != nil {
					invErr = fmt.Errorf("tenant %d: %w", tenant, err)
					return
				}
			}
			if err := v.CheckAccounting(); err != nil {
				invErr = fmt.Errorf("tenant %d: cross-owner books: %w", tenant, err)
			}
		},
	})
	if fr.Err != nil {
		t.Fatalf("fleet err (tenant %d): %v", fr.ErrTenant, fr.Err)
	}
	if invErr != nil {
		t.Fatalf("invariants violated mid-soak: %v", invErr)
	}
	if checks == 0 {
		t.Fatal("no BC collection was ever audited — not a soak")
	}

	// Every tenant survived its own chaos and the neighbors'.
	for i, r := range fr.Tenants {
		if r.Err != nil {
			t.Fatalf("tenant %s failed: %v", fr.Names[i], r.Err)
		}
		if r.Faults == nil {
			t.Fatalf("tenant %s ran without its injector", fr.Names[i])
		}
	}

	// The differential oracle: fleet checksums equal isolated nominal
	// runs (same program, same seed, no chaos, no neighbors).
	for i, r := range fr.Tenants {
		ts := spec.Tenants[i]
		solo := sim.Run(sim.RunConfig{
			Collector: ts.Collector,
			Program:   ts.Program,
			HeapBytes: ts.HeapBytes,
			PhysBytes: 4 * ts.HeapBytes,
			Seed:      spec.Seed + ts.Seed + int64(i),
		})
		if solo.Err != nil {
			t.Fatalf("nominal run for %s failed: %v", fr.Names[i], solo.Err)
		}
		if r.Mutator.Checksum != solo.Mutator.Checksum {
			t.Fatalf("tenant %s: checksum %#x != nominal %#x — chaos or arbitration corrupted the heap (faults: %+v)",
				fr.Names[i], r.Mutator.Checksum, solo.Mutator.Checksum, *r.Faults)
		}
	}

	// The soak must actually have thrashed: cascades detected and at
	// least one fleet-wide flight bundle on disk.
	if fr.Cascades == 0 {
		t.Fatal("soak never cascaded; pressure too light to prove anything")
	}
	if len(fr.FleetDumps) == 0 {
		t.Fatal("cascades fired but no fleet flight bundle was written")
	}
	for _, p := range fr.FleetDumps {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("fleet bundle missing on disk: %v", err)
		}
	}
}

// TestFleetSoakReplayDeterminism replays the full chaos soak and
// requires bit-identical fleet outcomes: same checksums, same injector
// counts, same cascade count, same simulated clock.
func TestFleetSoakReplayDeterminism(t *testing.T) {
	spec := fleetSoakSpec(0.03)
	run := func() sim.FleetResult {
		fr := sim.RunFleet(sim.FleetConfig{Spec: spec})
		if fr.Err != nil {
			t.Fatalf("fleet err: %v", fr.Err)
		}
		return fr
	}
	a, b := run(), run()
	if a.ElapsedSecs != b.ElapsedSecs || a.Cascades != b.Cascades ||
		a.AggMajorFaults != b.AggMajorFaults || a.ArbiterVetoes != b.ArbiterVetoes {
		t.Fatalf("replay diverged: (%v,%d,%d,%d) vs (%v,%d,%d,%d)",
			a.ElapsedSecs, a.Cascades, a.AggMajorFaults, a.ArbiterVetoes,
			b.ElapsedSecs, b.Cascades, b.AggMajorFaults, b.ArbiterVetoes)
	}
	for i := range a.Tenants {
		ra, rb := a.Tenants[i], b.Tenants[i]
		if ra.Mutator.Checksum != rb.Mutator.Checksum || *ra.Faults != *rb.Faults {
			t.Fatalf("tenant %s diverged on replay", a.Names[i])
		}
	}
}
