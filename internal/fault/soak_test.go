package fault_test

// The randomized soak harness of the fault-injection tentpole: run a real
// mutator program on a BC under severe memory pressure while an Injector
// corrupts the VM-cooperation notification stream, and audit the
// collector's books with core.CheckInvariants after every single
// collection. The mutator checksum doubles as a differential oracle — it
// depends only on (program, seed), so any divergence from the nominal run
// means chaos corrupted the heap.

import (
	"testing"
	"time"

	"bookmarkgc/internal/core"
	"bookmarkgc/internal/fault"
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/vmm"
)

const (
	soakPhysBytes  = 24 << 20
	soakHeapBytes  = 8 << 20
	soakKeepFrames = 320 // ~1.25 MB stays available: constant eviction pressure
	soakQuantum    = 256 // mutator steps between injector safepoints
)

func soakProgram() mutator.Spec { return mutator.PseudoJBB().Scale(0.04) }

// soakOutcome is everything one soak run measures.
type soakOutcome struct {
	checksum uint64
	gcs      int
	invErr   error
	faults   fault.Stats
	gcStats  gc.Stats
	elapsed  time.Duration

	untrusted bool
	// trustedFullAfterDistrust is set if a full collection after BC
	// stopped trusting notifications was NOT a fail-safe.
	trustedFullAfterDistrust bool
}

// runSoak executes one mutator program under the named fault regime with
// invariants audited after every collection.
func runSoak(t *testing.T, regime string, chaosSeed, workSeed int64) soakOutcome {
	t.Helper()
	clock := vmm.NewClock()
	v := vmm.New(clock, soakPhysBytes, vmm.DefaultCosts())
	env := gc.NewEnv(v, "soak", soakHeapBytes)
	types := mutator.DeclareTypes(env)
	c := core.New(env, core.Config{})
	cfg, ok := fault.ByName(regime, chaosSeed)
	if !ok {
		t.Fatalf("unknown regime %q", regime)
	}
	inj := fault.Interpose(env.Proc, cfg, nil)
	inj.StartSpikes(v)

	var out soakOutcome
	var prevFull, prevFailSafe uint64
	var prevUntrusted bool
	c.OnCollectionEnd(func() {
		out.gcs++
		if err := c.CheckInvariants(); err != nil && out.invErr == nil {
			out.invErr = err
		}
		st := c.Stats()
		if prevUntrusted {
			if df := st.Full - prevFull; df > 0 && st.FailSafe-prevFailSafe != df {
				out.trustedFullAfterDistrust = true
			}
		}
		prevFull, prevFailSafe, prevUntrusted = st.Full, st.FailSafe, c.Untrusted()
	})

	run := mutator.NewRun(soakProgram(), c, types, workSeed)
	if extra := v.FreeFrames() - soakKeepFrames; extra > 0 {
		v.Pin(extra)
	}
	for run.Step(soakQuantum) {
		inj.Safepoint()
	}
	inj.Safepoint()
	mres := run.Finish()
	// One explicit full collection after the program: a run whose chaos
	// discredited the books must route it to the fail-safe, and every
	// regime gets a final full-GC + invariant audit over whatever state
	// the chaos left behind.
	c.Collect(true)

	out.checksum = mres.Checksum
	out.faults = inj.Stats()
	out.gcStats = *c.Stats()
	out.untrusted = c.Untrusted()
	out.elapsed = clock.Now()
	return out
}

// nominalChecksum runs the same program and pressure with no injector.
func nominalChecksum(t *testing.T, workSeed int64) uint64 {
	t.Helper()
	clock := vmm.NewClock()
	v := vmm.New(clock, soakPhysBytes, vmm.DefaultCosts())
	env := gc.NewEnv(v, "nominal", soakHeapBytes)
	types := mutator.DeclareTypes(env)
	c := core.New(env, core.Config{})
	run := mutator.NewRun(soakProgram(), c, types, workSeed)
	if extra := v.FreeFrames() - soakKeepFrames; extra > 0 {
		v.Pin(extra)
	}
	return run.RunToCompletion().Checksum
}

var soakSeeds = []int64{1, 2, 3}

// seeds trims the soak to one seed under -short; the full three-seed
// acceptance matrix runs by default and in CI.
func seeds() []int64 {
	if testing.Short() {
		return soakSeeds[:1]
	}
	return soakSeeds
}

// TestSoakAllRegimes is the acceptance soak: every fault regime, three
// seeds each, invariants after every collection, and the checksum oracle
// against a nominal run.
func TestSoakAllRegimes(t *testing.T) {
	base := map[int64]uint64{}
	for _, seed := range seeds() {
		base[seed] = nominalChecksum(t, seed)
	}
	for _, regime := range fault.Regimes() {
		t.Run(regime, func(t *testing.T) {
			for _, seed := range seeds() {
				out := runSoak(t, regime, 100+seed, seed)
				if out.invErr != nil {
					t.Fatalf("seed %d: invariants violated after a collection: %v", seed, out.invErr)
				}
				if out.gcs == 0 {
					t.Fatalf("seed %d: the soak never collected — not a soak", seed)
				}
				if out.checksum != base[seed] {
					t.Fatalf("seed %d: checksum %#x != nominal %#x — chaos corrupted the heap (faults: %v)",
						seed, out.checksum, base[seed], out.faults)
				}
			}
		})
	}
}

// TestSoakReplayDeterminism re-runs regimes with identical seeds and
// requires bit-identical outcomes: same checksum, same injection counts,
// same number of collections, same simulated clock.
func TestSoakReplayDeterminism(t *testing.T) {
	regimes := []string{"drop", "reorder", "no-notify", "thrash"}
	if testing.Short() {
		regimes = regimes[:1]
	}
	for _, regime := range regimes {
		a := runSoak(t, regime, 42, 7)
		b := runSoak(t, regime, 42, 7)
		if a.checksum != b.checksum || a.faults != b.faults || a.gcs != b.gcs || a.elapsed != b.elapsed {
			t.Fatalf("%s: replay diverged:\n a: sum=%#x gcs=%d t=%v %v\n b: sum=%#x gcs=%d t=%v %v",
				regime, a.checksum, a.gcs, a.elapsed, a.faults, b.checksum, b.gcs, b.elapsed, b.faults)
		}
	}
}

// TestUncooperativeKernelDegradesToFailSafe checks the degradation
// ladder's last rung: with every notification muted, BC must detect the
// silent evictions, stop trusting the stream, and finish the program on
// fail-safe collections only — no panics, heap intact.
func TestUncooperativeKernelDegradesToFailSafe(t *testing.T) {
	out := runSoak(t, "no-notify", 1, 1)
	if out.invErr != nil {
		t.Fatalf("invariants violated: %v", out.invErr)
	}
	if out.checksum != nominalChecksum(t, 1) {
		t.Fatalf("heap corrupted under an uncooperative kernel")
	}
	if out.gcStats.PagesEvicted != 0 {
		t.Fatalf("BC processed %d pages for eviction despite hearing no notifications", out.gcStats.PagesEvicted)
	}
	if !out.untrusted {
		t.Fatalf("BC still trusts a stream that repaired %d silent evictions (muted %d notifications)",
			out.faults.Muted, out.faults.Muted)
	}
	if out.gcStats.FailSafe == 0 {
		t.Fatal("no fail-safe collections under an uncooperative kernel")
	}
	if out.trustedFullAfterDistrust {
		t.Fatal("a trusted-mode full collection ran after BC stopped trusting notifications")
	}
}
