package sim

import (
	"strings"
	"testing"
	"time"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
)

// tinyJBB is a scaled-down pseudoJBB for fast tests.
func tinyJBB() mutator.Spec { return mutator.PseudoJBB().Scale(0.02) }

func TestRunEveryCollector(t *testing.T) {
	for _, kind := range append([]CollectorKind{BCResizeOnly, GenMSFixed, GenCopyFixed}, AllKinds...) {
		t.Run(string(kind), func(t *testing.T) {
			res := Run(RunConfig{
				Collector: kind,
				Program:   tinyJBB(),
				HeapBytes: 4 << 20,
				PhysBytes: 256 << 20,
				Seed:      1,
			})
			if res.Mutator.AllocatedBytes < tinyJBB().TotalAlloc {
				t.Fatalf("under-allocated: %d", res.Mutator.AllocatedBytes)
			}
			if res.ElapsedSecs <= 0 {
				t.Fatal("no simulated time elapsed")
			}
			if res.Timeline.Count() == 0 {
				t.Fatal("no collections")
			}
		})
	}
}

func TestPressureDegradesObliviousCollector(t *testing.T) {
	// Under steady pressure, GenMS must run slower and fault more than
	// without pressure — the paper's core phenomenon.
	prog := tinyJBB()
	heap := uint64(8 << 20)
	base := Run(RunConfig{
		Collector: GenMS, Program: prog, HeapBytes: heap,
		PhysBytes: 64 << 20, Seed: 1,
	})
	// Pin down to ~40% of the heap remaining for the whole machine.
	squeezed := Run(RunConfig{
		Collector: GenMS, Program: prog, HeapBytes: heap,
		PhysBytes: 64 << 20, Seed: 1,
		Pressure: &Pressure{InitialBytes: 64<<20 - heap*4/10},
	})
	if squeezed.ProcStats.MajorFaults == 0 {
		t.Fatal("pressure produced no major faults for GenMS")
	}
	if squeezed.ElapsedSecs <= base.ElapsedSecs {
		t.Fatalf("pressure did not slow GenMS: %.3fs vs %.3fs",
			squeezed.ElapsedSecs, base.ElapsedSecs)
	}
}

func TestBCBeatsGenMSUnderPressure(t *testing.T) {
	// The headline claim, at miniature scale: under Figure 3's steady
	// pressure (signalmem removes 60% of the heap; the machine is sized
	// so the heap barely fits beforehand), BC finishes several times
	// faster than GenMS and takes fewer GC-time major faults.
	prog := mutator.PseudoJBB().Scale(0.04)
	heap := mem.RoundUpPage(77 * (1 << 20) * 4 / 100)
	phys := mem.RoundUpPage(100 * (1 << 20) * 4 / 100)
	press := SteadyPressure(heap, 0.6)
	bc := Run(RunConfig{Collector: BC, Program: prog, HeapBytes: heap,
		PhysBytes: phys, Seed: 1, Pressure: press})
	gen := Run(RunConfig{Collector: GenMS, Program: prog, HeapBytes: heap,
		PhysBytes: phys, Seed: 1, Pressure: press})
	if bc.ElapsedSecs*2 >= gen.ElapsedSecs {
		t.Fatalf("BC %.3fs not clearly faster than GenMS %.3fs under pressure",
			bc.ElapsedSecs, gen.ElapsedSecs)
	}
	if bc.Timeline.AvgPause() >= gen.Timeline.AvgPause() {
		t.Fatalf("BC avg pause %v not below GenMS %v",
			bc.Timeline.AvgPause(), gen.Timeline.AvgPause())
	}
	var bcGCFaults, genGCFaults uint64
	for _, p := range bc.Timeline.Pauses {
		bcGCFaults += p.MajorFaults
	}
	for _, p := range gen.Timeline.Pauses {
		genGCFaults += p.MajorFaults
	}
	if bcGCFaults > genGCFaults {
		t.Fatalf("BC took more GC faults (%d) than GenMS (%d)", bcGCFaults, genGCFaults)
	}
}

func TestDynamicPressureSchedule(t *testing.T) {
	res := Run(RunConfig{
		Collector: BC,
		Program:   tinyJBB(),
		HeapBytes: 8 << 20,
		PhysBytes: 64 << 20,
		Seed:      2,
		Pressure:  DynamicPressure(16 << 20),
	})
	if res.ElapsedSecs <= 0 {
		t.Fatal("run failed")
	}
}

func TestSteadyPressureHelper(t *testing.T) {
	p := SteadyPressure(100<<20, 0.6)
	if p.InitialBytes != 60<<20 {
		t.Fatalf("InitialBytes = %d", p.InitialBytes)
	}
}

func TestSignalMemReachesTarget(t *testing.T) {
	res := Run(RunConfig{
		Collector: BC,
		Program:   mutator.PseudoJBB().Scale(0.05),
		HeapBytes: 12 << 20,
		PhysBytes: 64 << 20,
		Seed:      3,
		Pressure: &Pressure{
			InitialBytes:     8 << 20,
			GrowBytes:        1 << 20,
			GrowEvery:        100 * time.Microsecond, // fast, to finish within the run
			TargetAvailBytes: 24 << 20,
		},
	})
	_ = res
}

func TestRunMultiTwoJVMs(t *testing.T) {
	rs := RunMulti(MultiConfig{
		Collector: BC,
		Program:   mutator.PseudoJBB().Scale(0.01),
		HeapBytes: 6 << 20,
		PhysBytes: 64 << 20,
		JVMs:      2,
		Seed:      4,
	})
	if len(rs) != 2 {
		t.Fatalf("%d results", len(rs))
	}
	for i, r := range rs {
		if r.Mutator.AllocatedBytes == 0 {
			t.Fatalf("jvm %d did no work", i)
		}
		if r.Timeline.End <= r.Timeline.Start {
			t.Fatalf("jvm %d has empty timeline", i)
		}
	}
}

func TestUnknownCollectorFails(t *testing.T) {
	r := Run(RunConfig{Collector: "Zap", Program: tinyJBB(), HeapBytes: 8 << 20, PhysBytes: 64 << 20})
	if r.Err == nil {
		t.Fatal("expected Result.Err for unknown collector")
	}
	if !strings.Contains(r.Err.Error(), "Zap") {
		t.Fatalf("error should name the collector: %v", r.Err)
	}
}

func TestAllCollectorsComputeIdenticalChecksum(t *testing.T) {
	// The mutator's checksum folds every value it reads; it depends only
	// on program and seed. Any divergence across collectors means a
	// collector corrupted the heap — a differential oracle over the
	// whole suite of collectors, including under memory pressure.
	prog := mutator.PseudoJBB().Scale(0.02)
	heap := uint64(4 << 20)
	var want uint64
	for i, kind := range append([]CollectorKind{BCResizeOnly, GenMSFixed, GenCopyFixed}, AllKinds...) {
		res := Run(RunConfig{
			Collector: kind, Program: prog, HeapBytes: heap,
			PhysBytes: 64 << 20, Seed: 99,
			Pressure: SteadyPressure(heap, 0.5),
		})
		if i == 0 {
			want = res.Mutator.Checksum
			if want == 0 {
				t.Fatal("checksum never accumulated")
			}
			continue
		}
		if res.Mutator.Checksum != want {
			t.Fatalf("%s checksum %#x differs from %#x: heap corruption",
				kind, res.Mutator.Checksum, want)
		}
	}
}
