package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/telemetry"
	"bookmarkgc/internal/vmm"
)

// thrashFleetSpec builds a small three-tenant fleet sized to genuinely
// thrash: machine frames at frac of the summed heaps, one noisy
// CopyMS neighbor under the "thrash" chaos regime, and the cascade
// detector armed at a 60% fault-service duty cycle.
func thrashFleetSpec(frac float64) FleetSpec {
	progs := []string{"compress", "db", "raytrace"}
	kinds := []CollectorKind{BC, CopyMS, GenMS}
	spec := FleetSpec{
		Seed:               1,
		ChaosSeed:          42,
		Quantum:            512,
		Policy:             PolicyGlobalLRU,
		CascadeWindowNS:    100 * 1e6,
		CascadeMajorFaults: 12,
		CascadeSustain:     2,
	}
	var sum uint64
	for i := 0; i < 3; i++ {
		prog, _ := mutator.ByName(progs[i])
		prog = prog.Scale(0.05)
		ts := TenantSpec{
			Collector: kinds[i],
			Program:   prog,
			HeapBytes: mem.RoundUpPage(2 * prog.MinHeap),
		}
		if i == 1 {
			ts.Chaos = "thrash"
			ts.Weight = 2
		}
		sum += ts.HeapBytes
		spec.Tenants = append(spec.Tenants, ts)
	}
	phys := mem.RoundUpPage(uint64(frac * float64(sum)))
	if phys < vmm.MinPhysBytes {
		phys = vmm.MinPhysBytes
	}
	spec.PhysBytes = phys
	return spec
}

// fleetDigest flattens every simulated-outcome observable of a fleet
// run into one string, so determinism tests compare a single value.
func fleetDigest(fr FleetResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy=%s/%s cascades=%d escalated=%v elapsed=%.9f\n",
		fr.InitialPolicy, fr.Policy, fr.Cascades, fr.Escalated, fr.ElapsedSecs)
	fmt.Fprintf(&b, "minor=%d major=%d evict=%d vetoes=%d fairness=%.9f\n",
		fr.AggMinorFaults, fr.AggMajorFaults, fr.AggEvictions, fr.ArbiterVetoes, fr.Fairness)
	for i, r := range fr.Tenants {
		fmt.Fprintf(&b, "tenant %s: checksum=%x allocs=%d major=%d evict=%d p99=%d gcs=%d err=%v\n",
			fr.Names[i], r.Mutator.Checksum, r.Mutator.Allocations,
			r.ProcStats.MajorFaults, r.ProcStats.Evictions, fr.PauseP99NS[i],
			r.GCStats.Nursery+r.GCStats.Full, r.Err)
	}
	return b.String()
}

// TestFleetDeterminism runs the same thrashing, chaos-bearing,
// cascade-escalating spec twice and at different mark-worker counts:
// every observable must be bit-identical.
func TestFleetDeterminism(t *testing.T) {
	spec := thrashFleetSpec(0.5)
	spec.EscalateTo = PolicyCooperative
	spec.Backpressure = true
	spec.AdmissionThrottle = true

	base := RunFleet(FleetConfig{Spec: spec})
	if base.Err != nil {
		t.Fatalf("fleet err (tenant %d): %v", base.ErrTenant, base.Err)
	}
	if base.Cascades == 0 {
		t.Fatal("tuned spec did not cascade; determinism test lost its interesting path")
	}
	want := fleetDigest(base)
	for _, workers := range []int{0, 1, 8} {
		got := fleetDigest(RunFleet(FleetConfig{Spec: spec, MarkWorkers: workers}))
		if got != want {
			t.Errorf("mark-workers=%d diverged:\n--- want\n%s--- got\n%s", workers, want, got)
		}
	}
}

// TestFleetMatchesIsolatedRuns checks the differential oracle: a
// tenant's mutator checksum depends only on (program, seed), so each
// fleet tenant must compute exactly the checksum the same program
// produces in a single-tenant sim.Run, no matter what paging and
// arbitration did to it in the fleet.
func TestFleetMatchesIsolatedRuns(t *testing.T) {
	spec := thrashFleetSpec(0.5)
	spec.EscalateTo = PolicyCooperative
	fr := RunFleet(FleetConfig{Spec: spec})
	if fr.Err != nil {
		t.Fatalf("fleet err: %v", fr.Err)
	}
	for i, r := range fr.Tenants {
		if r.Err != nil {
			t.Fatalf("tenant %s failed: %v", fr.Names[i], r.Err)
		}
		ts := spec.Tenants[i]
		solo := Run(RunConfig{
			Collector: ts.Collector,
			Program:   ts.Program,
			HeapBytes: ts.HeapBytes,
			PhysBytes: 4 * ts.HeapBytes, // alone and unpressured
			Seed:      spec.Seed + ts.Seed + int64(i),
		})
		if solo.Err != nil {
			t.Fatalf("isolated run for %s failed: %v", fr.Names[i], solo.Err)
		}
		if solo.Mutator.Checksum != r.Mutator.Checksum {
			t.Errorf("tenant %s: fleet checksum %x != isolated %x",
				fr.Names[i], r.Mutator.Checksum, solo.Mutator.Checksum)
		}
	}
}

// TestFleetCascadeLadder drives the fleet into sustained thrash and
// checks the whole degradation ladder fires: cascades detected, policy
// escalated, and tenant-tagged plus fleet-level flight bundles written
// within quota.
func TestFleetCascadeLadder(t *testing.T) {
	dir := t.TempDir()
	spec := thrashFleetSpec(0.45)
	spec.EscalateTo = PolicyCooperative
	spec.Backpressure = true
	spec.AdmissionThrottle = true
	fr := RunFleet(FleetConfig{Spec: spec, FlightDir: dir})
	if fr.Err != nil {
		t.Fatalf("fleet err: %v", fr.Err)
	}
	if fr.Cascades == 0 {
		t.Fatal("no cascades detected under 45% residency with a thrash tenant")
	}
	if !fr.Escalated {
		t.Fatal("ladder never escalated the arbitration policy")
	}
	if fr.InitialPolicy != PolicyGlobalLRU || fr.Policy != PolicyCooperative {
		t.Fatalf("policy %s -> %s, want global-lru -> cooperative", fr.InitialPolicy, fr.Policy)
	}
	if len(fr.FleetDumps) == 0 {
		t.Fatal("cascades fired but no fleet bundle was written")
	}

	// The bundles must parse, carry per-tenant snapshots, and respect
	// the shared dump quota (no unbounded dump storms).
	var b telemetry.FleetBundle
	data, err := os.ReadFile(fr.FleetDumps[len(fr.FleetDumps)-1])
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("fleet bundle does not parse: %v", err)
	}
	if b.Schema != telemetry.FleetBundleSchema {
		t.Fatalf("bundle schema %q", b.Schema)
	}
	if b.Reason != "cascade-thrash" || len(b.Tenants) != len(spec.Tenants) {
		t.Fatalf("bundle reason=%q tenants=%d", b.Reason, len(b.Tenants))
	}
	if b.EscalatedTo != string(PolicyCooperative) {
		t.Fatalf("last bundle escalated_to=%q", b.EscalatedTo)
	}
	var coop, uncoop int
	for _, snap := range b.Tenants {
		if snap.Cooperative {
			coop++
		} else {
			uncoop++
		}
	}
	if coop == 0 || uncoop == 0 {
		t.Fatalf("bundle lost the cooperative split: coop=%d uncoop=%d", coop, uncoop)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	total := 4 + 2*len(spec.Tenants)
	if len(entries) > total {
		t.Fatalf("%d dump files exceed the fleet quota %d", len(entries), total)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.Name()] {
			t.Fatalf("dump filename collision: %s", e.Name())
		}
		seen[e.Name()] = true
	}
}

// TestFleetPolicyDifference is the acceptance experiment in miniature:
// on an identical thrashing fleet, cooperation-aware arbitration must
// measurably shift major faults and tail pauses relative to the
// cooperation-blind baseline — BC is shielded, and the arbiter
// actually vetoed evictions to do it.
func TestFleetPolicyDifference(t *testing.T) {
	run := func(p ArbitrationPolicy) FleetResult {
		spec := thrashFleetSpec(0.5)
		spec.Policy = p
		spec.CascadeMajorFaults = 0 // detector off: pure policy comparison
		fr := RunFleet(FleetConfig{Spec: spec})
		if fr.Err != nil {
			t.Fatalf("fleet err under %s: %v", p, fr.Err)
		}
		return fr
	}
	blind := run(PolicyGlobalLRU)
	aware := run(PolicyCooperative)

	bcMajor := func(fr FleetResult) (uint64, int64) {
		for i, r := range fr.Tenants {
			if r.Config.Collector == BC {
				return r.ProcStats.MajorFaults, fr.PauseP99NS[i]
			}
		}
		t.Fatal("no BC tenant")
		return 0, 0
	}
	blindMajor, blindP99 := bcMajor(blind)
	awareMajor, awareP99 := bcMajor(aware)
	if aware.ArbiterVetoes == 0 {
		t.Fatal("cooperative arbitration never vetoed an eviction")
	}
	if blind.ArbiterVetoes != 0 {
		t.Fatalf("global-lru vetoed %d evictions; it must be a pure pass-through", blind.ArbiterVetoes)
	}
	if awareMajor >= blindMajor {
		t.Errorf("BC major faults: cooperative %d !< global-lru %d", awareMajor, blindMajor)
	}
	if aware.AggMajorFaults == blind.AggMajorFaults {
		t.Error("aggregate major faults identical across policies; arbitration had no measurable effect")
	}
	if awareP99 == blindP99 {
		t.Error("BC pause p99 identical across policies")
	}
	t.Logf("BC major: blind=%d aware=%d; BC p99: blind=%dns aware=%dns; agg major: blind=%d aware=%d; fairness: blind=%.3f aware=%.3f",
		blindMajor, awareMajor, blindP99, awareP99,
		blind.AggMajorFaults, aware.AggMajorFaults, blind.Fairness, aware.Fairness)
}

// TestFleetAdmission delays one tenant's admission: the scheduler must
// idle-skip to the admit point rather than spin, and the tenant still
// runs to completion with the right checksum.
func TestFleetAdmission(t *testing.T) {
	prog, _ := mutator.ByName("compress")
	prog = prog.Scale(0.02)
	heap := mem.RoundUpPage(2 * prog.MinHeap)
	spec := FleetSpec{
		Seed: 3,
		Tenants: []TenantSpec{{
			Collector: BC, Program: prog, HeapBytes: heap,
			AdmitAtNS: int64(250 * 1e6),
		}},
		PhysBytes: 4 * heap,
	}
	fr := RunFleet(FleetConfig{Spec: spec})
	if fr.Err != nil {
		t.Fatalf("fleet err: %v", fr.Err)
	}
	if fr.Tenants[0].Err != nil {
		t.Fatalf("tenant failed: %v", fr.Tenants[0].Err)
	}
	if fr.ElapsedSecs < 0.25 {
		t.Fatalf("fleet finished in %.3fs, before the 250ms admit point", fr.ElapsedSecs)
	}
	solo := Run(RunConfig{
		Collector: BC, Program: prog, HeapBytes: heap,
		PhysBytes: 4 * heap, Seed: 3,
	})
	if solo.Mutator.Checksum != fr.Tenants[0].Mutator.Checksum {
		t.Fatalf("delayed tenant checksum %x != isolated %x",
			fr.Tenants[0].Mutator.Checksum, solo.Mutator.Checksum)
	}
}

// TestFleetAfterCollectionHook wires collector invariant checks and
// machine-wide accounting audits into a contended fleet: every BC
// collection end must observe a consistent heap and consistent
// cross-owner VMM books.
func TestFleetAfterCollectionHook(t *testing.T) {
	spec := thrashFleetSpec(0.5)
	spec.Policy = PolicyCooperative
	checks := 0
	var firstErr error
	fr := RunFleet(FleetConfig{
		Spec: spec,
		AfterCollection: func(tenant int, col gc.Collector, v *vmm.VMM) {
			checks++
			if firstErr != nil {
				return
			}
			if c, ok := col.(interface{ CheckInvariants() error }); ok {
				if err := c.CheckInvariants(); err != nil {
					firstErr = fmt.Errorf("tenant %d: %w", tenant, err)
				}
			}
			if err := v.CheckAccounting(); err != nil {
				firstErr = fmt.Errorf("tenant %d: machine books: %w", tenant, err)
			}
		},
	})
	if fr.Err != nil {
		t.Fatalf("fleet err: %v", fr.Err)
	}
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if checks == 0 {
		t.Fatal("AfterCollection never fired; no BC collections in a contended fleet?")
	}
}

// TestFleetSpecValidate exercises the spec gate shared by the CLI and
// the runner.
func TestFleetSpecValidate(t *testing.T) {
	good := thrashFleetSpec(0.5)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*FleetSpec)
	}{
		{"no tenants", func(s *FleetSpec) { s.Tenants = nil }},
		{"tiny machine", func(s *FleetSpec) { s.PhysBytes = 4096 }},
		{"unknown policy", func(s *FleetSpec) { s.Policy = "optimal" }},
		{"unknown escalation", func(s *FleetSpec) { s.EscalateTo = "oracle" }},
		{"unknown collector", func(s *FleetSpec) { s.Tenants[0].Collector = "zgc" }},
		{"zero heap", func(s *FleetSpec) { s.Tenants[0].HeapBytes = 0 }},
		{"no workload", func(s *FleetSpec) { s.Tenants[0].Program = mutator.Spec{} }},
		{"unknown chaos", func(s *FleetSpec) { s.Tenants[0].Chaos = "gremlins" }},
	}
	for _, tc := range cases {
		s := thrashFleetSpec(0.5)
		tc.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestLoadFleetSpec round-trips a spec through JSON and rejects
// unknown fields loudly.
func TestLoadFleetSpec(t *testing.T) {
	spec := DefaultFleetSpec(16, 0.05, 1, 42)
	spec.Policy = PolicyProportional
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadFleetSpec(data)
	if err != nil {
		t.Fatalf("round-trip rejected: %v", err)
	}
	back, _ := json.Marshal(got)
	if string(back) != string(data) {
		t.Fatalf("round trip changed the spec:\n%s\n%s", data, back)
	}
	if _, err := LoadFleetSpec([]byte(`{"tenants": [], "phys_byte": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestDefaultFleetSpec sanity-checks the stock mixed fleet: sixteen
// tenants, both cooperative and non-cooperating collectors, noisy
// neighbors armed, machine smaller than the summed heaps.
func TestDefaultFleetSpec(t *testing.T) {
	spec := DefaultFleetSpec(16, 0.05, 1, 42)
	if len(spec.Tenants) != 16 {
		t.Fatalf("tenants = %d", len(spec.Tenants))
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	var coop, chaos int
	var sum uint64
	for _, ts := range spec.Tenants {
		if ts.Collector == BC {
			coop++
		}
		if ts.Chaos != "" {
			chaos++
		}
		sum += ts.HeapBytes
	}
	if coop == 0 || coop == 16 {
		t.Fatalf("fleet is not mixed: %d/16 BC", coop)
	}
	if chaos < 2 {
		t.Fatalf("want >=2 noisy neighbors, got %d", chaos)
	}
	if spec.PhysBytes >= sum {
		t.Fatalf("machine (%d) not overcommitted against %d of heap", spec.PhysBytes, sum)
	}
	if spec.CascadeMajorFaults == 0 {
		t.Fatal("cascade detector unarmed in the default fleet")
	}
}
