package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"bookmarkgc/internal/trace"
)

// pressuredBC is a short BC run squeezed hard enough to force the whole
// cooperation protocol: evictions, bookmarking, discards, and reloads.
func pressuredBC(rec *trace.Recorder, reg *trace.Counters) Result {
	return Run(RunConfig{
		Collector: BC,
		Program:   tinyJBB(),
		HeapBytes: 4 << 20,
		PhysBytes: 8 << 20,
		Seed:      1,
		Pressure:  &Pressure{InitialBytes: 5 << 20},
		Trace:     rec,
		Counters:  reg,
	})
}

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// TestChromeTraceGolden checks the full pipeline: a pressured BC run
// must emit a well-formed Chrome trace — valid JSON, strictly matched
// B/E pairs per thread, monotone timestamps — containing at least one
// pause span, one phase span, and the cooperation point events.
func TestChromeTraceGolden(t *testing.T) {
	rec := trace.NewRecorder(nil, "BC")
	reg := trace.NewCounters()
	res := pressuredBC(rec, reg)
	if res.GCStats.PagesEvicted == 0 {
		t.Fatal("run was not pressured: no pages evicted")
	}

	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf, "gcsim-test"); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	seen := map[string]int{}
	stacks := map[int][]string{}
	lastTs := map[int]float64{}
	for _, e := range f.TraceEvents {
		seen[e.Ph+":"+e.Name]++
		if e.Ph != "B" && e.Ph != "E" && e.Ph != "i" {
			continue
		}
		if ts, ok := lastTs[e.Tid]; ok && e.Ts < ts {
			t.Fatalf("timestamps not monotone on tid %d: %v after %v (%s)", e.Tid, e.Ts, ts, e.Name)
		}
		lastTs[e.Tid] = e.Ts
		switch e.Ph {
		case "B":
			stacks[e.Tid] = append(stacks[e.Tid], e.Name)
		case "E":
			st := stacks[e.Tid]
			if len(st) == 0 {
				t.Fatalf("E %q with empty span stack on tid %d", e.Name, e.Tid)
			}
			if top := st[len(st)-1]; top != e.Name {
				t.Fatalf("E %q does not match open span %q", e.Name, top)
			}
			stacks[e.Tid] = st[:len(st)-1]
		}
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("unclosed spans on tid %d: %v", tid, st)
		}
	}

	// The squeezed run must show the pause spans, at least one GC phase
	// span, and the core cooperation point events.
	for _, want := range []string{
		"B:pause:full", "B:mark", "B:sweep",
		"i:eviction-scheduled", "i:page-processed", "i:page-reloaded",
		"i:bookmark-cleared", "i:memory-pinned",
	} {
		if seen[want] == 0 {
			t.Errorf("trace contains no %q event", want)
		}
	}

	// Counters must agree with the trace on processed pages.
	if got, n := reg.Get(trace.CPagesProcessed), seen["i:page-processed"]; got != uint64(n) {
		t.Errorf("counter pages_processed=%d but trace has %d page-processed events", got, n)
	}
}

// TestJSONLTraceWellFormed checks the JSONL exporter end to end: every
// line parses as its own JSON object.
func TestJSONLTraceWellFormed(t *testing.T) {
	rec := trace.NewRecorder(nil, "BC")
	reg := trace.NewCounters()
	pressuredBC(rec, reg)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("suspiciously short JSONL output: %d lines", len(lines))
	}
	for i, line := range lines {
		var v map[string]any
		if err := json.Unmarshal(line, &v); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i+1, err)
		}
	}
}

// TestTracingDoesNotPerturbRun is the observability contract: the same
// configuration with and without a recorder must produce identical
// simulated outcomes, and two traced runs must export identical bytes.
func TestTracingDoesNotPerturbRun(t *testing.T) {
	plain := pressuredBC(nil, nil)
	rec := trace.NewRecorder(nil, "BC")
	traced := pressuredBC(rec, trace.NewCounters())

	if plain.ElapsedSecs != traced.ElapsedSecs {
		t.Errorf("tracing changed elapsed time: %v vs %v", plain.ElapsedSecs, traced.ElapsedSecs)
	}
	if plain.ProcStats.MajorFaults != traced.ProcStats.MajorFaults {
		t.Errorf("tracing changed fault count: %d vs %d",
			plain.ProcStats.MajorFaults, traced.ProcStats.MajorFaults)
	}
	if plain.Timeline.Count() != traced.Timeline.Count() {
		t.Errorf("tracing changed pause count: %d vs %d",
			plain.Timeline.Count(), traced.Timeline.Count())
	}
	if plain.GCStats.Bookmarked != traced.GCStats.Bookmarked ||
		plain.GCStats.PagesEvicted != traced.GCStats.PagesEvicted ||
		plain.GCStats.Full != traced.GCStats.Full ||
		plain.GCStats.Nursery != traced.GCStats.Nursery {
		t.Errorf("tracing changed GC stats:\n%+v\nvs\n%+v", plain.GCStats, traced.GCStats)
	}

	rec2 := trace.NewRecorder(nil, "BC")
	pressuredBC(rec2, trace.NewCounters())
	var a, b bytes.Buffer
	if err := rec.WriteChrome(&a, "x"); err != nil {
		t.Fatal(err)
	}
	if err := rec2.WriteChrome(&b, "x"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical traced runs exported different traces")
	}
}

// TestRunMultiTracing gives each JVM its own trace thread over a shared
// buffer and checks the export names both threads.
func TestRunMultiTracing(t *testing.T) {
	rec := trace.NewRecorder(nil, "multi")
	reg := trace.NewCounters()
	RunMulti(MultiConfig{
		Collector: BC,
		Program:   tinyJBB(),
		HeapBytes: 4 << 20,
		PhysBytes: 64 << 20,
		JVMs:      2,
		Seed:      1,
		Trace:     rec,
		Counters:  reg,
	})
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf, "gcsim-test"); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range f.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			if n, ok := e.Args["name"].(string); ok {
				names[n] = true
			}
		}
	}
	if !names["BC-0"] || !names["BC-1"] {
		t.Fatalf("expected thread metadata for BC-0 and BC-1, got %v", names)
	}
	if reg.Get(trace.CBumpAllocs) == 0 {
		t.Error("shared counter registry recorded no allocations")
	}
}
