package sim

import (
	"bytes"
	"encoding/json"
	"fmt"

	"bookmarkgc/internal/fault"
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/vmm"
	"bookmarkgc/internal/workload"
)

// kindKnown reports whether kind names an implemented collector.
func kindKnown(kind CollectorKind) bool {
	for _, k := range KnownKinds {
		if k == kind {
			return true
		}
	}
	return false
}

func policyKnown(p ArbitrationPolicy) bool {
	for _, q := range ArbitrationPolicies {
		if q == p {
			return true
		}
	}
	return false
}

// Validate rejects fleet specs the engine cannot run, before any
// simulation state exists — the check CLIs and the runner share.
func (s *FleetSpec) Validate() error {
	if len(s.Tenants) == 0 {
		return fmt.Errorf("sim: fleet spec has no tenants")
	}
	if s.PhysBytes < vmm.MinPhysBytes {
		return fmt.Errorf("sim: fleet phys_bytes %d below the machine minimum %d", s.PhysBytes, vmm.MinPhysBytes)
	}
	if s.Policy != "" && !policyKnown(s.Policy) {
		return fmt.Errorf("sim: unknown arbitration policy %q", s.Policy)
	}
	if s.EscalateTo != "" && !policyKnown(s.EscalateTo) {
		return fmt.Errorf("sim: unknown escalation policy %q", s.EscalateTo)
	}
	if s.HeapPolicy != "" && !heappolicy.Known(s.HeapPolicy) {
		return fmt.Errorf("sim: unknown heap policy %q (valid: %v)", s.HeapPolicy, heappolicy.Names())
	}
	if s.BalanceEveryNS < 0 {
		return fmt.Errorf("sim: balance_every_ns %d is negative", s.BalanceEveryNS)
	}
	for i, t := range s.Tenants {
		if !kindKnown(t.Collector) {
			return fmt.Errorf("sim: tenant %d: unknown collector %q", i, t.Collector)
		}
		if t.HeapBytes == 0 {
			return fmt.Errorf("sim: tenant %d: heap_bytes is zero", i)
		}
		if t.TracePath == "" && t.Synth == nil && t.Program.Name == "" {
			return fmt.Errorf("sim: tenant %d: no workload (set program, synth, or trace_path)", i)
		}
		if t.Chaos != "" {
			if _, ok := fault.ByName(t.Chaos, 0); !ok {
				return fmt.Errorf("sim: tenant %d: unknown chaos regime %q", i, t.Chaos)
			}
		}
		if t.HeapPolicy != "" && !heappolicy.Known(t.HeapPolicy) {
			return fmt.Errorf("sim: tenant %d: unknown heap policy %q (valid: %v)", i, t.HeapPolicy, heappolicy.Names())
		}
	}
	return nil
}

// LoadFleetSpec parses a tenant-spec file (strict JSON: unknown fields
// are errors, so typos fail loudly) and validates it.
func LoadFleetSpec(data []byte) (FleetSpec, error) {
	var s FleetSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return FleetSpec{}, fmt.Errorf("sim: fleet spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return FleetSpec{}, err
	}
	return s, nil
}

// defaultFleetPrograms is the benchmark rotation DefaultFleetSpec deals
// tenants from: small-to-mid heaps so a 16-tenant fleet stays tractable.
var defaultFleetPrograms = []string{"compress", "db", "raytrace", "jess"}

// DefaultFleetSpec builds the standard mixed fleet used by gcsim -fleet
// and the bench experiment: n tenants alternating BC (cooperative) with
// non-cooperating collectors over a rotation of benchmark programs and
// two synthesized workloads, on a machine holding ~65% of the fleet's
// summed heaps. Two tenants are noisy neighbors: double weight plus the
// "thrash" chaos regime (pressure spikes and dropped notifications).
// The cascade detector and ladder are armed; Policy is left for the
// caller to choose so policies can be compared on an otherwise
// identical fleet.
func DefaultFleetSpec(n int, scale float64, seed, chaosSeed int64) FleetSpec {
	if n <= 0 {
		n = 16
	}
	if scale <= 0 {
		scale = 1.0
	}
	uncooperative := []CollectorKind{CopyMS, GenMS, GenCopy, MarkSweep}
	spec := FleetSpec{
		Seed:      seed,
		ChaosSeed: chaosSeed,
		Quantum:   512,

		// A major fault costs 5ms of simulated time (vmm.DefaultCosts), so
		// the fleet-wide fault rate saturates at 20 per 100ms window; 12
		// means the fleet spends over half its time servicing faults —
		// thrashing by any definition.
		CascadeWindowNS:    int64(100 * 1e6),
		CascadeMajorFaults: 12,
		CascadeSustain:     2,
		Backpressure:       true,
		AdmissionThrottle:  true,
	}
	var sumHeap uint64
	for i := 0; i < n; i++ {
		var ts TenantSpec
		switch {
		case i%8 == 5:
			// A synthesized Markov-lifetime tenant: programs the spec
			// table cannot express, exercising the trace engine in-fleet.
			allocs := int(80_000 * scale)
			if allocs < 2_000 {
				allocs = 2_000
			}
			ts = TenantSpec{
				Collector: BC,
				HeapBytes: mem.RoundUpPage(4 << 20),
				Synth: &workload.SynthParams{
					Model: "markov", Allocs: allocs, Live: 800,
					Seed: seed + int64(i), Name: fmt.Sprintf("markov-%d", i),
				},
			}
		case i%8 == 7:
			allocs := int(60_000 * scale)
			if allocs < 2_000 {
				allocs = 2_000
			}
			ts = TenantSpec{
				Collector: CopyMS,
				HeapBytes: mem.RoundUpPage(4 << 20),
				Synth: &workload.SynthParams{
					Model: "ramp", Allocs: allocs, Live: 600,
					Seed: seed + int64(i), Name: fmt.Sprintf("ramp-%d", i),
				},
			}
		default:
			prog, _ := mutator.ByName(defaultFleetPrograms[i%len(defaultFleetPrograms)])
			prog = prog.Scale(scale)
			kind := BC
			if i%2 == 1 {
				kind = uncooperative[(i/2)%len(uncooperative)]
			}
			// ~2× the program's scaled minimum heap: roomy when alone,
			// contended when the whole fleet is resident.
			ts = TenantSpec{
				Collector: kind,
				Program:   prog,
				HeapBytes: mem.RoundUpPage(2 * prog.MinHeap),
			}
		}
		// Two noisy neighbors: double weight and per-tenant chaos.
		if n >= 4 && (i == n/2 || i == n-1) {
			ts.Chaos = "thrash"
			ts.Weight = 2
		}
		sumHeap += ts.HeapBytes
		spec.Tenants = append(spec.Tenants, ts)
	}
	phys := mem.RoundUpPage(uint64(0.65 * float64(sumHeap)))
	if phys < vmm.MinPhysBytes {
		phys = vmm.MinPhysBytes
	}
	spec.PhysBytes = phys
	return spec
}
