// Package sim assembles whole experiments: a simulated machine, one or
// more JVM processes running benchmark programs under a chosen collector,
// and the signalmem memory-pressure tool of §5.1. It produces the
// metrics the paper reports (execution time, pause times, BMU curves,
// fault counts).
package sim

import (
	"fmt"
	"time"

	"bookmarkgc/internal/collectors"
	"bookmarkgc/internal/core"
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/trace"
	"bookmarkgc/internal/vmm"
)

// CollectorKind names one of the implemented collectors.
type CollectorKind string

// The collectors of §5, plus the paper's BC variants.
const (
	BC           CollectorKind = "BC"
	BCResizeOnly CollectorKind = "BCResizeOnly"
	GenMS        CollectorKind = "GenMS"
	GenCopy      CollectorKind = "GenCopy"
	CopyMS       CollectorKind = "CopyMS"
	MarkSweep    CollectorKind = "MarkSweep"
	SemiSpace    CollectorKind = "SemiSpace"
	GenMSFixed   CollectorKind = "GenMSFixed"
	GenCopyFixed CollectorKind = "GenCopyFixed"

	// Ablation and extension variants of BC (§7, DESIGN.md).
	BCNoAggressive CollectorKind = "BC-NoAggressiveDiscard"
	BCPointerFree  CollectorKind = "BC-PointerFreeVictims"
	BCRegrow       CollectorKind = "BC-Regrow"

	// GenMSAdvisor is GenMS with an Alonso–Appel heap-sizing advisor —
	// the related-work approach (§6) that resizes but does not cooperate.
	GenMSAdvisor CollectorKind = "GenMSAdvisor"
)

// AllKinds lists every collector for sweeps.
var AllKinds = []CollectorKind{BC, GenMS, GenCopy, CopyMS, MarkSweep, SemiSpace}

// fixedNursery sizes Figure 5(b)'s fixed nursery: 4 MB against the
// paper's 77 MB heap, kept proportional so scaled-down experiments
// exercise the same policy.
func fixedNursery(env *gc.Env) int {
	n := env.HeapPages * 4 / 77
	if n < 16 {
		n = 16
	}
	return n
}

// NewCollector instantiates kind on env.
func NewCollector(kind CollectorKind, env *gc.Env) gc.Collector {
	switch kind {
	case BC:
		return core.New(env, core.Config{})
	case BCResizeOnly:
		return core.New(env, core.Config{ResizeOnly: true})
	case BCNoAggressive:
		return core.New(env, core.Config{NoAggressiveDiscard: true})
	case BCPointerFree:
		return core.New(env, core.Config{Victim: core.VictimPreferPointerFree})
	case BCRegrow:
		return core.New(env, core.Config{Regrow: true})
	case GenMS:
		return collectors.NewGenMS(env)
	case GenMSAdvisor:
		return collectors.NewAdvisedGenMS(env)
	case GenMSFixed:
		c := collectors.NewGenMS(env)
		c.FixedNurseryPages = fixedNursery(env)
		return c
	case GenCopy:
		return collectors.NewGenCopy(env)
	case GenCopyFixed:
		c := collectors.NewGenCopy(env)
		c.FixedNurseryPages = fixedNursery(env)
		return c
	case CopyMS:
		return collectors.NewCopyMS(env)
	case MarkSweep:
		return collectors.NewMarkSweep(env)
	case SemiSpace:
		return collectors.NewSemiSpace(env)
	}
	panic(fmt.Sprintf("sim: unknown collector %q", kind))
}

// Pressure describes the memory-pressure schedule of one experiment.
type Pressure struct {
	// InitialBytes are pinned at time StartAt (signalmem's first grab).
	InitialBytes uint64
	// GrowBytes are pinned every GrowEvery until TargetAvailBytes of the
	// machine remain unpinned (§5.3.2 uses 1 MB per 100 ms).
	GrowBytes        uint64
	GrowEvery        time.Duration
	TargetAvailBytes uint64
	// StartAt delays the onset (the paper applies pressure only to the
	// measured iteration).
	StartAt time.Duration
}

// SteadyPressure removes frac of the heap size immediately (Figure 3).
func SteadyPressure(heapBytes uint64, frac float64) *Pressure {
	return &Pressure{InitialBytes: uint64(frac * float64(heapBytes))}
}

// DynamicPressure is §5.3.2's schedule: grab 30 MB, then 1 MB every
// 100 ms until only availBytes of the machine remain available.
func DynamicPressure(availBytes uint64) *Pressure {
	return &Pressure{
		InitialBytes:     30 << 20,
		GrowBytes:        1 << 20,
		GrowEvery:        100 * time.Millisecond,
		TargetAvailBytes: availBytes,
	}
}

// CalibratedDynamicPressure is the §5.3.2 schedule with its ramp scaled
// to the simulated substrate: the paper's wall-clock rate (1 MB/100 ms)
// is glacial next to simulated CPU costs, so the pin interval is chosen
// to complete the ramp within roughly the first third of an unpressured
// run of length baseline — as in the paper's measured iterations.
func CalibratedDynamicPressure(phys, avail, initial, grow uint64, baseline time.Duration) *Pressure {
	if phys <= avail {
		return &Pressure{TargetAvailBytes: avail}
	}
	if initial >= phys-avail {
		initial = (phys - avail) / 2
	}
	if grow == 0 {
		grow = 1 << 20
	}
	steps := (phys - avail - initial) / grow
	if steps == 0 {
		steps = 1
	}
	every := baseline / 3 / time.Duration(steps)
	if every <= 0 {
		every = time.Millisecond
	}
	return &Pressure{
		InitialBytes:     initial,
		GrowBytes:        grow,
		GrowEvery:        every,
		TargetAvailBytes: avail,
	}
}

// SignalMem pins memory on a schedule, like the paper's signalmem tool
// (mmap + touch + mlock at a configured rate).
type SignalMem struct {
	v  *vmm.VMM
	p  Pressure
	tr trace.Tracer
}

// StartSignalMem arms the schedule on the machine's clock. tr records
// each pinning step (nil for none).
func StartSignalMem(v *vmm.VMM, p Pressure, tr trace.Tracer) *SignalMem {
	if tr == nil {
		tr = trace.Nop{}
	}
	s := &SignalMem{v: v, p: p, tr: tr}
	v.Clock.Schedule(p.StartAt, s.initial)
	return s
}

func (s *SignalMem) initial() {
	pin := s.p.InitialBytes
	// Never pin past the configured availability target (nor the whole
	// machine): signalmem stops when the desired level is reached (§5.1).
	total := uint64(s.v.TotalFrames()) * mem.PageSize
	floor := s.p.TargetAvailBytes
	if total > floor && pin > total-floor {
		pin = total - floor
	}
	frames := int(pin / mem.PageSize)
	s.v.Pin(frames)
	s.tr.Point(trace.EvMemoryPinned, int64(frames), int64(s.v.PinnedFrames()))
	if s.p.GrowBytes > 0 {
		s.v.Clock.Schedule(s.v.Clock.Now()+s.p.GrowEvery, s.grow)
	}
}

func (s *SignalMem) grow() {
	avail := uint64(s.v.TotalFrames()-s.v.PinnedFrames()) * mem.PageSize
	if avail <= s.p.TargetAvailBytes {
		return
	}
	want := avail - s.p.TargetAvailBytes
	step := s.p.GrowBytes
	if step > want {
		step = want
	}
	frames := int(step / mem.PageSize)
	s.v.Pin(frames)
	s.tr.Point(trace.EvMemoryPinned, int64(frames), int64(s.v.PinnedFrames()))
	s.v.Clock.Schedule(s.v.Clock.Now()+s.p.GrowEvery, s.grow)
}

// RunConfig describes one JVM-on-one-machine experiment.
type RunConfig struct {
	Collector CollectorKind
	Program   mutator.Spec
	HeapBytes uint64
	PhysBytes uint64
	Pressure  *Pressure // nil = none
	Seed      int64
	Costs     *vmm.Costs // nil = DefaultCosts

	// Trace, when non-nil, records GC phase spans and VM-cooperation
	// events on the run's simulated clock. Counters, when non-nil,
	// accumulates event counts and histograms. Both observe only; they
	// never advance the clock, so traced runs are bit-identical to
	// untraced ones.
	Trace    *trace.Recorder
	Counters *trace.Counters
}

// Result is the measured outcome of one run.
type Result struct {
	Config      RunConfig
	Timeline    metrics.Timeline
	Mutator     mutator.Result
	GCStats     gc.Stats
	ProcStats   vmm.ProcStats
	ElapsedSecs float64
	Counters    *trace.Counters // the registry passed in, if any
}

// Run executes one configuration to completion.
func Run(cfg RunConfig) Result {
	clock := vmm.NewClock()
	costs := vmm.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	v := vmm.New(clock, cfg.PhysBytes, costs)
	env := gc.NewEnv(v, string(cfg.Collector), cfg.HeapBytes)
	tr := trace.Tracer(trace.Nop{})
	if cfg.Trace != nil {
		cfg.Trace.SetClock(clock)
		tr = cfg.Trace
	}
	env.Trace = tr
	env.Counters = cfg.Counters
	types := mutator.DeclareTypes(env)
	col := NewCollector(cfg.Collector, env)
	if cfg.Pressure != nil {
		StartSignalMem(v, *cfg.Pressure, tr)
	}
	run := mutator.NewRun(cfg.Program, col, types, cfg.Seed)

	start := clock.Now()
	col.Stats().Timeline.Start = start
	mres := run.RunToCompletion()
	col.Stats().Timeline.End = clock.Now()

	return Result{
		Config:      cfg,
		Timeline:    col.Stats().Timeline,
		Mutator:     mres,
		GCStats:     *col.Stats(),
		ProcStats:   env.Proc.Stats(),
		ElapsedSecs: (clock.Now() - start).Seconds(),
		Counters:    cfg.Counters,
	}
}

// MultiConfig describes n identical JVMs sharing one machine (§5.3.3).
type MultiConfig struct {
	Collector CollectorKind
	Program   mutator.Spec
	HeapBytes uint64
	PhysBytes uint64
	JVMs      int
	Quantum   int // allocations per scheduling quantum
	Seed      int64
	Costs     *vmm.Costs

	// Trace gives each JVM its own named thread in one shared trace;
	// Counters is one registry shared by every JVM. Both are optional.
	Trace    *trace.Recorder
	Counters *trace.Counters
}

// RunMulti round-robins the JVMs on one simulated CPU until all complete,
// returning one Result per JVM. Total elapsed time is shared; per-JVM
// pause statistics are their own.
func RunMulti(cfg MultiConfig) []Result {
	clock := vmm.NewClock()
	costs := vmm.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 512
	}
	v := vmm.New(clock, cfg.PhysBytes, costs)

	type jvm struct {
		env *gc.Env
		col gc.Collector
		run *mutator.Run
	}
	if cfg.Trace != nil {
		cfg.Trace.SetClock(clock)
	}
	jvms := make([]*jvm, cfg.JVMs)
	for i := range jvms {
		env := gc.NewEnv(v, fmt.Sprintf("%s-%d", cfg.Collector, i), cfg.HeapBytes)
		if cfg.Trace != nil {
			env.Trace = cfg.Trace.Thread(fmt.Sprintf("%s-%d", cfg.Collector, i))
		}
		env.Counters = cfg.Counters
		types := mutator.DeclareTypes(env)
		col := NewCollector(cfg.Collector, env)
		jvms[i] = &jvm{
			env: env,
			col: col,
			run: mutator.NewRun(cfg.Program, col, types, cfg.Seed+int64(i)),
		}
		col.Stats().Timeline.Start = clock.Now()
	}

	running := cfg.JVMs
	for running > 0 {
		running = 0
		for _, j := range jvms {
			if j.run.Done() {
				continue
			}
			if j.run.Step(cfg.Quantum) {
				running++
			} else {
				j.col.Stats().Timeline.End = clock.Now()
			}
		}
	}
	out := make([]Result, cfg.JVMs)
	for i, j := range jvms {
		if j.col.Stats().Timeline.End == 0 {
			j.col.Stats().Timeline.End = clock.Now()
		}
		out[i] = Result{
			Config: RunConfig{
				Collector: cfg.Collector, Program: cfg.Program,
				HeapBytes: cfg.HeapBytes, PhysBytes: cfg.PhysBytes,
			},
			Timeline:    j.col.Stats().Timeline,
			Mutator:     j.run.Finish(),
			GCStats:     *j.col.Stats(),
			ProcStats:   j.env.Proc.Stats(),
			ElapsedSecs: (clock.Now() - j.col.Stats().Timeline.Start).Seconds(),
			Counters:    cfg.Counters,
		}
	}
	return out
}
