// Package sim assembles whole experiments: a simulated machine, one or
// more JVM processes running benchmark programs under a chosen collector,
// and the signalmem memory-pressure tool of §5.1. It produces the
// metrics the paper reports (execution time, pause times, BMU curves,
// fault counts).
package sim

import (
	"fmt"
	"time"

	"bookmarkgc/internal/collectors"
	"bookmarkgc/internal/core"
	"bookmarkgc/internal/fault"
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/telemetry"
	"bookmarkgc/internal/trace"
	"bookmarkgc/internal/vmm"
)

// CollectorKind names one of the implemented collectors.
type CollectorKind string

// The collectors of §5, plus the paper's BC variants.
const (
	BC           CollectorKind = "BC"
	BCResizeOnly CollectorKind = "BCResizeOnly"
	GenMS        CollectorKind = "GenMS"
	GenCopy      CollectorKind = "GenCopy"
	CopyMS       CollectorKind = "CopyMS"
	MarkSweep    CollectorKind = "MarkSweep"
	SemiSpace    CollectorKind = "SemiSpace"
	GenMSFixed   CollectorKind = "GenMSFixed"
	GenCopyFixed CollectorKind = "GenCopyFixed"

	// Ablation and extension variants of BC (§7, DESIGN.md).
	BCNoAggressive CollectorKind = "BC-NoAggressiveDiscard"
	BCPointerFree  CollectorKind = "BC-PointerFreeVictims"
	BCRegrow       CollectorKind = "BC-Regrow"

	// GenMSAdvisor is GenMS with an Alonso–Appel heap-sizing advisor —
	// the related-work approach (§6) that resizes but does not cooperate.
	GenMSAdvisor CollectorKind = "GenMSAdvisor"
)

// AllKinds lists every collector for sweeps.
var AllKinds = []CollectorKind{BC, GenMS, GenCopy, CopyMS, MarkSweep, SemiSpace}

// KnownKinds lists every implemented collector kind, including the
// fixed-nursery, advisor, and ablation variants — the inventory CLIs
// enumerate (gcsim -list).
var KnownKinds = []CollectorKind{
	BC, BCResizeOnly, GenMS, GenCopy, CopyMS, MarkSweep, SemiSpace,
	GenMSFixed, GenCopyFixed, BCNoAggressive, BCPointerFree, BCRegrow,
	GenMSAdvisor,
}

// fixedNursery sizes Figure 5(b)'s fixed nursery: 4 MB against the
// paper's 77 MB heap, kept proportional so scaled-down experiments
// exercise the same policy.
func fixedNursery(env *gc.Env) int {
	n := env.HeapPages * 4 / 77
	if n < 16 {
		n = 16
	}
	return n
}

// NewCollector instantiates kind on env. An unknown kind is a
// configuration error, returned rather than panicked so sweeps and CLIs
// can report it and move on.
func NewCollector(kind CollectorKind, env *gc.Env) (gc.Collector, error) {
	switch kind {
	case BC:
		return core.New(env, core.Config{}), nil
	case BCResizeOnly:
		return core.New(env, core.Config{ResizeOnly: true}), nil
	case BCNoAggressive:
		return core.New(env, core.Config{NoAggressiveDiscard: true}), nil
	case BCPointerFree:
		return core.New(env, core.Config{Victim: core.VictimPreferPointerFree}), nil
	case BCRegrow:
		return core.New(env, core.Config{Regrow: true}), nil
	case GenMS:
		return collectors.NewGenMS(env), nil
	case GenMSAdvisor:
		return collectors.NewAdvisedGenMS(env), nil
	case GenMSFixed:
		c := collectors.NewGenMS(env)
		c.FixedNurseryPages = fixedNursery(env)
		return c, nil
	case GenCopy:
		return collectors.NewGenCopy(env), nil
	case GenCopyFixed:
		c := collectors.NewGenCopy(env)
		c.FixedNurseryPages = fixedNursery(env)
		return c, nil
	case CopyMS:
		return collectors.NewCopyMS(env), nil
	case MarkSweep:
		return collectors.NewMarkSweep(env), nil
	case SemiSpace:
		return collectors.NewSemiSpace(env), nil
	}
	return nil, fmt.Errorf("sim: unknown collector %q", kind)
}

// Pressure describes the memory-pressure schedule of one experiment.
type Pressure struct {
	// InitialBytes are pinned at time StartAt (signalmem's first grab).
	InitialBytes uint64
	// GrowBytes are pinned every GrowEvery until TargetAvailBytes of the
	// machine remain unpinned (§5.3.2 uses 1 MB per 100 ms).
	GrowBytes        uint64
	GrowEvery        time.Duration
	TargetAvailBytes uint64
	// StartAt delays the onset (the paper applies pressure only to the
	// measured iteration).
	StartAt time.Duration
}

// SteadyPressure removes frac of the heap size immediately (Figure 3).
func SteadyPressure(heapBytes uint64, frac float64) *Pressure {
	return &Pressure{InitialBytes: uint64(frac * float64(heapBytes))}
}

// DynamicPressure is §5.3.2's schedule: grab 30 MB, then 1 MB every
// 100 ms until only availBytes of the machine remain available.
func DynamicPressure(availBytes uint64) *Pressure {
	return &Pressure{
		InitialBytes:     30 << 20,
		GrowBytes:        1 << 20,
		GrowEvery:        100 * time.Millisecond,
		TargetAvailBytes: availBytes,
	}
}

// CalibratedDynamicPressure is the §5.3.2 schedule with its ramp scaled
// to the simulated substrate: the paper's wall-clock rate (1 MB/100 ms)
// is glacial next to simulated CPU costs, so the pin interval is chosen
// to complete the ramp within roughly the first third of an unpressured
// run of length baseline — as in the paper's measured iterations.
func CalibratedDynamicPressure(phys, avail, initial, grow uint64, baseline time.Duration) *Pressure {
	if phys <= avail {
		return &Pressure{TargetAvailBytes: avail}
	}
	if initial >= phys-avail {
		initial = (phys - avail) / 2
	}
	if grow == 0 {
		grow = 1 << 20
	}
	steps := (phys - avail - initial) / grow
	if steps == 0 {
		steps = 1
	}
	every := baseline / 3 / time.Duration(steps)
	if every <= 0 {
		every = time.Millisecond
	}
	return &Pressure{
		InitialBytes:     initial,
		GrowBytes:        grow,
		GrowEvery:        every,
		TargetAvailBytes: avail,
	}
}

// SignalMem pins memory on a schedule, like the paper's signalmem tool
// (mmap + touch + mlock at a configured rate).
type SignalMem struct {
	v  *vmm.VMM
	p  Pressure
	tr trace.Tracer
}

// StartSignalMem arms the schedule on the machine's clock. tr records
// each pinning step (nil for none).
func StartSignalMem(v *vmm.VMM, p Pressure, tr trace.Tracer) *SignalMem {
	if tr == nil {
		tr = trace.Nop{}
	}
	s := &SignalMem{v: v, p: p, tr: tr}
	v.Clock.Schedule(p.StartAt, s.initial)
	return s
}

func (s *SignalMem) initial() {
	pin := s.p.InitialBytes
	// Never pin past the configured availability target (nor the whole
	// machine): signalmem stops when the desired level is reached (§5.1).
	total := uint64(s.v.TotalFrames()) * mem.PageSize
	floor := s.p.TargetAvailBytes
	if total > floor && pin > total-floor {
		pin = total - floor
	}
	frames := int(pin / mem.PageSize)
	s.v.Pin(frames)
	s.tr.Point(trace.EvMemoryPinned, int64(frames), int64(s.v.PinnedFrames()))
	if s.p.GrowBytes > 0 {
		s.v.Clock.Schedule(s.v.Clock.Now()+s.p.GrowEvery, s.grow)
	}
}

func (s *SignalMem) grow() {
	avail := uint64(s.v.TotalFrames()-s.v.PinnedFrames()) * mem.PageSize
	if avail <= s.p.TargetAvailBytes {
		return
	}
	want := avail - s.p.TargetAvailBytes
	step := s.p.GrowBytes
	if step > want {
		step = want
	}
	frames := int(step / mem.PageSize)
	s.v.Pin(frames)
	s.tr.Point(trace.EvMemoryPinned, int64(frames), int64(s.v.PinnedFrames()))
	s.v.Clock.Schedule(s.v.Clock.Now()+s.p.GrowEvery, s.grow)
}

// resolvePolicy builds the named heap policy ("" = none: the fixed
// configured budget, and BC's built-in default). BC's Regrow variant
// carries its regrow flag into an explicit bc-shrink policy so
// "-heap-policy bc-shrink" on BC-Regrow keeps the §7 extension.
func resolvePolicy(name string, kind CollectorKind) (heappolicy.Policy, error) {
	if name == "" {
		return nil, nil
	}
	return heappolicy.New(name, heappolicy.Options{Regrow: kind == BCRegrow})
}

// policyRelay forwards the VMM's eviction notices to a
// pressure-sensitive heap policy for collectors that have no
// vmm.Handler of their own (everything but BC). Registering a handler
// also marks the process cooperative for the fleet arbiter —
// intentionally: the pressure-sensitive policy IS this process's
// cooperation mechanism.
type policyRelay struct{ col gc.Collector }

func (r *policyRelay) EvictionScheduled(mem.PageID) {
	gc.ObserveHeapPolicy(r.col, heappolicy.EvPressure, -1)
}

func (r *policyRelay) PageReloaded(mem.PageID, bool) {}

// newInstance assembles one JVM on machine v: its environment (named
// name), trace and counter wiring, declared types, heap policy,
// collector, and stepable workload. Run and RunMulti both build
// instances through it so their setup paths cannot drift apart. A nil
// tr keeps the environment's default no-op tracer. src is the workload
// factory — a mutator.Spec for the generated programs, or a trace
// source (internal/workload) for replayed ones. markWorkers overrides
// the parallel mark engine's worker count when positive (0 keeps the
// process-wide default); any value produces bit-identical output. pol
// is the heap-limit policy (nil = collector default).
func newInstance(v *vmm.VMM, name string, kind CollectorKind, heapBytes uint64,
	src mutator.Source, seed int64, tr trace.Tracer, ctrs *trace.Counters,
	markWorkers int, pol heappolicy.Policy) (*gc.Env, gc.Collector, mutator.Workload, error) {
	env := gc.NewEnv(v, name, heapBytes)
	if tr != nil {
		env.Trace = tr
	}
	env.Counters = ctrs
	if markWorkers > 0 {
		env.MarkWorkers = markWorkers
	}
	env.HeapPolicy = pol
	types := mutator.DeclareTypes(env)
	col, err := NewCollector(kind, env)
	if err != nil {
		return nil, nil, nil, err
	}
	if pol != nil && pol.PressureSensitive() && env.Proc.Handler() == nil {
		env.Proc.Register(&policyRelay{col: col})
	}
	wl, err := src.NewWorkload(col, types, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	return env, col, wl, nil
}

// RunConfig describes one JVM-on-one-machine experiment.
type RunConfig struct {
	Collector CollectorKind
	Program   mutator.Spec
	HeapBytes uint64
	PhysBytes uint64
	Pressure  *Pressure // nil = none
	Seed      int64
	Costs     *vmm.Costs // nil = DefaultCosts

	// Trace, when non-nil, records GC phase spans and VM-cooperation
	// events on the run's simulated clock. Counters, when non-nil,
	// accumulates event counts and histograms. Both observe only; they
	// never advance the clock, so traced runs are bit-identical to
	// untraced ones.
	Trace    *trace.Recorder
	Counters *trace.Counters

	// Chaos, when non-nil, interposes a fault injector on the process's
	// notification stream (and arms its pressure-spike schedule). The
	// mutator then runs in quanta with injector safepoints between them,
	// so delayed/reordered notifications have delivery points.
	Chaos *fault.Config

	// Workload, when non-nil, supplies the mutator events instead of
	// Program's generator — a recorded or synthesized allocation trace
	// (internal/workload). Program is then informational only.
	Workload mutator.Source

	// Sink observes the generator's event stream (an allocation-trace
	// recorder). Observation happens on the host: it never advances the
	// simulated clock, so recorded runs measure identically to
	// unrecorded ones. Ignored for workloads that are not generators.
	Sink mutator.Sink

	// MarkWorkers, when positive, overrides the parallel mark engine's
	// worker count for this run (0 = process-wide default). It changes
	// only host-side parallelism: results are bit-identical for any
	// value, so it is not part of a run's identity for caching.
	MarkWorkers int

	// Telemetry, when non-nil, samples a live time series on the
	// simulated clock, attributes each pause to its phases, and arms the
	// flight recorder (internal/telemetry). Like Trace, it observes only:
	// an instrumented run is bit-identical to an uninstrumented one.
	Telemetry *telemetry.Collector

	// HeapPolicy names the heap-limit policy (internal/heappolicy:
	// fixed, bc-shrink, membalancer, composed). Empty keeps the
	// collector's default: the fixed configured budget, except BC,
	// whose native bc-shrink rule is the default.
	HeapPolicy string
}

// chaosQuantum is the mutator step size between injector safepoints.
const chaosQuantum = 512

// runQuantum is the step size for uninstrumented single-JVM runs.
const runQuantum = 4096

// Result is the measured outcome of one run.
type Result struct {
	Config      RunConfig
	Timeline    metrics.Timeline
	Mutator     mutator.Result
	GCStats     gc.Stats
	ProcStats   vmm.ProcStats
	ElapsedSecs float64
	Counters    *trace.Counters // the registry passed in, if any

	// Err is non-nil when the run failed rather than completed: an
	// unknown collector kind, or gc.ErrOutOfMemory recovered at the run
	// boundary (the rest of the Result then holds the partial
	// measurements up to the failure). Sweeps check it per configuration
	// instead of dying wholesale.
	Err error

	// Faults holds the injector's counts when Chaos was configured.
	Faults *fault.Stats
}

// Run executes one configuration to completion.
func Run(cfg RunConfig) (res Result) {
	clock := vmm.NewClock()
	costs := vmm.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	v := vmm.New(clock, cfg.PhysBytes, costs)
	tr := trace.Tracer(trace.Nop{})
	if cfg.Trace != nil {
		cfg.Trace.SetClock(clock)
		tr = cfg.Trace
	}
	if cfg.Telemetry != nil {
		// Wrap before instance assembly so every span the collector emits
		// flows through the attribution tracer.
		tr = cfg.Telemetry.Tracer(tr)
	}
	src := mutator.Source(cfg.Program)
	if cfg.Workload != nil {
		src = cfg.Workload
	}
	pol, err := resolvePolicy(cfg.HeapPolicy, cfg.Collector)
	if err != nil {
		return Result{Config: cfg, Err: err}
	}
	env, col, run, err := newInstance(v, string(cfg.Collector), cfg.Collector,
		cfg.HeapBytes, src, cfg.Seed, tr, cfg.Counters, cfg.MarkWorkers, pol)
	if err != nil {
		return Result{Config: cfg, Err: err}
	}
	// The space dies with this run; recycle its slabs — and the Env's
	// worklist and root scratch — for the next run in the sweep (this
	// defer is registered first, so it fires after the OOM-recovery defer
	// below has assembled the Result).
	defer func() {
		env.ReleaseScratch(col.Roots())
		env.Proc.Space().Release()
	}()
	if cfg.Telemetry != nil {
		cfg.Telemetry.Attach(v, env, col, cfg.Counters)
	}
	if cfg.Sink != nil {
		if sw, ok := run.(interface{ SetSink(mutator.Sink) }); ok {
			sw.SetSink(cfg.Sink)
		}
	}
	var inj *fault.Injector
	if cfg.Chaos != nil {
		inj = fault.Interpose(env.Proc, *cfg.Chaos, cfg.Counters)
		inj.StartSpikes(v)
	}
	if cfg.Pressure != nil {
		StartSignalMem(v, *cfg.Pressure, tr)
	}

	start := clock.Now()
	col.Stats().Timeline.Start = start
	finish := func(mres mutator.Result, failure error) Result {
		col.Stats().Timeline.End = clock.Now()
		if cfg.Telemetry != nil {
			cfg.Telemetry.RunEnded(failure)
		}
		r := Result{
			Config:      cfg,
			Timeline:    col.Stats().Timeline,
			Mutator:     mres,
			GCStats:     *col.Stats(),
			ProcStats:   env.Proc.Stats(),
			ElapsedSecs: (clock.Now() - start).Seconds(),
			Counters:    cfg.Counters,
			Err:         failure,
		}
		if inj != nil {
			s := inj.Stats()
			r.Faults = &s
		}
		return r
	}
	// A live heap that outgrows the budget surfaces as an ErrOutOfMemory
	// panic deep in an allocation; report it as a failed Result so sweeps
	// over many configurations survive the ones that cannot fit.
	defer func() {
		if r := recover(); r != nil {
			oom, ok := r.(gc.ErrOutOfMemory)
			if !ok {
				panic(r)
			}
			res = finish(run.Finish(), oom)
		}
	}()
	if inj != nil {
		for run.Step(chaosQuantum) {
			inj.Safepoint()
		}
	} else {
		for run.Step(runQuantum) {
		}
	}
	// A workload can end by failing internally (a corrupt or truncated
	// trace); that is a run failure, same as out-of-memory.
	return finish(run.Finish(), run.Err())
}

// MultiConfig describes n identical JVMs sharing one machine (§5.3.3).
type MultiConfig struct {
	Collector CollectorKind
	Program   mutator.Spec
	HeapBytes uint64
	PhysBytes uint64
	JVMs      int
	Quantum   int // allocations per scheduling quantum
	Seed      int64
	Costs     *vmm.Costs

	// Trace gives each JVM its own named thread in one shared trace;
	// Counters is one registry shared by every JVM. Both are optional.
	Trace    *trace.Recorder
	Counters *trace.Counters

	// Workload, when non-nil, supplies every JVM's events instead of
	// Program's generator; each instance replays its own stream.
	Workload mutator.Source

	// MarkWorkers, when positive, overrides the parallel mark engine's
	// worker count for every JVM (0 = process-wide default). Output is
	// bit-identical for any value.
	MarkWorkers int

	// HeapPolicy names every JVM's heap-limit policy ("" = default).
	HeapPolicy string
}

// RunMulti round-robins the JVMs on one simulated CPU until all complete,
// returning one Result per JVM. Total elapsed time is shared; per-JVM
// pause statistics are their own. It is a thin wrapper over the fleet
// engine — n identical tenants, no arbitration, no chaos, no ladder —
// and produces output byte-identical to the pre-fleet implementation.
func RunMulti(cfg MultiConfig) []Result {
	tenants := make([]TenantSpec, cfg.JVMs)
	var workloads []mutator.Source
	if cfg.Workload != nil {
		workloads = make([]mutator.Source, cfg.JVMs)
	}
	for i := range tenants {
		tenants[i] = TenantSpec{
			Name:      fmt.Sprintf("%s-%d", cfg.Collector, i),
			Collector: cfg.Collector,
			Program:   cfg.Program,
			HeapBytes: cfg.HeapBytes,
			// The fleet engine seeds tenant i with Spec.Seed+Seed+i;
			// carrying cfg.Seed here reproduces RunMulti's Seed+i.
			Seed:       cfg.Seed,
			HeapPolicy: cfg.HeapPolicy,
		}
		if workloads != nil {
			workloads[i] = cfg.Workload
		}
	}
	fr := RunFleet(FleetConfig{
		Spec: FleetSpec{
			Tenants:   tenants,
			PhysBytes: cfg.PhysBytes,
			Quantum:   cfg.Quantum,
		},
		Costs:       cfg.Costs,
		Trace:       cfg.Trace,
		Counters:    cfg.Counters,
		Workloads:   workloads,
		MarkWorkers: cfg.MarkWorkers,
	})
	if fr.Err != nil {
		// Same kind for every JVM: the whole configuration is invalid.
		return []Result{{Config: RunConfig{Collector: cfg.Collector, Program: cfg.Program,
			HeapBytes: cfg.HeapBytes, PhysBytes: cfg.PhysBytes}, Err: fr.Err}}
	}
	return fr.Tenants
}
