package sim

import (
	"testing"

	"bookmarkgc/internal/fault"
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mutator"
)

// oomJBB is pseudoJBB scaled so its live set (~7 MB) cannot fit the
// 2 MB heaps the OOM tests hand it.
func oomJBB() mutator.Spec { return mutator.PseudoJBB().Scale(0.35) }

func TestRunRecoversOOM(t *testing.T) {
	for _, kind := range []CollectorKind{BC, SemiSpace} {
		t.Run(string(kind), func(t *testing.T) {
			res := Run(RunConfig{
				Collector: kind,
				Program:   oomJBB(),
				HeapBytes: 2 << 20,
				PhysBytes: 64 << 20,
				Seed:      1,
			})
			if res.Err == nil {
				t.Fatal("overcommitted run completed without error")
			}
			oom, ok := res.Err.(gc.ErrOutOfMemory)
			if !ok {
				t.Fatalf("Err = %v, want gc.ErrOutOfMemory", res.Err)
			}
			if oom.Collector == "" || oom.HeapPages == 0 {
				t.Fatalf("OOM error lacks context: %+v", oom)
			}
			// The partial measurements up to the failure must survive.
			if res.Mutator.AllocatedBytes == 0 {
				t.Fatal("no partial mutator result reported")
			}
			if res.ElapsedSecs <= 0 {
				t.Fatal("no simulated time recorded before the failure")
			}
		})
	}
}

func TestRunMultiSurvivesOOM(t *testing.T) {
	// Identically configured JVMs all outgrow their budgets; the failures
	// must stay per-JVM — RunMulti itself returns one Result per JVM with
	// Err set, exactly as a sweep needs, instead of the first OOM
	// panicking the whole experiment.
	rs := RunMulti(MultiConfig{
		Collector: BC,
		Program:   oomJBB(),
		HeapBytes: 2 << 20,
		PhysBytes: 64 << 20,
		JVMs:      2,
		Seed:      5,
	})
	if len(rs) != 2 {
		t.Fatalf("%d results, want 2", len(rs))
	}
	for i, r := range rs {
		if r.Err == nil {
			t.Fatalf("jvm %d completed despite overcommit", i)
		}
		if _, ok := r.Err.(gc.ErrOutOfMemory); !ok {
			t.Fatalf("jvm %d: Err = %v, want gc.ErrOutOfMemory", i, r.Err)
		}
		if r.Timeline.End <= r.Timeline.Start {
			t.Fatalf("jvm %d has empty timeline", i)
		}
	}
}

func TestChaosRunDeterministic(t *testing.T) {
	// Same chaos regime, same seeds: the interposed faults are part of
	// the simulation, so two runs must agree bit for bit — checksum,
	// simulated time, and injection counts.
	cfg, ok := fault.ByName("thrash", 11)
	if !ok {
		t.Fatal("unknown regime")
	}
	one := func() Result {
		return Run(RunConfig{
			Collector: BC,
			Program:   tinyJBB(),
			HeapBytes: 4 << 20,
			PhysBytes: 12 << 20,
			Seed:      7,
			Pressure:  &Pressure{InitialBytes: 9 << 20},
			Chaos:     &cfg,
		})
	}
	a, b := one(), one()
	if a.Err != nil {
		t.Fatalf("chaos run failed: %v", a.Err)
	}
	if a.Faults == nil || b.Faults == nil {
		t.Fatal("chaos run reported no fault stats")
	}
	if a.Faults.EvictsSeen == 0 {
		t.Fatal("injector saw no eviction notices; regime had no effect")
	}
	if a.Mutator.Checksum != b.Mutator.Checksum {
		t.Fatalf("checksums diverge: %#x vs %#x", a.Mutator.Checksum, b.Mutator.Checksum)
	}
	if a.ElapsedSecs != b.ElapsedSecs {
		t.Fatalf("simulated time diverges: %v vs %v", a.ElapsedSecs, b.ElapsedSecs)
	}
	if *a.Faults != *b.Faults {
		t.Fatalf("fault stats diverge:\n%+v\n%+v", *a.Faults, *b.Faults)
	}
}
