package sim

import (
	"fmt"
	"time"

	"bookmarkgc/internal/fault"
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/telemetry"
	"bookmarkgc/internal/trace"
	"bookmarkgc/internal/vmm"
	"bookmarkgc/internal/workload"
)

// ArbitrationPolicy names a fleet eviction-arbitration policy: how the
// machine chooses which tenant loses a page when the fleet is short.
type ArbitrationPolicy string

const (
	// PolicyGlobalLRU approves whatever the clock algorithm proposes —
	// the kernel's native behaviour, blind to tenant identity.
	PolicyGlobalLRU ArbitrationPolicy = "global-lru"
	// PolicyProportional vetoes evictions from tenants already at or
	// below their weighted share of the machine, pushing pressure toward
	// whoever is over budget (the MemBalancer-style composition rule).
	PolicyProportional ArbitrationPolicy = "proportional"
	// PolicyCooperative shields tenants that registered for paging
	// notifications (BC and kin) while any non-cooperating tenant still
	// holds reclaimable residency: cooperators can shrink gracefully on
	// their own, so forced eviction goes to those who cannot.
	PolicyCooperative ArbitrationPolicy = "cooperative"
)

// ArbitrationPolicies lists every policy, in documentation order.
var ArbitrationPolicies = []ArbitrationPolicy{PolicyGlobalLRU, PolicyProportional, PolicyCooperative}

// TenantSpec describes one fleet tenant: a pure, serializable value.
// Exactly one workload source applies, in precedence order: TracePath
// (a recorded .gctrace file), Synth (a synthesized trace), else Program
// (the generated benchmark).
type TenantSpec struct {
	// Name labels the tenant everywhere (trace threads, flight dumps,
	// reports); empty defaults to "<collector>-<index>".
	Name      string        `json:"name,omitempty"`
	Collector CollectorKind `json:"collector"`
	HeapBytes uint64        `json:"heap_bytes"`

	Program   mutator.Spec          `json:"program,omitempty"`
	Synth     *workload.SynthParams `json:"synth,omitempty"`
	TracePath string                `json:"trace_path,omitempty"`

	// Seed drives the tenant's workload generator (ignored for traces).
	Seed int64 `json:"seed,omitempty"`
	// Chaos, when non-empty, is a fault regime name (fault.Regimes). The
	// tenant's injector seed derives from the fleet chaos seed and the
	// tenant index via fault.TenantSeed, so schedules are independent.
	Chaos string `json:"chaos,omitempty"`
	// AdmitAtNS delays the tenant's first quantum until the given
	// simulated time: staggered admission, and the lever the admission
	// throttle pushes on when the fleet cascades.
	AdmitAtNS int64 `json:"admit_at_ns,omitempty"`
	// Weight is the tenant's proportional-share weight (default 1).
	Weight int `json:"weight,omitempty"`
	// HeapPolicy names the tenant's heap-limit policy
	// (internal/heappolicy), overriding FleetSpec.HeapPolicy. Empty
	// falls back to the fleet default, then the collector's own.
	HeapPolicy string `json:"heap_policy,omitempty"`
}

// FleetSpec is the serializable description of one fleet run: the
// tenants, the machine, the arbitration policy, and the degradation
// ladder. It is a pure value — runner jobs hash it as-is.
type FleetSpec struct {
	Tenants   []TenantSpec `json:"tenants"`
	PhysBytes uint64       `json:"phys_bytes"`
	// Quantum is allocations per scheduling turn (default 512).
	Quantum int `json:"quantum,omitempty"`
	// Seed offsets every tenant's workload seed (tenant i runs with
	// Seed + TenantSpec.Seed + i).
	Seed int64 `json:"seed,omitempty"`
	// ChaosSeed is the fleet-wide chaos seed tenant injector seeds
	// derive from.
	ChaosSeed int64 `json:"chaos_seed,omitempty"`
	// Policy is the starting arbitration policy (default global-lru).
	Policy ArbitrationPolicy `json:"policy,omitempty"`

	// HeapPolicy names the default heap-limit policy for every tenant
	// (internal/heappolicy); per-tenant HeapPolicy overrides it. Empty
	// keeps each collector's own default.
	HeapPolicy string `json:"heap_policy,omitempty"`
	// BalanceEveryNS arms the fleet MemBalancer: every BalanceEveryNS
	// of simulated time the machine's unpinned memory is redistributed
	// across tenants whose policies participate (heappolicy.Balancable)
	// in proportion to their square-root terms, by capping each
	// participant's heap target. Zero disables the balancer.
	BalanceEveryNS int64 `json:"balance_every_ns,omitempty"`

	// Degradation ladder. The cascade detector samples the fleet-wide
	// major-fault rate every CascadeWindowNS of simulated time; when the
	// per-window count meets CascadeMajorFaults for CascadeSustain
	// consecutive windows, the fleet has cascaded: the arbiter escalates
	// to EscalateTo (when set), the noisiest tenant is backpressured
	// (when Backpressure), unadmitted tenants are pushed back (when
	// AdmissionThrottle), and a fleet flight bundle is written. A zero
	// CascadeMajorFaults disables the detector.
	CascadeWindowNS    int64             `json:"cascade_window_ns,omitempty"`
	CascadeMajorFaults uint64            `json:"cascade_major_faults,omitempty"`
	CascadeSustain     int               `json:"cascade_sustain,omitempty"`
	EscalateTo         ArbitrationPolicy `json:"escalate_to,omitempty"`
	Backpressure       bool              `json:"backpressure,omitempty"`
	AdmissionThrottle  bool              `json:"admission_throttle,omitempty"`
}

// FleetConfig couples a FleetSpec with the host-side knobs that do not
// affect simulated outcomes (and so stay out of job hashes).
type FleetConfig struct {
	Spec  FleetSpec
	Costs *vmm.Costs // nil = DefaultCosts

	// Trace gives each tenant its own named thread in one shared
	// recorder; Counters is one registry shared by every tenant.
	Trace    *trace.Recorder
	Counters *trace.Counters

	// Workloads, when non-nil, overrides tenant i's workload source with
	// Workloads[i] (nil entries fall back to the spec). RunMulti uses it
	// to share one trace source across identical tenants.
	Workloads []mutator.Source

	// FlightDir arms a per-tenant telemetry collector on each tenant,
	// tagged with the tenant's name, plus the fleet-level cascade
	// bundles; all dumps draw on one shared DumpQuota.
	FlightDir string
	// MaxDumpsPerTenant bounds each tenant's share of the dump budget
	// (default 4).
	MaxDumpsPerTenant int

	// MarkWorkers overrides the parallel mark engine's worker count for
	// every tenant (0 = default). Output is bit-identical for any value.
	MarkWorkers int

	// AfterCollection, when set, runs after every collection of any
	// tenant whose collector exposes OnCollectionEnd (the BC family) —
	// the hook fleet soak tests hang invariant and accounting checks on.
	// The machine is passed so checks can audit cross-owner bookkeeping.
	AfterCollection func(tenant int, col gc.Collector, v *vmm.VMM)
}

// FleetResult is the outcome of one fleet run.
type FleetResult struct {
	// Tenants holds one Result per tenant, in spec order.
	Tenants []Result
	// Names are the resolved tenant names, index-aligned with Tenants.
	Names []string

	// InitialPolicy and Policy are the arbitration policy at the start
	// and end of the run (they differ iff the ladder escalated).
	InitialPolicy ArbitrationPolicy
	Policy        ArbitrationPolicy
	Cascades      int
	Escalated     bool

	// Fleet aggregates.
	AggMinorFaults uint64
	AggMajorFaults uint64
	AggEvictions   uint64
	ArbiterVetoes  uint64
	// PauseP99NS is each tenant's 99th-percentile pause, index-aligned.
	PauseP99NS []int64
	// Fairness is Jain's index over per-tenant eviction counts: 1.0 is
	// perfectly even pressure, 1/n is one tenant absorbing everything.
	Fairness float64

	// BalancerRounds counts fleet MemBalancer redistribution rounds
	// (zero unless FleetSpec.BalanceEveryNS armed the balancer).
	BalancerRounds int
	// AggPeakResident is the sum of every tenant's peak resident page
	// count — the fleet's memory-side Pareto axis.
	AggPeakResident uint64

	// ElapsedSecs is the fleet's total simulated time.
	ElapsedSecs float64
	VMM         vmm.Stats

	// FleetDumps are the cascade bundle paths written (FlightDir only).
	FleetDumps []string

	// Err is a configuration-level failure (unknown collector, bad
	// regime, unreadable trace): nothing ran. ErrTenant is the tenant
	// index it arose on, -1 for fleet-level problems.
	Err       error
	ErrTenant int
}

// tenant is one fleet member's runtime state.
type tenant struct {
	id   int
	spec TenantSpec
	name string

	env *gc.Env
	col gc.Collector
	run mutator.Workload
	inj *fault.Injector
	tel *telemetry.Collector

	admitAt      time.Duration
	penaltySkips int
	lastMajor    uint64 // detector snapshot for noisiest-tenant attribution

	done   bool
	failed error
}

// fleetArbiter maps vmm.Arbiter onto the current policy. Escalation
// swaps the mode, not the arbiter, so mid-run policy changes are a
// single field write on the simulated thread.
type fleetArbiter struct {
	f    *fleetRun
	mode ArbitrationPolicy
}

func (a *fleetArbiter) Approve(owner *vmm.Proc, pg mem.PageID) bool {
	switch a.mode {
	case PolicyProportional:
		t, ok := a.f.byProc[owner]
		if !ok {
			return true
		}
		return owner.ResidentPages() > a.f.shareFrames(t)
	case PolicyCooperative:
		if owner.Handler() == nil {
			return true
		}
		// Shield the cooperator only while some non-cooperating tenant
		// still has meaningful residency to give up.
		return !a.f.uncoopHasSlack()
	default:
		return true
	}
}

// uncoopSlackFloor is the residency (pages) below which a
// non-cooperating tenant no longer counts as an eviction target.
const uncoopSlackFloor = 32

// fleetRun is the live fleet engine state.
type fleetRun struct {
	cfg     FleetConfig
	clock   *vmm.Clock
	v       *vmm.VMM
	tenants []*tenant
	byProc  map[*vmm.Proc]*tenant
	arbiter *fleetArbiter
	quota   *telemetry.DumpQuota

	quantum     int
	totalWeight int

	// Cascade detector state.
	hotWindows int
	windowLast uint64
	cascades   int
	escalated  bool
	fleetDumps []string
	dumpSeq    int

	// Fleet MemBalancer state.
	balancerRounds int
}

// shareFrames is tenant t's weighted share of the machine's frames.
func (f *fleetRun) shareFrames(t *tenant) int {
	w := t.spec.Weight
	if w <= 0 {
		w = 1
	}
	return f.v.TotalFrames() * w / f.totalWeight
}

// uncoopHasSlack reports whether any non-cooperating tenant still holds
// enough residency to be a reasonable victim.
func (f *fleetRun) uncoopHasSlack() bool {
	for _, t := range f.tenants {
		if t.env.Proc.Handler() == nil && t.env.Proc.ResidentPages() > uncoopSlackFloor {
			return true
		}
	}
	return false
}

// resolveSource picks tenant i's workload source per the documented
// precedence: config override, recorded trace, synthesized trace,
// generated program.
func (f *fleetRun) resolveSource(i int, spec TenantSpec) (mutator.Source, error) {
	if f.cfg.Workloads != nil && i < len(f.cfg.Workloads) && f.cfg.Workloads[i] != nil {
		return f.cfg.Workloads[i], nil
	}
	if spec.TracePath != "" {
		return workload.Open(spec.TracePath)
	}
	if spec.Synth != nil {
		return workload.NewSynthSource(*spec.Synth)
	}
	if spec.Program.Name == "" {
		return nil, fmt.Errorf("sim: tenant has no workload (no program, synth, or trace)")
	}
	return spec.Program, nil
}

// RunFleet runs N heterogeneous tenants sharing one machine through a
// single discrete-event queue: round-robin quanta on one simulated CPU,
// cross-tenant eviction arbitration, per-tenant chaos, and the
// graceful-degradation ladder. Everything observable is a function of
// the FleetSpec alone — reports are byte-identical for any -jobs or
// -mark-workers setting.
func RunFleet(cfg FleetConfig) FleetResult {
	spec := cfg.Spec
	res := FleetResult{ErrTenant: -1}
	if len(spec.Tenants) == 0 {
		res.Err = fmt.Errorf("sim: fleet has no tenants")
		return res
	}
	clock := vmm.NewClock()
	costs := vmm.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	quantum := spec.Quantum
	if quantum <= 0 {
		quantum = 512
	}
	v := vmm.New(clock, spec.PhysBytes, costs)
	if cfg.Trace != nil {
		cfg.Trace.SetClock(clock)
	}

	policy := spec.Policy
	if policy == "" {
		policy = PolicyGlobalLRU
	}
	res.InitialPolicy = policy
	res.Policy = policy

	f := &fleetRun{
		cfg:     cfg,
		clock:   clock,
		v:       v,
		byProc:  make(map[*vmm.Proc]*tenant, len(spec.Tenants)),
		quantum: quantum,
	}
	// Every tenant space dies with this fleet; recycle the slabs — and
	// each Env's worklist and root scratch — for the next run in the sweep.
	defer func() {
		for _, t := range f.tenants {
			t.env.ReleaseScratch(t.col.Roots())
			t.env.Proc.Space().Release()
		}
	}()
	for _, t := range spec.Tenants {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		f.totalWeight += w
	}
	// The arbiter is installed only when the spec engages arbitration
	// (a policy, or a ladder that can escalate into one): a bare fleet —
	// RunMulti's configuration — leaves the VMM exactly as it was.
	if spec.Policy != "" || spec.EscalateTo != "" {
		f.arbiter = &fleetArbiter{f: f, mode: policy}
		v.SetArbiter(f.arbiter)
	}
	if cfg.FlightDir != "" {
		per := cfg.MaxDumpsPerTenant
		if per <= 0 {
			per = 4
		}
		f.quota = telemetry.NewDumpQuota(per, 4+2*len(spec.Tenants), 4)
	}

	// Assemble tenants in spec order — the same creation sequence
	// RunMulti used, so the port is byte-identical.
	for i, ts := range spec.Tenants {
		name := ts.Name
		if name == "" {
			name = fmt.Sprintf("%s-%d", ts.Collector, i)
		}
		var tr trace.Tracer
		if cfg.Trace != nil {
			tr = cfg.Trace.Thread(name)
		}
		var tel *telemetry.Collector
		if cfg.FlightDir != "" {
			tel = telemetry.New(telemetry.Config{
				FlightDir: cfg.FlightDir,
				Tenant:    name,
				Quota:     f.quota,
			})
			tr = tel.Tracer(tr)
		}
		src, err := f.resolveSource(i, ts)
		if err != nil {
			res.Err = err
			res.ErrTenant = i
			return res
		}
		polName := ts.HeapPolicy
		if polName == "" {
			polName = spec.HeapPolicy
		}
		pol, err := resolvePolicy(polName, ts.Collector)
		if err != nil {
			res.Err = err
			res.ErrTenant = i
			return res
		}
		env, col, run, err := newInstance(v, name, ts.Collector,
			ts.HeapBytes, src, spec.Seed+ts.Seed+int64(i), tr, cfg.Counters, cfg.MarkWorkers, pol)
		if err != nil {
			res.Err = err
			res.ErrTenant = i
			return res
		}
		t := &tenant{
			id: i, spec: ts, name: name,
			env: env, col: col, run: run, tel: tel,
			admitAt: time.Duration(ts.AdmitAtNS),
		}
		if tel != nil {
			tel.Attach(v, env, col, cfg.Counters)
		}
		if ts.Chaos != "" {
			fc, ok := fault.ByName(ts.Chaos, fault.TenantSeed(spec.ChaosSeed, i))
			if !ok {
				res.Err = fmt.Errorf("sim: unknown chaos regime %q", ts.Chaos)
				res.ErrTenant = i
				return res
			}
			t.inj = fault.Interpose(env.Proc, fc, cfg.Counters)
			t.inj.StartSpikes(v)
		}
		if cfg.AfterCollection != nil {
			if hooked, ok := col.(interface{ OnCollectionEnd(func()) }); ok {
				id, c := i, col
				hooked.OnCollectionEnd(func() { cfg.AfterCollection(id, c, v) })
			}
		}
		f.byProc[env.Proc] = t
		f.tenants = append(f.tenants, t)
		col.Stats().Timeline.Start = clock.Now()
	}
	res.Names = make([]string, len(f.tenants))
	for i, t := range f.tenants {
		res.Names[i] = t.name
	}

	// Arm the cascade detector on the simulated clock.
	if spec.CascadeMajorFaults > 0 {
		window := time.Duration(spec.CascadeWindowNS)
		if window <= 0 {
			window = 50 * time.Millisecond
		}
		sustain := spec.CascadeSustain
		if sustain <= 0 {
			sustain = 2
		}
		for _, t := range f.tenants {
			t.lastMajor = t.env.Proc.Stats().MajorFaults
		}
		f.windowLast = v.Stats().MajorFaults
		var tick func()
		tick = func() {
			cur := v.Stats().MajorFaults
			delta := cur - f.windowLast
			f.windowLast = cur
			if delta >= spec.CascadeMajorFaults {
				f.hotWindows++
			} else {
				f.hotWindows = 0
			}
			if f.hotWindows >= sustain {
				f.hotWindows = 0
				f.cascade(delta, window, sustain)
			} else {
				for _, t := range f.tenants {
					t.lastMajor = t.env.Proc.Stats().MajorFaults
				}
			}
			clock.Schedule(clock.Now()+window, tick)
		}
		clock.Schedule(clock.Now()+window, tick)
	}

	// Arm the fleet MemBalancer on the simulated clock: same cadence
	// pattern as the cascade detector, so redistribution is a pure
	// function of simulated time and byte-identical for any host
	// parallelism.
	if spec.BalanceEveryNS > 0 {
		every := time.Duration(spec.BalanceEveryNS)
		var tick func()
		tick = func() {
			f.rebalance()
			clock.Schedule(clock.Now()+every, tick)
		}
		clock.Schedule(clock.Now()+every, tick)
	}

	// step advances one tenant by a quantum, converting an out-of-memory
	// panic into a per-tenant failure so co-tenants keep running —
	// exactly what happens on a real machine when one process dies.
	step := func(t *tenant) (alive bool) {
		defer func() {
			if r := recover(); r != nil {
				oom, ok := r.(gc.ErrOutOfMemory)
				if !ok {
					panic(r)
				}
				t.failed = oom
				alive = false
			}
		}()
		alive = t.run.Step(f.quantum)
		if t.inj != nil {
			t.inj.Safepoint()
		}
		return alive
	}

	retire := func(t *tenant) {
		t.done = true
		if err := t.run.Err(); err != nil && t.failed == nil {
			t.failed = err
		}
		t.col.Stats().Timeline.End = clock.Now()
		if t.tel != nil {
			t.tel.RunEnded(t.failed)
		}
	}

	// The scheduler: round-robin quanta over admitted tenants, RunMulti's
	// loop extended with admission and backpressure. When every live
	// tenant is waiting on admission, the clock skips idle time to the
	// earliest admit point — a discrete-event jump, not a busy spin.
	for {
		live, stepped := 0, 0
		var nextAdmit time.Duration = -1
		for _, t := range f.tenants {
			if t.done || t.failed != nil {
				continue
			}
			live++
			if clock.Now() < t.admitAt {
				if nextAdmit < 0 || t.admitAt < nextAdmit {
					nextAdmit = t.admitAt
				}
				continue
			}
			if t.penaltySkips > 0 {
				t.penaltySkips--
				continue
			}
			if step(t) {
				stepped++
			} else {
				retire(t)
			}
		}
		if live == 0 {
			break
		}
		if stepped == 0 && nextAdmit > clock.Now() {
			clock.Advance(nextAdmit - clock.Now())
		}
	}

	// Assemble per-tenant results exactly as RunMulti did: End stamped
	// when the tenant retired, elapsed measured to the fleet's end.
	res.Tenants = make([]Result, len(f.tenants))
	evictions := make([]float64, len(f.tenants))
	res.PauseP99NS = make([]int64, len(f.tenants))
	for i, t := range f.tenants {
		if t.col.Stats().Timeline.End == 0 {
			t.col.Stats().Timeline.End = clock.Now()
		}
		r := Result{
			Config: RunConfig{
				Collector: t.spec.Collector, Program: t.spec.Program,
				HeapBytes: t.spec.HeapBytes, PhysBytes: spec.PhysBytes,
			},
			Timeline:    t.col.Stats().Timeline,
			Mutator:     t.run.Finish(),
			GCStats:     *t.col.Stats(),
			ProcStats:   t.env.Proc.Stats(),
			ElapsedSecs: (clock.Now() - t.col.Stats().Timeline.Start).Seconds(),
			Counters:    cfg.Counters,
			Err:         t.failed,
		}
		if t.inj != nil {
			s := t.inj.Stats()
			r.Faults = &s
		}
		res.Tenants[i] = r
		res.AggMinorFaults += r.ProcStats.MinorFaults
		res.AggMajorFaults += r.ProcStats.MajorFaults
		res.AggEvictions += r.ProcStats.Evictions
		res.AggPeakResident += r.ProcStats.PeakResident
		evictions[i] = float64(r.ProcStats.Evictions)
		res.PauseP99NS[i] = int64(telemetry.FromTimeline(&r.Timeline).Quantile(0.99))
	}
	res.Fairness = telemetry.FairnessIndex(evictions)
	res.ElapsedSecs = clock.Now().Seconds()
	res.VMM = v.Stats()
	res.ArbiterVetoes = v.Stats().ArbiterVetoes
	if f.arbiter != nil {
		res.Policy = f.arbiter.mode
	}
	res.Cascades = f.cascades
	res.Escalated = f.escalated
	res.BalancerRounds = f.balancerRounds
	res.FleetDumps = f.fleetDumps
	return res
}

// cascade is the ladder's response to a sustained fleet-wide fault
// storm: escalate the arbitration policy, backpressure the noisiest
// tenant, push back unadmitted tenants, and write the fleet bundle
// through the reserved dump slots. Runs on the simulated clock, so every
// action is deterministic.
func (f *fleetRun) cascade(windowFaults uint64, window time.Duration, sustain int) {
	spec := f.cfg.Spec
	f.cascades++

	// Escalate the arbitration policy (once per run).
	if spec.EscalateTo != "" && f.arbiter != nil && f.arbiter.mode != spec.EscalateTo {
		f.arbiter.mode = spec.EscalateTo
		f.escalated = true
	}

	// Backpressure: the tenant with the most major faults this window
	// loses its next turns at the scheduler.
	noisiest := -1
	var worst uint64
	for _, t := range f.tenants {
		cur := t.env.Proc.Stats().MajorFaults
		d := cur - t.lastMajor
		t.lastMajor = cur
		if noisiest < 0 || d > worst {
			noisiest = t.id
			worst = d
		}
	}
	if spec.Backpressure && noisiest >= 0 {
		f.tenants[noisiest].penaltySkips += 16
	}

	// Admission throttle: anyone not yet admitted waits out the storm.
	if spec.AdmissionThrottle {
		now := f.clock.Now()
		for _, t := range f.tenants {
			if !t.done && t.failed == nil && now < t.admitAt {
				t.admitAt += 4 * window
			}
		}
	}

	if f.cfg.FlightDir == "" {
		return
	}
	b := &telemetry.FleetBundle{
		Reason:        "cascade-thrash",
		SimTimeNS:     int64(f.clock.Now()),
		WindowNS:      int64(window),
		WindowFaults:  windowFaults,
		Threshold:     spec.CascadeMajorFaults,
		SustainedFor:  sustain,
		Policy:        string(f.cfg.Spec.Policy),
		Fairness:      f.fairnessNow(),
		AggMajor:      f.v.Stats().MajorFaults,
		AggEvictions:  f.v.Stats().Evictions,
		ArbiterVetoes: f.v.Stats().ArbiterVetoes,
	}
	if f.escalated {
		b.EscalatedTo = string(f.arbiter.mode)
	}
	for _, t := range f.tenants {
		tl := t.col.Stats().Timeline
		snap := telemetry.TenantFlightSnap{
			Tenant:        t.name,
			Collector:     t.col.Name(),
			Cooperative:   t.env.Proc.Handler() != nil,
			ResidentPages: t.env.Proc.ResidentPages(),
			MajorFaults:   t.env.Proc.Stats().MajorFaults,
			Evictions:     t.env.Proc.Stats().Evictions,
			PauseP99NS:    int64(telemetry.FromTimeline(&tl).Quantile(0.99)),
			Penalized:     t.id == noisiest && spec.Backpressure,
		}
		if t.failed != nil {
			snap.Failed = t.failed.Error()
		}
		b.Tenants = append(b.Tenants, snap)
	}
	f.dumpSeq++
	if path := telemetry.WriteFleetBundle(f.cfg.FlightDir, f.dumpSeq, b, f.quota); path != "" {
		f.fleetDumps = append(f.fleetDumps, path)
	}
}

// rebalance is one fleet MemBalancer round: redistribute the machine's
// unpinned memory across tenants whose heap policies participate
// (heappolicy.Balancable with established rates), in proportion to
// their square-root terms. Non-participants — fixed budgets, policies
// still warming up, dead tenants — keep what they hold; their resident
// bytes are subtracted from the distributable budget first. Caps
// compose with, never bypass, the eviction arbiter: a cap only lowers
// a tenant's own heap target, and the VMM still decides which pages
// go. Runs on the simulated clock in tenant index order, so every
// round is deterministic.
func (f *fleetRun) rebalance() {
	f.balancerRounds++
	f.cfg.Counters.Inc(trace.CBalancerRounds)

	budget := float64(f.v.TotalFrames()-f.v.PinnedFrames()) * float64(mem.PageSize)
	type participant struct {
		pol  heappolicy.Balancable
		live float64
		w    float64
	}
	var parts []participant
	var sumLive, sumW float64
	for _, t := range f.tenants {
		b, ok := t.env.HeapPolicy.(heappolicy.Balancable)
		if ok && !t.done && t.failed == nil {
			live, w := b.BalanceStats()
			if w > 0 {
				parts = append(parts, participant{pol: b, live: live, w: w})
				sumLive += live
				sumW += w
				continue
			}
			// No established rates yet: run uncapped until the policy
			// has enough history to state a square-root term.
			b.SetFleetCap(0)
		}
		budget -= float64(t.env.Proc.ResidentPages()) * float64(mem.PageSize)
	}
	if len(parts) == 0 {
		return
	}
	extra := budget - sumLive
	if extra < 0 {
		extra = 0
	}
	for _, p := range parts {
		capPages := int((p.live + extra*p.w/sumW) / float64(mem.PageSize))
		if capPages < 1 {
			capPages = 1
		}
		if capPages < p.pol.Target() {
			f.cfg.Counters.Inc(trace.CPolicyClamps)
		}
		p.pol.SetFleetCap(capPages)
	}
}

// fairnessNow is the live eviction-pressure fairness index.
func (f *fleetRun) fairnessNow() float64 {
	xs := make([]float64, len(f.tenants))
	for i, t := range f.tenants {
		xs[i] = float64(t.env.Proc.Stats().Evictions)
	}
	return telemetry.FairnessIndex(xs)
}
