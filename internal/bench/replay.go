package bench

import (
	"bufio"
	"fmt"
	"os"
	"time"

	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/runner"
	"bookmarkgc/internal/sim"
	"bookmarkgc/internal/workload"
)

// replayCollectors are the collectors the shared trace is replayed under.
var replayCollectors = []sim.CollectorKind{sim.BC, sim.GenMS, sim.GenCopy, sim.MarkSweep}

// replaySpec is the program the trace is recorded from: compress, whose
// large-object traffic and pointer stores exercise every event kind the
// trace format carries.
func replaySpec(o Options) mutator.Spec {
	prog, _ := mutator.ByName("compress")
	return prog.Scale(o.Scale)
}

// Replay records one allocation trace and replays it under four
// collectors through the cached runner: a cross-collector comparison
// where every run consumes the identical event stream, so differences
// are attributable to the collector alone — the generator's PRNG cannot
// interact with collection timing. The trace's content hash is each
// job's cache identity, so re-running the experiment (even from another
// process with a different temporary path) hits the result cache.
func Replay(o Options, rn *runner.Runner) []Report {
	scaled := replaySpec(o)
	heap := scaled.MinHeap * 2
	phys := heap*4 + o.bytes(64<<20)

	f, err := os.CreateTemp("", "bench-replay-*.gctrace")
	if err != nil {
		return []Report{replayError(fmt.Sprintf("creating trace file: %v", err))}
	}
	path := f.Name()
	defer os.Remove(path)
	bw := bufio.NewWriter(f)
	wr, err := workload.NewWriter(bw, workload.Meta{
		Name:      scaled.Name,
		Source:    "record",
		Program:   &scaled,
		Seed:      o.Seed,
		Collector: string(sim.BC),
		HeapBytes: heap,
		PhysBytes: phys,
	})
	if err != nil {
		f.Close()
		return []Report{replayError(fmt.Sprintf("writing trace: %v", err))}
	}
	rec := workload.NewRecorder(wr)
	base := sim.Run(sim.RunConfig{
		Collector: sim.BC,
		Program:   scaled, HeapBytes: heap, PhysBytes: phys,
		Seed: o.Seed, Sink: rec,
	})
	if base.Err != nil {
		f.Close()
		return []Report{replayError(fmt.Sprintf("recording run failed: %v", base.Err))}
	}
	if err := rec.Close(base.Mutator); err == nil {
		err = bw.Flush()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	} else {
		f.Close()
	}
	if err != nil {
		return []Report{replayError(fmt.Sprintf("writing trace: %v", err))}
	}
	hash, err := workload.HashFile(path)
	if err != nil {
		return []Report{replayError(fmt.Sprintf("hashing trace: %v", err))}
	}
	ref := &runner.TraceRef{Name: scaled.Name, Hash: hash, Path: path}

	job := func(col sim.CollectorKind) runner.Job {
		return runner.Job{
			Collector: col,
			Program:   scaled,
			HeapBytes: heap,
			PhysBytes: phys,
			Seed:      o.Seed,
			Trace:     ref,
		}
	}
	var jobs []runner.Job
	for _, col := range replayCollectors {
		jobs = append(jobs, job(col))
	}
	rn.RunAll(jobs)

	r := Report{
		ID:    "replay",
		Title: "one recorded trace replayed across collectors",
		Header: []string{"collector", "exec", "gcs", "avg pause", "max pause",
			"alloc"},
		Notes: []string{
			fmt.Sprintf("trace: %s seed %d at scale %.2f, %d events, hash %.12s…",
				scaled.Name, o.Seed, o.Scale, wr.Events(), hash),
			fmt.Sprintf("recorded under BC: exec=%s checksum %#x (replays verify it word-for-word)",
				secs(base.ElapsedSecs), base.Mutator.Checksum),
		},
	}
	for _, col := range replayCollectors {
		res := rn.Result(job(col))
		if !res.OK() {
			r.Rows = append(r.Rows, []string{string(col), "FAILED: " + res.Err, "", "", "", ""})
			continue
		}
		rd := res.One()
		tl := rd.Timeline()
		r.Rows = append(r.Rows, []string{
			string(col),
			secs(rd.ElapsedSecs),
			fmt.Sprintf("%d", tl.Count()),
			ms10(tl.AvgPause()),
			ms10(tl.MaxPause()),
			fmt.Sprintf("%d", rd.AllocatedBytes),
		})
	}
	return []Report{r}
}

// replayError wraps a setup failure as a report, keeping the experiment
// interface uniform for the harness.
func replayError(msg string) Report {
	return Report{
		ID:    "replay",
		Title: "one recorded trace replayed across collectors",
		Notes: []string{"error: " + msg},
	}
}

// ms10 formats a pause at 10µs resolution.
func ms10(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}
