package bench

import (
	"fmt"

	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/runner"
	"bookmarkgc/internal/sim"
)

// Fig2Detail breaks Figure 2's geometric mean apart: per-benchmark
// execution time relative to BC at a fixed 2x relative heap, without
// memory pressure. The paper aggregates; this view shows where each
// baseline's costs come from (useful when tuning the workload models).
// Its jobs are Fig2's 2.0x column, so running both costs one sweep.
func Fig2Detail(o Options, rn *runner.Runner) []Report {
	const factor = 2.0
	var jobs []runner.Job
	for _, prog := range mutator.Programs {
		scaled := prog.Scale(o.Scale)
		for _, k := range fig2Collectors {
			jobs = append(jobs, fig2Job(o, k, scaled, factor))
		}
	}
	rn.RunAll(jobs)

	r := Report{
		ID:    "fig2x",
		Title: fmt.Sprintf("per-benchmark execution time relative to BC at %.1fx min heap, no pressure", factor),
		Notes: []string{"cells: time(collector)/time(BC); '-' = does not complete"},
	}
	r.Header = []string{"benchmark"}
	for _, k := range fig2Collectors {
		r.Header = append(r.Header, string(k))
	}
	for _, prog := range mutator.Programs {
		scaled := prog.Scale(o.Scale)
		row := []string{prog.Name}
		var bcTime float64
		for _, k := range fig2Collectors {
			res := rn.Result(fig2Job(o, k, scaled, factor))
			if !res.OK() {
				row = append(row, "-")
				continue
			}
			if k == sim.BC {
				bcTime = res.One().ElapsedSecs
				row = append(row, "1.000")
				continue
			}
			row = append(row, fmt.Sprintf("%.3f", res.One().ElapsedSecs/bcTime))
		}
		r.Rows = append(r.Rows, row)
	}
	return []Report{r}
}
