package bench

import (
	"fmt"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/sim"
)

// Fig2Detail breaks Figure 2's geometric mean apart: per-benchmark
// execution time relative to BC at a fixed 2x relative heap, without
// memory pressure. The paper aggregates; this view shows where each
// baseline's costs come from (useful when tuning the workload models).
func Fig2Detail(o Options) []Report {
	const factor = 2.0
	r := Report{
		ID:    "fig2x",
		Title: fmt.Sprintf("per-benchmark execution time relative to BC at %.1fx min heap, no pressure", factor),
		Notes: []string{"cells: time(collector)/time(BC); '-' = does not complete"},
	}
	r.Header = []string{"benchmark"}
	for _, k := range fig2Collectors {
		r.Header = append(r.Header, string(k))
	}
	for _, prog := range mutator.Programs {
		scaled := prog.Scale(o.Scale)
		heap := mem.RoundUpPage(uint64(factor * float64(scaled.MinHeap)))
		phys := heap*4 + (64 << 20)
		row := []string{prog.Name}
		var bcTime float64
		for _, k := range fig2Collectors {
			res, ok := runOK(o, sim.RunConfig{
				Collector: k, Program: scaled,
				HeapBytes: heap, PhysBytes: phys, Seed: o.Seed,
			})
			if !ok {
				row = append(row, "-")
				continue
			}
			if k == sim.BC {
				bcTime = res.ElapsedSecs
				row = append(row, "1.000")
				continue
			}
			row = append(row, fmt.Sprintf("%.3f", res.ElapsedSecs/bcTime))
		}
		r.Rows = append(r.Rows, row)
	}
	return []Report{r}
}
