package bench

import (
	"fmt"
	"time"

	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/runner"
	"bookmarkgc/internal/sim"
	"bookmarkgc/internal/telemetry"
)

// fig45Heap is the pseudoJBB heap for the dynamic-pressure experiments
// (the paper uses 77 MB).
const fig45HeapMB = 77.0

// fig45Avail is the swept available-memory axis as fractions of the heap
// (the paper sweeps absolute MB; pressure begins once available memory
// falls below the process footprint, i.e. fractions near and below 1).
var fig45Avail = []float64{1.6, 1.4, 1.2, 1.0, 0.85, 0.70, 0.55}

// baselineJob is an unpressured BC run used to calibrate the signalmem
// ramp (and as the BMU window anchor in Figure 6).
func baselineJob(o Options, prog mutator.Spec, heap uint64) runner.Job {
	return runner.Job{
		Collector: sim.BC,
		Program:   prog,
		HeapBytes: heap,
		PhysBytes: heap * 4,
		Seed:      o.Seed,
	}
}

// fig45Baseline reads the calibration run's duration (executing it if
// no batch has).
func fig45Baseline(o Options, rn *runner.Runner, prog mutator.Spec, heap uint64) time.Duration {
	res := rn.Result(baselineJob(o, prog, heap))
	return time.Duration(res.One().ElapsedSecs * float64(time.Second))
}

// dynamicJob is one collector under the §5.3.2 dynamic-pressure
// schedule: signalmem grabs an initial chunk, then pins more at a steady
// rate until only avail bytes of the machine remain. The pin rate is
// scaled so the ramp completes within roughly the first third of an
// unpressured run, as in the paper's measured iterations.
func dynamicJob(o Options, k sim.CollectorKind, prog mutator.Spec, heap, avail uint64, baseline time.Duration) runner.Job {
	phys := heap * 2
	return runner.Job{
		Collector: k,
		Program:   prog,
		HeapBytes: heap,
		PhysBytes: phys,
		Seed:      o.Seed,
		Counters:  o.Counters,
		Pressure: sim.CalibratedDynamicPressure(
			phys, avail, o.bytes(30<<20), o.bytes(1<<20), baseline),
	}
}

// Fig4 reproduces Figure 4: mean GC pause time for pseudoJBB as dynamic
// memory pressure increases (available memory shrinks, left to right).
// Paper shape: BC's mean pause stays flat while the others' grow to
// seconds — GenMS's mean pause under the most pressure is ~10 s longer
// than its whole unpressured run.
func Fig4(o Options, rn *runner.Runner) []Report {
	kinds := []sim.CollectorKind{sim.BC, sim.GenMS, sim.GenCopy, sim.CopyMS, sim.SemiSpace}
	prog := mutator.PseudoJBB().Scale(o.Scale)
	heap := o.bytes(fig45HeapMB * (1 << 20))
	rn.RunAll([]runner.Job{baselineJob(o, prog, heap)})
	base := fig45Baseline(o, rn, prog, heap)

	var jobs []runner.Job
	for _, k := range kinds {
		for _, frac := range fig45Avail {
			jobs = append(jobs, dynamicJob(o, k, prog, heap, uint64(frac*float64(heap)), base))
		}
	}
	rn.RunAll(jobs)

	r := Report{
		ID:     "fig4",
		Title:  "dynamic pressure: mean GC pause, pseudoJBB (available memory shrinks left to right)",
		Header: append([]string{"collector"}, availLabels(o)...),
	}
	for _, k := range kinds {
		row := []string{string(k)}
		for _, frac := range fig45Avail {
			res := rn.Result(dynamicJob(o, k, prog, heap, uint64(frac*float64(heap)), base))
			if !res.OK() {
				row = append(row, "-")
				continue
			}
			tl := res.One().Timeline()
			row = append(row, ms(tl.AvgPause()))
		}
		r.Rows = append(r.Rows, row)
	}
	return []Report{r, fig4Latency(o, rn, kinds, prog, heap, base)}
}

// fig4Latency is the tail-latency companion to Figure 4: per-collector
// pause percentiles at the heaviest pressure point, from the telemetry
// layer's log-bucketed digest over the same runs (no extra jobs). Mean
// pause (Figure 4) hides the tail; the paper's argument is precisely
// that a single faulting full collection costs seconds, which shows up
// here as the gap between p50 and max.
func fig4Latency(o Options, rn *runner.Runner, kinds []sim.CollectorKind, prog mutator.Spec, heap uint64, base time.Duration) Report {
	frac := fig45Avail[len(fig45Avail)-1]
	r := Report{
		ID: "fig4lat",
		Title: fmt.Sprintf("dynamic pressure: pause-latency percentiles at %.0fMB available",
			frac*fig45HeapMB),
		Header: []string{"collector", "pauses", "p50", "p95", "p99", "p99.9", "max"},
	}
	for _, k := range kinds {
		res := rn.Result(dynamicJob(o, k, prog, heap, uint64(frac*float64(heap)), base))
		if !res.OK() {
			r.Rows = append(r.Rows, []string{string(k), "-", "-", "-", "-", "-", "-"})
			continue
		}
		tl := res.One().Timeline()
		d := telemetry.FromTimeline(&tl)
		r.Rows = append(r.Rows, []string{
			string(k), fmt.Sprint(d.Count()),
			ms(d.QuantileDuration(0.50)), ms(d.QuantileDuration(0.95)),
			ms(d.QuantileDuration(0.99)), ms(d.QuantileDuration(0.999)),
			ms(time.Duration(d.Max())),
		})
	}
	return r
}

// Fig5 reproduces Figure 5: execution time under the same dynamic
// pressure. (a) the main collectors plus the resize-only BC variant —
// paper: BC up to 4x faster than the next best, 41x faster than GenMS,
// and up to 10x faster than resize-only; (b) fixed-size (4 MB) nursery
// variants, which reduce paging but still collapse once their footprint
// exceeds available memory.
func Fig5(o Options, rn *runner.Runner) []Report {
	kindsA := []sim.CollectorKind{sim.BC, sim.BCResizeOnly, sim.GenMS, sim.GenCopy, sim.CopyMS, sim.SemiSpace}
	kindsB := []sim.CollectorKind{sim.BC, sim.GenMSFixed, sim.GenCopyFixed}
	prog := mutator.PseudoJBB().Scale(o.Scale)
	heap := o.bytes(fig45HeapMB * (1 << 20))
	rn.RunAll([]runner.Job{baselineJob(o, prog, heap)})
	base := fig45Baseline(o, rn, prog, heap)

	var jobs []runner.Job
	for _, k := range append(append([]sim.CollectorKind{}, kindsA...), kindsB...) {
		for _, frac := range fig45Avail {
			jobs = append(jobs, dynamicJob(o, k, prog, heap, uint64(frac*float64(heap)), base))
		}
	}
	rn.RunAll(jobs)

	mk := func(id, title string, kinds []sim.CollectorKind) Report {
		r := Report{
			ID:     id,
			Title:  title,
			Header: append([]string{"collector"}, availLabels(o)...),
		}
		for _, k := range kinds {
			row := []string{string(k)}
			for _, frac := range fig45Avail {
				res := rn.Result(dynamicJob(o, k, prog, heap, uint64(frac*float64(heap)), base))
				if !res.OK() {
					row = append(row, "-")
					continue
				}
				row = append(row, secs(res.One().ElapsedSecs))
			}
			r.Rows = append(r.Rows, row)
		}
		return r
	}
	a := mk("fig5a", "dynamic pressure: execution time, pseudoJBB", kindsA)
	b := mk("fig5b", "dynamic pressure: execution time, fixed-size (4MB) nurseries", kindsB)
	return []Report{a, b}
}

func availLabels(o Options) []string {
	out := make([]string, len(fig45Avail))
	for i, f := range fig45Avail {
		out[i] = fmt.Sprintf("%.0fMB", f*fig45HeapMB)
	}
	return out
}
