package bench

import (
	"fmt"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/runner"
	"bookmarkgc/internal/sim"
)

// minHeapFactors are the probe points of the minimum-heap search, as
// factors of the paper's per-benchmark minimum.
var minHeapFactors = []float64{0.4, 0.5, 0.625, 0.75, 1.0, 1.5, 2.0}

// table1AllocJob measures a program's allocation volume: one run with
// plenty of room.
func table1AllocJob(o Options, scaled mutator.Spec) runner.Job {
	return runner.Job{
		Collector: sim.GenMS,
		Program:   scaled,
		HeapBytes: scaled.MinHeap * 4,
		PhysBytes: scaled.MinHeap*8 + (64 << 20),
		Seed:      o.Seed,
	}
}

// table1ProbeJob asks whether BC completes the program in a heap of
// f times the paper's minimum.
func table1ProbeJob(o Options, scaled mutator.Spec, f float64) runner.Job {
	heap := mem.RoundUpPage(uint64(f * float64(scaled.MinHeap)))
	return runner.Job{
		Collector: sim.BC,
		Program:   scaled,
		HeapBytes: heap,
		PhysBytes: heap*4 + (64 << 20),
		Seed:      o.Seed,
		Counters:  o.Counters,
	}
}

// Table1 reproduces the paper's Table 1: per benchmark, total bytes
// allocated and minimum heap. The workload generators are parameterized
// by the paper's numbers, so the "paper" columns are their targets; the
// measured columns come from actually running each program — allocation
// volume from a generous-heap run, minimum heap from a shrinking search
// with the bookmarking collector.
func Table1(o Options, rn *runner.Runner) []Report {
	var jobs []runner.Job
	for _, prog := range mutator.Programs {
		scaled := prog.Scale(o.Scale)
		jobs = append(jobs, table1AllocJob(o, scaled))
		for _, f := range minHeapFactors {
			jobs = append(jobs, table1ProbeJob(o, scaled, f))
		}
	}
	rn.RunAll(jobs)

	r := Report{
		ID:    "table1",
		Title: "memory usage statistics for the benchmark suite",
		Header: []string{"benchmark", "paper alloc", "measured alloc",
			"paper min heap", "measured min heap (BC)"},
		Notes: []string{
			fmt.Sprintf("measured at scale %.2f, columns rescaled to paper scale", o.Scale),
			"min heap probed at factors of the paper value (coarse search)",
		},
	}
	for _, prog := range mutator.Programs {
		scaled := prog.Scale(o.Scale)
		res := rn.Result(table1AllocJob(o, scaled))
		measuredAlloc := float64(res.One().AllocatedBytes) / o.Scale

		minHeap := findMinHeap(o, rn, scaled)
		r.Rows = append(r.Rows, []string{
			prog.Name,
			fmt.Sprintf("%d", prog.TotalAlloc),
			fmt.Sprintf("%.0f", measuredAlloc),
			fmt.Sprintf("%d", prog.MinHeap),
			fmt.Sprintf("%.0f", float64(minHeap)/o.Scale),
		})
	}
	return []Report{r}
}

// findMinHeap reads the probe results in ascending-factor order and
// returns the smallest (scaled) heap at which BC completes.
func findMinHeap(o Options, rn *runner.Runner, prog mutator.Spec) uint64 {
	for _, f := range minHeapFactors {
		if rn.Result(table1ProbeJob(o, prog, f)).OK() {
			return mem.RoundUpPage(uint64(f * float64(prog.MinHeap)))
		}
	}
	return prog.MinHeap * 2
}
