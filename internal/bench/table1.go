package bench

import (
	"fmt"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/sim"
)

// Table1 reproduces the paper's Table 1: per benchmark, total bytes
// allocated and minimum heap. The workload generators are parameterized
// by the paper's numbers, so the "paper" columns are their targets; the
// measured columns come from actually running each program — allocation
// volume from a generous-heap run, minimum heap from a shrinking search
// with the bookmarking collector.
func Table1(o Options) []Report {
	r := Report{
		ID:    "table1",
		Title: "memory usage statistics for the benchmark suite",
		Header: []string{"benchmark", "paper alloc", "measured alloc",
			"paper min heap", "measured min heap (BC)"},
		Notes: []string{
			fmt.Sprintf("measured at scale %.2f, columns rescaled to paper scale", o.Scale),
			"min heap probed at factors of the paper value (coarse search)",
		},
	}
	for _, prog := range mutator.Programs {
		scaled := prog.Scale(o.Scale)
		// Measured allocation volume: one run with plenty of room.
		res := sim.Run(sim.RunConfig{
			Collector: sim.GenMS,
			Program:   scaled,
			HeapBytes: scaled.MinHeap * 4,
			PhysBytes: scaled.MinHeap*8 + (64 << 20),
			Seed:      o.Seed,
		})
		measuredAlloc := float64(res.Mutator.AllocatedBytes) / o.Scale

		minHeap := findMinHeap(o, scaled)
		r.Rows = append(r.Rows, []string{
			prog.Name,
			fmt.Sprintf("%d", prog.TotalAlloc),
			fmt.Sprintf("%.0f", measuredAlloc),
			fmt.Sprintf("%d", prog.MinHeap),
			fmt.Sprintf("%.0f", float64(minHeap)/o.Scale),
		})
	}
	return []Report{r}
}

// findMinHeap probes heap sizes at fixed factors of the paper's minimum
// and returns the smallest (scaled) heap at which BC completes.
func findMinHeap(o Options, prog mutator.Spec) uint64 {
	factors := []float64{0.4, 0.5, 0.625, 0.75, 1.0, 1.5, 2.0}
	for _, f := range factors {
		heap := mem.RoundUpPage(uint64(f * float64(prog.MinHeap)))
		if _, ok := runOK(o, sim.RunConfig{
			Collector: sim.BC,
			Program:   prog,
			HeapBytes: heap,
			PhysBytes: heap*4 + (64 << 20),
			Seed:      o.Seed,
		}); ok {
			return heap
		}
	}
	return prog.MinHeap * 2
}
