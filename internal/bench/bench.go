// Package bench regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a function from Options to one or
// more Reports — the same rows or series the paper plots, produced by
// running the simulated machine, collectors, and benchmark programs.
//
// Workloads, heap sizes, and memory sizes all scale together through
// Options.Scale, so the experiments keep their shape at a fraction of the
// paper's (1 GB machine, 77 MB heap) scale. Absolute times differ from
// the paper — the substrate is a simulator — but who wins, by what rough
// factor, and where the crossovers fall is preserved; EXPERIMENTS.md
// records paper-vs-measured for each figure.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/sim"
	"bookmarkgc/internal/trace"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies every byte quantity (allocation volume, heap,
	// physical memory). 1.0 is paper scale; 0.1 runs in seconds.
	Scale float64
	// Seed drives the deterministic workloads.
	Seed int64
	// Counters attaches an event-counter registry to every run;
	// experiments that report cooperation behaviour add counter notes.
	Counters bool
}

// DefaultOptions returns a quarter-scale configuration: big enough for
// stable shapes, small enough to finish in minutes.
func DefaultOptions() Options { return Options{Scale: 0.25, Seed: 1} }

func (o Options) bytes(paperBytes float64) uint64 {
	b := uint64(paperBytes * o.Scale)
	return mem.RoundUpPage(b)
}

// Report is one table or figure's data, printable as aligned text.
type Report struct {
	ID     string // "table1", "fig2", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Print writes the report as an aligned table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a named, runnable reproduction of one table or figure.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Options) []Report
}

// Experiments lists every reproduction, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "benchmark memory statistics", Table1},
		{"fig2", "execution time relative to BC, no memory pressure", Fig2},
		{"fig2x", "per-benchmark detail behind Figure 2's geomean", Fig2Detail},
		{"fig3", "steady memory pressure: execution time and mean pause", Fig3},
		{"fig3x", "steady pressure at 70% removal (§5.3.1 text)", Fig3x},
		{"fig4", "dynamic pressure: mean GC pause", Fig4},
		{"fig5", "dynamic pressure: execution time (and fixed nurseries)", Fig5},
		{"fig6", "bounded mutator utilization curves", Fig6},
		{"fig7", "two JVMs: execution time and mean pause", Fig7},
		{"ablate", "ablations of BC design choices (§7, DESIGN.md)", Ablations},
	}
}

// ByID returns the named experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// runOK executes a configuration, converting a failed run (out of
// memory, bad collector) into ok=false (used by the min-heap search).
// When o.Counters is set, each run gets its own registry, readable from
// Result.Counters.
func runOK(o Options, cfg sim.RunConfig) (res sim.Result, ok bool) {
	if o.Counters {
		cfg.Counters = trace.NewCounters()
	}
	res = sim.Run(cfg)
	return res, res.Err == nil
}

// counterNote renders one run's cooperation counters as a report note.
func counterNote(label string, res sim.Result) string {
	c := res.Counters
	if c == nil {
		return ""
	}
	return fmt.Sprintf(
		"%s: bookmarked=%d evicted=%d discarded=%d reloaded=%d incoming(+%d/-%d) remset(filtered=%d carded=%d) forwarded=%dB",
		label,
		c.Get(trace.CObjectsBookmarked), c.Get(trace.CPagesProcessed),
		c.Get(trace.CPagesDiscarded), c.Get(trace.CPagesReloaded),
		c.Get(trace.CIncomingBumps), c.Get(trace.CIncomingDecrements),
		c.Get(trace.CRemsetEntriesFiltered), c.Get(trace.CRemsetEntriesCarded),
		c.Get(trace.CForwardedBytes))
}

// secs formats a simulated duration.
func secs(s float64) string { return fmt.Sprintf("%.3fs", s) }

// ms formats a duration in milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.1fms", float64(d)/1e6) }
