// Package bench regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is two passes over the same
// configuration loops: an emission pass that enumerates every simulation
// the experiment might need as runner.Jobs, and a reduce pass that folds
// the (memoized, content-hash-keyed) results into the paper's rows.
// The runner executes the emitted jobs on a worker pool; because results
// are looked up by hash during the reduce, report bytes are identical
// whether the sweep ran on one worker or many, fresh or from cache.
//
// Workloads, heap sizes, and memory sizes all scale together through
// Options.Scale, so the experiments keep their shape at a fraction of the
// paper's (1 GB machine, 77 MB heap) scale. Absolute times differ from
// the paper — the substrate is a simulator — but who wins, by what rough
// factor, and where the crossovers fall is preserved; EXPERIMENTS.md
// records paper-vs-measured for each figure.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/runner"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies every byte quantity (allocation volume, heap,
	// physical memory). 1.0 is paper scale; 0.1 runs in seconds.
	Scale float64
	// Seed drives the deterministic workloads.
	Seed int64
	// Counters attaches an event-counter registry to every run;
	// experiments that report cooperation behaviour add counter notes.
	Counters bool
}

// DefaultOptions returns a quarter-scale configuration: big enough for
// stable shapes, small enough to finish in minutes.
func DefaultOptions() Options { return Options{Scale: 0.25, Seed: 1} }

func (o Options) bytes(paperBytes float64) uint64 {
	b := uint64(paperBytes * o.Scale)
	return mem.RoundUpPage(b)
}

// Report is one table or figure's data, printable as aligned text.
type Report struct {
	ID     string     `json:"id"` // "table1", "fig2", ...
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// Print writes the report as an aligned table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a named, runnable reproduction of one table or figure.
// Run emits the experiment's jobs to the runner and reduces the results;
// it owns no execution policy (parallelism, caching, timeouts all live
// in the runner it is handed).
type Experiment struct {
	ID   string
	Desc string
	Run  func(Options, *runner.Runner) []Report
}

// Experiments lists every reproduction, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "benchmark memory statistics", Table1},
		{"fig2", "execution time relative to BC, no memory pressure", Fig2},
		{"fig2x", "per-benchmark detail behind Figure 2's geomean", Fig2Detail},
		{"fig3", "steady memory pressure: execution time and mean pause", Fig3},
		{"fig3x", "steady pressure at 70% removal (§5.3.1 text)", Fig3x},
		{"fig4", "dynamic pressure: mean GC pause", Fig4},
		{"fig5", "dynamic pressure: execution time (and fixed nurseries)", Fig5},
		{"fig6", "bounded mutator utilization curves", Fig6},
		{"fig7", "two JVMs: execution time and mean pause", Fig7},
		{"ablate", "ablations of BC design choices (§7, DESIGN.md)", Ablations},
		{"replay", "one recorded trace replayed across collectors", Replay},
		{"fleet", "16-tenant shared machine: arbitration policy vs fleet survival", Fleet},
		{"heappolicy", "heap-limit policy Pareto: total memory vs total GC time", HeapPolicy},
	}
}

// ByID returns the named experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunSequential executes e on a private single-worker runner — the
// convenient form for tests and one-off calls.
func RunSequential(e Experiment, o Options) []Report {
	return e.Run(o, runner.New(runner.Options{Workers: 1}))
}

// counterNote renders one run's cooperation counters as a report note.
// c is the runner result's by-name counter map; nil (counters were not
// collected) yields the empty string.
func counterNote(label string, c map[string]uint64) string {
	if c == nil {
		return ""
	}
	return fmt.Sprintf(
		"%s: bookmarked=%d evicted=%d discarded=%d reloaded=%d incoming(+%d/-%d) remset(filtered=%d carded=%d) forwarded=%dB",
		label,
		c["objects_bookmarked"], c["pages_processed"],
		c["pages_discarded"], c["pages_reloaded"],
		c["incoming_bumps"], c["incoming_decrements"],
		c["remset_entries_filtered"], c["remset_entries_carded"],
		c["forwarded_bytes"])
}

// secs formats a simulated duration.
func secs(s float64) string { return fmt.Sprintf("%.3fs", s) }

// ms formats a duration in milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.1fms", float64(d)/1e6) }
