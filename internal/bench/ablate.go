package bench

import (
	"fmt"

	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/runner"
	"bookmarkgc/internal/sim"
)

// Ablations measures the BC design choices DESIGN.md calls out, under the
// Figure 5 dynamic-pressure scenario at a moderately severe setting:
//
//   - bookmarking itself (BC vs. the resize-only variant, §5.3.2);
//   - aggressive word-at-a-time empty-page discard (§3.4.3);
//   - the pointer-free victim-selection extension (§7);
//   - heap regrowth after transient pressure (§7);
//   - GenMS with an Alonso–Appel heap-sizing advisor (related work, §6):
//     resizing without cooperation, which the paper argues cannot
//     eliminate paging.
func Ablations(o Options, rn *runner.Runner) []Report {
	const availFrac = 0.70
	kinds := []sim.CollectorKind{
		sim.BC, sim.BCResizeOnly, sim.BCNoAggressive, sim.BCPointerFree, sim.BCRegrow,
		sim.GenMS, sim.GenMSAdvisor,
	}
	prog := mutator.PseudoJBB().Scale(o.Scale)
	heap := o.bytes(fig45HeapMB * (1 << 20))
	rn.RunAll([]runner.Job{baselineJob(o, prog, heap)})
	base := fig45Baseline(o, rn, prog, heap)

	var jobs []runner.Job
	for _, k := range kinds {
		jobs = append(jobs, dynamicJob(o, k, prog, heap, uint64(availFrac*float64(heap)), base))
	}
	rn.RunAll(jobs)

	r := Report{
		ID:     "ablate",
		Title:  "BC variants under dynamic pressure (available = 70% of heap)",
		Header: []string{"variant", "exec time", "mean pause", "GC major faults", "pages bookmarked", "notifications"},
	}
	for _, k := range kinds {
		res := rn.Result(dynamicJob(o, k, prog, heap, uint64(availFrac*float64(heap)), base))
		if !res.OK() {
			r.Rows = append(r.Rows, []string{string(k), "-", "-", "-", "-", "-"})
			continue
		}
		run := res.One()
		tl := run.Timeline()
		var gcFaults uint64
		for _, p := range tl.Pauses {
			gcFaults += p.MajorFaults
		}
		r.Rows = append(r.Rows, []string{
			string(k),
			secs(run.ElapsedSecs),
			ms(tl.AvgPause()),
			fmt.Sprintf("%d", gcFaults),
			fmt.Sprintf("%d", run.PagesEvicted),
			fmt.Sprintf("%d", run.Proc.ProtFaults+run.Proc.MajorFaults),
		})
		if o.Counters {
			r.Notes = append(r.Notes, counterNote(string(k), res.Counters))
		}
	}
	return []Report{r}
}
