package bench

import (
	"fmt"

	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/sim"
)

// Ablations measures the BC design choices DESIGN.md calls out, under the
// Figure 5 dynamic-pressure scenario at a moderately severe setting:
//
//   - bookmarking itself (BC vs. the resize-only variant, §5.3.2);
//   - aggressive word-at-a-time empty-page discard (§3.4.3);
//   - the pointer-free victim-selection extension (§7);
//   - heap regrowth after transient pressure (§7);
//   - GenMS with an Alonso–Appel heap-sizing advisor (related work, §6):
//     resizing without cooperation, which the paper argues cannot
//     eliminate paging.
func Ablations(o Options) []Report {
	kinds := []sim.CollectorKind{
		sim.BC, sim.BCResizeOnly, sim.BCNoAggressive, sim.BCPointerFree, sim.BCRegrow,
		sim.GenMS, sim.GenMSAdvisor,
	}
	r := Report{
		ID:     "ablate",
		Title:  "BC variants under dynamic pressure (available = 70% of heap)",
		Header: []string{"variant", "exec time", "mean pause", "GC major faults", "pages bookmarked", "notifications"},
	}
	prog := mutator.PseudoJBB().Scale(o.Scale)
	heap := o.bytes(fig45HeapMB * (1 << 20))
	base := fig45Baseline(o, prog, heap)
	for _, k := range kinds {
		res, ok := dynamicRun(o, k, prog, heap, uint64(0.70*float64(heap)), base)
		if !ok {
			r.Rows = append(r.Rows, []string{string(k), "-", "-", "-", "-", "-"})
			continue
		}
		var gcFaults uint64
		for _, p := range res.Timeline.Pauses {
			gcFaults += p.MajorFaults
		}
		r.Rows = append(r.Rows, []string{
			string(k),
			secs(res.ElapsedSecs),
			ms(res.Timeline.AvgPause()),
			fmt.Sprintf("%d", gcFaults),
			fmt.Sprintf("%d", res.GCStats.PagesEvicted),
			fmt.Sprintf("%d", res.ProcStats.ProtFaults+res.ProcStats.MajorFaults),
		})
		if o.Counters {
			r.Notes = append(r.Notes, counterNote(string(k), res))
		}
	}
	return []Report{r}
}
