package bench

import (
	"fmt"

	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/runner"
	"bookmarkgc/internal/sim"
)

// fig3Heaps are pseudoJBB heap sizes in MB (paper x-axis 60–130 MB).
var fig3Heaps = []int{60, 70, 80, 90, 100, 110, 120, 130}

// fig3Collectors: the paper drops MarkSweep from the pressure graphs
// because its runs "can take hours".
var fig3Collectors = []sim.CollectorKind{
	sim.BC, sim.GenMS, sim.GenCopy, sim.CopyMS, sim.SemiSpace,
}

// fig3Job is one collector on pseudoJBB under steady pressure: physical
// memory comfortably holds the heap; signalmem then pins all but
// availFrac of the heap (plus a small slack for the rest of the
// process).
func fig3Job(o Options, k sim.CollectorKind, prog mutator.Spec, heapMB int, availFrac float64) runner.Job {
	heap := o.bytes(float64(heapMB) * (1 << 20))
	slack := o.bytes(6 << 20)
	avail := uint64(availFrac*float64(heap)) + slack
	phys := heap * 2
	return runner.Job{
		Collector: k,
		Program:   prog,
		HeapBytes: heap,
		PhysBytes: phys,
		Seed:      o.Seed,
		Counters:  o.Counters,
		Pressure:  &sim.Pressure{InitialBytes: phys - avail},
	}
}

// Fig3 reproduces Figure 3: steady memory pressure on pseudoJBB, where
// available memory holds only 40% of the heap (signalmem removes 60% of
// the heap size at the start of the measured iteration). Two reports:
// (a) execution time and (b) mean GC pause, per collector per heap size.
// Paper shape: BC 7–8x faster than GenMS at the largest heaps and less
// than half the time of CopyMS at 130 MB; GenMS's mean pause ~3 s (~30x
// BC's) at 130 MB.
func Fig3(o Options, rn *runner.Runner) []Report { return fig3At(o, rn, "fig3", 0.40) }

// Fig3x is the §5.3.1 stress variant: available memory holds only 30% of
// the heap (70% removed). Paper: CopyMS takes over an hour; BC's time is
// largely unchanged.
func Fig3x(o Options, rn *runner.Runner) []Report { return fig3At(o, rn, "fig3x", 0.30) }

func fig3At(o Options, rn *runner.Runner, id string, availFrac float64) []Report {
	prog := mutator.PseudoJBB().Scale(o.Scale)
	var jobs []runner.Job
	for _, k := range fig3Collectors {
		for _, heapMB := range fig3Heaps {
			jobs = append(jobs, fig3Job(o, k, prog, heapMB, availFrac))
		}
	}
	rn.RunAll(jobs)

	exec := Report{
		ID:     id + "a",
		Title:  fmt.Sprintf("steady pressure (available = %.0f%% of heap): execution time, pseudoJBB", availFrac*100),
		Header: append([]string{"collector"}, heapLabels(fig3Heaps)...),
	}
	pause := Report{
		ID:     id + "b",
		Title:  fmt.Sprintf("steady pressure (available = %.0f%% of heap): mean GC pause, pseudoJBB", availFrac*100),
		Header: append([]string{"collector"}, heapLabels(fig3Heaps)...),
	}
	for _, k := range fig3Collectors {
		execRow := []string{string(k)}
		pauseRow := []string{string(k)}
		for _, heapMB := range fig3Heaps {
			res := rn.Result(fig3Job(o, k, prog, heapMB, availFrac))
			if !res.OK() {
				execRow = append(execRow, "-")
				pauseRow = append(pauseRow, "-")
				continue
			}
			run := res.One()
			tl := run.Timeline()
			execRow = append(execRow, secs(run.ElapsedSecs))
			pauseRow = append(pauseRow, ms(tl.AvgPause()))
			if o.Counters && heapMB == fig3Heaps[len(fig3Heaps)-1] {
				exec.Notes = append(exec.Notes,
					counterNote(fmt.Sprintf("%s@%dMB", k, heapMB), res.Counters))
			}
		}
		exec.Rows = append(exec.Rows, execRow)
		pause.Rows = append(pause.Rows, pauseRow)
	}
	return []Report{exec, pause}
}

func heapLabels(heaps []int) []string {
	out := make([]string, len(heaps))
	for i, h := range heaps {
		out[i] = fmt.Sprintf("%dMB", h)
	}
	return out
}
