package bench

import (
	"bytes"
	"fmt"
	"testing"

	"bookmarkgc/internal/runner"
)

// renderAll runs an experiment on a fresh runner with the given worker
// count and returns the rendered report bytes.
func renderAll(t *testing.T, e Experiment, o Options, workers int) []byte {
	t.Helper()
	rn := runner.New(runner.Options{Workers: workers})
	var buf bytes.Buffer
	for _, r := range e.Run(o, rn) {
		r.Print(&buf)
	}
	if buf.Len() == 0 {
		t.Fatalf("%s rendered nothing", e.ID)
	}
	return buf.Bytes()
}

// TestReportDeterminism is the ISSUE's regression gate: report bytes are
// a pure function of the experiment's inputs — identical whether jobs
// run on 1 worker or 8, for more than one seed. fig4 covers the
// two-batch (baseline then calibrated-pressure) emission shape; fig7
// covers multi-JVM jobs; fleet covers multi-tenant fleet jobs with
// chaos, arbitration, and the cascade ladder.
func TestReportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig4, fig7, and fleet four times; the engine-level half (internal/runner TestSchedulingDeterminism) still runs under -short")
	}
	for _, id := range []string{"fig4", "fig7", "fleet"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		for _, seed := range []int64{1, 2} {
			t.Run(fmt.Sprintf("%s/seed%d", id, seed), func(t *testing.T) {
				o := Options{Scale: 0.02, Seed: seed}
				seq := renderAll(t, e, o, 1)
				par := renderAll(t, e, o, 8)
				if !bytes.Equal(seq, par) {
					t.Errorf("report bytes differ between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", seq, par)
				}
			})
		}
	}
}
