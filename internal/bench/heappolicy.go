package bench

import (
	"fmt"
	"time"

	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/runner"
	"bookmarkgc/internal/sim"
)

// hpPolicies are the four heap-limit regimes the Pareto experiment
// sweeps (internal/heappolicy), in documentation order.
var hpPolicies = []string{"fixed", "bc-shrink", "membalancer", "composed"}

// hpHeapsMB is the swept heap axis in MB: the fig3 range thinned to
// four points, enough to draw a memory-vs-GC-time frontier per policy.
var hpHeapsMB = []int{70, 85, 100, 115}

// hpAvailFrac is the steady squeeze: available memory holds 70% of the
// heap, so pressure-reactive policies (bc-shrink, composed) engage
// while the run stays far from thrashing collapse.
const hpAvailFrac = 0.70

// hpJob is one single-tenant Pareto point: GenMS on pseudoJBB under
// steady pressure, with only the heap-limit policy and heap size
// varying. GenMS has no native policy, so "fixed" is the true status
// quo; pressure reaches bc-shrink/composed through the policy relay.
func hpJob(o Options, pol string, prog mutator.Spec, heapMB int) runner.Job {
	heap := o.bytes(float64(heapMB) * (1 << 20))
	slack := o.bytes(6 << 20)
	avail := uint64(hpAvailFrac*float64(heap)) + slack
	phys := heap * 2
	return runner.Job{
		Collector:  sim.GenMS,
		Program:    prog,
		HeapBytes:  heap,
		PhysBytes:  phys,
		Seed:       o.Seed,
		Counters:   o.Counters,
		Pressure:   &sim.Pressure{InitialBytes: phys - avail},
		HeapPolicy: pol,
	}
}

// hpFleetJob is one 16-tenant fleet with every tenant under the given
// heap-limit policy and the fleet MemBalancer redistributing the
// machine every 25 ms of simulated time. Arbitration is pinned to
// global-lru so only the heap-policy axis varies.
func hpFleetJob(o Options, pol string) runner.Job {
	spec := sim.DefaultFleetSpec(16, o.Scale, o.Seed, o.Seed+42)
	spec.Policy = sim.PolicyGlobalLRU
	spec.HeapPolicy = pol
	spec.BalanceEveryNS = int64(25 * time.Millisecond)
	return runner.Job{Fleet: &spec, Seed: o.Seed}
}

// hpPoint is one (memory, GC time) Pareto coordinate.
type hpPoint struct {
	resident uint64
	gcTime   time.Duration
}

// dominates reports whether a beats b on the Pareto frontier: no worse
// on both axes, strictly better on at least one.
func (a hpPoint) dominates(b hpPoint) bool {
	if a.resident > b.resident || a.gcTime > b.gcTime {
		return false
	}
	return a.resident < b.resident || a.gcTime < b.gcTime
}

// HeapPolicy is the heap-limit policy Pareto experiment: the same
// workload and machine, with only the policy deciding how much of the
// configured heap the collector may actually use. Report 1 sweeps a
// single tenant across four heap sizes per policy — each policy traces
// a total-memory × total-GC-time curve. Report 2 runs the 16-tenant
// mixed fleet under each policy with the fleet MemBalancer armed. The
// MemBalancer claim: the square-root rule gives back memory the
// workload cannot convert into useful GC savings, so its curve should
// dominate the fixed budget's somewhere on the frontier.
func HeapPolicy(o Options, rn *runner.Runner) []Report {
	prog := mutator.PseudoJBB().Scale(o.Scale)
	var jobs []runner.Job
	for _, pol := range hpPolicies {
		for _, heapMB := range hpHeapsMB {
			jobs = append(jobs, hpJob(o, pol, prog, heapMB))
		}
		jobs = append(jobs, hpFleetJob(o, pol))
	}
	rn.RunAll(jobs)

	single := Report{
		ID:    "heappolicy",
		Title: fmt.Sprintf("heap-limit policy Pareto: GenMS/pseudoJBB, steady pressure (%.0f%% of heap available)", hpAvailFrac*100),
		Header: []string{"policy", "heap", "peak resident",
			"GC time", "GCs", "majflt", "exec"},
		Notes: []string{
			"peak resident: high-water resident pages — the memory axis",
			"GC time: summed stop-the-world pause time — the time axis",
		},
	}
	points := map[string][]hpPoint{}
	for _, pol := range hpPolicies {
		for _, heapMB := range hpHeapsMB {
			res := rn.Result(hpJob(o, pol, prog, heapMB))
			if !res.OK() {
				single.Rows = append(single.Rows, []string{pol,
					fmt.Sprintf("%dMB", heapMB), "-", "-", "-", "-", "-"})
				continue
			}
			rd := res.One()
			tl := rd.Timeline()
			p := hpPoint{resident: rd.Proc.PeakResident, gcTime: tl.TotalPause()}
			points[pol] = append(points[pol], p)
			single.Rows = append(single.Rows, []string{
				pol,
				fmt.Sprintf("%dMB", heapMB),
				fmt.Sprintf("%dpg", p.resident),
				ms(p.gcTime),
				fmt.Sprintf("%d", rd.Nursery+rd.Full),
				fmt.Sprintf("%d", rd.Proc.MajorFaults),
				secs(rd.ElapsedSecs),
			})
		}
	}
	dominated := 0
	for _, fx := range points["fixed"] {
		for _, mb := range points["membalancer"] {
			if mb.dominates(fx) {
				dominated++
				break
			}
		}
	}
	single.Notes = append(single.Notes, fmt.Sprintf(
		"membalancer dominates fixed at %d of %d frontier points",
		dominated, len(points["fixed"])))

	fleet := Report{
		ID:    "heappolicyfleet",
		Title: "16-tenant fleet under each heap-limit policy, fleet MemBalancer every 25ms",
		Header: []string{"policy", "agg peak resident", "GC time", "agg majflt",
			"agg evict", "balancer rounds", "fairness", "failed"},
		Notes: []string{
			"agg peak resident: summed per-tenant high-water resident pages",
			"GC time: summed pause time across all sixteen tenants",
		},
	}
	fleetPts := map[string]hpPoint{}
	for _, pol := range hpPolicies {
		res := rn.Result(hpFleetJob(o, pol))
		if res == nil || res.Err != "" || res.Fleet == nil {
			fleet.Rows = append(fleet.Rows, []string{pol, "-", "-", "-", "-", "-", "-", "-"})
			continue
		}
		fd := res.Fleet
		var gcTime time.Duration
		failed := 0
		for _, rd := range res.Runs {
			if !rd.OK() {
				failed++
			}
			tl := rd.Timeline()
			gcTime += tl.TotalPause()
		}
		fleetPts[pol] = hpPoint{resident: fd.AggPeakResident, gcTime: gcTime}
		fleet.Rows = append(fleet.Rows, []string{
			pol,
			fmt.Sprintf("%dpg", fd.AggPeakResident),
			ms(gcTime),
			fmt.Sprintf("%d", fd.AggMajorFaults),
			fmt.Sprintf("%d", fd.AggEvictions),
			fmt.Sprintf("%d", fd.BalancerRounds),
			fmt.Sprintf("%.3f", fd.Fairness),
			fmt.Sprintf("%d", failed),
		})
	}
	if fx, okF := fleetPts["fixed"]; okF {
		if mb, okM := fleetPts["membalancer"]; okM {
			verdict := "does NOT lower"
			if mb.resident < fx.resident && mb.gcTime <= fx.gcTime {
				verdict = "lowers"
			}
			fleet.Notes = append(fleet.Notes, fmt.Sprintf(
				"fleet membalancer %s aggregate peak residency vs fixed at equal-or-better GC time (%dpg/%s vs %dpg/%s)",
				verdict, mb.resident, ms(mb.gcTime), fx.resident, ms(fx.gcTime)))
		}
	}
	return []Report{single, fleet}
}
