package bench

import (
	"fmt"
	"time"

	"bookmarkgc/internal/runner"
	"bookmarkgc/internal/sim"
)

// fleetVariants are the arbitration regimes the fleet experiment
// compares on an otherwise identical 16-tenant fleet: the
// cooperation-blind kernel baseline, the two static aware policies, and
// the full degradation ladder (blind until the cascade detector trips,
// then escalated to cooperation-aware).
var fleetVariants = []struct {
	label    string
	policy   sim.ArbitrationPolicy
	escalate sim.ArbitrationPolicy
}{
	{"global-lru", sim.PolicyGlobalLRU, ""},
	{"proportional", sim.PolicyProportional, ""},
	{"cooperative", sim.PolicyCooperative, ""},
	{"lru+ladder", sim.PolicyGlobalLRU, sim.PolicyCooperative},
}

// fleetJob builds one fleet job: the stock mixed fleet under the given
// arbitration regime.
func fleetJob(o Options, policy, escalate sim.ArbitrationPolicy) runner.Job {
	spec := sim.DefaultFleetSpec(16, o.Scale, o.Seed, o.Seed+42)
	spec.Policy = policy
	spec.EscalateTo = escalate
	return runner.Job{Fleet: &spec, Seed: o.Seed}
}

// Fleet is the multi-tenant survival experiment: sixteen heterogeneous
// tenants (BC alternating with non-cooperating collectors, two noisy
// neighbors under the thrash chaos regime) share a machine holding 65%
// of their summed heaps, and only the eviction-arbitration regime
// varies. The paper's claim at fleet scale: cooperation-aware
// arbitration shields the bookmarking tenants' major faults and tail
// pauses, at a measurable fairness cost to those who cannot cooperate.
func Fleet(o Options, rn *runner.Runner) []Report {
	var jobs []runner.Job
	for _, v := range fleetVariants {
		jobs = append(jobs, fleetJob(o, v.policy, v.escalate))
	}
	rn.RunAll(jobs)

	r := Report{
		ID:    "fleet",
		Title: "16-tenant shared machine: arbitration policy vs fleet survival",
		Header: []string{"arbitration", "agg major", "agg evict", "vetoes",
			"fairness", "BC p99", "other p99", "cascades", "escalated", "failed"},
		Notes: []string{
			"fairness: Jain's index over per-tenant eviction counts (1 = even pressure)",
			"BC/other p99: mean of per-tenant 99th-percentile pauses, by cooperation",
			"lru+ladder: global-lru until the cascade detector trips, then cooperative",
		},
	}
	for _, v := range fleetVariants {
		job := fleetJob(o, v.policy, v.escalate)
		res := rn.Result(job)
		if res == nil || res.Err != "" || res.Fleet == nil {
			r.Rows = append(r.Rows, []string{v.label, "-", "-", "-", "-", "-", "-", "-", "-", "-"})
			continue
		}
		fd := res.Fleet
		spec := job.Fleet
		var bcSum, otherSum time.Duration
		var bcN, otherN int
		failed := 0
		for i, rd := range res.Runs {
			if !rd.OK() {
				failed++
			}
			if i >= len(fd.PauseP99NS) || i >= len(spec.Tenants) {
				continue
			}
			p99 := time.Duration(fd.PauseP99NS[i])
			if spec.Tenants[i].Collector == sim.BC {
				bcSum += p99
				bcN++
			} else {
				otherSum += p99
				otherN++
			}
		}
		mean := func(sum time.Duration, n int) string {
			if n == 0 {
				return "-"
			}
			return ms(sum / time.Duration(n))
		}
		r.Rows = append(r.Rows, []string{
			v.label,
			fmt.Sprintf("%d", fd.AggMajorFaults),
			fmt.Sprintf("%d", fd.AggEvictions),
			fmt.Sprintf("%d", fd.ArbiterVetoes),
			fmt.Sprintf("%.3f", fd.Fairness),
			mean(bcSum, bcN),
			mean(otherSum, otherN),
			fmt.Sprintf("%d", fd.Cascades),
			fmt.Sprintf("%v", fd.Escalated),
			fmt.Sprintf("%d", failed),
		})
	}
	return []Report{r}
}
