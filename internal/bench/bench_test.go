package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"bookmarkgc/internal/runner"
)

func fmtSscan(s string, f *float64) (int, error) { return fmt.Sscan(s, f) }

// tiny options keep each experiment to a few seconds.
func tiny() Options { return Options{Scale: 0.02, Seed: 1} }

// testRunner executes jobs on every available core.
func testRunner() *runner.Runner { return runner.New(runner.Options{}) }

func TestExperimentRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
		if got, ok := ByID(e.ID); !ok || got.ID != e.ID {
			t.Fatalf("ByID(%s) failed", e.ID)
		}
	}
	for _, want := range []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "ablate"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID invented an experiment")
	}
}

func TestReportPrint(t *testing.T) {
	r := Report{
		ID:     "x",
		Title:  "t",
		Header: []string{"a", "bbb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n"},
	}
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== x: t ==", "a    bbb", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// checkReports validates the common shape invariants of an experiment's
// output.
func checkReports(t *testing.T, rs []Report, wantRows int) {
	t.Helper()
	if len(rs) == 0 {
		t.Fatal("no reports")
	}
	for _, r := range rs {
		if len(r.Rows) < wantRows {
			t.Fatalf("%s: %d rows, want >= %d", r.ID, len(r.Rows), wantRows)
		}
		for _, row := range r.Rows {
			if len(row) != len(r.Header) {
				t.Fatalf("%s: ragged row %v vs header %v", r.ID, row, r.Header)
			}
			for _, cell := range row {
				if cell == "" {
					t.Fatalf("%s: empty cell in %v", r.ID, row)
				}
			}
		}
	}
}

func TestFig4Tiny(t *testing.T) {
	rs := Fig4(tiny(), testRunner())
	checkReports(t, rs, 5)
}

func TestFig7Tiny(t *testing.T) {
	rs := Fig7(tiny(), testRunner())
	checkReports(t, rs, 5)
	if rs[0].ID != "fig7a" || rs[1].ID != "fig7b" {
		t.Fatal("fig7 report ids wrong")
	}
}

func TestAblationsTiny(t *testing.T) {
	rs := Ablations(tiny(), testRunner())
	checkReports(t, rs, 5)
}

func TestFig6Tiny(t *testing.T) {
	rs := Fig6(tiny(), testRunner())
	checkReports(t, rs, 7)
	// BMU cells must be parseable fractions in [0,1] or "-".
	for _, r := range rs {
		for _, row := range r.Rows {
			for _, cell := range row[1:] {
				if cell == "-" {
					continue
				}
				var f float64
				if _, err := fmtSscan(cell, &f); err != nil || f < 0 || f > 1 {
					t.Fatalf("%s: bad BMU cell %q", r.ID, cell)
				}
			}
		}
	}
}
