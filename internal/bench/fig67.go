package bench

import (
	"fmt"
	"time"

	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/runner"
	"bookmarkgc/internal/sim"
)

// fig6Windows are the BMU window sizes reported, as multiples of the
// unpressured baseline run time. The paper plots absolute windows (up to
// ~10 minutes); anchoring to the baseline duration gives every collector
// the same absolute windows while staying scale-independent.
var fig6Windows = []float64{0.3, 1, 3, 10, 30, 100, 300}

// Fig6 reproduces Figure 6: bounded mutator utilization under dynamic
// pressure, at a moderate and a severe available-memory level (the paper
// uses 143 MB and 93 MB against a ~130 MB footprint). Paper shape: under
// moderate pressure BC and MarkSweep do well; under severe pressure only
// BC achieves high utilization (~0.9 at a 10-second window) while every
// other collector is near zero there, and MarkSweep needs ~10-minute
// windows for 0.25 utilization.
func Fig6(o Options, rn *runner.Runner) []Report {
	kinds := []sim.CollectorKind{
		sim.BC, sim.BCResizeOnly, sim.GenMS, sim.GenCopy, sim.CopyMS, sim.SemiSpace, sim.MarkSweep,
	}
	fracs := []float64{1.30, 0.90}
	prog := mutator.PseudoJBB().Scale(o.Scale)
	heap := o.bytes(fig45HeapMB * (1 << 20))
	rn.RunAll([]runner.Job{baselineJob(o, prog, heap)})
	base := fig45Baseline(o, rn, prog, heap)

	var jobs []runner.Job
	for _, frac := range fracs {
		for _, k := range kinds {
			jobs = append(jobs, dynamicJob(o, k, prog, heap, uint64(frac*float64(heap)), base))
		}
	}
	rn.RunAll(jobs)

	mk := func(id string, frac float64, label string) Report {
		r := Report{
			ID:     id,
			Title:  fmt.Sprintf("BMU curves, %s pressure (available = %.0f%% of heap)", label, frac*100),
			Header: append([]string{"collector"}, windowLabels()...),
			Notes:  []string{"cells: BMU at windows of w times the unpressured run time T"},
		}
		for _, k := range kinds {
			row := []string{string(k)}
			res := rn.Result(dynamicJob(o, k, prog, heap, uint64(frac*float64(heap)), base))
			if !res.OK() {
				for range fig6Windows {
					row = append(row, "-")
				}
				r.Rows = append(r.Rows, row)
				continue
			}
			tl := res.One().Timeline()
			for _, wf := range fig6Windows {
				w := time.Duration(wf * float64(base))
				row = append(row, fmt.Sprintf("%.3f", tl.BMU(w)))
			}
			r.Rows = append(r.Rows, row)
		}
		return r
	}
	return []Report{
		mk("fig6a", fracs[0], "moderate"),
		mk("fig6b", fracs[1], "severe"),
	}
}

func windowLabels() []string {
	out := make([]string, len(fig6Windows))
	for i, w := range fig6Windows {
		out[i] = fmt.Sprintf("w=%gxT", w)
	}
	return out
}

// fig7Avail sweeps total machine memory as fractions of the two JVMs'
// combined heaps.
var fig7Avail = []float64{1.3, 1.1, 0.9, 0.7, 0.55}

// fig7Job is two JVM instances sharing one machine whose memory is frac
// of their combined heaps.
func fig7Job(o Options, k sim.CollectorKind, prog mutator.Spec, heap uint64, frac float64) runner.Job {
	return runner.Job{
		Collector: k,
		Program:   prog,
		HeapBytes: heap,
		PhysBytes: uint64(frac * float64(2*heap)),
		JVMs:      2,
		Seed:      o.Seed,
	}
}

// Fig7 reproduces Figure 7: two JVM instances running pseudoJBB
// simultaneously with 77 MB heaps, sweeping available memory. (a) total
// elapsed time — misleading for the VM-oblivious collectors, whose runs
// paging effectively serializes — and (b) mean GC pause, where BC's
// ~380 ms at the lowest memory is ~7.5x below CopyMS, the next best.
// A partial machine (any instance failed) is a missing point.
func Fig7(o Options, rn *runner.Runner) []Report {
	kinds := []sim.CollectorKind{sim.BC, sim.GenMS, sim.GenCopy, sim.CopyMS, sim.SemiSpace}
	prog := mutator.PseudoJBB().Scale(o.Scale)
	heap := o.bytes(fig45HeapMB * (1 << 20))

	var jobs []runner.Job
	for _, k := range kinds {
		for _, frac := range fig7Avail {
			jobs = append(jobs, fig7Job(o, k, prog, heap, frac))
		}
	}
	rn.RunAll(jobs)

	exec := Report{
		ID:     "fig7a",
		Title:  "two JVMs: total elapsed time, pseudoJBB x2, 77MB heaps",
		Header: append([]string{"collector"}, fig7Labels()...),
	}
	pause := Report{
		ID:     "fig7b",
		Title:  "two JVMs: mean GC pause across both instances",
		Header: append([]string{"collector"}, fig7Labels()...),
	}
	for _, k := range kinds {
		execRow := []string{string(k)}
		pauseRow := []string{string(k)}
		for _, frac := range fig7Avail {
			res := rn.Result(fig7Job(o, k, prog, heap, frac))
			if !res.OK() {
				execRow = append(execRow, "-")
				pauseRow = append(pauseRow, "-")
				continue
			}
			var end float64
			var pauses []metrics.Pause
			for _, rd := range res.Runs {
				if rd.ElapsedSecs > end {
					end = rd.ElapsedSecs
				}
				pauses = append(pauses, rd.Timeline().Pauses...)
			}
			var sum time.Duration
			for _, p := range pauses {
				sum += p.Dur
			}
			avg := time.Duration(0)
			if len(pauses) > 0 {
				avg = sum / time.Duration(len(pauses))
			}
			execRow = append(execRow, secs(end))
			pauseRow = append(pauseRow, ms(avg))
		}
		exec.Rows = append(exec.Rows, execRow)
		pause.Rows = append(pause.Rows, pauseRow)
	}
	return []Report{exec, pause}
}

func fig7Labels() []string {
	out := make([]string, len(fig7Avail))
	for i, f := range fig7Avail {
		out[i] = fmt.Sprintf("%.0fMB", f*2*fig45HeapMB)
	}
	return out
}
