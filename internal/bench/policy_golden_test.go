package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"bookmarkgc/internal/runner"
)

// TestFig4GoldenBCShrink pins Figure 4's rendered output at scale 0.02
// against bytes captured BEFORE the heap-limit policy extraction: BC
// running under the extracted bc-shrink policy must reproduce the
// collector's original hard-coded shrink/regrow behaviour
// byte-for-byte. Fig4 is the dynamic-pressure figure, so every BC row
// exercises the shrink path (and BC-Regrow the regrow path).
// Regenerate only with an intentional simulator change:
//
//	go test ./internal/bench -run TestFig4GoldenBCShrink -update
func TestFig4GoldenBCShrink(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 at scale 0.02 takes ~15s of simulation")
	}
	e, ok := ByID("fig4")
	if !ok {
		t.Fatal("fig4 not registered")
	}
	rn := runner.New(runner.Options{})
	var buf bytes.Buffer
	for _, r := range e.Run(Options{Scale: 0.02, Seed: 1}, rn) {
		r.Print(&buf)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "fig4_scale002.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("fig4 output drifted from pre-extraction golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
