package bench

import (
	"fmt"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/runner"
	"bookmarkgc/internal/sim"
)

// fig2Factors are the relative heap sizes swept (paper x-axis: 1–3.25x
// the per-benchmark minimum heap).
var fig2Factors = []float64{1.25, 1.5, 2.0, 2.5, 3.0}

// fig2Collectors in presentation order.
var fig2Collectors = []sim.CollectorKind{
	sim.BC, sim.GenMS, sim.GenCopy, sim.CopyMS, sim.MarkSweep, sim.SemiSpace,
}

// fig2Job is one collector on one benchmark at relative heap factor f,
// with ample physical memory (no pressure). Shared with Fig2Detail so
// the 2.0x column is computed once.
func fig2Job(o Options, k sim.CollectorKind, scaled mutator.Spec, f float64) runner.Job {
	heap := mem.RoundUpPage(uint64(f * float64(scaled.MinHeap)))
	return runner.Job{
		Collector: k,
		Program:   scaled,
		HeapBytes: heap,
		PhysBytes: heap*4 + (64 << 20),
		Seed:      o.Seed,
		Counters:  o.Counters,
	}
}

// Fig2 reproduces Figure 2: geometric mean of execution time relative to
// BC across all benchmarks, without memory pressure, as a function of
// relative heap size. The paper's shape: BC and GenMS effectively tied at
// large heaps (BC ~0.3% faster), BC ahead at small heaps thanks to
// compaction, GenCopy ~7% behind, MarkSweep ~20% and CopyMS ~29% behind
// at the largest heap.
func Fig2(o Options, rn *runner.Runner) []Report {
	var jobs []runner.Job
	for _, prog := range mutator.Programs {
		scaled := prog.Scale(o.Scale)
		for _, f := range fig2Factors {
			for _, k := range fig2Collectors {
				jobs = append(jobs, fig2Job(o, k, scaled, f))
			}
		}
	}
	rn.RunAll(jobs)

	r := Report{
		ID:     "fig2",
		Title:  "geometric mean execution time relative to BC (no memory pressure)",
		Header: append([]string{"collector"}, factorLabels(fig2Factors)...),
		Notes: []string{
			"cells: geomean over all benchmarks of time(collector)/time(BC); '-' = does not complete",
		},
	}
	// exec[collector][factor] = per-benchmark times.
	type cell struct{ rel []float64 }
	table := map[sim.CollectorKind]map[float64]*cell{}
	for _, k := range fig2Collectors {
		table[k] = map[float64]*cell{}
		for _, f := range fig2Factors {
			table[k][f] = &cell{}
		}
	}
	for _, prog := range mutator.Programs {
		scaled := prog.Scale(o.Scale)
		for _, f := range fig2Factors {
			bc := rn.Result(fig2Job(o, sim.BC, scaled, f))
			if !bc.OK() {
				continue
			}
			for _, k := range fig2Collectors {
				if k == sim.BC {
					table[k][f].rel = append(table[k][f].rel, 1)
					continue
				}
				res := rn.Result(fig2Job(o, k, scaled, f))
				if !res.OK() {
					continue
				}
				table[k][f].rel = append(table[k][f].rel,
					res.One().ElapsedSecs/bc.One().ElapsedSecs)
			}
		}
	}
	for _, k := range fig2Collectors {
		row := []string{string(k)}
		for _, f := range fig2Factors {
			c := table[k][f]
			if len(c.rel) == 0 {
				row = append(row, "-")
				continue
			}
			suffix := ""
			if len(c.rel) < len(mutator.Programs) {
				suffix = fmt.Sprintf(" (%d/%d)", len(c.rel), len(mutator.Programs))
			}
			row = append(row, fmt.Sprintf("%.3f%s", metrics.Geomean(c.rel), suffix))
		}
		r.Rows = append(r.Rows, row)
	}
	return []Report{r}
}

func factorLabels(fs []float64) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = fmt.Sprintf("%.2fx", f)
	}
	return out
}
