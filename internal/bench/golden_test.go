package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"bookmarkgc/internal/runner"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestTable1Golden pins Table 1's rendered output at scale 0.05 — the
// simulator runs on a simulated clock, so these bytes are
// machine-independent. Regenerate after an intentional simulator or
// report change with:
//
//	go test ./internal/bench -run TestTable1Golden -update
func TestTable1Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 at scale 0.05 takes ~10s of simulation")
	}
	e, ok := ByID("table1")
	if !ok {
		t.Fatal("table1 not registered")
	}
	rn := runner.New(runner.Options{})
	var buf bytes.Buffer
	for _, r := range e.Run(Options{Scale: 0.05, Seed: 1}, rn) {
		r.Print(&buf)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "table1_scale005.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("table1 output drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
