package mem

import "math/bits"

// Bitmap is a dense bit set used for page-residency tracking, block
// allocation maps, and card tables. BC's aggressive empty-page discard
// (§3.4.3 of the paper) operates on whole 64-bit words of the residency
// bitmap, which is why word-granularity operations are exposed.
type Bitmap struct {
	w []uint64
	n int // number of valid bits
}

// NewBitmap creates a bitmap of n bits, all clear.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{w: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the bitmap.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int) { b.w[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b *Bitmap) Clear(i int) { b.w[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is set.
func (b *Bitmap) Test(i int) bool { return b.w[i>>6]&(1<<(uint(i)&63)) != 0 }

// SetAll sets every bit.
func (b *Bitmap) SetAll() {
	for i := range b.w {
		b.w[i] = ^uint64(0)
	}
	b.trim()
}

// ClearAll clears every bit.
func (b *Bitmap) ClearAll() {
	for i := range b.w {
		b.w[i] = 0
	}
}

// trim clears the unused tail bits of the last word so popcounts stay honest.
func (b *Bitmap) trim() {
	if rem := b.n & 63; rem != 0 && len(b.w) > 0 {
		b.w[len(b.w)-1] &= (1 << uint(rem)) - 1
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.w {
		c += bits.OnesCount64(w)
	}
	return c
}

// NextSet returns the index of the first set bit >= i, or -1.
func (b *Bitmap) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	for i < b.n {
		wi := i >> 6
		w := b.w[wi] >> (uint(i) & 63)
		if w != 0 {
			r := i + bits.TrailingZeros64(w)
			if r >= b.n {
				return -1
			}
			return r
		}
		i = (wi + 1) << 6
	}
	return -1
}

// NextClear returns the index of the first clear bit >= i, or -1.
func (b *Bitmap) NextClear(i int) int {
	if i < 0 {
		i = 0
	}
	for i < b.n {
		wi := i >> 6
		w := (^b.w[wi]) >> (uint(i) & 63)
		if w != 0 {
			r := i + bits.TrailingZeros64(w)
			if r >= b.n {
				return -1
			}
			return r
		}
		i = (wi + 1) << 6
	}
	return -1
}

// WordIndex returns the index of the 64-bit word holding bit i.
func (b *Bitmap) WordIndex(i int) int { return i >> 6 }

// ForEachSetInWord calls fn with the index of every set bit sharing bit
// i's 64-bit word, in ascending order — SetBitsInWord without the
// returned slice, for hot paths that must not allocate.
func (b *Bitmap) ForEachSetInWord(i int, fn func(idx int)) {
	wi := i >> 6
	w := b.w[wi]
	base := wi << 6
	for w != 0 {
		t := bits.TrailingZeros64(w)
		if idx := base + t; idx < b.n {
			fn(idx)
		}
		w &^= 1 << uint(t)
	}
}

// SetBitsInWord returns the indices of all set bits that share bit i's
// 64-bit word. This is the unit of BC's aggressive discard: when one
// discardable page is found, every empty page recorded in the same word
// of the residency bitmap is returned to the VM with it.
func (b *Bitmap) SetBitsInWord(i int) []int {
	wi := i >> 6
	w := b.w[wi]
	base := wi << 6
	var out []int
	for w != 0 {
		t := bits.TrailingZeros64(w)
		idx := base + t
		if idx < b.n {
			out = append(out, idx)
		}
		w &^= 1 << uint(t)
	}
	return out
}
