package mem

import (
	"sync"
	"sync/atomic"
)

// AtomicView is a raw, clock-free window onto a Space for the parallel
// mark engine (internal/gc). Workers trace the heap through it with
// plain atomic loads and compare-and-swaps: no touch runs, so the
// simulated clock, fault counters, and eviction machinery stay
// untouched while goroutines race. The engine records every logical
// word access it performs through the view and replays the aggregate
// against the Space afterwards in canonical page order, which is what
// keeps the simulation deterministic for any worker count.
//
// Raw access is sound because eviction preserves a page's backing words
// (swap is content-preserving; only Discard frees a body, and discards
// target empty pages), and because the mutator is stopped: during a
// parallel phase the only heap writes are the engine's own mark-bit
// CASes. Captured body pointers stay valid because arena slabs never
// move.
//
// A view is valid for one stop-the-world phase; request a fresh one per
// phase with Space.View. The Space keeps the view cached and tracks which
// pages' bodies changed (materialization, ZeroPageRaw recycling) between
// requests, so re-validating a view costs O(changed pages), not O(space):
// View applies the pending deltas instead of rebuilding the whole table.
type AtomicView struct {
	space *Space
	mu    sync.Mutex // serializes lazy page materialization
	pages []atomic.Pointer[[WordsPage]uint64]
}

// View captures the space's current backing bodies for raw atomic access.
func (s *Space) View() *AtomicView {
	if v := s.viewCache; v != nil {
		for _, p := range s.viewDirty {
			v.pages[p].Store(s.bodies[p])
		}
		s.viewDirty = s.viewDirty[:0]
		return v
	}
	v := &AtomicView{
		space: s,
		pages: make([]atomic.Pointer[[WordsPage]uint64], len(s.bodies)),
	}
	for i, arr := range s.bodies {
		if arr != nil {
			v.pages[i].Store(arr)
		}
	}
	s.viewCache = v
	return v
}

// Load atomically reads the word at a without touching its page.
func (v *AtomicView) Load(a Addr) uint64 {
	v.space.check(a)
	arr := v.pages[a.Page()].Load()
	if arr == nil {
		return 0
	}
	return atomic.LoadUint64(&arr[(a%PageSize)/WordSize])
}

// CompareAndSwap atomically replaces the word at a if it still holds
// old, reporting whether the swap happened. Swapping a nonzero value
// into a never-written page materializes the page's backing store, the
// same as Space.WriteWord would.
func (v *AtomicView) CompareAndSwap(a Addr, old, new uint64) bool {
	v.space.check(a)
	arr := v.pages[a.Page()].Load()
	if arr == nil {
		if old != 0 {
			return false
		}
		arr = v.materialize(a.Page())
	}
	return atomic.CompareAndSwapUint64(&arr[(a%PageSize)/WordSize], old, new)
}

// materialize installs zeroed backing for page p in both the view and
// the underlying space. Publication through the atomic pointer (and the
// phase-end join) is what makes the Space-side arena mutation safe: no
// other goroutine reads the Space's page table until the parallel phase
// is over.
func (v *AtomicView) materialize(p PageID) *[WordsPage]uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if arr := v.pages[p].Load(); arr != nil {
		return arr
	}
	arr := v.space.materialize(p)
	v.pages[p].Store(arr)
	return arr
}
