package mem

import (
	"sync"
	"sync/atomic"
)

// AtomicView is a raw, clock-free window onto a Space for the parallel
// mark engine (internal/gc). Workers trace the heap through it with
// plain atomic loads and compare-and-swaps: no Toucher runs, so the
// simulated clock, fault counters, and eviction machinery stay
// untouched while goroutines race. The engine records every logical
// word access it performs through the view and replays the aggregate
// against the Space afterwards in canonical page order, which is what
// keeps the simulation deterministic for any worker count.
//
// Raw access is sound because eviction preserves a page's backing words
// (swap is content-preserving; only Discard zeroes a page, and discards
// target empty pages), and because the mutator is stopped: during a
// parallel phase the only heap writes are the engine's own mark-bit
// CASes.
//
// A view is valid for one stop-the-world phase. Build a fresh one per
// phase: the Space's backing pages can be discarded (ZeroPageRaw)
// between phases, which a cached view would not observe.
type AtomicView struct {
	space *Space
	mu    sync.Mutex // serializes lazy page materialization
	pages []atomic.Pointer[[WordsPage]uint64]
}

// View captures the space's current backing pages for raw atomic access.
func (s *Space) View() *AtomicView {
	v := &AtomicView{
		space: s,
		pages: make([]atomic.Pointer[[WordsPage]uint64], len(s.pages)),
	}
	for i, pg := range s.pages {
		if pg != nil {
			v.pages[i].Store((*[WordsPage]uint64)(pg))
		}
	}
	return v
}

// Load atomically reads the word at a without touching its page.
func (v *AtomicView) Load(a Addr) uint64 {
	v.space.check(a)
	arr := v.pages[a.Page()].Load()
	if arr == nil {
		return 0
	}
	return atomic.LoadUint64(&arr[(a%PageSize)/WordSize])
}

// CompareAndSwap atomically replaces the word at a if it still holds
// old, reporting whether the swap happened. Swapping a nonzero value
// into a never-written page materializes the page's backing store, the
// same as Space.WriteWord would.
func (v *AtomicView) CompareAndSwap(a Addr, old, new uint64) bool {
	v.space.check(a)
	arr := v.pages[a.Page()].Load()
	if arr == nil {
		if old != 0 {
			return false
		}
		arr = v.materialize(a.Page())
	}
	return atomic.CompareAndSwapUint64(&arr[(a%PageSize)/WordSize], old, new)
}

// materialize installs zeroed backing for page p in both the view and
// the underlying space. Publication through the atomic pointer (and the
// phase-end join) is what makes the Space-side write safe: no other
// goroutine reads Space.pages until the parallel phase is over.
func (v *AtomicView) materialize(p PageID) *[WordsPage]uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if arr := v.pages[p].Load(); arr != nil {
		return arr
	}
	pg := make([]uint64, WordsPage)
	v.space.pages[p] = pg
	arr := (*[WordsPage]uint64)(pg)
	v.pages[p].Store(arr)
	return arr
}
