package mem

import "testing"

// FuzzArenaRecycle drives a Space's page bodies through arbitrary
// materialize / write / ZeroPageRaw sequences and checks the arena
// invariants the hot path depends on: recycled bodies come back zeroed,
// the handle table and body table stay in sync, and data written to one
// page never leaks into another page's body through free-list reuse.
func FuzzArenaRecycle(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x81, 0x02})
	f.Add([]byte{0x05, 0x05, 0x85, 0x85, 0x05})
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f, 0x01, 0x81})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const npages = 32
		s := NewSpace(npages*PageSize, nil)
		live := map[PageID]uint64{} // expected first-word value per materialized page
		for i, op := range ops {
			p := PageID(1 + int(op&0x7f)%(npages-1))
			a := Addr(p) * PageSize
			if op&0x80 == 0 {
				// Write a distinct word, materializing the page.
				v := uint64(i)<<8 | uint64(p)
				s.WriteWord(a, v)
				live[p] = v
			} else {
				// Recycle the page's body through the free list.
				s.ZeroPageRaw(p)
				delete(live, p)
			}
		}
		for p := PageID(1); p < npages; p++ {
			got := s.PeekWord(Addr(p) * PageSize)
			want := live[p] // zero for unmaterialized/recycled pages
			if got != want {
				t.Fatalf("page %d first word = %#x, want %#x", p, got, want)
			}
		}
		// Every recycled handle must be reusable: materialize all pages
		// and verify they come back zeroed (stale bodies are cleared).
		for p := PageID(1); p < npages; p++ {
			if _, ok := live[p]; ok {
				continue
			}
			s.materialize(p)
			if got := s.PeekWord(Addr(p) * PageSize); got != 0 {
				t.Fatalf("recycled page %d materialized dirty: first word %#x", p, got)
			}
		}
	})
}
