// Package mem provides the word-addressed simulated address space that the
// entire runtime is built on: byte addresses, page and superpage geometry,
// and the backing store for a process's heap words.
//
// Every word read or written through a Space is reported to a Toucher
// (in practice the virtual memory manager), which is how page residency,
// reference bits, and page faults are modeled. Code that bypasses Touch
// does not exist: the collectors can only reach heap memory through Space,
// so "who touches which page" is an emergent property of the algorithms.
package mem

import "fmt"

// Fundamental geometry. These mirror the paper's platform: 4 KB pages
// grouped into page-aligned superpages of four contiguous pages (16 KB).
const (
	WordSize   = 8                   // bytes per word
	PageSize   = 4096                // bytes per page
	PageShift  = 12                  // log2(PageSize)
	WordsPage  = PageSize / WordSize // words per page
	SuperPages = 4                   // pages per superpage
	SuperSize  = PageSize * SuperPages
	SuperShift = 14 // log2(SuperSize)
)

// Addr is a byte address in a process's simulated virtual address space.
// The zero Addr is the null reference; the first page of every space is
// reserved and never allocated so that 0 is never a valid object.
type Addr uint64

// Nil is the null reference.
const Nil Addr = 0

// PageID identifies a page within one address space (Addr / PageSize).
type PageID uint64

// Page returns the page containing a.
func (a Addr) Page() PageID { return PageID(a >> PageShift) }

// PageBase returns the first address of the page containing a.
func (a Addr) PageBase() Addr { return a &^ (PageSize - 1) }

// SuperBase returns the first address of the superpage containing a.
// This is the constant-time bit-masking access to superpage headers that
// the paper relies on (§3.4).
func (a Addr) SuperBase() Addr { return a &^ (SuperSize - 1) }

// PageAddr returns the first address of page p.
func PageAddr(p PageID) Addr { return Addr(p) << PageShift }

// WordIndex returns the word offset of a within its space.
func (a Addr) WordIndex() uint64 { return uint64(a) / WordSize }

// Aligned reports whether a is word-aligned.
func (a Addr) Aligned() bool { return a%WordSize == 0 }

// PagesIn returns the IDs of all pages overlapping [a, a+size).
func PagesIn(a Addr, size uint64) (first, last PageID) {
	if size == 0 {
		return a.Page(), a.Page()
	}
	return a.Page(), (a + Addr(size) - 1).Page()
}

// RoundUpPage rounds n up to a multiple of PageSize.
func RoundUpPage(n uint64) uint64 { return (n + PageSize - 1) &^ (PageSize - 1) }

// RoundUpWord rounds n up to a multiple of WordSize.
func RoundUpWord(n uint64) uint64 { return (n + WordSize - 1) &^ (WordSize - 1) }

// A Toucher observes every access to a space, one call per word access.
// The virtual memory manager implements this to maintain reference bits
// and to service page faults.
type Toucher interface {
	Touch(p PageID, write bool)
}

// Space is the backing store for one process's virtual address space.
// Backing pages are allocated lazily on first write and read as zero
// before that, so host memory tracks the pages actually used rather than
// the (large) virtual region.
type Space struct {
	pages [][]uint64 // nil entries read as zero
	size  Addr       // bytes
	t     Toucher
}

// NewSpace creates a space of the given size in bytes (rounded up to a
// whole number of pages). The Toucher may be nil (used in unit tests);
// attach the VMM later with SetToucher.
func NewSpace(size uint64, t Toucher) *Space {
	size = RoundUpPage(size)
	return &Space{
		pages: make([][]uint64, size/PageSize),
		size:  Addr(size),
		t:     t,
	}
}

// SetToucher attaches the access observer (the VMM).
func (s *Space) SetToucher(t Toucher) { s.t = t }

// Size returns the size of the space in bytes.
func (s *Space) Size() Addr { return s.size }

// Pages returns the number of pages in the space.
func (s *Space) Pages() int { return int(s.size >> PageShift) }

func (s *Space) check(a Addr) {
	if a >= s.size || !a.Aligned() {
		panic(fmt.Sprintf("mem: bad address %#x (space size %#x)", a, s.size))
	}
	if a < PageSize {
		panic(fmt.Sprintf("mem: access to reserved null page at %#x", a))
	}
}

// ReadWord reads the word at a, touching its page.
func (s *Space) ReadWord(a Addr) uint64 {
	s.check(a)
	if s.t != nil {
		s.t.Touch(a.Page(), false)
	}
	pg := s.pages[a.Page()]
	if pg == nil {
		return 0
	}
	return pg[(a%PageSize)/WordSize]
}

// WriteWord writes the word at a, touching its page for writing.
func (s *Space) WriteWord(a Addr, v uint64) {
	s.check(a)
	if s.t != nil {
		s.t.Touch(a.Page(), true)
	}
	pg := s.pages[a.Page()]
	if pg == nil {
		if v == 0 {
			return
		}
		pg = make([]uint64, WordsPage)
		s.pages[a.Page()] = pg
	}
	pg[(a%PageSize)/WordSize] = v
}

// ReadAddr reads the word at a as an address.
func (s *Space) ReadAddr(a Addr) Addr { return Addr(s.ReadWord(a)) }

// WriteAddr writes an address-valued word.
func (s *Space) WriteAddr(a Addr, v Addr) { s.WriteWord(a, uint64(v)) }

// ZeroRange zeroes [a, a+n) (n bytes, word-aligned), touching each page
// once per word written. Used by allocators when recycling memory.
func (s *Space) ZeroRange(a Addr, n uint64) {
	n = RoundUpWord(n)
	for off := Addr(0); off < Addr(n); off += WordSize {
		s.WriteWord(a+off, 0)
	}
}

// PeekWord reads a word without touching the page. It exists only for
// tests and debug dumps; runtime code must use ReadWord.
func (s *Space) PeekWord(a Addr) uint64 {
	s.check(a)
	pg := s.pages[a.Page()]
	if pg == nil {
		return 0
	}
	return pg[(a%PageSize)/WordSize]
}

// ZeroPageRaw zeroes a page's backing store without touching it. The VMM
// uses this to model madvise(MADV_DONTNEED): a discarded page reads as
// zero-filled when next faulted in.
func (s *Space) ZeroPageRaw(p PageID) {
	s.pages[p] = nil
}
