// Package mem provides the word-addressed simulated address space that the
// entire runtime is built on: byte addresses, page and superpage geometry,
// and the backing store for a process's heap words.
//
// Every word read or written through a Space is reported to the virtual
// memory manager, which is how page residency, reference bits, and page
// faults are modeled. Code that bypasses the touch does not exist: the
// collectors can only reach heap memory through Space, so "who touches
// which page" is an emergent property of the algorithms.
//
// Backing storage is an index-addressed arena (DESIGN.md §15): page
// bodies live in large fixed slabs that never move, the per-page table
// maps a PageID to a uint32 body handle (with -1 meaning "never written:
// reads as zero"), and discarded bodies recycle through a free list. The
// VMM's hot residency bits live in a side byte array (PageFlags) so the
// common touch — a resident, unprotected page — is an inline flag check
// with no interface dispatch and no Go allocation.
package mem

import (
	"fmt"
	"sync"
	"time"
)

// Fundamental geometry. These mirror the paper's platform: 4 KB pages
// grouped into page-aligned superpages of four contiguous pages (16 KB).
const (
	WordSize   = 8                   // bytes per word
	PageSize   = 4096                // bytes per page
	PageShift  = 12                  // log2(PageSize)
	WordsPage  = PageSize / WordSize // words per page
	SuperPages = 4                   // pages per superpage
	SuperSize  = PageSize * SuperPages
	SuperShift = 14 // log2(SuperSize)
)

// Addr is a byte address in a process's simulated virtual address space.
// The zero Addr is the null reference; the first page of every space is
// reserved and never allocated so that 0 is never a valid object.
type Addr uint64

// Nil is the null reference.
const Nil Addr = 0

// PageID identifies a page within one address space (Addr / PageSize).
type PageID uint64

// Page returns the page containing a.
func (a Addr) Page() PageID { return PageID(a >> PageShift) }

// PageBase returns the first address of the page containing a.
func (a Addr) PageBase() Addr { return a &^ (PageSize - 1) }

// SuperBase returns the first address of the superpage containing a.
// This is the constant-time bit-masking access to superpage headers that
// the paper relies on (§3.4).
func (a Addr) SuperBase() Addr { return a &^ (SuperSize - 1) }

// PageAddr returns the first address of page p.
func PageAddr(p PageID) Addr { return Addr(p) << PageShift }

// WordIndex returns the word offset of a within its space.
func (a Addr) WordIndex() uint64 { return uint64(a) / WordSize }

// Aligned reports whether a is word-aligned.
func (a Addr) Aligned() bool { return a%WordSize == 0 }

// PagesIn returns the IDs of all pages overlapping [a, a+size).
func PagesIn(a Addr, size uint64) (first, last PageID) {
	if size == 0 {
		return a.Page(), a.Page()
	}
	return a.Page(), (a + Addr(size) - 1).Page()
}

// RoundUpPage rounds n up to a multiple of PageSize.
func RoundUpPage(n uint64) uint64 { return (n + PageSize - 1) &^ (PageSize - 1) }

// RoundUpWord rounds n up to a multiple of WordSize.
func RoundUpWord(n uint64) uint64 { return (n + WordSize - 1) &^ (WordSize - 1) }

// A Toucher observes every access to a space, one call per word access.
// The virtual memory manager implements this to maintain reference bits
// and to service page faults. It is the general-purpose observation hook
// (unit tests install counting touchers); the VMM proper wires the
// cheaper split path via SetFastTouch instead.
type Toucher interface {
	Touch(p PageID, write bool)
}

// A FaultToucher services the slow half of a fast-touch access: the page
// was not simply resident and unprotected (fresh, evicted, or protected),
// so faults, notifications, and queue maintenance are needed. It is
// called after the word's clock cost has been charged, exactly as the
// VMM's full Touch observes the world after its own clock advance.
type FaultToucher interface {
	FaultTouch(p PageID, write bool)
}

// Page flag bits for the Space's side array (PageFlags). The flags are
// owned by the machine's VMM — the Space only reads them on the touch
// fast path and sets the referenced bit (clearing a pending voluntary
// surrender) on a resident, unprotected access, mirroring what the VMM's
// Touch would do. A page with neither state bit set is fresh (never
// touched, or discarded).
const (
	PFResident    uint8 = 1 << 0 // occupies a physical frame
	PFEvicted     uint8 = 1 << 1 // on the swap device
	PFProtected   uint8 = 1 << 2 // mprotect(PROT_NONE)
	PFReferenced  uint8 = 1 << 3 // clock-algorithm reference bit
	PFSurrendered uint8 = 1 << 4 // vm_relinquish'd; evict without notice
)

// pfFastMask selects the bits that must equal PFResident for the inline
// fast path: resident, not evicted, not protected.
const pfFastMask = PFResident | PFEvicted | PFProtected

// Arena geometry: page bodies are carved from slabs of slabPages bodies
// (256 KB per slab). Slabs are allocated once and never move, so a body
// pointer captured by an AtomicView stays valid for its whole phase.
const (
	slabPages = 64
	slabShift = 6  // log2(slabPages)
	slabMask  = 63 // slabPages - 1
)

type slab [slabPages * WordsPage]uint64

// arena hands out page bodies by dense uint32 handle with free-list
// recycling. Handle b lives at words [b&slabMask * WordsPage ...] of
// slab b>>slabShift.
type arena struct {
	slabs []*slab
	free  []int32 // recycled handles; bodies are zeroed on reuse
	next  int32   // first never-issued handle
}

// slabPool recycles slabs across Spaces. A sweep churns through one
// Space per run, and before pooling the discarded slabs dominated host
// allocation (and with it host GC frequency). Pooled slabs hold the
// previous owner's words, so newSlab zeroes them to preserve the
// fresh-handle-reads-zero invariant.
var slabPool sync.Pool

func newSlab() *slab {
	if v := slabPool.Get(); v != nil {
		s := v.(*slab)
		*s = slab{}
		return s
	}
	return new(slab)
}

// alloc returns a body handle and whether it was recycled (and therefore
// holds stale words the caller must zero).
func (ar *arena) alloc() (b int32, recycled bool) {
	if n := len(ar.free); n > 0 {
		b = ar.free[n-1]
		ar.free = ar.free[:n-1]
		return b, true
	}
	b = ar.next
	ar.next++
	if int(b)>>slabShift >= len(ar.slabs) {
		ar.slabs = append(ar.slabs, newSlab())
	}
	return b, false
}

// release hands every slab back to the process-wide pool.
func (ar *arena) release() {
	for i, s := range ar.slabs {
		slabPool.Put(s)
		ar.slabs[i] = nil
	}
	ar.slabs = ar.slabs[:0]
	ar.free = ar.free[:0]
	ar.next = 0
}

// Space is the backing store for one process's virtual address space.
// Backing bodies are allocated lazily on first write and read as zero
// before that, so host memory tracks the pages actually used rather than
// the (large) virtual region.
type Space struct {
	// bodies is the hot page table: a direct pointer to each page's word
	// array (nil = unmaterialized). table holds the arena handle behind
	// each body for free-list recycling.
	bodies []*[WordsPage]uint64
	table  []int32 // page -> arena body handle; -1 = unmaterialized
	size   Addr    // bytes
	t      Toucher

	// Fast-touch wiring (SetFastTouch). With a clock attached, word
	// accesses charge the clock inline and only call into ft when the
	// page is not resident-and-unprotected; without one, every access
	// goes through the legacy Toucher interface.
	clock    *Clock
	wordCost time.Duration
	ft       FaultToucher
	flags    []uint8

	ar arena

	// viewCache is the lazily built AtomicView (see view.go); viewDirty
	// lists pages whose body pointer changed since the view last synced.
	viewCache *AtomicView
	viewDirty []PageID
}

// NewSpace creates a space of the given size in bytes (rounded up to a
// whole number of pages). The Toucher may be nil (used in unit tests);
// attach the VMM later with SetToucher or SetFastTouch.
func NewSpace(size uint64, t Toucher) *Space {
	size = RoundUpPage(size)
	npg := size / PageSize
	s := &Space{
		bodies: make([]*[WordsPage]uint64, npg),
		table:  make([]int32, npg),
		flags:  make([]uint8, npg),
		size:   Addr(size),
		t:      t,
	}
	for i := range s.table {
		s.table[i] = -1
	}
	// The reserved null page can never satisfy the fast-path flag test
	// (both state bits set is otherwise impossible), so a page-0 access
	// always reaches the slow path's full address check.
	if npg > 0 {
		s.flags[0] = PFEvicted | PFProtected
	}
	return s
}

// Release returns the space's slabs to the process-wide pool and drops
// every body pointer. Only call it when the space — and any AtomicView
// built from it — is dead: recycled slabs are handed to future Spaces,
// which zero and overwrite them.
func (s *Space) Release() {
	for i := range s.bodies {
		s.bodies[i] = nil
		s.table[i] = -1
	}
	s.viewCache = nil
	s.viewDirty = nil
	s.ar.release()
}

// SetToucher attaches the access observer (the VMM).
func (s *Space) SetToucher(t Toucher) { s.t = t }

// SetFastTouch wires the inline touch fast path: every word access
// advances clock by wordCost, then either sets the referenced bit in the
// page-flag array (resident, unprotected page) or falls through to
// ft.FaultTouch. The flags array is owned by ft's VMM; see PageFlags.
func (s *Space) SetFastTouch(clock *Clock, wordCost time.Duration, ft FaultToucher) {
	s.clock = clock
	s.wordCost = wordCost
	s.ft = ft
}

// PageFlags exposes the per-page flag side array for the VMM to maintain.
// Entry p holds the PF* bits of page p.
func (s *Space) PageFlags() []uint8 { return s.flags }

// Size returns the size of the space in bytes.
func (s *Space) Size() Addr { return s.size }

// Pages returns the number of pages in the space.
func (s *Space) Pages() int { return int(s.size >> PageShift) }

// check validates an address; out-of-line badAccess keeps the hot
// callers free of panic formatting.
func (s *Space) check(a Addr) {
	if a >= s.size || a < PageSize || a&(WordSize-1) != 0 {
		s.badAccess(a)
	}
}

//go:noinline
func (s *Space) badAccess(a Addr) {
	if a >= s.size || !a.Aligned() {
		panic(fmt.Sprintf("mem: bad address %#x (space size %#x)", a, s.size))
	}
	panic(fmt.Sprintf("mem: access to reserved null page at %#x", a))
}

// body returns the word array of arena handle b.
func (s *Space) body(b int32) *[WordsPage]uint64 {
	return (*[WordsPage]uint64)(s.ar.slabs[b>>slabShift][(uint64(b)&slabMask)*WordsPage:])
}

// materialize installs backing for page p, recycling a free body when
// one is available (zeroing it: a discarded page reads as zero-filled).
func (s *Space) materialize(p PageID) *[WordsPage]uint64 {
	b, recycled := s.ar.alloc()
	s.table[p] = b
	body := s.body(b)
	if recycled {
		clear(body[:])
	}
	s.bodies[p] = body
	if s.viewCache != nil {
		s.viewDirty = append(s.viewDirty, p)
	}
	return body
}

// touch charges one word access to page p: clock cost first (due events
// fire now, and may change p's state — eviction under pressure), then
// the residency check against the post-event flags, exactly as the VMM's
// Touch orders its own clock advance and state switch.
func (s *Space) touch(p PageID, write bool) {
	if c := s.clock; c != nil {
		c.now += s.wordCost
		if c.now >= c.nextDue {
			c.fire()
		}
		if f := s.flags[p]; f&pfFastMask == PFResident {
			s.flags[p] = (f | PFReferenced) &^ PFSurrendered
		} else {
			s.ft.FaultTouch(p, write)
		}
	} else if s.t != nil {
		s.t.Touch(p, write)
	}
}

// ReadWord reads the word at a, touching its page. The body is written
// for the inliner: one cold call covers every non-trivial case (no clock
// wired, an event due within this access, page not resident-unprotected,
// bad address), so the resident-page common case runs entirely inline in
// the caller — a clock add, a flag update, and the word load.
func (s *Space) ReadWord(a Addr) uint64 {
	c := s.clock
	p := uint64(a) >> PageShift
	if c == nil || uint64(a)&(WordSize-1) != 0 || c.now+s.wordCost >= c.nextDue || s.flags[p]&pfFastMask != PFResident {
		return s.readSlow(a)
	}
	c.now += s.wordCost
	s.flags[p] = (s.flags[p] | PFReferenced) &^ PFSurrendered
	if arr := s.bodies[p]; arr != nil {
		return arr[(uint64(a)>>3)&(WordsPage-1)]
	}
	return 0
}

//go:noinline
func (s *Space) readSlow(a Addr) uint64 {
	s.check(a)
	p := a.Page()
	s.touch(p, false)
	if arr := s.bodies[p]; arr != nil {
		return arr[(uint64(a)>>3)&(WordsPage-1)]
	}
	return 0
}

// ReadWordPair performs two consecutive reads of the word at a — the
// header-decode pattern (type ID then array length) — charging both
// accesses. When no event can fire inside the two-access window the
// values are necessarily identical and one load suffices; otherwise the
// two reads run in full, preserving any state change between them.
func (s *Space) ReadWordPair(a Addr) (uint64, uint64) {
	c := s.clock
	p := uint64(a) >> PageShift
	if c == nil || uint64(a)&(WordSize-1) != 0 || c.now+2*s.wordCost >= c.nextDue || s.flags[p]&pfFastMask != PFResident {
		return s.ReadWord(a), s.ReadWord(a)
	}
	c.now += 2 * s.wordCost
	s.flags[p] = (s.flags[p] | PFReferenced) &^ PFSurrendered
	if arr := s.bodies[p]; arr != nil {
		v := arr[(uint64(a)>>3)&(WordsPage-1)]
		return v, v
	}
	return 0, 0
}

// WriteWord writes the word at a, touching its page for writing.
func (s *Space) WriteWord(a Addr, v uint64) {
	c := s.clock
	p := uint64(a) >> PageShift
	if c == nil || uint64(a)&(WordSize-1) != 0 || c.now+s.wordCost >= c.nextDue || s.flags[p]&pfFastMask != PFResident {
		s.writeSlow(a, v)
		return
	}
	c.now += s.wordCost
	s.flags[p] = (s.flags[p] | PFReferenced) &^ PFSurrendered
	arr := s.bodies[p]
	if arr == nil {
		if v == 0 {
			return // never-written pages read as zero; stay lazy
		}
		arr = s.materialize(PageID(p))
	}
	arr[(uint64(a)>>3)&(WordsPage-1)] = v
}

//go:noinline
func (s *Space) writeSlow(a Addr, v uint64) {
	s.check(a)
	p := a.Page()
	s.touch(p, true)
	arr := s.bodies[p]
	if arr == nil {
		if v == 0 {
			return
		}
		arr = s.materialize(p)
	}
	arr[(uint64(a)>>3)&(WordsPage-1)] = v
}

// TryBeginRMW starts a batched read-check-write sequence on the word at
// a — the mark-bit pattern (read status, maybe read+write it back). When
// ok, one read has been charged and v holds the word; the caller may
// finish with CommitRMW (charging the second read and the write) or stop
// after the read. ok is false when the full three-access window is not
// guaranteed event-free on the fast path; nothing is charged then and the
// caller must issue the exact per-access ReadWord/WriteWord sequence,
// which preserves any state change an event could cause mid-sequence.
func (s *Space) TryBeginRMW(a Addr) (v uint64, ok bool) {
	c := s.clock
	p := uint64(a) >> PageShift
	if c == nil || uint64(a)&(WordSize-1) != 0 || c.now+3*s.wordCost >= c.nextDue || s.flags[p]&pfFastMask != PFResident {
		return 0, false
	}
	c.now += s.wordCost
	s.flags[p] = (s.flags[p] | PFReferenced) &^ PFSurrendered
	if arr := s.bodies[p]; arr != nil {
		return arr[(uint64(a)>>3)&(WordsPage-1)], true
	}
	return 0, true
}

// CommitRMW completes an RMW begun with TryBeginRMW: it charges one more
// read and one write of a and stores v. Call at most once, only after
// TryBeginRMW returned ok, with the same a.
func (s *Space) CommitRMW(a Addr, v uint64) {
	p := uint64(a) >> PageShift
	s.clock.now += 2 * s.wordCost
	arr := s.bodies[p]
	if arr == nil {
		if v == 0 {
			return
		}
		arr = s.materialize(PageID(p))
	}
	arr[(uint64(a)>>3)&(WordsPage-1)] = v
}

// ReadAddr reads the word at a as an address.
func (s *Space) ReadAddr(a Addr) Addr { return Addr(s.ReadWord(a)) }

// WriteAddr writes an address-valued word.
func (s *Space) WriteAddr(a Addr, v Addr) { s.WriteWord(a, uint64(v)) }

// rangeFast reports whether n consecutive word accesses to page p can be
// batched: the fast-touch path is wired, the page is resident and
// unprotected, and no clock event can fire anywhere in the window — so
// the per-word loop could not have observed (or caused) any state change
// the batch would miss.
func (s *Space) rangeFast(p PageID, n uint64) bool {
	c := s.clock
	return c != nil && c.eventFreeUntil(time.Duration(n)*s.wordCost) &&
		s.flags[p]&pfFastMask == PFResident
}

// ZeroRange zeroes [a, a+n) (n bytes, word-aligned), touching each page
// once per word written. Used by allocators when recycling memory.
// Same-page runs with no clock event due in the window collapse into one
// batched flag update and clock advance.
func (s *Space) ZeroRange(a Addr, n uint64) {
	n = RoundUpWord(n)
	end := a + Addr(n)
	for a < end {
		chunk := a.PageBase() + PageSize
		if chunk > end {
			chunk = end
		}
		words := uint64(chunk-a) / WordSize
		if !s.rangeFast(a.Page(), words) {
			for ; a < chunk; a += WordSize {
				s.WriteWord(a, 0)
			}
			continue
		}
		s.check(a)
		p := a.Page()
		s.clock.now += time.Duration(words) * s.wordCost
		s.flags[p] = (s.flags[p] | PFReferenced) &^ PFSurrendered
		if arr := s.bodies[p]; arr != nil {
			lo := (a & (PageSize - 1)) >> 3
			clear(arr[lo : lo+Addr(words)])
		}
		a = chunk
	}
}

// CopyWords copies n bytes (word-aligned) from src to dst through the
// space, charging each word's read and write exactly as the equivalent
// ReadWord/WriteWord loop would. Runs where both pages are fast and no
// clock event is due within the whole 2n-access window are batched; any
// other case — including src and dst sharing a page, where the loop's
// interleaved word order is observable — falls back to the per-word loop.
func (s *Space) CopyWords(dst, src Addr, n uint64) {
	n = RoundUpWord(n)
	for n > 0 {
		chunk := n
		if r := PageSize - uint64(src&(PageSize-1)); r < chunk {
			chunk = r
		}
		if r := PageSize - uint64(dst&(PageSize-1)); r < chunk {
			chunk = r
		}
		words := chunk / WordSize
		sp, dp := src.Page(), dst.Page()
		if sp == dp || !s.rangeFast(sp, 2*words) || s.flags[dp]&pfFastMask != PFResident {
			for end := src + Addr(chunk); src < end; src, dst = src+WordSize, dst+WordSize {
				s.WriteWord(dst, s.ReadWord(src))
			}
			n -= chunk
			continue
		}
		s.check(src)
		s.check(dst)
		s.clock.now += time.Duration(2*words) * s.wordCost
		s.flags[sp] = (s.flags[sp] | PFReferenced) &^ PFSurrendered
		s.flags[dp] = (s.flags[dp] | PFReferenced) &^ PFSurrendered
		s.copyBodies(dst, src, words)
		src += Addr(chunk)
		dst += Addr(chunk)
		n -= chunk
	}
}

// copyBodies moves words between in-page runs, preserving the lazy
// materialization a WriteWord loop would produce: an all-zero source run
// never materializes the destination.
func (s *Space) copyBodies(dst, src Addr, words uint64) {
	di := (dst & (PageSize - 1)) >> 3
	da := s.bodies[dst.Page()]
	sa := s.bodies[src.Page()]
	if sa == nil {
		if da != nil {
			clear(da[di : di+Addr(words)])
		}
		return
	}
	si := (src & (PageSize - 1)) >> 3
	sw := sa[si : si+Addr(words)]
	if da == nil {
		zero := true
		for _, w := range sw {
			if w != 0 {
				zero = false
				break
			}
		}
		if zero {
			return
		}
		copy(s.materialize(dst.Page())[di:di+Addr(words)], sw)
		return
	}
	copy(da[di:di+Addr(words)], sw)
}

// PeekWord reads a word without touching the page. It exists only for
// tests and debug dumps; runtime code must use ReadWord.
func (s *Space) PeekWord(a Addr) uint64 {
	s.check(a)
	if arr := s.bodies[a.Page()]; arr != nil {
		return arr[(a&(PageSize-1))>>3]
	}
	return 0
}

// ZeroPageRaw drops a page's backing body into the arena free list
// without touching it. The VMM uses this to model madvise(MADV_DONTNEED):
// a discarded page reads as zero-filled when next faulted in.
func (s *Space) ZeroPageRaw(p PageID) {
	if b := s.table[p]; b >= 0 {
		s.table[p] = -1
		s.bodies[p] = nil
		s.ar.free = append(s.ar.free, b)
		if s.viewCache != nil {
			s.viewDirty = append(s.viewDirty, p)
		}
	}
}
