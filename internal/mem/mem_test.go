package mem

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	if WordsPage != 512 {
		t.Fatalf("WordsPage = %d, want 512", WordsPage)
	}
	if SuperSize != 16384 {
		t.Fatalf("SuperSize = %d, want 16384", SuperSize)
	}
	a := Addr(0x12345678)
	if a.Page() != PageID(0x12345) {
		t.Errorf("Page() = %#x, want 0x12345", a.Page())
	}
	if a.PageBase() != 0x12345000 {
		t.Errorf("PageBase() = %#x", a.PageBase())
	}
	if a.SuperBase() != 0x12344000 {
		t.Errorf("SuperBase() = %#x", a.SuperBase())
	}
	if PageAddr(3) != 3*PageSize {
		t.Errorf("PageAddr(3) = %#x", PageAddr(3))
	}
}

func TestSuperBaseAligned(t *testing.T) {
	// Property: SuperBase is idempotent, superpage-aligned, and <= a.
	f := func(raw uint32) bool {
		a := Addr(raw)
		b := a.SuperBase()
		return b%SuperSize == 0 && b <= a && b.SuperBase() == b && a-b < SuperSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPagesIn(t *testing.T) {
	f, l := PagesIn(PageSize-8, 16)
	if f != 0 || l != 1 {
		t.Errorf("PagesIn straddle: got %d..%d, want 0..1", f, l)
	}
	f, l = PagesIn(2*PageSize, PageSize)
	if f != 2 || l != 2 {
		t.Errorf("PagesIn exact page: got %d..%d, want 2..2", f, l)
	}
	f, l = PagesIn(0, 0)
	if f != 0 || l != 0 {
		t.Errorf("PagesIn empty: got %d..%d", f, l)
	}
}

func TestRounding(t *testing.T) {
	cases := []struct{ in, page, word uint64 }{
		{0, 0, 0},
		{1, PageSize, WordSize},
		{PageSize, PageSize, PageSize},
		{PageSize + 1, 2 * PageSize, PageSize + WordSize},
		{15, PageSize, 16},
	}
	for _, c := range cases {
		if got := RoundUpPage(c.in); got != c.page {
			t.Errorf("RoundUpPage(%d) = %d, want %d", c.in, got, c.page)
		}
		if got := RoundUpWord(c.in); got != c.word {
			t.Errorf("RoundUpWord(%d) = %d, want %d", c.in, got, c.word)
		}
	}
}

type recordToucher struct {
	touches []PageID
	writes  []bool
}

func (r *recordToucher) Touch(p PageID, w bool) {
	r.touches = append(r.touches, p)
	r.writes = append(r.writes, w)
}

func TestSpaceReadWrite(t *testing.T) {
	rec := &recordToucher{}
	s := NewSpace(4*PageSize, rec)
	a := Addr(PageSize + 64)
	s.WriteWord(a, 0xdeadbeef)
	if got := s.ReadWord(a); got != 0xdeadbeef {
		t.Fatalf("ReadWord = %#x", got)
	}
	if len(rec.touches) != 2 || rec.touches[0] != 1 || rec.touches[1] != 1 {
		t.Fatalf("touches = %v", rec.touches)
	}
	if !rec.writes[0] || rec.writes[1] {
		t.Fatalf("writes = %v", rec.writes)
	}
}

func TestSpaceAddrHelpers(t *testing.T) {
	s := NewSpace(2*PageSize, nil)
	a := Addr(PageSize)
	s.WriteAddr(a, 0x2008)
	if got := s.ReadAddr(a); got != 0x2008 {
		t.Fatalf("ReadAddr = %#x", got)
	}
	if got := s.PeekWord(a); got != 0x2008 {
		t.Fatalf("PeekWord = %#x", got)
	}
}

func TestSpaceZeroRange(t *testing.T) {
	s := NewSpace(2*PageSize, nil)
	base := Addr(PageSize)
	for i := 0; i < 8; i++ {
		s.WriteWord(base+Addr(i*WordSize), 7)
	}
	s.ZeroRange(base+WordSize, 3*WordSize)
	want := []uint64{7, 0, 0, 0, 7, 7, 7, 7}
	for i, w := range want {
		if got := s.ReadWord(base + Addr(i*WordSize)); got != w {
			t.Errorf("word %d = %d, want %d", i, got, w)
		}
	}
}

func TestSpaceBadAccessPanics(t *testing.T) {
	s := NewSpace(PageSize*2, nil)
	for name, a := range map[string]Addr{
		"unaligned":  PageSize + 1,
		"null page":  8,
		"out of rng": PageSize * 2,
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic for addr %#x", name, a)
				}
			}()
			s.ReadWord(a)
		}()
	}
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Count() != 0 {
		t.Fatal("new bitmap not empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Test(0) || !b.Test(64) || !b.Test(129) || b.Test(1) {
		t.Fatal("Test after Set wrong")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 2 {
		t.Fatal("Clear failed")
	}
}

func TestBitmapNextSetClear(t *testing.T) {
	b := NewBitmap(200)
	b.Set(5)
	b.Set(130)
	if got := b.NextSet(0); got != 5 {
		t.Errorf("NextSet(0) = %d", got)
	}
	if got := b.NextSet(6); got != 130 {
		t.Errorf("NextSet(6) = %d", got)
	}
	if got := b.NextSet(131); got != -1 {
		t.Errorf("NextSet(131) = %d", got)
	}
	b.SetAll()
	if got := b.NextClear(0); got != -1 {
		t.Errorf("NextClear all-set = %d", got)
	}
	b.Clear(77)
	if got := b.NextClear(0); got != 77 {
		t.Errorf("NextClear = %d", got)
	}
}

func TestBitmapSetAllRespectsLen(t *testing.T) {
	b := NewBitmap(70)
	b.SetAll()
	if b.Count() != 70 {
		t.Fatalf("Count after SetAll = %d, want 70", b.Count())
	}
}

func TestBitmapSetBitsInWord(t *testing.T) {
	b := NewBitmap(256)
	b.Set(64)
	b.Set(65)
	b.Set(100)
	b.Set(127)
	b.Set(128) // different word
	got := b.SetBitsInWord(70)
	want := []int{64, 65, 100, 127}
	if len(got) != len(want) {
		t.Fatalf("SetBitsInWord = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SetBitsInWord = %v, want %v", got, want)
		}
	}
}

func TestBitmapProperties(t *testing.T) {
	// Property: after setting a random subset, Count matches and NextSet
	// enumerates exactly the set, in order.
	f := func(seed []uint8) bool {
		b := NewBitmap(300)
		set := map[int]bool{}
		for _, s := range seed {
			i := int(s) % 300
			b.Set(i)
			set[i] = true
		}
		if b.Count() != len(set) {
			return false
		}
		n := 0
		for i := b.NextSet(0); i != -1; i = b.NextSet(i + 1) {
			if !set[i] {
				return false
			}
			n++
		}
		return n == len(set)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
