package mem

import (
	"sort"
	"time"
)

// Clock is the simulated time source shared by every process, the VMM,
// and the workload driver. All costs in the simulation advance this clock;
// wall-clock time is never consulted, so runs are deterministic.
//
// The clock also carries a small event queue (used by the simulated
// signalmem process to pin memory at a fixed rate, §5.1 of the paper).
// Events fire during Advance when simulated time passes their deadline.
//
// The clock lives in package mem (rather than vmm, which re-exports it)
// so the Space's inline word-access fast path can advance it without an
// interface call. Advance itself is a single add-and-compare against the
// cached earliest deadline; the event-queue scan only runs when an event
// is actually due.
type Clock struct {
	now     time.Duration
	nextDue time.Duration // earliest event deadline; clockNever when empty
	events  []clockEvent
	firing  bool
}

type clockEvent struct {
	at time.Duration
	fn func()
}

// clockNever is the cached deadline when no events are scheduled.
const clockNever = time.Duration(1<<63 - 1)

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{nextDue: clockNever} }

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves simulated time forward by d and fires any events whose
// deadline has passed. Nested Advance calls (from inside an event handler
// or a page-fault path) accumulate time but defer event dispatch to the
// outermost call, so handlers never re-enter each other.
func (c *Clock) Advance(d time.Duration) {
	c.now += d
	if c.now >= c.nextDue {
		c.fire()
	}
}

// fire dispatches every due event in deadline order, then refreshes the
// cached earliest deadline. Nested calls return immediately: the
// outermost dispatch loop picks up anything a handler scheduled or any
// time it advanced.
func (c *Clock) fire() {
	if c.firing {
		return
	}
	c.firing = true
	defer func() {
		c.nextDue = clockNever
		for _, e := range c.events {
			if e.at < c.nextDue {
				c.nextDue = e.at
			}
		}
		c.firing = false
	}()
	for {
		i := c.dueIndex()
		if i < 0 {
			return
		}
		e := c.events[i]
		c.events = append(c.events[:i], c.events[i+1:]...)
		e.fn()
	}
}

// dueIndex returns the index of the earliest due event, or -1.
func (c *Clock) dueIndex() int {
	best := -1
	for i, e := range c.events {
		if e.at <= c.now && (best == -1 || e.at < c.events[best].at) {
			best = i
		}
	}
	return best
}

// Schedule registers fn to run once simulated time reaches at. Events
// scheduled in the past fire on the next Advance.
func (c *Clock) Schedule(at time.Duration, fn func()) {
	c.events = append(c.events, clockEvent{at, fn})
	if at < c.nextDue {
		c.nextDue = at
	}
}

// Pending returns the deadlines of all scheduled events, sorted; it is
// used by drivers that want to idle-skip to the next event.
func (c *Clock) Pending() []time.Duration {
	out := make([]time.Duration, len(c.events))
	for i, e := range c.events {
		out[i] = e.at
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// eventFreeUntil reports whether no event can fire strictly before the
// clock has advanced by d — the guard the Space's batched range
// operations use: within such a window a run of word accesses is
// indistinguishable, state-wise, from the per-word loop.
func (c *Clock) eventFreeUntil(d time.Duration) bool {
	return c.now+d < c.nextDue
}
