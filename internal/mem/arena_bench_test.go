package mem

import (
	"testing"
	"time"
)

// BenchmarkArenaAllocFree cycles page bodies through materialize and
// ZeroPageRaw — the allocate/discard churn of a collector that returns
// empty pages to the VM. Steady state must recycle handles from the
// free list without growing the slab arena.
func BenchmarkArenaAllocFree(b *testing.B) {
	const npages = 256
	s := NewSpace(npages*PageSize, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := PageID(1 + i%(npages-1))
		s.materialize(p)
		s.ZeroPageRaw(p)
	}
}

// BenchmarkBitmapWordScan measures the word-at-a-time scan BC's
// aggressive discard rides on (ForEachSetInWord).
func BenchmarkBitmapWordScan(b *testing.B) {
	bm := NewBitmap(1 << 16)
	for i := 0; i < bm.Len(); i += 3 {
		bm.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sum int
	for i := 0; i < b.N; i++ {
		bm.ForEachSetInWord((i*64)%bm.Len(), func(idx int) { sum += idx })
	}
	_ = sum
}

// benchFT is a no-op fault toucher; the fast path must never call it in
// these benchmarks (every accessed page is resident and unprotected).
type benchFT struct{ faults int }

func (f *benchFT) FaultTouch(p PageID, write bool) { f.faults++ }

// benchSpace returns a space wired for the inline fast path with every
// page resident and no clock event scheduled.
func benchSpace(npages int) (*Space, *benchFT) {
	s := NewSpace(uint64(npages)*PageSize, nil)
	ft := &benchFT{}
	s.SetFastTouch(NewClock(), 100*time.Nanosecond, ft)
	flags := s.PageFlags()
	for p := 1; p < npages; p++ {
		flags[p] = PFResident
		s.materialize(PageID(p))
	}
	return s, ft
}

// BenchmarkReadWordFast measures the resident-page word-read fast path:
// clock charge, referenced-bit update, and the body load.
func BenchmarkReadWordFast(b *testing.B) {
	const npages = 64
	s, ft := benchSpace(npages)
	b.ReportAllocs()
	b.ResetTimer()
	var sum uint64
	for i := 0; i < b.N; i++ {
		p := Addr(1 + uint64(i)%(npages-1))
		sum += s.ReadWord(p*PageSize + Addr(uint64(i)%WordsPage)*WordSize)
	}
	b.StopTimer()
	_ = sum
	if ft.faults != 0 {
		b.Fatalf("fast-path benchmark took %d faults", ft.faults)
	}
}

// BenchmarkReadWordPairFast measures the batched header-decode read.
func BenchmarkReadWordPairFast(b *testing.B) {
	const npages = 64
	s, ft := benchSpace(npages)
	b.ReportAllocs()
	b.ResetTimer()
	var sum uint64
	for i := 0; i < b.N; i++ {
		p := Addr(1 + uint64(i)%(npages-1))
		v1, v2 := s.ReadWordPair(p*PageSize + Addr(uint64(i)%WordsPage)*WordSize)
		sum += v1 + v2
	}
	b.StopTimer()
	_ = sum
	if ft.faults != 0 {
		b.Fatalf("fast-path benchmark took %d faults", ft.faults)
	}
}
