package runner

import (
	"time"

	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/sim"
	"bookmarkgc/internal/trace"
	"bookmarkgc/internal/vmm"
)

// Pause is one stop-the-world interval, flattened to integers so a
// Result round-trips through JSON exactly.
type Pause struct {
	StartNS     int64  `json:"start_ns"`
	DurNS       int64  `json:"dur_ns"`
	Kind        uint8  `json:"kind"`
	MajorFaults uint64 `json:"major_faults,omitempty"`
}

// RunData is the serializable subset of one simulation's measurements
// that the experiment reduces consume. A single-process job yields one;
// a multi-JVM job yields one per instance.
type RunData struct {
	// Name labels the run within its job (fleet tenants); empty for
	// single-process and identical-multi-JVM runs.
	Name           string        `json:"name,omitempty"`
	ElapsedSecs    float64       `json:"elapsed_secs"`
	StartNS        int64         `json:"start_ns"`
	EndNS          int64         `json:"end_ns"`
	Pauses         []Pause       `json:"pauses,omitempty"`
	AllocatedBytes uint64        `json:"allocated_bytes"`
	Nursery        uint64        `json:"nursery,omitempty"`
	Full           uint64        `json:"full,omitempty"`
	Compactions    uint64        `json:"compactions,omitempty"`
	FailSafe       uint64        `json:"failsafe,omitempty"`
	Bookmarked     uint64        `json:"bookmarked,omitempty"`
	PagesEvicted   uint64        `json:"pages_evicted,omitempty"`
	Proc           vmm.ProcStats `json:"proc"`

	// Err is the per-run failure (out of memory, typically); the sweep
	// treats such a configuration as a missing data point, not an engine
	// error.
	Err string `json:"err,omitempty"`
}

// newRunData flattens one sim.Result.
func newRunData(r sim.Result) RunData {
	rd := RunData{
		ElapsedSecs:    r.ElapsedSecs,
		StartNS:        int64(r.Timeline.Start),
		EndNS:          int64(r.Timeline.End),
		AllocatedBytes: r.Mutator.AllocatedBytes,
		Nursery:        r.GCStats.Nursery,
		Full:           r.GCStats.Full,
		Compactions:    r.GCStats.Compactions,
		FailSafe:       r.GCStats.FailSafe,
		Bookmarked:     r.GCStats.Bookmarked,
		PagesEvicted:   r.GCStats.PagesEvicted,
		Proc:           r.ProcStats,
	}
	for _, p := range r.Timeline.Pauses {
		rd.Pauses = append(rd.Pauses, Pause{
			StartNS:     int64(p.Start),
			DurNS:       int64(p.Dur),
			Kind:        uint8(p.Kind),
			MajorFaults: p.MajorFaults,
		})
	}
	if r.Err != nil {
		rd.Err = r.Err.Error()
	}
	return rd
}

// OK reports whether the run completed.
func (rd RunData) OK() bool { return rd.Err == "" }

// Timeline reconstructs the pause timeline, for the metrics the reports
// derive (AvgPause, BMU, percentiles). Every field is integral, so the
// reconstruction is exact whether the RunData came from a live run or
// from the JSONL store.
func (rd RunData) Timeline() metrics.Timeline {
	t := metrics.Timeline{
		Start: time.Duration(rd.StartNS),
		End:   time.Duration(rd.EndNS),
	}
	for _, p := range rd.Pauses {
		t.Pauses = append(t.Pauses, metrics.Pause{
			Start:       time.Duration(p.StartNS),
			Dur:         time.Duration(p.DurNS),
			Kind:        metrics.PauseKind(p.Kind),
			MajorFaults: p.MajorFaults,
		})
	}
	return t
}

// FleetData is the fleet-level outcome of a fleet job: what no
// per-tenant RunData can carry — arbitration, cascades, and the
// cross-tenant aggregates the fleet experiment reduces.
type FleetData struct {
	InitialPolicy  string  `json:"initial_policy"`
	FinalPolicy    string  `json:"final_policy"`
	Cascades       int     `json:"cascades"`
	Escalated      bool    `json:"escalated,omitempty"`
	AggMinorFaults uint64  `json:"agg_minor_faults"`
	AggMajorFaults uint64  `json:"agg_major_faults"`
	AggEvictions   uint64  `json:"agg_evictions"`
	ArbiterVetoes  uint64  `json:"arbiter_vetoes"`
	Fairness       float64 `json:"eviction_fairness"`
	// PauseP99NS is each tenant's p99 pause, aligned with Result.Runs.
	PauseP99NS []int64 `json:"pause_p99_ns,omitempty"`
	// BalancerRounds counts fleet MemBalancer redistribution rounds.
	BalancerRounds int `json:"balancer_rounds,omitempty"`
	// AggPeakResident sums every tenant's peak resident page count.
	AggPeakResident uint64 `json:"agg_peak_resident,omitempty"`
}

// newFleetData flattens a fleet result's fleet-level measurements.
func newFleetData(fr sim.FleetResult) *FleetData {
	return &FleetData{
		InitialPolicy:   string(fr.InitialPolicy),
		FinalPolicy:     string(fr.Policy),
		Cascades:        fr.Cascades,
		Escalated:       fr.Escalated,
		AggMinorFaults:  fr.AggMinorFaults,
		AggMajorFaults:  fr.AggMajorFaults,
		AggEvictions:    fr.AggEvictions,
		ArbiterVetoes:   fr.ArbiterVetoes,
		Fairness:        fr.Fairness,
		PauseP99NS:      fr.PauseP99NS,
		BalancerRounds:  fr.BalancerRounds,
		AggPeakResident: fr.AggPeakResident,
	}
}

// Result is one job's outcome, keyed by the job's content hash. It is
// immutable once published: the pool shares one *Result between
// duplicate jobs and cache hits.
type Result struct {
	Hash string    `json:"hash"`
	Runs []RunData `json:"runs,omitempty"`

	// Fleet carries the fleet-level measurements of a fleet job (nil
	// otherwise); Runs then holds one entry per tenant, named.
	Fleet *FleetData `json:"fleet,omitempty"`

	// Counters carries the job's event-counter totals by name when the
	// job asked for them. Deliberately not omitempty: an enabled-but-empty
	// registry must survive a cache round trip as non-nil, so reduces
	// behave identically on fresh and cached results.
	Counters map[string]uint64 `json:"counters"`

	// Err is an engine-level failure: invalid configuration, a panic in
	// the simulator, or a timeout. Distinct from RunData.Err (a run that
	// completed by failing, e.g. out of memory), which is deterministic
	// and cacheable; engine errors are not persisted.
	Err      string `json:"err,omitempty"`
	TimedOut bool   `json:"timed_out,omitempty"`

	// WallNS is the host wall-clock cost of executing the job. Cache
	// metadata only — never part of any report, so reports stay
	// byte-identical across machines and worker counts.
	WallNS int64 `json:"wall_ns,omitempty"`

	// Cached marks a result served from the persistent store (not
	// serialized; a stored result is by definition not marked).
	Cached bool `json:"-"`
}

// OK reports whether the job executed and every run completed.
func (r *Result) OK() bool {
	if r == nil || r.Err != "" || len(r.Runs) == 0 {
		return false
	}
	for _, rd := range r.Runs {
		if !rd.OK() {
			return false
		}
	}
	return true
}

// One returns the single run's data (the zero RunData for an errored
// job), which is what every single-process reduce consumes.
func (r *Result) One() RunData {
	if r == nil || len(r.Runs) == 0 {
		return RunData{Err: "no runs"}
	}
	return r.Runs[0]
}

// cacheable reports whether the result may be persisted: deterministic
// outcomes only. Timeouts and panics depend on the host, not the
// configuration, so a resumed sweep retries them.
func (r *Result) cacheable() bool { return r.Err == "" }

// countersMap snapshots a registry into a name->value map (nil registry
// -> nil map; enabled registry -> non-nil map even when all zero).
func countersMap(c *trace.Counters) map[string]uint64 {
	if c == nil {
		return nil
	}
	m := make(map[string]uint64)
	for i := 0; i < trace.NumCounters; i++ {
		if v := c.Get(trace.Counter(i)); v != 0 {
			m[trace.Counter(i).String()] = v
		}
	}
	return m
}
