package runner

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bookmarkgc/internal/trace"
)

// Options configures a Runner.
type Options struct {
	// Workers bounds concurrent jobs; <= 0 means GOMAXPROCS.
	Workers int
	// Timeout is the per-job wall-clock limit (0 = none). A timed-out
	// job yields an errored, non-cacheable Result; the worker moves on
	// while the abandoned simulation goroutine finishes in the
	// background, so concurrency can transiently exceed Workers after a
	// timeout.
	Timeout time.Duration
	// Cache, when non-nil, persists every cacheable result and serves
	// hits from previous (or interrupted) sweeps.
	Cache *Cache
	// Counters, when non-nil, receives the engine's own telemetry
	// (jobs executed, cache hits, errors, timeouts).
	Counters *trace.Counters
	// OnProgress, when non-nil, is called after each job resolves (run
	// or cache hit). It runs on worker goroutines; keep it fast.
	OnProgress func(Progress)
}

// Progress is a point-in-time view of one RunAll batch.
type Progress struct {
	Done, Total int // jobs resolved / in the batch
	Hits        int // of Done, served from memo or store
	Elapsed     time.Duration
	ETA         time.Duration // zero until one job resolves, and when done
}

// Stats accumulates across every batch a Runner executes.
type Stats struct {
	Submitted int // jobs seen (including duplicates and hits)
	Executed  int // simulations actually run
	MemHits   int // served from this process's memo
	DiskHits  int // served from the persistent store
	Errors    int // engine-level failures (config, panic, timeout)
	Timeouts  int
}

// Hits returns all cache hits (memo + store).
func (s Stats) Hits() int { return s.MemHits + s.DiskHits }

// Runner executes jobs on a bounded worker pool, memoizing results by
// content hash. Safe for concurrent use; results it returns are shared
// and must be treated as immutable.
type Runner struct {
	opts  Options
	mu    sync.Mutex
	memo  map[string]*Result
	stats Stats
}

// New returns a Runner with opts.
func New(opts Options) *Runner {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{opts: opts, memo: make(map[string]*Result)}
}

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// RunAll resolves every job and returns results in job order — cache
// hits immediately, the rest executed concurrently, duplicates (by
// hash) executed once. The returned slice is deterministic in content
// regardless of worker count; only wall-clock metadata differs.
func (r *Runner) RunAll(jobs []Job) []*Result {
	start := time.Now()
	out := make([]*Result, len(jobs))
	hashes := make([]string, len(jobs))
	var leaders []int
	followers := make(map[string][]int)
	hits := 0

	r.mu.Lock()
	for i, j := range jobs {
		h := j.Hash()
		hashes[i] = h
		r.stats.Submitted++
		if res, ok := r.lookupLocked(h); ok {
			out[i] = res
			hits++
			continue
		}
		if _, dup := followers[h]; dup {
			followers[h] = append(followers[h], i)
			continue
		}
		followers[h] = nil
		leaders = append(leaders, i)
	}
	r.mu.Unlock()

	done := hits
	r.emitProgress(start, done, len(jobs), hits)

	if len(leaders) > 0 {
		workers := r.opts.Workers
		if workers > len(leaders) {
			workers = len(leaders)
		}
		idxCh := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxCh {
					res := r.runOne(jobs[i])
					if r.opts.Cache != nil {
						// Best-effort: a full disk degrades resume, not
						// the sweep.
						_ = r.opts.Cache.Put(res)
					}
					r.mu.Lock()
					r.memo[hashes[i]] = res
					out[i] = res
					r.recordLocked(res)
					done += 1 + len(followers[hashes[i]])
					d := done
					r.mu.Unlock()
					r.emitProgress(start, d, len(jobs), hits)
				}
			}()
		}
		for _, i := range leaders {
			idxCh <- i
		}
		close(idxCh)
		wg.Wait()
	}

	r.mu.Lock()
	for h, idxs := range followers {
		for _, i := range idxs {
			out[i] = r.memo[h]
		}
	}
	r.mu.Unlock()
	return out
}

// Result returns j's result, executing it inline when no batch has
// resolved it yet — reduces stay correct even for a job their emission
// pass missed, just without parallelism.
func (r *Runner) Result(j Job) *Result {
	h := j.Hash()
	r.mu.Lock()
	res, ok := r.lookupLocked(h)
	if ok {
		r.stats.Submitted++
		r.mu.Unlock()
		return res
	}
	r.stats.Submitted++
	r.mu.Unlock()

	res = r.runOne(j)
	if r.opts.Cache != nil {
		_ = r.opts.Cache.Put(res)
	}
	r.mu.Lock()
	r.memo[h] = res
	r.recordLocked(res)
	r.mu.Unlock()
	return res
}

// lookupLocked serves a hash from the memo or the persistent store,
// promoting store hits into the memo. Caller holds r.mu.
func (r *Runner) lookupLocked(h string) (*Result, bool) {
	if res, ok := r.memo[h]; ok {
		r.stats.MemHits++
		r.opts.Counters.Inc(trace.CRunnerMemHits)
		return res, true
	}
	if r.opts.Cache != nil {
		if res, ok := r.opts.Cache.Get(h); ok {
			r.memo[h] = res
			r.stats.DiskHits++
			r.opts.Counters.Inc(trace.CRunnerCacheHits)
			return res, true
		}
	}
	return nil, false
}

// recordLocked updates execution telemetry for a fresh result. Caller
// holds r.mu.
func (r *Runner) recordLocked(res *Result) {
	r.stats.Executed++
	r.opts.Counters.Inc(trace.CRunnerJobsExecuted)
	if res.Err != "" {
		r.stats.Errors++
		r.opts.Counters.Inc(trace.CRunnerJobErrors)
	}
	if res.TimedOut {
		r.stats.Timeouts++
		r.opts.Counters.Inc(trace.CRunnerJobTimeouts)
	}
}

// runOne executes one job, applying the per-job timeout.
func (r *Runner) runOne(j Job) *Result {
	start := time.Now()
	var res *Result
	if r.opts.Timeout > 0 {
		ch := make(chan *Result, 1)
		go func() { ch <- Execute(j) }()
		select {
		case res = <-ch:
		case <-time.After(r.opts.Timeout):
			res = &Result{
				Hash:     j.Hash(),
				Err:      fmt.Sprintf("timeout after %v", r.opts.Timeout),
				TimedOut: true,
			}
		}
	} else {
		res = Execute(j)
	}
	res.WallNS = int64(time.Since(start))
	return res
}

func (r *Runner) emitProgress(start time.Time, done, total, hits int) {
	if r.opts.OnProgress == nil || total == 0 {
		return
	}
	p := Progress{Done: done, Total: total, Hits: hits, Elapsed: time.Since(start)}
	if done > 0 && done < total {
		p.ETA = time.Duration(float64(p.Elapsed) / float64(done) * float64(total-done))
	}
	r.opts.OnProgress(p)
}
