// Package runner is the sweep-execution engine behind the experiment
// harness. It decomposes an experiment's configuration matrix into
// independent Jobs — one fully-specified simulation each — and executes
// them on a bounded worker pool with per-job timeout, cancellation of
// nothing shared (each job owns its clock, VMM, and trace sink), and
// panic isolation, so one impossible configuration cannot kill a sweep.
//
// Every Job has a canonical content hash over everything that determines
// its outcome (collector, program spec, heap/phys bytes, pressure
// schedule, seed, chaos regime, ...). Results are memoized by that hash
// in memory and, optionally, persisted to a JSONL store so interrupted
// sweeps resume incrementally and repeated sweeps are free. Because the
// simulator is deterministic, a hash hit is indistinguishable from a
// fresh run, and reports reduced from memoized results are byte-identical
// regardless of worker count or scheduling order.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"bookmarkgc/internal/fault"
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/sim"
	"bookmarkgc/internal/trace"
	"bookmarkgc/internal/vmm"
	"bookmarkgc/internal/workload"
)

// TraceRef points a job at an allocation-trace file (internal/workload)
// in place of Program's generator. Name and Hash enter the job's
// canonical hash — the cache keys on what the trace contains; Path is
// where this process finds the bytes, which is location, not identity,
// so it stays out of the hash (and out of the persisted cache).
type TraceRef struct {
	Name string `json:"name"`
	Hash string `json:"hash"`
	Path string `json:"-"`
}

// Job is one fully-specified simulation: a pure value, serializable, and
// hashable. Field order is load-bearing — the canonical hash is computed
// over the struct's JSON encoding, so reordering or renaming fields
// invalidates every persisted cache (bump no version; stale entries are
// simply never hit again).
type Job struct {
	Collector sim.CollectorKind `json:"collector"`
	Program   mutator.Spec      `json:"program"`
	HeapBytes uint64            `json:"heap_bytes"`
	PhysBytes uint64            `json:"phys_bytes"`
	Pressure  *sim.Pressure     `json:"pressure,omitempty"`
	Seed      int64             `json:"seed"`
	Costs     *vmm.Costs        `json:"costs,omitempty"`
	Chaos     *fault.Config     `json:"chaos,omitempty"`

	// JVMs > 1 runs that many identical instances round-robin on one
	// machine (sim.RunMulti); 0 or 1 is a single-process run. Quantum is
	// the multi-JVM scheduling quantum (0 = sim's default).
	JVMs    int `json:"jvms,omitempty"`
	Quantum int `json:"quantum,omitempty"`

	// Counters attaches a per-job event-counter registry; its totals ride
	// along in the Result. Counting never advances the simulated clock,
	// but it changes what a Result carries, so it is part of the hash.
	Counters bool `json:"counters,omitempty"`

	// Trace, when non-nil, replays the referenced allocation trace
	// instead of running Program's generator. Program may be left zero
	// (or set for display; it still participates in the hash).
	Trace *TraceRef `json:"trace,omitempty"`

	// Fleet, when non-nil, runs a multi-tenant fleet (sim.RunFleet)
	// described entirely by the spec; the single-run fields above must be
	// left zero (Collector/Program/Heap/Phys live inside the spec). The
	// spec is a pure value, so it hashes with the job.
	Fleet *sim.FleetSpec `json:"fleet,omitempty"`

	// HeapPolicy names the run's heap-limit policy (internal/heappolicy;
	// "" = the collector's default). Fleet jobs carry policies inside
	// the spec instead. Appended after Fleet so empty-policy jobs keep
	// their pre-existing hashes.
	HeapPolicy string `json:"heap_policy,omitempty"`
}

// Hash returns the job's canonical content hash: hex SHA-256 of its JSON
// encoding. encoding/json emits struct fields in declaration order and
// formats floats deterministically, so equal jobs hash equally across
// processes and platforms.
func (j Job) Hash() string {
	b, err := json.Marshal(j)
	if err != nil {
		// A Job is plain data; Marshal cannot fail on one. Guard anyway.
		panic(fmt.Sprintf("runner: unhashable job: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// validate rejects configurations the simulator cannot express, before
// any simulation state exists.
func (j Job) validate() error {
	if j.JVMs > 1 && j.Pressure != nil {
		return fmt.Errorf("runner: multi-JVM jobs do not support a pressure schedule")
	}
	if j.JVMs > 1 && j.Chaos != nil {
		return fmt.Errorf("runner: multi-JVM jobs do not support chaos injection")
	}
	if j.Trace != nil && j.Trace.Path == "" {
		return fmt.Errorf("runner: trace %q has no resolved path on this machine", j.Trace.Name)
	}
	if j.HeapPolicy != "" && !heappolicy.Known(j.HeapPolicy) {
		return fmt.Errorf("runner: unknown heap policy %q (valid: %v)", j.HeapPolicy, heappolicy.Names())
	}
	if j.Fleet != nil {
		if j.JVMs > 1 || j.Pressure != nil || j.Chaos != nil || j.Trace != nil {
			return fmt.Errorf("runner: fleet jobs carry their whole configuration in the spec (jvms/pressure/chaos/trace must be unset)")
		}
		if j.HeapPolicy != "" {
			return fmt.Errorf("runner: fleet jobs name heap policies inside the spec (heap_policy must be unset)")
		}
		if err := j.Fleet.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// openTrace resolves a job's trace reference, insisting the bytes on
// disk still match the hash the job (and so the result cache) is keyed
// by — a stale or swapped file must not impersonate the trace.
func openTrace(ref *TraceRef) (mutator.Source, error) {
	h, err := workload.HashFile(ref.Path)
	if err != nil {
		return nil, err
	}
	if h != ref.Hash {
		return nil, fmt.Errorf("runner: trace %s at %s has content hash %.12s…, job expects %.12s…",
			ref.Name, ref.Path, h, ref.Hash)
	}
	return workload.Open(ref.Path)
}

// Execute runs one job to completion on the calling goroutine and never
// panics: a panicking simulation (beyond the out-of-memory condition
// sim.Run already converts to a per-run error) becomes a job error, not
// a dead sweep.
func Execute(j Job) *Result {
	return capture(j.Hash(), func() *Result { return execute(j) })
}

// capture converts a panic from f into an errored Result for hash.
func capture(hash string, f func() *Result) (res *Result) {
	defer func() {
		if p := recover(); p != nil {
			res = &Result{Hash: hash, Err: fmt.Sprintf("panic: %v", p)}
		}
	}()
	return f()
}

func execute(j Job) *Result {
	res := &Result{Hash: j.Hash()}
	if err := j.validate(); err != nil {
		res.Err = err.Error()
		return res
	}
	var ctrs *trace.Counters
	if j.Counters {
		ctrs = trace.NewCounters()
	}
	var src mutator.Source
	if j.Trace != nil {
		s, err := openTrace(j.Trace)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		src = s
	}
	if j.Fleet != nil {
		fr := sim.RunFleet(sim.FleetConfig{
			Spec:     *j.Fleet,
			Costs:    j.Costs,
			Counters: ctrs,
		})
		if fr.Err != nil {
			res.Err = fr.Err.Error()
			return res
		}
		for i, r := range fr.Tenants {
			rd := newRunData(r)
			rd.Name = fr.Names[i]
			res.Runs = append(res.Runs, rd)
		}
		res.Fleet = newFleetData(fr)
		res.Counters = countersMap(ctrs)
		return res
	}
	if j.JVMs > 1 {
		rs := sim.RunMulti(sim.MultiConfig{
			Collector:  j.Collector,
			Program:    j.Program,
			HeapBytes:  j.HeapBytes,
			PhysBytes:  j.PhysBytes,
			JVMs:       j.JVMs,
			Quantum:    j.Quantum,
			Seed:       j.Seed,
			Costs:      j.Costs,
			Counters:   ctrs,
			Workload:   src,
			HeapPolicy: j.HeapPolicy,
		})
		if len(rs) != j.JVMs {
			// RunMulti signals an invalid configuration with a single
			// errored result.
			if len(rs) > 0 && rs[0].Err != nil {
				res.Err = rs[0].Err.Error()
			} else {
				res.Err = fmt.Sprintf("runner: expected %d results, got %d", j.JVMs, len(rs))
			}
			return res
		}
		for _, r := range rs {
			res.Runs = append(res.Runs, newRunData(r))
		}
	} else {
		r := sim.Run(sim.RunConfig{
			Collector:  j.Collector,
			Program:    j.Program,
			HeapBytes:  j.HeapBytes,
			PhysBytes:  j.PhysBytes,
			Pressure:   j.Pressure,
			Seed:       j.Seed,
			Costs:      j.Costs,
			Chaos:      j.Chaos,
			Counters:   ctrs,
			Workload:   src,
			HeapPolicy: j.HeapPolicy,
		})
		res.Runs = append(res.Runs, newRunData(r))
	}
	res.Counters = countersMap(ctrs)
	return res
}
