package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// cacheFile is the store's file name inside the cache directory.
const cacheFile = "results.jsonl"

// Cache is the persistent result store: one JSON object per line, keyed
// by job hash, append-only. Appends are a single unbuffered write each,
// so every completed job is durable the moment it finishes — a sweep
// killed mid-run resumes from exactly the jobs that completed. A
// partially-written trailing line (the kill landed mid-append) is
// skipped on load and overwritten by the job's re-run.
type Cache struct {
	mu   sync.Mutex
	path string
	f    *os.File
	mem  map[string]*Result
}

// OpenCache opens (creating as needed) the store under dir. With resume
// set, existing results are loaded and served; otherwise the store is
// truncated and the sweep starts fresh.
func OpenCache(dir string, resume bool) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	c := &Cache{path: filepath.Join(dir, cacheFile), mem: make(map[string]*Result)}
	if resume {
		if err := c.load(); err != nil {
			return nil, err
		}
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(c.path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: cache store: %w", err)
	}
	c.f = f
	if resume {
		if err := c.healTrailingNewline(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return c, nil
}

// healTrailingNewline terminates a torn final line (a previous sweep
// killed mid-append) so the next append starts on a fresh line instead
// of corrupting itself against the fragment.
func (c *Cache) healTrailingNewline() error {
	f, err := os.Open(c.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("runner: cache heal: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() == 0 {
		return err
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, st.Size()-1); err != nil {
		return fmt.Errorf("runner: cache heal: %w", err)
	}
	if last[0] != '\n' {
		if _, err := c.f.Write([]byte{'\n'}); err != nil {
			return fmt.Errorf("runner: cache heal: %w", err)
		}
	}
	return nil
}

// load reads every parseable line into the in-memory index. Malformed
// lines (a torn final append) are skipped, not fatal.
func (c *Cache) load() error {
	f, err := os.Open(c.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("runner: cache load: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Result
		if err := json.Unmarshal(line, &r); err != nil || r.Hash == "" {
			continue
		}
		r.Cached = true
		c.mem[r.Hash] = &r
	}
	return sc.Err()
}

// Get returns the stored result for hash, if any.
func (c *Cache) Get(hash string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.mem[hash]
	return r, ok
}

// Put appends res to the store (and the in-memory index). Non-cacheable
// results (timeouts, panics) are ignored so a resumed sweep retries them.
func (c *Cache) Put(res *Result) error {
	if !res.cacheable() {
		return nil
	}
	b, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("runner: cache put: %w", err)
	}
	b = append(b, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.mem[res.Hash]; ok {
		return nil
	}
	if _, err := c.f.Write(b); err != nil {
		return fmt.Errorf("runner: cache append: %w", err)
	}
	c.mem[res.Hash] = res
	return nil
}

// Len returns the number of stored results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Path returns the store's file path.
func (c *Cache) Path() string { return c.path }

// Close closes the underlying file.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
