package runner

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/sim"
	"bookmarkgc/internal/trace"
)

// tinyJob is a sub-second single-process simulation.
func tinyJob(seed int64) Job {
	prog := mutator.PseudoJBB().Scale(0.005)
	heap := mem.RoundUpPage(prog.MinHeap * 2)
	return Job{
		Collector: sim.BC,
		Program:   prog,
		HeapBytes: heap,
		PhysBytes: heap * 4,
		Seed:      seed,
	}
}

func TestJobHashStable(t *testing.T) {
	j := tinyJob(1)
	h1, h2 := j.Hash(), j.Hash()
	if h1 != h2 {
		t.Fatalf("hash not stable: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not hex sha-256", h1)
	}
}

func TestJobHashSensitivity(t *testing.T) {
	base := tinyJob(1)
	seen := map[string]string{base.Hash(): "base"}
	variants := map[string]Job{}
	j := base
	j.Seed = 2
	variants["seed"] = j
	j = base
	j.Collector = sim.GenMS
	variants["collector"] = j
	j = base
	j.HeapBytes += 4096
	variants["heap"] = j
	j = base
	j.PhysBytes += 4096
	variants["phys"] = j
	j = base
	j.Counters = true
	variants["counters"] = j
	j = base
	j.Pressure = sim.SteadyPressure(base.HeapBytes, 0.5)
	variants["pressure"] = j
	j = base
	j.JVMs = 2
	variants["jvms"] = j
	for name, v := range variants {
		h := v.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("variant %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

func TestExecuteTiny(t *testing.T) {
	j := tinyJob(1)
	res := Execute(j)
	if !res.OK() {
		t.Fatalf("tiny job failed: err=%q runs=%d", res.Err, len(res.Runs))
	}
	if res.Hash != j.Hash() {
		t.Fatal("result hash mismatch")
	}
	if len(res.Runs) != 1 {
		t.Fatalf("want 1 run, got %d", len(res.Runs))
	}
	if res.Counters != nil {
		t.Fatal("counters map present without Counters flag")
	}
	run := res.One()
	if run.ElapsedSecs <= 0 || run.AllocatedBytes == 0 {
		t.Fatalf("implausible run: %+v", run)
	}
	tl := run.Timeline()
	if tl.End <= tl.Start {
		t.Fatalf("bad timeline [%v, %v]", tl.Start, tl.End)
	}
}

func TestExecuteCounters(t *testing.T) {
	j := tinyJob(1)
	j.Counters = true
	res := Execute(j)
	if !res.OK() {
		t.Fatalf("job failed: %q", res.Err)
	}
	if res.Counters == nil {
		t.Fatal("Counters flag set but map is nil")
	}
	if len(res.Counters) == 0 {
		t.Fatal("a BC run should count at least one event")
	}
}

func TestCapturePanic(t *testing.T) {
	res := capture("deadbeef", func() *Result { panic("boom") })
	if res.Hash != "deadbeef" {
		t.Fatalf("hash %q", res.Hash)
	}
	if !strings.Contains(res.Err, "panic: boom") {
		t.Fatalf("err %q does not record the panic", res.Err)
	}
	if res.OK() {
		t.Fatal("panicked result reports OK")
	}
	if res.cacheable() {
		t.Fatal("panicked result must not be cacheable")
	}
}

func TestExecuteInvalidConfig(t *testing.T) {
	j := tinyJob(1)
	j.JVMs = 2
	j.Pressure = sim.SteadyPressure(j.HeapBytes, 0.5)
	res := Execute(j)
	if res.Err == "" {
		t.Fatal("multi-JVM job with pressure schedule must be rejected")
	}
	if res.cacheable() {
		t.Fatal("engine errors must not be cacheable")
	}
}

func TestRunAllDedup(t *testing.T) {
	dup := tinyJob(1)
	jobs := []Job{dup, dup, dup, tinyJob(2), dup}
	rn := New(Options{Workers: 4})
	out := rn.RunAll(jobs)
	if len(out) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(out), len(jobs))
	}
	for i, res := range out {
		if res == nil || !res.OK() {
			t.Fatalf("job %d failed", i)
		}
	}
	if out[0] != out[1] || out[0] != out[2] || out[0] != out[4] {
		t.Fatal("duplicate jobs did not share one result")
	}
	if out[3] == out[0] {
		t.Fatal("distinct jobs shared a result")
	}
	st := rn.Stats()
	if st.Submitted != 5 || st.Executed != 2 {
		t.Fatalf("stats %+v: want 5 submitted, 2 executed", st)
	}
}

func TestRunAllMemo(t *testing.T) {
	rn := New(Options{Workers: 2})
	jobs := []Job{tinyJob(1), tinyJob(2)}
	first := rn.RunAll(jobs)
	second := rn.RunAll(jobs)
	for i := range jobs {
		if first[i] != second[i] {
			t.Fatalf("job %d re-executed instead of memo hit", i)
		}
	}
	st := rn.Stats()
	if st.Executed != 2 || st.MemHits != 2 {
		t.Fatalf("stats %+v: want 2 executed, 2 memo hits", st)
	}
}

func TestResultInlineFallback(t *testing.T) {
	rn := New(Options{Workers: 2})
	j := tinyJob(3)
	res := rn.Result(j) // never emitted through RunAll
	if !res.OK() {
		t.Fatalf("inline execution failed: %q", res.Err)
	}
	if rn.Result(j) != res {
		t.Fatal("second lookup missed the memo")
	}
	st := rn.Stats()
	if st.Executed != 1 || st.MemHits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSchedulingDeterminism is the engine-level half of the ISSUE's
// determinism guarantee: the measured content of every result is
// identical for 1 worker and 8 workers. (The report-level half lives in
// internal/bench's determinism test.)
func TestSchedulingDeterminism(t *testing.T) {
	var jobs []Job
	for seed := int64(1); seed <= 6; seed++ {
		jobs = append(jobs, tinyJob(seed))
	}
	seq := New(Options{Workers: 1}).RunAll(jobs)
	par := New(Options{Workers: 8}).RunAll(jobs)
	for i := range jobs {
		if seq[i].Hash != par[i].Hash {
			t.Fatalf("job %d: hash mismatch", i)
		}
		if !reflect.DeepEqual(seq[i].Runs, par[i].Runs) {
			t.Fatalf("job %d: runs differ between 1 and 8 workers", i)
		}
		if !reflect.DeepEqual(seq[i].Counters, par[i].Counters) {
			t.Fatalf("job %d: counters differ between 1 and 8 workers", i)
		}
	}
}

func TestTimeout(t *testing.T) {
	rn := New(Options{Workers: 1, Timeout: time.Nanosecond})
	out := rn.RunAll([]Job{tinyJob(1)})
	res := out[0]
	if !res.TimedOut || res.Err == "" {
		t.Fatalf("expected a timeout, got %+v", res)
	}
	st := rn.Stats()
	if st.Timeouts != 1 || st.Errors != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEngineTelemetry(t *testing.T) {
	ctrs := trace.NewCounters()
	rn := New(Options{Workers: 2, Counters: ctrs})
	j := tinyJob(1)
	rn.RunAll([]Job{j, j})
	if got := ctrs.Get(trace.CRunnerJobsExecuted); got != 1 {
		t.Fatalf("runner_jobs_executed = %d, want 1", got)
	}
	rn.RunAll([]Job{j})
	if got := ctrs.Get(trace.CRunnerMemHits); got != 1 {
		t.Fatalf("runner_mem_hits = %d, want 1", got)
	}
}

func TestProgress(t *testing.T) {
	var calls, final atomic.Int64
	rn := New(Options{
		Workers: 2,
		OnProgress: func(p Progress) {
			calls.Add(1)
			if p.Done == p.Total {
				final.Add(1)
			}
			if p.Done > p.Total {
				t.Errorf("progress overflow: %d/%d", p.Done, p.Total)
			}
		},
	})
	rn.RunAll([]Job{tinyJob(1), tinyJob(2), tinyJob(1)})
	if calls.Load() == 0 {
		t.Fatal("OnProgress never called")
	}
	if final.Load() == 0 {
		t.Fatal("final progress state never reported")
	}
}

func TestResultHelpers(t *testing.T) {
	var nilRes *Result
	if nilRes.OK() {
		t.Fatal("nil result reports OK")
	}
	empty := &Result{}
	if empty.OK() {
		t.Fatal("empty result reports OK")
	}
	if rd := empty.One(); rd.OK() {
		t.Fatal("One() on an empty result must carry an error")
	}
	failed := &Result{Runs: []RunData{{Err: "out of memory"}}}
	if failed.OK() {
		t.Fatal("failed run reports OK")
	}
	if !failed.cacheable() {
		t.Fatal("a deterministic run failure is cacheable")
	}
}
