package runner

import (
	"os"
	"reflect"
	"testing"
	"time"
)

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	j := tinyJob(1)
	j.Counters = true
	rn := New(Options{Workers: 1, Cache: cache})
	fresh := rn.RunAll([]Job{j})[0]
	if !fresh.OK() {
		t.Fatalf("job failed: %q", fresh.Err)
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenCache(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != 1 {
		t.Fatalf("reloaded %d results, want 1", reopened.Len())
	}
	got, ok := reopened.Get(j.Hash())
	if !ok {
		t.Fatal("stored result not found by hash")
	}
	if !got.Cached {
		t.Fatal("reloaded result not marked Cached")
	}
	// The reduce-visible content must survive the JSON round trip exactly:
	// a cached sweep must be indistinguishable from a fresh one.
	if !reflect.DeepEqual(got.Runs, fresh.Runs) {
		t.Fatalf("runs changed across round trip:\nfresh: %+v\ncached: %+v", fresh.Runs, got.Runs)
	}
	if !reflect.DeepEqual(got.Counters, fresh.Counters) {
		t.Fatalf("counters changed across round trip: %v vs %v", fresh.Counters, got.Counters)
	}

	// A runner on the reopened store serves the job without executing.
	rn2 := New(Options{Workers: 1, Cache: reopened})
	res := rn2.RunAll([]Job{j})[0]
	if !res.Cached {
		t.Fatal("resumed run did not use the store")
	}
	st := rn2.Stats()
	if st.Executed != 0 || st.DiskHits != 1 {
		t.Fatalf("stats %+v: want 0 executed, 1 disk hit", st)
	}
}

func TestCacheCountersPresence(t *testing.T) {
	// An enabled-but-empty counters map must stay non-nil after a round
	// trip, and a disabled one must stay nil — reduces branch on this.
	dir := t.TempDir()
	cache, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Put(&Result{Hash: "aa", Counters: map[string]uint64{}}); err != nil {
		t.Fatal(err)
	}
	if err := cache.Put(&Result{Hash: "bb"}); err != nil {
		t.Fatal(err)
	}
	cache.Close()
	re, err := OpenCache(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	withC, _ := re.Get("aa")
	withoutC, _ := re.Get("bb")
	if withC == nil || withC.Counters == nil {
		t.Fatal("enabled-but-empty counters map became nil")
	}
	if withoutC == nil || withoutC.Counters != nil {
		t.Fatal("disabled counters map became non-nil")
	}
}

func TestCacheSkipsEngineErrors(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	if err := cache.Put(&Result{Hash: "cc", Err: "timeout after 1ns", TimedOut: true}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatal("engine error was persisted; resume would never retry it")
	}
	// But a deterministic run failure (e.g. OOM) is persisted.
	if err := cache.Put(&Result{Hash: "dd", Runs: []RunData{{Err: "out of memory"}}}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatal("deterministic run failure was not persisted")
	}
}

func TestCacheTornTrailingLine(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Put(&Result{Hash: "ee", Runs: []RunData{{ElapsedSecs: 1}}}); err != nil {
		t.Fatal(err)
	}
	path := cache.Path()
	cache.Close()

	// Simulate a kill mid-append: a torn, unterminated JSON fragment.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"hash":"ff","runs":[{"elaps`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenCache(dir, true)
	if err != nil {
		t.Fatalf("torn trailing line must not fail resume: %v", err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("loaded %d results, want 1 (torn line skipped)", re.Len())
	}
	if _, ok := re.Get("ee"); !ok {
		t.Fatal("intact line lost")
	}
	if _, ok := re.Get("ff"); ok {
		t.Fatal("torn line was loaded")
	}
	// Resume heals the missing newline, so the torn job's re-run appends
	// on a fresh line and survives the next load.
	if err := re.Put(&Result{Hash: "ff", Runs: []RunData{{ElapsedSecs: 2}}}); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := OpenCache(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Len() != 2 {
		t.Fatalf("loaded %d results after heal, want 2", re2.Len())
	}
	if _, ok := re2.Get("ff"); !ok {
		t.Fatal("re-run appended after a torn fragment was lost")
	}
}

func TestCacheFreshTruncates(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(&Result{Hash: "gg", Runs: []RunData{{ElapsedSecs: 1}}})
	cache.Close()
	fresh, err := OpenCache(dir, false) // no resume: start over
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.Len() != 0 {
		t.Fatal("fresh open served stale results")
	}
	if _, ok := fresh.Get("gg"); ok {
		t.Fatal("stale result visible after truncation")
	}
}

func TestCachePutIdempotent(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{Hash: "hh", Runs: []RunData{{ElapsedSecs: 1}}, WallNS: int64(time.Second)}
	cache.Put(res)
	cache.Put(res)
	cache.Put(res)
	cache.Close()
	b, err := os.ReadFile(cache.Path())
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, c := range b {
		if c == '\n' {
			lines++
		}
	}
	if lines != 1 {
		t.Fatalf("duplicate Put wrote %d lines, want 1", lines)
	}
}
