package core

import (
	"sort"

	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
	"bookmarkgc/internal/vmm"
)

// bcHandler adapts BC to the vmm.Handler interface. It is a distinct type
// so the notification entry points are clearly separated from the
// collector's mutator-facing API.
type bcHandler BC

// EvictionScheduled implements vmm.Handler — the paper's §3.3–3.4
// protocol, in order:
//
//  1. note that the footprint now exceeds available memory and shrink the
//     heap target (§3.3.3);
//  2. if the page must stay (nursery page, superpage header), touch it so
//     the VMM picks another victim (§3.4);
//  3. if the page — or any other page — is empty, discard empties instead
//     (aggressively, a bitmap word at a time, §3.3.2/§3.4.3);
//  4. otherwise collect, hoping to free pages;
//  5. otherwise bookmark the victim and relinquish it (§3.4).
func (h *bcHandler) EvictionScheduled(p mem.PageID) {
	c := (*BC)(h)
	// Trust no notification blindly: the signal may be stale (the kernel
	// already evicted or discarded the page before delivery) or a
	// duplicate of one already acted on. Acting on either would scan a
	// page that is gone or unbookmark state mid-eviction. The kernel's
	// page table is the authority; a genuinely fresh notification always
	// names a resident page BC does not yet count as leaving.
	switch st := c.E.Proc.State(p); {
	case st == vmm.Evicted && !c.evicted.Test(int(p)):
		// The page left before the signal landed — a silent eviction
		// learned about late. Repair now rather than at the next audit.
		c.noteSilentEviction(p)
		return
	case st != vmm.Resident:
		c.E.Trace.Point(trace.EvNotificationIgnored, int64(p), 0)
		c.E.Counters.Inc(trace.CStaleNotices)
		return
	case c.evicted.Test(int(p)):
		// Already mid-eviction in BC's books (processed and relinquished,
		// or noted as leaving): a repeated delivery.
		c.E.Trace.Point(trace.EvNotificationIgnored, int64(p), 1)
		c.E.Counters.Inc(trace.CDuplicateNotices)
		return
	}
	c.E.Trace.Point(trace.EvEvictionScheduled, int64(p), 0)
	c.shrinkTarget()

	if c.mustKeep(p) {
		c.E.Proc.Touch(p, false) // veto: a different victim gets scheduled
		c.giveDiscardables(p)    // still relieve pressure if we can
		return
	}
	if c.discardIfEmpty(p) {
		return
	}
	if c.giveDiscardables(p) > 0 {
		c.E.Proc.Touch(p, false) // veto the occupied page; we paid in empties
		return
	}
	// No discardable page: request a collection (§3.3.2). The signal can
	// arrive in the middle of any mutator operation, and a collection
	// moves objects, so it must wait for the next GC safepoint (Alloc) —
	// here we can only bookmark, discard, and veto, all non-moving.
	// Guard against requesting repeatedly with no allocation progress in
	// between: a mutator that is only reading generates no new garbage.
	// The threshold doubles while requested collections free nothing
	// (see Alloc), so a mutator retaining everything it allocates does
	// not drown in futile full collections.
	if !c.inGC && c.allocsSinceGC >= c.gcRequestAfter {
		c.allocsSinceGC = 0
		c.pendingGC = true
	}
	if c.cfg.ResizeOnly || !c.booksValid {
		// Resize-only variant, or bookmark state discarded by a
		// fail-safe: let the VMM take the page; we only track that it
		// left.
		c.noteEvicted(p)
		return
	}
	victim := c.chooseVictim(p)
	if victim != p {
		c.E.Proc.Touch(p, false) // veto the scheduled page
	}
	c.processAndEvict(victim)
}

// PageReloaded implements vmm.Handler: a major fault brought the page
// back (wasEvicted) or the mutator hit the protection BC placed on a
// scanned page. Either way, access is re-enabled and bookmarks induced by
// this page are cleared (§3.4.2).
func (h *bcHandler) PageReloaded(p mem.PageID, wasEvicted bool) {
	c := (*BC)(h)
	// A reload the kernel could legitimately report names a page that is
	// resident and unprotected: a major fault leaves the page resident
	// before the signal, and a protection fault clears the protection
	// before delivering it. Anything else is spurious — and acting on a
	// forged reload for a protected page awaiting eviction would clear
	// bookmarks whose page is still going to leave, losing its edges.
	if c.E.Proc.State(p) != vmm.Resident || c.E.Proc.Protected(p) {
		c.E.Trace.Point(trace.EvNotificationIgnored, int64(p), 2)
		c.E.Counters.Inc(trace.CSpuriousReloads)
		return
	}
	wasEv := int64(0)
	if wasEvicted {
		wasEv = 1
	}
	c.E.Trace.Point(trace.EvPageReloaded, int64(p), wasEv)
	c.E.Counters.Inc(trace.CPagesReloaded)
	c.reloadBooks(p)
}

// reloadBooks performs the §3.4.2 reload bookkeeping for page p: access
// restored, residency bits fixed, and — if p's eviction-time scan set
// bookmarks — incoming counters decremented and stale bookmarks cleared.
// Shared by the reload handler and the residency audit.
func (c *BC) reloadBooks(p mem.PageID) {
	c.E.Proc.Unprotect(p)
	if c.evicted.Test(int(p)) {
		c.evicted.Clear(int(p))
		c.evictedHeapPg--
	}
	c.resident.Set(int(p))
	if c.processed.Test(int(p)) {
		c.processed.Clear(int(p))
		c.unbookmarkPage(p)
	}
	// p becoming resident may complete the extent of a straddling object
	// some earlier reload's release was waiting on.
	c.retryDeferred()
}

// shrinkTarget reports the eviction notice to the heap policy with
// BC's own residency books as the footprint: with the default
// bc-shrink policy this limits the heap to the current footprint
// (§3.3.3). The credit from aggressive discards keeps those voluntary
// returns from shrinking the target further (§3.4.3).
func (c *BC) shrinkTarget() {
	gc.ObserveHeapPolicy(c, heappolicy.EvPressure, c.resident.Count()+c.discardCredit)
}

// maybeRegrow gives the heap policy its mutator tick; under the
// default bc-shrink policy with Config.Regrow this raises the
// footprint target again once the VMM has had free memory for a while
// (§7 extension). A raised target takes effect immediately via a
// nursery resize.
func (c *BC) maybeRegrow() {
	if from, to := gc.ObserveHeapPolicy(c, heappolicy.EvMutator, -1); to > from {
		c.resizeNursery()
	}
}

// mustKeep reports whether p must not be evicted: nursery pages the
// allocator is about to reuse, in-use superpage headers (whose metadata
// must stay resident for constant-time access, §3.4), and — a soundness
// addition — mature pages holding pointers into the nursery, which the
// next nursery collection must update.
func (c *BC) mustKeep(p mem.PageID) bool {
	a := mem.PageAddr(p)
	if c.nursery.Contains(a) {
		return a < c.nursery.Base()+mem.Addr(c.nursery.Budget())
	}
	if c.SS.Contains(a) {
		idx := c.SS.SuperIndex(a)
		if !c.SS.Used(idx) {
			return false
		}
		if c.SS.HeaderPage(idx) == p {
			return true
		}
		return c.pageHasNurseryPointer(p, idx)
	}
	return false
}

// pageHasNurseryPointer scans p's objects for nursery references,
// memoizing the verdict (invalidated by nursery-pointer stores and
// dropped whenever the nursery empties).
func (c *BC) pageHasNurseryPointer(p mem.PageID, idx int) bool {
	if v, ok := c.nurseryPtrCache[p]; ok {
		return v
	}
	found := false
	c.SS.ObjectsOverlappingPage(idx, p, func(o objmodel.Ref) {
		if found || !c.pageOK(o.Page()) {
			return
		}
		c.scanLive(o, func(_ mem.Addr, tgt objmodel.Ref) {
			if c.nursery.Contains(tgt) {
				found = true
			}
		})
	})
	c.nurseryPtrCache[p] = found
	return found
}

// discardIfEmpty gives page p back via madvise if it holds no live data.
func (c *BC) discardIfEmpty(p mem.PageID) bool {
	if !c.pageDiscardable(p) {
		return false
	}
	c.discardPage(p)
	return true
}

// pageDiscardable reports whether p is resident and holds no live data.
func (c *BC) pageDiscardable(p mem.PageID) bool {
	if c.cfg.debugNoDiscard {
		return false
	}
	if !c.resident.Test(int(p)) || c.evicted.Test(int(p)) {
		return false
	}
	a := mem.PageAddr(p)
	switch {
	case c.nursery.Contains(a):
		return a >= c.nursery.Frontier()
	case c.SS.Contains(a):
		return !c.SS.Used(c.SS.SuperIndex(a))
	case c.LOS.Contains(a):
		return c.LOS.IsFreePage(p)
	}
	return false
}

// discardPage returns one page to the VMM.
func (c *BC) discardPage(p mem.PageID) {
	c.E.Proc.Discard(p)
	c.E.Trace.Point(trace.EvPageDiscarded, int64(p), 0)
	c.E.Counters.Inc(trace.CPagesDiscarded)
	c.resident.Clear(int(p))
	c.processed.Clear(int(p))
}

// giveDiscardables finds empty resident pages and discards them. It
// discards every empty page recorded in the same residency-bitmap word as
// the first one it finds (§3.4.3), crediting the extras so the footprint
// target does not over-shrink. Returns the number discarded. exclude is
// the page currently under notification (handled by the caller).
func (c *BC) giveDiscardables(exclude mem.PageID) int {
	// Rotating cursor: discardable pages cluster (freed superpages, the
	// nursery tail), so resuming where the last scan stopped keeps each
	// notification O(found) instead of O(heap).
	first := -1
	limit := c.resident.Len()
	scan := func(from, to int) {
		for i := c.resident.NextSet(from); i >= 0 && i < to; i = c.resident.NextSet(i + 1) {
			if mem.PageID(i) != exclude && c.pageDiscardable(mem.PageID(i)) {
				first = i
				return
			}
		}
	}
	scan(c.discardCursor, limit)
	if first < 0 && c.discardCursor > 0 {
		scan(0, c.discardCursor)
	}
	if first < 0 {
		c.discardCursor = 0
		return 0
	}
	c.discardCursor = first + 1
	if c.cfg.NoAggressiveDiscard {
		c.discardPage(mem.PageID(first))
		c.E.Counters.Observe(trace.HDiscardBatch, 1)
		return 1
	}
	n := 0
	c.resident.ForEachSetInWord(first, func(i int) {
		if mem.PageID(i) != exclude && c.pageDiscardable(mem.PageID(i)) {
			c.discardPage(mem.PageID(i))
			n++
		}
	})
	if n > 1 {
		c.discardCredit += n - 1
	}
	if n > 0 {
		c.E.Counters.Observe(trace.HDiscardBatch, uint64(n))
	}
	return n
}

// chooseVictim applies the configured victim policy (§7). With the
// pointer-free preference, a sampled resident mature data page without
// outgoing pointers is evicted instead of the LRU choice.
func (c *BC) chooseVictim(p mem.PageID) mem.PageID {
	if c.cfg.Victim != VictimPreferPointerFree || !c.pagePointerCount(p) {
		return p
	}
	// The LRU choice has pointers; sample forward through the mature
	// region for a pointer-free resident page.
	if c.SS.Contains(mem.PageAddr(p)) {
		start := c.SS.SuperIndex(mem.PageAddr(p))
		for off := 1; off <= 16; off++ {
			idx := start + off
			if idx >= c.SS.HighWater() || !c.SS.Used(idx) {
				continue
			}
			first, last := c.SS.PagesOf(idx)
			for q := first + 1; q <= last; q++ { // skip header page
				if c.resident.Test(int(q)) && !c.evicted.Test(int(q)) &&
					!c.pagePointerCount(q) && !c.mustKeep(q) {
					return q
				}
			}
		}
	}
	return p
}

// pagePointerCount reports whether p contains any non-nil pointer.
func (c *BC) pagePointerCount(p mem.PageID) bool {
	a := mem.PageAddr(p)
	if !c.SS.Contains(a) {
		return true // treat non-mature pages as pointer-bearing
	}
	idx := c.SS.SuperIndex(a)
	if !c.SS.Used(idx) {
		return false
	}
	any := false
	c.SS.ObjectsOverlappingPage(idx, p, func(o objmodel.Ref) {
		if any || !c.pageOK(o.Page()) {
			return
		}
		c.scanLive(o, func(_ mem.Addr, _ objmodel.Ref) { any = true })
	})
	return any
}

// noteEvicted updates BC's books for a page that is leaving memory.
func (c *BC) noteEvicted(p mem.PageID) {
	if c.resident.Test(int(p)) {
		c.resident.Clear(int(p))
	}
	if !c.evicted.Test(int(p)) {
		c.evicted.Set(int(p))
		c.evictedHeapPg++
	}
}

// processAndEvict is the heart of §3.4: scan the victim page, bookmark
// the targets of its outgoing references and raise their superpages'
// incoming counters, conservatively bookmark the page's own objects,
// protect the page against the eviction race, record the books, and
// relinquish the page to the VMM.
func (c *BC) processAndEvict(p mem.PageID) {
	rec := &pageRecord{}
	seenSuper := map[int32]bool{}
	seenLOS := map[objmodel.Ref]bool{}
	booked := int64(0)
	if c.curWork != nil {
		// Bookmarking during a collection: the marks grafted in below are
		// the preventive-bookmarking path (§3.4.1).
		c.E.Trace.Point(trace.EvPreventiveBookmark, int64(p), 0)
		c.E.Counters.Inc(trace.CPreventiveBookmarks)
	}

	bookmarkTarget := func(tgt objmodel.Ref) {
		// The bookmark bit can be set only if the target's page is
		// accessible; a target on an evicted page already carries the
		// conservative bookmark from its own page's eviction. The
		// incoming counter, however, lives in the always-resident
		// superpage header and must be raised either way — it is what
		// keeps the conservative bookmarks alive when the target's page
		// reloads while this page is still out (§3.4.2).
		switch {
		case c.SS.Contains(tgt):
			if c.pageOK(tgt.Page()) {
				objmodel.SetBookmark(c.E.Space, tgt)
				c.Stats().Bookmarked++
				booked++
				c.E.Counters.Inc(trace.CObjectsBookmarked)
				if c.curWork != nil {
					// A collection is in progress: the new bookmark must
					// join its mark, or children reachable only through
					// the departing page would be swept.
					gc.MarkStep(c.E, c.curWork, tgt, c.curEpoch)
				}
			}
			idx := int32(c.SS.SuperIndex(tgt))
			if !seenSuper[idx] {
				seenSuper[idx] = true
				c.SS.IncIncoming(int(idx))
				c.E.Counters.Inc(trace.CIncomingBumps)
				rec.supers = append(rec.supers, idx)
			}
		case c.LOS.Contains(tgt):
			if o, ok := c.LOS.ObjectContaining(tgt); ok {
				if c.pageOK(o.Page()) {
					objmodel.SetBookmark(c.E.Space, o)
					c.Stats().Bookmarked++
					booked++
					c.E.Counters.Inc(trace.CObjectsBookmarked)
					if c.curWork != nil {
						gc.MarkStep(c.E, c.curWork, o, c.curEpoch)
					}
				}
				if !seenLOS[o] {
					seenLOS[o] = true
					c.losIncoming[o]++
					c.E.Counters.Inc(trace.CIncomingBumps)
					rec.los = append(rec.los, o)
				}
			}
		}
	}
	c.forEachObjectOverlapping(p, func(o objmodel.Ref) {
		if !c.pageOK(o.Page()) {
			return // header already evicted; edges were recorded then
		}
		objmodel.SetBookmark(c.E.Space, o) // conservative (§3.4)
		booked++
		c.E.Counters.Inc(trace.CObjectsBookmarked)
		c.scanForEviction(o, bookmarkTarget)
	})

	if len(rec.supers) > 0 || len(rec.los) > 0 {
		c.pageTargets[p] = rec
	}
	c.processed.Set(int(p))
	c.noteEvicted(p)
	c.Stats().PagesEvicted++
	c.E.Trace.Point(trace.EvPageProcessed, int64(p), booked)
	c.E.Counters.Inc(trace.CPagesProcessed)
	c.E.Counters.Observe(trace.HPageBookmarks, uint64(booked))
	c.E.Proc.Protect(p)
	c.E.Proc.Relinquish([]mem.PageID{p})
}

// scanForEviction reads o's reference slots for the eviction-time scan.
// Unlike scanLive — the marking helper, which rightly drops targets on
// evicted pages because they cannot be marked — a target on an evicted
// page must still reach bookmarkTarget: its superpage's incoming counter
// has to rise either way, or the target page's reload would see a zero
// count and clear the conservative bookmark this edge depends on
// (§3.4.2). Slots on evicted pages (straddling objects) are still
// skipped: they cannot be read, and the record made when their page left
// already covers them.
func (c *BC) scanForEviction(o objmodel.Ref, fn func(tgt objmodel.Ref)) {
	t, n := c.E.Types.TypeOf(c.E.Space, o)
	for i := 0; i < t.NumRefSlots(n); i++ {
		slot := t.RefSlotAddr(o, i)
		if !c.pageOK(slot.Page()) {
			continue
		}
		if tgt := c.E.Space.ReadAddr(slot); tgt != mem.Nil {
			fn(tgt)
		}
	}
}

// forEachObjectOverlapping visits live objects whose extent overlaps p.
func (c *BC) forEachObjectOverlapping(p mem.PageID, fn func(o objmodel.Ref)) {
	a := mem.PageAddr(p)
	switch {
	case c.SS.Contains(a):
		idx := c.SS.SuperIndex(a)
		if c.SS.Used(idx) {
			c.SS.ObjectsOverlappingPage(idx, p, fn)
		}
	case c.LOS.Contains(a):
		if o, ok := c.LOS.ObjectContaining(a); ok {
			fn(o)
		}
	}
}

// unbookmarkPage undoes what processAndEvict recorded for p: decrement
// the incoming counters it raised, clear bookmarks on superpages whose
// count drops to zero, and clear the conservative bookmarks on p itself
// if its own superpage has no incoming bookmarks (§3.4.2).
//
// A page's record covers every edge of every object that overlapped p
// at processing time — including slots physically on OTHER pages of a
// straddling object, which became unscannable along with the header.
// If a covered object still extends onto an evicted page, those edges
// are still unscannable, so the record cannot be released yet: its
// decrements are deferred until every page under the object is back
// (retryDeferred). Releasing early would drop the incoming counter to
// zero and clear the conservative bookmark on a target reachable only
// through a slot that is still paged out, and the next collection would
// sweep it.
func (c *BC) unbookmarkPage(p mem.PageID) {
	if rec, ok := c.pageTargets[p]; ok {
		delete(c.pageTargets, p)
		if n := c.straddlingEvicted(p); n > 0 {
			c.E.Trace.Point(trace.EvBookmarkDeferred, int64(p), int64(n))
			c.E.Counters.Inc(trace.CDeferredUnbookmarks)
			if old, dup := c.deferredTargets[p]; dup {
				old.supers = append(old.supers, rec.supers...)
				old.los = append(old.los, rec.los...)
			} else {
				c.deferredTargets[p] = rec
			}
		} else {
			c.E.Trace.Point(trace.EvBookmarkCleared, int64(p), c.releaseRecord(rec))
		}
	} else {
		c.E.Trace.Point(trace.EvBookmarkCleared, int64(p), 0)
	}
	c.clearConservative(p)
}

// releaseRecord applies the decrements a page record holds, clearing
// bookmarks whose protection lapses, and reports how many it applied.
func (c *BC) releaseRecord(rec *pageRecord) int64 {
	decs := int64(0)
	for _, idx := range rec.supers {
		decs++
		c.E.Counters.Inc(trace.CIncomingDecrements)
		if c.SS.Used(int(idx)) && c.SS.DecIncoming(int(idx)) == 0 {
			c.clearSuperBookmarks(int(idx))
		}
	}
	for _, o := range rec.los {
		decs++
		c.E.Counters.Inc(trace.CIncomingDecrements)
		if n := c.losIncoming[o] - 1; n > 0 {
			c.losIncoming[o] = n
		} else {
			delete(c.losIncoming, o)
			if c.pageOK(o.Page()) {
				objmodel.ClearBookmark(c.E.Space, o)
			}
		}
	}
	return decs
}

// straddlingEvicted counts objects overlapping p whose extent reaches a
// page still marked evicted. Extents come from always-resident metadata
// (the superpage's block size, the LOS page span) — no data page is
// read, since the whole point is that some of those pages are out.
func (c *BC) straddlingEvicted(p mem.PageID) int {
	n := 0
	a := mem.PageAddr(p)
	switch {
	case c.SS.Contains(a):
		idx := c.SS.SuperIndex(a)
		cl, _, used := c.SS.ClassOf(idx)
		if !used {
			return 0
		}
		c.SS.ObjectsOverlappingPage(idx, p, func(o objmodel.Ref) {
			last := (o + mem.Addr(cl.BlockSize) - 1).Page()
			for q := o.Page(); q <= last; q++ {
				if c.evicted.Test(int(q)) {
					n++
					return
				}
			}
		})
	case c.LOS.Contains(a):
		if o, ok := c.LOS.ObjectContaining(a); ok {
			first, last := c.LOS.PagesOf(o)
			for q := first; q <= last; q++ {
				if c.evicted.Test(int(q)) {
					n++
					break
				}
			}
		}
	}
	return n
}

// retryDeferred releases deferred records whose straddling objects have
// fully reloaded. Pages are visited in sorted order so a replay with
// the same seeds clears bookmarks in the same sequence.
func (c *BC) retryDeferred() {
	if len(c.deferredTargets) == 0 {
		return
	}
	pages := make([]mem.PageID, 0, len(c.deferredTargets))
	for p := range c.deferredTargets {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, p := range pages {
		if c.straddlingEvicted(p) > 0 {
			continue
		}
		rec := c.deferredTargets[p]
		delete(c.deferredTargets, p)
		c.E.Trace.Point(trace.EvBookmarkCleared, int64(p), c.releaseRecord(rec))
		c.clearConservative(p)
	}
}

// clearConservative clears the conservative bookmarks on p's own
// objects once nothing evicted points into their superpage or large
// object (§3.4.2).
func (c *BC) clearConservative(p mem.PageID) {
	a := mem.PageAddr(p)
	switch {
	case c.SS.Contains(a):
		idx := c.SS.SuperIndex(a)
		if c.SS.Used(idx) && c.SS.Incoming(idx) == 0 {
			c.SS.ObjectsOverlappingPage(idx, p, func(o objmodel.Ref) {
				if c.pageOK(o.Page()) {
					objmodel.ClearBookmark(c.E.Space, o)
				}
			})
		}
	case c.LOS.Contains(a):
		if o, ok := c.LOS.ObjectContaining(a); ok {
			if c.losIncoming[o] == 0 && c.pageOK(o.Page()) {
				objmodel.ClearBookmark(c.E.Space, o)
			}
		}
	}
}

// clearSuperBookmarks clears bookmarks on superpage idx's resident
// objects once no evicted page points into it. Objects on its own evicted
// pages keep their conservative bookmarks until those pages reload.
func (c *BC) clearSuperBookmarks(idx int) {
	c.SS.ForEachObjectIn(idx, func(o objmodel.Ref) {
		if c.pageOK(o.Page()) {
			objmodel.ClearBookmark(c.E.Space, o)
		}
	})
}
