package core

import (
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/trace"
	"bookmarkgc/internal/vmm"
)

// This file is BC's defense against a kernel whose notifications are
// lost, late, repeated, or forged. The paper assumes lossless queueable
// real-time signals (§4.1); a production runtime cannot. The degradation
// ladder is:
//
//  1. individual guards reject notifications the kernel could not
//     legitimately have sent (stale, duplicate, spurious) — see
//     cooperate.go;
//  2. a residency audit at every collection start cross-checks BC's bit
//     array (§3.3.1) against the kernel and repairs drift: a page that
//     left silently degrades the whole heap to fail-safe treatment
//     (booksValid=false — collections touch evicted pages) until no page
//     is evicted, because the departed page's outgoing references were
//     never bookmarked;
//  3. once silent evictions pass a threshold the kernel is declared
//     untrusted, permanently for this process: bookmark state can never
//     be rebuilt on evidence this bad, so every full collection becomes
//     the §3.5 fail-safe and BC otherwise behaves like the resize-only
//     variant.

// silentEvictionLimit is how many silently-evicted pages BC tolerates
// before concluding the kernel does not deliver notifications at all. A
// few lost signals merely invalidate the books until the heap is clean
// again; a kernel losing dozens will never sustain the bookmark
// invariant, so BC stops trying.
const silentEvictionLimit = 32

// untrusted reports whether notifications have been declared unreliable.
func (c *BC) untrusted() bool { return c.silentEvictions >= silentEvictionLimit }

// Untrusted reports whether BC has stopped trusting the kernel's
// notifications (exported for harnesses and diagnostics).
func (c *BC) Untrusted() bool { return c.untrusted() }

// SilentEvictions returns how many pages were found evicted without
// notification so far.
func (c *BC) SilentEvictions() int { return c.silentEvictions }

// auditResidency cross-checks BC's page books against the kernel at
// collection start and repairs both directions of drift. It runs before
// any marking, so no collection ever acts on books the kernel has
// silently invalidated. The checks are peeks (State/Protected read the
// page table, not the page), so a clean audit costs no simulated time.
func (c *BC) auditResidency() {
	// Pages BC believes resident that the kernel evicted without a word.
	for i := c.resident.NextSet(0); i >= 0; i = c.resident.NextSet(i + 1) {
		if c.E.Proc.State(mem.PageID(i)) == vmm.Evicted {
			c.noteSilentEviction(mem.PageID(i))
		}
	}
	// Pages BC believes evicted that are resident and unprotected: they
	// came back (or the eviction was cancelled) and the reload
	// notification never arrived. Protected pages are excluded — a page
	// processed for eviction stays protected until it leaves or faults,
	// so protection marks a legitimately pending eviction.
	for i := c.evicted.NextSet(0); i >= 0; i = c.evicted.NextSet(i + 1) {
		p := mem.PageID(i)
		if c.E.Proc.State(p) == vmm.Resident && !c.E.Proc.Protected(p) {
			c.E.Trace.Point(trace.EvResidencyRepaired, int64(p), 1)
			c.E.Counters.Inc(trace.CUnnotifiedReloads)
			c.reloadBooks(p)
		}
	}
}

// noteSilentEviction records that page p left memory without an eviction
// notification: fix the bit array, and degrade to fail-safe treatment —
// p's outgoing references were never counted and its objects never
// bookmarked, so the in-memory-collection invariant (§3.4.1) no longer
// holds anywhere until the heap has no evicted pages.
func (c *BC) noteSilentEviction(p mem.PageID) {
	c.noteEvicted(p)
	c.silentEvictions++
	c.booksValid = false
	c.E.Trace.Point(trace.EvResidencyRepaired, int64(p), 0)
	c.E.Counters.Inc(trace.CSilentEvictions)
}
