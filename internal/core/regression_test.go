package core

import (
	"testing"

	"bookmarkgc/internal/gc"
)

// TestChurnUnderPressureVariants is a regression test for two bugs found
// during bring-up: (1) the eviction handler triggering a moving
// collection outside a GC safepoint corrupted raw references the mutator
// held across operations; (2) skipping the incoming-counter increment for
// bookmark targets on already-evicted pages let conservative bookmarks be
// cleared too early. It churns linked lists under severe pressure in
// three configurations and verifies every list survives intact.
func TestChurnUnderPressureVariants(t *testing.T) {
	for _, mode := range []string{"resizeonly-nodiscard", "resizeonly", "bc"} {
		t.Run(mode, func(t *testing.T) {
			cfg := Config{}
			if mode != "bc" {
				cfg.ResizeOnly = true
			}
			if mode == "resizeonly-nodiscard" {
				cfg.debugNoDiscard = true
			}
			v, c, node, _, _ := newBC(t, 48, 10, cfg)
			head := buildList(c, node, 60000, 19)
			c.Collect(true)
			pressurize(v, 150)
			for round := 0; round < 3; round++ {
				tmp := buildList(c, node, 30000, uint64(round))
				checkList(t, c, tmp, 30000, uint64(round))
				c.Roots().Release(tmp)
			}
			checkList(t, c, head, 60000, 19)
		})
	}
}

// TestBCOutOfMemory verifies the configured heap is a hard ceiling: live
// data beyond it panics with ErrOutOfMemory after the whole escalation
// ladder (nursery, full, compaction, fail-safe) is exhausted.
func TestBCOutOfMemory(t *testing.T) {
	_, c, node, _, _ := newBC(t, 512, 2, Config{})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected ErrOutOfMemory")
		}
		if _, ok := r.(gc.ErrOutOfMemory); !ok {
			panic(r)
		}
	}()
	head := c.Roots().Add(c.Alloc(node, 0))
	for {
		o := c.Alloc(node, 0)
		c.WriteRef(o, 0, c.Roots().Get(head))
		c.Roots().Set(head, o)
	}
}
