package core

import (
	"fmt"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/vmm"
)

// CheckInvariants validates BC's structural invariants without touching
// any data page (object words are peeked from the backing store
// directly; only always-resident superpage headers are read normally),
// so residency, LRU state, and the clock are essentially unperturbed.
// It returns the first violation found, or nil. It is meant for tests
// and debugging; a production build would compile it out.
//
// Checked invariants:
//
//  1. superpage accounting: the allocated-block count in each header
//     matches the allocation bitmap, and every allocated block holds a
//     plausible object header;
//  2. bookmark books balance: each in-use superpage's incoming counter
//     equals the number of processed pages whose records name it, and
//     likewise for large objects;
//  3. page-state agreement: every page BC believes evicted is Evicted or
//     (pending eviction) Resident in the VMM, and processed pages are a
//     subset of evicted pages;
//  4. reachability: every object reachable from the roots lies in a
//     valid allocation (nursery extent, allocated superpage block, or
//     live large object) and carries a registered type.
func (c *BC) CheckInvariants() error {
	if err := c.checkSuperpages(); err != nil {
		return err
	}
	if err := c.checkBookBalance(); err != nil {
		return err
	}
	if err := c.checkPageStates(); err != nil {
		return err
	}
	return c.checkReachability()
}

// peek reads a heap word without touching the page.
func (c *BC) peek(a mem.Addr) uint64 { return c.E.Space.PeekWord(a) }

func (c *BC) checkSuperpages() error {
	var err error
	c.SS.ForEachSuper(func(idx int, cl objmodel.SizeClass, kind objmodel.Kind) {
		if err != nil {
			return
		}
		count := 0
		c.SS.ForEachObjectIn(idx, func(o objmodel.Ref) {
			count++
			id := int32(uint32(c.peek(o + mem.WordSize)))
			if int(id) >= c.E.Types.Len() || id < 0 {
				err = fmt.Errorf("super %d: block %#x has bad type id %d", idx, o, id)
				return
			}
			t := c.E.Types.Get(id)
			if t.Kind != kind {
				err = fmt.Errorf("super %d: %s object %#x on %s superpage", idx, t.Kind, o, kind)
				return
			}
			n := int(uint32(c.peek(o+mem.WordSize) >> 32))
			if t.TotalBytes(n) > cl.BlockSize {
				err = fmt.Errorf("super %d: object %#x (%dB) overflows %dB block",
					idx, o, t.TotalBytes(n), cl.BlockSize)
			}
		})
		if err == nil && count != c.SS.Allocated(idx) {
			err = fmt.Errorf("super %d: header says %d allocated, bitmap has %d",
				idx, c.SS.Allocated(idx), count)
		}
	})
	return err
}

func (c *BC) checkBookBalance() error {
	superRefs := map[int]int{}
	losRefs := map[objmodel.Ref]int{}
	for p, rec := range c.pageTargets {
		if !c.processed.Test(int(p)) {
			return fmt.Errorf("page %d has a target record but no processed bit", p)
		}
		for _, idx := range rec.supers {
			superRefs[int(idx)]++
		}
		for _, o := range rec.los {
			losRefs[o]++
		}
	}
	// Deferred records belong to pages that have already reloaded but
	// whose release waits on a straddling object's other pages; their
	// increments are still outstanding.
	for p, rec := range c.deferredTargets {
		if c.straddlingEvicted(p) == 0 {
			return fmt.Errorf("page %d has a deferred record but nothing straddling evicted pages", p)
		}
		for _, idx := range rec.supers {
			superRefs[int(idx)]++
		}
		for _, o := range rec.los {
			losRefs[o]++
		}
	}
	var err error
	c.SS.ForEachSuper(func(idx int, _ objmodel.SizeClass, _ objmodel.Kind) {
		if err != nil {
			return
		}
		if got, want := c.SS.Incoming(idx), superRefs[idx]; got != want {
			err = fmt.Errorf("super %d: incoming counter %d, records say %d", idx, got, want)
		}
	})
	if err != nil {
		return err
	}
	for o, n := range c.losIncoming {
		if losRefs[o] != n {
			return fmt.Errorf("LOS object %#x: incoming %d, records say %d", o, n, losRefs[o])
		}
	}
	for o, n := range losRefs {
		if c.losIncoming[o] != n {
			return fmt.Errorf("LOS object %#x: records say %d, incoming map has %d", o, n, c.losIncoming[o])
		}
	}
	return nil
}

func (c *BC) checkPageStates() error {
	for i := c.evicted.NextSet(0); i >= 0; i = c.evicted.NextSet(i + 1) {
		st := c.E.Proc.State(mem.PageID(i))
		// A page BC marked evicted is either truly evicted or still
		// resident awaiting eviction (relinquished/protected).
		if st == vmm.Fresh {
			return fmt.Errorf("page %d: BC says evicted, VMM says fresh", i)
		}
	}
	for i := c.processed.NextSet(0); i >= 0; i = c.processed.NextSet(i + 1) {
		if !c.evicted.Test(i) {
			return fmt.Errorf("page %d processed but not marked evicted", i)
		}
	}
	if got := c.evicted.Count(); got != c.evictedHeapPg {
		return fmt.Errorf("evicted count drift: bitmap %d, counter %d", got, c.evictedHeapPg)
	}
	return nil
}

// checkReachability walks the object graph from the roots using peeks.
func (c *BC) checkReachability() error {
	seen := map[objmodel.Ref]bool{}
	var stack []objmodel.Ref
	push := func(o objmodel.Ref) error {
		if o == mem.Nil || seen[o] {
			return nil
		}
		if err := c.validObject(o); err != nil {
			return err
		}
		seen[o] = true
		stack = append(stack, o)
		return nil
	}
	var err error
	c.Roots().ForEach(func(slot *mem.Addr) {
		if err == nil {
			err = push(*slot)
		}
	})
	for err == nil && len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		id := int32(uint32(c.peek(o + mem.WordSize)))
		t := c.E.Types.Get(id)
		n := int(uint32(c.peek(o+mem.WordSize) >> 32))
		for i := 0; i < t.NumRefSlots(n) && err == nil; i++ {
			err = push(objmodel.Ref(c.peek(t.RefSlotAddr(o, i))))
		}
	}
	return err
}

// validObject verifies o is a live allocation in some space.
func (c *BC) validObject(o objmodel.Ref) error {
	switch {
	case c.nursery.ContainsAllocated(o):
		// Bump region: any address below the frontier could be an object
		// start; the type check below is the real gate.
	case c.SS.Contains(o):
		idx := c.SS.SuperIndex(o)
		if !c.SS.Used(idx) {
			return fmt.Errorf("reachable object %#x on free superpage %d", o, idx)
		}
		got, ok := c.SS.ObjectAt(idx, o)
		if !ok || got != o {
			return fmt.Errorf("reachable object %#x is not an allocated block start", o)
		}
	case c.LOS.Contains(o):
		got, ok := c.LOS.ObjectContaining(o)
		if !ok || got != o {
			return fmt.Errorf("reachable object %#x is not a live large object", o)
		}
	default:
		return fmt.Errorf("reachable object %#x outside every space", o)
	}
	id := int32(uint32(c.peek(o + mem.WordSize)))
	if id < 0 || int(id) >= c.E.Types.Len() {
		return fmt.Errorf("reachable object %#x has invalid type id %d", o, id)
	}
	return nil
}
