package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/trace"
	"bookmarkgc/internal/vmm"
)

// TestEveryPhaseEmitsSpans drives BC through all of its collection
// kinds — nursery, full, compaction, fail-safe — with a recorder
// attached and checks that every phase produces a matched span.
func TestEveryPhaseEmitsSpans(t *testing.T) {
	clock := vmm.NewClock()
	v := vmm.New(clock, 512<<20, vmm.DefaultCosts())
	env := gc.NewEnv(v, "bc-span-test", 16<<20)
	rec := trace.NewRecorder(clock, "BC")
	env.Trace = rec
	env.Counters = trace.NewCounters()
	node := env.Types.Scalar("node", 4, 0, 1)
	c := New(env, Config{})

	slot := c.Roots().Add(c.Alloc(node, 0))
	c.Collect(false) // nursery
	c.Collect(true)  // full
	c.compact()      // compaction phases
	c.failSafe()     // fail-safe full collection
	if c.Roots().Get(slot) == 0 {
		t.Fatal("root lost")
	}

	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf, "core-test"); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	begins := map[string]int{}
	ends := map[string]int{}
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "B":
			begins[e.Name]++
		case "E":
			ends[e.Name]++
		}
	}
	for _, phase := range []string{
		"pause:nursery", "pause:full", "pause:compact",
		"nursery-scan", "mark", "sweep",
		"compact-select", "cheney-forward", "failsafe",
	} {
		if begins[phase] == 0 {
			t.Errorf("no %q span recorded", phase)
		}
		if begins[phase] != ends[phase] {
			t.Errorf("%q spans unbalanced: %d begins, %d ends", phase, begins[phase], ends[phase])
		}
	}
}
