package core

import (
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
)

// compact is the two-pass compacting collection of §3.2, adjusted for
// bookmarks per §3.4.1:
//
//  1. a marking pass (bookmarked objects as secondary roots) counts live
//     objects per size class;
//  2. garbage is swept so target capacity is visible;
//  3. target superpages are selected: superpages containing bookmarked
//     objects or evicted pages are forced targets (their objects cannot
//     move, because evicted pointers to them cannot be updated), then the
//     most-occupied superpages until capacity covers the movable live
//     data;
//  4. a Cheney pass forwards every reachable object not already on a
//     target into target superpages, evacuating the nursery too;
//  5. empty non-target superpages are released.
func (c *BC) compact() {
	c.auditResidency()
	c.inGC = true
	defer func() { c.inGC = false }()
	done := c.Stats().BeginPause(c.E, metrics.PauseCompact)
	defer done()
	gc.PauseClock(c.E, gc.PauseOverhead)
	c.Stats().Compactions++

	// Pass 1: mark.
	epoch := c.NextEpoch()
	work := c.E.GetWorkList()
	defer c.E.PutWorkList(work)
	c.curWork, c.curEpoch = work, epoch
	defer func() { c.curWork = nil }()
	c.E.Trace.Begin(trace.PhaseMark)
	if c.evictedHeapPg > 0 && !c.cfg.ResizeOnly && c.booksValid {
		c.bookmarkRoots(work, epoch)
	}
	markRoot := func(o objmodel.Ref) {
		if c.nursery.Contains(o) || c.pageOK(o.Page()) {
			gc.MarkStep(c.E, work, o, epoch)
		}
	}
	c.E.Trace.Begin(trace.PhaseRootScan)
	c.Roots().ForEach(func(slot *mem.Addr) { markRoot(*slot) })
	c.E.Trace.End(trace.PhaseRootScan)
	// Parallel work-stealing census trace (DESIGN.md §11): a pure marking
	// pass, so there are no deferred edges — nursery objects are marked in
	// place and scanned like everything else. Nursery slots are always
	// readable (the sequential pass used an unfiltered ScanObject there);
	// for mature objects the scanLive policy applies.
	cfg := &gc.ParMarkConfig{
		Epoch: epoch,
		SlotOK: func(slot mem.Addr) bool {
			return c.nursery.Contains(slot) || c.pageOK(slot.Page())
		},
		Classify: func(tgt objmodel.Ref) gc.EdgeAction {
			if c.nursery.Contains(tgt) || c.pageOK(tgt.Page()) {
				return gc.EdgeMark
			}
			return gc.EdgeSkip
		},
		SkipObj: func(o objmodel.Ref) bool {
			return !c.nursery.Contains(o) && !c.pageOK(o.Page())
		},
	}
	c.E.Marker().Mark(cfg, work, nil)

	c.E.Trace.End(trace.PhaseMark)

	// Sweep garbage first so target capacity is visible. (Resident-only,
	// bookmark-respecting via the space's filter and sweep rules.)
	c.E.Trace.Begin(trace.PhaseSweep)
	c.SS.Sweep(epoch)
	c.LOS.Sweep(epoch, c.pageOK)
	c.E.Trace.End(trace.PhaseSweep)

	// Pass 2: choose targets and copy.
	c.E.Trace.Begin(trace.PhaseCompactSelect)
	targets := c.chooseTargets()
	c.E.Trace.End(trace.PhaseCompactSelect)
	c.E.Trace.Begin(trace.PhaseCheneyForward)
	epoch2 := c.NextEpoch()
	work.Reset()
	c.curEpoch = epoch2      // mid-pass bookmarks join the copy pass
	var moved []objmodel.Ref // source blocks, freed after the trace
	forward := func(o objmodel.Ref) objmodel.Ref {
		switch {
		case c.nursery.Contains(o):
			return c.compactCopy(o, targets, work, epoch2, nil)
		case !c.pageOK(o.Page()):
			return o
		case c.SS.Contains(o):
			idx := c.SS.SuperIndex(o)
			if targets.all[idx] || objmodel.Bookmarked(c.E.Space, o) {
				// On a target (or unmovable): scan in place, once.
				gc.MarkStep(c.E, work, o, epoch2)
				return o
			}
			if objmodel.Forwarded(c.E.Space, o) {
				return objmodel.ForwardAddr(c.E.Space, o)
			}
			return c.compactCopy(o, targets, work, epoch2, &moved)
		default: // LOS: never moves
			gc.MarkStep(c.E, work, o, epoch2)
			return o
		}
	}
	c.E.Trace.Begin(trace.PhaseRootScan)
	c.Roots().ForEach(func(slot *mem.Addr) {
		*slot = forward(*slot)
	})
	c.E.Trace.End(trace.PhaseRootScan)
	for {
		o, ok := work.Pop()
		if !ok {
			break
		}
		if !c.pageOK(o.Page()) {
			continue // evicted while queued; covered by its page's processing
		}
		c.scanLive(o, func(slot mem.Addr, tgt objmodel.Ref) {
			if nw := forward(tgt); nw != tgt {
				c.E.Space.WriteAddr(slot, nw)
			}
		})
	}
	// Free the vacated blocks only now: releasing a superpage mid-trace
	// could let the compaction allocator reacquire it and clobber
	// forwarding words other referrers still need.
	for _, o := range moved {
		c.SS.FreeBlock(o)
	}
	c.E.Trace.End(trace.PhaseCheneyForward)
	c.resetNursery()
	c.resizeNursery()
	c.maybeRevalidate()
	c.collectionDone()
}

// tkey identifies a (size class, kind) allocation bucket.
type tkey struct {
	class int
	kind  objmodel.Kind
}

// targetSet is the compaction target selection: the full membership set
// plus per-bucket lists with an allocation cursor.
type targetSet struct {
	all   map[int]bool
	byKey map[tkey][]int
	cur   map[tkey]int
}

// chooseTargets returns the target-superpage set: forced targets
// (bookmarked objects or evicted pages) plus the most-occupied candidates
// until free capacity covers the movable live blocks, per size class and
// kind.
func (c *BC) chooseTargets() *targetSet {
	targets := &targetSet{
		all:   make(map[int]bool),
		byKey: make(map[tkey][]int),
		cur:   make(map[tkey]int),
	}
	candidates := map[tkey][]int{}
	liveMovable := map[tkey]int{}
	capacity := map[tkey]int{}

	c.SS.ForEachSuper(func(idx int, cl objmodel.SizeClass, kind objmodel.Kind) {
		k := tkey{cl.Index, kind}
		forced := c.SS.Incoming(idx) > 0 || c.superHasEvicted(idx)
		if !forced {
			// A superpage with any bookmarked resident object must not
			// have that object moved; keeping the whole superpage is the
			// paper's rule (bookmarked objects reside on targets).
			c.SS.ForEachObjectIn(idx, func(o objmodel.Ref) {
				if !forced && c.pageOK(o.Page()) && objmodel.Bookmarked(c.E.Space, o) {
					forced = true
				}
			})
		}
		if forced {
			targets.add(k, idx)
			capacity[k] += c.SS.FreeResidentBlocks(idx)
			return
		}
		candidates[k] = append(candidates[k], idx)
		liveMovable[k] += c.SS.Allocated(idx)
	})

	for k, cands := range candidates {
		// Most-occupied first: fewest moves, fewest target superpages.
		sortByAllocatedDesc(c, cands)
		need := liveMovable[k] - capacity[k]
		for _, idx := range cands {
			if need <= 0 {
				break
			}
			targets.add(k, idx)
			// Blocks already on this target stay; only its free capacity
			// absorbs movers, and its own blocks stop being movable.
			need -= c.SS.Allocated(idx) + c.SS.FreeResidentBlocks(idx)
		}
	}
	return targets
}

func (ts *targetSet) add(k tkey, idx int) {
	if !ts.all[idx] {
		ts.all[idx] = true
		ts.byKey[k] = append(ts.byKey[k], idx)
	}
}

func sortByAllocatedDesc(c *BC, idxs []int) {
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && c.SS.Allocated(idxs[j]) > c.SS.Allocated(idxs[j-1]); j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
}

// compactCopy copies a live object (nursery survivor or movable mature
// object) into a target superpage, leaving a forwarding pointer. When
// moved is non-nil the source block is queued for freeing after the
// trace.
func (c *BC) compactCopy(o objmodel.Ref, targets *targetSet, work *gc.WorkList, epoch2 uint32, moved *[]objmodel.Ref) objmodel.Ref {
	if objmodel.Forwarded(c.E.Space, o) {
		return objmodel.ForwardAddr(c.E.Space, o)
	}
	t, n := c.E.Types.TypeOf(c.E.Space, o)
	dst := c.allocForCompaction(t, n, targets)
	size := int(mem.RoundUpWord(uint64(t.TotalBytes(n))))
	gc.CopyObject(c.E.Space, o, dst, size)
	objmodel.Forward(c.E.Space, o, dst)
	objmodel.SetMark(c.E.Space, dst, epoch2)
	c.markRangeResident(dst, size)
	c.invalidateNurseryPtrCache(dst, size)
	c.E.Counters.Inc(trace.CForwardedObjects)
	c.E.Counters.Add(trace.CForwardedBytes, uint64(size))
	work.Push(dst)
	if moved != nil {
		*moved = append(*moved, o)
	}
	return dst
}

// allocForCompaction allocates a block on a target superpage of the right
// class and kind, extending the target set with a fresh superpage if
// capacity was underestimated (LOS-bound objects never reach here).
func (c *BC) allocForCompaction(t *objmodel.Type, arrayLen int, targets *targetSet) objmodel.Ref {
	total := t.TotalBytes(arrayLen)
	cl, small := c.E.Classes.ForSize(total)
	if !small {
		o := c.LOS.Alloc(t, arrayLen)
		if o == mem.Nil {
			panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.budget()})
		}
		return o
	}
	k := tkey{cl.Index, t.Kind}
	list := targets.byKey[k]
	for targets.cur[k] < len(list) {
		idx := list[targets.cur[k]]
		if o := c.SS.AllocInSuper(idx, t, arrayLen); o != mem.Nil {
			return o
		}
		targets.cur[k]++
		list = targets.byKey[k] // may have grown
	}
	idx := c.SS.AcquireSuper(cl, t.Kind)
	if idx < 0 {
		panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.budget()})
	}
	targets.add(k, idx)
	o := c.SS.AllocInSuper(idx, t, arrayLen)
	if o == mem.Nil {
		panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.budget()})
	}
	c.markRangeResident(c.SS.SuperBase(idx), mem.SuperSize)
	return o
}
