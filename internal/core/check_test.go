package core

import (
	"testing"
)

func TestInvariantsHoldWithoutPressure(t *testing.T) {
	_, c, node, _, dataArr := newBC(t, 512, 8, Config{})
	head := buildList(c, node, 5000, 1)
	for i := 0; i < 100000; i++ {
		c.Alloc(node, 0)
		if i%500 == 0 {
			c.Alloc(dataArr, 2000) // LOS
		}
	}
	c.Collect(true)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkList(t, c, head, 5000, 1)
}

func TestInvariantsHoldUnderPressure(t *testing.T) {
	v, c, node, _, dataArr := newBC(t, 48, 24, Config{})
	head := buildList(c, node, 80000, 2)
	var arrs []int
	for i := 0; i < 50; i++ {
		arrs = append(arrs, c.Roots().Add(c.Alloc(dataArr, 2000)))
	}
	c.Collect(true)
	pressurize(v, 400)
	for i := 0; i < 150000; i++ {
		c.Alloc(node, 0)
		if i%20000 == 19999 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("after %d allocs: %v", i, err)
			}
		}
	}
	if c.Stats().PagesEvicted == 0 {
		t.Fatal("pressure produced no bookmarking; invariant test too weak")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkList(t, c, head, 80000, 2)
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("after reload walk: %v", err)
	}
}

func TestInvariantsAcrossCompactionAndFailsafe(t *testing.T) {
	v, c, node, _, _ := newBC(t, 48, 8, Config{})
	head := buildList(c, node, 50000, 3)
	c.Collect(true)
	pressurize(v, 150)
	for round := 0; round < 4; round++ {
		tmp := buildList(c, node, 20000, uint64(round))
		c.Roots().Release(tmp)
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	checkList(t, c, head, 50000, 3)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("compactions=%d failsafes=%d", c.Stats().Compactions, c.Stats().FailSafe)
}
