// Package core implements the paper's contribution: the bookmarking
// collector (BC). BC is a generational collector with a bump-pointer
// nursery, a segregated-fit mark-sweep mature space over superpages, a
// page-based large object space, and compaction under memory pressure —
// and, centrally, it cooperates with the virtual memory manager so that
// collection never touches evicted pages:
//
//   - it tracks page residency in a bit array (§3.3.1);
//   - it hands the VMM empty pages, a whole bitmap word at a time, before
//     surrendering any occupied page (§3.3.2, §3.4.3);
//   - it shrinks its heap to the current footprint under pressure
//     (§3.3.3);
//   - when an occupied page must go, it scans it, bookmarks the targets
//     of its outgoing references, bumps incoming-bookmark counters in the
//     target superpages' headers, conservatively bookmarks the page's own
//     objects, protects the page, and relinquishes it (§3.4);
//   - full collections treat memory-resident bookmarked objects as roots
//     and ignore references to evicted pages (§3.4.1);
//   - on reload it decrements incoming counters and clears bookmarks that
//     are no longer needed (§3.4.2);
//   - if the heap is exhausted anyway, a fail-safe collection discards
//     every bookmark and collects the whole heap, touching evicted pages
//     (§3.5).
package core

import (
	"fmt"
	"math"
	"sort"

	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/heap"
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
)

// VictimPolicy selects which page to process when the VMM schedules an
// occupied page for eviction. The alternatives are the paper's proposed
// future-work strategies (§7).
type VictimPolicy uint8

const (
	// VictimDefault accepts the VMM's LRU choice.
	VictimDefault VictimPolicy = iota
	// VictimPreferPointerFree redirects the eviction to a resident mature
	// page containing no pointers when the LRU choice has many, avoiding
	// bookmarks (and false garbage) entirely.
	VictimPreferPointerFree
)

// Config selects BC variants.
type Config struct {
	// ResizeOnly disables bookmarking: BC still discards empty pages and
	// shrinks its heap, but occupied pages evict unprocessed and
	// collections touch evicted pages. This is the "BC w/Resizing only"
	// variant of Figure 5.
	ResizeOnly bool
	// Victim selects the eviction-victim strategy (§7).
	Victim VictimPolicy
	// Regrow lets BC raise its footprint target again when the VMM
	// reports free memory (§7: transient pressure should not permanently
	// limit throughput).
	Regrow bool

	// NoAggressiveDiscard disables the §3.4.3 word-at-a-time discard:
	// each notification hands back at most one empty page. An ablation of
	// the design choice DESIGN.md calls out.
	NoAggressiveDiscard bool

	// debugNoDiscard disables empty-page discarding entirely (used by the
	// safepoint regression test and as a further ablation point).
	debugNoDiscard bool
}

// BC is the bookmarking collector.
type BC struct {
	gc.Base
	gc.Mature
	nursery *heap.BumpSpace
	remset  *gc.RemSet
	cfg     Config

	// Page state as BC tracks it (§3.3.1). resident approximates "backed
	// by a frame"; evicted is exact for pages BC has surrendered.
	resident  *mem.Bitmap
	evicted   *mem.Bitmap
	processed *mem.Bitmap // pages whose eviction-scan set bookmarks

	// pageTargets records, per processed page, which superpages (by
	// index) and LOS objects had their incoming counts raised, so the
	// reload path decrements exactly what eviction incremented. The real
	// implementation re-derives this by rescanning the reloaded page;
	// keeping the record exact avoids drift for objects straddling pages.
	pageTargets map[mem.PageID]*pageRecord

	// deferredTargets holds records whose page has reloaded but whose
	// release had to wait: an object the record covers still straddles
	// an evicted page, so the edges recorded for it are not scannable
	// yet. Releasing early would let a reload of the header's page drop
	// the incoming counters protecting targets reachable only through
	// slots that are still paged out.
	deferredTargets map[mem.PageID]*pageRecord

	losIncoming map[objmodel.Ref]int // incoming bookmark counts, LOS objects

	discardCredit int // aggressive-discard slack (§3.4.3)
	discardCursor int // rotating scan position for discardable pages

	inGC          bool
	pendingGC     bool   // eviction handler requested a collection (§3.3.2)
	allocsSinceGC uint64 // mutator progress since the last handler-triggered GC

	// gcRequestAfter is the allocation progress required before the
	// eviction handler may request another collection. It starts at
	// minGCRequestAfter and doubles each time a requested collection
	// frees no pages (the mutator is retaining everything), so repeated
	// no-progress requests back off instead of livelocking the run in
	// futile full collections.
	gcRequestAfter uint64

	evictedHeapPg int // count of evicted heap pages

	// silentEvictions counts pages the residency audit found evicted
	// without notification (audit.go). Past silentEvictionLimit the
	// kernel is untrusted and every full collection is the fail-safe.
	silentEvictions int

	// booksValid is false between a fail-safe collection (§3.5), which
	// discards all bookmark state, and the first collection that ends
	// with no pages evicted. While false, BC behaves like the resize-only
	// variant — pages evict unprocessed and collections touch evicted
	// pages — because the in-memory-collection invariant (every evicted
	// page's outgoing references are counted and its objects bookmarked)
	// no longer holds.
	booksValid bool

	// curWork/curEpoch expose the active full-collection worklist to the
	// eviction handler: a target bookmarked mid-collection must still be
	// marked and scanned by the collection in progress, or its children
	// could be swept while reachable only through the evicted page (the
	// sound form of the paper's preventive bookmarking, §3.4.3).
	curWork  *gc.WorkList
	curEpoch uint32

	// nurseryPtrCache memoizes the "does this mature page hold a nursery
	// pointer" veto scan. Entries are invalidated when a nursery pointer
	// is stored to the page and the cache is dropped whenever the nursery
	// empties, so a cached false verdict is always sound.
	nurseryPtrCache map[mem.PageID]bool

	// afterGC, when set, runs at the end of every collection, books
	// settled (OnCollectionEnd). Harnesses hang invariant checks on it.
	afterGC func()
}

type pageRecord struct {
	supers []int32
	los    []objmodel.Ref
}

var _ gc.Collector = (*BC)(nil)

// New creates a bookmarking collector on env and registers it for paging
// notifications.
func New(env *gc.Env, cfg Config) *BC {
	c := &BC{
		Base:            gc.Base{E: env},
		nursery:         heap.NewBumpSpace(env.Space, env.Layout.Bump0Base, env.Layout.Bump0End),
		cfg:             cfg,
		resident:        mem.NewBitmap(env.Space.Pages()),
		evicted:         mem.NewBitmap(env.Space.Pages()),
		processed:       mem.NewBitmap(env.Space.Pages()),
		pageTargets:     make(map[mem.PageID]*pageRecord),
		deferredTargets: make(map[mem.PageID]*pageRecord),
		losIncoming:     make(map[objmodel.Ref]int),
		allocsSinceGC:   1 << 20,
		gcRequestAfter:  minGCRequestAfter,
		nurseryPtrCache: make(map[mem.PageID]bool),
		booksValid:      true,
	}
	c.Mature = gc.NewMature(env)
	c.SS.SetResidencyFilter(c.pageOK)
	c.nursery.SetCounters(env.Counters)
	c.remset = gc.NewRemSet(env.Layout.MatureBase, env.Layout.LOSEnd, gc.EntriesPerPage)
	c.remset.SetCounters(env.Counters)
	c.remset.SetFilter(func(slot mem.Addr) bool {
		return c.nursery.Contains(c.E.Space.ReadAddr(slot))
	})
	// The paper's shrink-to-footprint/regrow rule is BC's native heap
	// policy; install it unless the harness chose another.
	if env.HeapPolicy == nil {
		env.HeapPolicy = heappolicy.NewBCShrink(heappolicy.BCShrinkOptions{Regrow: cfg.Regrow})
	}
	env.Proc.Register((*bcHandler)(c))
	c.resizeNursery()
	return c
}

// Name implements gc.Collector.
func (c *BC) Name() string {
	if c.cfg.ResizeOnly {
		return "BCResizeOnly"
	}
	return "BC"
}

// UsedPages implements gc.Collector.
func (c *BC) UsedPages() int { return c.MatureUsedPages() + c.nursery.UsedPages() }

// pageOK reports whether BC may touch page p: anything it has not seen
// evicted (§3.3.1 — the bit array consulted instead of the kernel). The
// resize-only variant has no bookmarks to fall back on, so it touches
// evicted pages like any other collector and pageOK is always true.
func (c *BC) pageOK(p mem.PageID) bool {
	return c.cfg.ResizeOnly || !c.booksValid || !c.evicted.Test(int(p))
}

// budget returns the effective heap budget in pages: the configured
// size, squeezed by the heap policy (for BC's default bc-shrink, by
// memory pressure, §3.3.3), but never below what live mature data plus
// a minimal nursery requires — BC grows at the cost of paging only
// when needed for completion.
func (c *BC) budget() int {
	return c.E.HeapBudget(c.MatureUsedPages() + gc.MinNurseryPages)
}

// resetNursery empties the nursery after a collection and drops the
// structures keyed to its contents: the remembered set and the
// nursery-pointer page cache.
func (c *BC) resetNursery() {
	c.nursery.Reset()
	c.remset.Clear()
	clear(c.nurseryPtrCache)
}

// reservePages is the empty-page reserve of §3.4.3: a store of empty,
// memory-resident pages kept beyond the nursery budget. When the VMM
// schedules evictions while a collection is running (or faster than BC
// can react), these absorb the pressure — BC discards them instead of
// surrendering occupied pages mid-collection.
const reservePages = 128

// resizeNursery applies the Appel policy within the effective budget and
// replenishes the empty-page reserve.
func (c *BC) resizeNursery() {
	free := c.budget() - c.MatureUsedPages()
	if free < gc.MinNurseryPages {
		free = gc.MinNurseryPages
	}
	c.nursery.SetBudget(uint64(free) * mem.PageSize)

	// Replenish the reserve: touch pages just beyond the nursery budget
	// so they are resident and empty — pageDiscardable recognizes any
	// nursery-region page past the frontier, so the eviction handler
	// hands these out first (§3.4.3).
	limit := c.nursery.Base() + mem.Addr(c.nursery.Budget())
	for i := 0; i < reservePages; i++ {
		a := limit + mem.Addr(i)*mem.PageSize
		if !c.nursery.Contains(a) {
			break
		}
		p := a.Page()
		if c.evicted.Test(int(p)) || c.resident.Test(int(p)) {
			continue
		}
		c.E.Proc.Touch(p, false)
		c.resident.Set(int(p))
	}
}

// markRangeResident updates the residency bit array for [a, a+bytes).
func (c *BC) markRangeResident(a mem.Addr, bytes int) {
	first, last := mem.PagesIn(a, uint64(bytes))
	for p := first; p <= last; p++ {
		if c.evicted.Test(int(p)) {
			// Writing here would have major-faulted and the reload
			// handler already fixed the books; nothing to do.
			continue
		}
		c.resident.Set(int(p))
	}
}

// Alloc implements gc.Collector. The escalation ladder is the paper's:
// nursery collection, then full mark-sweep, then compaction (§3.2), then
// the completeness fail-safe (§3.5).
func (c *BC) Alloc(t *objmodel.Type, arrayLen int) objmodel.Ref {
	if c.pendingGC {
		// The eviction handler asked for a collection; this is the first
		// safepoint since. Freshly emptied pages become discardable for
		// the next notifications (§3.3.2).
		c.pendingGC = false
		before := c.UsedPages()
		c.Collect(true)
		if c.UsedPages() >= before {
			// The requested collection freed nothing: the mutator is
			// retaining what it allocates, and asking again soon cannot
			// help. Require more allocation progress each time.
			if c.gcRequestAfter < maxGCRequestAfter {
				c.gcRequestAfter *= 2
				c.E.Counters.Inc(trace.CGCRequestBackoffs)
			}
		} else {
			c.gcRequestAfter = minGCRequestAfter
		}
	}
	total := t.TotalBytes(arrayLen)
	_, small := c.E.Classes.ForSize(total)
	for attempt := 0; ; attempt++ {
		var o objmodel.Ref
		if small {
			o = c.nursery.Alloc(t, arrayLen)
		} else {
			o = c.AllocMature(c.E, t, arrayLen, c.budget(), c.nursery.UsedPages())
		}
		if o != mem.Nil {
			c.markRangeResident(o, total)
			c.CountAlloc(t, arrayLen)
			c.allocsSinceGC++
			c.maybeRegrow()
			return o
		}
		switch attempt {
		case 0:
			c.Collect(false)
		case 1:
			c.Collect(true)
		case 2:
			c.compact()
		case 3:
			if c.evictedHeapPg > 0 && !c.cfg.ResizeOnly {
				c.failSafe()
			}
		case 4:
			// Evicted pages force compaction targets and pin garbage via
			// bookmarks; after the fail-safe reloaded and unbookmarked
			// everything, one more compaction can finally densify.
			c.compact()
		default:
			panic(gc.ErrOutOfMemory{
				Collector: c.Name(),
				HeapPages: c.budget(),
				Detail: fmt.Sprintf("mature=%dp los=%dp nursery=%dp supers=%d evicted=%dp need=%dB",
					c.SS.UsedPages(), c.LOS.UsedPages(), c.nursery.UsedPages(),
					c.SS.InUseSupers(), c.evictedHeapPg, total),
			})
		}
	}
}

// ReadRef implements gc.Collector.
func (c *BC) ReadRef(o objmodel.Ref, i int) objmodel.Ref { return c.ReadRefRaw(o, i) }

// WriteRef implements gc.Collector with the generational write barrier
// feeding the page-sized write buffer (§3.1).
func (c *BC) WriteRef(o objmodel.Ref, i int, v objmodel.Ref) {
	slot := c.WriteRefRaw(o, i, v)
	if v != mem.Nil && c.nursery.Contains(v) && !c.nursery.Contains(o) {
		c.remset.Record(slot)
		delete(c.nurseryPtrCache, slot.Page()) // a cached "no nursery pointer" verdict just became false
	}
}

// minGCRequestAfter / maxGCRequestAfter bound the allocation-progress
// threshold for handler-requested collections (see gcRequestAfter).
const (
	minGCRequestAfter = 512
	maxGCRequestAfter = 1 << 16
)

// OnCollectionEnd registers fn to run at the end of every collection
// (nursery, full, compaction, fail-safe), after the books are settled but
// within the pause. Harnesses use it to check invariants after each GC;
// fn must not allocate through the collector.
func (c *BC) OnCollectionEnd(fn func()) { c.afterGC = fn }

// collectionDone fires the OnCollectionEnd hook.
func (c *BC) collectionDone() {
	if c.afterGC != nil {
		c.afterGC()
	}
}

// Collect implements gc.Collector.
func (c *BC) Collect(full bool) {
	if c.inGC {
		return
	}
	// Before trusting any of the books, reconcile them with the kernel:
	// pages may have left or returned without the notifications that
	// normally keep the bit arrays true (audit.go).
	c.auditResidency()
	if full {
		c.fullGC()
	} else {
		c.nurseryGC()
		if c.budget()-c.MatureUsedPages() <= gc.MinNurseryPages {
			c.fullGC()
		}
	}
	// Rate-driven policies (membalancer, composed) recompute their
	// target from post-GC live size and cost; bc-shrink ignores this.
	gc.ObserveHeapPolicy(c, heappolicy.EvGCEnd, -1)
	c.resizeNursery()
}

// scanLive visits o's reference slots, skipping slots that lie on evicted
// pages (their targets were bookmarked when those pages left, §3.4.1) and
// targets whose header page is evicted.
func (c *BC) scanLive(o objmodel.Ref, fn func(slot mem.Addr, tgt objmodel.Ref)) {
	t, n := c.E.Types.TypeOf(c.E.Space, o)
	for i := 0; i < t.NumRefSlots(n); i++ {
		slot := t.RefSlotAddr(o, i)
		if !c.pageOK(slot.Page()) {
			continue
		}
		tgt := c.E.Space.ReadAddr(slot)
		if tgt == mem.Nil || !c.pageOK(tgt.Page()) {
			continue
		}
		fn(slot, tgt)
	}
}

// copyToMature evacuates a nursery survivor into the mature space,
// allocating only on resident pages (the residency filter is installed on
// the superpage space).
func (c *BC) copyToMature(o objmodel.Ref, work *gc.WorkList) objmodel.Ref {
	if objmodel.Forwarded(c.E.Space, o) {
		return objmodel.ForwardAddr(c.E.Space, o)
	}
	t, n := c.E.Types.TypeOf(c.E.Space, o)
	dst := c.AllocMature(c.E, t, n, math.MaxInt, 0)
	if dst == mem.Nil {
		panic(gc.ErrOutOfMemory{Collector: c.Name(), HeapPages: c.budget()})
	}
	size := int(mem.RoundUpWord(uint64(t.TotalBytes(n))))
	gc.CopyObject(c.E.Space, o, dst, size)
	objmodel.Forward(c.E.Space, o, dst)
	c.markRangeResident(dst, size)
	c.invalidateNurseryPtrCache(dst, size)
	c.E.Counters.Add(trace.CPromotedBytes, uint64(size))
	work.Push(dst)
	return dst
}

// invalidateNurseryPtrCache drops the memoized "no nursery pointer"
// verdicts for every page a GC copy landed on. The copied fields may
// include not-yet-forwarded nursery references, which the mutator-side
// invalidation in WriteRef never sees; a stale false verdict here would
// let a mid-collection eviction process the page and silently drop those
// edges (bookmarks cannot point into the nursery).
func (c *BC) invalidateNurseryPtrCache(dst objmodel.Ref, size int) {
	for p := dst.Page(); p <= (dst + mem.Addr(size) - 1).Page(); p++ {
		delete(c.nurseryPtrCache, p)
	}
}

// nurseryGC copies nursery survivors into the mature space. Roots are the
// mutator roots, the write buffer, and the card table the buffer was
// filtered into (§3.1).
func (c *BC) nurseryGC() {
	c.inGC = true
	defer func() { c.inGC = false }()
	done := c.Stats().BeginPause(c.E, metrics.PauseNursery)
	defer done()
	gc.PauseClock(c.E, gc.PauseOverhead)
	c.Stats().Nursery++
	c.E.Trace.Begin(trace.PhaseNurseryScan)
	defer c.E.Trace.End(trace.PhaseNurseryScan)

	work := c.E.GetWorkList()
	defer c.E.PutWorkList(work)
	fwd := func(slot mem.Addr, tgt objmodel.Ref) {
		if c.nursery.Contains(tgt) {
			c.E.Space.WriteAddr(slot, c.copyToMature(tgt, work))
		}
	}
	c.remset.ForEachSlot(func(slot mem.Addr) {
		if !c.pageOK(slot.Page()) {
			return // the slot's page was evicted; it held no nursery pointer
		}
		if tgt := c.E.Space.ReadAddr(slot); tgt != mem.Nil {
			fwd(slot, tgt)
		}
	})
	c.remset.ForEachCard(func(start, end mem.Addr) {
		c.scanCard(start, end, fwd)
	})
	c.E.Trace.Begin(trace.PhaseRootScan)
	c.Roots().ForEach(func(slot *mem.Addr) {
		if c.nursery.Contains(*slot) {
			*slot = c.copyToMature(*slot, work)
		}
	})
	c.E.Trace.End(trace.PhaseRootScan)
	for {
		o, ok := work.Pop()
		if !ok {
			break
		}
		// Fresh copies live on resident pages, but their slots may point
		// anywhere; only nursery targets matter here.
		gc.ScanObject(c.E.Space, c.E.Types, o, fwd)
	}
	c.resetNursery()
	c.collectionDone()
}

// scanCard visits the objects overlapping a marked card and forwards
// their nursery references. Cards only ever cover resident pages: a page
// is scanned and protected before eviction, and pages holding nursery
// pointers are vetoed as victims.
func (c *BC) scanCard(start, end mem.Addr, fwd func(slot mem.Addr, tgt objmodel.Ref)) {
	if c.SS.Contains(start) {
		idx := c.SS.SuperIndex(start)
		if !c.SS.Used(idx) {
			return
		}
		c.SS.ObjectsOverlappingRange(idx, start, end, func(o objmodel.Ref) {
			if c.pageOK(o.Page()) {
				c.scanLive(o, fwd)
			}
		})
		return
	}
	if o, ok := c.LOS.ObjectContaining(start); ok {
		if c.pageOK(o.Page()) {
			c.scanLive(o, fwd)
		}
	}
}

// bookmarkRoots marks every memory-resident bookmarked object as if it
// were root-referenced, scanning only superpages with a nonzero incoming
// bookmark count (§3.4.1), plus bookmarked large objects.
func (c *BC) bookmarkRoots(work *gc.WorkList, epoch uint32) {
	c.SS.ForEachSuper(func(idx int, _ objmodel.SizeClass, _ objmodel.Kind) {
		if c.SS.Incoming(idx) == 0 && !c.superHasEvicted(idx) {
			return
		}
		c.SS.ForEachObjectIn(idx, func(o objmodel.Ref) {
			if !c.pageOK(o.Page()) {
				return
			}
			if objmodel.Bookmarked(c.E.Space, o) {
				gc.MarkStep(c.E, work, o, epoch)
			}
		})
	})
	for _, o := range c.sortedLOSBookmarks() {
		if c.pageOK(o.Page()) && objmodel.Bookmarked(c.E.Space, o) {
			gc.MarkStep(c.E, work, o, epoch)
		}
	}
}

// sortedLOSBookmarks returns the large objects with incoming bookmarks in
// address order, so traversal order — and therefore the simulated clock —
// does not depend on map iteration order.
func (c *BC) sortedLOSBookmarks() []objmodel.Ref {
	out := make([]objmodel.Ref, 0, len(c.losIncoming))
	for o := range c.losIncoming {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// superHasEvicted reports whether any page of superpage idx is evicted.
func (c *BC) superHasEvicted(idx int) bool {
	first, last := c.SS.PagesOf(idx)
	for p := first; p <= last; p++ {
		if c.evicted.Test(int(p)) {
			return true
		}
	}
	return false
}

// fullGC is the in-memory full-heap collection (§3.4.1): bookmarked
// objects are secondary roots, references to evicted pages are ignored,
// and only memory-resident pages are swept.
func (c *BC) fullGC() {
	if c.untrusted() && !c.cfg.ResizeOnly {
		// Notifications have proven untrustworthy (audit.go): the
		// bookmark invariant cannot be maintained, so every full
		// collection is the §3.5 fail-safe from here on.
		c.E.Counters.Inc(trace.CFailSafesForced)
		c.failSafe()
		return
	}
	c.inGC = true
	defer func() { c.inGC = false }()
	done := c.Stats().BeginPause(c.E, metrics.PauseFull)
	defer done()
	gc.PauseClock(c.E, gc.PauseOverhead)
	c.Stats().Full++

	epoch := c.NextEpoch()
	work := c.E.GetWorkList()
	defer c.E.PutWorkList(work)
	c.curWork, c.curEpoch = work, epoch
	defer func() { c.curWork = nil }()
	c.E.Trace.Begin(trace.PhaseMark)
	if c.evictedHeapPg > 0 && !c.cfg.ResizeOnly && c.booksValid {
		c.bookmarkRoots(work, epoch)
	}
	forward := func(o objmodel.Ref) objmodel.Ref {
		if c.nursery.Contains(o) {
			dst := c.copyToMature(o, work)
			objmodel.SetMark(c.E.Space, dst, epoch)
			return dst
		}
		if !c.pageOK(o.Page()) {
			return o // never touch evicted pages
		}
		gc.MarkStep(c.E, work, o, epoch)
		return o
	}
	c.E.Trace.Begin(trace.PhaseRootScan)
	c.Roots().ForEach(func(slot *mem.Addr) {
		*slot = forward(*slot)
	})
	c.E.Trace.End(trace.PhaseRootScan)
	// Parallel work-stealing trace (DESIGN.md §11) with scanLive's edge
	// policy: slots and targets on evicted pages are skipped, nursery
	// targets are deferred for sequential evacuation between rounds. The
	// residency books only change during the sequential replay/evacuation
	// steps (eviction handlers fire there, injecting into curWork — this
	// same worklist — as next-round seeds), so pageOK is stable while the
	// workers run. SkipObj re-applies the evicted-while-queued check each
	// round, like the sequential pop loop did.
	cfg := &gc.ParMarkConfig{
		Epoch:  epoch,
		SlotOK: func(slot mem.Addr) bool { return c.pageOK(slot.Page()) },
		Classify: func(tgt objmodel.Ref) gc.EdgeAction {
			if !c.pageOK(tgt.Page()) {
				return gc.EdgeSkip // never touch evicted pages
			}
			if c.nursery.Contains(tgt) {
				return gc.EdgeDefer
			}
			return gc.EdgeMark
		},
		SkipObj: func(o objmodel.Ref) bool { return !c.pageOK(o.Page()) },
	}
	c.E.Marker().Mark(cfg, work, func(e gc.DeferredEdge, w *gc.WorkList) {
		dst := c.copyToMature(e.Target, w)
		objmodel.SetMark(c.E.Space, dst, epoch)
		if dst != e.Target {
			c.E.Space.WriteAddr(e.Slot, dst)
		}
	})
	c.E.Trace.End(trace.PhaseMark)
	c.E.Trace.Begin(trace.PhaseSweep)
	c.SS.Sweep(epoch)
	c.LOS.Sweep(epoch, c.pageOK)
	c.E.Trace.End(trace.PhaseSweep)
	c.resetNursery()
	c.maybeRevalidate()
	c.collectionDone()
}

// maybeRevalidate restores cooperative mode once nothing is evicted: the
// bookmark invariant then holds trivially. An untrusted kernel (audit.go)
// never revalidates — pages will keep leaving without notice, so freshly
// rebuilt books would be wrong again immediately.
func (c *BC) maybeRevalidate() {
	if !c.booksValid && c.evictedHeapPg == 0 && !c.untrusted() {
		c.booksValid = true
	}
}
