package core

import (
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
)

// failSafe preserves completeness (§3.5): when the heap is exhausted and
// bookmarks may be keeping garbage alive, BC discards every bookmark and
// performs an ordinary full-heap collection that touches evicted pages —
// the worst case for BC, and the common case for every other collector.
// The page faults this takes are charged to the pause like any other.
func (c *BC) failSafe() {
	c.auditResidency()
	c.inGC = true
	defer func() { c.inGC = false }()
	done := c.Stats().BeginPause(c.E, metrics.PauseFull)
	defer done()
	gc.PauseClock(c.E, gc.PauseOverhead)
	c.Stats().FailSafe++
	c.Stats().Full++
	c.booksValid = false
	c.E.Trace.Begin(trace.PhaseFailSafe)
	defer c.E.Trace.End(trace.PhaseFailSafe)

	// Discard every bookmark and incoming count. Clearing a bookmark on
	// an evicted page touches it — that is the point of the fail-safe.
	// The books are zeroed first so the reloads triggered below do not
	// try to rebalance counters.
	c.pageTargets = make(map[mem.PageID]*pageRecord)
	c.deferredTargets = make(map[mem.PageID]*pageRecord)
	c.processed.ClearAll()
	for _, o := range c.sortedLOSBookmarks() {
		delete(c.losIncoming, o)
		objmodel.ClearBookmark(c.E.Space, o)
	}
	c.SS.ForEachSuper(func(idx int, _ objmodel.SizeClass, _ objmodel.Kind) {
		if c.SS.Incoming(idx) > 0 {
			c.SS.SetIncoming(idx, 0)
		}
		c.SS.ForEachObjectIn(idx, func(o objmodel.Ref) {
			if objmodel.Bookmarked(c.E.Space, o) {
				objmodel.ClearBookmark(c.E.Space, o)
			}
		})
	})

	// An ordinary full-heap mark-sweep, following every reference. The
	// residency filter is bypassed by lifting the evicted view: reloads
	// driven by the trace update the bitmaps through the handler.
	epoch := c.NextEpoch()
	c.E.Trace.Begin(trace.PhaseMark)
	work := c.E.GetWorkList()
	defer c.E.PutWorkList(work)
	forward := func(o objmodel.Ref) objmodel.Ref {
		if c.nursery.Contains(o) {
			dst := c.copyToMature(o, work)
			objmodel.SetMark(c.E.Space, dst, epoch)
			return dst
		}
		gc.MarkStep(c.E, work, o, epoch)
		return o
	}
	c.E.Trace.Begin(trace.PhaseRootScan)
	c.Roots().ForEach(func(slot *mem.Addr) {
		*slot = forward(*slot)
	})
	c.E.Trace.End(trace.PhaseRootScan)
	// Parallel work-stealing trace (DESIGN.md §11) with no residency
	// filtering — the fail-safe follows every reference. Workers read the
	// heap's backing words raw (eviction preserves page content), and the
	// canonical touch replay is what pays the reload faults; nursery edges
	// are deferred and evacuated sequentially between rounds. curWork
	// stays nil here, matching the sequential fail-safe: the handler does
	// not inject mark work during this collection.
	cfg := &gc.ParMarkConfig{
		Epoch: epoch,
		Classify: func(tgt objmodel.Ref) gc.EdgeAction {
			if c.nursery.Contains(tgt) {
				return gc.EdgeDefer
			}
			return gc.EdgeMark
		},
	}
	c.E.Marker().Mark(cfg, work, func(e gc.DeferredEdge, w *gc.WorkList) {
		dst := c.copyToMature(e.Target, w)
		objmodel.SetMark(c.E.Space, dst, epoch)
		if dst != e.Target {
			c.E.Space.WriteAddr(e.Slot, dst)
		}
	})
	c.E.Trace.End(trace.PhaseMark)
	// Sweep everything, residency regardless.
	c.E.Trace.Begin(trace.PhaseSweep)
	c.SS.SetResidencyFilter(nil)
	c.SS.Sweep(epoch)
	c.SS.SetResidencyFilter(c.pageOK)
	c.LOS.Sweep(epoch, nil)
	c.E.Trace.End(trace.PhaseSweep)
	c.resetNursery()
	c.resizeNursery()
	c.maybeRevalidate()
	c.collectionDone()
}
