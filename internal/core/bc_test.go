package core

import (
	"math/rand"
	"testing"

	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/vmm"
)

// newBC builds a BC on a machine with physMB of RAM and a heapMB budget.
// Every collection the BC performs is followed by a CheckInvariants
// audit, so any regression test that corrupts the books fails at the
// collection that corrupted them, not at its final assertion.
func newBC(t testing.TB, physMB, heapMB int, cfg Config) (*vmm.VMM, *BC, *objmodel.Type, *objmodel.Type, *objmodel.Type) {
	t.Helper()
	clock := vmm.NewClock()
	v := vmm.New(clock, uint64(physMB)<<20, vmm.DefaultCosts())
	env := gc.NewEnv(v, "bc-test", uint64(heapMB)<<20)
	node := env.Types.Scalar("node", 4, 0, 1)
	refArr := env.Types.Array("refArr", true)
	dataArr := env.Types.Array("dataArr", false)
	c := New(env, cfg)
	c.OnCollectionEnd(func() {
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("invariants after collection: %v", err)
		}
	})
	return v, c, node, refArr, dataArr
}

func TestBCBasicAllocAndCollect(t *testing.T) {
	_, c, node, _, _ := newBC(t, 512, 16, Config{})
	o := c.Alloc(node, 0)
	c.WriteData(o, 2, 5)
	slot := c.Roots().Add(o)
	c.Collect(false)
	c.Collect(true)
	if got := c.ReadData(c.Roots().Get(slot), 2); got != 5 {
		t.Fatalf("data = %d", got)
	}
	if c.Stats().Nursery != 1 || c.Stats().Full != 1 {
		t.Fatalf("stats: %+v", *c.Stats())
	}
}

// buildList allocates an n-node linked list with data checksums; returns
// the head's root slot.
func buildList(c gc.Collector, node *objmodel.Type, n int, seed uint64) int {
	head := c.Roots().Add(mem.Nil)
	for i := 0; i < n; i++ {
		o := c.Alloc(node, 0)
		c.WriteData(o, 2, seed+uint64(i))
		if prev := c.Roots().Get(head); prev != mem.Nil {
			c.WriteRef(o, 0, prev)
		}
		c.Roots().Set(head, o)
	}
	return head
}

// checkList verifies the list built by buildList.
func checkList(t *testing.T, c gc.Collector, head int, n int, seed uint64) {
	t.Helper()
	o := c.Roots().Get(head)
	for i := n - 1; i >= 0; i-- {
		if o == mem.Nil {
			t.Fatalf("list truncated at %d", i)
		}
		if got := c.ReadData(o, 2); got != seed+uint64(i) {
			t.Fatalf("node %d: data %d, want %d", i, got, seed+uint64(i))
		}
		o = c.ReadRef(o, 0)
	}
	if o != mem.Nil {
		t.Fatal("list longer than built")
	}
}

func TestBCChurnNoPressure(t *testing.T) {
	_, c, node, _, dataArr := newBC(t, 512, 8, Config{})
	head := buildList(c, node, 2000, 7)
	for i := 0; i < 300000; i++ {
		c.Alloc(node, 0)
		if i%200 == 0 {
			c.Alloc(dataArr, 500)
		}
	}
	checkList(t, c, head, 2000, 7)
	if c.Stats().Nursery == 0 {
		t.Fatal("no nursery collections")
	}
	// Without memory pressure there must be no bookmarking at all.
	if c.Stats().PagesEvicted != 0 || c.Stats().Bookmarked != 0 {
		t.Fatalf("bookmarking happened without pressure: %+v", *c.Stats())
	}
}

func TestBCCompactionReclaimsFragmentation(t *testing.T) {
	_, c, node, _, dataArr := newBC(t, 512, 6, Config{})
	// Build a fragmented mature space: allocate long-lived arrays, force
	// promotion, then drop most of them.
	var slots []int
	for i := 0; i < 1500; i++ {
		slots = append(slots, c.Roots().Add(c.Alloc(dataArr, 120))) // ~1KB each
	}
	c.Collect(true) // promote all
	// Free all but every 16th: superpages become sparsely occupied.
	for i, s := range slots {
		if i%16 != 0 {
			c.Roots().Release(s)
		}
	}
	before := c.MatureUsedPages()
	// Now demand enough space that mark-sweep alone cannot satisfy: the
	// allocation ladder must reach compaction rather than OOM.
	head := buildList(c, node, 100, 3)
	for i := 0; i < 1200; i++ {
		c.Roots().Add(c.Alloc(dataArr, 120))
	}
	checkList(t, c, head, 100, 3)
	if c.Stats().Compactions == 0 {
		t.Logf("note: no compaction needed (mature %d -> %d pages)", before, c.MatureUsedPages())
	}
	// Survivor data must be intact regardless.
	for i, s := range slots {
		if i%16 == 0 {
			o := c.Roots().Get(s)
			if got := c.ReadData(o, 0); got != 0 {
				t.Fatalf("array %d corrupted", i)
			}
		}
	}
}

// pressurize pins frames (as the paper's signalmem does) until the rest
// of the system — the heap included — can keep at most keepPages frames
// resident. Pinning past the free pool forces reclaim to evict heap
// pages.
func pressurize(v *vmm.VMM, keepPages int) {
	want := v.FreeFrames() + v.UsedFrames() - keepPages
	if want > 0 {
		v.Pin(want)
	}
}

func TestBCSurvivesMemoryPressure(t *testing.T) {
	v, c, node, _, _ := newBC(t, 64, 16, Config{})
	head := buildList(c, node, 30000, 11) // ~1.4 MB live
	c.Collect(true)                       // promote
	// Squeeze physical memory well below the heap's footprint.
	pressurize(v, 256)
	// Keep allocating; BC must discard/bookmark its way through.
	for i := 0; i < 200000; i++ {
		c.Alloc(node, 0)
	}
	checkList(t, c, head, 30000, 11)
	if v.Stats().Evictions == 0 {
		t.Fatal("no evictions despite pressure")
	}
}

func TestBCBookmarksUnderSeverePressure(t *testing.T) {
	v, c, node, _, _ := newBC(t, 48, 24, Config{})
	// Live data big enough that after pinning, part of the heap MUST be
	// evicted (discarding empties won't be enough).
	head := buildList(c, node, 120000, 13) // ~5.8 MB live
	c.Collect(true)
	pressurize(v, 200) // ~0.8 MB free: live data cannot all stay
	// Touch the head region and allocate to force paging decisions.
	for i := 0; i < 150000; i++ {
		c.Alloc(node, 0)
	}
	if c.Stats().PagesEvicted == 0 {
		t.Fatal("severe pressure but BC never bookmarked a page")
	}
	if c.Stats().Bookmarked == 0 {
		t.Fatal("pages evicted but no objects bookmarked")
	}
	// Full GCs during pressure must not have touched evicted pages:
	// major faults during full pauses should be zero (BC's core claim).
	for _, p := range c.Stats().Timeline.Pauses {
		if p.MajorFaults > 0 && c.Stats().FailSafe == 0 {
			t.Fatalf("GC pause took %d major faults without fail-safe", p.MajorFaults)
		}
	}
	// The full list must still be intact (bookmarked objects kept alive,
	// evicted data faulted back correctly).
	checkList(t, c, head, 120000, 13)
}

func TestBCReloadClearsBookmarks(t *testing.T) {
	v, c, node, _, _ := newBC(t, 48, 24, Config{})
	head := buildList(c, node, 120000, 17)
	c.Collect(true)
	pressurize(v, 200)
	for i := 0; i < 100000; i++ {
		c.Alloc(node, 0)
	}
	if c.Stats().PagesEvicted == 0 {
		t.Skip("no evictions; nothing to reload")
	}
	evicted := c.evictedHeapPg
	// Walking the whole list reloads every evicted page.
	checkList(t, c, head, 120000, 17)
	if c.evictedHeapPg >= evicted && evicted > 0 {
		// Some pages may be re-evicted while walking, but the books must
		// still balance: every processed page record must correspond to a
		// page currently marked processed.
		for p := range c.pageTargets {
			if !c.processed.Test(int(p)) {
				t.Fatalf("page %d has a target record but is not processed", p)
			}
		}
	}
}

func TestBCFailSafePreservesCompleteness(t *testing.T) {
	v, c, node, _, _ := newBC(t, 48, 10, Config{})
	head := buildList(c, node, 60000, 19) // ~2.9 MB live in a 10 MB heap
	c.Collect(true)
	pressurize(v, 150)
	// Churn a second structure repeatedly so bookmarked garbage builds
	// up; the tight heap should eventually force the fail-safe (or at
	// least keep the runtime alive).
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("BC died under pressure: %v", r)
		}
	}()
	for round := 0; round < 8; round++ {
		tmp := buildList(c, node, 30000, uint64(round))
		checkList(t, c, tmp, 30000, uint64(round))
		c.Roots().Release(tmp)
		t.Logf("round %d: stats %+v evicted=%d", round, struct {
			N, F, C, FS, PE uint64
		}{c.Stats().Nursery, c.Stats().Full, c.Stats().Compactions, c.Stats().FailSafe, c.Stats().PagesEvicted}, c.evictedHeapPg)
	}
	checkList(t, c, head, 60000, 19)
}

func TestBCResizeOnlyVariant(t *testing.T) {
	v, c, node, _, _ := newBC(t, 48, 24, Config{ResizeOnly: true})
	head := buildList(c, node, 120000, 23)
	c.Collect(true)
	pressurize(v, 200)
	for i := 0; i < 100000; i++ {
		c.Alloc(node, 0)
	}
	if c.Name() != "BCResizeOnly" {
		t.Fatal("wrong name")
	}
	if c.Stats().Bookmarked != 0 {
		t.Fatal("resize-only variant set bookmarks")
	}
	checkList(t, c, head, 120000, 23)
	if v.Stats().Evictions == 0 {
		t.Fatal("expected evictions under pressure")
	}
}

func TestBCShrinksFootprintUnderPressure(t *testing.T) {
	v, c, node, _, _ := newBC(t, 64, 32, Config{})
	buildListNoCheck := func(n int) {
		for i := 0; i < n; i++ {
			c.Alloc(node, 0)
		}
	}
	buildListNoCheck(100000)
	target0 := c.E.HeapPolicy.Target()
	pressurize(v, 128)
	buildListNoCheck(100000)
	if got := c.E.HeapPolicy.Target(); got >= target0 {
		t.Fatalf("footprint target did not shrink: %d -> %d", target0, got)
	}
	if c.budget() > c.E.HeapPages {
		t.Fatal("budget exceeds configured heap")
	}
}

func TestBCRegrowAfterTransientPressure(t *testing.T) {
	v, c, node, _, _ := newBC(t, 64, 32, Config{Regrow: true})
	for i := 0; i < 100000; i++ {
		c.Alloc(node, 0)
	}
	pressurize(v, 96)
	for i := 0; i < 100000; i++ {
		c.Alloc(node, 0)
	}
	shrunk := c.E.HeapPolicy.Target()
	if shrunk >= c.E.HeapPages {
		t.Skip("pressure did not shrink the target")
	}
	v.Unpin(v.PinnedFrames()) // pressure gone
	for i := 0; i < 400000; i++ {
		c.Alloc(node, 0)
	}
	if got := c.E.HeapPolicy.Target(); got <= shrunk {
		t.Fatalf("footprint target never regrew: stuck at %d", got)
	}
}

func TestBCRandomChurnUnderPressure(t *testing.T) {
	v, c, node, _, _ := newBC(t, 64, 24, Config{})
	rng := rand.New(rand.NewSource(7))
	const N = 48
	slots := make([]int, N)
	shadow := make([]uint64, N)
	for i := range slots {
		o := c.Alloc(node, 0)
		shadow[i] = rng.Uint64()
		c.WriteData(o, 2, shadow[i])
		slots[i] = c.Roots().Add(o)
	}
	pressurize(v, 512)
	for step := 0; step < 60000; step++ {
		switch rng.Intn(8) {
		case 0, 1, 2:
			c.Alloc(node, 0)
		case 3:
			i := rng.Intn(N)
			o := c.Alloc(node, 0)
			shadow[i] = rng.Uint64()
			c.WriteData(o, 2, shadow[i])
			c.Roots().Set(slots[i], o)
		case 4, 5:
			i, j, k := rng.Intn(N), rng.Intn(N), rng.Intn(2)
			c.WriteRef(c.Roots().Get(slots[i]), k, c.Roots().Get(slots[j]))
		case 6:
			i := rng.Intn(N)
			if got := c.ReadData(c.Roots().Get(slots[i]), 2); got != shadow[i] {
				t.Fatalf("step %d: slot %d = %#x want %#x", step, i, got, shadow[i])
			}
		case 7:
			if step%5000 == 7 {
				c.Collect(true)
			}
		}
	}
	for i := range slots {
		if got := c.ReadData(c.Roots().Get(slots[i]), 2); got != shadow[i] {
			t.Fatalf("final slot %d = %#x want %#x", i, got, shadow[i])
		}
	}
}

func TestBCVictimPolicyPointerFree(t *testing.T) {
	v, c, node, _, dataArr := newBC(t, 48, 24, Config{Victim: VictimPreferPointerFree})
	// Mix pointer-heavy and pointer-free mature data.
	head := buildList(c, node, 60000, 29)
	var arrs []int
	for i := 0; i < 400; i++ {
		arrs = append(arrs, c.Roots().Add(c.Alloc(dataArr, 800)))
	}
	c.Collect(true)
	pressurize(v, 200)
	for i := 0; i < 100000; i++ {
		c.Alloc(node, 0)
	}
	checkList(t, c, head, 60000, 29)
	for _, s := range arrs {
		_ = c.ReadData(c.Roots().Get(s), 0)
	}
	_ = v
}

func TestBCRemsetStaysSmall(t *testing.T) {
	// §3.1: the filtered write buffer should typically occupy one page.
	_, c, node, _, _ := newBC(t, 512, 16, Config{})
	old := c.Roots().Add(c.Alloc(node, 0))
	c.Collect(true) // promote
	for i := 0; i < 100000; i++ {
		y := c.Alloc(node, 0)
		c.WriteRef(c.Roots().Get(old), 0, y)
	}
	if got := c.remset.MaxBufferPages(); got > 1 {
		t.Fatalf("write buffer grew to %d pages", got)
	}
	if c.remset.Flushes() == 0 {
		t.Fatal("buffer never filtered")
	}
	// The card-table path must still keep old->young edges alive.
	y := c.Alloc(node, 0)
	c.WriteData(y, 2, 31)
	c.WriteRef(c.Roots().Get(old), 0, y)
	c.Collect(false)
	kept := c.ReadRef(c.Roots().Get(old), 0)
	if kept == mem.Nil || c.ReadData(kept, 2) != 31 {
		t.Fatal("old->young edge lost through card filtering")
	}
}
