package core

import (
	"testing"

	"bookmarkgc/internal/objmodel"
)

// establishBookmarks drives a BC into the bookmarked-and-evicted state:
// live data promoted to the mature space, physical memory squeezed, and
// allocation churn until pages have evicted with bookmarks set.
func establishBookmarks(t *testing.T) (*BC, *objmodel.Type, int) {
	t.Helper()
	v, c, node, _, _ := newBC(t, 48, 24, Config{})
	head := buildList(c, node, 120000, 23) // ~5.8 MB live
	c.Collect(true)
	pressurize(v, 200)
	for i := 0; i < 150000; i++ {
		c.Alloc(node, 0)
	}
	if c.Stats().PagesEvicted == 0 || c.Stats().Bookmarked == 0 {
		t.Fatal("setup failed to evict and bookmark pages")
	}
	return c, node, head
}

// countBookmarks tallies every bookmark artifact the fail-safe must
// discard: bookmark bits, per-superpage incoming counters, LOS incoming
// counts, processed-page bits, and page-target records.
func countBookmarks(c *BC) (bits, incoming, records int) {
	c.SS.ForEachSuper(func(idx int, _ objmodel.SizeClass, _ objmodel.Kind) {
		incoming += c.SS.Incoming(idx)
		c.SS.ForEachObjectIn(idx, func(o objmodel.Ref) {
			if c.pageOK(o.Page()) && objmodel.Bookmarked(c.E.Space, o) {
				bits++
			}
		})
	})
	for _, n := range c.losIncoming {
		incoming += n
	}
	records = len(c.pageTargets) + len(c.deferredTargets) + c.processed.Count()
	return
}

// TestFailSafeClearsAllBookmarks drives BC into the completeness
// fail-safe (§3.5) while evicted pages hold bookmarks, then checks the
// collection discarded every bookmark artifact and left the books
// balanced.
func TestFailSafeClearsAllBookmarks(t *testing.T) {
	c, _, head := establishBookmarks(t)
	if _, inc, rec := countBookmarks(c); inc == 0 && rec == 0 {
		t.Fatal("setup left no bookmark state to discard")
	}

	c.failSafe()

	if c.Stats().FailSafe != 1 {
		t.Fatalf("FailSafe = %d, want 1", c.Stats().FailSafe)
	}
	bits, inc, rec := countBookmarks(c)
	if bits != 0 || inc != 0 || rec != 0 {
		t.Fatalf("bookmark state survived fail-safe: bits=%d incoming=%d records=%d", bits, inc, rec)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after fail-safe: %v", err)
	}
	// The heap the fail-safe traced must still be the mutator's heap.
	checkList(t, c, head, 120000, 23)
}

// TestFailSafeHeapStillUsable checks BC keeps collecting normally after
// a fail-safe: the books were voided, so the next cycles must run in
// resize-only fashion until revalidation, without touching freed state.
func TestFailSafeHeapStillUsable(t *testing.T) {
	c, node, head := establishBookmarks(t)
	c.failSafe()
	for i := 0; i < 50000; i++ {
		c.Alloc(node, 0)
	}
	c.Collect(true)
	checkList(t, c, head, 120000, 23)
}
