package gc

import (
	"time"

	"bookmarkgc/internal/heap"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
)

// PauseOverhead is the fixed per-collection cost (thread stopping, root
// enumeration setup) charged to the simulated clock.
const PauseOverhead = 100 * time.Microsecond

// MinNurseryPages is the smallest useful nursery; when Appel-style sizing
// would go below it, a full collection runs instead.
const MinNurseryPages = 64 // 256 KB

// Base carries the plumbing every collector shares: environment, roots,
// statistics, the mark epoch, and barrier-free object access.
type Base struct {
	E     *Env
	roots Roots
	stats Stats
	epoch uint32
}

// Direct exposes the embedded Base. Data-word access carries no barrier
// in any collector (barriers interpose on reference stores only), so
// workload engines may devirtualize their per-access ReadData/WriteData
// calls through this — the simulated access sequence is identical, only
// the host-side interface dispatch goes away.
func (b *Base) Direct() *Base { return b }

// Roots implements the corresponding Collector method.
func (b *Base) Roots() *Roots { return &b.roots }

// Stats implements the corresponding Collector method.
func (b *Base) Stats() *Stats { return &b.stats }

// Env implements the corresponding Collector method.
func (b *Base) Env() *Env { return b.E }

// CountAlloc records an allocation in the stats.
func (b *Base) CountAlloc(t *objmodel.Type, arrayLen int) {
	b.stats.BytesAlloc += uint64(t.TotalBytes(arrayLen))
	b.stats.ObjectsAlloc++
}

// ReadRefRaw loads reference slot i of o with no barrier.
func (b *Base) ReadRefRaw(o objmodel.Ref, i int) objmodel.Ref {
	t, _ := b.E.Types.TypeOf(b.E.Space, o)
	return b.E.Space.ReadAddr(t.RefSlotAddr(o, i))
}

// WriteRefRaw stores into reference slot i of o with no barrier and
// returns the slot address (for barriers layered above).
func (b *Base) WriteRefRaw(o objmodel.Ref, i int, v objmodel.Ref) mem.Addr {
	t, _ := b.E.Types.TypeOf(b.E.Space, o)
	slot := t.RefSlotAddr(o, i)
	b.E.Space.WriteAddr(slot, v)
	return slot
}

// DataAddr returns the address of payload word d of o.
func DataAddr(o objmodel.Ref, d int) mem.Addr {
	return objmodel.Payload(o) + mem.Addr(d)*mem.WordSize
}

// ReadData implements the corresponding Collector method.
func (b *Base) ReadData(o objmodel.Ref, d int) uint64 {
	return b.E.Space.ReadWord(DataAddr(o, d))
}

// WriteData implements the corresponding Collector method.
func (b *Base) WriteData(o objmodel.Ref, d int, v uint64) {
	b.E.Space.WriteWord(DataAddr(o, d), v)
}

// NextEpoch advances the mark epoch, skipping zero (the "never marked"
// value fresh headers carry).
func (b *Base) NextEpoch() uint32 {
	b.epoch++
	if b.epoch == 0 || b.epoch > objmodel.MaxEpoch {
		b.epoch = 1
	}
	return b.epoch
}

// Epoch returns the current mark epoch.
func (b *Base) Epoch() uint32 { return b.epoch }

// Mature bundles the mark-sweep superpage space and the LOS shared by
// MarkSweep, CopyMS, GenMS, and the bookmarking collector.
type Mature struct {
	SS  *heap.SuperSpace
	LOS *heap.LOS
}

// NewMature builds the mature spaces over env's layout, wiring the
// environment's counter registry into them.
func NewMature(env *Env) Mature {
	m := Mature{
		SS:  heap.NewSuperSpace(env.Space, env.Classes, env.Layout.MatureBase, env.Layout.MatureEnd),
		LOS: heap.NewLOS(env.Space, env.Layout.LOSBase, env.Layout.LOSEnd),
	}
	m.SS.SetCounters(env.Counters)
	m.LOS.SetCounters(env.Counters)
	return m
}

// MatureUsedPages is the page footprint of the mature spaces.
func (m *Mature) MatureUsedPages() int { return m.SS.UsedPages() + m.LOS.UsedPages() }

// AllocMature places an object into the segregated-fit space or the LOS,
// acquiring superpages as needed, keeping the total footprint (mature +
// extraUsed) within budget pages. Returns mem.Nil when that would exceed
// the budget or space is exhausted.
func (m *Mature) AllocMature(env *Env, t *objmodel.Type, arrayLen int, budget int, extraUsed int) objmodel.Ref {
	total := t.TotalBytes(arrayLen)
	cl, small := env.Classes.ForSize(total)
	if !small {
		pages := int(mem.RoundUpPage(uint64(total)) / mem.PageSize)
		if m.MatureUsedPages()+extraUsed+pages > budget {
			return mem.Nil
		}
		return m.LOS.Alloc(t, arrayLen)
	}
	if o := m.SS.Alloc(t, arrayLen, cl); o != mem.Nil {
		return o
	}
	if m.MatureUsedPages()+extraUsed+mem.SuperPages > budget {
		return mem.Nil
	}
	if m.SS.AcquireSuper(cl, t.Kind) < 0 {
		return mem.Nil
	}
	return m.SS.Alloc(t, arrayLen, cl)
}

// MarkStep marks target in epoch if unmarked and pushes it for scanning.
func MarkStep(env *Env, work *WorkList, target objmodel.Ref, epoch uint32) {
	if objmodel.MarkIfUnmarked(env.Space, target, epoch) {
		work.Push(target)
	}
}

// MarkTrace drains the worklist, scanning each object and marking its
// targets. follow filters which targets to pursue (nil = all).
func MarkTrace(env *Env, work *WorkList, epoch uint32, follow func(objmodel.Ref) bool) {
	for {
		o, ok := work.Pop()
		if !ok {
			return
		}
		ScanObject(env.Space, env.Types, o, func(_ mem.Addr, tgt objmodel.Ref) {
			if follow != nil && !follow(tgt) {
				return
			}
			MarkStep(env, work, tgt, epoch)
		})
	}
}
