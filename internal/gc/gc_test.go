package gc

import (
	"testing"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/vmm"
)

func testEnv(t testing.TB) *Env {
	t.Helper()
	clock := vmm.NewClock()
	v := vmm.New(clock, 128<<20, vmm.DefaultCosts())
	return NewEnv(v, "gc-test", 8<<20)
}

func TestEnvWiring(t *testing.T) {
	env := testEnv(t)
	if env.HeapPages != (8<<20)/mem.PageSize {
		t.Fatalf("HeapPages = %d", env.HeapPages)
	}
	if env.Space.Size() == 0 || env.Classes.Len() == 0 {
		t.Fatal("env incomplete")
	}
	if env.Layout.Total == 0 {
		t.Fatal("layout missing")
	}
}

func TestRootsLifecycle(t *testing.T) {
	var r Roots
	a := r.Add(0x1000)
	b := r.Add(0x2000)
	if r.Get(a) != 0x1000 || r.Get(b) != 0x2000 {
		t.Fatal("Get wrong")
	}
	r.Set(a, 0x3000)
	if r.Get(a) != 0x3000 {
		t.Fatal("Set wrong")
	}
	r.Release(a)
	if r.Get(a) != mem.Nil {
		t.Fatal("Release did not nil the slot")
	}
	c := r.Add(0x4000)
	if c != a {
		t.Fatalf("freed slot not reused: %d vs %d", c, a)
	}
	n := 0
	r.ForEach(func(slot *mem.Addr) {
		n++
		if *slot == 0x2000 {
			*slot = 0x2008 // moving collectors update through the pointer
		}
	})
	if n != 2 {
		t.Fatalf("ForEach visited %d", n)
	}
	if r.Get(b) != 0x2008 {
		t.Fatal("ForEach update lost")
	}
}

func TestWorkList(t *testing.T) {
	var w WorkList
	if _, ok := w.Pop(); ok {
		t.Fatal("empty pop succeeded")
	}
	w.Push(1)
	w.Push(2)
	if w.Len() != 2 {
		t.Fatal("Len wrong")
	}
	o, ok := w.Pop()
	if !ok || o != 2 {
		t.Fatal("LIFO order broken")
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestScanObjectAndCopy(t *testing.T) {
	env := testEnv(t)
	node := env.Types.Scalar("node", 4, 1, 3)
	base := env.Layout.Bump0Base

	objmodel.ClearStatus(env.Space, base)
	objmodel.SetTypeWord(env.Space, base, node.ID, 0)
	env.Space.WriteAddr(node.RefSlotAddr(base, 0), 0x5000)
	env.Space.WriteAddr(node.RefSlotAddr(base, 1), mem.Nil) // skipped
	env.Space.WriteWord(DataAddr(base, 0), 77)

	var slots []mem.Addr
	var tgts []objmodel.Ref
	ScanObject(env.Space, env.Types, base, func(s mem.Addr, tgt objmodel.Ref) {
		slots = append(slots, s)
		tgts = append(tgts, tgt)
	})
	if len(slots) != 1 || tgts[0] != 0x5000 {
		t.Fatalf("ScanObject: %v %v", slots, tgts)
	}
	if got := ObjectBytes(env.Space, env.Types, base); got != node.TotalBytes(0) {
		t.Fatalf("ObjectBytes = %d", got)
	}

	dst := base + 4096
	CopyObject(env.Space, base, dst, node.TotalBytes(0))
	if env.Space.ReadWord(DataAddr(dst, 0)) != 77 {
		t.Fatal("CopyObject lost payload")
	}
	if objmodel.TypeID(env.Space, dst) != node.ID {
		t.Fatal("CopyObject lost header")
	}
}

func TestBaseAccessors(t *testing.T) {
	env := testEnv(t)
	node := env.Types.Scalar("node", 4, 0)
	b := &Base{E: env}

	o := objmodel.Ref(env.Layout.Bump0Base)
	objmodel.ClearStatus(env.Space, o)
	objmodel.SetTypeWord(env.Space, o, node.ID, 0)

	b.WriteRefRaw(o, 0, 0x7000)
	if got := b.ReadRefRaw(o, 0); got != 0x7000 {
		t.Fatalf("ReadRefRaw = %#x", got)
	}
	b.WriteData(o, 1, 42)
	if got := b.ReadData(o, 1); got != 42 {
		t.Fatalf("ReadData = %d", got)
	}
	b.CountAlloc(node, 0)
	if b.Stats().ObjectsAlloc != 1 || b.Stats().BytesAlloc == 0 {
		t.Fatal("CountAlloc wrong")
	}
	e1 := b.NextEpoch()
	e2 := b.NextEpoch()
	if e2 != e1+1 || b.Epoch() != e2 {
		t.Fatal("epoch sequence wrong")
	}
}

func TestEpochWraps(t *testing.T) {
	b := &Base{epoch: objmodel.MaxEpoch}
	if got := b.NextEpoch(); got != 1 {
		t.Fatalf("epoch after max = %d, want 1", got)
	}
}

func TestMatureAllocBudget(t *testing.T) {
	env := testEnv(t)
	node := env.Types.Scalar("node", 4, 0)
	big := env.Types.Array("big", false)
	m := NewMature(env)

	// Small alloc within budget acquires a superpage.
	o := m.AllocMature(env, node, 0, env.HeapPages, 0)
	if o == mem.Nil {
		t.Fatal("alloc failed")
	}
	if m.MatureUsedPages() != mem.SuperPages {
		t.Fatalf("used pages = %d", m.MatureUsedPages())
	}
	// Budget exactly consumed: next superpage acquisition must fail.
	if got := m.AllocMature(env, big, 4000, mem.SuperPages, 0); got != mem.Nil {
		t.Fatal("LOS alloc ignored budget")
	}
	// Large object within budget goes to the LOS.
	l := m.AllocMature(env, big, 4000, env.HeapPages, 0)
	if l == mem.Nil || !m.LOS.Contains(l) {
		t.Fatal("large object not in LOS")
	}
}

func TestMarkStepAndTrace(t *testing.T) {
	env := testEnv(t)
	node := env.Types.Scalar("node", 4, 0, 1)
	m := NewMature(env)
	a := m.AllocMature(env, node, 0, env.HeapPages, 0)
	b := m.AllocMature(env, node, 0, env.HeapPages, 0)
	c := m.AllocMature(env, node, 0, env.HeapPages, 0)
	env.Space.WriteAddr(node.RefSlotAddr(a, 0), b)
	env.Space.WriteAddr(node.RefSlotAddr(b, 1), c)

	var work WorkList
	MarkStep(env, &work, a, 5)
	MarkTrace(env, &work, 5, nil)
	for _, o := range []objmodel.Ref{a, b, c} {
		if !objmodel.Marked(env.Space, o, 5) {
			t.Fatalf("%#x unmarked", o)
		}
	}
	// A follow filter prunes the walk.
	var work2 WorkList
	MarkStep(env, &work2, a, 6)
	MarkTrace(env, &work2, 6, func(tgt objmodel.Ref) bool { return tgt != b })
	if objmodel.Marked(env.Space, b, 6) {
		t.Fatal("filtered target was marked")
	}
}

func TestRemSetUnbounded(t *testing.T) {
	r := NewRemSet(0, 1<<20, 0)
	for i := 0; i < 2000; i++ {
		r.Record(mem.Addr(i * 8))
	}
	if r.Size() != 2000 {
		t.Fatalf("Size = %d", r.Size())
	}
	if r.Flushes() != 0 {
		t.Fatal("unbounded buffer flushed")
	}
	n := 0
	r.ForEachSlot(func(mem.Addr) { n++ })
	if n != 2000 {
		t.Fatal("ForEachSlot wrong")
	}
	r.Clear()
	if r.Size() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestRemSetFilterIntoCards(t *testing.T) {
	r := NewRemSet(0, 1<<20, 4) // tiny buffer for the test
	keep := map[mem.Addr]bool{0x1000: true, 0x2000: true}
	r.SetFilter(func(slot mem.Addr) bool { return keep[slot] })
	r.Record(0x1000)
	r.Record(0x1800) // pruned at flush
	r.Record(0x2000)
	if r.Flushes() != 0 {
		t.Fatal("flushed early")
	}
	r.Record(0x9000) // 4th: triggers flush; also pruned
	if r.Flushes() != 1 || r.Size() != 0 {
		t.Fatalf("flushes=%d size=%d", r.Flushes(), r.Size())
	}
	var cards [][2]mem.Addr
	r.ForEachCard(func(s, e mem.Addr) { cards = append(cards, [2]mem.Addr{s, e}) })
	// 0x1000 and 0x2000 are in different 512-byte cards; 0x1800 pruned.
	if len(cards) != 2 {
		t.Fatalf("cards = %v", cards)
	}
	if cards[0][0] != 0x1000 || cards[1][0] != 0x2000 {
		t.Fatalf("card ranges wrong: %v", cards)
	}
	if !r.HasCards() {
		t.Fatal("HasCards false")
	}
	r.Clear()
	if r.HasCards() {
		t.Fatal("cards survive Clear")
	}
}

func TestRemSetMaxBufferPages(t *testing.T) {
	r := NewRemSet(0, 1<<20, 0)
	if r.MaxBufferPages() != 0 {
		t.Fatal("empty buffer has pages")
	}
	for i := 0; i < EntriesPerPage+1; i++ {
		r.Record(mem.Addr(i * 8))
	}
	if got := r.MaxBufferPages(); got != 2 {
		t.Fatalf("MaxBufferPages = %d, want 2", got)
	}
}

func TestErrOutOfMemoryMessage(t *testing.T) {
	err := ErrOutOfMemory{Collector: "X", HeapPages: 10}
	if err.Error() == "" {
		t.Fatal("empty error")
	}
}
