package gc

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
)

// Parallel mark engine (DESIGN.md §11). Workers trace the heap through a
// mem.AtomicView — raw atomic loads and mark-bit CASes that never touch
// the VMM or the simulated clock — while every logical word access is
// tallied per worker, per page. After the workers join, the tallies are
// merged and replayed against the Space in ascending page order via
// Proc.TouchN, so faults, evictions, and clock advance happen exactly
// once per round in an order that is a pure function of the marked
// graph. That is what makes the simulation bit-identical for any
// -mark-workers value: the marked set is schedule-independent (exactly
// one TryMark winner per object), the per-page access counts are
// graph-determined, and every order-dependent side effect (touch replay,
// deferred-edge evacuation) runs sequentially in canonical order.
//
// Work distribution is a Chase–Lev deque per worker with steal-half
// balancing; termination is a global pending counter incremented before
// every push and decremented after the corresponding scan completes, so
// pending==0 means no gray object exists anywhere — a stale "deques all
// looked empty" observation can never end a round early.

// defaultMarkWorkers holds the process-wide worker count applied to new
// environments; zero means runtime.GOMAXPROCS(0).
var defaultMarkWorkers atomic.Int64

// SetDefaultMarkWorkers sets the mark worker count new environments
// start with (the CLIs call this once from their -mark-workers flag).
// Values below 1 reset to the GOMAXPROCS default.
func SetDefaultMarkWorkers(n int) {
	if n < 1 {
		n = 0
	}
	defaultMarkWorkers.Store(int64(n))
}

// DefaultMarkWorkers returns the current default mark worker count.
func DefaultMarkWorkers() int {
	if n := defaultMarkWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// EdgeAction is a collector's verdict on one scanned edge.
type EdgeAction uint8

const (
	// EdgeMark traces the target in place (mark bit + queue for scan).
	EdgeMark EdgeAction = iota
	// EdgeSkip ignores the edge (e.g. the target's page is evicted).
	EdgeSkip
	// EdgeDefer records the edge for sequential evacuation between
	// rounds (e.g. the target must be copied out of the nursery).
	EdgeDefer
)

// DeferredEdge is a slot→target edge postponed to the sequential
// evacuation step. Slots are unique (each object is scanned once), so
// sorting by slot gives deferred edges a canonical processing order.
type DeferredEdge struct {
	Slot   mem.Addr
	Target objmodel.Ref
}

// ParMarkConfig adapts the engine to one collector's full-heap trace.
// The callbacks run concurrently on worker goroutines and must only read
// state that is frozen for the duration of a round (page bitmaps,
// nursery bounds); the engine guarantees all mutation — touch replay and
// evacuation — happens between rounds.
type ParMarkConfig struct {
	// Epoch is the mark epoch to stamp.
	Epoch uint32
	// SlotOK filters slots before they are read (nil = read all). A
	// rejected slot costs nothing, matching the sequential scan.
	SlotOK func(slot mem.Addr) bool
	// Classify decides what to do with a non-nil target (nil = EdgeMark
	// for every edge).
	Classify func(target objmodel.Ref) EdgeAction
	// SkipObj drops a queued object unscanned (nil = scan all); BC uses
	// it for objects whose page was evicted while they were gray.
	SkipObj func(o objmodel.Ref) bool
}

// markStealMax bounds how many elements one steal-half batch takes.
const markStealMax = 32

// markWorker is one tracing goroutine's private state. The touch tally
// is sparse: touch[pg] is the logical word-access count charged to pg
// this round, and touched lists the pages with nonzero counts.
type markWorker struct {
	id      int
	deque   *Deque
	touch   []uint32
	touched []mem.PageID

	deferred []DeferredEdge

	objects    uint64
	bytes      uint64
	steals     uint64
	stealFails uint64
	termSpins  uint64
}

// charge records n logical word accesses to page pg.
func (w *markWorker) charge(pg mem.PageID, n uint32) {
	if w.touch[pg] == 0 {
		w.touched = append(w.touched, pg)
	}
	w.touch[pg] += n
}

// roundState is the shared context of one parallel round.
type roundState struct {
	cfg     *ParMarkConfig
	view    *mem.AtomicView
	types   *objmodel.Table
	pending atomic.Int64
	workers []*markWorker
}

// scan visits o's reference slots, charging accesses exactly as the
// sequential trace would: one read for the header type word, one per
// slot read, one per mark check, and a read+write for the winning mark.
func (w *markWorker) scan(r *roundState, o objmodel.Ref) {
	t, n := objmodel.TypeOfRaw(r.view, r.types, o)
	w.charge((o + mem.WordSize).Page(), 1)
	w.objects++
	w.bytes += mem.RoundUpWord(uint64(t.TotalBytes(n)))
	for i := 0; i < t.NumRefSlots(n); i++ {
		slot := t.RefSlotAddr(o, i)
		if r.cfg.SlotOK != nil && !r.cfg.SlotOK(slot) {
			continue
		}
		w.charge(slot.Page(), 1)
		tgt := objmodel.Ref(r.view.Load(slot))
		if tgt == mem.Nil {
			continue
		}
		action := EdgeMark
		if r.cfg.Classify != nil {
			action = r.cfg.Classify(tgt)
		}
		switch action {
		case EdgeSkip:
		case EdgeDefer:
			w.deferred = append(w.deferred, DeferredEdge{Slot: slot, Target: tgt})
		default:
			w.charge(tgt.Page(), 1)
			if !objmodel.MarkedRaw(r.view, tgt, r.cfg.Epoch) &&
				objmodel.TryMark(r.view, tgt, r.cfg.Epoch) {
				w.charge(tgt.Page(), 2)
				r.pending.Add(1)
				w.deque.Push(tgt)
			}
		}
	}
}

// stealWork sweeps the other workers' deques, moving up to half of one
// victim's work into w's own deque and returning the first element.
func (w *markWorker) stealWork(r *roundState) (objmodel.Ref, bool) {
	n := len(r.workers)
	for k := 1; k < n; k++ {
		v := r.workers[(w.id+k)%n]
		taken, _ := v.deque.StealBatch(w.deque.Push, markStealMax)
		if taken > 0 {
			w.steals += uint64(taken)
			return w.deque.Pop()
		}
		w.stealFails++
	}
	return mem.Nil, false
}

// run drains work until the round is globally quiescent. With one worker
// this is an ordinary sequential loop (no stealing, no spinning), which
// is why -mark-workers 1 needs no separate code path.
func (w *markWorker) run(r *roundState) {
	for {
		o, ok := w.deque.Pop()
		if !ok {
			o, ok = w.stealWork(r)
		}
		if !ok {
			if r.pending.Load() == 0 {
				return
			}
			w.termSpins++
			runtime.Gosched()
			continue
		}
		if r.cfg.SkipObj == nil || !r.cfg.SkipObj(o) {
			w.scan(r, o)
		}
		r.pending.Add(-1)
	}
}

// ParMarker is the reusable engine bound to one Env. Obtain it with
// Env.Marker(); worker state persists across collections.
type ParMarker struct {
	env     *Env
	workers []*markWorker

	// replay merge and evacuation scratch, reused across rounds.
	total []uint32
	pages []mem.PageID
	edges []DeferredEdge
	round roundState
}

// NewParMarker builds an engine with n workers over env. The deques carry
// 32-bit word-index handles (see Deque), so the space must fit
// objmodel.MaxHandleSpace — any simulated heap does by orders of
// magnitude, but the bound is enforced rather than assumed.
func NewParMarker(env *Env, n int) *ParMarker {
	if n < 1 {
		n = 1
	}
	if size := uint64(env.Space.Pages()) * mem.PageSize; size > objmodel.MaxHandleSpace {
		panic(fmt.Sprintf("gc: space size %d exceeds the %d-byte handle range", size, objmodel.MaxHandleSpace))
	}
	npg := env.Space.Pages()
	m := &ParMarker{env: env, total: make([]uint32, npg)}
	for i := 0; i < n; i++ {
		m.workers = append(m.workers, &markWorker{
			id:    i,
			deque: NewDeque(),
			touch: make([]uint32, npg),
		})
	}
	return m
}

// Workers returns the engine's worker count.
func (m *ParMarker) Workers() int { return len(m.workers) }

// Mark drains work to completion in rounds. Each round traces the
// EdgeMark-closure of the current seeds in parallel, replays the touch
// tallies canonically, then evacuates deferred edges sequentially via
// evacuate (which may push follow-on work, as may any VMM handler that
// fires during replay — both seed the next round). Counters are flushed
// once at the end.
func (m *ParMarker) Mark(cfg *ParMarkConfig, work *WorkList, evacuate func(e DeferredEdge, work *WorkList)) {
	var rounds uint64
	for work.Len() > 0 {
		rounds++
		seeds := work.Drain()
		// Reuse the round scratch: pending is back to zero when a round
		// ends, so only the per-round fields need refreshing.
		r := &m.round
		r.cfg, r.view, r.types, r.workers = cfg, m.env.Space.View(), m.env.Types, m.workers
		for i, o := range seeds {
			w := m.workers[i%len(m.workers)]
			r.pending.Add(1)
			w.deque.Push(o)
		}
		if len(m.workers) == 1 {
			m.workers[0].run(r)
		} else {
			var wg sync.WaitGroup
			for _, w := range m.workers {
				wg.Add(1)
				go func(w *markWorker) {
					defer wg.Done()
					w.run(r)
				}(w)
			}
			wg.Wait()
		}
		m.replay()
		m.evacuate(work, evacuate)
	}
	m.flushCounters(rounds)
}

// replay merges the workers' touch tallies and applies them to the
// Space in ascending page order: one full Touch per page (fault path
// and all) plus a batched clock advance for the remaining accesses.
func (m *ParMarker) replay() {
	for _, w := range m.workers {
		for _, pg := range w.touched {
			if m.total[pg] == 0 {
				m.pages = append(m.pages, pg)
			}
			m.total[pg] += w.touch[pg]
			w.touch[pg] = 0
		}
		w.touched = w.touched[:0]
	}
	slices.Sort(m.pages)
	for _, pg := range m.pages {
		m.env.Proc.TouchN(pg, uint64(m.total[pg]), true)
		m.total[pg] = 0
	}
	m.pages = m.pages[:0]
}

// evacuate processes the round's deferred edges in slot order.
func (m *ParMarker) evacuate(work *WorkList, fn func(e DeferredEdge, work *WorkList)) {
	edges := m.edges[:0]
	for _, w := range m.workers {
		edges = append(edges, w.deferred...)
		w.deferred = w.deferred[:0]
	}
	m.edges = edges
	if len(edges) == 0 {
		return
	}
	slices.SortFunc(edges, func(a, b DeferredEdge) int {
		switch {
		case a.Slot < b.Slot:
			return -1
		case a.Slot > b.Slot:
			return 1
		}
		return 0
	})
	for _, e := range edges {
		if fn != nil {
			fn(e, work)
		}
	}
}

// flushCounters moves the workers' per-collection tallies into the
// registry and resets them. The graph totals (rounds, objects, bytes)
// are deterministic for any worker count; the scheduling ones are not
// and stay out of experiment reports.
func (m *ParMarker) flushCounters(rounds uint64) {
	c := m.env.Counters
	c.Add(trace.CMarkRounds, rounds)
	for i, w := range m.workers {
		c.Add(trace.CMarkObjects, w.objects)
		c.Add(trace.CMarkBytes, w.bytes)
		c.Add(trace.CMarkSteals, w.steals)
		c.Add(trace.CMarkStealFails, w.stealFails)
		c.Add(trace.CMarkTermRounds, w.termSpins)
		c.AddVec(trace.VMarkBytesByWorker, i, w.bytes)
		w.objects, w.bytes, w.steals, w.stealFails, w.termSpins = 0, 0, 0, 0, 0
	}
}
