package gc

import (
	"sync/atomic"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
)

// Deque is a Chase–Lev work-stealing deque of object references: the
// owning worker pushes and pops at the bottom without contention while
// thieves take single elements from the top with a CAS. The ring buffer
// grows without bound (marking never drops work), and every buffer slot
// is accessed atomically so the engine is clean under the race detector.
//
// Slots hold objmodel.Handle — the 32-bit word index of the reference —
// rather than the Ref itself, halving the ring's footprint and cache
// traffic (NewParMarker enforces the 32 GB space bound the encoding
// needs).
//
// Steal-half balancing is built from repeated single-element steals
// (StealBatch): taking k elements with one CAS on top is unsound here
// because the owner pops through the same range without synchronizing
// on top until the deque is nearly empty.
type Deque struct {
	bottom atomic.Int64
	top    atomic.Int64
	ring   atomic.Pointer[dequeRing]
}

type dequeRing struct {
	mask int64 // len(buf)-1; len is a power of two
	buf  []atomic.Uint32
}

func newDequeRing(capacity int64) *dequeRing {
	return &dequeRing{mask: capacity - 1, buf: make([]atomic.Uint32, capacity)}
}

// minDequeCap is the initial ring capacity.
const minDequeCap = 64

// NewDeque returns an empty deque.
func NewDeque() *Deque {
	d := &Deque{}
	d.ring.Store(newDequeRing(minDequeCap))
	return d
}

// Size returns a snapshot of the number of queued elements. Under
// concurrent stealing it is advisory (a lower bound may be gone by the
// time the caller acts on it).
func (d *Deque) Size() int {
	b, t := d.bottom.Load(), d.top.Load()
	if b <= t {
		return 0
	}
	return int(b - t)
}

// Push appends o at the bottom. Owner only.
func (d *Deque) Push(o objmodel.Ref) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t >= int64(len(r.buf)) {
		r = d.grow(r, b, t)
	}
	r.buf[b&r.mask].Store(uint32(objmodel.ToHandle(o)))
	d.bottom.Store(b + 1)
}

// grow doubles the ring, copying the live range [t, b). The old ring is
// never mutated, so a thief still holding it reads valid values for any
// index its top CAS can win.
func (d *Deque) grow(r *dequeRing, b, t int64) *dequeRing {
	nr := newDequeRing(int64(len(r.buf)) * 2)
	for i := t; i < b; i++ {
		nr.buf[i&nr.mask].Store(r.buf[i&r.mask].Load())
	}
	d.ring.Store(nr)
	return nr
}

// Pop removes and returns the most recently pushed element. Owner only.
// The size-1 race with thieves is resolved by a CAS on top: whoever
// advances it owns the final element.
func (d *Deque) Pop() (objmodel.Ref, bool) {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bottom.Store(b + 1)
		return mem.Nil, false
	}
	o := objmodel.Handle(r.buf[b&r.mask].Load()).Ref()
	if t == b {
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(b + 1)
		if !won {
			return mem.Nil, false
		}
		return o, true
	}
	return o, true
}

// Steal removes and returns the oldest element. Any goroutine.
// contended reports a lost CAS race (the caller may retry); ok false
// with contended false means the deque was observed empty.
func (d *Deque) Steal() (o objmodel.Ref, ok bool, contended bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return mem.Nil, false, false
	}
	r := d.ring.Load()
	v := r.buf[t&r.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return mem.Nil, false, true
	}
	return objmodel.Handle(v).Ref(), true, false
}

// StealBatch steals up to half of the observed size (at least one, at
// most maxBatch) delivering each element to into, and reports how many
// were taken plus whether any attempt was lost to contention. The first
// lost race ends the batch: the victim is being raced over, so the
// thief moves on rather than spinning.
func (d *Deque) StealBatch(into func(objmodel.Ref), maxBatch int) (taken int, contended bool) {
	want := d.Size() / 2
	if want < 1 {
		want = 1
	}
	if want > maxBatch {
		want = maxBatch
	}
	for taken < want {
		o, ok, c := d.Steal()
		if !ok {
			return taken, contended || c
		}
		into(o)
		taken++
	}
	return taken, contended
}
