package gc

import (
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/trace"
)

// CardBytes is the granularity of the card table used when write buffers
// are filtered (§3.1).
const CardBytes = 512

// RemSet remembers mature-to-nursery pointers for generational
// collectors. Two regimes:
//
//   - Unbounded (bufCap = 0): a growing write buffer, as MMTk's GenMS and
//     GenCopy use.
//   - Paper BC (§3.1): page-sized write buffers. When a buffer fills, it
//     is processed: entries whose slot no longer holds an interesting
//     pointer are pruned, the remainder are demoted to card marks for
//     their source objects, and the buffer is recycled — so the remset
//     usually occupies a single page.
type RemSet struct {
	entries []mem.Addr
	bufCap  int
	filter  func(slot mem.Addr) bool // still points into the nursery?

	cards    *mem.Bitmap
	cardBase mem.Addr
	cardEnd  mem.Addr

	flushes   uint64
	maxBuffer int
	counters  *trace.Counters
}

// NewRemSet covers slot addresses in [cardBase, cardEnd) with a card
// table. bufCap is the entry capacity of one write buffer (0 disables
// filtering; the buffer grows without bound).
func NewRemSet(cardBase, cardEnd mem.Addr, bufCap int) *RemSet {
	n := int(cardEnd-cardBase+CardBytes-1) / CardBytes
	return &RemSet{
		bufCap:   bufCap,
		cards:    mem.NewBitmap(n),
		cardBase: cardBase,
		cardEnd:  cardEnd,
	}
}

// EntriesPerPage is how many slot addresses fit a page-sized buffer.
const EntriesPerPage = mem.PageSize / mem.WordSize

// SetFilter installs the predicate deciding whether a buffered slot still
// holds an interesting (nursery-bound) pointer at flush time.
func (r *RemSet) SetFilter(f func(slot mem.Addr) bool) { r.filter = f }

// SetCounters attaches a counter registry recording flush activity (the
// §3.1 overflow→card filterings). nil detaches.
func (r *RemSet) SetCounters(c *trace.Counters) { r.counters = c }

// Record buffers a slot address. When the page-sized buffer fills, it is
// processed and compacted (§3.1).
func (r *RemSet) Record(slot mem.Addr) {
	r.entries = append(r.entries, slot)
	if len(r.entries) > r.maxBuffer {
		r.maxBuffer = len(r.entries)
	}
	if r.bufCap > 0 && len(r.entries) >= r.bufCap {
		r.Flush()
	}
}

// Flush prunes stale entries and demotes live ones to card marks,
// emptying the buffer.
func (r *RemSet) Flush() {
	r.flushes++
	r.counters.Inc(trace.CRemsetFlushes)
	for _, slot := range r.entries {
		if r.filter != nil && !r.filter(slot) {
			r.counters.Inc(trace.CRemsetEntriesFiltered)
			continue
		}
		r.counters.Inc(trace.CRemsetEntriesCarded)
		r.markCard(slot)
	}
	r.entries = r.entries[:0]
}

func (r *RemSet) markCard(a mem.Addr) {
	if a < r.cardBase || a >= r.cardEnd {
		return
	}
	r.cards.Set(int(a-r.cardBase) / CardBytes)
}

// ForEachSlot visits the buffered slot addresses.
func (r *RemSet) ForEachSlot(fn func(slot mem.Addr)) {
	for _, s := range r.entries {
		fn(s)
	}
}

// ForEachCard visits each marked card as an address range.
func (r *RemSet) ForEachCard(fn func(start, end mem.Addr)) {
	for i := r.cards.NextSet(0); i >= 0; i = r.cards.NextSet(i + 1) {
		start := r.cardBase + mem.Addr(i)*CardBytes
		end := start + CardBytes
		if end > r.cardEnd {
			end = r.cardEnd
		}
		fn(start, end)
	}
}

// HasCards reports whether any card is marked.
func (r *RemSet) HasCards() bool { return r.cards.NextSet(0) >= 0 }

// Clear empties both the buffer and the card table (after a collection
// has consumed them).
func (r *RemSet) Clear() {
	r.entries = r.entries[:0]
	r.cards.ClearAll()
}

// Size returns the number of buffered entries.
func (r *RemSet) Size() int { return len(r.entries) }

// Flushes returns how many times the buffer was processed.
func (r *RemSet) Flushes() uint64 { return r.flushes }

// MaxBufferPages returns the peak buffer footprint in page-sized units —
// the quantity §3.1 is about ("often consumes just a single page").
func (r *RemSet) MaxBufferPages() int {
	if r.maxBuffer == 0 {
		return 0
	}
	return (r.maxBuffer + EntriesPerPage - 1) / EntriesPerPage
}
