package gc

import (
	"math/rand"
	"testing"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
)

// benchGraph builds a connected random object graph for mark benchmarks.
func benchGraph(b *testing.B, env *Env, n int) (root objmodel.Ref) {
	b.Helper()
	m := NewMature(env)
	node := env.Types.Scalar("bnode", 8, 0, 1)
	rng := rand.New(rand.NewSource(42))
	objs := make([]objmodel.Ref, 0, n)
	for i := 0; i < n; i++ {
		o := m.AllocMature(env, node, 0, env.HeapPages, 0)
		if o == mem.Nil {
			b.Fatal("benchGraph: out of space")
		}
		objmodel.ClearStatus(env.Space, o)
		objmodel.SetTypeWord(env.Space, o, node.ID, 0)
		objs = append(objs, o)
		if i > 0 {
			prev := objs[rng.Intn(i)]
			slot := rng.Intn(2)
			env.Space.WriteAddr(node.RefSlotAddr(prev, slot), o)
		}
	}
	return objs[0]
}

// BenchmarkMarkLoop measures the sequential handle-based mark loop
// (MarkStep status-word batching + WorkList) over a 4k-object graph.
func BenchmarkMarkLoop(b *testing.B) {
	env := testEnv(b)
	root := benchGraph(b, env, 4096)
	work := env.GetWorkList()
	defer env.PutWorkList(work)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		epoch := uint32(i%int(objmodel.MaxEpoch-1) + 1)
		MarkStep(env, work, root, epoch)
		MarkTrace(env, work, epoch, nil)
	}
}

// BenchmarkDequeHandles measures the Chase-Lev deque's owner-side
// push/pop with the 32-bit handle encoding.
func BenchmarkDequeHandles(b *testing.B) {
	d := NewDeque()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Push(objmodel.Ref(uint64(i%4096+1) * mem.WordSize))
		if i%2 == 1 {
			d.Pop()
			d.Pop()
		}
	}
}
