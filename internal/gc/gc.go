// Package gc provides the runtime glue every collector is built on: the
// collector interface the mutator programs against, the root registry,
// object scanning, generational remembered sets (write buffers filtered
// into a card table, §3.1 of the paper), pause accounting, and the shared
// environment (address space, VMM process, type table, size classes).
package gc

import (
	"fmt"
	"sync"
	"time"

	"bookmarkgc/internal/heap"
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
	"bookmarkgc/internal/vmm"
)

// Env is everything a collector needs from its surroundings. One Env
// corresponds to one simulated JVM process.
type Env struct {
	Proc    *vmm.Proc
	Space   *mem.Space
	Clock   *vmm.Clock
	Types   *objmodel.Table
	Classes *objmodel.Classes
	Layout  heap.Layout

	// HeapPages is the collector's page budget — the "heap size" of the
	// paper's experiments. Collectors trigger collection to stay within
	// it; HeapPolicy may lower the effective budget below it.
	HeapPages int

	// HeapPolicy, when non-nil, is the pluggable heap-limit control
	// loop (internal/heappolicy). Collectors consult it through
	// HeapBudget/HeapLimitPages and feed it via ObserveHeapPolicy. A
	// nil policy means the fixed budget: HeapPages, exactly. BC
	// installs the extracted bc-shrink policy by default (§3.3.3/§7).
	HeapPolicy heappolicy.Policy

	// Trace receives span and point events from the collector; defaults
	// to the no-op tracer. Counters, when non-nil, accumulates the
	// counter registry (its methods are nil-safe, so instrumentation
	// sites call through unconditionally).
	Trace    trace.Tracer
	Counters *trace.Counters

	// MarkWorkers is the parallel mark engine's worker count. NewEnv
	// resolves it from the package default (SetDefaultMarkWorkers);
	// callers may override it before the first collection. Output is
	// bit-identical for any value ≥ 1.
	MarkWorkers int

	marker *ParMarker
	wlFree []*WorkList // retired gray stacks (GetWorkList/PutWorkList)
}

// Marker returns the environment's parallel mark engine, building it on
// first use with MarkWorkers workers.
func (e *Env) Marker() *ParMarker {
	if e.marker == nil {
		e.marker = NewParMarker(e, e.MarkWorkers)
	}
	return e.marker
}

// NewEnv wires a process-wide environment for a heap of heapBytes.
func NewEnv(v *vmm.VMM, name string, heapBytes uint64) *Env {
	layout := heap.NewLayout(heapBytes)
	proc := v.NewProc(name, layout.Total)
	return &Env{
		Proc:        proc,
		Space:       proc.Space(),
		Clock:       v.Clock,
		Types:       objmodel.NewTable(),
		Classes:     objmodel.BuildClasses(),
		Layout:      layout,
		HeapPages:   int(mem.RoundUpPage(heapBytes) / mem.PageSize),
		Trace:       trace.Nop{},
		MarkWorkers: DefaultMarkWorkers(),
	}
}

// Collector is the interface the mutator programs against. All object
// access flows through it so each collector can interpose its barriers
// and so every access is charged to the simulated clock.
type Collector interface {
	// Name identifies the collector ("BC", "GenMS", ...).
	Name() string
	// Alloc allocates and initializes an object, collecting if needed.
	// It panics with ErrOutOfMemory if the heap budget cannot hold the
	// live data.
	Alloc(t *objmodel.Type, arrayLen int) objmodel.Ref
	// ReadRef loads the i-th reference slot of o.
	ReadRef(o objmodel.Ref, i int) objmodel.Ref
	// WriteRef stores v into the i-th reference slot of o, applying the
	// collector's write barrier.
	WriteRef(o objmodel.Ref, i int, v objmodel.Ref)
	// ReadData / WriteData access the d-th non-reference payload word;
	// the mutator uses them to model application work on live objects.
	ReadData(o objmodel.Ref, d int) uint64
	WriteData(o objmodel.Ref, d int, v uint64)
	// Collect forces a collection (full-heap if full is true).
	Collect(full bool)
	// Roots exposes the root registry (mutator locals and statics).
	Roots() *Roots
	// Stats exposes pause and collection counters.
	Stats() *Stats
	// Env exposes the shared environment.
	Env() *Env
	// UsedPages reports the heap footprint in pages as the collector
	// accounts it (used by the harness and the sizing policies).
	UsedPages() int
}

// ErrOutOfMemory is the panic value when live data exceeds the budget.
type ErrOutOfMemory struct {
	Collector string
	HeapPages int
	Detail    string
}

func (e ErrOutOfMemory) Error() string {
	s := fmt.Sprintf("%s: out of memory (heap budget %d pages)", e.Collector, e.HeapPages)
	if e.Detail != "" {
		s += " [" + e.Detail + "]"
	}
	return s
}

// Stats aggregates a collector's activity.
type Stats struct {
	Timeline     metrics.Timeline
	BytesAlloc   uint64
	ObjectsAlloc uint64
	Nursery      uint64 // nursery collections
	Full         uint64 // full-heap collections
	Compactions  uint64
	Bookmarked   uint64 // objects bookmarked (BC)
	PagesEvicted uint64 // heap pages processed for eviction (BC)
	FailSafe     uint64 // completeness fail-safe collections (BC)
}

// pausePhase maps a pause kind to its trace span kind.
func pausePhase(kind metrics.PauseKind) trace.Phase {
	switch kind {
	case metrics.PauseNursery:
		return trace.PhasePauseNursery
	case metrics.PauseCompact:
		return trace.PhasePauseCompact
	default:
		return trace.PhasePauseFull
	}
}

// BeginPause starts a stop-the-world interval; call the returned func at
// the end of the collection. Major faults taken during the pause are
// attributed to it, and the interval is emitted as a trace span enclosing
// whatever phase spans the collector opens inside it.
func (st *Stats) BeginPause(env *Env, kind metrics.PauseKind) func() {
	start := env.Clock.Now()
	faults := env.Proc.Stats().MajorFaults
	env.Trace.Begin(pausePhase(kind))
	return func() {
		env.Trace.End(pausePhase(kind))
		st.Timeline.Record(metrics.Pause{
			Start:       start,
			Dur:         env.Clock.Now() - start,
			Kind:        kind,
			MajorFaults: env.Proc.Stats().MajorFaults - faults,
		})
	}
}

// Roots is the registry of mutator-visible reference slots (locals,
// globals). Moving collectors update slots in place; the mutator holds
// stable slot indices. A zero slot holds mem.Nil.
type Roots struct {
	slots []mem.Addr
	free  []int32
}

// rootsPool recycles root-registry backing arrays across runs (each run
// re-grows tens of thousands of slots otherwise).
var rootsPool sync.Pool

type rootsScratch struct {
	slots []mem.Addr
	free  []int32
}

// acquire adopts pooled backing arrays if the registry is still empty.
func (r *Roots) acquire() {
	if r.slots != nil {
		return
	}
	if v := rootsPool.Get(); v != nil {
		sc := v.(*rootsScratch)
		r.slots, r.free = sc.slots[:0], sc.free[:0]
	}
}

func (r *Roots) release() {
	if cap(r.slots) == 0 {
		return
	}
	rootsPool.Put(&rootsScratch{slots: r.slots[:0], free: r.free[:0]})
	r.slots, r.free = nil, nil
}

// Add registers a root holding o and returns its slot index.
func (r *Roots) Add(o mem.Addr) int {
	if r.slots == nil {
		r.acquire()
	}
	if n := len(r.free); n > 0 {
		i := int(r.free[n-1])
		r.free = r.free[:n-1]
		r.slots[i] = o
		return i
	}
	r.slots = append(r.slots, o)
	return len(r.slots) - 1
}

// Get returns the object in slot i.
func (r *Roots) Get(i int) mem.Addr { return r.slots[i] }

// Set overwrites slot i.
func (r *Roots) Set(i int, o mem.Addr) { r.slots[i] = o }

// Release frees slot i for reuse.
func (r *Roots) Release(i int) {
	r.slots[i] = mem.Nil
	r.free = append(r.free, int32(i))
}

// Len returns the number of slots ever created.
func (r *Roots) Len() int { return len(r.slots) }

// ForEach visits every non-nil root slot; fn may update the slot (moving
// collectors forward roots through this).
func (r *Roots) ForEach(fn func(slot *mem.Addr)) {
	for i := range r.slots {
		if r.slots[i] != mem.Nil {
			fn(&r.slots[i])
		}
	}
}

// ScanObject visits each reference slot of o, reporting the slot address
// and current target (skipping nil). It reads the object's header and
// fields through the space, touching pages exactly as a real scan does.
func ScanObject(s *mem.Space, types *objmodel.Table, o objmodel.Ref, fn func(slot mem.Addr, target objmodel.Ref)) {
	t, n := types.TypeOf(s, o)
	for i := 0; i < t.NumRefSlots(n); i++ {
		slot := t.RefSlotAddr(o, i)
		if tgt := s.ReadAddr(slot); tgt != mem.Nil {
			fn(slot, tgt)
		}
	}
}

// ObjectBytes returns o's total size (header included), word-rounded.
func ObjectBytes(s *mem.Space, types *objmodel.Table, o objmodel.Ref) int {
	t, n := types.TypeOf(s, o)
	return int(mem.RoundUpWord(uint64(t.TotalBytes(n))))
}

// CopyObject copies o (size bytes total) to dst through the space, so
// both pages are touched and charged exactly like the word-by-word copy
// loop (mem.CopyWords batches runs where that is indistinguishable).
func CopyObject(s *mem.Space, o, dst objmodel.Ref, totalBytes int) {
	s.CopyWords(dst, o, uint64(totalBytes))
}

// WorkList is a simple gray stack used by all tracing loops.
type WorkList struct {
	items []objmodel.Ref
	spare []objmodel.Ref // previous Drain buffer, recycled on the next one
}

// Push adds an object to trace.
func (w *WorkList) Push(o objmodel.Ref) { w.items = append(w.items, o) }

// Pop removes and returns the most recent object; ok is false when empty.
func (w *WorkList) Pop() (objmodel.Ref, bool) {
	n := len(w.items)
	if n == 0 {
		return mem.Nil, false
	}
	o := w.items[n-1]
	w.items = w.items[:n-1]
	return o, true
}

// Len returns the number of pending objects.
func (w *WorkList) Len() int { return len(w.items) }

// Drain hands the queued items to the caller and leaves the list empty.
// The returned slice is valid until the drain after next: the two
// buffers rotate, so steady-state draining allocates nothing.
func (w *WorkList) Drain() []objmodel.Ref {
	items := w.items
	w.items = w.spare[:0]
	w.spare = items
	return items
}

// Reset empties the list, retaining capacity.
func (w *WorkList) Reset() { w.items = w.items[:0] }

// GetWorkList returns an empty gray stack, recycling one retired via
// PutWorkList so the per-collection tracing loops stop allocating their
// worklists (and the backing arrays they grow) on every cycle.
func (e *Env) GetWorkList() *WorkList {
	if n := len(e.wlFree); n > 0 {
		w := e.wlFree[n-1]
		e.wlFree = e.wlFree[:n-1]
		return w
	}
	if v := wlPool.Get(); v != nil {
		return v.(*WorkList)
	}
	return &WorkList{}
}

// PutWorkList retires w (emptied, capacity kept) for reuse.
func (e *Env) PutWorkList(w *WorkList) {
	w.Reset()
	e.wlFree = append(e.wlFree, w)
}

// wlPool recycles gray stacks across environments: a sweep retires each
// Env's worklists when the run ends, so the next run starts with
// full-grown buffers instead of re-growing them from nil.
var wlPool sync.Pool

// ReleaseScratch hands the environment's pooled scratch — retired
// worklists and the root registry's backing arrays — to process-wide
// pools for the next run. Call only when the run is completely finished.
func (e *Env) ReleaseScratch(roots *Roots) {
	for _, w := range e.wlFree {
		wlPool.Put(w)
	}
	e.wlFree = nil
	if roots != nil {
		roots.release()
	}
}

// PauseClock charges fixed per-collection overhead (root scanning, signal
// handling, bookkeeping) to the simulated clock.
func PauseClock(env *Env, d time.Duration) { env.Clock.Advance(d) }
