package gc

import (
	"math/rand"
	"testing"

	"bookmarkgc/internal/mem"
)

// TestRemSetCardSoundnessProperty: after any sequence of records and
// flushes, every slot whose filter verdict was true at flush time is
// covered by a marked card or still sits in the buffer — the property
// nursery collection correctness rests on (§3.1).
func TestRemSetCardSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		interesting := map[mem.Addr]bool{}
		r := NewRemSet(0, 1<<20, 16)
		r.SetFilter(func(slot mem.Addr) bool { return interesting[slot] })

		recorded := map[mem.Addr]bool{}
		for i := 0; i < 200; i++ {
			slot := mem.Addr(rng.Intn(1<<17)) * 8
			// The mutator decides, before recording, whether this slot
			// holds a nursery pointer; it may later be overwritten.
			interesting[slot] = rng.Intn(2) == 0
			r.Record(slot)
			if interesting[slot] {
				recorded[slot] = true
			}
			if rng.Intn(10) == 0 {
				// Overwrite some slot: no longer interesting.
				for s := range interesting {
					interesting[s] = false
					delete(recorded, s)
					break
				}
			}
		}
		// Every still-interesting slot must be findable: in the buffer or
		// under a marked card.
		inBuffer := map[mem.Addr]bool{}
		r.ForEachSlot(func(s mem.Addr) { inBuffer[s] = true })
		covered := func(s mem.Addr) bool {
			if inBuffer[s] {
				return true
			}
			ok := false
			r.ForEachCard(func(start, end mem.Addr) {
				if s >= start && s < end {
					ok = true
				}
			})
			return ok
		}
		for s := range recorded {
			if interesting[s] && !covered(s) {
				t.Fatalf("trial %d: interesting slot %#x lost", trial, s)
			}
		}
		// The buffer never exceeds its page-sized capacity.
		if r.Size() >= 17 {
			t.Fatalf("trial %d: buffer grew to %d entries", trial, r.Size())
		}
	}
}
