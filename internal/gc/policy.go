package gc

import (
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/trace"
)

// HeapBudget returns the effective heap budget in pages: the policy's
// target clamped to [floor, HeapPages]. floor is the smallest budget
// the collector can operate with (typically live mature pages plus a
// minimum nursery) — a policy may ask for less, but the collector
// cannot honor it. A nil policy is the fixed budget: HeapPages,
// exactly, whatever the floor.
func (e *Env) HeapBudget(floor int) int {
	if e.HeapPolicy == nil {
		return e.HeapPages
	}
	target := e.HeapPolicy.Target()
	if target < floor {
		target = floor
	}
	if target > e.HeapPages {
		return e.HeapPages
	}
	return target
}

// HeapLimitPages returns the current heap target with no collector
// floor applied — the figure telemetry samples and reports show.
func (e *Env) HeapLimitPages() int {
	if e.HeapPolicy == nil {
		return e.HeapPages
	}
	if t := e.HeapPolicy.Target(); t < e.HeapPages {
		return t
	}
	return e.HeapPages
}

// ObserveHeapPolicy feeds one observation to col's heap policy and
// emits the shrink/regrow trace points and counters for any target
// change. footprint is the resident-page figure for EvPressure
// observations (BC passes its own books); pass a negative value to use
// the VMM's count. Returns the target before and after; (0, 0) when no
// policy is installed. The policy's Wants gate keeps this nearly free
// on the mutator path for policies that ignore EvMutator.
func ObserveHeapPolicy(col Collector, ev heappolicy.Event, footprint int) (from, to int) {
	env := col.Env()
	pol := env.HeapPolicy
	if pol == nil || !pol.Wants(ev) {
		return 0, 0
	}
	if footprint < 0 {
		footprint = env.Proc.ResidentPages()
	}
	st := col.Stats()
	s := heappolicy.Signals{
		NowNS:          int64(env.Clock.Now()),
		MaxHeapPages:   env.HeapPages,
		UsedPages:      col.UsedPages(),
		FootprintPages: footprint,
		FreeFrames:     env.Proc.FreeFramesHint(),
		AllocBytes:     st.BytesAlloc,
		GCs:            st.Nursery + st.Full,
	}
	if ev == heappolicy.EvGCEnd {
		s.GCTimeNS = int64(st.Timeline.TotalPause())
	}
	from = pol.Target()
	to = pol.Observe(ev, s)
	env.Counters.Inc(trace.CPolicyObservations)
	switch {
	case to < from:
		env.Trace.Point(trace.EvHeapShrink, int64(to), int64(from))
		env.Counters.Inc(trace.CHeapShrinks)
	case to > from:
		env.Trace.Point(trace.EvHeapRegrow, int64(to), int64(from))
		env.Counters.Inc(trace.CHeapRegrows)
	}
	return from, to
}
