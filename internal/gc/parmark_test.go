package gc

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/trace"
	"bookmarkgc/internal/vmm"
)

func TestDequeEmpty(t *testing.T) {
	d := NewDeque()
	if _, ok := d.Pop(); ok {
		t.Fatal("pop of empty deque succeeded")
	}
	if _, ok, contended := d.Steal(); ok || contended {
		t.Fatal("steal of empty deque succeeded or reported contention")
	}
	if d.Size() != 0 {
		t.Fatalf("Size = %d", d.Size())
	}
}

func TestDequeOrdering(t *testing.T) {
	d := NewDeque()
	for i := 1; i <= 5; i++ {
		d.Push(objmodel.Ref(i * 8))
	}
	// Owner pops LIFO from the bottom.
	if o, ok := d.Pop(); !ok || o != 5*8 {
		t.Fatalf("Pop = %#x", o)
	}
	// Thieves take FIFO from the top.
	if o, ok, _ := d.Steal(); !ok || o != 1*8 {
		t.Fatalf("Steal = %#x", o)
	}
	if d.Size() != 3 {
		t.Fatalf("Size = %d", d.Size())
	}
}

func TestDequeGrow(t *testing.T) {
	d := NewDeque()
	const n = minDequeCap * 5
	for i := 1; i <= n; i++ {
		d.Push(objmodel.Ref(i * 8))
	}
	if d.Size() != n {
		t.Fatalf("Size = %d after grow", d.Size())
	}
	for i := n; i >= 1; i-- {
		o, ok := d.Pop()
		if !ok || o != objmodel.Ref(i*8) {
			t.Fatalf("Pop %d = %#x, ok=%v", i, o, ok)
		}
	}
}

func TestDequeStealBatchTakesHalf(t *testing.T) {
	d := NewDeque()
	for i := 1; i <= 10; i++ {
		d.Push(objmodel.Ref(i * 8))
	}
	var got []objmodel.Ref
	taken, contended := d.StealBatch(func(o objmodel.Ref) { got = append(got, o) }, markStealMax)
	if contended {
		t.Fatal("uncontended batch reported contention")
	}
	if taken != 5 || len(got) != 5 {
		t.Fatalf("taken = %d (%v)", taken, got)
	}
	if got[0] != 1*8 || got[4] != 5*8 {
		t.Fatalf("batch not FIFO: %v", got)
	}
	if d.Size() != 5 {
		t.Fatalf("victim Size = %d", d.Size())
	}
}

// TestDequeOwnerThiefRace hammers the size-1 window: an owner pushing
// and popping while a thief steals. Every pushed element must be taken
// exactly once — the conservation check fails on both loss and
// duplication. Run with -race to check the memory model too.
func TestDequeOwnerThiefRace(t *testing.T) {
	d := NewDeque()
	const n = 20000
	var thiefSum uint64
	var ownerSum uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if o, ok, _ := d.Steal(); ok {
				thiefSum += uint64(o)
				continue
			}
			select {
			case <-stop:
				for {
					o, ok, _ := d.Steal()
					if !ok {
						return
					}
					thiefSum += uint64(o)
				}
			default:
			}
		}
	}()
	var want uint64
	for i := 1; i <= n; i++ {
		// Refs must be word-aligned: the deque stores word-index handles.
		d.Push(objmodel.Ref(i) * mem.WordSize)
		want += uint64(i) * mem.WordSize
		// Pop every few pushes so the deque keeps crossing size 1 and 0,
		// exercising the owner/thief CAS on the final element.
		if i%3 == 0 {
			if o, ok := d.Pop(); ok {
				ownerSum += uint64(o)
			}
		}
	}
	for {
		o, ok := d.Pop()
		if !ok {
			break
		}
		ownerSum += uint64(o)
	}
	close(stop)
	wg.Wait()
	if ownerSum+thiefSum != want {
		t.Fatalf("conservation violated: owner %d + thief %d != %d", ownerSum, thiefSum, want)
	}
}

// buildRandomGraph allocates n mature objects and wires a seeded random
// edge set over the first reachable half, returning all objects and the
// root. Objects in the second half stay unreachable.
func buildRandomGraph(t *testing.T, env *Env, m *Mature, n int, seed int64) (all []objmodel.Ref, root objmodel.Ref) {
	t.Helper()
	node := env.Types.Scalar("pnode", 8, 0, 1)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		o := m.AllocMature(env, node, 0, env.HeapPages, 0)
		if o == mem.Nil {
			t.Fatal("alloc failed")
		}
		all = append(all, o)
	}
	half := n / 2
	for i := 0; i < half; i++ {
		for s := 0; s < 2; s++ {
			var tgt objmodel.Ref = mem.Nil
			if rng.Intn(4) != 0 {
				tgt = all[rng.Intn(half)]
			}
			env.Space.WriteAddr(node.RefSlotAddr(all[i], s), tgt)
		}
	}
	// Chain the reachable half off the root so everything in it is live.
	for i := 1; i < half; i++ {
		env.Space.WriteAddr(node.RefSlotAddr(all[i-1], 1), all[i])
	}
	return all, all[0]
}

// TestParMarkMatchesSequential is the engine's property test: for the
// same random graph, N workers must produce exactly the marked set the
// sequential MarkTrace produces.
func TestParMarkMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		env := testEnv(t)
		env.Counters = trace.NewCounters()
		m := NewMature(env)
		all, root := buildRandomGraph(t, env, &m, 600, 42)

		// Sequential reference marking at epoch 5. Snapshot the marked
		// set before the parallel pass: the header holds one epoch, so
		// re-marking at epoch 6 erases the epoch-5 verdicts.
		var work WorkList
		MarkStep(env, &work, root, 5)
		MarkTrace(env, &work, 5, nil)
		seq := make([]bool, len(all))
		for i, o := range all {
			seq[i] = objmodel.Marked(env.Space, o, 5)
		}

		// Parallel marking at epoch 6.
		work.Reset()
		MarkStep(env, &work, root, 6)
		NewParMarker(env, workers).Mark(&ParMarkConfig{Epoch: 6}, &work, nil)

		for i, o := range all {
			par := objmodel.Marked(env.Space, o, 6)
			if seq[i] != par {
				t.Fatalf("workers=%d: %#x sequential=%v parallel=%v", workers, o, seq[i], par)
			}
		}
		if env.Counters.Get(trace.CMarkObjects) == 0 {
			t.Fatalf("workers=%d: engine scanned nothing", workers)
		}
	}
}

// TestParMarkDeterminism is the unit-level 1-vs-8 golden check: marked
// set, simulated clock, and graph-total counters must be bit-identical
// for any worker count.
func TestParMarkDeterminism(t *testing.T) {
	type result struct {
		clock   int64
		objects uint64
		bytes   uint64
		rounds  uint64
		marked  []objmodel.Ref
	}
	run := func(workers int) result {
		env := testEnv(t)
		env.Counters = trace.NewCounters()
		m := NewMature(env)
		all, root := buildRandomGraph(t, env, &m, 800, 7)
		var work WorkList
		MarkStep(env, &work, root, 3)
		NewParMarker(env, workers).Mark(&ParMarkConfig{Epoch: 3}, &work, nil)
		r := result{
			clock:   int64(env.Clock.Now()),
			objects: env.Counters.Get(trace.CMarkObjects),
			bytes:   env.Counters.Get(trace.CMarkBytes),
			rounds:  env.Counters.Get(trace.CMarkRounds),
		}
		for _, o := range all {
			if objmodel.Marked(env.Space, o, 3) {
				r.marked = append(r.marked, o)
			}
		}
		return r
	}
	base := run(1)
	if base.objects == 0 || len(base.marked) == 0 {
		t.Fatal("baseline marked nothing")
	}
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if got.clock != base.clock {
			t.Errorf("workers=%d: clock %d != %d", workers, got.clock, base.clock)
		}
		if got.objects != base.objects || got.bytes != base.bytes || got.rounds != base.rounds {
			t.Errorf("workers=%d: totals (%d,%d,%d) != (%d,%d,%d)", workers,
				got.objects, got.bytes, got.rounds, base.objects, base.bytes, base.rounds)
		}
		if len(got.marked) != len(base.marked) {
			t.Fatalf("workers=%d: %d marked != %d", workers, len(got.marked), len(base.marked))
		}
		for i := range got.marked {
			if got.marked[i] != base.marked[i] {
				t.Fatalf("workers=%d: marked[%d] = %#x != %#x", workers, i, got.marked[i], base.marked[i])
			}
		}
	}
}

// TestParMarkDeferredEdges checks that deferred edges are evacuated
// sequentially in slot order and that evacuation-pushed work seeds the
// next round.
func TestParMarkDeferredEdges(t *testing.T) {
	env := testEnv(t)
	env.Counters = trace.NewCounters()
	m := NewMature(env)
	node := env.Types.Scalar("dnode", 8, 0, 1)
	var objs []objmodel.Ref
	for i := 0; i < 6; i++ {
		o := m.AllocMature(env, node, 0, env.HeapPages, 0)
		if o == mem.Nil {
			t.Fatal("alloc failed")
		}
		objs = append(objs, o)
	}
	// objs[0..2] form the "mature" seeds; objs[3..5] play the nursery:
	// every seed points at a nursery object, one shared.
	deferSet := map[objmodel.Ref]bool{objs[3]: true, objs[4]: true, objs[5]: true}
	env.Space.WriteAddr(node.RefSlotAddr(objs[0], 0), objs[4])
	env.Space.WriteAddr(node.RefSlotAddr(objs[1], 0), objs[3])
	env.Space.WriteAddr(node.RefSlotAddr(objs[2], 0), objs[4]) // shared target

	var order []mem.Addr
	evacuated := map[objmodel.Ref]bool{}
	cfg := &ParMarkConfig{
		Epoch: 9,
		Classify: func(tgt objmodel.Ref) EdgeAction {
			if deferSet[tgt] {
				return EdgeDefer
			}
			return EdgeMark
		},
	}
	var work WorkList
	for _, o := range objs[:3] {
		MarkStep(env, &work, o, 9)
	}
	NewParMarker(env, 4).Mark(cfg, &work, func(e DeferredEdge, w *WorkList) {
		order = append(order, e.Slot)
		if !evacuated[e.Target] {
			evacuated[e.Target] = true
			// Mark in place and rescan, standing in for a real copy.
			MarkStep(env, w, e.Target, 9)
		}
	})
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("deferred edges out of slot order: %v", order)
	}
	if len(order) != 3 {
		t.Fatalf("expected 3 deferred edges, got %d", len(order))
	}
	for _, o := range []objmodel.Ref{objs[3], objs[4]} {
		if !objmodel.Marked(env.Space, o, 9) {
			t.Fatalf("evacuated target %#x not marked by follow-on round", o)
		}
	}
	if objmodel.Marked(env.Space, objs[5], 9) {
		t.Fatal("unreferenced nursery object was marked")
	}
	if env.Counters.Get(trace.CMarkRounds) < 2 {
		t.Fatalf("evacuation did not seed a second round: rounds=%d", env.Counters.Get(trace.CMarkRounds))
	}
}

// TestParMarkStress is the -race matrix workload: a large random graph
// traced by many workers, checked against the sequential marked set.
func TestParMarkStress(t *testing.T) {
	n := 20000
	if testing.Short() {
		n = 4000
	}
	env := testEnv(t)
	env.Counters = trace.NewCounters()
	m := NewMature(env)
	all, root := buildRandomGraph(t, env, &m, n, 1234)

	var work WorkList
	MarkStep(env, &work, root, 5)
	MarkTrace(env, &work, 5, nil)
	seq := make([]bool, len(all))
	for i, o := range all {
		seq[i] = objmodel.Marked(env.Space, o, 5)
	}

	work.Reset()
	MarkStep(env, &work, root, 6)
	NewParMarker(env, 8).Mark(&ParMarkConfig{Epoch: 6}, &work, nil)

	for i, o := range all {
		par := objmodel.Marked(env.Space, o, 6)
		if seq[i] != par {
			t.Fatalf("marked set diverged at %#x (index %d of %d): sequential=%v parallel=%v",
				o, i, len(all), seq[i], par)
		}
	}
}

func TestSetDefaultMarkWorkers(t *testing.T) {
	old := DefaultMarkWorkers()
	defer SetDefaultMarkWorkers(0)
	SetDefaultMarkWorkers(3)
	if DefaultMarkWorkers() != 3 {
		t.Fatalf("DefaultMarkWorkers = %d", DefaultMarkWorkers())
	}
	clock := vmm.NewClock()
	v := vmm.New(clock, 128<<20, vmm.DefaultCosts())
	env := NewEnv(v, "mw-test", 8<<20)
	if env.MarkWorkers != 3 {
		t.Fatalf("Env.MarkWorkers = %d", env.MarkWorkers)
	}
	if env.Marker().Workers() != 3 {
		t.Fatalf("Marker().Workers() = %d", env.Marker().Workers())
	}
	SetDefaultMarkWorkers(0)
	if DefaultMarkWorkers() < 1 {
		t.Fatal("default below 1")
	}
	_ = old
}
