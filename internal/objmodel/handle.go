package objmodel

import "bookmarkgc/internal/mem"

// Handle is a compact uint32 encoding of a Ref — its word index — used
// where millions of references are queued and the footprint matters (the
// mark engine's deques). Word granularity covers spaces up to 32 GB
// (1<<32 words); NewParMarker enforces the bound when an engine is
// built. Handle 0 encodes mem.Nil.
type Handle uint32

// MaxHandleSpace is the largest address space Handles can cover.
const MaxHandleSpace = uint64(1<<32) * mem.WordSize

// ToHandle compresses o. Every valid Ref is word-aligned, so the word
// index is exact.
func ToHandle(o Ref) Handle { return Handle(o / mem.WordSize) }

// Ref expands h back to the reference it encodes.
func (h Handle) Ref() Ref { return Ref(h) * mem.WordSize }
