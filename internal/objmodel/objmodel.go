// Package objmodel defines the managed object model: two-word object
// headers with a status word (bookmark bit, forwarding state, mark epoch),
// type descriptors with pointer maps, and the segregated size classes of
// the paper's mature space (§3).
//
// As in Jikes RVM, the bookmark is a single bit already available in the
// object's header status word (§3.5), and objects are either scalars
// (fixed layout with a pointer map) or arrays (homogeneous elements).
// Unlike stock Jikes, headers always sit at the start of the object — the
// layout the paper adopts so a raw page scan can locate headers (§4).
package objmodel

import (
	"fmt"

	"bookmarkgc/internal/mem"
)

// HeaderWords is the size of every object header.
const HeaderWords = 2

// HeaderBytes is HeaderWords in bytes.
const HeaderBytes = HeaderWords * mem.WordSize

// Status word layout (header word 0):
//
//	bit  0      bookmark   — object is the target of a pointer from an
//	                         evicted page; treated as a root (§3.4)
//	bit  1      forwarded  — object has been copied; bits 32..63 hold the
//	                         new location as a word offset
//	bits 2..31  mark epoch — object is marked iff its epoch equals the
//	                         collector's current epoch (avoids touching
//	                         every page to clear mark bits between GCs)
//	bits 32..63 forward    — word offset of the forwarded copy
const (
	bookmarkBit  = uint64(1) << 0
	forwardedBit = uint64(1) << 1
	epochShift   = 2
	epochMask    = uint64(1)<<30 - 1
	fwdShift     = 32
)

// MaxEpoch is the largest mark epoch before wrap-around. Collectors bump
// the epoch per full collection; equality-only comparison means a stale
// epoch from 2^30 collections ago would alias, which no run approaches.
const MaxEpoch = uint32(epochMask)

// Ref is a reference to a managed object: the address of its header.
type Ref = mem.Addr

// Bookmarked reports whether the object's bookmark bit is set.
func Bookmarked(s *mem.Space, o Ref) bool {
	return s.ReadWord(o)&bookmarkBit != 0
}

// SetBookmark sets the bookmark bit.
func SetBookmark(s *mem.Space, o Ref) {
	s.WriteWord(o, s.ReadWord(o)|bookmarkBit)
}

// ClearBookmark clears the bookmark bit.
func ClearBookmark(s *mem.Space, o Ref) {
	s.WriteWord(o, s.ReadWord(o)&^bookmarkBit)
}

// Marked reports whether the object is marked in the given epoch.
func Marked(s *mem.Space, o Ref, epoch uint32) bool {
	return uint32(s.ReadWord(o)>>epochShift)&uint32(epochMask) == epoch
}

// SetMark marks the object in the given epoch, preserving other bits.
func SetMark(s *mem.Space, o Ref, epoch uint32) {
	w := s.ReadWord(o)
	w = (w &^ (epochMask << epochShift)) | uint64(epoch&uint32(epochMask))<<epochShift
	s.WriteWord(o, w)
}

// MarkIfUnmarked marks o in epoch if it is not already marked, reporting
// whether it performed the mark. It charges exactly what the open-coded
// Marked + SetMark sequence would: one status-word read when already
// marked, two reads and a write when not. The batched path applies only
// when no clock event can fall inside that window; otherwise the exact
// per-access sequence runs.
func MarkIfUnmarked(s *mem.Space, o Ref, epoch uint32) bool {
	if w, ok := s.TryBeginRMW(o); ok {
		if uint32(w>>epochShift)&uint32(epochMask) == epoch {
			return false
		}
		w = (w &^ (epochMask << epochShift)) | uint64(epoch&uint32(epochMask))<<epochShift
		s.CommitRMW(o, w)
		return true
	}
	if Marked(s, o, epoch) {
		return false
	}
	SetMark(s, o, epoch)
	return true
}

// Forwarded reports whether the object has been copied elsewhere.
func Forwarded(s *mem.Space, o Ref) bool {
	return s.ReadWord(o)&forwardedBit != 0
}

// Forward records that o has been copied to dst.
func Forward(s *mem.Space, o Ref, dst Ref) {
	w := s.ReadWord(o)
	w = (w & (bookmarkBit | epochMask<<epochShift)) | forwardedBit | uint64(dst.WordIndex())<<fwdShift
	s.WriteWord(o, w)
}

// ForwardAddr returns where o was copied to; only valid if Forwarded.
func ForwardAddr(s *mem.Space, o Ref) Ref {
	return mem.Addr(s.ReadWord(o)>>fwdShift) * mem.WordSize
}

// ClearStatus resets the full status word (used when initializing a
// freshly allocated object).
func ClearStatus(s *mem.Space, o Ref) { s.WriteWord(o, 0) }

// Header word 1: typeID in the low 32 bits, array length in the high 32.

// SetTypeWord initializes header word 1.
func SetTypeWord(s *mem.Space, o Ref, typeID int32, arrayLen int) {
	s.WriteWord(o+mem.WordSize, uint64(uint32(typeID))|uint64(uint32(arrayLen))<<32)
}

// TypeID returns the object's type identifier.
func TypeID(s *mem.Space, o Ref) int32 {
	return int32(uint32(s.ReadWord(o + mem.WordSize)))
}

// ArrayLen returns the object's array length (0 for scalars).
func ArrayLen(s *mem.Space, o Ref) int {
	return int(uint32(s.ReadWord(o+mem.WordSize) >> 32))
}

// PeekTypeID reads the type ID without touching the page (tests only).
func PeekTypeID(s *mem.Space, o Ref) int32 {
	return int32(uint32(s.PeekWord(o + mem.WordSize)))
}

// Payload returns the address of the object's first payload word.
func Payload(o Ref) mem.Addr { return o + HeaderBytes }

// Kind distinguishes scalars from arrays. The paper segregates them onto
// different superpages so a page scan can locate headers (§4).
type Kind uint8

const (
	// KindScalar objects have a fixed payload described by a pointer map.
	KindScalar Kind = iota
	// KindArray objects have a homogeneous variable-length payload.
	KindArray
)

func (k Kind) String() string {
	if k == KindScalar {
		return "scalar"
	}
	return "array"
}

// Type describes a class of objects.
type Type struct {
	ID        int32
	Name      string
	Kind      Kind
	SizeWords int     // scalar payload words (excluding header)
	PtrFields []int32 // scalar: payload word offsets holding references
	ElemPtr   bool    // array: true if elements are references
}

// PayloadWords returns the payload size in words for an instance.
func (t *Type) PayloadWords(arrayLen int) int {
	if t.Kind == KindArray {
		return arrayLen
	}
	return t.SizeWords
}

// TotalBytes returns the full object size (header + payload) in bytes.
func (t *Type) TotalBytes(arrayLen int) int {
	return HeaderBytes + t.PayloadWords(arrayLen)*mem.WordSize
}

// NumRefSlots returns how many reference slots an instance has.
func (t *Type) NumRefSlots(arrayLen int) int {
	if t.Kind == KindArray {
		if t.ElemPtr {
			return arrayLen
		}
		return 0
	}
	return len(t.PtrFields)
}

// RefSlotAddr returns the address of the object's i-th reference slot.
func (t *Type) RefSlotAddr(o Ref, i int) mem.Addr {
	if t.Kind == KindArray {
		return Payload(o) + mem.Addr(i)*mem.WordSize
	}
	return Payload(o) + mem.Addr(t.PtrFields[i])*mem.WordSize
}

// Table is a registry of type descriptors, shared by a runtime instance.
type Table struct {
	types []*Type
}

// NewTable creates an empty type table.
func NewTable() *Table { return &Table{} }

// Scalar registers a scalar type. ptrFields are payload word offsets of
// reference fields and must be in range and strictly increasing.
func (tb *Table) Scalar(name string, sizeWords int, ptrFields ...int32) *Type {
	if sizeWords < 0 {
		panic("objmodel: negative size")
	}
	prev := int32(-1)
	for _, f := range ptrFields {
		if f <= prev || int(f) >= sizeWords {
			panic(fmt.Sprintf("objmodel: bad pointer map for %s: %v", name, ptrFields))
		}
		prev = f
	}
	t := &Type{
		ID:        int32(len(tb.types)),
		Name:      name,
		Kind:      KindScalar,
		SizeWords: sizeWords,
		PtrFields: ptrFields,
	}
	tb.types = append(tb.types, t)
	return t
}

// Array registers an array type whose elements are (or are not) refs.
func (tb *Table) Array(name string, elemPtr bool) *Type {
	t := &Type{
		ID:      int32(len(tb.types)),
		Name:    name,
		Kind:    KindArray,
		ElemPtr: elemPtr,
	}
	tb.types = append(tb.types, t)
	return t
}

// Get returns the type with the given ID.
func (tb *Table) Get(id int32) *Type { return tb.types[id] }

// Len returns the number of registered types.
func (tb *Table) Len() int { return len(tb.types) }

// TypeOf reads an object's type descriptor and array length: two charged
// header reads (type ID, then array length), batched into one load when
// no clock event falls between them.
func (tb *Table) TypeOf(s *mem.Space, o Ref) (*Type, int) {
	w1, w2 := s.ReadWordPair(o + mem.WordSize)
	return tb.types[int32(uint32(w1))], int(uint32(w2 >> 32))
}
