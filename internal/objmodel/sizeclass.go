package objmodel

import (
	"fmt"
	"math"

	"bookmarkgc/internal/mem"
)

// The paper's segregated size classes (§3): every allocation size up to
// SmallCutoff gets its own class; above that, LargerClasses classes cover
// sizes up to half a superpage's usable space. The table is designed so
// that worst-case internal fragmentation stays below ~15% for all but the
// largest five classes (which land between roughly 16% and 33%), while
// external fragmentation (the unusable tail of a superpage) stays below
// 25%.
const (
	// SmallCutoff: every block size up to this many bytes is exact.
	SmallCutoff = 64
	// LargerClasses is the number of size classes above SmallCutoff.
	LargerClasses = 37
	// largeDivisorClasses of those are the "five largest": block sizes of
	// the form usable/n for n in 2..6, which pack superpages exactly.
	largeDivisorClasses = 5
	// SuperHeaderBytes is the metadata region reserved at the start of
	// every superpage (always memory-resident, reached by bit-masking).
	SuperHeaderBytes = 512
	// SuperUsableBytes is the allocatable space in one superpage.
	SuperUsableBytes = mem.SuperSize - SuperHeaderBytes
)

// SizeClass describes one segregated allocation class.
type SizeClass struct {
	Index     int
	BlockSize int // bytes per block, including the object header
	Blocks    int // blocks per superpage
}

// ExternalWaste returns the unusable tail bytes of a superpage in this
// class.
func (c SizeClass) ExternalWaste() int {
	return SuperUsableBytes - c.Blocks*c.BlockSize
}

// Classes is the full size-class table plus a size→class lookup index.
type Classes struct {
	classes []SizeClass
	lookup  []int8 // (size/WordSize - 1) -> class index, -1 = large object
	largest int
}

func alignDown(n int) int { return n / mem.WordSize * mem.WordSize }

// BuildClasses constructs the size-class table deterministically:
//
//   - exact classes at every word multiple from HeaderBytes to SmallCutoff;
//   - a geometric ladder of LargerClasses-largeDivisorClasses classes from
//     SmallCutoff+word up to usable/(largeDivisorClasses+2), giving ≲15%
//     worst-case internal fragmentation;
//   - the largeDivisorClasses largest classes at usable/n for n from
//     largeDivisorClasses+1 down to 2, which waste almost nothing
//     externally but cost 16–33% worst-case internally.
func BuildClasses() *Classes {
	geoCount := LargerClasses - largeDivisorClasses
	geoTop := alignDown(SuperUsableBytes / (largeDivisorClasses + 2))
	geoBase := SmallCutoff + mem.WordSize

	ratio := math.Pow(float64(geoTop)/float64(geoBase), 1/float64(geoCount-1))
	var larger []int
	s := float64(geoBase)
	prev := SmallCutoff
	for i := 0; i < geoCount; i++ {
		sz := alignDown(int(math.Round(s)))
		if sz <= prev {
			sz = prev + mem.WordSize
		}
		if i == geoCount-1 {
			sz = geoTop
		}
		larger = append(larger, sz)
		prev = sz
		s *= ratio
	}
	for n := largeDivisorClasses + 1; n >= 2; n-- {
		sz := alignDown(SuperUsableBytes / n)
		if sz <= prev {
			panic(fmt.Sprintf("objmodel: divisor class %d not monotonic", n))
		}
		larger = append(larger, sz)
		prev = sz
	}
	if len(larger) != LargerClasses {
		panic(fmt.Sprintf("objmodel: built %d larger classes, want %d", len(larger), LargerClasses))
	}

	var all []int
	for sz := HeaderBytes; sz <= SmallCutoff; sz += mem.WordSize {
		all = append(all, sz)
	}
	all = append(all, larger...)

	c := &Classes{largest: larger[len(larger)-1]}
	for i, sz := range all {
		c.classes = append(c.classes, SizeClass{
			Index:     i,
			BlockSize: sz,
			Blocks:    SuperUsableBytes / sz,
		})
	}
	// lookup[w-1] = smallest class whose block holds w words (w includes
	// the header).
	c.lookup = make([]int8, c.largest/mem.WordSize)
	for i := range c.lookup {
		c.lookup[i] = -1
	}
	ci := 0
	for w := 1; w <= c.largest/mem.WordSize; w++ {
		for ci < len(all) && all[ci] < w*mem.WordSize {
			ci++
		}
		if ci < len(all) {
			c.lookup[w-1] = int8(ci)
		}
	}
	return c
}

// Len returns the number of size classes.
func (c *Classes) Len() int { return len(c.classes) }

// Class returns the i-th size class.
func (c *Classes) Class(i int) SizeClass { return c.classes[i] }

// LargestBlock returns the biggest block size the mature space handles;
// larger objects go to the large object space. This is the paper's
// "half the size of a superpage minus metadata" threshold.
func (c *Classes) LargestBlock() int { return c.largest }

// ForSize returns the class for an object of the given total byte size
// (header included), or ok=false if it belongs in the large object space.
func (c *Classes) ForSize(totalBytes int) (SizeClass, bool) {
	if totalBytes < HeaderBytes {
		totalBytes = HeaderBytes
	}
	w := (totalBytes + mem.WordSize - 1) / mem.WordSize
	if w > c.largest/mem.WordSize {
		return SizeClass{}, false
	}
	idx := c.lookup[w-1]
	if idx < 0 {
		return SizeClass{}, false
	}
	return c.classes[idx], true
}

// MaxBlocksPerSuper is the largest possible block count in any class
// (that of the smallest class); superpage header bitmaps are sized to it.
func (c *Classes) MaxBlocksPerSuper() int { return c.classes[0].Blocks }
