package objmodel

import "bookmarkgc/internal/mem"

// Raw header access for the parallel mark engine (internal/gc): the
// same status-word encoding as objmodel.go, read and written through a
// mem.AtomicView so concurrent workers never race and never advance the
// simulated clock. The engine accounts for these accesses itself and
// replays them against the Space in canonical order.

// MarkedRaw reports whether o is marked in epoch, via one atomic load.
func MarkedRaw(v *mem.AtomicView, o Ref, epoch uint32) bool {
	return uint32(v.Load(o)>>epochShift)&uint32(epochMask) == epoch
}

// TryMark marks o in epoch with a compare-and-swap loop, preserving the
// bookmark, forwarded, and forwarding-address bits. It reports whether
// this caller performed the marking — exactly one of any number of
// concurrent callers wins, so the winner alone queues o for scanning.
func TryMark(v *mem.AtomicView, o Ref, epoch uint32) bool {
	for {
		w := v.Load(o)
		if uint32(w>>epochShift)&uint32(epochMask) == epoch {
			return false
		}
		nw := (w &^ (epochMask << epochShift)) | uint64(epoch&uint32(epochMask))<<epochShift
		if v.CompareAndSwap(o, w, nw) {
			return true
		}
		// Lost a race: either a competing marker won (next load sees the
		// epoch and returns false) or an unrelated bit changed, which
		// cannot happen during a parallel phase — retry regardless.
	}
}

// TypeOfRaw decodes o's type descriptor and array length from one
// atomic load of header word 1.
func TypeOfRaw(v *mem.AtomicView, tb *Table, o Ref) (*Type, int) {
	w := v.Load(o + mem.WordSize)
	return tb.Get(int32(uint32(w))), int(uint32(w >> 32))
}
