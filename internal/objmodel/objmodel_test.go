package objmodel

import (
	"testing"
	"testing/quick"

	"bookmarkgc/internal/mem"
)

func space() *mem.Space { return mem.NewSpace(16*mem.PageSize, nil) }

func TestStatusBitsIndependent(t *testing.T) {
	s := space()
	o := Ref(mem.PageSize)
	ClearStatus(s, o)

	SetBookmark(s, o)
	if !Bookmarked(s, o) {
		t.Fatal("bookmark not set")
	}
	SetMark(s, o, 7)
	if !Marked(s, o, 7) || Marked(s, o, 8) {
		t.Fatal("mark epoch wrong")
	}
	if !Bookmarked(s, o) {
		t.Fatal("SetMark clobbered bookmark")
	}
	ClearBookmark(s, o)
	if Bookmarked(s, o) {
		t.Fatal("bookmark not cleared")
	}
	if !Marked(s, o, 7) {
		t.Fatal("ClearBookmark clobbered mark")
	}
}

func TestForwarding(t *testing.T) {
	s := space()
	o := Ref(mem.PageSize)
	dst := Ref(3 * mem.PageSize)
	ClearStatus(s, o)
	SetBookmark(s, o)
	if Forwarded(s, o) {
		t.Fatal("fresh object forwarded")
	}
	Forward(s, o, dst)
	if !Forwarded(s, o) {
		t.Fatal("not forwarded")
	}
	if got := ForwardAddr(s, o); got != dst {
		t.Fatalf("ForwardAddr = %#x, want %#x", got, dst)
	}
	if !Bookmarked(s, o) {
		t.Fatal("Forward clobbered bookmark")
	}
}

func TestForwardRoundTripProperty(t *testing.T) {
	s := space()
	o := Ref(mem.PageSize)
	f := func(rawDst uint16, epoch uint16) bool {
		dst := Ref(mem.PageSize + mem.Addr(rawDst)*mem.WordSize)
		ClearStatus(s, o)
		SetMark(s, o, uint32(epoch))
		Forward(s, o, dst)
		return ForwardAddr(s, o) == dst && Marked(s, o, uint32(epoch))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeWord(t *testing.T) {
	s := space()
	o := Ref(mem.PageSize)
	SetTypeWord(s, o, 42, 1000)
	if TypeID(s, o) != 42 {
		t.Fatalf("TypeID = %d", TypeID(s, o))
	}
	if ArrayLen(s, o) != 1000 {
		t.Fatalf("ArrayLen = %d", ArrayLen(s, o))
	}
}

func TestTypeTable(t *testing.T) {
	tb := NewTable()
	node := tb.Scalar("node", 4, 0, 2)
	arr := tb.Array("refs", true)
	data := tb.Array("bytes", false)

	if node.TotalBytes(0) != HeaderBytes+4*mem.WordSize {
		t.Fatalf("scalar TotalBytes = %d", node.TotalBytes(0))
	}
	if arr.TotalBytes(10) != HeaderBytes+10*mem.WordSize {
		t.Fatalf("array TotalBytes = %d", arr.TotalBytes(10))
	}
	if node.NumRefSlots(0) != 2 || arr.NumRefSlots(5) != 5 || data.NumRefSlots(5) != 0 {
		t.Fatal("NumRefSlots wrong")
	}
	o := Ref(mem.PageSize)
	if node.RefSlotAddr(o, 1) != Payload(o)+2*mem.WordSize {
		t.Fatal("scalar RefSlotAddr wrong")
	}
	if arr.RefSlotAddr(o, 3) != Payload(o)+3*mem.WordSize {
		t.Fatal("array RefSlotAddr wrong")
	}

	s := space()
	SetTypeWord(s, o, node.ID, 0)
	got, n := tb.TypeOf(s, o)
	if got != node || n != 0 {
		t.Fatal("TypeOf wrong")
	}
}

func TestTypeTableValidation(t *testing.T) {
	tb := NewTable()
	for name, fn := range map[string]func(){
		"descending ptr map": func() { tb.Scalar("x", 4, 2, 1) },
		"out of range field": func() { tb.Scalar("x", 4, 4) },
		"negative size":      func() { tb.Scalar("x", -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSizeClassCount(t *testing.T) {
	c := BuildClasses()
	// Paper: one class per size up to 64 bytes, 37 larger classes.
	small := (SmallCutoff-HeaderBytes)/mem.WordSize + 1
	if c.Len() != small+LargerClasses {
		t.Fatalf("got %d classes, want %d small + %d larger", c.Len(), small, LargerClasses)
	}
}

func TestSizeClassInvariants(t *testing.T) {
	c := BuildClasses()
	prev := 0
	for i := 0; i < c.Len(); i++ {
		cl := c.Class(i)
		if cl.BlockSize <= prev {
			t.Fatalf("class %d not strictly increasing: %d after %d", i, cl.BlockSize, prev)
		}
		if cl.BlockSize%mem.WordSize != 0 {
			t.Fatalf("class %d block size %d not word aligned", i, cl.BlockSize)
		}
		if cl.Blocks < 2 {
			t.Fatalf("class %d has %d blocks per superpage", i, cl.Blocks)
		}
		if cl.Blocks*cl.BlockSize > SuperUsableBytes {
			t.Fatalf("class %d overflows superpage", i)
		}
		// External fragmentation bound (paper: 25%).
		if w := float64(cl.ExternalWaste()) / SuperUsableBytes; w > 0.25 {
			t.Fatalf("class %d external waste %.0f%% exceeds 25%%", i, w*100)
		}
		prev = cl.BlockSize
	}
}

func TestSizeClassFragmentationBounds(t *testing.T) {
	c := BuildClasses()
	// Worst-case internal fragmentation: an object one word larger than
	// the previous class must waste <15% of its block, except in the five
	// largest classes where up to ~34% is allowed (paper §3).
	for i := 1; i < c.Len(); i++ {
		cl := c.Class(i)
		minObj := c.Class(i-1).BlockSize + mem.WordSize
		frag := float64(cl.BlockSize-minObj) / float64(cl.BlockSize)
		limit := 0.15
		if i >= c.Len()-5 {
			limit = 0.34
		}
		if frag > limit {
			t.Errorf("class %d (block %d): worst-case frag %.1f%% > %.0f%%",
				i, cl.BlockSize, frag*100, limit*100)
		}
	}
}

func TestForSize(t *testing.T) {
	c := BuildClasses()
	// Exact small sizes map to their own class.
	for sz := HeaderBytes; sz <= SmallCutoff; sz += mem.WordSize {
		cl, ok := c.ForSize(sz)
		if !ok || cl.BlockSize != sz {
			t.Fatalf("ForSize(%d) = %+v, %v", sz, cl, ok)
		}
	}
	// Objects over the largest class go to the LOS.
	if _, ok := c.ForSize(c.LargestBlock() + 1); ok {
		t.Fatal("oversized object got a class")
	}
	if _, ok := c.ForSize(c.LargestBlock()); !ok {
		t.Fatal("largest block has no class")
	}
	// The paper's LOS threshold is about half a superpage minus metadata.
	if c.LargestBlock() < SuperUsableBytes/2-mem.WordSize || c.LargestBlock() > SuperUsableBytes/2 {
		t.Fatalf("LargestBlock = %d, want about %d", c.LargestBlock(), SuperUsableBytes/2)
	}
}

func TestForSizeProperty(t *testing.T) {
	c := BuildClasses()
	// Property: every size in range gets the smallest class that fits it.
	f := func(raw uint16) bool {
		sz := int(raw)
		if sz > c.LargestBlock() {
			sz = sz % c.LargestBlock()
		}
		if sz < HeaderBytes {
			sz = HeaderBytes
		}
		cl, ok := c.ForSize(sz)
		if !ok {
			return false
		}
		if cl.BlockSize < sz {
			return false
		}
		// Smallest fitting class: previous class must be too small.
		return cl.Index == 0 || c.Class(cl.Index-1).BlockSize < sz
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
