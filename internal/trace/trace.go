// Package trace is the structured observability layer of the simulator:
// a low-overhead event tracer for GC phases and VM-cooperation events,
// and a registry of monotonic counters, histograms, and per-class counter
// vectors. The paper's evaluation (Figs. 2–7) is built on exactly this
// kind of per-phase, per-event telemetry: pause breakdowns, page-movement
// counts, and bookmark traffic. Everything here is driven by the
// simulated clock, so traces are deterministic and never perturb the
// measured run.
//
// Two implementations of Tracer exist: Recorder, which appends fixed-size
// records to an in-memory buffer for later export (Chrome trace_event or
// JSONL, see export.go), and Nop, whose methods are empty — the disabled
// path costs one interface call per site and allocates nothing.
package trace

import "time"

// TimeSource supplies timestamps; the simulator's vmm.Clock satisfies it.
type TimeSource interface {
	Now() time.Duration
}

// Phase identifies a span (a Begin/End pair) in the collector: either a
// whole stop-the-world pause or one phase within it.
type Phase uint8

const (
	// PhasePauseNursery is a minor-collection pause (all collectors).
	PhasePauseNursery Phase = iota
	// PhasePauseFull is a major-collection pause (all collectors).
	PhasePauseFull
	// PhasePauseCompact is a compacting-collection pause.
	PhasePauseCompact
	// PhaseNurseryScan is BC's nursery copy pass (remset + roots + Cheney).
	PhaseNurseryScan
	// PhaseMark is a full-heap marking pass.
	PhaseMark
	// PhaseSweep is a superpage + LOS sweep.
	PhaseSweep
	// PhaseCompactSelect is compaction target-superpage selection (§3.2).
	PhaseCompactSelect
	// PhaseCheneyForward is the compaction copy pass (Cheney forwarding).
	PhaseCheneyForward
	// PhaseFailSafe is the completeness fail-safe collection (§3.5).
	PhaseFailSafe
	// PhaseRootScan is the stack/global root enumeration at the start of
	// a collection (all collectors).
	PhaseRootScan

	numPhases
)

var phaseNames = [numPhases]string{
	PhasePauseNursery:  "pause:nursery",
	PhasePauseFull:     "pause:full",
	PhasePauseCompact:  "pause:compact",
	PhaseNurseryScan:   "nursery-scan",
	PhaseMark:          "mark",
	PhaseSweep:         "sweep",
	PhaseCompactSelect: "compact-select",
	PhaseCheneyForward: "cheney-forward",
	PhaseFailSafe:      "failsafe",
	PhaseRootScan:      "root-scan",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "invalid"
}

// NumPhases is the number of defined span kinds (for table-driven tests).
const NumPhases = int(numPhases)

// Event identifies an instant (point) event, mostly the VM-cooperation
// protocol of §3.3–3.4. Each event carries two integer arguments whose
// meaning is documented per constant; Arg names them for exporters.
type Event uint8

const (
	// EvEvictionScheduled: the VMM chose arg1=page as an eviction victim.
	EvEvictionScheduled Event = iota
	// EvPageDiscarded: arg1=page was empty and returned via madvise.
	EvPageDiscarded
	// EvPageProcessed: arg1=page was scanned and bookmarked before
	// relinquishment; arg2=objects bookmarked while processing it.
	EvPageProcessed
	// EvPageReloaded: arg1=page came back; arg2=1 if it was evicted
	// (major fault), 0 if it was only protected.
	EvPageReloaded
	// EvBookmarkCleared: reload bookkeeping for arg1=page decremented
	// arg2 incoming-bookmark counters (§3.4.2).
	EvBookmarkCleared
	// EvBookmarkDeferred: reload bookkeeping for arg1=page was postponed
	// because arg2 of its covered objects still straddle evicted pages.
	EvBookmarkDeferred
	// EvHeapShrink: the footprint target dropped to arg1 pages from arg2.
	EvHeapShrink
	// EvHeapRegrow: the footprint target rose to arg1 pages from arg2.
	EvHeapRegrow
	// EvPreventiveBookmark: arg1=page was processed while a collection
	// was in progress; its bookmarks joined the live worklist (§3.4.3).
	EvPreventiveBookmark
	// EvMemoryPinned: signalmem pinned arg1 frames (arg2=total pinned).
	EvMemoryPinned
	// EvResidencyRepaired: the collection-start audit found arg1=page out
	// of sync with the kernel and repaired the books; arg2=0 for a silent
	// eviction, 1 for an unnotified reload.
	EvResidencyRepaired
	// EvNotificationIgnored: a notification for arg1=page was rejected as
	// impossible; arg2=0 stale eviction, 1 duplicate eviction, 2 spurious
	// reload.
	EvNotificationIgnored

	numEvents
)

var eventNames = [numEvents]string{
	EvEvictionScheduled:   "eviction-scheduled",
	EvPageDiscarded:       "page-discarded",
	EvPageProcessed:       "page-processed",
	EvPageReloaded:        "page-reloaded",
	EvBookmarkCleared:     "bookmark-cleared",
	EvBookmarkDeferred:    "bookmark-deferred",
	EvHeapShrink:          "heap-shrink",
	EvHeapRegrow:          "heap-regrow",
	EvPreventiveBookmark:  "preventive-bookmark",
	EvMemoryPinned:        "memory-pinned",
	EvResidencyRepaired:   "residency-repaired",
	EvNotificationIgnored: "notification-ignored",
}

// eventArgNames names the two arguments of each event for exporters; an
// empty name means the argument is unused and omitted from output.
var eventArgNames = [numEvents][2]string{
	EvEvictionScheduled:   {"page", ""},
	EvPageDiscarded:       {"page", ""},
	EvPageProcessed:       {"page", "bookmarked"},
	EvPageReloaded:        {"page", "wasEvicted"},
	EvBookmarkCleared:     {"page", "decrements"},
	EvBookmarkDeferred:    {"page", "straddlers"},
	EvHeapShrink:          {"targetPages", "was"},
	EvHeapRegrow:          {"targetPages", "was"},
	EvPreventiveBookmark:  {"page", ""},
	EvMemoryPinned:        {"frames", "totalPinned"},
	EvResidencyRepaired:   {"page", "kind"},
	EvNotificationIgnored: {"page", "kind"},
}

func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return "invalid"
}

// Arg returns the exporter name of argument i (0 or 1) of e; "" if unused.
func (e Event) Arg(i int) string {
	if int(e) < len(eventArgNames) && i >= 0 && i < 2 {
		return eventArgNames[e][i]
	}
	return ""
}

// NumEvents is the number of defined point-event kinds.
const NumEvents = int(numEvents)

// Tracer is the interface the runtime emits events through. Spans must
// nest properly per tracer (Begin/End in stack order); point events may
// fire anywhere, including inside spans.
type Tracer interface {
	// Enabled reports whether events are recorded; call sites with
	// expensive arguments may check it first.
	Enabled() bool
	// Begin opens a span of kind p at the current time.
	Begin(p Phase)
	// End closes the innermost open span of kind p.
	End(p Phase)
	// Point records an instant event with its two arguments.
	Point(e Event, arg1, arg2 int64)
}

// Nop is the disabled tracer: every method is an empty body.
type Nop struct{}

// Enabled implements Tracer.
func (Nop) Enabled() bool { return false }

// Begin implements Tracer.
func (Nop) Begin(Phase) {}

// End implements Tracer.
func (Nop) End(Phase) {}

// Point implements Tracer.
func (Nop) Point(Event, int64, int64) {}

var _ Tracer = Nop{}
var _ Tracer = (*Recorder)(nil)

// record is one trace entry. Fixed-size and value-typed so recording is
// one slice append: no per-event allocation once the buffer has grown.
type record struct {
	ts   time.Duration
	tid  int32
	kind uint8 // recBegin, recEnd, recPoint
	code uint8 // Phase or Event
	a1   int64
	a2   int64
}

const (
	recBegin = iota
	recEnd
	recPoint
)

// shared is the buffer and clock a Recorder and its Thread views share.
type shared struct {
	clock   TimeSource
	recs    []record
	threads []string // tid-1 -> display name
}

// Recorder is the recording Tracer: events append to a shared in-memory
// buffer, exported after the run (export.go). Thread creates additional
// views over the same buffer with their own thread IDs, so multi-JVM runs
// interleave into one trace.
type Recorder struct {
	sh  *shared
	tid int32
}

// NewRecorder creates a recorder whose root thread is named name. ts may
// be nil and supplied later with SetClock (the simulator's clock is born
// inside sim.Run).
func NewRecorder(ts TimeSource, name string) *Recorder {
	if name == "" {
		name = "main"
	}
	return &Recorder{sh: &shared{clock: ts, threads: []string{name}}, tid: 1}
}

// SetClock installs the time source; events recorded with no clock carry
// timestamp zero.
func (r *Recorder) SetClock(ts TimeSource) { r.sh.clock = ts }

// Thread returns a tracer view writing into the same buffer under a new
// thread ID displayed as name.
func (r *Recorder) Thread(name string) *Recorder {
	r.sh.threads = append(r.sh.threads, name)
	return &Recorder{sh: r.sh, tid: int32(len(r.sh.threads))}
}

// Len returns the number of recorded events across all threads.
func (r *Recorder) Len() int { return len(r.sh.recs) }

func (r *Recorder) now() time.Duration {
	if r.sh.clock == nil {
		return 0
	}
	return r.sh.clock.Now()
}

// Enabled implements Tracer.
func (r *Recorder) Enabled() bool { return true }

// Begin implements Tracer.
func (r *Recorder) Begin(p Phase) {
	r.sh.recs = append(r.sh.recs, record{ts: r.now(), tid: r.tid, kind: recBegin, code: uint8(p)})
}

// End implements Tracer.
func (r *Recorder) End(p Phase) {
	r.sh.recs = append(r.sh.recs, record{ts: r.now(), tid: r.tid, kind: recEnd, code: uint8(p)})
}

// Point implements Tracer.
func (r *Recorder) Point(e Event, arg1, arg2 int64) {
	r.sh.recs = append(r.sh.recs, record{ts: r.now(), tid: r.tid, kind: recPoint, code: uint8(e), a1: arg1, a2: arg2})
}
