package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock is a settable TimeSource.
type fakeClock struct{ t time.Duration }

func (f *fakeClock) Now() time.Duration { return f.t }

func TestNames(t *testing.T) {
	for p := Phase(0); int(p) < NumPhases; p++ {
		if p.String() == "" || p.String() == "invalid" {
			t.Errorf("phase %d has no name", p)
		}
	}
	for e := Event(0); int(e) < NumEvents; e++ {
		if e.String() == "" || e.String() == "invalid" {
			t.Errorf("event %d has no name", e)
		}
		if e.Arg(0) == "" {
			t.Errorf("event %s has no first argument name", e)
		}
	}
	for c := Counter(0); int(c) < NumCounters; c++ {
		if c.String() == "" || c.String() == "invalid" {
			t.Errorf("counter %d has no name", c)
		}
	}
	if Phase(200).String() != "invalid" || Event(200).String() != "invalid" {
		t.Error("out-of-range kinds must stringify as invalid")
	}
}

func TestRecorderRecords(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(clk, "proc")
	r.Begin(PhaseMark)
	clk.t = 5 * time.Microsecond
	r.Point(EvPageDiscarded, 42, 0)
	clk.t = 9 * time.Microsecond
	r.End(PhaseMark)
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if !r.Enabled() {
		t.Fatal("recorder must report enabled")
	}
	recs := r.sh.recs
	if recs[0].kind != recBegin || recs[2].kind != recEnd {
		t.Fatal("span records out of order")
	}
	if recs[1].a1 != 42 || recs[1].ts != 5*time.Microsecond {
		t.Fatalf("point record = %+v", recs[1])
	}
}

func TestThreadsShareBuffer(t *testing.T) {
	r := NewRecorder(&fakeClock{}, "machine")
	t1 := r.Thread("jvm0")
	t2 := r.Thread("jvm1")
	t1.Begin(PhaseMark)
	t2.Begin(PhaseSweep)
	t1.End(PhaseMark)
	t2.End(PhaseSweep)
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if t1.tid == t2.tid || t1.tid == r.tid {
		t.Fatal("thread ids must be distinct")
	}
}

// chromeEvent is the subset of the trace_event schema the tests check.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func TestWriteChromeWellFormed(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(clk, "test")
	r.Begin(PhasePauseFull)
	clk.t = time.Microsecond
	r.Begin(PhaseMark)
	clk.t = 2 * time.Microsecond
	r.Point(EvPageProcessed, 7, 3)
	clk.t = 3 * time.Microsecond
	r.End(PhaseMark)
	r.End(PhasePauseFull)

	var buf bytes.Buffer
	if err := r.WriteChrome(&buf, "gcsim"); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var stack []string
	last := -1.0
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "B":
			stack = append(stack, ev.Name)
		case "E":
			if len(stack) == 0 || stack[len(stack)-1] != ev.Name {
				t.Fatalf("unbalanced E event %q (stack %v)", ev.Name, stack)
			}
			stack = stack[:len(stack)-1]
		case "i":
			if ev.Name != "page-processed" || ev.Args["page"] != 7.0 || ev.Args["bookmarked"] != 3.0 {
				t.Fatalf("instant event wrong: %+v", ev)
			}
		}
		if ev.Ph != "M" {
			if ev.Ts < last {
				t.Fatalf("timestamps not monotone: %f after %f", ev.Ts, last)
			}
			last = ev.Ts
		}
	}
	if len(stack) != 0 {
		t.Fatalf("unclosed spans: %v", stack)
	}
}

func TestWriteJSONLWellFormed(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(clk, "test")
	r.Begin(PhaseNurseryScan)
	r.Point(EvHeapShrink, 100, 120)
	r.End(PhaseNurseryScan)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // thread + begin + point + end
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line not valid JSON: %v: %s", err, ln)
		}
		if m["type"] == "" {
			t.Fatalf("line missing type: %s", ln)
		}
	}
}

func TestNopTracer(t *testing.T) {
	var tr Tracer = Nop{}
	if tr.Enabled() {
		t.Fatal("Nop must report disabled")
	}
	tr.Begin(PhaseMark)
	tr.Point(EvPageDiscarded, 1, 2)
	tr.End(PhaseMark)
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.Inc(CObjectsBookmarked)
	c.Add(CForwardedBytes, 100)
	c.Observe(HDiscardBatch, 5)
	c.AddVec(VSuperAllocsByClass, 3, 1)
	if c.Get(CObjectsBookmarked) != 0 {
		t.Fatal("nil registry must read zero")
	}
	if c.VecValues(VSuperAllocsByClass) != nil {
		t.Fatal("nil registry must have empty vectors")
	}
	if h := c.Histogram(HDiscardBatch); h.Count != 0 {
		t.Fatal("nil registry must have empty histograms")
	}
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCountersAccumulate(t *testing.T) {
	c := NewCounters()
	c.Inc(CPagesDiscarded)
	c.Add(CPagesDiscarded, 4)
	if got := c.Get(CPagesDiscarded); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	c.AddVec(VSuperAllocsByClass, 2, 3)
	c.AddVec(VSuperAllocsByClass, 0, 1)
	if v := c.VecValues(VSuperAllocsByClass); len(v) != 3 || v[2] != 3 || v[0] != 1 {
		t.Fatalf("vec = %v", v)
	}
}

func TestHistogramBuckets(t *testing.T) {
	c := NewCounters()
	for _, v := range []uint64{0, 1, 1, 2, 3, 64} {
		c.Observe(HDiscardBatch, v)
	}
	h := c.Histogram(HDiscardBatch)
	if h.Count != 6 || h.Sum != 71 || h.Max != 64 {
		t.Fatalf("histogram = %+v", h)
	}
	// bits.Len buckets: 0 -> b0, 1 -> b1 (twice), 2..3 -> b2, 64 -> b7.
	if h.Buckets[0] != 1 || h.Buckets[1] != 2 || h.Buckets[2] != 2 || h.Buckets[7] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if got := h.Mean(); got < 11.8 || got > 11.9 {
		t.Fatalf("mean = %v", got)
	}
}

func TestCountersJSONValid(t *testing.T) {
	c := NewCounters()
	c.Add(CForwardedBytes, 1234)
	c.Observe(HPageBookmarks, 9)
	c.AddVec(VSuperAllocsByClass, 1, 2)
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("counters JSONL not valid JSON: %v\n%s", err, buf.String())
	}
	if m["type"] != "counters" {
		t.Fatalf("type = %v", m["type"])
	}
}
