package trace

import (
	"bufio"
	"fmt"
	"io"
	"time"
)

// This file serializes a Recorder's buffer. Two formats:
//
//   - Chrome trace_event JSON (the "JSON Array Format"): loadable in
//     chrome://tracing and Perfetto. Spans become ph:"B"/"E" duration
//     events, point events become ph:"i" instant events, and thread
//     names are emitted as metadata events.
//   - JSONL: one self-describing JSON object per line, for ad-hoc
//     processing with jq/pandas.
//
// All event and argument names are fixed ASCII identifiers from this
// package, so the JSON is assembled with fmt directly.

// usec renders a simulated timestamp in microseconds, Chrome's unit.
func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChrome writes the buffer in Chrome trace_event format. process
// names the trace's single process (e.g. the gcsim invocation).
func (r *Recorder) WriteChrome(w io.Writer, process string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":%q}}", process)
	for i, name := range r.sh.threads {
		fmt.Fprintf(bw, ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":%q}}", i+1, name)
	}
	for _, rec := range r.sh.recs {
		bw.WriteString(",\n")
		switch rec.kind {
		case recBegin, recEnd:
			ph := "B"
			if rec.kind == recEnd {
				ph = "E"
			}
			fmt.Fprintf(bw, "{\"name\":%q,\"cat\":\"gc\",\"ph\":%q,\"ts\":%.3f,\"pid\":1,\"tid\":%d}",
				Phase(rec.code).String(), ph, usec(rec.ts), rec.tid)
		case recPoint:
			e := Event(rec.code)
			fmt.Fprintf(bw, "{\"name\":%q,\"cat\":\"vm\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{",
				e.String(), usec(rec.ts), rec.tid)
			writeArgs(bw, e, rec.a1, rec.a2)
			bw.WriteString("}}")
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// WriteJSONL writes the buffer as one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, name := range r.sh.threads {
		fmt.Fprintf(bw, "{\"type\":\"thread\",\"tid\":%d,\"name\":%q}\n", i+1, name)
	}
	for _, rec := range r.sh.recs {
		switch rec.kind {
		case recBegin, recEnd:
			typ := "begin"
			if rec.kind == recEnd {
				typ = "end"
			}
			fmt.Fprintf(bw, "{\"type\":%q,\"ts_us\":%.3f,\"tid\":%d,\"name\":%q}\n",
				typ, usec(rec.ts), rec.tid, Phase(rec.code).String())
		case recPoint:
			e := Event(rec.code)
			fmt.Fprintf(bw, "{\"type\":\"point\",\"ts_us\":%.3f,\"tid\":%d,\"name\":%q",
				usec(rec.ts), rec.tid, e.String())
			if e.Arg(0) != "" || e.Arg(1) != "" {
				bw.WriteString(",\"args\":{")
				writeArgs(bw, e, rec.a1, rec.a2)
				bw.WriteString("}")
			}
			bw.WriteString("}\n")
		}
	}
	return bw.Flush()
}

// writeArgs writes the named, non-empty arguments of e as JSON members.
func writeArgs(w io.Writer, e Event, a1, a2 int64) {
	sep := ""
	if n := e.Arg(0); n != "" {
		fmt.Fprintf(w, "%q:%d", n, a1)
		sep = ","
	}
	if n := e.Arg(1); n != "" {
		fmt.Fprintf(w, "%s%q:%d", sep, n, a2)
	}
}

// WriteText writes the registry as aligned "name value" lines, followed
// by histogram and vector summaries. Zero-valued entries are included so
// output columns are stable across runs.
func (c *Counters) WriteText(w io.Writer) error {
	if c == nil {
		_, err := fmt.Fprintln(w, "(counters disabled)")
		return err
	}
	bw := bufio.NewWriter(w)
	width := 0
	for _, n := range counterNames {
		if len(n) > width {
			width = len(n)
		}
	}
	for id, n := range counterNames {
		fmt.Fprintf(bw, "%-*s %d\n", width, n, c.vals[id])
	}
	for id := range c.hists {
		h := &c.hists[id]
		fmt.Fprintf(bw, "%-*s count=%d sum=%d max=%d mean=%.2f buckets=[", width, histNames[id], h.Count, h.Sum, h.Max, h.Mean())
		sep := ""
		for b, n := range h.Buckets {
			if n == 0 {
				continue
			}
			fmt.Fprintf(bw, "%s<=%d:%d", sep, bucketUpper(b), n)
			sep = " "
		}
		bw.WriteString("]\n")
	}
	for id := range c.vecs {
		if len(c.vecs[id]) == 0 {
			continue
		}
		fmt.Fprintf(bw, "%-*s [", width, vecNames[id])
		sep := ""
		for i, n := range c.vecs[id] {
			if n == 0 {
				continue
			}
			fmt.Fprintf(bw, "%s%d:%d", sep, i, n)
			sep = " "
		}
		bw.WriteString("]\n")
	}
	return bw.Flush()
}

// WriteJSONL writes the registry as one JSON object on a single line, so
// it can be appended to a JSONL trace file.
func (c *Counters) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"type\":\"counters\"")
	if c != nil {
		bw.WriteString(",\"counters\":{")
		for id, n := range counterNames {
			if id > 0 {
				bw.WriteString(",")
			}
			fmt.Fprintf(bw, "%q:%d", n, c.vals[id])
		}
		bw.WriteString("},\"histograms\":{")
		for id := range c.hists {
			h := &c.hists[id]
			if id > 0 {
				bw.WriteString(",")
			}
			fmt.Fprintf(bw, "%q:{\"count\":%d,\"sum\":%d,\"max\":%d}", histNames[id], h.Count, h.Sum, h.Max)
		}
		bw.WriteString("},\"vectors\":{")
		for id := range c.vecs {
			if id > 0 {
				bw.WriteString(",")
			}
			fmt.Fprintf(bw, "%q:[", vecNames[id])
			for i, n := range c.vecs[id] {
				if i > 0 {
					bw.WriteString(",")
				}
				fmt.Fprintf(bw, "%d", n)
			}
			bw.WriteString("]")
		}
		bw.WriteString("}")
	}
	bw.WriteString("}\n")
	return bw.Flush()
}

// bucketUpper returns the inclusive upper bound of histogram bucket b.
func bucketUpper(b int) uint64 {
	if b == 0 {
		return 0
	}
	if b >= histBuckets-1 {
		return ^uint64(0)
	}
	return 1<<uint(b) - 1
}
