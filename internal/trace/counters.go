package trace

import "math/bits"

// Counter identifies one monotonic counter in the registry. The set
// covers the quantities the paper's evaluation and DESIGN.md's ablations
// reason about: bookmark traffic, incoming-counter churn, page movement,
// remembered-set filtering, and compaction copy volume.
type Counter uint8

const (
	// CObjectsBookmarked counts bookmark bits set (§3.4).
	CObjectsBookmarked Counter = iota
	// CIncomingBumps counts incoming-bookmark counter increments.
	CIncomingBumps
	// CIncomingDecrements counts incoming-bookmark counter decrements.
	CIncomingDecrements
	// CPagesDiscarded counts empty pages returned via madvise (§3.3.2).
	CPagesDiscarded
	// CPagesProcessed counts occupied pages scanned and relinquished.
	CPagesProcessed
	// CPagesReloaded counts pages brought back by faults.
	CPagesReloaded
	// CRemsetFlushes counts write-buffer overflow filterings (§3.1).
	CRemsetFlushes
	// CRemsetEntriesFiltered counts buffered slots pruned at flush.
	CRemsetEntriesFiltered
	// CRemsetEntriesCarded counts buffered slots demoted to card marks.
	CRemsetEntriesCarded
	// CSuperpagesAcquired counts superpages assigned to a size class.
	CSuperpagesAcquired
	// CSuperpagesReleased counts superpages returned to the free pool.
	CSuperpagesReleased
	// CLOSAllocs counts large-object allocations.
	CLOSAllocs
	// CLOSPagesAllocated counts pages placed under large objects.
	CLOSPagesAllocated
	// CBumpAllocs counts bump-pointer allocations (nursery/semispace).
	CBumpAllocs
	// CPromotedBytes counts bytes copied nursery -> mature.
	CPromotedBytes
	// CForwardedObjects counts objects moved by compaction.
	CForwardedObjects
	// CForwardedBytes counts bytes moved by compaction (§3.2).
	CForwardedBytes
	// CHeapShrinks counts footprint-target reductions (§3.3.3).
	CHeapShrinks
	// CHeapRegrows counts footprint-target raises (§7 extension).
	CHeapRegrows
	// CPreventiveBookmarks counts pages processed mid-collection (§3.4.3).
	CPreventiveBookmarks

	// Hardening counters: BC's defenses against a kernel whose
	// notifications are lost, late, repeated, or forged (see
	// internal/fault and DESIGN.md's fault model).

	// CSilentEvictions counts pages found evicted without notification at
	// the collection-start residency audit.
	CSilentEvictions
	// CUnnotifiedReloads counts pages found resident again without a
	// reload notification (the audit redid the reload bookkeeping).
	CUnnotifiedReloads
	// CStaleNotices counts eviction notifications ignored because the
	// page had already left (or was discarded) by delivery time.
	CStaleNotices
	// CDuplicateNotices counts eviction notifications ignored because the
	// page was already mid-eviction in BC's books.
	CDuplicateNotices
	// CSpuriousReloads counts reload notifications ignored because the
	// kernel could not legitimately have sent them.
	CSpuriousReloads
	// CGCRequestBackoffs counts doublings of the handler-requested GC
	// threshold after a collection freed nothing.
	CGCRequestBackoffs
	// CFailSafesForced counts full collections routed to the fail-safe
	// because notifications stopped being trustworthy.
	CFailSafesForced
	// CDeferredUnbookmarks counts reload releases postponed because an
	// object covered by the page's record still straddles an evicted
	// page (its recorded edges are not yet scannable again).
	CDeferredUnbookmarks

	// Fault-injection counters (internal/fault): what the injector did to
	// the notification stream.

	// CChaosEvictsDropped counts eviction notifications swallowed.
	CChaosEvictsDropped
	// CChaosEvictsDelayed counts evictions held until the next safepoint.
	CChaosEvictsDelayed
	// CChaosEvictsDuplicated counts evictions delivered twice.
	CChaosEvictsDuplicated
	// CChaosEvictsReordered counts evictions buffered for shuffled delivery.
	CChaosEvictsReordered
	// CChaosReloadsDropped counts reload notifications swallowed.
	CChaosReloadsDropped
	// CChaosSpuriousReloads counts forged reload notifications injected.
	CChaosSpuriousReloads
	// CChaosMuted counts notifications suppressed by uncooperative mode.
	CChaosMuted
	// CChaosPressureSpikes counts injected SignalMem pressure spikes.
	CChaosPressureSpikes

	// Sweep-runner counters (internal/runner): the engine's own
	// telemetry — how a sweep's jobs resolved.

	// CRunnerJobsExecuted counts jobs actually simulated.
	CRunnerJobsExecuted
	// CRunnerMemHits counts jobs served from the in-process memo.
	CRunnerMemHits
	// CRunnerCacheHits counts jobs served from the persistent store.
	CRunnerCacheHits
	// CRunnerJobErrors counts engine-level job failures (bad config,
	// simulator panic, timeout).
	CRunnerJobErrors
	// CRunnerJobTimeouts counts jobs abandoned at the per-job deadline.
	CRunnerJobTimeouts

	// Workload counters (internal/workload): allocation-trace recording
	// and replay traffic.

	// CWorkloadEventsRecorded counts mutator events captured to a trace.
	CWorkloadEventsRecorded
	// CWorkloadEventsReplayed counts trace events applied by a replayer.
	CWorkloadEventsReplayed
	// CWorkloadAllocsReplayed counts allocations driven from a trace.
	CWorkloadAllocsReplayed
	// CWorkloadFreeHints counts advisory free-hint events seen on replay.
	CWorkloadFreeHints
	// CWorkloadBlocksWritten counts CRC-framed trace blocks flushed.
	CWorkloadBlocksWritten
	// CWorkloadBlocksRead counts CRC-framed trace blocks decoded.
	CWorkloadBlocksRead

	// Mark counters (internal/gc): the work-stealing parallel mark
	// engine's telemetry. The totals in this group that describe the
	// marked graph (rounds, objects, bytes) are deterministic for any
	// worker count; the scheduling ones (steals, steal failures,
	// termination spins, the per-worker byte split) depend on goroutine
	// interleaving and are diagnostics only — they never appear in
	// experiment reports, which must stay byte-identical across
	// -mark-workers values.

	// CMarkRounds counts parallel mark rounds (drain + replay cycles).
	CMarkRounds
	// CMarkObjects counts objects scanned by the mark engine.
	CMarkObjects
	// CMarkBytes counts bytes of objects scanned by the mark engine.
	CMarkBytes
	// CMarkSteals counts successful deque steals between mark workers.
	CMarkSteals
	// CMarkStealFails counts steal attempts lost to contention or raced
	// to empty.
	CMarkStealFails
	// CMarkTermRounds counts termination-barrier spins: times an idle
	// worker swept every deque, found nothing, and re-checked for quiescence.
	CMarkTermRounds

	// Telemetry counters (internal/telemetry): the live-sampling layer's
	// own bookkeeping. Samples and flight dumps are clock-driven and
	// deterministic; ring drops depend on how much history the flight
	// recorder was configured to keep and never appear in experiment
	// reports, which must stay byte-identical across schedules.

	// CTelemetrySamples counts time-series samples taken by the sampler.
	CTelemetrySamples
	// CTelemetryFlightDumps counts flight-recorder bundles written.
	CTelemetryFlightDumps
	// CTelemetryRingDrops counts flight-ring entries overwritten before
	// any dump captured them.
	CTelemetryRingDrops

	// Heap-policy counters (internal/heappolicy): the pluggable
	// heap-limit control loop and the fleet balancer built on it.

	// CPolicyObservations counts signals fed to a heap policy that the
	// policy wanted (its Wants gate passed).
	CPolicyObservations
	// CBalancerRounds counts fleet-balancer redistribution rounds.
	CBalancerRounds
	// CPolicyClamps counts tenants whose fleet cap came out below the
	// policy's own target during a balancer round.
	CPolicyClamps

	numCounters
)

var counterNames = [numCounters]string{
	CObjectsBookmarked:      "objects_bookmarked",
	CIncomingBumps:          "incoming_bumps",
	CIncomingDecrements:     "incoming_decrements",
	CPagesDiscarded:         "pages_discarded",
	CPagesProcessed:         "pages_processed",
	CPagesReloaded:          "pages_reloaded",
	CRemsetFlushes:          "remset_flushes",
	CRemsetEntriesFiltered:  "remset_entries_filtered",
	CRemsetEntriesCarded:    "remset_entries_carded",
	CSuperpagesAcquired:     "superpages_acquired",
	CSuperpagesReleased:     "superpages_released",
	CLOSAllocs:              "los_allocs",
	CLOSPagesAllocated:      "los_pages_allocated",
	CBumpAllocs:             "bump_allocs",
	CPromotedBytes:          "promoted_bytes",
	CForwardedObjects:       "forwarded_objects",
	CForwardedBytes:         "forwarded_bytes",
	CHeapShrinks:            "heap_shrinks",
	CHeapRegrows:            "heap_regrows",
	CPreventiveBookmarks:    "preventive_bookmarks",
	CSilentEvictions:        "silent_evictions_repaired",
	CUnnotifiedReloads:      "unnotified_reloads_repaired",
	CStaleNotices:           "stale_notices_ignored",
	CDuplicateNotices:       "duplicate_notices_ignored",
	CSpuriousReloads:        "spurious_reloads_ignored",
	CGCRequestBackoffs:      "gc_request_backoffs",
	CFailSafesForced:        "failsafes_forced",
	CDeferredUnbookmarks:    "deferred_unbookmarks",
	CChaosEvictsDropped:     "chaos_evicts_dropped",
	CChaosEvictsDelayed:     "chaos_evicts_delayed",
	CChaosEvictsDuplicated:  "chaos_evicts_duplicated",
	CChaosEvictsReordered:   "chaos_evicts_reordered",
	CChaosReloadsDropped:    "chaos_reloads_dropped",
	CChaosSpuriousReloads:   "chaos_spurious_reloads",
	CChaosMuted:             "chaos_muted",
	CChaosPressureSpikes:    "chaos_pressure_spikes",
	CRunnerJobsExecuted:     "runner_jobs_executed",
	CRunnerMemHits:          "runner_mem_hits",
	CRunnerCacheHits:        "runner_cache_hits",
	CRunnerJobErrors:        "runner_job_errors",
	CRunnerJobTimeouts:      "runner_job_timeouts",
	CWorkloadEventsRecorded: "workload_events_recorded",
	CWorkloadEventsReplayed: "workload_events_replayed",
	CWorkloadAllocsReplayed: "workload_allocs_replayed",
	CWorkloadFreeHints:      "workload_free_hints",
	CWorkloadBlocksWritten:  "workload_blocks_written",
	CWorkloadBlocksRead:     "workload_blocks_read",
	CMarkRounds:             "mark_rounds",
	CMarkObjects:            "mark_objects",
	CMarkBytes:              "mark_bytes",
	CMarkSteals:             "mark_steals",
	CMarkStealFails:         "mark_steal_fails",
	CMarkTermRounds:         "mark_termination_rounds",
	CTelemetrySamples:       "telemetry_samples",
	CTelemetryFlightDumps:   "telemetry_flight_dumps",
	CTelemetryRingDrops:     "telemetry_ring_drops",
	CPolicyObservations:     "heap_policy_observations",
	CBalancerRounds:         "balancer_rounds",
	CPolicyClamps:           "balancer_policy_clamps",
}

// MarkCounters lists the mark counter group in declaration order —
// the inventory gcsim -list prints.
func MarkCounters() []Counter {
	return []Counter{
		CMarkRounds, CMarkObjects, CMarkBytes,
		CMarkSteals, CMarkStealFails, CMarkTermRounds,
	}
}

// TelemetryCounters lists the telemetry counter group in declaration
// order — the inventory gcsim -list prints.
func TelemetryCounters() []Counter {
	return []Counter{CTelemetrySamples, CTelemetryFlightDumps, CTelemetryRingDrops}
}

// HeapPolicyCounters lists the heap-policy counter group in
// declaration order — the inventory gcsim -list prints.
func HeapPolicyCounters() []Counter {
	return []Counter{CPolicyObservations, CBalancerRounds, CPolicyClamps}
}

func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "invalid"
}

// NumCounters is the number of defined counters.
const NumCounters = int(numCounters)

// Hist identifies one histogram in the registry.
type Hist uint8

const (
	// HDiscardBatch observes pages discarded per eviction notification —
	// the word-at-a-time aggressive discard of §3.4.3.
	HDiscardBatch Hist = iota
	// HPageBookmarks observes objects bookmarked per processed page.
	HPageBookmarks

	numHists
)

var histNames = [numHists]string{
	HDiscardBatch:  "discard_batch_pages",
	HPageBookmarks: "page_bookmarks",
}

func (h Hist) String() string {
	if int(h) < len(histNames) {
		return histNames[h]
	}
	return "invalid"
}

// NumHists is the number of defined histograms.
const NumHists = int(numHists)

// Vec identifies one counter vector (a counter family indexed by a small
// integer, e.g. a size-class index).
type Vec uint8

const (
	// VSuperAllocsByClass counts superpage acquisitions per size-class
	// index.
	VSuperAllocsByClass Vec = iota

	// VMarkBytesByWorker counts bytes scanned per mark-worker index.
	// The split is schedule-dependent; only the sum is deterministic.
	VMarkBytesByWorker

	numVecs
)

var vecNames = [numVecs]string{
	VSuperAllocsByClass: "superpage_allocs_by_class",
	VMarkBytesByWorker:  "mark_bytes_by_worker",
}

func (v Vec) String() string {
	if int(v) < len(vecNames) {
		return vecNames[v]
	}
	return "invalid"
}

// NumVecs is the number of defined counter vectors.
const NumVecs = int(numVecs)

// histBuckets is the number of power-of-two histogram buckets; bucket i
// holds values whose bit length is i (bucket 0 holds zero), the last
// bucket saturating.
const histBuckets = 16

// Histogram accumulates a distribution in power-of-two buckets.
type Histogram struct {
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

func (h *Histogram) observe(v uint64) {
	b := bits.Len64(v)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.Buckets[b]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Counters is the registry: fixed arrays of counters and histograms plus
// growable counter vectors. All methods are nil-receiver safe, so the
// disabled configuration (a nil *Counters threaded through the stack)
// costs one nil check per site and allocates nothing.
type Counters struct {
	vals  [numCounters]uint64
	hists [numHists]Histogram
	vecs  [numVecs][]uint64
}

// NewCounters returns an empty registry.
func NewCounters() *Counters { return &Counters{} }

// Inc adds 1 to counter id.
func (c *Counters) Inc(id Counter) {
	if c != nil {
		c.vals[id]++
	}
}

// Add adds n to counter id.
func (c *Counters) Add(id Counter, n uint64) {
	if c != nil {
		c.vals[id] += n
	}
}

// Get returns counter id's value (0 on a nil registry).
func (c *Counters) Get(id Counter) uint64 {
	if c == nil {
		return 0
	}
	return c.vals[id]
}

// Observe records v into histogram id.
func (c *Counters) Observe(id Hist, v uint64) {
	if c != nil {
		c.hists[id].observe(v)
	}
}

// Histogram returns a copy of histogram id (zero value on nil).
func (c *Counters) Histogram(id Hist) Histogram {
	if c == nil {
		return Histogram{}
	}
	return c.hists[id]
}

// AddVec adds n to element idx of vector id, growing it as needed.
func (c *Counters) AddVec(id Vec, idx int, n uint64) {
	if c == nil || idx < 0 {
		return
	}
	for len(c.vecs[id]) <= idx {
		c.vecs[id] = append(c.vecs[id], 0)
	}
	c.vecs[id][idx] += n
}

// VecValues returns a copy of vector id's elements (nil when empty).
func (c *Counters) VecValues(id Vec) []uint64 {
	if c == nil || len(c.vecs[id]) == 0 {
		return nil
	}
	out := make([]uint64, len(c.vecs[id]))
	copy(out, c.vecs[id])
	return out
}
