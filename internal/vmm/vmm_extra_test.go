package vmm

import (
	"testing"
	"time"

	"bookmarkgc/internal/mem"
)

// faultRecurser re-touches the faulting page from inside the reload
// handler, as BC's bookmark-clearing scan does. Before the fault-service
// page lock this caused unbounded reload/evict recursion.
type faultRecurser struct {
	proc   *Proc
	depth  int
	maxSee int
}

func (h *faultRecurser) EvictionScheduled(mem.PageID) {}
func (h *faultRecurser) PageReloaded(p mem.PageID, wasEvicted bool) {
	if !wasEvicted {
		return
	}
	h.depth++
	if h.depth > h.maxSee {
		h.maxSee = h.depth
	}
	// Scan the page (several touches) while memory is desperately low.
	for i := 0; i < 8; i++ {
		h.proc.Space().ReadWord(mem.PageAddr(p) + mem.Addr(i*mem.WordSize+mem.WordSize))
	}
	h.depth--
}

func TestFaultServiceHoldsPageLock(t *testing.T) {
	_, v := testVMM(t, 80) // barely above the 64-frame minimum
	p := v.NewProc("a", 4096*mem.PageSize)
	h := &faultRecurser{proc: p}
	p.Register(h)
	// Far more pages than frames: constant eviction.
	for round := 0; round < 3; round++ {
		for i := 1; i <= 300; i++ {
			p.Space().WriteWord(mem.PageAddr(mem.PageID(i))+8, uint64(i))
		}
	}
	if h.maxSee > 1 {
		t.Fatalf("reload handler re-entered %d deep: page lock broken", h.maxSee)
	}
	// Data must have survived all round trips.
	for i := 1; i <= 300; i++ {
		if got := p.Space().ReadWord(mem.PageAddr(mem.PageID(i)) + 8); got != uint64(i) {
			t.Fatalf("page %d lost data: %d", i, got)
		}
	}
}

func TestQueueCompactionBoundsGrowth(t *testing.T) {
	_, v := testVMM(t, 256)
	p := v.NewProc("a", 4096*mem.PageSize)
	// Heavy discard/retouch churn creates stale queue entries.
	for round := 0; round < 200; round++ {
		for i := 1; i <= 64; i++ {
			p.Space().WriteWord(mem.PageAddr(mem.PageID(i)), 1)
		}
		for i := 1; i <= 64; i++ {
			p.Discard(mem.PageID(i))
		}
	}
	if got := v.active.size() + v.inactive.size(); got > 4*(v.used+64)+64 {
		t.Fatalf("queues grew to %d entries for %d resident pages", got, v.used)
	}
}

func TestReclaimBackoffWhenStuck(t *testing.T) {
	_, v := testVMM(t, 80)
	p := v.NewProc("a", 4096*mem.PageSize)
	// Lock every page we touch: nothing is evictable.
	for i := 1; i <= 70; i++ {
		p.Lock(mem.PageID(i))
	}
	before := v.Stats().Reclaims
	// Touching more pages cannot find victims; the VMM must back off
	// rather than scanning on every single fault.
	for i := 100; i < 200; i++ {
		p.Space().WriteWord(mem.PageAddr(mem.PageID(i)), 1)
	}
	reclaims := v.Stats().Reclaims - before
	if reclaims > 20 {
		t.Fatalf("%d reclaim passes for 100 hopeless faults; backoff broken", reclaims)
	}
	if v.FreeFrames() >= 0 {
		// Overcommit is expected here; the invariant is just that we
		// didn't deadlock or panic.
		t.Log("note: machine not overcommitted after all")
	}
}

func TestProtectOnNonResidentIsNoop(t *testing.T) {
	_, v := testVMM(t, 256)
	p := v.NewProc("a", 64*mem.PageSize)
	p.Protect(5) // fresh page
	if p.Protected(5) {
		t.Fatal("protected a non-resident page")
	}
	p.Space().WriteWord(mem.PageAddr(5), 1)
	if p.Protected(5) {
		t.Fatal("protection appeared out of nowhere")
	}
}

func TestRelinquishIgnoresNonResident(t *testing.T) {
	_, v := testVMM(t, 256)
	p := v.NewProc("a", 64*mem.PageSize)
	p.Space().WriteWord(mem.PageAddr(3), 1)
	p.Lock(4)
	p.Relinquish([]mem.PageID{3, 4, 5}) // 4 locked, 5 fresh
	if p.State(5) != Fresh {
		t.Fatal("fresh page changed state")
	}
	if p.State(4) != Resident {
		t.Fatal("locked page affected")
	}
	_ = v
}

func TestUnpinRestoresCapacity(t *testing.T) {
	_, v := testVMM(t, 256)
	v.Pin(100)
	if v.PinnedFrames() != 100 {
		t.Fatal("pin lost")
	}
	v.Unpin(40)
	if v.PinnedFrames() != 60 {
		t.Fatal("partial unpin wrong")
	}
	v.Unpin(1000)
	if v.PinnedFrames() != 0 {
		t.Fatal("unpin floor broken")
	}
	v.Pin(10000)
	if v.PinnedFrames() != 256 {
		t.Fatal("pin ceiling broken")
	}
}

func TestClockPendingOrder(t *testing.T) {
	c := NewClock()
	c.Schedule(3*time.Second, func() {})
	c.Schedule(time.Second, func() {})
	got := c.Pending()
	if len(got) != 2 || got[0] != time.Second || got[1] != 3*time.Second {
		t.Fatalf("Pending = %v", got)
	}
}

func TestEvictIsNotifiedExactlyOncePerEviction(t *testing.T) {
	_, v := testVMM(t, 128)
	p := v.NewProc("a", 4096*mem.PageSize)
	h := &recHandler{proc: p}
	p.Register(h)
	fill(p, 1, 400)
	// Count evictions of pages we saw scheduled; double notification for
	// one eviction would inflate scheduled beyond evictions+vetoes.
	if v.Stats().Evictions == 0 {
		t.Fatal("no evictions")
	}
	if uint64(len(h.scheduled)) < v.Stats().Evictions {
		t.Fatalf("fewer notifications (%d) than evictions (%d)",
			len(h.scheduled), v.Stats().Evictions)
	}
}

func TestStateStringAndProcString(t *testing.T) {
	if Fresh.String() != "fresh" || Resident.String() != "resident" || Evicted.String() != "evicted" {
		t.Fatal("PageState strings wrong")
	}
	_, v := testVMM(t, 128)
	p := v.NewProc("zork", 64*mem.PageSize)
	if s := p.String(); s == "" || p.Name() != "zork" {
		t.Fatal("diagnostics broken")
	}
}
