package vmm

import (
	"testing"
	"time"

	"bookmarkgc/internal/mem"
)

func testVMM(t *testing.T, physPages int) (*Clock, *VMM) {
	t.Helper()
	c := NewClock()
	v := New(c, uint64(physPages)*mem.PageSize, DefaultCosts())
	return c, v
}

func TestClockAdvanceAndEvents(t *testing.T) {
	c := NewClock()
	var fired []int
	c.Schedule(10*time.Millisecond, func() { fired = append(fired, 1) })
	c.Schedule(5*time.Millisecond, func() { fired = append(fired, 2) })
	c.Advance(4 * time.Millisecond)
	if len(fired) != 0 {
		t.Fatalf("fired too early: %v", fired)
	}
	c.Advance(2 * time.Millisecond)
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("fired = %v, want [2]", fired)
	}
	c.Advance(10 * time.Millisecond)
	if len(fired) != 2 || fired[1] != 1 {
		t.Fatalf("fired = %v, want [2 1]", fired)
	}
	if c.Now() != 16*time.Millisecond {
		t.Fatalf("Now = %v", c.Now())
	}
}

func TestClockNestedAdvanceDefersEvents(t *testing.T) {
	c := NewClock()
	depth := 0
	c.Schedule(time.Millisecond, func() {
		depth++
		if depth > 1 {
			t.Fatal("event handler re-entered")
		}
		// Nested advance past another event must not dispatch recursively.
		c.Schedule(2*time.Millisecond, func() { depth++ })
		c.Advance(5 * time.Millisecond)
		depth--
	})
	c.Advance(time.Millisecond)
	if depth != 1 {
		t.Fatalf("second event did not run at top level: depth=%d", depth)
	}
}

func TestMinorFaultOnFirstTouch(t *testing.T) {
	_, v := testVMM(t, 1024)
	p := v.NewProc("a", 64*mem.PageSize)
	if p.State(5) != Fresh {
		t.Fatal("page not fresh")
	}
	p.Space().WriteWord(5*mem.PageSize, 1)
	if p.State(5) != Resident {
		t.Fatal("page not resident after touch")
	}
	if p.Stats().MinorFaults != 1 || p.Stats().MajorFaults != 0 {
		t.Fatalf("stats = %+v", p.Stats())
	}
	// Second touch: no new fault.
	p.Space().ReadWord(5 * mem.PageSize)
	if p.Stats().MinorFaults != 1 {
		t.Fatal("re-touch faulted")
	}
}

// fill touches n distinct pages of p starting at page start.
func fill(p *Proc, start, n int) {
	for i := 0; i < n; i++ {
		p.Space().WriteWord(mem.PageAddr(mem.PageID(start+i)), uint64(i+1))
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	_, v := testVMM(t, 128)
	p := v.NewProc("a", 4096*mem.PageSize)
	fill(p, 1, 200) // more pages than physical frames
	if got := v.Stats().Evictions; got == 0 {
		t.Fatal("no evictions despite overcommit")
	}
	if v.FreeFrames() < 0 {
		t.Fatalf("free frames negative: %d", v.FreeFrames())
	}
	// Evicted page contents survive a round trip.
	evicted := mem.PageID(0)
	for i := mem.PageID(1); i <= 200; i++ {
		if p.State(i) == Evicted {
			evicted = i
			break
		}
	}
	if evicted == 0 {
		t.Fatal("no page in evicted state")
	}
	before := p.Stats().MajorFaults
	got := p.Space().ReadWord(mem.PageAddr(evicted))
	if got != uint64(evicted) {
		t.Fatalf("swap round trip lost data: got %d want %d", got, evicted)
	}
	if p.Stats().MajorFaults != before+1 {
		t.Fatal("reload did not count as major fault")
	}
}

func TestLRUPrefersColdPages(t *testing.T) {
	_, v := testVMM(t, 128)
	p := v.NewProc("a", 4096*mem.PageSize)
	// A small hot set, touched repeatedly while cold pages stream through.
	hot := []mem.PageID{1, 2, 3, 4}
	for i := 0; i < 300; i++ {
		for _, h := range hot {
			p.Space().ReadWord(mem.PageAddr(h))
		}
		p.Space().WriteWord(mem.PageAddr(mem.PageID(10+i)), 1)
	}
	for _, h := range hot {
		if p.State(h) != Resident {
			t.Errorf("hot page %d evicted; LRU approximation broken", h)
		}
	}
}

type recHandler struct {
	proc      *Proc
	scheduled []mem.PageID
	reloaded  []mem.PageID
	protFault []mem.PageID
	veto      map[mem.PageID]bool
}

func (h *recHandler) EvictionScheduled(p mem.PageID) {
	h.scheduled = append(h.scheduled, p)
	if h.veto[p] {
		h.proc.Space().ReadWord(mem.PageAddr(p)) // touch to veto
	}
}

func (h *recHandler) PageReloaded(p mem.PageID, wasEvicted bool) {
	if wasEvicted {
		h.reloaded = append(h.reloaded, p)
	} else {
		h.protFault = append(h.protFault, p)
	}
}

func TestEvictionNotification(t *testing.T) {
	_, v := testVMM(t, 128)
	p := v.NewProc("a", 4096*mem.PageSize)
	h := &recHandler{proc: p}
	p.Register(h)
	fill(p, 1, 200)
	if len(h.scheduled) == 0 {
		t.Fatal("no eviction notifications delivered")
	}
	// Every evicted page must have been announced first.
	announced := map[mem.PageID]bool{}
	for _, pg := range h.scheduled {
		announced[pg] = true
	}
	for i := mem.PageID(1); i <= 200; i++ {
		if p.State(i) == Evicted && !announced[i] {
			t.Fatalf("page %d evicted without notification", i)
		}
	}
}

func TestVetoByTouching(t *testing.T) {
	_, v := testVMM(t, 128)
	p := v.NewProc("a", 4096*mem.PageSize)
	h := &recHandler{proc: p, veto: map[mem.PageID]bool{}}
	// Veto eviction of pages 1-8 (as BC does for nursery pages and
	// superpage headers).
	for i := mem.PageID(1); i <= 8; i++ {
		h.veto[i] = true
	}
	p.Register(h)
	fill(p, 1, 400)
	for i := mem.PageID(1); i <= 8; i++ {
		if p.State(i) != Resident {
			t.Errorf("vetoed page %d was evicted anyway", i)
		}
	}
	if v.Stats().Evictions == 0 {
		t.Fatal("pressure produced no evictions at all")
	}
}

func TestReloadNotification(t *testing.T) {
	_, v := testVMM(t, 128)
	p := v.NewProc("a", 4096*mem.PageSize)
	h := &recHandler{proc: p}
	p.Register(h)
	fill(p, 1, 300)
	var target mem.PageID
	for i := mem.PageID(1); i <= 300; i++ {
		if p.State(i) == Evicted {
			target = i
			break
		}
	}
	if target == 0 {
		t.Fatal("nothing evicted")
	}
	p.Space().ReadWord(mem.PageAddr(target))
	found := false
	for _, pg := range h.reloaded {
		if pg == target {
			found = true
		}
	}
	if !found {
		t.Fatalf("reload of %d not notified (got %v)", target, h.reloaded)
	}
}

func TestDiscardFreesFrameAndZeroes(t *testing.T) {
	_, v := testVMM(t, 1024)
	p := v.NewProc("a", 64*mem.PageSize)
	a := mem.PageAddr(3)
	p.Space().WriteWord(a, 42)
	used := v.UsedFrames()
	p.Discard(3)
	if v.UsedFrames() != used-1 {
		t.Fatal("discard did not free the frame")
	}
	if p.State(3) != Fresh {
		t.Fatal("discarded page not fresh")
	}
	minor := p.Stats().MinorFaults
	if got := p.Space().ReadWord(a); got != 0 {
		t.Fatalf("discarded page not zero-filled: %d", got)
	}
	if p.Stats().MinorFaults != minor+1 {
		t.Fatal("re-touch of discarded page was not a minor fault")
	}
	if p.Stats().MajorFaults != 0 {
		t.Fatal("discard path should never major-fault")
	}
}

func TestRelinquishEvictsQuickly(t *testing.T) {
	_, v := testVMM(t, 256)
	p := v.NewProc("a", 4096*mem.PageSize)
	h := &recHandler{proc: p}
	p.Register(h)
	fill(p, 1, 100)
	// Relinquish pages 1-10, then create pressure.
	var give []mem.PageID
	for i := mem.PageID(1); i <= 10; i++ {
		give = append(give, i)
	}
	p.Relinquish(give)
	fill(p, 200, 200)
	evicted := 0
	for _, pg := range give {
		if p.State(pg) == Evicted {
			evicted++
		}
	}
	if evicted < 8 {
		t.Fatalf("only %d/10 relinquished pages evicted", evicted)
	}
	// Relinquished pages are evicted without a fresh notification.
	for _, s := range h.scheduled {
		for _, g := range give {
			if s == g {
				t.Fatalf("relinquished page %d was re-notified", g)
			}
		}
	}
}

func TestProtectFault(t *testing.T) {
	_, v := testVMM(t, 1024)
	p := v.NewProc("a", 64*mem.PageSize)
	h := &recHandler{proc: p}
	p.Register(h)
	a := mem.PageAddr(7)
	p.Space().WriteWord(a, 1)
	p.Protect(7)
	if !p.Protected(7) {
		t.Fatal("not protected")
	}
	p.Space().ReadWord(a)
	if len(h.protFault) != 1 || h.protFault[0] != 7 {
		t.Fatalf("protection fault not delivered: %v", h.protFault)
	}
	if p.Protected(7) {
		t.Fatal("protection not cleared by fault")
	}
	// Second access: no more faults.
	p.Space().ReadWord(a)
	if len(h.protFault) != 1 {
		t.Fatal("spurious second protection fault")
	}
}

func TestLockPreventsEviction(t *testing.T) {
	_, v := testVMM(t, 128)
	p := v.NewProc("a", 4096*mem.PageSize)
	p.Lock(1)
	p.Lock(2)
	fill(p, 10, 400)
	if p.State(1) != Resident || p.State(2) != Resident {
		t.Fatal("locked pages were evicted")
	}
}

func TestPinReducesCapacity(t *testing.T) {
	_, v := testVMM(t, 256)
	p := v.NewProc("a", 4096*mem.PageSize)
	fill(p, 1, 150)
	if v.Stats().Evictions != 0 {
		t.Fatal("unexpected early evictions")
	}
	v.Pin(150) // now 150 resident + 150 pinned > 256 frames
	if v.Stats().Evictions == 0 {
		t.Fatal("pinning did not force evictions")
	}
	if v.FreeFrames() < 0 {
		t.Fatalf("free frames negative after pin: %d", v.FreeFrames())
	}
}

func TestMajorFaultCostDominates(t *testing.T) {
	c, v := testVMM(t, 128)
	p := v.NewProc("a", 4096*mem.PageSize)
	fill(p, 1, 200)
	var target mem.PageID
	for i := mem.PageID(1); i <= 200; i++ {
		if p.State(i) == Evicted {
			target = i
			break
		}
	}
	before := c.Now()
	p.Space().ReadWord(mem.PageAddr(target))
	faultTime := c.Now() - before
	if faultTime < v.Costs().MajorFault {
		t.Fatalf("major fault cost %v < configured %v", faultTime, v.Costs().MajorFault)
	}
	before = c.Now()
	p.Space().ReadWord(mem.PageAddr(target))
	hit := c.Now() - before
	if hit > time.Microsecond {
		t.Fatalf("resident access too expensive: %v", hit)
	}
}

func TestTwoProcsCompeteForFrames(t *testing.T) {
	_, v := testVMM(t, 256)
	a := v.NewProc("a", 4096*mem.PageSize)
	b := v.NewProc("b", 4096*mem.PageSize)
	fill(a, 1, 150)
	fill(b, 1, 150)
	// Together they exceed physical memory; both must survive, and the
	// VMM must have evicted someone.
	if v.Stats().Evictions == 0 {
		t.Fatal("no evictions with two competing procs")
	}
	if got := a.Space().ReadWord(mem.PageAddr(10)); got != 10 {
		t.Fatalf("proc a data corrupted: %d", got)
	}
	if got := b.Space().ReadWord(mem.PageAddr(10)); got != 10 {
		t.Fatalf("proc b data corrupted: %d", got)
	}
}

func TestResidencyConservation(t *testing.T) {
	// Property: used frames always equals the sum of resident pages.
	_, v := testVMM(t, 128)
	p := v.NewProc("a", 4096*mem.PageSize)
	q := v.NewProc("b", 4096*mem.PageSize)
	fill(p, 1, 90)
	fill(q, 1, 90)
	p.Discard(5)
	q.Discard(7)
	fill(p, 200, 30)
	if got := p.ResidentPages() + q.ResidentPages(); got != v.UsedFrames() {
		t.Fatalf("resident sum %d != used frames %d", got, v.UsedFrames())
	}
}
