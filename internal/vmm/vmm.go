// Package vmm simulates the extended Linux virtual memory manager the
// paper builds on (§4.1): a global approximate-LRU replacement policy
// (an active list managed by a clock algorithm plus an inactive FIFO),
// batched eviction, demand paging with a disk cost model, and the
// cooperative extensions — eviction-scheduled and page-reloaded
// notifications (modeled on queueable real-time signals), the
// vm_relinquish system call, madvise(MADV_DONTNEED) discard, mprotect
// protection faults, and per-page process ownership (the rmap patch).
//
// Every access any collector or mutator makes flows through the touch
// path, so paging behaviour is an emergent property of the algorithms
// running above, exactly as on the paper's modified 2.4.20 kernel. The
// hot per-page state (residency, reference, protection, surrender bits)
// lives in the Space's flag side array (mem.PageFlags) so the
// resident-page common case is handled inline by the Space itself; the
// VMM keeps only the cold bookkeeping (locks, queue stamps) per page and
// services the slow path via mem.FaultToucher.
package vmm

import (
	"fmt"
	"time"

	"bookmarkgc/internal/mem"
)

// PageState is the residency state of one virtual page.
type PageState uint8

const (
	// Fresh pages have never been touched (or were discarded); the first
	// touch is a zero-fill minor fault.
	Fresh PageState = iota
	// Resident pages occupy a physical frame.
	Resident
	// Evicted pages live on the swap device; touching one is a major
	// fault that costs a disk access.
	Evicted
)

func (s PageState) String() string {
	switch s {
	case Fresh:
		return "fresh"
	case Resident:
		return "resident"
	case Evicted:
		return "evicted"
	}
	return "invalid"
}

// Costs is the simulation's latency model. The defaults preserve the
// paper's essential ratio: a disk access is about six orders of magnitude
// more expensive than a memory access.
type Costs struct {
	WordAccess time.Duration // every word read/write
	MinorFault time.Duration // first touch of a fresh page (zero fill)
	MajorFault time.Duration // reload of an evicted page from disk
	EvictIO    time.Duration // CPU-visible slice of an asynchronous write-back
	Signal     time.Duration // delivering one notification to the runtime
}

// DefaultCosts returns the calibration used throughout the experiments.
func DefaultCosts() Costs {
	return Costs{
		WordAccess: 2 * time.Nanosecond,
		MinorFault: 2 * time.Microsecond,
		MajorFault: 5 * time.Millisecond,
		EvictIO:    50 * time.Microsecond,
		Signal:     6 * time.Microsecond,
	}
}

// Handler receives the kernel-to-runtime notifications of the paper's
// extended kernel. Both callbacks run synchronously, modeling lossless
// queueable real-time signals (§4.1).
type Handler interface {
	// EvictionScheduled fires just before page p is unmapped for eviction.
	// The handler may touch p to veto the choice (the VMM then picks
	// another victim), discard empty pages to relieve pressure, or scan
	// and relinquish the page (bookmarking).
	EvictionScheduled(p mem.PageID)
	// PageReloaded fires when a page the runtime has been told about comes
	// back: either a major fault on an evicted page (wasEvicted true) or a
	// protection fault on a page the runtime had protected (wasEvicted
	// false).
	PageReloaded(p mem.PageID, wasEvicted bool)
}

// pageInfo holds the cold per-page bookkeeping; the hot bits (state,
// referenced, protected, surrendered) live in the Space's flag array.
type pageInfo struct {
	locked    bool
	servicing bool // fault in progress: page is held, like the kernel page lock
	queued    bool // currently has a live queue entry
	stamp     uint32
}

type pageRef struct {
	pid   int32
	page  mem.PageID
	stamp uint32
}

// refQueue is a head-indexed FIFO of page references. Pops advance the
// head instead of re-slicing, so the backing array's capacity is reused
// across reclaim passes instead of sliding forward and reallocating.
type refQueue struct {
	refs []pageRef
	head int
}

func (q *refQueue) size() int      { return len(q.refs) - q.head }
func (q *refQueue) push(r pageRef) { q.refs = append(q.refs, r) }

// pop removes the head entry. When the consumed prefix dominates the
// backing array it is slid away — a pure memory operation (order and
// live contents unchanged) that keeps append from copying dead entries
// forever.
func (q *refQueue) pop() pageRef {
	r := q.refs[q.head]
	q.head++
	if q.head >= 256 && q.head*2 >= len(q.refs) {
		n := copy(q.refs, q.refs[q.head:])
		q.refs = q.refs[:n]
		q.head = 0
	}
	return r
}

// compact rewrites the queue in place, keeping only entries for which
// keep returns true and resetting the consumed head zone. Order is
// preserved, so compaction timing never changes which page is reclaimed.
func (q *refQueue) compact(keep func(pageRef) bool) {
	out := q.refs[:0]
	for _, r := range q.refs[q.head:] {
		if keep(r) {
			out = append(out, r)
		}
	}
	q.refs = out
	q.head = 0
}

// Stats are global VMM counters.
type Stats struct {
	MinorFaults   uint64
	MajorFaults   uint64
	Evictions     uint64
	Discards      uint64
	Notification  uint64
	Reclaims      uint64
	ArbiterVetoes uint64
}

// Arbiter lets a fleet-level policy approve or veto each eviction victim
// the replacement algorithm proposes, across process owners. Approve is
// consulted after the clock algorithm has already decided the page is
// cold (and before the owner is notified); returning false recycles the
// page to the active list and the scan moves on. Voluntarily surrendered
// pages bypass arbitration — their owner has already given them up.
//
// Arbitration is advisory, not absolute: when a single reclaim pass
// accumulates more than two batches of vetoes, the VMM stops consulting
// the arbiter for the rest of the pass. A policy that vetoes everything
// would otherwise livelock reclaim exactly the way an over-aggressive
// EvictionScheduled veto loop would.
type Arbiter interface {
	Approve(owner *Proc, pg mem.PageID) bool
}

// VMM is the simulated virtual memory manager. One VMM instance models
// one machine; multiple Procs share its physical frames.
type VMM struct {
	Clock *Clock
	costs Costs

	frames int // total physical frames
	pinned int // frames mlocked away by signalmem
	used   int // resident frames across all procs

	lowWater int // reclaim trigger threshold (free frames)
	batch    int // eviction cluster size (SWAP_CLUSTER_MAX)

	procs     []*Proc
	active    refQueue
	inactive  refQueue
	reclaimIn bool
	arbiter   Arbiter

	// reclaimStuck is set when a reclaim pass cannot reach its target
	// (every page referenced, vetoed, or locked). Until something is
	// freed — or a retry interval elapses — further page-ins skip the
	// futile scan instead of re-running it, as a real kernel would back
	// off rather than livelock in direct reclaim.
	reclaimStuck  bool
	sinceStuckTry int

	stats Stats

	// OnMajorFault, when set, observes every major fault (pid, page) —
	// a debugging/tracing hook used by diagnostics and tests.
	OnMajorFault func(pid int32, page mem.PageID)
}

// MinPhysBytes is the smallest machine New accepts: enough frames for
// the reclaim low-water mark and batch size to be meaningful. CLIs can
// validate against it up front instead of catching New's panic.
const MinPhysBytes = 64 * mem.PageSize

// New creates a machine with physBytes of physical memory.
func New(clock *Clock, physBytes uint64, costs Costs) *VMM {
	frames := int(physBytes / mem.PageSize)
	if frames < 64 {
		panic("vmm: physical memory too small")
	}
	return &VMM{
		Clock:    clock,
		costs:    costs,
		frames:   frames,
		lowWater: 32,
		batch:    32,
	}
}

// Costs returns the machine's latency model.
func (v *VMM) Costs() Costs { return v.costs }

// TotalFrames returns physical memory size in frames.
func (v *VMM) TotalFrames() int { return v.frames }

// FreeFrames returns the number of unallocated, unpinned frames.
func (v *VMM) FreeFrames() int { return v.frames - v.pinned - v.used }

// UsedFrames returns the number of resident frames across all processes.
func (v *VMM) UsedFrames() int { return v.used }

// PinnedFrames returns the number of frames pinned via Pin.
func (v *VMM) PinnedFrames() int { return v.pinned }

// Stats returns global counters.
func (v *VMM) Stats() Stats { return v.stats }

// SetArbiter installs (or, with nil, removes) the eviction arbiter.
func (v *VMM) SetArbiter(a Arbiter) { v.arbiter = a }

// Procs returns the machine's processes in creation order.
func (v *VMM) Procs() []*Proc {
	out := make([]*Proc, len(v.procs))
	copy(out, v.procs)
	return out
}

// CheckAccounting recounts every page table and verifies the O(1)
// residency counters — per-proc Proc.resident and the machine-wide used
// total — against ground truth, plus the pinned-frame bounds. Fleet soak
// tests call it after every collection to prove the bookkeeping stays
// exact when the arbiter takes pages from a different owner than the
// faulting tenant.
func (v *VMM) CheckAccounting() error {
	total := 0
	for _, p := range v.procs {
		n := 0
		for _, f := range p.flags {
			if f&mem.PFResident != 0 {
				n++
			}
		}
		if n != p.resident {
			return fmt.Errorf("vmm: proc %d (%s) resident counter %d, table says %d", p.id, p.name, p.resident, n)
		}
		total += n
	}
	if total != v.used {
		return fmt.Errorf("vmm: used counter %d, page tables say %d", v.used, total)
	}
	if v.pinned < 0 || v.pinned > v.frames {
		return fmt.Errorf("vmm: pinned %d out of range [0,%d]", v.pinned, v.frames)
	}
	return nil
}

// Pin removes n frames from circulation, as signalmem's mmap+touch+mlock
// does (§5.1). Pinning under pressure triggers reclaim immediately.
func (v *VMM) Pin(n int) {
	if n <= 0 {
		return
	}
	v.pinned += n
	if v.pinned > v.frames {
		v.pinned = v.frames
	}
	if v.FreeFrames() < v.lowWater {
		v.reclaim()
	}
}

// Unpin returns n pinned frames to circulation.
func (v *VMM) Unpin(n int) {
	v.pinned -= n
	if v.pinned < 0 {
		v.pinned = 0
	}
}

// NewProc creates a process owning a fresh address space of spaceBytes.
func (v *VMM) NewProc(name string, spaceBytes uint64) *Proc {
	p := &Proc{
		vmm:   v,
		id:    int32(len(v.procs)),
		name:  name,
		pages: make([]pageInfo, mem.RoundUpPage(spaceBytes)/mem.PageSize),
	}
	p.space = mem.NewSpace(spaceBytes, p)
	p.space.SetFastTouch(v.Clock, v.costs.WordAccess, p)
	p.flags = p.space.PageFlags()
	v.procs = append(v.procs, p)
	return p
}

// makeResident allocates a frame for (p, pg), reclaiming if needed.
// Idempotent on an already-resident page: the fault-latency Advance in
// the touch path fires due clock events, and one of them (a delayed
// notification handler, a pressure spike) may touch the same page and
// service the fault first — the original faulter then finds the page
// present, as a second faulter does under the kernel's page lock.
func (v *VMM) makeResident(p *Proc, pg mem.PageID) {
	if p.flags[pg]&mem.PFResident != 0 {
		p.flags[pg] |= mem.PFReferenced
		return
	}
	v.used++
	p.resident++
	if uint64(p.resident) > p.stats.PeakResident {
		p.stats.PeakResident = uint64(p.resident)
	}
	p.flags[pg] = mem.PFResident | mem.PFReferenced
	v.pushActive(p, pg)
	if v.FreeFrames() < v.lowWater && !v.reclaimIn {
		if v.reclaimStuck {
			v.sinceStuckTry++
			if v.sinceStuckTry < v.batch {
				return
			}
			v.sinceStuckTry = 0
		}
		v.reclaim()
	}
}

func (v *VMM) pushActive(p *Proc, pg mem.PageID) {
	pi := &p.pages[pg]
	pi.stamp++
	pi.queued = true
	v.active.push(pageRef{p.id, pg, pi.stamp})
	v.maybeCompactQueues()
}

func (v *VMM) pushInactive(p *Proc, pg mem.PageID) {
	pi := &p.pages[pg]
	pi.stamp++
	pi.queued = true
	v.inactive.push(pageRef{p.id, pg, pi.stamp})
	v.maybeCompactQueues()
}

// maybeCompactQueues drops lazily-invalidated entries once they dominate,
// keeping reclaim passes proportional to resident pages rather than to
// historical churn. The trigger counts live entries only (stale included,
// consumed head zones excluded) — the same quantity the pre-refQueue
// slices measured — because reclaim's scan budget is derived from it:
// compacting on a different schedule would change when budget-bounded
// passes give up, and with it the eviction sequence.
func (v *VMM) maybeCompactQueues() {
	if v.active.size()+v.inactive.size() < 4*(v.used+64) {
		return
	}
	keep := func(r pageRef) bool {
		_, _, ok := v.valid(r)
		return ok
	}
	v.active.compact(keep)
	v.inactive.compact(keep)
}

// valid reports whether a queue entry still refers to a live queued page.
func (v *VMM) valid(r pageRef) (*Proc, *pageInfo, bool) {
	p := v.procs[r.pid]
	pi := &p.pages[r.page]
	if !pi.queued || pi.stamp != r.stamp || p.flags[r.page]&mem.PFResident == 0 {
		return p, pi, false
	}
	return p, pi, true
}

// reclaim frees frames until the machine is back above the low watermark
// (plus one eviction batch of slack). It models kswapd plus direct
// reclaim: refill the inactive list from the active list with a clock
// pass, then evict from the head of the inactive FIFO, notifying
// registered owners first.
func (v *VMM) reclaim() {
	if v.reclaimIn {
		return
	}
	v.reclaimIn = true
	defer func() { v.reclaimIn = false }()
	v.stats.Reclaims++

	target := v.lowWater + v.batch
	defer func() { v.reclaimStuck = v.FreeFrames() < v.lowWater }()
	// Bound total scanning so a fully-referenced memory still terminates:
	// two full passes clear every reference bit and then evict.
	budget := 2*(v.active.size()+v.inactive.size()) + 4*v.batch
	vetoes := 0
	for v.FreeFrames() < target && budget > 0 {
		budget--
		if v.inactive.size() < v.batch {
			v.refillInactive()
		}
		if v.inactive.size() == 0 {
			if v.active.size() == 0 {
				break // nothing evictable: every page locked or gone
			}
			continue
		}
		r := v.inactive.pop()
		p, pi, ok := v.valid(r)
		if !ok {
			continue
		}
		pi.queued = false
		if pi.locked || pi.servicing {
			v.pushActive(p, r.page)
			continue
		}
		f := p.flags[r.page]
		if f&mem.PFReferenced != 0 && f&mem.PFSurrendered == 0 {
			// Second chance: recently used, promote back to active.
			p.flags[r.page] = f &^ mem.PFReferenced
			v.pushActive(p, r.page)
			continue
		}
		// Cross-owner arbitration: a fleet policy may redirect pressure
		// away from this owner. Desperation cap: past 2×batch vetoes the
		// pass stops asking, so reclaim cannot be starved by policy.
		if v.arbiter != nil && f&mem.PFSurrendered == 0 && vetoes < 2*v.batch {
			if !v.arbiter.Approve(p, r.page) {
				vetoes++
				v.stats.ArbiterVetoes++
				v.pushActive(p, r.page)
				continue
			}
		}
		// Schedule the page for eviction: notify the owner first, unless
		// the page was voluntarily surrendered (already processed).
		if p.handler != nil && f&mem.PFSurrendered == 0 {
			v.stats.Notification++
			v.Clock.Advance(v.costs.Signal)
			p.handler.EvictionScheduled(r.page)
			// The handler may have touched the page (vetoing eviction),
			// locked it, or discarded it altogether.
			f = p.flags[r.page]
			if f&mem.PFResident == 0 || f&mem.PFReferenced != 0 || pi.locked {
				if f&mem.PFResident != 0 && !pi.queued {
					v.pushActive(p, r.page)
				}
				continue
			}
		}
		v.evict(p, r.page)
	}
}

// refillInactive runs one clock pass over the active list, moving
// unreferenced pages to the inactive FIFO and giving referenced pages a
// second chance.
func (v *VMM) refillInactive() {
	moved, scanned := 0, 0
	limit := v.active.size()
	for moved < v.batch && scanned < limit && v.active.size() > 0 {
		scanned++
		r := v.active.pop()
		p, pi, ok := v.valid(r)
		if !ok {
			continue
		}
		pi.queued = false
		if pi.locked || pi.servicing {
			v.pushActive(p, r.page)
			continue
		}
		if f := p.flags[r.page]; f&mem.PFReferenced != 0 {
			p.flags[r.page] = f &^ mem.PFReferenced
			v.pushActive(p, r.page)
			continue
		}
		v.pushInactive(p, r.page)
		moved++
	}
}

// evict writes (p, pg) to the swap device and frees its frame.
func (v *VMM) evict(p *Proc, pg mem.PageID) {
	p.flags[pg] = mem.PFEvicted
	p.resident--
	p.pages[pg].queued = false
	v.used--
	v.stats.Evictions++
	p.stats.Evictions++
	v.Clock.Advance(v.costs.EvictIO)
}

// ProcStats are per-process counters.
type ProcStats struct {
	MinorFaults uint64
	MajorFaults uint64
	Evictions   uint64
	Discards    uint64
	ProtFaults  uint64
	// PeakResident is the high-water mark of the process's resident
	// page count — the memory-side axis of the heap-policy Pareto
	// experiment.
	PeakResident uint64
}

// Proc is one process: an address space plus its page table. It
// implements mem.FaultToucher (and the general mem.Toucher), so it is
// the Space's access observer.
type Proc struct {
	vmm      *VMM
	id       int32
	name     string
	space    *mem.Space
	pages    []pageInfo
	flags    []uint8 // the space's page-flag side array (hot state bits)
	handler  Handler
	stats    ProcStats
	resident int // maintained count of Resident pages, so sampling is O(1)
}

// Space returns the process's address space.
func (p *Proc) Space() *mem.Space { return p.space }

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Stats returns per-process fault counters.
func (p *Proc) Stats() ProcStats { return p.stats }

// Register subscribes the runtime to paging notifications, as the paper's
// runtime registers with the extended kernel at startup.
func (p *Proc) Register(h Handler) { p.handler = h }

// Handler returns the currently registered notification handler (nil if
// none). Fault-injection shims use it to interpose on the notification
// stream while forwarding to the original receiver.
func (p *Proc) Handler() Handler { return p.handler }

// Touch implements mem.Toucher: one full word access, clock cost
// included. The Space's wired fast path bypasses this for resident,
// unprotected pages; everything else — and every direct caller (veto
// touches, page replays) — comes through here.
func (p *Proc) Touch(pg mem.PageID, write bool) {
	p.vmm.Clock.Advance(p.vmm.costs.WordAccess)
	p.FaultTouch(pg, write)
}

// FaultTouch implements mem.FaultToucher: the state machine of one word
// access after its clock cost has been charged. The clock advance may
// have fired events that changed the page's state (even made it
// resident), so every state is handled here.
func (p *Proc) FaultTouch(pg mem.PageID, write bool) {
	v := p.vmm
	f := p.flags[pg]
	switch {
	case f&mem.PFResident != 0:
		p.flags[pg] = (f | mem.PFReferenced) &^ mem.PFSurrendered
		if f&mem.PFProtected != 0 {
			p.flags[pg] &^= mem.PFProtected
			p.stats.ProtFaults++
			if p.handler != nil {
				v.stats.Notification++
				v.Clock.Advance(v.costs.Signal)
				p.handler.PageReloaded(pg, false)
			}
		}
	case f&mem.PFEvicted != 0:
		v.stats.MajorFaults++
		p.stats.MajorFaults++
		if v.OnMajorFault != nil {
			v.OnMajorFault(p.id, pg)
		}
		v.Clock.Advance(v.costs.MajorFault)
		// The page is locked for the duration of fault service, as the
		// kernel's page lock does: reclaim triggered while mapping the
		// frame must not steal it back.
		pi := &p.pages[pg]
		pi.servicing = true
		v.makeResident(p, pg)
		if p.handler != nil {
			v.stats.Notification++
			v.Clock.Advance(v.costs.Signal)
			p.handler.PageReloaded(pg, true)
		}
		pi.servicing = false
	default: // fresh
		v.stats.MinorFaults++
		p.stats.MinorFaults++
		v.Clock.Advance(v.costs.MinorFault)
		pi := &p.pages[pg]
		pi.servicing = true
		v.makeResident(p, pg)
		pi.servicing = false
	}
	_ = write
}

// TouchN charges n word accesses to page pg as one batch: the first
// access runs the full fault path (faults, residency, notifications),
// the remainder only advance the clock — after the first access the
// page is resident and referenced, so n-1 further touches could differ
// only in clock cost. The parallel mark engine uses this to replay its
// recorded per-page access counts in canonical order.
func (p *Proc) TouchN(pg mem.PageID, n uint64, write bool) {
	if n == 0 {
		return
	}
	p.Touch(pg, write)
	if n > 1 {
		p.vmm.Clock.Advance(time.Duration(n-1) * p.vmm.costs.WordAccess)
	}
}

// State returns the residency state of page pg.
func (p *Proc) State(pg mem.PageID) PageState {
	f := p.flags[pg]
	switch {
	case f&mem.PFResident != 0:
		return Resident
	case f&mem.PFEvicted != 0:
		return Evicted
	}
	return Fresh
}

// Resident reports whether pg occupies a frame.
func (p *Proc) Resident(pg mem.PageID) bool { return p.flags[pg]&mem.PFResident != 0 }

// Discard models madvise(MADV_DONTNEED): the page's frame (or swap slot)
// is released and its contents are dropped; the next touch is a cheap
// zero-fill fault (§3.3.2).
func (p *Proc) Discard(pg mem.PageID) {
	if p.flags[pg]&mem.PFResident != 0 {
		p.vmm.used--
		p.resident--
	}
	p.flags[pg] = 0
	pi := &p.pages[pg]
	pi.queued = false // lazy-invalidates any queue entry via stamp
	pi.stamp++
	p.space.ZeroPageRaw(pg)
	p.vmm.stats.Discards++
	p.stats.Discards++
}

// Relinquish models the paper's new vm_relinquish system call: the
// process voluntarily surrenders pages, which the VMM moves to the end of
// the inactive queue to be swapped out quickly, without re-notification
// (§3.4). Non-resident pages are ignored.
func (p *Proc) Relinquish(pgs []mem.PageID) {
	for _, pg := range pgs {
		f := p.flags[pg]
		if f&mem.PFResident == 0 || p.pages[pg].locked {
			continue
		}
		p.flags[pg] = (f | mem.PFSurrendered) &^ mem.PFReferenced
		pi := &p.pages[pg]
		pi.queued = false
		pi.stamp++
		p.vmm.pushInactive(p, pg)
	}
	// Relinquished pages are reclaimed at the next memory shortage; if the
	// machine is already short, collect them now.
	if p.vmm.FreeFrames() < p.vmm.lowWater && !p.vmm.reclaimIn {
		p.vmm.reclaim()
	}
}

// Protect disables access to a resident page (mprotect PROT_NONE). The
// next touch raises a protection fault delivered via PageReloaded. BC uses
// this to close the race between scanning a page and its eviction (§3.4).
func (p *Proc) Protect(pg mem.PageID) {
	if p.flags[pg]&mem.PFResident != 0 {
		p.flags[pg] |= mem.PFProtected
	}
}

// Unprotect re-enables access without a fault.
func (p *Proc) Unprotect(pg mem.PageID) { p.flags[pg] &^= mem.PFProtected }

// Protected reports whether the page is access-protected.
func (p *Proc) Protected(pg mem.PageID) bool { return p.flags[pg]&mem.PFProtected != 0 }

// Lock pins a resident page in memory (mlock); it will never be chosen
// for eviction. Touches the page in first if needed.
func (p *Proc) Lock(pg mem.PageID) {
	if p.flags[pg]&mem.PFResident == 0 {
		p.Touch(pg, true)
	}
	p.pages[pg].locked = true
}

// Unlock releases an mlock.
func (p *Proc) Unlock(pg mem.PageID) { p.pages[pg].locked = false }

// FreeFramesHint exposes the machine's free-frame count — the "available
// memory" figure a cooperative runtime may consult (as the heap-sizing
// advisors in the paper's related work do).
func (p *Proc) FreeFramesHint() int { return p.vmm.FreeFrames() }

// ResidentPages returns the number of this process's resident pages.
// The count is maintained at every state transition, so the live
// telemetry sampler can read it each tick without walking the table.
func (p *Proc) ResidentPages() int { return p.resident }

// String implements fmt.Stringer for diagnostics.
func (p *Proc) String() string {
	return fmt.Sprintf("proc %d (%s): %d pages, %d resident", p.id, p.name, len(p.pages), p.ResidentPages())
}
