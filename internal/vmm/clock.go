package vmm

import (
	"sort"
	"time"
)

// Clock is the simulated time source shared by every process, the VMM,
// and the workload driver. All costs in the simulation advance this clock;
// wall-clock time is never consulted, so runs are deterministic.
//
// The clock also carries a small event queue (used by the simulated
// signalmem process to pin memory at a fixed rate, §5.1 of the paper).
// Events fire during Advance when simulated time passes their deadline.
type Clock struct {
	now    time.Duration
	events []event
	firing bool
}

type event struct {
	at time.Duration
	fn func()
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves simulated time forward by d and fires any events whose
// deadline has passed. Nested Advance calls (from inside an event handler
// or a page-fault path) accumulate time but defer event dispatch to the
// outermost call, so handlers never re-enter each other.
func (c *Clock) Advance(d time.Duration) {
	c.now += d
	if c.firing {
		return
	}
	c.firing = true
	defer func() { c.firing = false }()
	for {
		i := c.dueIndex()
		if i < 0 {
			return
		}
		e := c.events[i]
		c.events = append(c.events[:i], c.events[i+1:]...)
		e.fn()
	}
}

// dueIndex returns the index of the earliest due event, or -1.
func (c *Clock) dueIndex() int {
	best := -1
	for i, e := range c.events {
		if e.at <= c.now && (best == -1 || e.at < c.events[best].at) {
			best = i
		}
	}
	return best
}

// Schedule registers fn to run once simulated time reaches at. Events
// scheduled in the past fire on the next Advance.
func (c *Clock) Schedule(at time.Duration, fn func()) {
	c.events = append(c.events, event{at, fn})
}

// Pending returns the deadlines of all scheduled events, sorted; it is
// used by drivers that want to idle-skip to the next event.
func (c *Clock) Pending() []time.Duration {
	out := make([]time.Duration, len(c.events))
	for i, e := range c.events {
		out[i] = e.at
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
