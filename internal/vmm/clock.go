package vmm

import "bookmarkgc/internal/mem"

// Clock is the simulated time source shared by every process, the VMM,
// and the workload driver. It lives in package mem so the Space's inline
// word-access fast path can advance it without an interface call; the
// alias keeps vmm.Clock as the name the rest of the runtime wires
// against.
type Clock = mem.Clock

// NewClock returns a clock at time zero.
func NewClock() *Clock { return mem.NewClock() }
