package vmm

import (
	"testing"

	"bookmarkgc/internal/mem"
)

// procArbiter vetoes every eviction from the procs in protect.
type procArbiter struct {
	protect map[int32]bool
	asked   int
}

func (a *procArbiter) Approve(owner *Proc, pg mem.PageID) bool {
	a.asked++
	return !a.protect[owner.id]
}

// touchPages walks n pages of p once, making them resident.
func touchPages(p *Proc, n int) {
	for i := 0; i < n; i++ {
		p.Touch(mem.PageID(i), false)
	}
}

// TestArbiterRedirectsPressure: two procs fill memory; an arbiter that
// shields proc A must force all evictions onto proc B.
func TestArbiterRedirectsPressure(t *testing.T) {
	_, v := testVMM(t, 256)
	a := v.NewProc("a", 512*mem.PageSize)
	b := v.NewProc("b", 512*mem.PageSize)
	arb := &procArbiter{protect: map[int32]bool{a.id: true}}
	v.SetArbiter(arb)

	// A's working set stays under the desperation cap (2×batch = 64), so
	// the arbiter's shield holds absolutely; B soaks up all the pressure.
	touchPages(a, 60)
	touchPages(b, 180)
	for round := 0; round < 6; round++ {
		touchPages(a, 60)
		touchPages(b, 180)
	}
	if arb.asked == 0 {
		t.Fatal("arbiter never consulted")
	}
	if a.Stats().Evictions != 0 {
		t.Fatalf("shielded proc evicted %d pages", a.Stats().Evictions)
	}
	if b.Stats().Evictions == 0 {
		t.Fatal("unshielded proc never evicted despite pressure")
	}
	if v.Stats().ArbiterVetoes == 0 {
		t.Fatal("vetoes not counted")
	}
	if err := v.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
}

// denyAll vetoes everything — reclaim must still make progress via the
// desperation cap rather than livelock.
type denyAll struct{}

func (denyAll) Approve(*Proc, mem.PageID) bool { return false }

func TestArbiterDesperationFallback(t *testing.T) {
	_, v := testVMM(t, 128)
	p := v.NewProc("a", 1024*mem.PageSize)
	v.SetArbiter(denyAll{})

	// Touch far more pages than frames; without the 2×batch cap this
	// would loop vetoing until the scan budget ran dry with nothing freed.
	touchPages(p, 600)
	if v.Stats().Evictions == 0 {
		t.Fatal("no evictions despite deny-all arbiter: desperation fallback broken")
	}
	if v.Stats().ArbiterVetoes == 0 {
		t.Fatal("deny-all arbiter recorded no vetoes")
	}
	if v.FreeFrames() < 0 {
		t.Fatalf("free frames went negative: %d", v.FreeFrames())
	}
	if err := v.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestArbiterSkipsSurrendered: relinquished pages must be evicted without
// consulting the arbiter — the owner already gave them up.
func TestArbiterSkipsSurrendered(t *testing.T) {
	_, v := testVMM(t, 128)
	p := v.NewProc("a", 256*mem.PageSize)
	touchPages(p, 60)

	arb := &procArbiter{protect: map[int32]bool{p.id: true}}
	v.SetArbiter(arb)

	var pgs []mem.PageID
	for i := 0; i < 40; i++ {
		pgs = append(pgs, mem.PageID(i))
	}
	p.Relinquish(pgs)
	// Force pressure so reclaim drains the inactive list.
	touchPages(p, 120)
	evicted := 0
	for _, pg := range pgs {
		if p.State(pg) == Evicted {
			evicted++
		}
	}
	if evicted == 0 {
		t.Fatal("no surrendered page was evicted under a protective arbiter")
	}
	if err := v.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckAccountingDetectsDrift: deliberately corrupt a counter and
// make sure the checker notices.
func TestCheckAccountingDetectsDrift(t *testing.T) {
	_, v := testVMM(t, 128)
	p := v.NewProc("a", 64*mem.PageSize)
	touchPages(p, 10)
	if err := v.CheckAccounting(); err != nil {
		t.Fatalf("clean machine failed accounting: %v", err)
	}
	p.resident++
	if err := v.CheckAccounting(); err == nil {
		t.Fatal("per-proc drift not detected")
	}
	p.resident--
	v.used++
	if err := v.CheckAccounting(); err == nil {
		t.Fatal("machine-wide drift not detected")
	}
	v.used--
}
