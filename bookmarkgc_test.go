package bookmarkgc_test

import (
	"testing"

	"bookmarkgc"
)

func TestRuntimeObjectAPI(t *testing.T) {
	m := bookmarkgc.NewMachine(128 << 20)
	rt := m.NewRuntime("t", bookmarkgc.BC, 8<<20)
	node := rt.DefineScalar("node", 4, 0, 1)
	arr := rt.DefineArray("arr", false)

	head := rt.NewRoot(bookmarkgc.Nil)
	for i := 0; i < 50_000; i++ {
		n := rt.Alloc(node)
		rt.WriteData(n, 2, uint64(i))
		rt.WriteRef(n, 0, rt.Root(head))
		rt.SetRoot(head, n)
	}
	// Garbage churn well beyond the heap size forces collections.
	for i := 0; i < 300_000; i++ {
		rt.Alloc(node)
	}
	big := rt.NewRoot(rt.AllocArray(arr, 2048))
	rt.WriteData(rt.Root(big), 100, 9)
	rt.Collect(true)

	o := rt.Root(head)
	for i := 49_999; i >= 49_990; i-- {
		if got := rt.ReadData(o, 2); got != uint64(i) {
			t.Fatalf("node %d = %d", i, got)
		}
		o = rt.ReadRef(o, 0)
	}
	if rt.ReadData(rt.Root(big), 100) != 9 {
		t.Fatal("array corrupted")
	}
	if rt.Stats().Nursery == 0 {
		t.Fatal("no nursery collections")
	}
	if rt.Timeline().Elapsed() <= 0 {
		t.Fatal("no simulated time")
	}
	if rt.HeapPages() <= 0 {
		t.Fatal("no footprint")
	}
	rt.DropRoot(big)
}

func TestMachinePressureAPI(t *testing.T) {
	m := bookmarkgc.NewMachine(64 << 20)
	rt := m.NewRuntime("t", bookmarkgc.GenMS, 8<<20)
	node := rt.DefineScalar("node", 4, 0, 1)
	for i := 0; i < 30_000; i++ {
		rt.Alloc(node)
	}
	free0 := m.FreeMemory()
	m.PinMemory(free0 + 4<<20) // beyond free: forces eviction
	if m.FreeMemory() >= free0 {
		t.Fatal("pin did not reduce free memory")
	}
	for i := 0; i < 30_000; i++ {
		rt.Alloc(node)
	}
	if rt.MajorFaults() == 0 && m.VMM().Stats().Evictions == 0 {
		t.Fatal("pressure had no effect")
	}
	m.UnpinMemory(free0)
	if m.Now() <= 0 {
		t.Fatal("clock did not advance")
	}
}

func TestProgramRunThroughFacade(t *testing.T) {
	m := bookmarkgc.NewMachine(128 << 20)
	rt := m.NewRuntime("t", bookmarkgc.BC, 8<<20)
	prog := bookmarkgc.PseudoJBB().Scale(0.01)
	run := rt.NewProgramRun(prog, 5)
	res := run.RunToCompletion()
	if res.AllocatedBytes < prog.TotalAlloc {
		t.Fatal("program under-allocated")
	}
}

func TestRunAndExperimentSurface(t *testing.T) {
	if len(bookmarkgc.Programs()) != 9 {
		t.Fatalf("suite size %d", len(bookmarkgc.Programs()))
	}
	if len(bookmarkgc.Experiments()) < 8 {
		t.Fatal("experiments missing")
	}
	res := bookmarkgc.Run(bookmarkgc.RunConfig{
		Collector: bookmarkgc.CopyMS,
		Program:   bookmarkgc.PseudoJBB().Scale(0.01),
		HeapBytes: 4 << 20,
		PhysBytes: 64 << 20,
		Seed:      1,
	})
	if res.ElapsedSecs <= 0 {
		t.Fatal("run failed")
	}
	rs := bookmarkgc.RunMulti(bookmarkgc.MultiConfig{
		Collector: bookmarkgc.BC,
		Program:   bookmarkgc.PseudoJBB().Scale(0.005),
		HeapBytes: 4 << 20,
		PhysBytes: 64 << 20,
		JVMs:      2,
		Seed:      1,
	})
	if len(rs) != 2 {
		t.Fatal("RunMulti wrong")
	}
	if p := bookmarkgc.SteadyPressure(10<<20, 0.5); p.InitialBytes != 5<<20 {
		t.Fatal("SteadyPressure wrong")
	}
	if p := bookmarkgc.DynamicPressure(1 << 20); p.GrowBytes == 0 {
		t.Fatal("DynamicPressure wrong")
	}
}
