// Memorypressure reproduces the paper's central scenario (§5.3.2) as a
// standalone program: pseudoJBB running while another process pins away
// memory. It runs the same workload under the bookmarking collector and
// under GenMS (the strongest VM-oblivious baseline) and prints the
// comparison the paper's Figures 4 and 5 are built from.
package main

import (
	"fmt"
	"time"

	"bookmarkgc"
)

func main() {
	scale := 0.1
	var (
		heap  = uint64(77 * scale * (1 << 20))
		phys  = uint64(256 * scale * (1 << 20))
		avail = uint64(55 * scale * (1 << 20)) // severe: below the heap, above the live set
	)
	prog := bookmarkgc.PseudoJBB().Scale(scale)

	fmt.Println("pseudoJBB under dynamic memory pressure (signalmem pins to",
		avail>>20, "MB available)")
	fmt.Println()

	for _, kind := range []bookmarkgc.CollectorKind{bookmarkgc.BC, bookmarkgc.GenMS} {
		res := bookmarkgc.Run(bookmarkgc.RunConfig{
			Collector: kind,
			Program:   prog,
			HeapBytes: heap,
			PhysBytes: phys,
			// The §5.3.2 schedule with every quantity scaled: an initial
			// grab, then steady growth until only `avail` remains.
			Pressure: &bookmarkgc.Pressure{
				InitialBytes:     uint64(30 * scale * (1 << 20)),
				GrowBytes:        uint64(1 * scale * (1 << 20)),
				GrowEvery:        200 * time.Microsecond,
				TargetAvailBytes: avail,
			},
			Seed: 1,
		})
		var gcFaults uint64
		for _, p := range res.Timeline.Pauses {
			gcFaults += p.MajorFaults
		}
		fmt.Printf("%-6s exec=%8.3fs  pauses: n=%-4d avg=%-10v max=%-10v  majflt=%-6d (in GC: %d)\n",
			kind, res.ElapsedSecs,
			res.Timeline.Count(), res.Timeline.AvgPause(), res.Timeline.MaxPause(),
			res.ProcStats.MajorFaults, gcFaults)
		if kind == bookmarkgc.BC {
			fmt.Printf("       bookmarking: %d pages processed for eviction, %d objects bookmarked, %d fail-safe collections\n",
				res.GCStats.PagesEvicted, res.GCStats.Bookmarked, res.GCStats.FailSafe)
		}
	}
	fmt.Println()
	fmt.Println("The bookmarking collector keeps collecting in memory (near-zero")
	fmt.Println("major faults during GC pauses); GenMS's full-heap collections")
	fmt.Println("touch evicted pages and its pauses stretch by orders of magnitude.")
}
