// Memorypressure reproduces the paper's central scenario (§5.3.2) as a
// standalone program: pseudoJBB running while another process pins away
// memory. It runs the same workload under the bookmarking collector and
// under GenMS (the strongest VM-oblivious baseline) and prints the
// comparison the paper's Figures 4 and 5 are built from.
package main

import (
	"fmt"
	"strings"
	"time"

	"bookmarkgc"
	"bookmarkgc/internal/heappolicy"
	"bookmarkgc/internal/telemetry"
)

func main() {
	scale := 0.1
	var (
		heap  = uint64(77 * scale * (1 << 20))
		phys  = uint64(256 * scale * (1 << 20))
		avail = uint64(55 * scale * (1 << 20)) // severe: below the heap, above the live set
	)
	prog := bookmarkgc.PseudoJBB().Scale(scale)

	fmt.Println("pseudoJBB under dynamic memory pressure (signalmem pins to",
		avail>>20, "MB available)")
	fmt.Println()

	for _, kind := range []bookmarkgc.CollectorKind{bookmarkgc.BC, bookmarkgc.GenMS} {
		res := bookmarkgc.Run(bookmarkgc.RunConfig{
			Collector: kind,
			Program:   prog,
			HeapBytes: heap,
			PhysBytes: phys,
			// The §5.3.2 schedule with every quantity scaled: an initial
			// grab, then steady growth until only `avail` remains.
			Pressure: &bookmarkgc.Pressure{
				InitialBytes:     uint64(30 * scale * (1 << 20)),
				GrowBytes:        uint64(1 * scale * (1 << 20)),
				GrowEvery:        200 * time.Microsecond,
				TargetAvailBytes: avail,
			},
			Seed: 1,
		})
		var gcFaults uint64
		for _, p := range res.Timeline.Pauses {
			gcFaults += p.MajorFaults
		}
		fmt.Printf("%-6s exec=%8.3fs  pauses: n=%-4d avg=%-10v max=%-10v  majflt=%-6d (in GC: %d)\n",
			kind, res.ElapsedSecs,
			res.Timeline.Count(), res.Timeline.AvgPause(), res.Timeline.MaxPause(),
			res.ProcStats.MajorFaults, gcFaults)
		if kind == bookmarkgc.BC {
			fmt.Printf("       bookmarking: %d pages processed for eviction, %d objects bookmarked, %d fail-safe collections\n",
				res.GCStats.PagesEvicted, res.GCStats.Bookmarked, res.GCStats.FailSafe)
		}
	}
	fmt.Println()
	fmt.Println("The bookmarking collector keeps collecting in memory (near-zero")
	fmt.Println("major faults during GC pauses); GenMS's full-heap collections")
	fmt.Println("touch evicted pages and its pauses stretch by orders of magnitude.")

	// The same squeeze through the pluggable heap-limit policies
	// (DESIGN.md §14): each policy decides how much of the configured
	// heap GenMS may actually use, and the sampled trajectory shows the
	// control loop reacting — or, for fixed, refusing to.
	fmt.Println()
	fmt.Printf("heap-limit trajectory per policy (GenMS, %d-page configured heap):\n",
		(heap+(4<<10)-1)/(4<<10))
	for _, pol := range heappolicy.Names() {
		tel := telemetry.New(telemetry.Config{SampleEvery: 2 * time.Millisecond})
		res := bookmarkgc.Run(bookmarkgc.RunConfig{
			Collector: bookmarkgc.GenMS,
			Program:   prog,
			HeapBytes: heap,
			PhysBytes: phys,
			Pressure: &bookmarkgc.Pressure{
				InitialBytes:     uint64(30 * scale * (1 << 20)),
				GrowBytes:        uint64(1 * scale * (1 << 20)),
				GrowEvery:        200 * time.Microsecond,
				TargetAvailBytes: avail,
			},
			Seed:       1,
			HeapPolicy: pol,
			Telemetry:  tel,
		})
		limits := tel.ColumnTail(telemetry.ColHeapLimitPages, tel.SampleCount())
		fmt.Printf("%-12s %s  exec=%.3fs gcs=%d\n",
			pol, trajectory(limits, 10), res.ElapsedSecs, res.Timeline.Count())
	}
	fmt.Println()
	fmt.Println("fixed holds the configured budget no matter what; bc-shrink and")
	fmt.Println("composed give pages back when the kernel evicts; membalancer sizes")
	fmt.Println("the heap from allocation rate vs GC speed (the square-root rule).")
}

// trajectory renders n evenly spaced samples of the limit series as a
// compact "a -> b -> c pg" string.
func trajectory(limits []int64, n int) string {
	if len(limits) == 0 {
		return "(no samples)"
	}
	if n > len(limits) {
		n = len(limits)
	}
	pts := make([]string, n)
	for i := range pts {
		pts[i] = fmt.Sprint(limits[i*(len(limits)-1)/max(n-1, 1)])
	}
	return strings.Join(pts, ">") + " pg"
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
