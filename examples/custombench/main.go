// Custombench shows how to define a new workload against the public API
// — here, an LRU-cache-like service: a large long-lived table of entries
// with high turnover at the hot end — and how to sweep it across
// collectors, the experiment the library makes one loop.
package main

import (
	"fmt"

	"bookmarkgc"
)

// cacheProgram is a custom workload spec: 48 MB of allocation over a
// ~6 MB live set, array-heavy, with frequent pointer stores (cache
// updates create many old-to-young edges, stressing the write barriers
// and remembered sets).
var cacheProgram = bookmarkgc.Program{
	Name:       "lrucache",
	TotalAlloc: 48 << 20,
	MinHeap:    12 << 20,
	LiveFrac:   0.5,
	TempFrac:   0.6, // high survival: entries live until displaced
	Sizes: []bookmarkgc.SizeBand{
		{Weight: 50, Array: false},
		{Weight: 50, Array: true, MinWords: 16, MaxWords: 128},
	},
	WorkPerAlloc: 20,
	LinkEvery:    4,
}

func main() {
	heap := uint64(16 << 20)
	fmt.Printf("%-10s %-10s %-12s %-10s %s\n", "collector", "exec", "collections", "avg pause", "major faults")
	for _, kind := range []bookmarkgc.CollectorKind{
		bookmarkgc.BC, bookmarkgc.GenMS, bookmarkgc.GenCopy,
		bookmarkgc.CopyMS, bookmarkgc.SemiSpace,
	} {
		res := bookmarkgc.Run(bookmarkgc.RunConfig{
			Collector: kind,
			Program:   cacheProgram,
			HeapBytes: heap,
			PhysBytes: 24 << 20,
			Pressure:  bookmarkgc.SteadyPressure(heap, 0.75), // squeeze: ~12 MB left for a 16 MB heap
			Seed:      3,
		})
		fmt.Printf("%-10s %-10.3fs %-12d %-10v %d\n",
			kind, res.ElapsedSecs, res.Timeline.Count(),
			res.Timeline.AvgPause().Round(10_000), res.ProcStats.MajorFaults)
	}
}
