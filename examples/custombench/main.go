// Custombench shows how to define a new workload against the public API
// — here, an LRU-cache-like service: a large long-lived table of entries
// with high turnover at the hot end — and how to sweep it across
// collectors the record-once/replay-everywhere way: the workload runs
// once, its full allocation history is recorded to a trace file, and
// every collector replays the identical history, so each row of the
// table differs only in collector policy (never in workload noise).
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"bookmarkgc"
)

// cacheProgram is a custom workload spec: 48 MB of allocation over a
// ~6 MB live set, array-heavy, with frequent pointer stores (cache
// updates create many old-to-young edges, stressing the write barriers
// and remembered sets).
var cacheProgram = bookmarkgc.Program{
	Name:       "lrucache",
	TotalAlloc: 48 << 20,
	MinHeap:    12 << 20,
	LiveFrac:   0.5,
	TempFrac:   0.6, // high survival: entries live until displaced
	Sizes: []bookmarkgc.SizeBand{
		{Weight: 50, Array: false},
		{Weight: 50, Array: true, MinWords: 16, MaxWords: 128},
	},
	WorkPerAlloc: 20,
	LinkEvery:    4,
}

func main() {
	heap := uint64(16 << 20)
	phys := uint64(24 << 20)

	// Record the workload once, under BC with no pressure — the trace is
	// the allocation history itself, independent of which collector (or
	// how much memory) later replays it.
	trace := filepath.Join(os.TempDir(), "lrucache.gctrace")
	defer os.Remove(trace)
	rec, err := bookmarkgc.RecordTrace(trace, bookmarkgc.RunConfig{
		Collector: bookmarkgc.BC,
		Program:   cacheProgram,
		HeapBytes: heap,
		PhysBytes: phys,
		Seed:      3,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "recording:", err)
		os.Exit(1)
	}
	fmt.Printf("recorded %s: %d allocations, %d bytes\n\n",
		trace, rec.Mutator.Allocations, rec.Mutator.AllocatedBytes)

	// Replay the identical history under every collector, now squeezed:
	// ~12 MB removed from a 24 MB machine under a 16 MB heap. The footer
	// checksum verifies each replay word-for-word against the recording.
	fmt.Printf("%-10s %-10s %-12s %-10s %s\n", "collector", "exec", "collections", "avg pause", "major faults")
	for _, kind := range []bookmarkgc.CollectorKind{
		bookmarkgc.BC, bookmarkgc.GenMS, bookmarkgc.GenCopy,
		bookmarkgc.CopyMS, bookmarkgc.SemiSpace,
	} {
		src, err := bookmarkgc.OpenTrace(trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opening trace:", err)
			os.Exit(1)
		}
		res := bookmarkgc.Run(bookmarkgc.RunConfig{
			Collector: kind,
			HeapBytes: heap,
			PhysBytes: phys,
			Pressure:  bookmarkgc.SteadyPressure(heap, 0.75),
			Workload:  src,
		})
		if res.Err != nil {
			fmt.Printf("%-10s FAILED: %v\n", kind, res.Err)
			continue
		}
		fmt.Printf("%-10s %-10.3fs %-12d %-10v %d\n",
			kind, res.ElapsedSecs, res.Timeline.Count(),
			res.Timeline.AvgPause().Round(10_000), res.ProcStats.MajorFaults)
	}
}
