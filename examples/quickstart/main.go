// Quickstart: build a small object graph under the bookmarking collector
// and watch it collect. Demonstrates the Runtime object API: type
// definition, allocation, roots, reference and data access, forced
// collections, and the pause/stat counters.
package main

import (
	"fmt"

	"bookmarkgc"
)

func main() {
	// A machine with 256 MB of RAM, and one managed runtime on it with a
	// 32 MB heap under the bookmarking collector.
	m := bookmarkgc.NewMachine(256 << 20)
	rt := m.NewRuntime("quickstart", bookmarkgc.BC, 32<<20)

	// An object type: 4 payload words, references in words 0 and 1
	// (words 2 and 3 are plain data).
	node := rt.DefineScalar("node", 4, 0, 1)

	// Build a linked list of 100k nodes. Refs are only stable until the
	// next allocation, so the list head lives in a root slot.
	head := rt.NewRoot(bookmarkgc.Nil)
	for i := 0; i < 100_000; i++ {
		n := rt.Alloc(node)
		rt.WriteData(n, 2, uint64(i))
		rt.WriteRef(n, 0, rt.Root(head))
		rt.SetRoot(head, n)
	}

	// Walk the first few nodes back.
	fmt.Print("list tail values: ")
	o := rt.Root(head)
	for i := 0; i < 5; i++ {
		fmt.Printf("%d ", rt.ReadData(o, 2))
		o = rt.ReadRef(o, 0)
	}
	fmt.Println()

	// Allocate garbage to provoke collections, then force a full one.
	for i := 0; i < 200_000; i++ {
		rt.Alloc(node)
	}
	rt.Collect(true)

	st := rt.Stats()
	fmt.Printf("allocated: %.1f MB in %d objects\n",
		float64(st.BytesAlloc)/(1<<20), st.ObjectsAlloc)
	fmt.Printf("collections: %d nursery, %d full; heap footprint %d pages\n",
		st.Nursery, st.Full, rt.HeapPages())
	fmt.Printf("timeline: %s\n", rt.Timeline())
	fmt.Printf("simulated time: %v, major faults: %d\n", m.Now(), rt.MajorFaults())
}
