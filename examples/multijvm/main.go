// Multijvm runs two simulated JVMs on one machine (§5.3.3 / Figure 7):
// both run pseudoJBB with equal heaps while sharing physical memory that
// cannot hold them both. With a VM-oblivious collector, paging
// effectively serializes the two instances; the bookmarking collector
// keeps both responsive.
//
// RunMulti is a thin wrapper over the fleet engine (internal/sim
// RunFleet) with the arbiter, cascade detector, and fleet telemetry
// left uninstalled — this example's output is byte-identical to what it
// printed before the fleet engine existed, and golden.txt pins that.
package main

import (
	"fmt"
	"time"

	"bookmarkgc"
)

func main() {
	scale := 0.1
	heap := uint64(77 * scale * (1 << 20))
	prog := bookmarkgc.PseudoJBB().Scale(scale)

	for _, phys := range []uint64{uint64(2.4 * float64(heap)), uint64(1.2 * float64(heap))} {
		fmt.Printf("machine RAM = %.1f MB for two %d MB heaps\n",
			float64(phys)/(1<<20), heap>>20)
		for _, kind := range []bookmarkgc.CollectorKind{bookmarkgc.BC, bookmarkgc.CopyMS} {
			results := bookmarkgc.RunMulti(bookmarkgc.MultiConfig{
				Collector: kind,
				Program:   prog,
				HeapBytes: heap,
				PhysBytes: phys,
				JVMs:      2,
				Seed:      7,
			})
			var worst float64
			var pauses int
			var pauseSum time.Duration
			for _, r := range results {
				if r.ElapsedSecs > worst {
					worst = r.ElapsedSecs
				}
				pauses += r.Timeline.Count()
				pauseSum += r.Timeline.TotalPause()
			}
			avg := time.Duration(0)
			if pauses > 0 {
				avg = pauseSum / time.Duration(pauses)
			}
			fmt.Printf("  %-7s total elapsed=%8.3fs  mean pause=%v (both instances)\n",
				kind, worst, avg)
		}
		fmt.Println()
	}
}
