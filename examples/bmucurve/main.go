// Bmucurve prints bounded-mutator-utilization curves (the paper's
// Figure 6 metric) for the bookmarking collector and GenMS under the
// same dynamic memory pressure, as simple ASCII plots. BMU at window w
// is the worst-case fraction of any interval of length ≥ w the mutator
// gets to run — the responsiveness measure that exposes paging-inflated
// pauses far better than averages do.
package main

import (
	"fmt"
	"strings"
	"time"

	"bookmarkgc"
)

func main() {
	scale := 0.1
	heap := uint64(77 * scale * (1 << 20))
	phys := uint64(100 * scale * (1 << 20))
	prog := bookmarkgc.PseudoJBB().Scale(scale)

	for _, kind := range []bookmarkgc.CollectorKind{bookmarkgc.BC, bookmarkgc.GenMS} {
		res := bookmarkgc.Run(bookmarkgc.RunConfig{
			Collector: kind,
			Program:   prog,
			HeapBytes: heap,
			PhysBytes: phys,
			// Figure 3's steady pressure: half the heap vanishes.
			Pressure: bookmarkgc.SteadyPressure(heap, 0.5),
			Seed:     1,
		})
		total := res.Timeline.Elapsed()
		fmt.Printf("%s: run %v, %d pauses, max pause %v\n",
			kind, total.Round(time.Millisecond), res.Timeline.Count(),
			res.Timeline.MaxPause().Round(time.Millisecond))
		for _, pt := range res.Timeline.BMUCurve(total/300, total, 10) {
			bar := strings.Repeat("#", int(pt[1]*40))
			fmt.Printf("  w=%-9s %5.2f %s\n",
				time.Duration(pt[0]*float64(time.Second)).Round(time.Millisecond), pt[1], bar)
		}
		fmt.Println()
	}
	fmt.Println("Higher and further left is better: BC reaches useful utilization")
	fmt.Println("at much smaller windows because its pauses never include paging.")
}
