// Package bookmarkgc is a from-scratch reproduction of "Garbage
// Collection Without Paging" (Hertz, Feng & Berger, PLDI 2005): the
// bookmarking collector, the five MMTk baseline collectors it is
// evaluated against, and the substrate they need — a simulated machine
// with a cooperative virtual memory manager (approximate-LRU replacement,
// eviction/reload notifications, vm_relinquish, madvise discard), a
// Jikes-style object model with superpage-organized segregated size
// classes, the paper's benchmark workloads, and a harness that
// regenerates every table and figure of the evaluation.
//
// Quick start:
//
//	m := bookmarkgc.NewMachine(256 << 20) // 256 MB machine
//	rt := m.NewRuntime("demo", bookmarkgc.BC, 32<<20)
//	node := rt.DefineScalar("node", 4, 0, 1) // refs in words 0,1
//	obj := rt.Alloc(node)
//	root := rt.NewRoot(obj)
//	...
//	fmt.Println(rt.Timeline())
//
// The experiments of the paper are available through Experiments and the
// cmd/experiments binary; custom workloads can be built either on the
// Runtime object API or the Program/Run layer (see examples/).
package bookmarkgc

import (
	"bufio"
	"os"
	"time"

	"bookmarkgc/internal/bench"
	"bookmarkgc/internal/gc"
	"bookmarkgc/internal/mem"
	"bookmarkgc/internal/metrics"
	"bookmarkgc/internal/mutator"
	"bookmarkgc/internal/objmodel"
	"bookmarkgc/internal/sim"
	"bookmarkgc/internal/vmm"
	"bookmarkgc/internal/workload"
)

// Ref is a reference to a managed heap object. The zero Ref is nil.
type Ref = mem.Addr

// Nil is the null reference.
const Nil Ref = mem.Nil

// Type describes a class of heap objects (scalars with a pointer map, or
// arrays).
type Type = objmodel.Type

// Collector is the interface every implemented garbage collector
// satisfies; the mutator-facing allocation and access operations.
type Collector = gc.Collector

// Stats are a collector's counters (collections, allocation volume,
// bookmarking activity).
type Stats = gc.Stats

// Timeline is a run's pause record with BMU/MMU analysis.
type Timeline = metrics.Timeline

// CollectorKind names an implemented collector.
type CollectorKind = sim.CollectorKind

// The available collectors: the bookmarking collector (with its variants)
// and the five baselines of the paper's §5.
const (
	BC           = sim.BC
	BCResizeOnly = sim.BCResizeOnly
	GenMS        = sim.GenMS
	GenCopy      = sim.GenCopy
	CopyMS       = sim.CopyMS
	MarkSweep    = sim.MarkSweep
	SemiSpace    = sim.SemiSpace
	GenMSFixed   = sim.GenMSFixed
	GenCopyFixed = sim.GenCopyFixed
)

// Program is a synthetic benchmark specification (Table 1 workloads).
type Program = mutator.Spec

// SizeBand is one entry of a Program's object size mix.
type SizeBand = mutator.SizeBand

// Programs returns the paper's benchmark suite (Table 1).
func Programs() []Program { return mutator.Programs }

// PseudoJBB returns the pseudoJBB workload used in the memory-pressure
// experiments.
func PseudoJBB() Program { return mutator.PseudoJBB() }

// RunConfig configures a complete single-JVM simulation; Run executes it.
type RunConfig = sim.RunConfig

// Result is a finished run's measurements.
type Result = sim.Result

// Run executes one workload × collector × machine configuration.
func Run(cfg RunConfig) Result { return sim.Run(cfg) }

// MultiConfig configures several JVMs sharing one machine (§5.3.3);
// RunMulti executes them round-robin.
type MultiConfig = sim.MultiConfig

// RunMulti executes a multi-JVM configuration.
func RunMulti(cfg MultiConfig) []Result { return sim.RunMulti(cfg) }

// SetDefaultMarkWorkers sets the process-wide worker count for the
// parallel mark engine (DESIGN.md §11); values below 1 restore the
// GOMAXPROCS default. Worker count changes only host-side parallelism —
// simulation results are bit-identical for any value. Per-run overrides
// go through RunConfig.MarkWorkers / MultiConfig.MarkWorkers.
func SetDefaultMarkWorkers(n int) { gc.SetDefaultMarkWorkers(n) }

// Pressure is a signalmem-style memory-pressure schedule.
type Pressure = sim.Pressure

// SteadyPressure removes frac of the heap size immediately (Figure 3).
func SteadyPressure(heapBytes uint64, frac float64) *Pressure {
	return sim.SteadyPressure(heapBytes, frac)
}

// DynamicPressure grabs 30 MB then grows 1 MB/100 ms until only
// availBytes remain (§5.3.2).
func DynamicPressure(availBytes uint64) *Pressure { return sim.DynamicPressure(availBytes) }

// TraceSource replays a recorded or synthesized allocation trace; set it
// as RunConfig.Workload to drive a run from the trace instead of a
// Program generator. See DESIGN.md §10 and cmd/gctrace.
type TraceSource = mutator.Source

// RecordTrace executes cfg and writes its complete allocation trace
// (every allocation, pointer store, data access and root update, plus
// the mutator's data checksum) to path. The returned Result is the
// recording run's; OpenTrace replays the file through any collector,
// reproducing the recorded run exactly under the recording
// configuration. On a failed run the partial file is removed.
func RecordTrace(path string, cfg RunConfig) (Result, error) {
	f, err := os.Create(path)
	if err != nil {
		return Result{}, err
	}
	bw := bufio.NewWriter(f)
	wr, err := workload.NewWriter(bw, workload.Meta{
		Name:      cfg.Program.Name,
		Source:    "record",
		Program:   &cfg.Program,
		Seed:      cfg.Seed,
		Collector: string(cfg.Collector),
		HeapBytes: cfg.HeapBytes,
		PhysBytes: cfg.PhysBytes,
	})
	if err != nil {
		f.Close()
		os.Remove(path)
		return Result{}, err
	}
	cfg.Sink = workload.NewRecorder(wr)
	r := sim.Run(cfg)
	if r.Err != nil {
		f.Close()
		os.Remove(path)
		return r, r.Err
	}
	err = cfg.Sink.(*workload.Recorder).Close(r.Mutator)
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return r, err
	}
	return r, nil
}

// OpenTrace opens a .gctrace file (recorded by RecordTrace or
// cmd/gctrace, or synthesized by gctrace gen) for replay. The source can
// drive any number of runs; each run re-reads the file in constant
// memory.
func OpenTrace(path string) (TraceSource, error) { return workload.Open(path) }

// ExperimentOptions configures the table/figure reproductions.
type ExperimentOptions = bench.Options

// Experiment is one runnable table or figure reproduction.
type Experiment = bench.Experiment

// Experiments lists the reproduction of every table and figure in the
// paper's evaluation.
func Experiments() []Experiment { return bench.Experiments() }

// Machine is a simulated computer: physical memory, a clock, and a
// virtual memory manager shared by its processes.
type Machine struct {
	vm *vmm.VMM
}

// NewMachine creates a machine with physBytes of RAM and the default
// cost model (a disk access ≈ 10^6 memory accesses).
func NewMachine(physBytes uint64) *Machine {
	clock := vmm.NewClock()
	return &Machine{vm: vmm.New(clock, physBytes, vmm.DefaultCosts())}
}

// Now returns the machine's simulated time.
func (m *Machine) Now() time.Duration { return m.vm.Clock.Now() }

// PinMemory removes bytes of RAM from circulation (like the paper's
// signalmem tool); under pressure this forces eviction of process pages.
func (m *Machine) PinMemory(bytes uint64) { m.vm.Pin(int(bytes / mem.PageSize)) }

// UnpinMemory returns pinned RAM.
func (m *Machine) UnpinMemory(bytes uint64) { m.vm.Unpin(int(bytes / mem.PageSize)) }

// FreeMemory returns the machine's free RAM in bytes.
func (m *Machine) FreeMemory() uint64 { return uint64(m.vm.FreeFrames()) * mem.PageSize }

// VMM exposes the underlying virtual memory manager for advanced use.
func (m *Machine) VMM() *vmm.VMM { return m.vm }

// NewRuntime starts a managed runtime (a simulated JVM process) on the
// machine with the given collector and heap budget. An unknown collector
// kind is a programming error and panics; use the sim package directly
// for an error-returning constructor.
func (m *Machine) NewRuntime(name string, kind CollectorKind, heapBytes uint64) *Runtime {
	env := gc.NewEnv(m.vm, name, heapBytes)
	col, err := sim.NewCollector(kind, env)
	if err != nil {
		panic(err)
	}
	return &Runtime{env: env, col: col}
}

// Runtime is one managed process: a heap, a collector, and a root
// registry. All object access goes through it (and so through the
// simulated VM).
type Runtime struct {
	env    *gc.Env
	col    gc.Collector
	wtypes *mutator.Types
}

// Collector returns the underlying collector.
func (r *Runtime) Collector() Collector { return r.col }

// DefineScalar registers an object type of sizeWords payload words whose
// reference fields sit at the given word offsets.
func (r *Runtime) DefineScalar(name string, sizeWords int, ptrFields ...int32) *Type {
	return r.env.Types.Scalar(name, sizeWords, ptrFields...)
}

// DefineArray registers an array type (elemPtr: elements are references).
func (r *Runtime) DefineArray(name string, elemPtr bool) *Type {
	return r.env.Types.Array(name, elemPtr)
}

// Alloc allocates a scalar object, collecting as needed. The returned
// Ref is only stable until the next allocation; hold objects across
// allocations via roots or heap references.
func (r *Runtime) Alloc(t *Type) Ref { return r.col.Alloc(t, 0) }

// AllocArray allocates an array of n elements.
func (r *Runtime) AllocArray(t *Type, n int) Ref { return r.col.Alloc(t, n) }

// NewRoot registers o as a root and returns its slot; Root reads it back
// (updated by moving collections) and DropRoot releases it.
func (r *Runtime) NewRoot(o Ref) int { return r.col.Roots().Add(o) }

// Root returns the current address of the object in root slot i.
func (r *Runtime) Root(i int) Ref { return r.col.Roots().Get(i) }

// SetRoot overwrites root slot i.
func (r *Runtime) SetRoot(i int, o Ref) { r.col.Roots().Set(i, o) }

// DropRoot releases root slot i.
func (r *Runtime) DropRoot(i int) { r.col.Roots().Release(i) }

// ReadRef loads the i-th reference slot of o.
func (r *Runtime) ReadRef(o Ref, i int) Ref { return r.col.ReadRef(o, i) }

// WriteRef stores v into the i-th reference slot of o (with the
// collector's write barrier).
func (r *Runtime) WriteRef(o Ref, i int, v Ref) { r.col.WriteRef(o, i, v) }

// ReadData loads payload word d of o.
func (r *Runtime) ReadData(o Ref, d int) uint64 { return r.col.ReadData(o, d) }

// WriteData stores payload word d of o.
func (r *Runtime) WriteData(o Ref, d int, v uint64) { r.col.WriteData(o, d, v) }

// Collect forces a collection (full-heap if full).
func (r *Runtime) Collect(full bool) { r.col.Collect(full) }

// Stats returns the collector's counters.
func (r *Runtime) Stats() *Stats { return r.col.Stats() }

// Timeline returns the pause record, with Start/End set to the current
// simulated time bounds of activity so far.
func (r *Runtime) Timeline() *Timeline {
	tl := &r.col.Stats().Timeline
	tl.End = r.env.Clock.Now()
	return tl
}

// MajorFaults returns the process's disk-fault count.
func (r *Runtime) MajorFaults() uint64 { return r.env.Proc.Stats().MajorFaults }

// HeapPages returns the collector-accounted heap footprint in pages.
func (r *Runtime) HeapPages() int { return r.col.UsedPages() }

// NewProgramRun prepares a benchmark program on this runtime (the
// standard workload types are registered on first use).
func (r *Runtime) NewProgramRun(p Program, seed int64) *mutator.Run {
	if r.wtypes == nil {
		t := mutator.DeclareTypes(r.env)
		r.wtypes = &t
	}
	return mutator.NewRun(p, r.col, *r.wtypes, seed)
}
