module bookmarkgc

go 1.22
